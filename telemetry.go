package sprite

import (
	"io"
	"net/http"

	"github.com/spritedht/sprite/internal/telemetry"
)

// Telemetry is an observability handle shared by every layer of a Network:
// the transport records per-message-type call counts, byte sizes, and
// latencies; the Chord overlay records lookup hop histograms and maintenance
// activity; the SPRITE core records indexing, learning, and query events; and
// each Search opens a trace whose span tree shows every Chord hop and
// postings fetch with timings.
//
// Create one with NewTelemetry, pass it in Options, and read it at any time —
// all instruments are safe for concurrent use. A nil *Telemetry is valid
// everywhere and disables instrumentation at near-zero cost.
type Telemetry struct {
	reg *telemetry.Registry
}

// NewTelemetry creates an empty telemetry registry.
func NewTelemetry() *Telemetry {
	return &Telemetry{reg: telemetry.NewRegistry()}
}

// registry returns the underlying registry (nil when t is nil), for wiring
// into the internal layers.
func (t *Telemetry) registry() *telemetry.Registry {
	if t == nil {
		return nil
	}
	return t.reg
}

// WriteReport writes a human-readable snapshot: counters, gauges, histogram
// quantile summaries, and the retained query traces as indented span trees.
func (t *Telemetry) WriteReport(w io.Writer) error {
	return t.registry().Snapshot().WriteText(w)
}

// WriteJSON writes the same snapshot as indented JSON, for machine
// consumption.
func (t *Telemetry) WriteJSON(w io.Writer) error {
	return t.registry().Snapshot().WriteJSON(w)
}

// Handler returns an HTTP handler serving the live snapshot — JSON by
// default, the text report with ?format=text — in the spirit of expvar.
func (t *Telemetry) Handler() http.Handler {
	return t.registry().Handler()
}

// Counter returns the current value of a named counter (zero when absent or
// when t is nil). Metric names are documented in the README's Observability
// section.
func (t *Telemetry) Counter(name string) int64 {
	return t.registry().Counter(name).Value()
}
