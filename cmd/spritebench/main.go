// Command spritebench regenerates every figure of the SPRITE paper's
// evaluation (§6.3) plus the supplementary systems-level experiments indexed
// in DESIGN.md, printing the same rows/series the paper reports.
//
// Usage:
//
//	spritebench [flags] <experiment>...
//
// Experiments: fig4a fig4b fig4c chord cost ablation churn cache parallel
// scale postings similarity tcp chaos config all ("chaos" is the correctness
// smoke gate, "tcp" the real-socket transport benchmark, "scale" the
// virtual-time ring-size sweep, "postings" the compressed-storage benchmark,
// and "similarity" the sketch-retrieval benchmark, not figures; all five are
// excluded from "all"). -virtual-time moves the parallel and chaos
// experiments onto the deterministic event clock.
//
// Flags scale the setup; the defaults are the paper's configuration at the
// laptop scale documented in DESIGN.md.
package main

import (
	"encoding/csv"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"github.com/spritedht/sprite/internal/core"
	"github.com/spritedht/sprite/internal/corpus"
	"github.com/spritedht/sprite/internal/eval"
	"github.com/spritedht/sprite/internal/querygen"
	"github.com/spritedht/sprite/internal/telemetry"
)

func main() {
	var (
		docs      = flag.Int("docs", 2000, "corpus size (documents)")
		topics    = flag.Int("topics", 12, "latent topics in the synthetic corpus")
		queries   = flag.Int("queries", 63, "original judged queries (paper: 63)")
		perOrig   = flag.Int("per-original", 9, "derived queries per original (paper: 9)")
		overlap   = flag.Float64("overlap", 0.7, "query-generator term overlap O (paper: 0.7)")
		peers     = flag.Int("peers", 64, "DHT peers")
		topK      = flag.Int("topk", 20, "answers retrieved per query (paper: 20)")
		iters     = flag.Int("iterations", 3, "learning iterations for fig4a (paper: 3)")
		seed      = flag.Int64("seed", 17, "master random seed")
		failFrac  = flag.Float64("fail", 0.25, "fraction of peers failed in the churn experiment")
		replicas  = flag.Int("replicas", 2, "successor replicas in the churn experiment")
		churnRot  = flag.Int("churn-interval", 0, "queries between fault rotations in the churn experiment's transient arms (0 = quarter of the test stream)")
		colPath   = flag.String("collection", "", "run against an external judged collection (JSON, as emitted by corpusgen) instead of synthesizing one")
		asCSV     = flag.Bool("csv", false, "emit CSV instead of tables")
		asJSON    = flag.Bool("json", false, "emit one JSON document with all experiment results")
		withTel   = flag.Bool("telemetry", false, "record metrics/traces during experiments; report to stderr")
		repeats   = flag.Int("repeats", 5, "independent replications for fig4a-replicated")
		cacheVol  = flag.Int("cache-volume", 0, "replayed queries in the cache experiment (0 = 4x the test set)")
		cacheZip  = flag.Float64("cache-slope", 0.5, "Zipf slope of the cache experiment's repeated-query stream")
		parallel  = flag.Int("parallel", 0, "query fan-out parallelism for all experiments (0 = GOMAXPROCS, 1 = sequential)")
		linkDelay = flag.Duration("link-delay", time.Millisecond, "constant link delay slept in the parallel experiment")
		virtual   = flag.Bool("virtual-time", false, "run the parallel and chaos experiments on the deterministic event clock (internal/vtime) instead of the wall clock")
		scaleRing = flag.String("scale-rings", "", "comma-separated ring sizes for the scale experiment (default 10000,25000,50000,100000)")
		scaleVol  = flag.Int("scale-queries", 0, "measured Zipf queries per ring in the scale experiment (default 250000)")
		scaleZip  = flag.Float64("scale-slope", 0.5, "Zipf slope of the scale experiment's query stream")
		postTiers = flag.String("postings-tiers", "", "comma-separated corpus sizes for the postings experiment (default 10000,100000,1000000)")
		postVol   = flag.Int("postings-queries", 0, "measured queries per tier in the postings experiment (default 2000)")
		postPlain = flag.Int("postings-plain-max", 0, "largest tier the uncompressed arm is built at (default 100000)")
		simTiers  = flag.String("similarity-tiers", "", "comma-separated corpus sizes for the similarity experiment (default 2000,10000)")
		simPeers  = flag.Int("similarity-peers", 0, "DHT peers in the similarity experiment (default 512)")
		simVol    = flag.Int("similarity-queries", 0, "sampled query documents per tier in the similarity experiment (default 100)")
	)
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: spritebench [flags] <experiment>...\n")
		fmt.Fprintf(os.Stderr, "experiments: fig4a fig4a-replicated fig4b fig4c chord cost ablation churn expansion maintenance load learncost cache parallel scale postings similarity tcp chaos config all\n\nflags:\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	var reg *telemetry.Registry
	if *withTel {
		reg = telemetry.NewRegistry()
	}
	cfg := eval.Config{
		Telemetry: reg,
		Corpus: corpus.SynthConfig{
			NumDocs:    *docs,
			NumTopics:  *topics,
			NumQueries: *queries,
			Seed:       *seed,
		},
		SkipQueryGen: *colPath != "",
		QueryGen: querygen.Config{
			PerOriginal: *perOrig,
			Overlap:     *overlap,
			Seed:        *seed + 6,
		},
		Peers:              *peers,
		Core:               core.Config{Parallelism: *parallel},
		TopK:               *topK,
		LearningIterations: *iters,
		Seed:               *seed + 14,
		ChurnRotateEvery:   *churnRot,
		VirtualTime:        *virtual,
	}

	if *colPath != "" {
		f, err := os.Open(*colPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "spritebench:", err)
			os.Exit(1)
		}
		col, err := corpus.ReadCollection(f)
		f.Close()
		if err != nil {
			fmt.Fprintln(os.Stderr, "spritebench:", err)
			os.Exit(1)
		}
		cfg.Collection = col
	}

	args := flag.Args()
	if len(args) == 0 {
		flag.Usage()
		os.Exit(2)
	}
	for _, exp := range args {
		if exp == "all" {
			args = []string{"config", "fig4a", "fig4b", "fig4c", "chord", "cost", "ablation", "churn", "expansion", "maintenance", "load", "learncost", "cache", "parallel"}
			break
		}
	}

	timeMode := "wall"
	if *virtual {
		timeMode = "virtual"
	}
	opts := runOpts{
		failFrac:   *failFrac,
		replicas:   *replicas,
		repeats:    *repeats,
		cacheVol:   *cacheVol,
		cacheSlope: *cacheZip,
		linkDelay:  *linkDelay,
		scaleRings: parseRings(*scaleRing),
		scaleVol:   *scaleVol,
		scaleSlope: *scaleZip,
		postTiers:  parseRings(*postTiers),
		postVol:    *postVol,
		postPlain:  *postPlain,
		simTiers:   parseRings(*simTiers),
		simPeers:   *simPeers,
		simVol:     *simVol,
	}
	out := &output{asCSV: *asCSV, asJSON: *asJSON, timeMode: timeMode}
	for _, exp := range args {
		start := time.Now()
		if err := run(exp, cfg, opts, out); err != nil {
			fmt.Fprintf(os.Stderr, "spritebench: %s: %v\n", exp, err)
			os.Exit(1)
		}
		out.finishExperiment(exp, time.Since(start))
	}
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out.results); err != nil {
			fmt.Fprintln(os.Stderr, "spritebench:", err)
			os.Exit(1)
		}
	}
	if reg != nil {
		reg.Snapshot().WriteText(os.Stderr)
	}
}

// renderable is any experiment result printable as a table or CSV.
type renderable interface {
	Table() string
	CSV() string
}

// jsonResult is one experiment's machine-readable output: the CSV rows
// decoded into header-keyed maps, plus wall-clock time and which clock the
// experiment's latencies were measured on ("wall" or "virtual").
type jsonResult struct {
	Experiment string              `json:"experiment"`
	TimeMode   string              `json:"time_mode"`
	ElapsedMS  int64               `json:"elapsed_ms"`
	Rows       []map[string]string `json:"rows,omitempty"`
}

// output routes experiment results to the selected format: tables (default),
// raw CSV, or an accumulated JSON document emitted after the last experiment.
type output struct {
	asCSV    bool
	asJSON   bool
	timeMode string
	pending  []map[string]string
	results  []jsonResult
}

func (o *output) emit(r renderable) {
	switch {
	case o.asJSON:
		o.pending = append(o.pending, csvRows(r.CSV())...)
	case o.asCSV:
		fmt.Print(r.CSV())
	default:
		fmt.Print(r.Table())
	}
}

// finishExperiment closes out one experiment: in JSON mode it files the
// accumulated rows under the experiment name; in table mode it prints the
// timing footer.
func (o *output) finishExperiment(exp string, elapsed time.Duration) {
	if o.asJSON {
		mode := o.timeMode
		if exp == "scale" {
			mode = "virtual" // the scale sweep always runs on the event clock
		}
		o.results = append(o.results, jsonResult{
			Experiment: exp,
			TimeMode:   mode,
			ElapsedMS:  elapsed.Milliseconds(),
			Rows:       o.pending,
		})
		o.pending = nil
		return
	}
	if !o.asCSV {
		fmt.Printf("[%s completed in %v]\n\n", exp, elapsed.Round(time.Millisecond))
	}
}

// csvRows decodes a CSV document into one map per record keyed by the header
// row. Experiments emit regular CSV, so decode errors reduce to "no rows".
func csvRows(doc string) []map[string]string {
	recs, err := csv.NewReader(strings.NewReader(doc)).ReadAll()
	if err != nil || len(recs) < 2 {
		return nil
	}
	header := recs[0]
	rows := make([]map[string]string, 0, len(recs)-1)
	for _, rec := range recs[1:] {
		row := make(map[string]string, len(header))
		for i, v := range rec {
			if i < len(header) {
				row[header[i]] = v
			}
		}
		rows = append(rows, row)
	}
	return rows
}

// runOpts carries the per-experiment flag values into run.
type runOpts struct {
	failFrac   float64
	replicas   int
	repeats    int
	cacheVol   int
	cacheSlope float64
	linkDelay  time.Duration
	scaleRings []int
	scaleVol   int
	scaleSlope float64
	postTiers  []int
	postVol    int
	postPlain  int
	simTiers   []int
	simPeers   int
	simVol     int
}

// parseRings decodes a comma-separated ring-size list; empty means defaults.
func parseRings(s string) []int {
	if s == "" {
		return nil
	}
	var out []int
	for _, part := range strings.Split(s, ",") {
		var n int
		if _, err := fmt.Sscanf(strings.TrimSpace(part), "%d", &n); err != nil || n < 1 {
			fmt.Fprintf(os.Stderr, "spritebench: bad -scale-rings entry %q\n", part)
			os.Exit(2)
		}
		out = append(out, n)
	}
	return out
}

func run(exp string, cfg eval.Config, o runOpts, out *output) error {
	switch exp {
	case "config":
		if !out.asJSON {
			printConfig(cfg)
		}
		return nil
	case "fig4a":
		res, err := eval.RunFig4a(cfg)
		if err != nil {
			return err
		}
		out.emit(res)
	case "fig4a-replicated":
		res, err := eval.RunFig4aReplicated(cfg, o.repeats)
		if err != nil {
			return err
		}
		out.emit(res)
	case "fig4b":
		for _, v := range []eval.Fig4bVariant{eval.WithoutRepeats, eval.WithZipf} {
			res, err := eval.RunFig4b(cfg, v)
			if err != nil {
				return err
			}
			out.emit(res)
			if !out.asCSV && !out.asJSON {
				fmt.Println()
			}
		}
	case "fig4c":
		res, err := eval.RunFig4c(cfg)
		if err != nil {
			return err
		}
		out.emit(res)
	case "chord":
		res, err := eval.RunChordHops([]int{16, 64, 256, 1024}, 200, cfg.Seed)
		if err != nil {
			return err
		}
		out.emit(res)
	case "cost":
		res, err := eval.RunInsertCost(cfg)
		if err != nil {
			return err
		}
		out.emit(res)
	case "ablation":
		res, err := eval.RunScoreAblation(cfg)
		if err != nil {
			return err
		}
		out.emit(res)
	case "churn":
		res, err := eval.RunChurn(cfg, o.failFrac, o.replicas)
		if err != nil {
			return err
		}
		out.emit(res)
	case "expansion":
		res, err := eval.RunExpansion(cfg)
		if err != nil {
			return err
		}
		out.emit(res)
	case "maintenance":
		res, err := eval.RunMaintenance(cfg, o.failFrac, o.replicas)
		if err != nil {
			return err
		}
		out.emit(res)
	case "load":
		res, err := eval.RunLoadBalance(cfg)
		if err != nil {
			return err
		}
		out.emit(res)
	case "learncost":
		res, err := eval.RunLearnCost(cfg)
		if err != nil {
			return err
		}
		out.emit(res)
	case "cache":
		res, err := eval.RunCacheRepeat(cfg, o.cacheVol, o.cacheSlope)
		if err != nil {
			return err
		}
		out.emit(res)
	case "parallel":
		res, err := eval.RunParallel(cfg, nil, o.linkDelay)
		if err != nil {
			return err
		}
		out.emit(res)
	case "scale":
		res, err := eval.RunScale(cfg, o.scaleRings, o.scaleVol, o.scaleSlope, o.linkDelay)
		if err != nil {
			return err
		}
		out.emit(res)
	case "postings":
		res, err := eval.RunPostings(o.postTiers, o.postVol, o.postPlain, cfg.Seed)
		if err != nil {
			return err
		}
		out.emit(res)
	case "similarity":
		res, err := eval.RunSimilarity(cfg, o.simTiers, o.simPeers, o.simVol)
		if err != nil {
			return err
		}
		out.emit(res)
	case "tcp":
		res, err := eval.RunTCP(nil, nil, 0)
		if err != nil {
			return err
		}
		out.emit(res)
	case "chaos":
		res, err := eval.RunChaos(nil, 0, cfg.Core.Parallelism, cfg.VirtualTime)
		if err != nil {
			return err
		}
		out.emit(res)
		if n := res.Failures(); n > 0 {
			return fmt.Errorf("%d/%d seeds violated an invariant", n, len(res.Seeds))
		}
	default:
		return fmt.Errorf("unknown experiment %q", exp)
	}
	return nil
}

func printConfig(cfg eval.Config) {
	cc := cfg.Corpus.FillDefaults()
	qc := cfg.QueryGen.FillDefaults()
	cr := cfg.Core.FillDefaults()
	fmt.Println("Experimental setup (cf. paper §6.2)")
	fmt.Printf("  corpus:    %d docs, %d topics, doc length %d-%d tokens\n",
		cc.NumDocs, cc.NumTopics, cc.DocLenMin, cc.DocLenMax)
	fmt.Printf("  queries:   %d originals x (1+%d) = %d total, overlap O=%.0f%%\n",
		cc.NumQueries, qc.PerOriginal, cc.NumQueries*(1+qc.PerOriginal), qc.Overlap*100)
	fmt.Printf("  network:   %d peers (Chord, MD5 128-bit IDs)\n", cfg.Peers)
	fmt.Printf("  sprite:    %d initial terms, %d per iteration, cap %d, history %d\n",
		cr.InitialTerms, cr.TermsPerIteration, cr.MaxIndexTerms, cr.HistoryCap)
	fmt.Printf("  retrieval: top-%d answers, %d learning iterations\n",
		cfg.TopK, cfg.LearningIterations)
}
