package main

import (
	"bytes"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/spritedht/sprite"
)

// capture runs execute() with stdout redirected and returns the printed
// output plus the done flag.
func capture(t *testing.T, net *sprite.Network, line string) (string, bool) {
	return captureTel(t, net, nil, line)
}

// captureTel is capture with an explicit telemetry handle (nil = off).
func captureTel(t *testing.T, net *sprite.Network, tel *sprite.Telemetry, line string) (string, bool) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	done := execute(net, tel, line)
	w.Close()
	os.Stdout = old
	var buf bytes.Buffer
	io.Copy(&buf, r)
	return buf.String(), done
}

func testNet(t *testing.T) *sprite.Network {
	t.Helper()
	net, err := sprite.New(sprite.Options{Peers: 8, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	return net
}

func TestExecuteShareAndSearch(t *testing.T) {
	net := testNet(t)
	out, done := capture(t, net, "share peer0 d1 consensus leader election protocols")
	if done || !strings.Contains(out, "shared d1") {
		t.Fatalf("share output: %q", out)
	}
	out, _ = capture(t, net, "search peer2 5 leader election")
	if !strings.Contains(out, "d1") {
		t.Fatalf("search output: %q", out)
	}
	out, _ = capture(t, net, "search peer2 5 nonexistentterm")
	if !strings.Contains(out, "no results") {
		t.Fatalf("miss output: %q", out)
	}
}

func TestExecuteTermsLearnStats(t *testing.T) {
	net := testNet(t)
	capture(t, net, "share peer0 d1 alpha beta gamma")
	out, _ := capture(t, net, "terms d1")
	if !strings.Contains(out, "alpha") {
		t.Fatalf("terms output: %q", out)
	}
	out, _ = capture(t, net, "learn")
	if !strings.Contains(out, "learning iteration") {
		t.Fatalf("learn output: %q", out)
	}
	out, _ = capture(t, net, "stats")
	if !strings.Contains(out, "postings=") {
		t.Fatalf("stats output: %q", out)
	}
}

func TestExecuteUnshareRefreshExpand(t *testing.T) {
	net := testNet(t)
	capture(t, net, "share peer0 d1 quorum ballot acceptor consensus")
	out, _ := capture(t, net, "expand peer1 5 quorum")
	if !strings.Contains(out, "d1") {
		t.Fatalf("expand output: %q", out)
	}
	out, _ = capture(t, net, "refresh")
	if !strings.Contains(out, "migrated") {
		t.Fatalf("refresh output: %q", out)
	}
	out, _ = capture(t, net, "unshare d1")
	if !strings.Contains(out, "withdrawn") {
		t.Fatalf("unshare output: %q", out)
	}
	out, _ = capture(t, net, "unshare d1")
	if !strings.Contains(out, "error") {
		t.Fatalf("double unshare output: %q", out)
	}
}

func TestExecuteSimilar(t *testing.T) {
	net, err := sprite.New(sprite.Options{Peers: 8, Seed: 4, Sketch: sprite.SketchOptions{Enabled: true}})
	if err != nil {
		t.Fatal(err)
	}
	capture(t, net, "share peer0 d1 chord scalable lookup protocol distributed hash tables")
	capture(t, net, "share peer1 d2 pastry scalable overlay routing protocol distributed systems")
	capture(t, net, "share peer2 d3 porter stemmer suffix stripping english words")
	out, done := capture(t, net, "similar peer3 2 d1")
	if done || !strings.Contains(out, "d2") || !strings.Contains(out, "cosine=") {
		t.Fatalf("similar output: %q", out)
	}
	if strings.Contains(out, "d1") {
		t.Fatalf("query doc listed among its own neighbors: %q", out)
	}
	for _, bad := range []string{"similar peer3 2", "similar peer3 zero d1", "similar peer3 2 ghost"} {
		out, _ := capture(t, net, bad)
		if !strings.Contains(out, "error") {
			t.Fatalf("%q did not report an error: %q", bad, out)
		}
	}

	// Without -sketch the command must fail cleanly, not panic.
	plain := testNet(t)
	capture(t, plain, "share peer0 d1 some text")
	out, _ = capture(t, plain, "similar peer1 2 d1")
	if !strings.Contains(out, "error") || !strings.Contains(out, "sketch") {
		t.Fatalf("sketch-disabled similar output: %q", out)
	}
}

func TestExecuteFailRecoverStabilize(t *testing.T) {
	net := testNet(t)
	out, _ := capture(t, net, "fail peer3")
	if !strings.Contains(out, "down") {
		t.Fatalf("fail output: %q", out)
	}
	out, _ = capture(t, net, "recover peer3")
	if !strings.Contains(out, "back") {
		t.Fatalf("recover output: %q", out)
	}
	out, _ = capture(t, net, "stabilize")
	if !strings.Contains(out, "stabilized") {
		t.Fatalf("stabilize output: %q", out)
	}
}

func TestExecuteJoinLeaveRepair(t *testing.T) {
	net := testNet(t)
	capture(t, net, "share peer0 d1 documents survive ring membership changes")
	out, _ := capture(t, net, "join fresh")
	if !strings.Contains(out, "joined") {
		t.Fatalf("join output: %q", out)
	}
	out, _ = capture(t, net, "peers")
	if !strings.Contains(out, "fresh") {
		t.Fatalf("joined peer missing from peers: %q", out)
	}
	out, _ = capture(t, net, "repair")
	if !strings.Contains(out, "repair moved") {
		t.Fatalf("repair output: %q", out)
	}
	out, _ = capture(t, net, "leave fresh")
	if !strings.Contains(out, "left the ring") {
		t.Fatalf("leave output: %q", out)
	}
	out, _ = capture(t, net, "search peer1 5 survive membership")
	if !strings.Contains(out, "d1") {
		t.Fatalf("doc lost across join/leave: %q", out)
	}
	out, _ = capture(t, net, "leave fresh")
	if !strings.Contains(out, "error") {
		t.Fatalf("double leave output: %q", out)
	}
	out, _ = capture(t, net, "join peer0")
	if !strings.Contains(out, "error") {
		t.Fatalf("duplicate join output: %q", out)
	}
}

func TestExecuteSaveLoad(t *testing.T) {
	net := testNet(t)
	capture(t, net, "share peer0 d1 durable checkpoint state")
	path := filepath.Join(t.TempDir(), "state.bin")
	out, _ := capture(t, net, "save "+path)
	if !strings.Contains(out, "saved") {
		t.Fatalf("save output: %q", out)
	}
	capture(t, net, "unshare d1")
	out, _ = capture(t, net, "load "+path)
	if !strings.Contains(out, "loaded") {
		t.Fatalf("load output: %q", out)
	}
	out, _ = capture(t, net, "search peer1 5 durable checkpoint")
	if !strings.Contains(out, "d1") {
		t.Fatalf("post-load search output: %q", out)
	}
}

func TestExecuteErrorsAndQuit(t *testing.T) {
	net := testNet(t)
	for _, bad := range []string{
		"share onlytwo args",
		"search peer0 notanumber query",
		"search peer0 5",
		"terms",
		"fail",
		"recover",
		"unshare",
		"save",
		"load /nonexistent/dir/x.bin",
		"bogus command",
	} {
		out, done := capture(t, net, bad)
		if done {
			t.Fatalf("%q terminated the session", bad)
		}
		if !strings.Contains(out, "error") {
			t.Fatalf("%q did not report an error: %q", bad, out)
		}
	}
	if _, done := capture(t, net, "quit"); !done {
		t.Fatal("quit did not end the session")
	}
	if _, done := capture(t, net, "exit"); !done {
		t.Fatal("exit did not end the session")
	}
	out, _ := capture(t, net, "help")
	if !strings.Contains(out, "commands:") {
		t.Fatalf("help output: %q", out)
	}
	out, _ = capture(t, net, "peers")
	if !strings.Contains(out, "peer0") {
		t.Fatalf("peers output: %q", out)
	}
	out, _ = capture(t, net, "telemetry")
	if !strings.Contains(out, "error") {
		t.Fatalf("telemetry-off output: %q", out)
	}
}

func TestExecuteTelemetryReport(t *testing.T) {
	tel := sprite.NewTelemetry()
	net, err := sprite.New(sprite.Options{Peers: 8, Seed: 4, Telemetry: tel})
	if err != nil {
		t.Fatal(err)
	}
	captureTel(t, net, tel, "share peer0 d1 consensus leader election protocols")
	captureTel(t, net, tel, "search peer2 5 leader election")
	out, _ := captureTel(t, net, tel, "telemetry")
	for _, want := range []string{"== telemetry report ==", "chord.lookup.hops", "simnet.bytes.", "trace 1 ("} {
		if !strings.Contains(out, want) {
			t.Fatalf("telemetry report missing %q:\n%s", want, out)
		}
	}
}
