// Command spritesim is an interactive SPRITE simulator: it builds a ring of
// peers and accepts commands to share documents, issue queries, run learning
// iterations, inject failures, and inspect peer state — a REPL over the same
// public API downstream programs use.
//
// Usage:
//
//	spritesim [-peers N] [-replicas R] [-seed S] [-script file]
//	          [-telemetry] [-telemetry-http addr] [-parallel P]
//	          [-cache] [-cache-result-ttl D] [-cache-postings N]
//	          [-virtual-time] [-sketch]
//
// Commands (also shown by "help"):
//
//	share <peer> <docID> <text...>      share a document
//	search <peer> <k> <query...>        keyword search, top-k
//	similar <peer> <k> <docID>          sketch-cosine neighbors (-sketch)
//	learn                               run one learning iteration
//	terms <docID>                       show a document's index terms
//	fail <peer> / recover <peer>        crash / revive a peer
//	stabilize                           repair the overlay after churn
//	peers                               list peers
//	stats                               network traffic and index footprint
//	cache                               query-path cache counters (-cache)
//	telemetry                           full metrics + trace report (-telemetry)
//	quit
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strconv"
	"strings"

	"github.com/spritedht/sprite"
)

func main() {
	var (
		peers     = flag.Int("peers", 16, "number of peers in the ring")
		replicas  = flag.Int("replicas", 0, "successor replicas per index entry")
		seed      = flag.Int64("seed", 1, "simulation seed")
		script    = flag.String("script", "", "read commands from file instead of stdin")
		telemetry = flag.Bool("telemetry", false, "record metrics and query traces; print a report on exit")
		telHTTP   = flag.String("telemetry-http", "", "serve the live telemetry snapshot at this addr (implies -telemetry)")
		withCache = flag.Bool("cache", false, "enable the query-path caches (postings + results)")
		cacheTTL  = flag.Duration("cache-result-ttl", 0, "result cache TTL (0 = default 2s; implies -cache)")
		cacheSize = flag.Int("cache-postings", 0, "postings cache capacity in terms (0 = default 4096; implies -cache)")
		parallel  = flag.Int("parallel", 0, "query fan-out parallelism (0 = GOMAXPROCS, 1 = sequential)")
		sketches  = flag.Bool("sketch", false, "sketch shared documents, enabling the similar command")
		virtual   = flag.Bool("virtual-time", false, "run the simulation on the deterministic event clock (internal/vtime); cache TTLs and timeouts advance with simulated, not wall, time")
	)
	flag.Parse()

	var tel *sprite.Telemetry
	if *telemetry || *telHTTP != "" {
		tel = sprite.NewTelemetry()
	}
	cache := sprite.CacheOptions{
		Enabled:         *withCache || *cacheTTL > 0 || *cacheSize > 0,
		ResultTTL:       *cacheTTL,
		PostingsEntries: *cacheSize,
	}
	net, err := sprite.New(sprite.Options{Peers: *peers, Replicas: *replicas, Seed: *seed, Telemetry: tel, Cache: cache, Parallelism: *parallel, VirtualTime: *virtual, Sketch: sprite.SketchOptions{Enabled: *sketches}})
	if err != nil {
		fmt.Fprintln(os.Stderr, "spritesim:", err)
		os.Exit(1)
	}
	if *telHTTP != "" {
		go func() {
			if err := http.ListenAndServe(*telHTTP, tel.Handler()); err != nil {
				fmt.Fprintln(os.Stderr, "spritesim: telemetry-http:", err)
			}
		}()
		fmt.Printf("telemetry endpoint on http://%s/ (?format=text for the report)\n", *telHTTP)
	}

	var in io.Reader = os.Stdin
	interactive := true
	if *script != "" {
		f, err := os.Open(*script)
		if err != nil {
			fmt.Fprintln(os.Stderr, "spritesim:", err)
			os.Exit(1)
		}
		defer f.Close()
		in = f
		interactive = false
	}

	fmt.Printf("spritesim: %d peers ready (type \"help\")\n", *peers)
	scanner := bufio.NewScanner(in)
	scanner.Buffer(make([]byte, 1<<20), 1<<20)
	for {
		if interactive {
			fmt.Print("> ")
		}
		if !scanner.Scan() {
			break
		}
		line := strings.TrimSpace(scanner.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if !interactive {
			fmt.Println(">", line)
		}
		// Under virtual time, each command runs with the REPL goroutine
		// registered on the event clock so any virtual wait inside the
		// command is scheduled rather than deadlocking.
		done := false
		if clk := net.VirtualClock(); clk != nil {
			clk.Run(func() { done = execute(net, tel, line) })
		} else {
			done = execute(net, tel, line)
		}
		if done {
			break
		}
	}
	if err := scanner.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "spritesim:", err)
		os.Exit(1)
	}
	if tel != nil {
		tel.WriteReport(os.Stdout)
	}
}

// execute runs one command line; it returns true when the session should end.
func execute(net *sprite.Network, tel *sprite.Telemetry, line string) bool {
	fields := strings.Fields(line)
	cmd, args := fields[0], fields[1:]
	fail := func(format string, a ...any) {
		fmt.Printf("error: "+format+"\n", a...)
	}
	switch cmd {
	case "help":
		fmt.Print(helpText)
	case "quit", "exit":
		return true
	case "peers":
		for _, p := range net.Peers() {
			fmt.Println(" ", p)
		}
	case "share":
		if len(args) < 3 {
			fail("usage: share <peer> <docID> <text...>")
			return false
		}
		if err := net.Share(args[0], args[1], strings.Join(args[2:], " ")); err != nil {
			fail("%v", err)
			return false
		}
		terms, _ := net.IndexedTerms(args[1])
		fmt.Printf("shared %s (initial index terms: %s)\n", args[1], strings.Join(terms, ", "))
	case "search":
		if len(args) < 3 {
			fail("usage: search <peer> <k> <query...>")
			return false
		}
		k, err := strconv.Atoi(args[1])
		if err != nil || k < 1 {
			fail("bad k %q", args[1])
			return false
		}
		results, err := net.Search(args[0], strings.Join(args[2:], " "), k)
		if err != nil {
			fail("%v", err)
			return false
		}
		if len(results) == 0 {
			fmt.Println("no results")
			return false
		}
		for i, r := range results {
			fmt.Printf("%2d. %-20s score=%.4f owner=%s\n", i+1, r.DocID, r.Score, r.Owner)
		}
	case "similar":
		if len(args) != 3 {
			fail("usage: similar <peer> <k> <docID>")
			return false
		}
		k, err := strconv.Atoi(args[1])
		if err != nil || k < 1 {
			fail("bad k %q", args[1])
			return false
		}
		results, err := net.SearchSimilar(args[0], args[2], k)
		if err != nil {
			fail("%v", err)
			return false
		}
		if len(results) == 0 {
			fmt.Println("no similar documents")
			return false
		}
		for i, r := range results {
			fmt.Printf("%2d. %-20s cosine=%.4f owner=%s\n", i+1, r.DocID, r.Score, r.Owner)
		}
	case "unshare":
		if len(args) != 1 {
			fail("usage: unshare <docID>")
			return false
		}
		if err := net.Unshare(args[0]); err != nil {
			fail("%v", err)
			return false
		}
		fmt.Printf("%s withdrawn from the network\n", args[0])
	case "refresh":
		moved, err := net.Refresh()
		if err != nil {
			fail("%v", err)
			return false
		}
		fmt.Printf("refresh migrated %d index entries\n", moved)
	case "expand":
		if len(args) < 3 {
			fail("usage: expand <peer> <k> <query...>")
			return false
		}
		k, err := strconv.Atoi(args[1])
		if err != nil || k < 1 {
			fail("bad k %q", args[1])
			return false
		}
		results, expansion, err := net.SearchExpanded(args[0], strings.Join(args[2:], " "), k, sprite.Expansion{})
		if err != nil {
			fail("%v", err)
			return false
		}
		if len(expansion) > 0 {
			fmt.Printf("expanded with: %s\n", strings.Join(expansion, ", "))
		}
		if len(results) == 0 {
			fmt.Println("no results")
			return false
		}
		for i, r := range results {
			fmt.Printf("%2d. %-20s score=%.4f owner=%s\n", i+1, r.DocID, r.Score, r.Owner)
		}
	case "learn":
		changes, err := net.Learn()
		if err != nil {
			fail("%v", err)
			return false
		}
		fmt.Printf("learning iteration applied %d index changes\n", changes)
	case "terms":
		if len(args) != 1 {
			fail("usage: terms <docID>")
			return false
		}
		terms, err := net.IndexedTerms(args[0])
		if err != nil {
			fail("%v", err)
			return false
		}
		fmt.Printf("%s: %s\n", args[0], strings.Join(terms, ", "))
	case "fail":
		if len(args) != 1 {
			fail("usage: fail <peer>")
			return false
		}
		net.FailPeer(args[0])
		fmt.Printf("%s is down\n", args[0])
	case "recover":
		if len(args) != 1 {
			fail("usage: recover <peer>")
			return false
		}
		net.RecoverPeer(args[0])
		fmt.Printf("%s is back\n", args[0])
	case "join":
		if len(args) != 1 {
			fail("usage: join <peer>")
			return false
		}
		if err := net.JoinPeer(args[0]); err != nil {
			fail("%v", err)
			return false
		}
		fmt.Printf("%s joined the ring; its arc's index entries handed off to it\n", args[0])
	case "leave":
		if len(args) != 1 {
			fail("usage: leave <peer>")
			return false
		}
		handoffs, err := net.LeavePeer(args[0])
		if err != nil {
			fail("%v", err)
			return false
		}
		fmt.Printf("%s left the ring gracefully; %d index entries handed to its successor\n", args[0], handoffs)
	case "repair":
		st := net.Repair()
		fmt.Printf("repair moved %d entries in %d rounds; %d replica reconciles, %d divergent terms\n",
			st.Moved, st.Rounds, st.Reconciles, st.Divergent)
	case "stabilize":
		rounds := net.Stabilize(100)
		fmt.Printf("overlay stabilized in %d rounds\n", rounds)
	case "save":
		if len(args) != 1 {
			fail("usage: save <file>")
			return false
		}
		f, err := os.Create(args[0])
		if err != nil {
			fail("%v", err)
			return false
		}
		err = net.Save(f)
		f.Close()
		if err != nil {
			fail("%v", err)
			return false
		}
		fmt.Printf("state saved to %s\n", args[0])
	case "load":
		if len(args) != 1 {
			fail("usage: load <file>")
			return false
		}
		f, err := os.Open(args[0])
		if err != nil {
			fail("%v", err)
			return false
		}
		err = net.Load(f)
		f.Close()
		if err != nil {
			fail("%v", err)
			return false
		}
		fmt.Printf("state loaded from %s\n", args[0])
	case "telemetry":
		if tel == nil {
			fail("telemetry is off (run with -telemetry)")
			return false
		}
		tel.WriteReport(os.Stdout)
	case "stats":
		s := net.Stats()
		fmt.Printf("messages=%d bytes=%d postings=%d alive=%d\n", s.Messages, s.Bytes, s.Postings, s.Peers)
		ix := net.IndexStats()
		fmt.Printf("index: terms=%d postings=%d blocks=%d encoded-bytes=%d bytes/posting=%.2f\n",
			ix.Terms, ix.Postings, ix.Blocks, ix.EncodedBytes, ix.BytesPerPost)
		for _, t := range sortedKeys(s.ByType) {
			fmt.Printf("  %-24s %d\n", t, s.ByType[t])
		}
	case "cache":
		p, r := net.CacheStats()
		fmt.Printf("postings: hits=%d misses=%d coalesced=%d entries=%d hit-rate=%.3f\n",
			p.Hits, p.Misses, p.Coalesced, p.Entries, p.HitRate)
		fmt.Printf("results:  hits=%d misses=%d entries=%d hit-rate=%.3f\n",
			r.Hits, r.Misses, r.Entries, r.HitRate)
	default:
		fail("unknown command %q (try \"help\")", cmd)
	}
	return false
}

func sortedKeys(m map[string]int64) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

const helpText = `commands:
  share <peer> <docID> <text...>   share a document from a peer
  unshare <docID>                  withdraw a document
  search <peer> <k> <query...>     keyword search, top-k results
  expand <peer> <k> <query...>     search with query expansion
  similar <peer> <k> <docID>       find documents similar to one (-sketch)
  refresh                          re-publish all index entries (heal churn)
  learn                            run one learning iteration over all docs
  terms <docID>                    show a document's current index terms
  fail <peer> | recover <peer>     crash / revive a peer
  join <peer> | leave <peer>       grow / shrink the ring with entry handoff
  repair                           peer-driven placement + replica anti-entropy
  stabilize                        repair the overlay after churn
  peers                            list peer names
  save <file> | load <file>        checkpoint / restore network state
  stats                            traffic counters and index footprint
  cache                            query-path cache counters (-cache)
  telemetry                        metrics + query-trace report (-telemetry)
  quit                             exit
`
