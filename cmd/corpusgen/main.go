// Command corpusgen generates a synthetic TREC9-like collection — documents,
// judged original queries, and the derived query set of the paper's §6.1
// generator — and writes it in the library's JSON collection format for
// offline inspection or reuse (spritebench can run experiments against it
// via -collection).
//
// Usage:
//
//	corpusgen [flags] -out collection.json
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/spritedht/sprite/internal/central"
	"github.com/spritedht/sprite/internal/corpus"
	"github.com/spritedht/sprite/internal/querygen"
)

func main() {
	var (
		docs    = flag.Int("docs", 2000, "number of documents")
		topics  = flag.Int("topics", 12, "latent topics")
		queries = flag.Int("queries", 63, "original judged queries")
		perOrig = flag.Int("per-original", 9, "derived queries per original (0 skips generation)")
		overlap = flag.Float64("overlap", 0.7, "derived-query term overlap O")
		seed    = flag.Int64("seed", 17, "random seed")
		out     = flag.String("out", "", "output path (default stdout)")
		pretty  = flag.Bool("pretty", false, "indent the JSON output")
	)
	flag.Parse()

	cfg := corpus.SynthConfig{
		NumDocs: *docs, NumTopics: *topics, NumQueries: *queries, Seed: *seed,
	}
	col, err := corpus.Synthesize(cfg)
	if err != nil {
		fatal(err)
	}
	gen, err := querygen.Generate(col, central.New(col.Corpus), querygen.Config{
		PerOriginal: *perOrig, Overlap: *overlap, Seed: *seed + 6,
	})
	if err != nil {
		fatal(err)
	}
	// Emit the full generated query set (originals + derived) in place of
	// the originals, preserving topics via the origin mapping.
	full := &corpus.Collection{
		Corpus:     col.Corpus,
		Queries:    gen.Queries,
		DocTopic:   col.DocTopic,
		QueryTopic: make(map[string]int, len(gen.Queries)),
	}
	for _, q := range gen.Queries {
		full.QueryTopic[q.ID] = col.QueryTopic[gen.Origin[q.ID]]
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	if err := corpus.WriteCollection(w, full, cfg.FillDefaults(), *pretty); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "corpusgen: %d documents, %d queries\n", full.Corpus.N(), len(full.Queries))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "corpusgen:", err)
	os.Exit(1)
}
