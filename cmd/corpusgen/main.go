// Command corpusgen generates a synthetic TREC9-like collection — documents,
// judged original queries, and the derived query set of the paper's §6.1
// generator — and writes it in the library's JSON collection format for
// offline inspection or reuse (spritebench can run experiments against it
// via -collection).
//
// With -stream the generator switches to constant-memory operation: documents
// are drawn one at a time from the same distributions and written as JSON
// lines ({"id":...,"tf":{...},"length":...}), so million-document corpora
// (the paper's 348,565-doc TREC9 scale and beyond) fit in a bounded heap.
// Stream mode emits no relevance judgments — judging requires whole-corpus
// statistics — but -stream-queries appends sampled topical queries as
// {"query":[...]} lines for workload generation.
//
// Usage:
//
//	corpusgen [flags] -out collection.json
//	corpusgen -stream -docs 1000000 -out docs.jsonl
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"github.com/spritedht/sprite/internal/central"
	"github.com/spritedht/sprite/internal/corpus"
	"github.com/spritedht/sprite/internal/querygen"
)

func main() {
	var (
		docs     = flag.Int("docs", 2000, "number of documents")
		topics   = flag.Int("topics", 12, "latent topics")
		queries  = flag.Int("queries", 63, "original judged queries")
		perOrig  = flag.Int("per-original", 9, "derived queries per original (0 skips generation)")
		overlap  = flag.Float64("overlap", 0.7, "derived-query term overlap O")
		seed     = flag.Int64("seed", 17, "random seed")
		out      = flag.String("out", "", "output path (default stdout)")
		pretty   = flag.Bool("pretty", false, "indent the JSON output")
		stream   = flag.Bool("stream", false, "constant-memory JSONL mode (scales to ~1M docs; no judgments)")
		streamQ  = flag.Int("stream-queries", 0, "sampled queries to append in stream mode")
		streamQL = flag.Int("stream-query-len", 4, "terms per sampled stream query")
	)
	flag.Parse()

	cfg := corpus.SynthConfig{
		NumDocs: *docs, NumTopics: *topics, NumQueries: *queries, Seed: *seed,
	}
	if *stream {
		if err := streamOut(cfg, *streamQ, *streamQL, *out); err != nil {
			fatal(err)
		}
		return
	}
	col, err := corpus.Synthesize(cfg)
	if err != nil {
		fatal(err)
	}
	gen, err := querygen.Generate(col, central.New(col.Corpus), querygen.Config{
		PerOriginal: *perOrig, Overlap: *overlap, Seed: *seed + 6,
	})
	if err != nil {
		fatal(err)
	}
	// Emit the full generated query set (originals + derived) in place of
	// the originals, preserving topics via the origin mapping.
	full := &corpus.Collection{
		Corpus:     col.Corpus,
		Queries:    gen.Queries,
		DocTopic:   col.DocTopic,
		QueryTopic: make(map[string]int, len(gen.Queries)),
	}
	for _, q := range gen.Queries {
		full.QueryTopic[q.ID] = col.QueryTopic[gen.Origin[q.ID]]
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	if err := corpus.WriteCollection(w, full, cfg.FillDefaults(), *pretty); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "corpusgen: %d documents, %d queries\n", full.Corpus.N(), len(full.Queries))
}

// streamDoc is the JSONL form of one streamed document.
type streamDoc struct {
	ID     string         `json:"id"`
	TF     map[string]int `json:"tf"`
	Length int            `json:"length"`
}

// streamQuery is the JSONL form of one sampled query.
type streamQuery struct {
	Query []string `json:"query"`
}

// streamOut writes nq sampled queries and every document of the configured
// collection as JSON lines, holding one document at a time.
func streamOut(cfg corpus.SynthConfig, nq, qlen int, out string) error {
	ds, err := corpus.NewDocStream(cfg)
	if err != nil {
		return err
	}
	var w io.Writer = os.Stdout
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	bw := bufio.NewWriterSize(w, 1<<20)
	enc := json.NewEncoder(bw)
	written := 0
	for {
		doc, _, ok := ds.Next()
		if !ok {
			break
		}
		if err := enc.Encode(streamDoc{ID: string(doc.ID), TF: doc.TF, Length: doc.Length}); err != nil {
			return err
		}
		written++
	}
	for i := 0; i < nq; i++ {
		if err := enc.Encode(streamQuery{Query: ds.SampleQuery(qlen)}); err != nil {
			return err
		}
	}
	if err := bw.Flush(); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "corpusgen: streamed %d documents, %d queries\n", written, nq)
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "corpusgen:", err)
	os.Exit(1)
}
