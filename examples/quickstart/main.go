// Quickstart: build a small SPRITE network, share a few documents, search,
// and watch one learning iteration promote the terms users actually query.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"strings"

	"github.com/spritedht/sprite"
)

func main() {
	// A 16-peer ring on a simulated, message-metered network.
	net, err := sprite.New(sprite.Options{Peers: 16, Seed: 7})
	if err != nil {
		log.Fatal(err)
	}

	// Peers share documents. Only a handful of representative terms per
	// document enter the distributed index — not the full text.
	docs := map[string]string{
		"chord-paper":  "Chord is a scalable peer to peer lookup service for internet applications. Lookup resolves in logarithmic hops using finger tables over a consistent hash ring.",
		"porter-paper": "An algorithm for suffix stripping. The Porter stemmer removes endings such as ed and ing from English words to unify related terms for retrieval.",
		"sprite-paper": "SPRITE selects a small set of representative index terms per document and progressively tunes the selection by learning from past keyword queries in a DHT network.",
	}
	peers := net.Peers()
	i := 0
	for id, text := range docs {
		if err := net.Share(peers[i%len(peers)], id, text); err != nil {
			log.Fatal(err)
		}
		i++
	}

	show := func(query string) {
		results, err := net.Search(peers[5], query, 5)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("search %-28q -> ", query)
		if len(results) == 0 {
			fmt.Println("(no results)")
			return
		}
		var hits []string
		for _, r := range results {
			hits = append(hits, fmt.Sprintf("%s (%.3f)", r.DocID, r.Score))
		}
		fmt.Println(strings.Join(hits, ", "))
	}

	fmt.Println("== before learning ==")
	show("peer to peer lookup")
	show("suffix stripping stemmer")
	// This query pairs an indexed term with one that did not make the
	// initial frequency cut; the document is found via the indexed term, and
	// the full query is remembered by the indexing peers.
	show("chord finger tables")

	// Owners poll the indexing peers and re-tune their documents' terms.
	changes, err := net.Learn()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nlearning iteration applied %d index changes\n\n", changes)

	fmt.Println("== after learning ==")
	show("finger tables")

	terms, _ := net.IndexedTerms("chord-paper")
	fmt.Printf("\nchord-paper is now indexed under: %s\n", strings.Join(terms, ", "))

	s := net.Stats()
	fmt.Printf("network traffic: %d messages, %d simulated bytes, %d postings stored\n",
		s.Messages, s.Bytes, s.Postings)
}
