// Newsarchive: a realistic document-sharing workload. A newsroom's peers
// share articles into a SPRITE network; readers search with short keyword
// queries that rarely match an article's most *frequent* words. The example
// shows how the query-driven index catches up: recall over a fixed query log
// improves after each learning iteration.
//
// Run with:
//
//	go run ./examples/newsarchive
package main

import (
	"fmt"
	"log"
	"strings"

	"github.com/spritedht/sprite"
)

// article is one shared document with the queries its readers actually use
// to look for it — the "characteristic terms" of the SPRITE paper's first
// observation, which are not necessarily the article's most frequent words.
type article struct {
	id, text string
	queries  []string
}

var archive = []article{
	{
		id: "storage-outage",
		text: `The cloud storage outage on Friday disrupted file access for
		millions of users. The outage began when a routine maintenance window
		on the storage fleet triggered cascading restarts across the region.
		Engineers traced the storage failure to a misconfigured quorum
		setting. Service was restored after six hours of staged recovery.`,
		queries: []string{"quorum misconfigured", "cascading restarts region"},
	},
	{
		id: "fusion-milestone",
		text: `Researchers announced a fusion energy milestone this week: the
		reactor sustained plasma for a record duration. The fusion experiment
		used improved magnetic confinement, and the team credited new
		superconducting coils. Energy output still fell short of input power,
		but the plasma stability results encouraged the fusion community.`,
		queries: []string{"superconducting coils confinement", "plasma stability record"},
	},
	{
		id: "chess-engine",
		text: `An open source chess engine defeated the reigning computer
		champion in a hundred game match. The engine evaluates positions with
		a small neural network distilled from self play. Its search prunes
		aggressively, trading depth for evaluation quality in the match.`,
		queries: []string{"neural network self play", "search prunes depth"},
	},
	{
		id: "coral-survey",
		text: `A decade long survey of coral reefs found patchy recovery after
		repeated bleaching events. The survey teams catalogued reef health
		across four hundred sites. Cooler currents sheltered some coral
		populations, and those refuges now anchor restoration planning.`,
		queries: []string{"bleaching refuges restoration", "cooler currents sheltered"},
	},
	{
		id: "transit-plan",
		text: `The city council approved a transit plan adding two light rail
		lines and a network of bus corridors. The transit vote followed years
		of debate over funding. Construction on the first rail line begins in
		spring, with corridors rolling out by autumn.`,
		queries: []string{"light rail corridors", "council funding debate"},
	},
	{
		id: "wheat-genome",
		text: `Scientists published a complete wheat genome map, resolving the
		crop's notoriously repetitive chromosomes. The genome work pinpoints
		genes for drought tolerance and rust resistance, giving breeders
		precise targets for the next generation of wheat varieties.`,
		queries: []string{"drought tolerance rust resistance", "repetitive chromosomes breeders"},
	},
}

func main() {
	net, err := sprite.New(sprite.Options{
		Peers:         24,
		Seed:          11,
		InitialTerms:  3, // tight budget: frequency alone will not cover the queries
		MaxIndexTerms: 12,
	})
	if err != nil {
		log.Fatal(err)
	}

	peers := net.Peers()
	for i, a := range archive {
		if err := net.Share(peers[i%len(peers)], a.id, a.text); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("shared %d articles across %d peers\n\n", len(archive), len(peers))

	// The fixed query log: every reader query paired with the article it
	// seeks. recall() reports the fraction the network can currently serve.
	recall := func() float64 {
		hits, n := 0, 0
		for qi, a := range archive {
			for _, q := range a.queries {
				n++
				// Readers issue from arbitrary peers.
				res, err := net.Search(peers[(qi+7)%len(peers)], q, 3)
				if err != nil {
					continue
				}
				for _, r := range res {
					if r.DocID == a.id {
						hits++
						break
					}
				}
			}
		}
		return float64(hits) / float64(n)
	}

	fmt.Printf("recall over the query log before learning: %.0f%%\n", recall()*100)
	for iter := 1; iter <= 3; iter++ {
		changes, err := net.Learn()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("iteration %d: %2d index changes, recall now %.0f%%\n",
			iter, changes, recall()*100)
	}

	fmt.Println("\nindex terms after learning:")
	for _, a := range archive {
		terms, _ := net.IndexedTerms(a.id)
		fmt.Printf("  %-16s %s\n", a.id, strings.Join(terms, ", "))
	}

	s := net.Stats()
	fmt.Printf("\ntraffic: %d messages, %d simulated bytes, %d postings\n",
		s.Messages, s.Bytes, s.Postings)
}
