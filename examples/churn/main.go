// Churn: peers crash and the index survives. With successor replication
// (§7 of the paper) every published index entry is copied to the indexing
// peer's successors, so lookups that route around a dead peer land on a
// replica and queries keep working. The example kills peers one by one and
// shows that a replicated network keeps answering while an unreplicated one
// starts losing terms.
//
// Run with:
//
//	go run ./examples/churn
package main

import (
	"fmt"
	"log"

	"github.com/spritedht/sprite"
)

var library = map[string]string{
	"raft":   "Raft is a consensus algorithm designed for understandability with leader election log replication and safety proofs",
	"paxos":  "Paxos reaches consensus among unreliable processors using proposers acceptors and learners across ballots",
	"chord":  "Chord locates keys in a peer to peer system using consistent hashing and logarithmic finger table routing",
	"bloom":  "A Bloom filter answers set membership probabilistically using multiple hash functions over a shared bit array",
	"lsm":    "Log structured merge trees absorb writes in memory tables and compact sorted runs to amortize disk traffic",
	"crdt":   "Conflict free replicated data types merge concurrent updates deterministically without coordination",
	"vector": "Vector clocks order events in distributed systems by tracking per process logical timestamps",
	"gossip": "Gossip protocols disseminate state epidemically with each peer relaying rumors to random neighbors",
}

var probes = []struct{ query, want string }{
	{"consensus leader election", "raft"},
	{"consistent hashing finger", "chord"},
	{"bloom filter bit array", "bloom"},
	{"merge trees compact sorted", "lsm"},
	{"conflict free coordination", "crdt"},
	{"logical clocks order events", "vector"},
}

func build(replicas int) *sprite.Network {
	net, err := sprite.New(sprite.Options{Peers: 20, Seed: 9, Replicas: replicas})
	if err != nil {
		log.Fatal(err)
	}
	peers := net.Peers()
	i := 0
	for id, text := range library {
		if err := net.Share(peers[i%len(peers)], id, text); err != nil {
			log.Fatal(err)
		}
		i++
	}
	return net
}

// answered reports how many probe queries still find their document.
func answered(net *sprite.Network) int {
	hits := 0
	for i, p := range probes {
		res, err := net.Search(net.Peers()[(i+11)%20], p.query, 3)
		if err != nil {
			continue
		}
		for _, r := range res {
			if r.DocID == p.want {
				hits++
				break
			}
		}
	}
	return hits
}

func main() {
	plain := build(0)
	replicated := build(2)

	fmt.Printf("%-28s %-16s %-16s\n", "", "no replication", "2 replicas")
	fmt.Printf("%-28s %d/%d answered    %d/%d answered\n",
		"healthy network", answered(plain), len(probes), answered(replicated), len(probes))

	// Kill peers one at a time (the same ones in both networks).
	victims := plain.Peers()[2:8]
	for i, v := range victims {
		plain.FailPeer(v)
		replicated.FailPeer(v)
		fmt.Printf("%-28s %d/%d answered    %d/%d answered\n",
			fmt.Sprintf("after %d peer(s) failed", i+1),
			answered(plain), len(probes), answered(replicated), len(probes))
	}

	fmt.Println("\nrecovering all peers...")
	for _, v := range victims {
		plain.RecoverPeer(v)
		replicated.RecoverPeer(v)
	}
	plain.Stabilize(50)
	replicated.Stabilize(50)
	fmt.Printf("%-28s %d/%d answered    %d/%d answered\n",
		"after recovery", answered(plain), len(probes), answered(replicated), len(probes))
}
