// Tcpdemo: the same SPRITE network, but over real loopback TCP sockets
// instead of the in-process simulator. Every publish, lookup hop, postings
// fetch, learning poll, and expansion download in this program is a
// gob-framed RPC over an actual connection.
//
// Run with:
//
//	go run ./examples/tcpdemo
package main

import (
	"fmt"
	"log"
	"strings"

	"github.com/spritedht/sprite"
)

func main() {
	net, err := sprite.New(sprite.Options{
		Peers: 8,
		TCP:   true, // loopback sockets; peer names are host:port addresses
	})
	if err != nil {
		log.Fatal(err)
	}
	defer net.Close()

	peers := net.Peers()
	fmt.Println("peers listening on:")
	for _, p := range peers {
		fmt.Println("  ", p)
	}

	docs := map[string]string{
		"tcp-rfc":  "The transmission control protocol provides reliable ordered byte streams over unreliable datagrams using sequence numbers acknowledgements and retransmission",
		"udp-rfc":  "The user datagram protocol offers connectionless best effort delivery of datagrams with minimal overhead and no retransmission",
		"quic-rfc": "QUIC multiplexes streams over encrypted datagrams with connection migration and loss recovery replacing much of the transport layer",
	}
	i := 0
	for id, text := range docs {
		if err := net.Share(peers[i%len(peers)], id, text); err != nil {
			log.Fatal(err)
		}
		i++
	}

	res, err := net.Search(peers[5], "control protocol datagrams", 5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nsearch \"control protocol datagrams\":")
	for _, r := range res {
		fmt.Printf("  %-10s score=%.3f owner=%s\n", r.DocID, r.Score, r.Owner)
	}

	// The learning loop runs over the sockets too.
	if _, err := net.Search(peers[2], "retransmission sequence acknowledgements", 5); err != nil {
		log.Fatal(err)
	}
	changes, err := net.Learn()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nlearning over TCP applied %d index changes\n", changes)

	terms, _ := net.IndexedTerms("tcp-rfc")
	fmt.Printf("tcp-rfc indexed under: %s\n", strings.Join(terms, ", "))

	// Expanded search: term vectors of the top hits are downloaded from
	// their owner peers over the wire.
	exp, expansion, err := net.SearchExpanded(peers[6], "datagrams", 5, sprite.Expansion{Terms: 2})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nexpanded search \"datagrams\" (+%s):\n", strings.Join(expansion, ", +"))
	for _, r := range exp {
		fmt.Printf("  %-10s score=%.3f\n", r.DocID, r.Score)
	}
}
