// Adaptive: the Figure 4(c) scenario as an application. A support-ticket
// archive serves one interest pattern (networking problems) for a while,
// then the user base shifts to a different pattern (billing problems). The
// index, tuned for the first pattern, dips — and recovers within a learning
// iteration, while a static frequency index cannot react at all.
//
// Run with:
//
//	go run ./examples/adaptive
package main

import (
	"fmt"
	"log"

	"github.com/spritedht/sprite"
)

type ticket struct {
	id, text string
}

var tickets = []ticket{
	{"net-0001", `VPN tunnel drops every hour. The tunnel renegotiation fails
	with a timeout and the client retries until the gateway blacklists it.
	Disabling rekey on the gateway works around the drops.`},
	{"net-0002", `Packet loss on the office uplink spikes during backups. QoS
	queues are misconfigured so backup traffic starves interactive sessions.
	Shaping the backup transfer eliminates the loss.`},
	{"net-0003", `DNS resolution is slow for internal hosts. The resolver
	forwards internal zones upstream before trying the local server. Fixing
	the search domain order restores fast resolution.`},
	{"bill-0001", `Invoice shows duplicate charges for the annual plan after a
	weekend maintenance deploy touched the subscription pipeline. Close
	inspection revealed the renewal job executed twice following a worker
	crash because its idempotency key was never persisted before commit.
	Support escalated once several enterprise accounts reported identical
	double entries. A targeted refund batch was issued the same evening and
	the renewal scheduler gained a durable deduplication ledger.`},
	{"bill-0002", `Proration on mid-cycle upgrades computes the wrong amount
	whenever a customer moves between billing intervals. The upgrade path
	credits the remaining old plan value at the monthly rate instead of the
	discounted annual rate, quietly undercharging large accounts. Finance
	noticed the drift during quarterly reconciliation. The corrected formula
	now derives credits from the actual contracted rate and a regression
	suite locks the behaviour in place.`},
	{"bill-0003", `Tax calculation misses the regional surcharge introduced by
	the new jurisdiction rules this spring. Orders shipped to affected
	regions omit the surcharge line entirely, so exported totals mismatch
	the general ledger during the nightly audit. The root cause was a stale
	tax table snapshot cached by the pricing service. Snapshots now expire
	hourly and the audit gained an alert on ledger mismatches.`},
}

// The two interest patterns: what users search for in each phase.
var netQueries = []string{
	"vpn tunnel drops", "rekey gateway timeout",
	"packet loss backups", "qos starves interactive",
	"slow dns internal", "resolver search domain",
}
var billQueries = []string{
	"duplicate annual charges", "renewal idempotency refund",
	"proration upgrade wrong", "annual rate credits",
	"tax surcharge missing", "ledger totals mismatch",
}

func main() {
	net, err := sprite.New(sprite.Options{
		Peers:             16,
		Seed:              3,
		InitialTerms:      3,
		TermsPerIteration: 2,
		MaxIndexTerms:     6, // tight cap: adapting requires *replacing* terms
	})
	if err != nil {
		log.Fatal(err)
	}
	peers := net.Peers()
	for i, tk := range tickets {
		if err := net.Share(peers[i%len(peers)], tk.id, tk.text); err != nil {
			log.Fatal(err)
		}
	}

	// hitRate reports how many queries of a pattern find their ticket in the
	// top 3 (queries are paired with tickets in order, two per ticket).
	hitRate := func(queries []string, prefix string) float64 {
		hits := 0
		for i, q := range queries {
			want := fmt.Sprintf("%s-%04d", prefix, i/2+1)
			res, err := net.Search(peers[(i+3)%len(peers)], q, 3)
			if err != nil {
				continue
			}
			for _, r := range res {
				if r.DocID == want {
					hits++
					break
				}
			}
		}
		return float64(hits) / float64(len(queries))
	}

	fmt.Println("phase 1: users ask about networking problems")
	for iter := 1; iter <= 3; iter++ {
		rate := hitRate(netQueries, "net") // searching also trains
		if _, err := net.Learn(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  iteration %d: networking hit rate %.0f%%\n", iter, rate*100)
	}

	fmt.Println("phase 2: interest shifts to billing problems")
	first := true
	for iter := 4; iter <= 7; iter++ {
		rate := hitRate(billQueries, "bill")
		if first {
			fmt.Printf("  iteration %d: billing hit rate %.0f%%  <- first exposure to billing queries\n",
				iter, rate*100)
			first = false
		} else {
			fmt.Printf("  iteration %d: billing hit rate %.0f%%\n", iter, rate*100)
		}
		if _, err := net.Learn(); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("  final:       billing hit rate %.0f%%\n", hitRate(billQueries, "bill")*100)
}
