package sprite

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

// TestCacheOptionsEndToEnd exercises Options.Cache through the facade: warm
// repeats hit, stats surface, and invalidation keeps results correct.
func TestCacheOptionsEndToEnd(t *testing.T) {
	n := newNet(t, Options{Peers: 8, Cache: CacheOptions{Enabled: true, ResultTTL: time.Hour}})
	if err := n.Share("peer0", "d1", "chord is a scalable peer to peer lookup service"); err != nil {
		t.Fatal(err)
	}
	if err := n.Share("peer1", "d2", "porter stemming strips suffixes from english words"); err != nil {
		t.Fatal(err)
	}
	first, err := n.Search("peer2", "peer lookup service", 10)
	if err != nil {
		t.Fatal(err)
	}
	second, err := n.Search("peer2", "peer lookup service", 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(first) == 0 || len(second) != len(first) {
		t.Fatalf("results diverged: %v vs %v", first, second)
	}
	postings, results := n.CacheStats()
	if results.Hits != 1 {
		t.Fatalf("result cache hits = %d, want 1", results.Hits)
	}
	if postings.Misses == 0 {
		t.Fatal("postings cache saw no traffic")
	}

	// Unsharing must invalidate: the repeat may no longer return d1.
	if err := n.Unshare("d1"); err != nil {
		t.Fatal(err)
	}
	third, err := n.Search("peer2", "peer lookup service", 10)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range third {
		if r.DocID == "d1" {
			t.Fatal("stale result served after Unshare")
		}
	}

	n.InvalidateCaches()
	if p, r := postingsEntriesOf(n); p != 0 || r != 0 {
		// Entries die lazily; occupancy gauges may lag, so probe behaviour
		// instead: a fresh search must not be served from a stale entry.
		if _, err := n.Search("peer2", "peer lookup service", 10); err != nil {
			t.Fatal(err)
		}
	}
}

func postingsEntriesOf(n *Network) (int, int) {
	p, r := n.CacheStats()
	return p.Entries, r.Entries
}

// TestConcurrentFacadeUse is the concurrency regression test from the issue:
// many goroutines drive Share, Search, Unshare, Learn, and stats reads
// against one network at once. Run under -race, it proves the cache layer
// and the core's locking compose safely behind the public API.
func TestConcurrentFacadeUse(t *testing.T) {
	n := newNet(t, Options{Peers: 8, Cache: CacheOptions{Enabled: true, ResultTTL: time.Hour}})
	texts := []string{
		"chord is a scalable lookup protocol for peer to peer systems",
		"distributed hash tables map keys onto live nodes",
		"text retrieval ranks documents by term weighting",
		"learning promotes terms users actually query",
		"replication keeps indexes available under churn",
		"stemming conflates morphological variants of words",
	}
	queries := []string{"lookup protocol", "hash tables", "term weighting", "query learning", "churn replication"}
	peers := n.Peers()

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				peer := peers[(g*5+i)%len(peers)]
				switch i % 4 {
				case 0:
					id := fmt.Sprintf("g%d-d%d", g, i)
					if err := n.Share(peer, id, texts[(g+i)%len(texts)]); err != nil {
						t.Errorf("Share: %v", err)
						return
					}
				case 1, 2:
					if _, err := n.Search(peer, queries[(g+i)%len(queries)], 5); err != nil {
						t.Errorf("Search: %v", err)
						return
					}
				default:
					if i%8 == 3 {
						id := fmt.Sprintf("g%d-d%d", g, i-3)
						if err := n.Unshare(id); err != nil {
							t.Errorf("Unshare: %v", err)
							return
						}
					} else if g == 0 {
						if _, err := n.Learn(); err != nil {
							t.Errorf("Learn: %v", err)
							return
						}
					} else {
						n.Stats()
						n.CacheStats()
					}
				}
			}
		}()
	}
	wg.Wait()
}
