package sprite

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/spritedht/sprite/internal/simnet"
)

func TestNewValidatesResilienceOptions(t *testing.T) {
	bad := []ResilienceOptions{
		{MaxRetries: -1},
		{BaseBackoff: -time.Millisecond},
		{PerCallTimeout: -time.Millisecond},
		{Hedge: -time.Millisecond},
	}
	for i, rc := range bad {
		if _, err := New(Options{Peers: 2, Resilience: rc}); err == nil {
			t.Errorf("bad resilience options %d accepted: %+v", i, rc)
		}
	}
}

func TestSearchCtxDeadline(t *testing.T) {
	n := newNet(t, Options{Peers: 8})
	if err := n.Share("peer0", "d1", "distributed hash table lookup"); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	if _, err := n.SearchCtx(ctx, "peer1", "lookup", 5); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("expired-context search: %v, want context.DeadlineExceeded", err)
	}
}

func TestShareCtxAndLearnCtxCancellation(t *testing.T) {
	n := newNet(t, Options{Peers: 8})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := n.ShareCtx(ctx, "peer0", "d1", "chord ring routing"); !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled ShareCtx: %v, want context.Canceled", err)
	}
	if err := n.Share("peer0", "d1", "chord ring routing"); err != nil {
		t.Fatal(err)
	}
	if _, err := n.LearnCtx(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled LearnCtx: %v, want context.Canceled", err)
	}
}

func TestSentinelErrorsAtFacade(t *testing.T) {
	n := newNet(t, Options{Peers: 4})
	if err := n.Share("nobody", "d1", "some text here"); !errors.Is(err, ErrNoSuchPeer) {
		t.Fatalf("Share unknown peer: %v, want ErrNoSuchPeer", err)
	}
	if _, err := n.SearchCtx(context.Background(), "nobody", "text", 5); !errors.Is(err, ErrNoSuchPeer) {
		t.Fatalf("SearchCtx unknown peer: %v, want ErrNoSuchPeer", err)
	}
	if _, err := n.IndexedTerms("nodoc"); !errors.Is(err, ErrNoSuchDoc) {
		t.Fatalf("IndexedTerms unknown doc: %v, want ErrNoSuchDoc", err)
	}
}

func TestSearchCtxPartialResults(t *testing.T) {
	// Fail a term's indexing peer with no replication: the context-first
	// search must surface the dropped term as ErrPartialResults while the old
	// entry point keeps returning a nil error.
	n := newNet(t, Options{Peers: 10, Seed: 3})
	if err := n.ShareTerms("peer0", "A", map[string]int{"klmno": 5}); err != nil {
		t.Fatal(err)
	}
	if err := n.ShareTerms("peer1", "B", map[string]int{"qrstu": 5}); err != nil {
		t.Fatal(err)
	}
	// Find and fail the peer indexing klmno: without replication the term is
	// lost when every candidate holder (the routed-to successor) serves
	// nothing... so instead locate the holder by elimination: fail each peer
	// until the single-term search stops returning A.
	victim := ""
	for _, p := range n.Peers() {
		if p == "peer2" {
			continue // keep the querying peer up
		}
		n.FailPeer(p)
		got, err := n.SearchTermsCtx(context.Background(), "peer2", []string{"klmno"}, 5)
		if err != nil || len(got) == 0 {
			victim = p
			break
		}
		n.RecoverPeer(p)
	}
	if victim == "" {
		t.Fatal("could not locate the indexing peer for klmno")
	}

	// A failed peer is routed around by the DHT (lookups land on its
	// successor, which simply has no postings), so a partial error needs the
	// holder to be unreachable while still resolvable — drop its calls
	// instead. Recover first, then inject the transient fault.
	n.RecoverPeer(victim)
	sim := n.sim
	if sim == nil {
		t.Fatal("simulated transport expected")
	}
	sim.DropCalls(simnet.Addr(victim), 1_000_000)

	res, err := n.SearchTermsCtx(context.Background(), "peer2", []string{"qrstu", "klmno"}, 5)
	if !errors.Is(err, ErrPartialResults) {
		t.Fatalf("SearchTermsCtx = %v, want ErrPartialResults", err)
	}
	var pe *PartialError
	if !errors.As(err, &pe) || len(pe.Failures) != 1 || pe.Failures[0].Term != "klmno" {
		t.Fatalf("partial error detail: %+v", err)
	}
	if !strings.Contains(err.Error(), "klmno") {
		t.Fatalf("error message does not name the dropped term: %v", err)
	}
	if len(res) != 1 || res[0].DocID != "B" {
		t.Fatalf("remaining-term results = %+v, want [B]", res)
	}

	// Old entry point: same degraded ranking, nil error.
	res2, err := n.SearchTerms("peer2", []string{"qrstu", "klmno"}, 5)
	if err != nil {
		t.Fatalf("SearchTerms surfaced partial error: %v", err)
	}
	if len(res2) != 1 || res2[0].DocID != "B" {
		t.Fatalf("SearchTerms degraded results = %+v", res2)
	}
}

func TestFailPeerConcurrentSearchRace(t *testing.T) {
	// Regression for the FailPeer/RecoverPeer vs concurrent Search race: the
	// liveness flip plus cache invalidation must never let a racing search
	// re-store a pre-failure result. Run under -race.
	n := newNet(t, Options{Peers: 8, Cache: CacheOptions{Enabled: true}})
	if err := n.Share("peer0", "d1", "chord ring lookup protocol"); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < 100; i++ {
			n.SearchTerms("peer2", []string{"chord"}, 5)
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 25; i++ {
			n.FailPeer("peer3")
			n.RecoverPeer("peer3")
		}
	}()
	wg.Wait()
}

func TestResilientSearchRecoversFromTransientDrops(t *testing.T) {
	// End-to-end through the facade: a holder dropping a bounded number of
	// calls is survived by retries alone (no replication involved).
	n := newNet(t, Options{
		Peers: 8,
		Resilience: ResilienceOptions{
			MaxRetries:  3,
			BaseBackoff: time.Microsecond,
		},
	})
	if err := n.ShareTerms("peer0", "D", map[string]int{"vwxyz": 3}); err != nil {
		t.Fatal(err)
	}
	res, err := n.SearchTerms("peer1", []string{"vwxyz"}, 5)
	if err != nil || len(res) != 1 {
		t.Fatalf("healthy search: %v %+v", err, res)
	}
	// Every peer drops its next 2 calls; with 3 retries each fetch still
	// lands.
	for _, p := range n.Peers() {
		n.sim.DropCalls(simnet.Addr(p), 2)
	}
	res, err = n.SearchTerms("peer1", []string{"vwxyz"}, 5)
	if err != nil {
		t.Fatalf("search under transient drops: %v", err)
	}
	if len(res) != 1 || res[0].DocID != "D" {
		t.Fatalf("results under transient drops = %+v", res)
	}
}
