package sprite_test

import (
	"fmt"
	"log"

	"github.com/spritedht/sprite"
)

// The smallest complete program: share two documents and search.
func ExampleNew() {
	net, err := sprite.New(sprite.Options{Peers: 8, Seed: 100})
	if err != nil {
		log.Fatal(err)
	}
	net.Share("peer0", "chord", "Chord is a scalable lookup protocol for peer to peer systems")
	net.Share("peer1", "porter", "The Porter stemmer strips suffixes from English words")

	results, _ := net.Search("peer3", "lookup protocol", 5)
	for _, r := range results {
		fmt.Println(r.DocID)
	}
	// Output:
	// chord
}

// Learning promotes terms that appear in queries but were not frequent
// enough for the initial index.
func ExampleNetwork_Learn() {
	net, err := sprite.New(sprite.Options{
		Peers:             8,
		Seed:              100,
		InitialTerms:      1,
		TermsPerIteration: 2,
		MaxIndexTerms:     4,
	})
	if err != nil {
		log.Fatal(err)
	}
	net.ShareTerms("peer0", "doc", map[string]int{"popular": 9, "obscure": 1})

	// Before learning, the rare term is not indexed.
	before, _ := net.SearchTerms("peer2", []string{"obscure"}, 5)
	fmt.Println("before:", len(before))

	// A user query pairs the indexed term with the rare one; the indexing
	// peer remembers it, and the next learning iteration indexes "obscure".
	net.SearchTerms("peer2", []string{"popular", "obscure"}, 5)
	net.Learn()

	after, _ := net.SearchTerms("peer2", []string{"obscure"}, 5)
	fmt.Println("after:", len(after))
	// Output:
	// before: 0
	// after: 1
}

// IndexedTerms exposes which terms a document is currently findable under.
func ExampleNetwork_IndexedTerms() {
	net, err := sprite.New(sprite.Options{Peers: 4, Seed: 100, InitialTerms: 2})
	if err != nil {
		log.Fatal(err)
	}
	net.ShareTerms("peer0", "doc", map[string]int{"alpha": 3, "beta": 2, "gamma": 1})
	terms, _ := net.IndexedTerms("doc")
	fmt.Println(terms)
	// Output:
	// [alpha beta]
}

// Unshare withdraws a document from the distributed index entirely.
func ExampleNetwork_Unshare() {
	net, err := sprite.New(sprite.Options{Peers: 4, Seed: 100})
	if err != nil {
		log.Fatal(err)
	}
	net.ShareTerms("peer0", "doc", map[string]int{"fleeting": 2})
	net.Unshare("doc")
	results, _ := net.SearchTerms("peer1", []string{"fleeting"}, 5)
	fmt.Println(len(results))
	// Output:
	// 0
}
