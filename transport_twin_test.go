package sprite

import (
	"fmt"
	"testing"
)

// TestTransportTwinDeterminism runs one workload — share, search, learn,
// search again — on the simulator, the pooled multiplexed TCP transport, and
// the naive dial-per-RPC TCP transport, and requires byte-identical rankings
// (document IDs and scores) from all three. The transport is infrastructure:
// if changing it changes what a search returns, the transport is wrong.
func TestTransportTwinDeterminism(t *testing.T) {
	docs := []string{
		"chord scalable lookup protocol for internet applications",
		"distributed hash tables partition keys across peers",
		"progressive index tuning learns terms from query streams",
		"replication keeps postings available through peer churn",
		"text retrieval ranks documents by term frequency weights",
	}
	queries := []string{"lookup peers", "index tuning query", "replication churn", "retrieval weights"}

	type hit struct {
		doc   string
		score float64
	}
	run := func(opts Options) [][]hit {
		n, err := New(opts)
		if err != nil {
			t.Fatalf("New(%+v): %v", opts, err)
		}
		defer n.Close()
		peers := n.Peers()
		for i, text := range docs {
			if err := n.Share(peers[i%len(peers)], fmt.Sprintf("doc-%d", i), text); err != nil {
				t.Fatalf("Share doc-%d: %v", i, err)
			}
		}
		var rankings [][]hit
		collect := func(peer, q string) {
			res, err := n.Search(peer, q, 10)
			if err != nil {
				t.Fatalf("Search %q: %v", q, err)
			}
			hits := make([]hit, 0, len(res))
			for _, r := range res {
				hits = append(hits, hit{doc: r.DocID, score: r.Score})
			}
			rankings = append(rankings, hits)
		}
		for i, q := range queries {
			collect(peers[(i+1)%len(peers)], q)
		}
		if _, err := n.Learn(); err != nil {
			t.Fatalf("Learn: %v", err)
		}
		for i, q := range queries {
			collect(peers[(i+2)%len(peers)], q)
		}
		return rankings
	}

	base := Options{Peers: 6, Seed: 7, InitialTerms: 3, TermsPerIteration: 2, MaxIndexTerms: 8}
	variants := map[string][][]hit{}
	variants["simnet"] = run(base)
	pooled := base
	pooled.TCP = true
	variants["pooled"] = run(pooled)
	dial := base
	dial.TCP = true
	dial.TCPTransport = "dial"
	variants["dial"] = run(dial)

	want := variants["simnet"]
	for name, got := range variants {
		if len(got) != len(want) {
			t.Fatalf("%s produced %d rankings, simnet %d", name, len(got), len(want))
		}
		for qi := range want {
			if len(got[qi]) != len(want[qi]) {
				t.Fatalf("%s query %d returned %d hits, simnet %d:\n%v\nvs\n%v",
					name, qi, len(got[qi]), len(want[qi]), got[qi], want[qi])
			}
			for hi := range want[qi] {
				if got[qi][hi] != want[qi][hi] {
					t.Fatalf("%s query %d hit %d = %+v, simnet %+v — transports disagree on ranking",
						name, qi, hi, got[qi][hi], want[qi][hi])
				}
			}
		}
	}
}

// TestTCPTransportOptionValidation pins the facade's option contract.
func TestTCPTransportOptionValidation(t *testing.T) {
	if _, err := New(Options{Peers: 2, TCP: true, TCPTransport: "quic"}); err == nil {
		t.Fatal("unknown TCPTransport accepted")
	}
	// TCPTransport without TCP is ignored (simulated mode).
	n, err := New(Options{Peers: 2, TCPTransport: "dial"})
	if err != nil {
		t.Fatalf("TCPTransport in sim mode: %v", err)
	}
	n.Close()
}
