package sprite

import (
	"errors"
	"testing"
)

func TestSearchSimilarFacade(t *testing.T) {
	n := newNet(t, Options{Peers: 8, Seed: 4, Sketch: SketchOptions{Enabled: true}})
	shares := []struct{ peer, id, text string }{
		{"peer0", "doc-chord", "Chord is a scalable peer-to-peer lookup protocol for distributed hash tables"},
		{"peer1", "doc-pastry", "Pastry is a scalable peer-to-peer overlay routing protocol for distributed systems"},
		{"peer2", "doc-porter", "The Porter stemmer strips suffixes from English words for text processing"},
	}
	for _, s := range shares {
		if err := n.Share(s.peer, s.id, s.text); err != nil {
			t.Fatalf("Share %s: %v", s.id, err)
		}
	}
	res, err := n.SearchSimilar("peer3", "doc-chord", 2)
	if err != nil {
		t.Fatalf("SearchSimilar: %v", err)
	}
	if len(res) == 0 {
		t.Fatal("no similar documents found")
	}
	// The overlay-routing doc must beat the stemming doc for doc-chord, and
	// the query doc must not be among its own results.
	if res[0].DocID != "doc-pastry" {
		t.Fatalf("top similar = %+v, want doc-pastry first", res)
	}
	if res[0].Owner != "peer1" {
		t.Fatalf("Owner = %q, want peer1", res[0].Owner)
	}
	for _, r := range res {
		if r.DocID == "doc-chord" {
			t.Fatalf("query doc in its own results: %+v", res)
		}
	}

	if _, err := n.SearchSimilar("peer3", "no-such-doc", 2); !errors.Is(err, ErrNoSuchDoc) {
		t.Fatalf("unknown doc: err = %v, want ErrNoSuchDoc", err)
	}
}

func TestSearchSimilarDisabledFacade(t *testing.T) {
	n := newNet(t, Options{Peers: 4, Seed: 4})
	if err := n.Share("peer0", "d", "some document text here"); err != nil {
		t.Fatal(err)
	}
	if _, err := n.SearchSimilar("peer1", "d", 3); !errors.Is(err, ErrSketchDisabled) {
		t.Fatalf("err = %v, want ErrSketchDisabled", err)
	}
}
