package text

import (
	"strings"
	"testing"
	"unicode/utf8"
)

// Fuzz targets for the text pipeline: the stemmer and tokenizer sit on the
// untrusted input path (document bodies, raw queries), so they must never
// panic and must respect their structural invariants on arbitrary bytes.
// Run with `go test -fuzz=FuzzStem ./internal/text`; under plain `go test`
// the seed corpus executes as regular tests.

func FuzzStem(f *testing.F) {
	for _, seed := range []string{
		"", "a", "running", "caresses", "ponies", "sky", "rhythm",
		"generalization", "日本語", "x86", strings.Repeat("ab", 40),
		"yyyyyy", "aeiouaeiou", "bcdfgh",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, w string) {
		got := Stem(w)
		if len(got) > len(w) {
			t.Fatalf("Stem(%q) grew: %q", w, got)
		}
		if len(w) <= 2 && got != w {
			t.Fatalf("Stem(%q) altered a short word: %q", w, got)
		}
		if len(got) > 0 && len(w) > 0 && got[0] != w[0] {
			t.Fatalf("Stem(%q) changed the first byte: %q", w, got)
		}
		// Stems are DHT keys: re-analyzing a stored term must not move it.
		if again := Stem(got); again != got {
			t.Fatalf("Stem not idempotent: %q -> %q -> %q", w, got, again)
		}
	})
}

func FuzzTokenize(f *testing.F) {
	for _, seed := range []string{
		"", "hello world", "a-b-c", "ALL CAPS", "mixed42numbers",
		"punctuation!?;:", "tabs\tand\nnewlines", "日本語 text", "\x00\xff",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		toks := Tokenize(s)
		for _, tok := range toks {
			if tok == "" {
				t.Fatal("empty token")
			}
			if !utf8.ValidString(tok) && utf8.ValidString(s) {
				t.Fatalf("invalid UTF-8 token %q from valid input", tok)
			}
			if tok != strings.ToLower(tok) {
				t.Fatalf("token %q not lowercased", tok)
			}
			// A produced token is already canonical: re-tokenizing it must
			// yield exactly itself, or terms would drift on re-analysis.
			if again := Tokenize(tok); len(again) != 1 || again[0] != tok {
				t.Fatalf("Tokenize not idempotent on token %q: %v", tok, again)
			}
		}
	})
}

func FuzzAnalyzerTerms(f *testing.F) {
	f.Add("The databases are indexing queries", false, false)
	f.Add("stop words the and of", true, false)
	f.Add("unstemmed running words", false, true)
	f.Fuzz(func(t *testing.T, s string, keepStops, noStem bool) {
		a := Analyzer{KeepStopWords: keepStops, NoStemming: noStem}
		terms := a.Terms(s)
		tf, n := a.TermFreq(s)
		if n != len(terms) {
			t.Fatalf("TermFreq length %d != Terms length %d", n, len(terms))
		}
		total := 0
		for _, c := range tf {
			if c <= 0 {
				t.Fatal("non-positive term frequency")
			}
			total += c
		}
		if total != n {
			t.Fatalf("tf sums to %d, want %d", total, n)
		}
	})
}
