package text

import (
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestTokenizeBasic(t *testing.T) {
	got := Tokenize("Hello, World! 42 foo-bar")
	want := []string{"hello", "world", "42", "foo", "bar"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Tokenize = %v, want %v", got, want)
	}
}

func TestTokenizeEmptyAndPunctuation(t *testing.T) {
	if got := Tokenize(""); len(got) != 0 {
		t.Fatalf("Tokenize(\"\") = %v", got)
	}
	if got := Tokenize("?!... --- ;;;"); len(got) != 0 {
		t.Fatalf("Tokenize(punct) = %v", got)
	}
}

func TestTokenizeUnicode(t *testing.T) {
	got := Tokenize("Café au Lait")
	want := []string{"café", "au", "lait"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Tokenize = %v, want %v", got, want)
	}
}

func TestTokenizeLowercasesProperty(t *testing.T) {
	f := func(s string) bool {
		for _, tok := range Tokenize(s) {
			if tok != strings.ToLower(tok) {
				return false
			}
			if tok == "" {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestStopWords(t *testing.T) {
	for _, w := range []string{"the", "is", "a", "with", "that", "into"} {
		if !IsStopWord(w) {
			t.Errorf("%q should be a stop word", w)
		}
	}
	for _, w := range []string{"database", "retrieval", "chord", "i", "he"} {
		if IsStopWord(w) {
			t.Errorf("%q should not be a stop word", w)
		}
	}
	if got := len(StopWords()); got != 33 {
		t.Errorf("Lucene default stop list has 33 entries, got %d", got)
	}
}

// Canonical examples from Porter's paper and the reference implementation's
// vocabulary, covering every step of the algorithm. Where Stem's fixed-point
// iteration (see the Stem doc comment) diverges from the single-pass 1980
// output, the expected value is the fixed point and the line says so.
func TestStemKnownVectors(t *testing.T) {
	cases := map[string]string{
		// step 1a
		"caresses": "caress",
		"ponies":   "poni",
		"ties":     "ti",
		"caress":   "caress",
		"cats":     "cat",
		// step 1b
		"feed":      "feed",
		"agreed":    "agr", // fixed point: "agre" re-stems to "agr"
		"plastered": "plaster",
		"bled":      "bled",
		"motoring":  "motor",
		"sing":      "sing",
		"conflated": "conflat",
		"troubled":  "troubl",
		"sized":     "size",
		"hopping":   "hop",
		"tanned":    "tan",
		"falling":   "fall",
		"hissing":   "hiss",
		"fizzed":    "fizz",
		"failing":   "fail",
		"filing":    "file",
		// step 1c
		"happy": "happi",
		"sky":   "sky",
		// step 2
		"relational":     "relat",
		"conditional":    "condit",
		"rational":       "ration",
		"valenci":        "valenc",
		"hesitanci":      "hesit",
		"digitizer":      "digit",
		"conformabli":    "conform",
		"radicalli":      "radic",
		"differentli":    "differ",
		"vileli":         "vile",
		"analogousli":    "analog",
		"vietnamization": "vietnam",
		"predication":    "predic",
		"operator":       "oper",
		"feudalism":      "feudal",
		"decisiveness":   "deci", // fixed point: "decis" sheds its plural-like s
		"hopefulness":    "hope",
		"callousness":    "callou", // fixed point: "callous" sheds its final s
		"formaliti":      "formal",
		"sensitiviti":    "sensit",
		"sensibiliti":    "sensibl",
		// step 3
		"triplicate":  "triplic",
		"formative":   "form",
		"formalize":   "formal",
		"electriciti": "electr",
		"electrical":  "electr",
		"hopeful":     "hope",
		"goodness":    "good",
		// step 4
		"revival":     "reviv",
		"allowance":   "allow",
		"inference":   "infer",
		"airliner":    "airlin",
		"gyroscopic":  "gyroscop",
		"adjustable":  "adjust",
		"defensible":  "defen", // fixed point: "defens" sheds its final s
		"irritant":    "irrit",
		"replacement": "replac",
		"adjustment":  "adjust",
		"dependent":   "depend",
		"adoption":    "adopt",
		"homologou":   "homolog",
		"communism":   "commun",
		"activate":    "activ",
		"angulariti":  "angular",
		"homologous":  "homolog",
		"effective":   "effect",
		"bowdlerize":  "bowdler",
		// step 5
		"probate":  "probat",
		"rate":     "rate",
		"cease":    "cea", // fixed point: "ceas" sheds its final s
		"controll": "control",
		"roll":     "roll",
		// general IR examples the corpus relies on
		"retrieval": "retriev",
		"databases": "databa", // fixed point: "databas" sheds its final s
		"indexing":  "index",
		"queries":   "queri",
		"networks":  "network",
		"learning":  "learn",
		"documents": "document",
	}
	for in, want := range cases {
		if got := Stem(in); got != want {
			t.Errorf("Stem(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestStemShortWordsUnchanged(t *testing.T) {
	for _, w := range []string{"", "a", "is", "go", "ox"} {
		if got := Stem(w); got != w {
			t.Errorf("Stem(%q) = %q, want unchanged", w, got)
		}
	}
}

func TestStemIdempotentOnCommonVocabulary(t *testing.T) {
	// Stem iterates the Porter pass to a fixed point, so idempotency holds by
	// construction; verify on a realistic vocabulary anyway so a regression in
	// the iteration would surface here before the fuzz target sees it.
	words := []string{
		"connection", "connections", "connective", "connected", "connecting",
		"relate", "relativity", "generalization", "oscillators", "peers",
		"distributed", "structured", "keywords", "similarity", "frequencies",
	}
	for _, w := range words {
		once := Stem(w)
		if twice := Stem(once); twice != once {
			t.Errorf("Stem not stable on %q: %q -> %q", w, once, twice)
		}
	}
}

func TestStemNeverGrowsProperty(t *testing.T) {
	f := func(s string) bool {
		// Constrain to plausible lowercase words.
		w := strings.Map(func(r rune) rune {
			if r >= 'a' && r <= 'z' {
				return r
			}
			return -1
		}, strings.ToLower(s))
		if len(w) > 30 {
			w = w[:30]
		}
		return len(Stem(w)) <= len(w)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestStemUnifiesInflections(t *testing.T) {
	groups := [][]string{
		{"index", "indexes", "indexing", "indexed"},
		{"query", "queries", "queried", "querying"},
		{"compute", "computing", "computed", "computes"},
	}
	for _, g := range groups {
		stem := Stem(g[0])
		for _, w := range g[1:] {
			if got := Stem(w); got != stem {
				t.Errorf("Stem(%q) = %q, want %q (same group as %q)", w, got, stem, g[0])
			}
		}
	}
}

func TestAnalyzerDefaultPipeline(t *testing.T) {
	var a Analyzer
	got := a.Terms("The quick databases are indexing queries!")
	want := []string{"quick", "databa", "index", "queri"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Terms = %v, want %v", got, want)
	}
}

func TestAnalyzerKeepStopWords(t *testing.T) {
	a := Analyzer{KeepStopWords: true, NoStemming: true}
	got := a.Terms("the cat sat")
	want := []string{"the", "cat", "sat"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Terms = %v, want %v", got, want)
	}
}

func TestAnalyzerNoStemming(t *testing.T) {
	a := Analyzer{NoStemming: true}
	got := a.Terms("indexing queries")
	want := []string{"indexing", "queries"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Terms = %v, want %v", got, want)
	}
}

func TestAnalyzerMinLength(t *testing.T) {
	a := Analyzer{NoStemming: true, MinLength: 5}
	got := a.Terms("tiny word lengthy expression")
	want := []string{"lengthy", "expression"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Terms = %v, want %v", got, want)
	}
}

func TestTermFreq(t *testing.T) {
	var a Analyzer
	tf, n := a.TermFreq("index the index and reindex the indexes")
	if n != 4 {
		t.Fatalf("length = %d, want 4 (stop words removed)", n)
	}
	if tf["index"] != 3 {
		t.Fatalf("tf[index] = %d, want 3 (index, index, indexes)", tf["index"])
	}
	if tf["reindex"] != 1 {
		t.Fatalf("tf[reindex] = %d, want 1", tf["reindex"])
	}
}

func TestTermFreqEmpty(t *testing.T) {
	var a Analyzer
	tf, n := a.TermFreq("")
	if n != 0 || len(tf) != 0 {
		t.Fatalf("TermFreq(\"\") = %v, %d", tf, n)
	}
}

func TestStemRobustToNonASCII(t *testing.T) {
	// The stemmer operates on bytes; multi-byte runes must pass through
	// without panicking or corrupting length accounting.
	for _, w := range []string{"café", "naïve", "日本語", "ação", "überlegen"} {
		got := Stem(w)
		if len(got) > len(w) {
			t.Errorf("Stem(%q) grew to %q", w, got)
		}
	}
}

func TestStemDigitsAndMixed(t *testing.T) {
	for _, w := range []string{"2024", "x86", "ipv6", "b2b", "123456789"} {
		if got := Stem(w); got == "" {
			t.Errorf("Stem(%q) produced empty string", w)
		}
	}
}

func TestStemAllConsonantsAndVowels(t *testing.T) {
	for _, w := range []string{"rhythm", "zzz", "aeiou", "yyyy", "sky"} {
		got := Stem(w)
		if got == "" {
			t.Errorf("Stem(%q) = empty", w)
		}
	}
}

func TestStemVeryLongWord(t *testing.T) {
	long := strings.Repeat("anti", 50) + "establishment"
	if got := Stem(long); len(got) == 0 || len(got) > len(long) {
		t.Fatalf("long word mishandled: %d -> %d bytes", len(long), len(got))
	}
}

func TestStopWordsAreNotStemTargets(t *testing.T) {
	// The pipeline removes stop words before stemming; verify no stop word
	// would stem into a content term that could collide surprisingly.
	var a Analyzer
	for _, w := range StopWords() {
		if got := a.Terms(w); len(got) != 0 {
			t.Errorf("stop word %q survived the pipeline as %v", w, got)
		}
	}
}

func TestTokenizeVsFieldsProperty(t *testing.T) {
	// For pure space-separated lowercase ASCII input, Tokenize must agree
	// with strings.Fields.
	f := func(words []string) bool {
		var clean []string
		for _, w := range words {
			w = strings.Map(func(r rune) rune {
				if r >= 'a' && r <= 'z' {
					return r
				}
				return -1
			}, w)
			if w != "" {
				clean = append(clean, w)
			}
		}
		got := Tokenize(strings.Join(clean, " "))
		if len(got) != len(clean) {
			return false
		}
		for i := range got {
			if got[i] != clean[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestAnalyzerTermsDeterministic(t *testing.T) {
	var a Analyzer
	const input = "Databases are indexing; databases are retrieving!"
	first := a.Terms(input)
	for i := 0; i < 5; i++ {
		got := a.Terms(input)
		if !reflect.DeepEqual(got, first) {
			t.Fatal("Analyzer.Terms not deterministic")
		}
	}
}

func TestTermFreqAgreesWithTerms(t *testing.T) {
	var a Analyzer
	const input = "storage engines store and index stored data in storage"
	terms := a.Terms(input)
	tf, n := a.TermFreq(input)
	if n != len(terms) {
		t.Fatalf("length mismatch: %d vs %d", n, len(terms))
	}
	count := map[string]int{}
	for _, term := range terms {
		count[term]++
	}
	if !reflect.DeepEqual(tf, count) {
		t.Fatalf("TermFreq %v != recount %v", tf, count)
	}
}
