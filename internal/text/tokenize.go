// Package text implements the document preprocessing pipeline the SPRITE
// paper prescribes (§5.2, §6): tokenization, removal of the terms in the
// stop-word list ("The default stop-word-list in Lucene is used"), and
// suffix stripping with the Porter stemming algorithm — the standard,
// well-studied choices in the text-retrieval community the paper invokes.
package text

import (
	"strings"
	"unicode"
)

// Tokenize splits raw text into lowercase alphanumeric tokens. Any run of
// letters or digits is a token; everything else is a separator. This matches
// the behaviour of Lucene's classic LetterTokenizer + LowerCaseFilter for
// English text, the toolchain contemporary with the paper.
func Tokenize(s string) []string {
	var tokens []string
	var b strings.Builder
	flush := func() {
		if b.Len() > 0 {
			tokens = append(tokens, b.String())
			b.Reset()
		}
	}
	for _, r := range s {
		switch {
		case unicode.IsLetter(r) || unicode.IsDigit(r):
			b.WriteRune(unicode.ToLower(r))
		default:
			flush()
		}
	}
	flush()
	return tokens
}

// luceneStopWords is Lucene's default English stop-word set
// (StandardAnalyzer.STOP_WORDS_SET), used verbatim per §6 of the paper.
var luceneStopWords = map[string]bool{
	"a": true, "an": true, "and": true, "are": true, "as": true, "at": true,
	"be": true, "but": true, "by": true, "for": true, "if": true, "in": true,
	"into": true, "is": true, "it": true, "no": true, "not": true, "of": true,
	"on": true, "or": true, "such": true, "that": true, "the": true,
	"their": true, "then": true, "there": true, "these": true, "they": true,
	"this": true, "to": true, "was": true, "will": true, "with": true,
}

// IsStopWord reports whether the (lowercase) token is in Lucene's default
// English stop-word list.
func IsStopWord(tok string) bool { return luceneStopWords[tok] }

// StopWords returns a copy of the stop-word set, for callers that need to
// enumerate it (e.g. corpus generators that must avoid emitting stop words
// as content terms).
func StopWords() []string {
	out := make([]string, 0, len(luceneStopWords))
	for w := range luceneStopWords {
		out = append(out, w)
	}
	return out
}

// Analyzer bundles the full pipeline with optional knobs. The zero value is
// the paper's default pipeline (stop-word removal on, stemming on, minimum
// token length 2).
type Analyzer struct {
	// KeepStopWords disables stop-word elimination.
	KeepStopWords bool
	// NoStemming disables Porter stemming.
	NoStemming bool
	// MinLength drops tokens shorter than this many bytes after stemming;
	// 0 means the default of 2 (single characters are never useful index
	// terms and would otherwise pollute the DHT).
	MinLength int
}

// Terms runs the pipeline over raw text and returns the processed term
// sequence (duplicates preserved, order preserved).
func (a Analyzer) Terms(s string) []string {
	minLen := a.MinLength
	if minLen == 0 {
		minLen = 2
	}
	toks := Tokenize(s)
	out := toks[:0]
	for _, tok := range toks {
		if !a.KeepStopWords && IsStopWord(tok) {
			continue
		}
		if !a.NoStemming {
			tok = Stem(tok)
		}
		if len(tok) < minLen {
			continue
		}
		out = append(out, tok)
	}
	return out
}

// TermFreq runs the pipeline and returns term frequencies plus the document
// length (total number of surviving tokens). This is exactly the metadata an
// owner peer computes when locally indexing a shared document (§3).
func (a Analyzer) TermFreq(s string) (tf map[string]int, length int) {
	terms := a.Terms(s)
	tf = make(map[string]int, len(terms))
	for _, t := range terms {
		tf[t]++
	}
	return tf, len(terms)
}
