package text

// This file implements the Porter stemming algorithm (M.F. Porter, "An
// algorithm for suffix stripping", Program 14(3), 1980), following the
// author's reference implementation structure. The stemmer is the suffix
// remover the SPRITE paper applies before indexing ("we apply the stemming
// algorithm to unify terms by removing the suffix, such as 'ed' and 'ing'",
// §5.2).

// Stem reduces an English word (expected lowercase ASCII; other input is
// returned unchanged where it does not match the algorithm's patterns) to
// its Porter stem. Words of length <= 2 are returned as-is, per the
// reference implementation.
//
// Unlike the 1980 algorithm, Stem is idempotent: Stem(Stem(w)) == Stem(w).
// A single Porter pass is not — step 5a can strip a final e and expose a
// trailing y that a later pass's step 1c would turn to i ("asjldsye" ->
// "asjldsy" -> "asjldsi"). SPRITE uses stems as DHT keys, so a term that
// re-enters the analyzer (query expansion over stored terms, cached-query
// replay) must hash to the same key; Stem therefore iterates the pass to a
// fixed point. Each pass never grows the word, so the loop terminates.
func Stem(word string) string {
	for {
		if len(word) <= 2 {
			return word
		}
		s := stemmer{b: []byte(word), k: len(word) - 1}
		s.step1ab()
		s.step1c()
		s.step2()
		s.step3()
		s.step4()
		s.step5()
		out := string(s.b[:s.k+1])
		if out == word {
			return out
		}
		word = out
	}
}

// stemmer holds the working buffer. b[0..k] is the current word; j is the
// general offset marking the stem boundary for the suffix under test.
type stemmer struct {
	b    []byte
	k, j int
}

// cons reports whether b[i] is a consonant.
func (s *stemmer) cons(i int) bool {
	switch s.b[i] {
	case 'a', 'e', 'i', 'o', 'u':
		return false
	case 'y':
		if i == 0 {
			return true
		}
		return !s.cons(i - 1)
	}
	return true
}

// m measures the number of consonant sequences in b[0..j]. If c is a
// consonant sequence and v a vowel sequence, then for <c><v>c<v>c... the
// measure counts the vc pairs.
func (s *stemmer) m() int {
	n, i := 0, 0
	for {
		if i > s.j {
			return n
		}
		if !s.cons(i) {
			break
		}
		i++
	}
	i++
	for {
		for {
			if i > s.j {
				return n
			}
			if s.cons(i) {
				break
			}
			i++
		}
		i++
		n++
		for {
			if i > s.j {
				return n
			}
			if !s.cons(i) {
				break
			}
			i++
		}
		i++
	}
}

// vowelInStem reports whether b[0..j] contains a vowel.
func (s *stemmer) vowelInStem() bool {
	for i := 0; i <= s.j; i++ {
		if !s.cons(i) {
			return true
		}
	}
	return false
}

// doublec reports whether b[i-1..i] is a double consonant.
func (s *stemmer) doublec(i int) bool {
	if i < 1 {
		return false
	}
	if s.b[i] != s.b[i-1] {
		return false
	}
	return s.cons(i)
}

// cvc reports whether b[i-2..i] is consonant-vowel-consonant where the final
// consonant is not w, x, or y. Used to restore a trailing e on short words
// (cav(e), lov(e), hop(e)) but not on words like snow, box, tray.
func (s *stemmer) cvc(i int) bool {
	if i < 2 || !s.cons(i) || s.cons(i-1) || !s.cons(i-2) {
		return false
	}
	switch s.b[i] {
	case 'w', 'x', 'y':
		return false
	}
	return true
}

// ends reports whether b[0..k] ends with suffix; on success it sets j to the
// stem boundary.
func (s *stemmer) ends(suffix string) bool {
	l := len(suffix)
	o := s.k - l + 1
	if o < 0 {
		return false
	}
	for i := 0; i < l; i++ {
		if s.b[o+i] != suffix[i] {
			return false
		}
	}
	s.j = s.k - l
	return true
}

// setto replaces the suffix after j with the given string and adjusts k.
func (s *stemmer) setto(repl string) {
	s.b = append(s.b[:s.j+1], repl...)
	s.k = s.j + len(repl)
}

// r replaces the suffix if the measure of the stem is positive.
func (s *stemmer) r(repl string) {
	if s.m() > 0 {
		s.setto(repl)
	}
}

// step1ab removes plurals and -ed/-ing:
//
//	caresses -> caress, ponies -> poni, ties -> ti, caress -> caress,
//	cats -> cat, feed -> feed, agreed -> agree, plastered -> plaster,
//	motoring -> motor, sing -> sing.
func (s *stemmer) step1ab() {
	if s.b[s.k] == 's' {
		switch {
		case s.ends("sses"):
			s.k -= 2
		case s.ends("ies"):
			s.setto("i")
		case s.b[s.k-1] != 's':
			s.k--
		}
	}
	if s.ends("eed") {
		if s.m() > 0 {
			s.k--
		}
	} else if (s.ends("ed") || s.ends("ing")) && s.vowelInStem() {
		s.k = s.j
		switch {
		case s.ends("at"):
			s.setto("ate")
		case s.ends("bl"):
			s.setto("ble")
		case s.ends("iz"):
			s.setto("ize")
		case s.doublec(s.k):
			switch s.b[s.k] {
			case 'l', 's', 'z':
			default:
				s.k--
			}
		default:
			if s.m() == 1 && s.cvc(s.k) {
				s.j = s.k
				s.setto("e")
			}
		}
	}
}

// step1c turns terminal y to i when there is another vowel in the stem.
func (s *stemmer) step1c() {
	if s.ends("y") && s.vowelInStem() {
		s.b[s.k] = 'i'
	}
}

// step2 maps double suffixes to single ones when the stem measure is
// positive: -ization ( = -ize + -ation) becomes -ize, etc.
func (s *stemmer) step2() {
	if s.k < 1 {
		return
	}
	switch s.b[s.k-1] {
	case 'a':
		switch {
		case s.ends("ational"):
			s.r("ate")
		case s.ends("tional"):
			s.r("tion")
		}
	case 'c':
		switch {
		case s.ends("enci"):
			s.r("ence")
		case s.ends("anci"):
			s.r("ance")
		}
	case 'e':
		if s.ends("izer") {
			s.r("ize")
		}
	case 'l':
		switch {
		case s.ends("bli"):
			s.r("ble")
		case s.ends("alli"):
			s.r("al")
		case s.ends("entli"):
			s.r("ent")
		case s.ends("eli"):
			s.r("e")
		case s.ends("ousli"):
			s.r("ous")
		}
	case 'o':
		switch {
		case s.ends("ization"):
			s.r("ize")
		case s.ends("ation"):
			s.r("ate")
		case s.ends("ator"):
			s.r("ate")
		}
	case 's':
		switch {
		case s.ends("alism"):
			s.r("al")
		case s.ends("iveness"):
			s.r("ive")
		case s.ends("fulness"):
			s.r("ful")
		case s.ends("ousness"):
			s.r("ous")
		}
	case 't':
		switch {
		case s.ends("aliti"):
			s.r("al")
		case s.ends("iviti"):
			s.r("ive")
		case s.ends("biliti"):
			s.r("ble")
		}
	case 'g':
		if s.ends("logi") {
			s.r("log")
		}
	}
}

// step3 handles -ic-, -full, -ness and similar.
func (s *stemmer) step3() {
	switch s.b[s.k] {
	case 'e':
		switch {
		case s.ends("icate"):
			s.r("ic")
		case s.ends("ative"):
			s.r("")
		case s.ends("alize"):
			s.r("al")
		}
	case 'i':
		if s.ends("iciti") {
			s.r("ic")
		}
	case 'l':
		switch {
		case s.ends("ical"):
			s.r("ic")
		case s.ends("ful"):
			s.r("")
		}
	case 's':
		if s.ends("ness") {
			s.r("")
		}
	}
}

// step4 removes -ant, -ence and similar suffixes when the measure exceeds 1.
func (s *stemmer) step4() {
	if s.k < 1 {
		return
	}
	switch s.b[s.k-1] {
	case 'a':
		if !s.ends("al") {
			return
		}
	case 'c':
		if !s.ends("ance") && !s.ends("ence") {
			return
		}
	case 'e':
		if !s.ends("er") {
			return
		}
	case 'i':
		if !s.ends("ic") {
			return
		}
	case 'l':
		if !s.ends("able") && !s.ends("ible") {
			return
		}
	case 'n':
		if !s.ends("ant") && !s.ends("ement") && !s.ends("ment") && !s.ends("ent") {
			return
		}
	case 'o':
		if s.ends("ion") {
			if s.j < 0 || (s.b[s.j] != 's' && s.b[s.j] != 't') {
				return
			}
		} else if !s.ends("ou") {
			return
		}
	case 's':
		if !s.ends("ism") {
			return
		}
	case 't':
		if !s.ends("ate") && !s.ends("iti") {
			return
		}
	case 'u':
		if !s.ends("ous") {
			return
		}
	case 'v':
		if !s.ends("ive") {
			return
		}
	case 'z':
		if !s.ends("ize") {
			return
		}
	default:
		return
	}
	if s.m() > 1 {
		s.k = s.j
	}
}

// step5 removes a final -e if the measure allows, and reduces -ll to -l.
func (s *stemmer) step5() {
	s.j = s.k
	if s.b[s.k] == 'e' {
		a := s.m()
		if a > 1 || (a == 1 && !s.cvc(s.k-1)) {
			s.k--
		}
	}
	if s.b[s.k] == 'l' && s.doublec(s.k) && s.m() > 1 {
		s.k--
	}
}
