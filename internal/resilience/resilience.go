// Package resilience is the fault-tolerance layer of the query path: a retry
// policy (exponential backoff with full jitter, per-attempt timeouts), typed
// classification of transport versus application errors, a concurrency budget
// for hedged requests, and a hedged-execution combinator.
//
// The SPRITE paper argues (§7) that successor replication makes the system
// tolerate node dynamism, but replication only helps if the read path knows
// when — and when not — to try somewhere else. Real DHT deployments live or
// die by this discipline: a transient drop deserves a retried call, a dead
// peer deserves a failover to the replica holder, and an application error
// ("no such document") deserves neither. This package encodes those
// decisions once so every layer classifies and retries the same way.
//
// All randomness (jitter) is injected, so retry schedules are reproducible
// in tests; all waiting honors context cancellation, so deadlines set at the
// facade reach every backoff sleep and every attempt.
package resilience

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"github.com/spritedht/sprite/internal/simnet"
	"github.com/spritedht/sprite/internal/vtime"
)

// Class is the typed outcome of classifying an error.
type Class int

const (
	// Success: no error.
	Success Class = iota
	// Transient: a transport-level failure (unreachable peer, dropped or
	// timed-out call) that a retry or failover may recover from.
	Transient
	// Canceled: the caller's context was canceled or its deadline expired;
	// retrying cannot help and the error must propagate unchanged.
	Canceled
	// Permanent: an application-level error; retrying would repeat it.
	Permanent
)

// String implements fmt.Stringer for logs and trace annotations.
func (c Class) String() string {
	switch c {
	case Success:
		return "success"
	case Transient:
		return "transient"
	case Canceled:
		return "canceled"
	case Permanent:
		return "permanent"
	}
	return "unknown"
}

// Classify types an error for retry decisions. Context errors dominate:
// an attempt that failed because the caller gave up is Canceled even if the
// failure surfaced as a wrapped transport error.
func Classify(err error) Class {
	switch {
	case err == nil:
		return Success
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		return Canceled
	case errors.Is(err, simnet.ErrUnreachable):
		return Transient
	default:
		return Permanent
	}
}

// Policy is one retry discipline. The zero value performs a single attempt
// with no timeout — exactly the pre-resilience behavior — so a disabled
// policy is representable without a separate code path.
type Policy struct {
	// MaxRetries is the number of re-attempts after the first try (0 = one
	// attempt total).
	MaxRetries int
	// BaseBackoff is the cap of the first retry's jittered sleep (full
	// jitter: the sleep is uniform in [0, cap)). Zero retries immediately.
	BaseBackoff time.Duration
	// MaxBackoff bounds the exponential growth of the backoff cap
	// (default 50× BaseBackoff when zero).
	MaxBackoff time.Duration
	// Multiplier scales the backoff cap between attempts (default 2).
	Multiplier float64
	// PerCallTimeout bounds each individual attempt; the attempt's context
	// is the caller's with this deadline layered on. Zero applies none.
	PerCallTimeout time.Duration
	// Rand supplies jitter draws in [0, 1). Nil uses a process-wide seeded
	// source; inject one (see NewJitter) for deterministic schedules.
	Rand func() float64
	// Sleep waits between attempts, honoring ctx. Nil uses the Clock. Tests
	// inject a recorder to assert the schedule without real waiting.
	Sleep func(ctx context.Context, d time.Duration) error
	// Clock supplies backoff sleeps (when Sleep is nil) and per-attempt
	// deadlines. Nil uses the wall clock; virtual-time experiments inject a
	// *vtime.Sim so backoff and timeouts are deterministic scheduler events.
	Clock vtime.Clock
}

// NewJitter returns a concurrency-safe deterministic jitter source for
// Policy.Rand, seeded with seed.
func NewJitter(seed int64) func() float64 {
	var mu sync.Mutex
	rng := rand.New(rand.NewSource(seed))
	return func() float64 {
		mu.Lock()
		defer mu.Unlock()
		return rng.Float64()
	}
}

var defaultJitter = NewJitter(1)

// BackoffCap returns the un-jittered backoff cap before retry attempt
// (attempt 1 is the first retry): min(MaxBackoff, BaseBackoff·Multiplier^(attempt-1)).
func (p Policy) BackoffCap(attempt int) time.Duration {
	if p.BaseBackoff <= 0 || attempt < 1 {
		return 0
	}
	mult := p.Multiplier
	if mult < 1 {
		mult = 2
	}
	max := p.MaxBackoff
	if max <= 0 {
		max = 50 * p.BaseBackoff
	}
	d := float64(p.BaseBackoff)
	for i := 1; i < attempt; i++ {
		d *= mult
		if d >= float64(max) {
			return max
		}
	}
	if d > float64(max) {
		return max
	}
	return time.Duration(d)
}

// backoff returns the jittered sleep before retry attempt: uniform in
// [0, BackoffCap(attempt)) — "full jitter", which desynchronizes retry storms
// better than equal or decorrelated jitter at the same mean load.
func (p Policy) backoff(attempt int) time.Duration {
	cap := p.BackoffCap(attempt)
	if cap <= 0 {
		return 0
	}
	r := p.Rand
	if r == nil {
		r = defaultJitter
	}
	return time.Duration(r() * float64(cap))
}

func (p Policy) sleep(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	if p.Sleep != nil {
		return p.Sleep(ctx, d)
	}
	return vtime.Default(p.Clock).Sleep(ctx, d)
}

// attemptCtx layers the per-attempt timeout onto the caller's context.
func (p Policy) attemptCtx(ctx context.Context) (context.Context, context.CancelFunc) {
	if p.PerCallTimeout <= 0 {
		return ctx, func() {}
	}
	return vtime.Default(p.Clock).WithTimeout(ctx, p.PerCallTimeout)
}

// Do runs op under the policy: up to 1+MaxRetries attempts, each with the
// per-attempt timeout, jittered exponential backoff between attempts. Only
// Transient errors are retried; Canceled and Permanent errors return
// immediately. It returns op's value, the number of retries actually
// performed (0 when the first attempt settled it), and the final error.
func Do[T any](ctx context.Context, p Policy, op func(ctx context.Context) (T, error)) (T, int, error) {
	var (
		val T
		err error
	)
	for attempt := 0; ; attempt++ {
		actx, cancel := p.attemptCtx(ctx)
		val, err = op(actx)
		cancel()
		class := Classify(err)
		// An attempt killed by its own per-call deadline — not the caller's —
		// is a slow peer, not a canceled caller: retryable.
		if class == Canceled && ctx.Err() == nil {
			class = Transient
		}
		if class != Transient || attempt >= p.MaxRetries {
			return val, attempt, err
		}
		// Aborting mid-backoff is the caller's doing: surface its ctx error
		// (so upper layers classify Canceled) while keeping the last attempt's
		// failure inspectable.
		if serr := p.sleep(ctx, p.backoff(attempt+1)); serr != nil {
			return val, attempt, fmt.Errorf("resilience: retry aborted: %w (last attempt: %w)", serr, err)
		}
		if cerr := ctx.Err(); cerr != nil {
			return val, attempt, fmt.Errorf("resilience: retry aborted: %w (last attempt: %w)", cerr, err)
		}
	}
}

// Budget caps the number of concurrently outstanding hedged requests, so a
// latency spike cannot double the offered load network-wide. The zero Budget
// is unlimited; use NewBudget for a cap.
type Budget struct {
	max int64
	out atomic.Int64
	// denied counts hedges suppressed by an exhausted budget.
	denied atomic.Int64
}

// NewBudget returns a budget allowing at most max concurrent hedges
// (max <= 0 = unlimited).
func NewBudget(max int) *Budget {
	return &Budget{max: int64(max)}
}

// Acquire takes a hedge token, returning false (and counting the denial)
// when the budget is exhausted. A nil budget always grants.
func (b *Budget) Acquire() bool {
	if b == nil || b.max <= 0 {
		return true
	}
	if b.out.Add(1) > b.max {
		b.out.Add(-1)
		b.denied.Add(1)
		return false
	}
	return true
}

// Release returns a token taken by Acquire. Only call after a successful
// Acquire on a capped budget.
func (b *Budget) Release() {
	if b != nil && b.max > 0 {
		b.out.Add(-1)
	}
}

// Denied reports how many hedges the budget suppressed.
func (b *Budget) Denied() int64 {
	if b == nil {
		return 0
	}
	return b.denied.Load()
}

// Outstanding reports the hedges currently in flight.
func (b *Budget) Outstanding() int64 {
	if b == nil {
		return 0
	}
	return b.out.Load()
}

// DoHedged runs op and, if it has not settled after hedgeAfter, launches one
// duplicate attempt, returning whichever settles first with a usable outcome
// (a transient failure on one arm waits for the other). hedged reports
// whether the duplicate was actually launched — the caller's signal to count
// a hedge. The budget caps concurrent duplicates network-wide; when it is
// exhausted, op runs unhedged. A hedgeAfter of 0 disables hedging entirely.
//
// The loser's goroutine is not interrupted beyond ctx: ops must be safe to
// run to completion after the race is decided (every SPRITE fetch is — it is
// an idempotent read).
//
// clk times the hedge trigger and registers the op goroutines; nil uses the
// wall clock. Under a virtual clock the trigger is a scheduler event, so
// whether a hedge fires depends only on the ops' virtual latencies.
func DoHedged[T any](ctx context.Context, clk vtime.Clock, hedgeAfter time.Duration, budget *Budget, op func(ctx context.Context) (T, error)) (val T, hedged bool, err error) {
	clk = vtime.Default(clk)
	if hedgeAfter <= 0 {
		val, err = op(ctx)
		return val, false, err
	}
	type outcome struct {
		val T
		err error
	}
	results := make(chan outcome, 2)
	launch := func() {
		clk.Go(func() {
			v, e := op(ctx)
			results <- outcome{v, e}
		})
	}
	launch()
	timer := clk.NewTimer(hedgeAfter)
	defer timer.Stop()
	acquired := false
	launched := 1
	// The race arbitration waits on real channels, which a virtual clock
	// cannot see; Blocking deregisters this goroutine so virtual time
	// advances through the op goroutines' waits instead.
	clk.Blocking(func() {
		for settled := 0; settled < launched; {
			select {
			case <-timer.C:
				if launched == 1 && budget.Acquire() {
					acquired = true
					launch()
					launched, hedged = 2, true
				}
			case r := <-results:
				settled++
				// First success wins; a failure only settles the race when
				// no other arm can still answer.
				if r.err == nil || settled == launched {
					val, err = r.val, r.err
					return
				}
			case <-ctx.Done():
				var zero T
				val, err = zero, ctx.Err()
				return
			}
		}
	})
	if acquired {
		budget.Release()
	}
	return val, hedged, err
}
