package resilience

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"github.com/spritedht/sprite/internal/simnet"
)

func TestClassify(t *testing.T) {
	cases := []struct {
		name string
		err  error
		want Class
	}{
		{"nil", nil, Success},
		{"unreachable", simnet.ErrUnreachable, Transient},
		{"wrapped unreachable", fmt.Errorf("call x: %w", simnet.ErrUnreachable), Transient},
		{"canceled", context.Canceled, Canceled},
		{"deadline", fmt.Errorf("call: %w", context.DeadlineExceeded), Canceled},
		{"application", errors.New("core: no such document"), Permanent},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if got := Classify(c.err); got != c.want {
				t.Fatalf("Classify(%v) = %v, want %v", c.err, got, c.want)
			}
		})
	}
}

func TestBackoffCapBounds(t *testing.T) {
	cases := []struct {
		name    string
		policy  Policy
		attempt int
		want    time.Duration
	}{
		{"zero policy", Policy{}, 1, 0},
		{"first retry", Policy{BaseBackoff: 10 * time.Millisecond}, 1, 10 * time.Millisecond},
		{"doubles", Policy{BaseBackoff: 10 * time.Millisecond}, 3, 40 * time.Millisecond},
		{"capped", Policy{BaseBackoff: 10 * time.Millisecond, MaxBackoff: 25 * time.Millisecond}, 3, 25 * time.Millisecond},
		{"default cap 50x", Policy{BaseBackoff: time.Millisecond}, 20, 50 * time.Millisecond},
		{"custom multiplier", Policy{BaseBackoff: 10 * time.Millisecond, Multiplier: 3}, 2, 30 * time.Millisecond},
		{"attempt zero", Policy{BaseBackoff: 10 * time.Millisecond}, 0, 0},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if got := c.policy.BackoffCap(c.attempt); got != c.want {
				t.Fatalf("BackoffCap(%d) = %v, want %v", c.attempt, got, c.want)
			}
		})
	}
}

// TestJitterDeterminism: two policies with identically seeded jitter draw
// bit-for-bit identical backoff schedules; full jitter stays within [0, cap).
func TestJitterDeterminism(t *testing.T) {
	mk := func() Policy {
		return Policy{BaseBackoff: 10 * time.Millisecond, Rand: NewJitter(42)}
	}
	a, b := mk(), mk()
	for attempt := 1; attempt <= 8; attempt++ {
		da, db := a.backoff(attempt), b.backoff(attempt)
		if da != db {
			t.Fatalf("attempt %d: schedules diverged: %v vs %v", attempt, da, db)
		}
		if cap := a.BackoffCap(attempt); da < 0 || da >= cap {
			t.Fatalf("attempt %d: jittered backoff %v outside [0, %v)", attempt, da, cap)
		}
	}
}

// TestDoRetriesTransient: transient errors are retried up to MaxRetries with
// the jittered schedule handed to the injected sleeper.
func TestDoRetriesTransient(t *testing.T) {
	var slept []time.Duration
	p := Policy{
		MaxRetries:  3,
		BaseBackoff: 10 * time.Millisecond,
		Rand:        func() float64 { return 0.5 },
		Sleep: func(ctx context.Context, d time.Duration) error {
			slept = append(slept, d)
			return nil
		},
	}
	calls := 0
	v, retries, err := Do(context.Background(), p, func(ctx context.Context) (string, error) {
		calls++
		if calls < 3 {
			return "", fmt.Errorf("drop %d: %w", calls, simnet.ErrUnreachable)
		}
		return "ok", nil
	})
	if err != nil || v != "ok" {
		t.Fatalf("Do = (%q, %v), want (ok, nil)", v, err)
	}
	if calls != 3 || retries != 2 {
		t.Fatalf("calls = %d, retries = %d, want 3, 2", calls, retries)
	}
	want := []time.Duration{5 * time.Millisecond, 10 * time.Millisecond}
	if len(slept) != len(want) {
		t.Fatalf("slept %v, want %v", slept, want)
	}
	for i := range want {
		if slept[i] != want[i] {
			t.Fatalf("sleep %d = %v, want %v", i, slept[i], want[i])
		}
	}
}

func TestDoDoesNotRetryPermanent(t *testing.T) {
	p := Policy{MaxRetries: 5}
	calls := 0
	boom := errors.New("application error")
	_, retries, err := Do(context.Background(), p, func(ctx context.Context) (int, error) {
		calls++
		return 0, boom
	})
	if !errors.Is(err, boom) || calls != 1 || retries != 0 {
		t.Fatalf("permanent error retried: calls=%d retries=%d err=%v", calls, retries, err)
	}
}

func TestDoExhaustsRetries(t *testing.T) {
	p := Policy{MaxRetries: 2, Sleep: func(context.Context, time.Duration) error { return nil }}
	calls := 0
	_, retries, err := Do(context.Background(), p, func(ctx context.Context) (int, error) {
		calls++
		return 0, simnet.ErrUnreachable
	})
	if !errors.Is(err, simnet.ErrUnreachable) || calls != 3 || retries != 2 {
		t.Fatalf("exhaustion: calls=%d retries=%d err=%v", calls, retries, err)
	}
}

// TestDoCancellationMidRetry: a context canceled between attempts stops the
// loop immediately; the returned error wraps the caller's ctx error, with
// the transient error of the last attempt still inspectable.
func TestDoCancellationMidRetry(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	p := Policy{
		MaxRetries:  10,
		BaseBackoff: time.Millisecond,
		Rand:        func() float64 { return 0.9 }, // nonzero jitter: the sleeper always runs
		Sleep: func(ctx context.Context, d time.Duration) error {
			cancel() // the caller gives up while we are backing off
			return ctx.Err()
		},
	}
	calls := 0
	_, _, err := Do(ctx, p, func(ctx context.Context) (int, error) {
		calls++
		return 0, simnet.ErrUnreachable
	})
	if calls != 1 {
		t.Fatalf("attempts after cancel: calls = %d, want 1", calls)
	}
	if !errors.Is(err, simnet.ErrUnreachable) {
		t.Fatalf("err = %v, want the last transient error", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want the caller's ctx error wrapped too", err)
	}
}

// TestDoCallerCanceledNotRetried: an attempt that fails because the caller's
// own context expired is not retried, even though the error wraps a deadline.
func TestDoCallerCanceledNotRetried(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	p := Policy{MaxRetries: 5}
	calls := 0
	_, _, err := Do(ctx, p, func(ctx context.Context) (int, error) {
		calls++
		return 0, fmt.Errorf("aborted: %w", context.Canceled)
	})
	if calls != 1 {
		t.Fatalf("canceled caller retried: calls = %d", calls)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestDoPerCallTimeoutIsTransient: an attempt killed by its per-call deadline
// while the caller's context is still live is classified transient and
// retried.
func TestDoPerCallTimeoutIsTransient(t *testing.T) {
	p := Policy{
		MaxRetries:     1,
		PerCallTimeout: time.Millisecond,
		Sleep:          func(context.Context, time.Duration) error { return nil },
	}
	calls := 0
	v, retries, err := Do(context.Background(), p, func(ctx context.Context) (string, error) {
		calls++
		if calls == 1 {
			<-ctx.Done() // simulate a hung peer outliving the attempt budget
			return "", ctx.Err()
		}
		return "recovered", nil
	})
	if err != nil || v != "recovered" || retries != 1 {
		t.Fatalf("Do = (%q, %d, %v), want (recovered, 1, nil)", v, retries, err)
	}
}

func TestBudgetExhaustion(t *testing.T) {
	b := NewBudget(2)
	if !b.Acquire() || !b.Acquire() {
		t.Fatal("budget denied within capacity")
	}
	if b.Acquire() {
		t.Fatal("budget granted beyond capacity")
	}
	if b.Denied() != 1 {
		t.Fatalf("Denied = %d, want 1", b.Denied())
	}
	b.Release()
	if !b.Acquire() {
		t.Fatal("budget denied after release")
	}
	if got := b.Outstanding(); got != 2 {
		t.Fatalf("Outstanding = %d, want 2", got)
	}
	var unlimited *Budget
	if !unlimited.Acquire() {
		t.Fatal("nil budget must always grant")
	}
}

// TestDoHedgedFiresOnSlowPrimary: the duplicate launches after hedgeAfter and
// its (fast) result wins over the stalled first attempt.
func TestDoHedgedFiresOnSlowPrimary(t *testing.T) {
	var n atomic.Int32
	op := func(ctx context.Context) (string, error) {
		if n.Add(1) == 1 {
			select { // first arm stalls until the test ends
			case <-ctx.Done():
			case <-time.After(5 * time.Second):
			}
			return "slow", nil
		}
		return "hedge", nil
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	v, hedged, err := DoHedged(ctx, nil, time.Millisecond, NewBudget(4), op)
	if err != nil || v != "hedge" || !hedged {
		t.Fatalf("DoHedged = (%q, hedged=%v, %v), want (hedge, true, nil)", v, hedged, err)
	}
}

func TestDoHedgedFastPrimarySkipsHedge(t *testing.T) {
	calls := 0
	v, hedged, err := DoHedged(context.Background(), nil, time.Minute, nil, func(ctx context.Context) (int, error) {
		calls++
		return 7, nil
	})
	if err != nil || v != 7 || hedged || calls != 1 {
		t.Fatalf("fast primary: v=%d hedged=%v calls=%d err=%v", v, hedged, calls, err)
	}
}

func TestDoHedgedBudgetExhausted(t *testing.T) {
	b := NewBudget(1)
	if !b.Acquire() { // someone else holds the only token
		t.Fatal("setup acquire failed")
	}
	started := make(chan struct{})
	release := make(chan struct{})
	go func() {
		<-started
		time.Sleep(5 * time.Millisecond)
		close(release)
	}()
	calls := 0
	v, hedged, err := DoHedged(context.Background(), nil, time.Millisecond, b, func(ctx context.Context) (int, error) {
		calls++
		close(started)
		<-release
		return 9, nil
	})
	if err != nil || v != 9 || hedged || calls != 1 {
		t.Fatalf("exhausted budget must suppress hedge: v=%d hedged=%v calls=%d err=%v", v, hedged, calls, err)
	}
	if b.Denied() != 1 {
		t.Fatalf("Denied = %d, want 1", b.Denied())
	}
}

func TestDoHedgedZeroDelayDisabled(t *testing.T) {
	calls := 0
	_, hedged, _ := DoHedged(context.Background(), nil, 0, nil, func(ctx context.Context) (int, error) {
		calls++
		return 0, nil
	})
	if hedged || calls != 1 {
		t.Fatalf("hedgeAfter=0 must run exactly one attempt inline: calls=%d hedged=%v", calls, hedged)
	}
}
