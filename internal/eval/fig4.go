package eval

import (
	"fmt"
	"strings"

	"github.com/spritedht/sprite/internal/corpus"
	"github.com/spritedht/sprite/internal/ir"
)

// This file reproduces the three panels of the paper's Figure 4 (§6.3). All
// reported numbers are ratios to the centralized system, as in the paper.

// Fig4aResult is Figure 4(a): precision and recall versus the number of
// answers K.
type Fig4aResult struct {
	Ks      []int
	Sprite  []ir.Metrics // ratio to centralized, per K
	ESearch []ir.Metrics // ratio to centralized, per K
}

// RunFig4a executes the default experiment (§6.2: training queries inserted,
// documents shared with 5 initial terms, 3 learning iterations → 20 terms;
// eSearch at 20 terms) and sweeps the number of answers K ∈ {5..30}.
func RunFig4a(cfg Config) (*Fig4aResult, error) {
	cfg = cfg.fillDefaults()
	env, err := Setup(cfg)
	if err != nil {
		return nil, err
	}
	dep, err := env.NewDeployment(cfg.Core)
	if err != nil {
		return nil, err
	}
	if err := dep.InsertQueries(env.Train); err != nil {
		return nil, err
	}
	if err := dep.ShareAll(); err != nil {
		return nil, err
	}
	if err := dep.Learn(cfg.LearningIterations); err != nil {
		return nil, err
	}

	spriteTerms := cfg.Core.InitialTerms + cfg.LearningIterations*cfg.Core.TermsPerIteration
	if spriteTerms > cfg.Core.MaxIndexTerms {
		spriteTerms = cfg.Core.MaxIndexTerms
	}
	es, err := env.ESearchSearcher(spriteTerms)
	if err != nil {
		return nil, err
	}

	ks := []int{5, 10, 15, 20, 25, 30}
	spriteAbs := MeasureAt(dep.SpriteSearcher(), env.Test, ks)
	esAbs := MeasureAt(es, env.Test, ks)
	centralAbs := MeasureAt(env.CentralSearcher(), env.Test, ks)

	res := &Fig4aResult{Ks: ks}
	for _, k := range ks {
		res.Sprite = append(res.Sprite, ir.Ratio(spriteAbs[k], centralAbs[k]))
		res.ESearch = append(res.ESearch, ir.Ratio(esAbs[k], centralAbs[k]))
	}
	return res, nil
}

// Table renders the result in the paper's row form.
func (r *Fig4aResult) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 4(a): precision/recall ratio vs number of answers\n")
	fmt.Fprintf(&b, "%-8s %-14s %-14s %-14s %-14s\n", "K", "SPRITE-prec", "eSearch-prec", "SPRITE-rec", "eSearch-rec")
	for i, k := range r.Ks {
		fmt.Fprintf(&b, "%-8d %-14.3f %-14.3f %-14.3f %-14.3f\n",
			k, r.Sprite[i].Precision, r.ESearch[i].Precision,
			r.Sprite[i].Recall, r.ESearch[i].Recall)
	}
	return b.String()
}

// Fig4bVariant names the two query workloads of Figure 4(b).
type Fig4bVariant string

const (
	// WithoutRepeats ("w/o-r"): every training query is inserted exactly
	// once — the adversarial extreme for a learner.
	WithoutRepeats Fig4bVariant = "w/o-r"
	// WithZipf ("w-zipf"): query frequency follows a Zipf distribution with
	// slope 0.5, per the search-trace analyses the paper cites.
	WithZipf Fig4bVariant = "w-zipf"
)

// Fig4bResult is Figure 4(b): precision (and recall, which the paper omits
// for space but reports as showing the same trend) versus the number of
// indexed terms, for one workload variant.
type Fig4bResult struct {
	Variant Fig4bVariant
	Terms   []int
	Sprite  []ir.Metrics // ratio to centralized
	ESearch []ir.Metrics // ratio to centralized, at the same term budget
}

// RunFig4b sweeps the number of indexed terms {5,10,...,30} for the given
// workload. One deployment runs incrementally: after the initial 5 terms,
// each learning iteration adds 5 more, and the network is probed (without
// perturbing it) at each checkpoint. eSearch is rebuilt at each term budget.
func RunFig4b(cfg Config, variant Fig4bVariant) (*Fig4bResult, error) {
	cfg = cfg.fillDefaults()
	cfg.Core.TermsPerIteration = 5
	cfg.Core.MaxIndexTerms = 30
	env, err := Setup(cfg)
	if err != nil {
		return nil, err
	}
	dep, err := env.NewDeployment(cfg.Core)
	if err != nil {
		return nil, err
	}

	switch variant {
	case WithoutRepeats:
		if err := dep.InsertQueries(env.Train); err != nil {
			return nil, err
		}
	case WithZipf:
		// Same query population, Zipf-weighted repetition, 3× volume.
		if err := dep.InsertZipfQueryStream(env.Train, 3*len(env.Train), 0.5, cfg.Seed+7); err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("eval: unknown fig4b variant %q", variant)
	}
	if err := dep.ShareAll(); err != nil {
		return nil, err
	}

	centralAbs := Measure(env.CentralSearcher(), env.Test, cfg.TopK)
	res := &Fig4bResult{Variant: variant}
	for checkpoint := 0; checkpoint <= 5; checkpoint++ {
		if checkpoint > 0 {
			if err := dep.Learn(1); err != nil {
				return nil, err
			}
		}
		terms := cfg.Core.InitialTerms + 5*checkpoint
		es, err := env.ESearchSearcher(terms)
		if err != nil {
			return nil, err
		}
		spriteAbs := Measure(dep.SpriteSearcher(), env.Test, cfg.TopK)
		esAbs := Measure(es, env.Test, cfg.TopK)
		res.Terms = append(res.Terms, terms)
		res.Sprite = append(res.Sprite, ir.Ratio(spriteAbs, centralAbs))
		res.ESearch = append(res.ESearch, ir.Ratio(esAbs, centralAbs))
	}
	return res, nil
}

// Table renders the result in the paper's row form.
func (r *Fig4bResult) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 4(b) [%s]: precision ratio vs number of indexed terms\n", r.Variant)
	fmt.Fprintf(&b, "%-8s %-14s %-14s %-14s %-14s\n", "terms", "SPRITE-prec", "eSearch-prec", "SPRITE-rec", "eSearch-rec")
	for i, terms := range r.Terms {
		fmt.Fprintf(&b, "%-8d %-14.3f %-14.3f %-14.3f %-14.3f\n",
			terms, r.Sprite[i].Precision, r.ESearch[i].Precision,
			r.Sprite[i].Recall, r.ESearch[i].Recall)
	}
	return b.String()
}

// Fig4cResult is Figure 4(c): precision and recall per learning iteration
// with a query-pattern change at iteration 6.
type Fig4cResult struct {
	Iterations []int
	Sprite     []ir.Metrics // ratio to centralized
	ESearch    []ir.Metrics // ratio to centralized
	// SwitchAt is the iteration at which the second query group takes over.
	SwitchAt int
}

// RunFig4c reproduces the robustness experiment: the query set is evenly
// partitioned into two groups such that all new queries and their original
// are in the same group (we partition by the original query's latent topic,
// giving the groups genuinely different interests). Iterations 1–5 process
// and evaluate group 1; iterations 6–10 process and evaluate group 2, which
// the system has never seen. The term cap is 30; once reached, only
// replacement occurs, and eSearch (whose index stops growing at 30 terms)
// stays flat.
func RunFig4c(cfg Config) (*Fig4cResult, error) {
	cfg = cfg.fillDefaults()
	cfg.Core.TermsPerIteration = 5
	cfg.Core.MaxIndexTerms = 30
	env, err := Setup(cfg)
	if err != nil {
		return nil, err
	}

	// Partition by origin topic so the two groups have disjoint interests.
	numTopics := cfg.Corpus.FillDefaults().NumTopics
	inGroup1 := func(q *corpus.Query) bool {
		return env.Col.QueryTopic[env.Gen.Origin[q.ID]] < numTopics/2
	}
	var train1, train2, test1, test2 []*corpus.Query
	for _, q := range env.Train {
		if inGroup1(q) {
			train1 = append(train1, q)
		} else {
			train2 = append(train2, q)
		}
	}
	for _, q := range env.Test {
		if inGroup1(q) {
			test1 = append(test1, q)
		} else {
			test2 = append(test2, q)
		}
	}

	dep, err := env.NewDeployment(cfg.Core)
	if err != nil {
		return nil, err
	}
	if err := dep.ShareAll(); err != nil {
		return nil, err
	}

	const totalIters = 10
	const switchAt = 6
	res := &Fig4cResult{SwitchAt: switchAt}
	for iter := 1; iter <= totalIters; iter++ {
		trainQ, testQ := train1, test1
		if iter >= switchAt {
			trainQ, testQ = train2, test2
		}
		// Process this group's query stream in batches: one fifth per
		// iteration, cycling so each of the 5 iterations sees fresh queries.
		batch := pickBatch(trainQ, (iter-1)%5, 5)
		if err := dep.InsertQueries(batch); err != nil {
			return nil, err
		}
		if err := dep.Learn(1); err != nil {
			return nil, err
		}

		spriteTerms := cfg.Core.InitialTerms + 5*iter
		if spriteTerms > cfg.Core.MaxIndexTerms {
			spriteTerms = cfg.Core.MaxIndexTerms
		}
		es, err := env.ESearchSearcher(spriteTerms)
		if err != nil {
			return nil, err
		}
		centralAbs := Measure(env.CentralSearcher(), testQ, cfg.TopK)
		spriteAbs := Measure(dep.SpriteSearcher(), testQ, cfg.TopK)
		esAbs := Measure(es, testQ, cfg.TopK)

		res.Iterations = append(res.Iterations, iter)
		res.Sprite = append(res.Sprite, ir.Ratio(spriteAbs, centralAbs))
		res.ESearch = append(res.ESearch, ir.Ratio(esAbs, centralAbs))
	}
	return res, nil
}

// pickBatch returns the i-th of n roughly equal batches of queries.
func pickBatch(queries []*corpus.Query, i, n int) []*corpus.Query {
	if len(queries) == 0 {
		return nil
	}
	per := (len(queries) + n - 1) / n
	lo := i * per
	if lo >= len(queries) {
		return nil
	}
	hi := lo + per
	if hi > len(queries) {
		hi = len(queries)
	}
	return queries[lo:hi]
}

// Table renders the result in the paper's row form.
func (r *Fig4cResult) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 4(c): precision/recall ratio per learning iteration (pattern change at %d)\n", r.SwitchAt)
	fmt.Fprintf(&b, "%-6s %-14s %-14s %-14s %-14s\n", "iter", "SPRITE-prec", "eSearch-prec", "SPRITE-rec", "eSearch-rec")
	for i, iter := range r.Iterations {
		marker := ""
		if iter == r.SwitchAt {
			marker = "  <- pattern change"
		}
		fmt.Fprintf(&b, "%-6d %-14.3f %-14.3f %-14.3f %-14.3f%s\n",
			iter, r.Sprite[i].Precision, r.ESearch[i].Precision,
			r.Sprite[i].Recall, r.ESearch[i].Recall, marker)
	}
	return b.String()
}
