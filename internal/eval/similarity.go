package eval

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strings"
	"time"

	"github.com/spritedht/sprite/internal/chord"
	"github.com/spritedht/sprite/internal/core"
	"github.com/spritedht/sprite/internal/corpus"
	"github.com/spritedht/sprite/internal/index"
	"github.com/spritedht/sprite/internal/simnet"
	"github.com/spritedht/sprite/internal/sketch"
)

// The similarity-retrieval benchmark: query-by-document over the SPRITE
// overlay, term-routed sketch re-ranking against a flooding baseline, both
// judged against an exact centralized oracle.
//
//   - Oracle: float64 cosine over the full 1+log₁₀(tf) weighted term vectors,
//     computed centrally from the corpus — no sketching, no routing, no
//     network. Its top-k per query document is the ground truth.
//   - Routed arm: core.ProbeSimilar — candidates fetched through the query
//     document's learned representative terms (O(RouteTerms · lookup) DHT
//     messages per query), filtered by int8-sketch cosine, and the top Refine
//     survivors re-scored exactly via one term-vector fetch each.
//   - Flooding arm: core.FloodSimilar — every peer reports the sketches of
//     its owned documents (O(peers) messages per query), pure sketch ranking.
//     Exhaustive over candidates, so it isolates what routing costs in recall
//     from what sketching costs.
//
// Recall@k is |arm's top-k ∩ oracle top-k| / k, averaged over the sampled
// query documents. Messages and bytes come from the simulated transport's
// accounting, divided by the query count. The headline the committed
// BENCH_similarity.json pins: on the 10k-document tier the routed arm keeps
// recall@10 ≥ 0.9 while spending ≥5× fewer messages per query than flooding.

// similarityDims is the sketch width used by the benchmark. The synthetic
// topic corpora pack their oracle top-10 into score gaps of a few hundredths,
// tighter than the int8 quantization error at small widths, and the 10k-doc
// tier crowds ~800 documents per topic into that margin; sketch.MaxDims keeps
// enough of the oracle's top-10 inside the top-refine sketch candidates for
// the exact re-ranking stage to order. Width costs bytes, never messages.
const similarityDims = sketch.MaxDims

// similarityRouteTerms is the routing fan-out of the routed arm.
const similarityRouteTerms = 6

// similarityRefine is the exact re-ranking depth: the top 64 sketch
// candidates get their term vectors fetched (64 messages) and re-scored by
// exact cosine — still far below the flooding arm's one message per peer.
const similarityRefine = 64

// SimilarityTier is the measurement at one corpus size.
type SimilarityTier struct {
	Docs    int
	Peers   int
	Queries int

	// Per-query traffic, from the simulated transport.
	RoutedMsgs  float64
	FloodMsgs   float64
	RoutedBytes float64
	FloodBytes  float64
	// MsgAdvantage is FloodMsgs / RoutedMsgs — the headline ratio.
	MsgAdvantage float64

	// Mean recall@TopK against the exact oracle.
	RoutedRecall float64
	FloodRecall  float64

	WallMS int64
}

// SimilarityResult is the sweep across corpus sizes.
type SimilarityResult struct {
	Tiers      []SimilarityTier
	Dims       int
	RouteTerms int
	Refine     int
	TopK       int
	Seed       int64
}

// RunSimilarity runs the sweep. Defaults: tiers {2k, 10k} documents, 512
// peers, 100 sampled query documents per tier, top-10.
func RunSimilarity(cfg Config, tiers []int, peers, queryDocs int) (*SimilarityResult, error) {
	cfg = cfg.fillDefaults()
	if len(tiers) == 0 {
		tiers = []int{2000, 10000}
	}
	if peers <= 0 {
		peers = 512
	}
	if queryDocs <= 0 {
		queryDocs = 100
	}
	res := &SimilarityResult{
		Dims:       similarityDims,
		RouteTerms: similarityRouteTerms,
		Refine:     similarityRefine,
		TopK:       10,
		Seed:       cfg.Seed,
	}
	for _, docs := range tiers {
		tier, err := runSimilarityTier(cfg, docs, peers, queryDocs, res.TopK)
		if err != nil {
			return nil, fmt.Errorf("eval: similarity tier %d: %w", docs, err)
		}
		res.Tiers = append(res.Tiers, *tier)
	}
	return res, nil
}

func runSimilarityTier(cfg Config, docs, peers, queryDocs, topK int) (*SimilarityTier, error) {
	start := time.Now()
	cc := cfg.Corpus
	cc.NumDocs = docs
	// Topic count scales with the corpus (≈12 per 10k docs, min 6) so
	// neighborhood structure stays comparable across tiers.
	cc.NumTopics = max(6, 12*docs/10000)
	col, err := corpus.Synthesize(cc)
	if err != nil {
		return nil, fmt.Errorf("corpus: %w", err)
	}

	snet := simnet.New(cfg.Seed + 1)
	ring := chord.NewRing(snet, chord.Config{})
	if _, err := ring.AddNodes("peer", peers); err != nil {
		return nil, fmt.Errorf("ring: %w", err)
	}
	ring.Build()
	coreCfg := cfg.Core
	coreCfg.Sketch = sketch.Config{
		Enabled:    true,
		Dims:       similarityDims,
		RouteTerms: similarityRouteTerms,
		Seed:       uint64(cfg.Seed),
		Refine:     similarityRefine,
	}
	n, err := core.NewNetwork(ring, coreCfg)
	if err != nil {
		return nil, fmt.Errorf("network: %w", err)
	}
	addrs := make([]simnet.Addr, 0, peers)
	for _, p := range n.Peers() {
		addrs = append(addrs, p.Addr())
	}
	for i, doc := range col.Corpus.Docs() {
		if err := n.Share(addrs[i%len(addrs)], doc); err != nil {
			return nil, fmt.Errorf("share %s: %w", doc.ID, err)
		}
	}

	// Sample the query documents.
	all := col.Corpus.Docs()
	rng := rand.New(rand.NewSource(cfg.Seed + int64(docs)))
	perm := rng.Perm(len(all))
	if queryDocs > len(all) {
		queryDocs = len(all)
	}
	queries := make([]*corpus.Document, queryDocs)
	for i := range queries {
		queries[i] = all[perm[i]]
	}

	oracle := newCosineOracle(all)
	tier := &SimilarityTier{Docs: docs, Peers: peers, Queries: queryDocs}

	measure := func(search func(from simnet.Addr, doc index.DocID, k int) (interface{ Docs() []index.DocID }, error)) (msgs, bytes, recall float64, err error) {
		snet.ResetStats()
		sum := 0.0
		for i, q := range queries {
			rl, err := search(addrs[i%len(addrs)], q.ID, topK)
			if err != nil {
				return 0, 0, 0, err
			}
			sum += overlap(rl.Docs(), oracle.topK(q, topK))
		}
		st := snet.Stats()
		qn := float64(len(queries))
		return float64(st.Calls) / qn, float64(st.Bytes) / qn, sum / qn, nil
	}

	tier.RoutedMsgs, tier.RoutedBytes, tier.RoutedRecall, err = measure(
		func(from simnet.Addr, doc index.DocID, k int) (interface{ Docs() []index.DocID }, error) {
			return n.ProbeSimilar(from, doc, k)
		})
	if err != nil {
		return nil, fmt.Errorf("routed arm: %w", err)
	}
	tier.FloodMsgs, tier.FloodBytes, tier.FloodRecall, err = measure(
		func(from simnet.Addr, doc index.DocID, k int) (interface{ Docs() []index.DocID }, error) {
			return n.FloodSimilar(from, doc, k)
		})
	if err != nil {
		return nil, fmt.Errorf("flooding arm: %w", err)
	}
	if tier.RoutedMsgs > 0 {
		tier.MsgAdvantage = tier.FloodMsgs / tier.RoutedMsgs
	}
	tier.WallMS = time.Since(start).Milliseconds()
	return tier, nil
}

// overlap is |got ∩ want| / |want| (recall of the oracle's set).
func overlap(got, want []index.DocID) float64 {
	if len(want) == 0 {
		return 1
	}
	in := make(map[index.DocID]struct{}, len(want))
	for _, d := range want {
		in[d] = struct{}{}
	}
	hit := 0
	for _, d := range got {
		if _, ok := in[d]; ok {
			hit++
		}
	}
	return float64(hit) / float64(len(want))
}

// cosineOracle scores exact float64 cosine over 1+log₁₀(tf) weighted term
// vectors — the ground truth the sketches approximate.
type cosineOracle struct {
	docs    []*corpus.Document
	weights []map[string]float64
	norms   []float64
	pos     map[index.DocID]int
}

func newCosineOracle(docs []*corpus.Document) *cosineOracle {
	o := &cosineOracle{
		docs:    docs,
		weights: make([]map[string]float64, len(docs)),
		norms:   make([]float64, len(docs)),
		pos:     make(map[index.DocID]int, len(docs)),
	}
	for i, d := range docs {
		w := make(map[string]float64, len(d.TF))
		n2 := 0.0
		for t, f := range d.TF {
			v := 1 + math.Log10(float64(f))
			w[t] = v
			n2 += v * v
		}
		o.weights[i] = w
		o.norms[i] = math.Sqrt(n2)
		o.pos[d.ID] = i
	}
	return o
}

// topK returns the query document's exact top-k neighbors (itself excluded),
// ties broken ascending by doc ID like the system under test.
func (o *cosineOracle) topK(q *corpus.Document, k int) []index.DocID {
	qi := o.pos[q.ID]
	qw, qn := o.weights[qi], o.norms[qi]
	type scored struct {
		doc index.DocID
		s   float64
	}
	all := make([]scored, 0, len(o.docs)-1)
	for i, d := range o.docs {
		if i == qi {
			continue
		}
		dot := 0.0
		dw := o.weights[i]
		if len(qw) <= len(dw) {
			for t, v := range qw {
				dot += v * dw[t]
			}
		} else {
			for t, v := range dw {
				dot += v * qw[t]
			}
		}
		s := 0.0
		if qn > 0 && o.norms[i] > 0 {
			s = dot / (qn * o.norms[i])
		}
		all = append(all, scored{d.ID, s})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].s != all[j].s {
			return all[i].s > all[j].s
		}
		return all[i].doc < all[j].doc
	})
	if k > len(all) {
		k = len(all)
	}
	out := make([]index.DocID, k)
	for i := range out {
		out[i] = all[i].doc
	}
	return out
}

// Table renders the result.
func (r *SimilarityResult) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Similarity retrieval: term-routed sketch filter + exact refine vs flooding (dims %d, %d route terms, refine %d, top-%d)\n",
		r.Dims, r.RouteTerms, r.Refine, r.TopK)
	fmt.Fprintf(&b, "%-8s %-6s %-8s %-12s %-12s %-10s %-12s %-12s %-10s\n",
		"docs", "peers", "queries", "routed-msgs", "flood-msgs", "advantage", "routed-rec", "flood-rec", "wall-ms")
	for _, t := range r.Tiers {
		fmt.Fprintf(&b, "%-8d %-6d %-8d %-12.1f %-12.1f %-9.1fx %-12.4f %-12.4f %-10d\n",
			t.Docs, t.Peers, t.Queries, t.RoutedMsgs, t.FloodMsgs, t.MsgAdvantage,
			t.RoutedRecall, t.FloodRecall, t.WallMS)
	}
	return b.String()
}

// CSV renders the result, one row per tier.
func (r *SimilarityResult) CSV() string {
	rows := make([][]string, 0, len(r.Tiers))
	for _, t := range r.Tiers {
		rows = append(rows, []string{
			fmt.Sprint(t.Docs), fmt.Sprint(t.Peers), fmt.Sprint(t.Queries),
			fmt.Sprint(r.Dims), fmt.Sprint(r.RouteTerms), fmt.Sprint(r.Refine), fmt.Sprint(r.TopK),
			fmt.Sprintf("%.2f", t.RoutedMsgs), fmt.Sprintf("%.2f", t.FloodMsgs),
			fmt.Sprintf("%.2f", t.RoutedBytes), fmt.Sprintf("%.2f", t.FloodBytes),
			fmt.Sprintf("%.2f", t.MsgAdvantage),
			f4(t.RoutedRecall), f4(t.FloodRecall),
			fmt.Sprint(t.WallMS),
		})
	}
	return csvRows(
		"docs,peers,queries,dims,route_terms,refine,topk,routed_msgs,flood_msgs,routed_bytes,flood_bytes,"+
			"msg_advantage,routed_recall,flood_recall,wall_ms",
		rows)
}
