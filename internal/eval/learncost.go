package eval

import (
	"fmt"
	"strings"
)

// LearnCostResult quantifies the §1 maintenance-cost argument over time: the
// DHT traffic of each learning iteration (polls + publications + removals),
// per document, as the index grows from the initial F terms toward the cap.
// The comparison column is the analytic cost of maintaining a full-term
// index at the same cadence — each of a document's distinct terms polled
// once per period at the measured average routing cost.
type LearnCostResult struct {
	Iterations []int
	// MsgsPerDoc is the measured SPRITE traffic per document per iteration.
	MsgsPerDoc []float64
	// TermsPerDoc is the average number of indexed terms after the iteration.
	TermsPerDoc []float64
	// FullMsgsPerDoc is the analytic per-document cost of polling every
	// distinct term at the same routing cost.
	FullMsgsPerDoc float64
	// AvgHops is the measured mean routing cost per DHT operation.
	AvgHops float64
}

// RunLearnCost trains the default deployment and measures the message cost
// of each of the first five learning iterations.
func RunLearnCost(cfg Config) (*LearnCostResult, error) {
	cfg = cfg.fillDefaults()
	cfg.Core.TermsPerIteration = 5
	cfg.Core.MaxIndexTerms = 30
	env, err := Setup(cfg)
	if err != nil {
		return nil, err
	}
	dep, err := env.NewDeployment(cfg.Core)
	if err != nil {
		return nil, err
	}
	if err := dep.InsertQueries(env.Train); err != nil {
		return nil, err
	}
	if err := dep.ShareAll(); err != nil {
		return nil, err
	}
	docs := float64(env.Col.Corpus.N())

	res := &LearnCostResult{}
	var totalHops, hopOps int64
	for iter := 1; iter <= 5; iter++ {
		dep.Sim.ResetStats()
		if err := dep.Learn(1); err != nil {
			return nil, err
		}
		stats := dep.Sim.Stats()
		res.Iterations = append(res.Iterations, iter)
		res.MsgsPerDoc = append(res.MsgsPerDoc, float64(stats.Calls)/docs)
		totalHops += stats.CallsByType["chord.next_hop"]
		hopOps += stats.CallsByType["sprite.poll"] + stats.CallsByType["sprite.publish"] + stats.CallsByType["sprite.unpublish"]

		terms := 0
		for _, id := range dep.Net.Documents() {
			ts, err := dep.Net.IndexedTerms(id)
			if err != nil {
				return nil, err
			}
			terms += len(ts)
		}
		res.TermsPerDoc = append(res.TermsPerDoc, float64(terms)/docs)
	}
	if hopOps > 0 {
		res.AvgHops = float64(totalHops) / float64(hopOps)
	}

	// Analytic full-index maintenance: every distinct term of every document
	// polled once per period, each poll costing (avg hops + 1) messages.
	distinct := 0
	for _, d := range env.Col.Corpus.Docs() {
		distinct += len(d.TF)
	}
	res.FullMsgsPerDoc = float64(distinct) / docs * (res.AvgHops + 1)
	return res, nil
}

// Table renders the result.
func (r *LearnCostResult) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Learning/maintenance traffic per document per iteration (§1 cost argument)\n")
	fmt.Fprintf(&b, "%-10s %-14s %-14s\n", "iteration", "msgs/doc", "terms/doc")
	for i, iter := range r.Iterations {
		fmt.Fprintf(&b, "%-10d %-14.1f %-14.1f\n", iter, r.MsgsPerDoc[i], r.TermsPerDoc[i])
	}
	fmt.Fprintf(&b, "full-term index maintenance (analytic): %.1f msgs/doc/period at %.1f avg hops\n",
		r.FullMsgsPerDoc, r.AvgHops)
	return b.String()
}

// CSV renders the result.
func (r *LearnCostResult) CSV() string {
	rows := make([][]string, 0, len(r.Iterations))
	for i, iter := range r.Iterations {
		rows = append(rows, []string{
			fmt.Sprint(iter),
			fmt.Sprintf("%.2f", r.MsgsPerDoc[i]),
			fmt.Sprintf("%.2f", r.TermsPerDoc[i]),
		})
	}
	return csvRows("iteration,msgs_per_doc,terms_per_doc", rows)
}
