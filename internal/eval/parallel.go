package eval

import (
	"fmt"
	"strings"
	"time"

	"github.com/spritedht/sprite/internal/ir"
	"github.com/spritedht/sprite/internal/telemetry"
)

// ParallelArm is one point of the parallelism sweep: a fully trained
// deployment measured over the test stream at a fixed fan-out limit, with the
// simulated link delay actually slept so per-query wall latency is real.
type ParallelArm struct {
	// Parallelism is the core fan-out limit (1 = the legacy sequential path).
	Parallelism int
	// Per-query latency in microseconds over the test stream — exact order
	// statistics over the per-query samples (not histogram-interpolated).
	// Wall microseconds under the wall clock, virtual microseconds under
	// VirtualTime.
	MeanUS float64
	P50US  int64
	P95US  int64
	P99US  int64
	// Speedup is arm-1 mean latency divided by this arm's mean latency.
	Speedup float64
	// Transport accounting over the measured phase. The engine's determinism
	// contract makes these identical across arms.
	Messages int64
	Bytes    int64
	// Quality on the test set at TopK — must not move with parallelism.
	Quality ir.Metrics
}

// ParallelResult is the parallelism sweep: identical deployments, identical
// query streams, fan-out limit varied.
type ParallelResult struct {
	// Delay is the constant one-way link delay slept during measurement.
	Delay time.Duration
	// Queries is the number of measured test queries per arm.
	Queries int
	// VirtualTime reports whether latency was measured on the deterministic
	// event clock (exact virtual microseconds) or the wall clock.
	VirtualTime bool
	Arms        []ParallelArm
}

// RunParallel measures query wall latency as a function of the fan-out limit.
// Every arm builds the same §6.2 deployment (insert training queries, share,
// learn) over a transport with a constant link delay, then replays the test
// stream with sleeping latency on. Because per-term work overlaps at limits
// above 1 while the engine's collection stays index-ordered, latency drops
// with parallelism while ranked lists, precision/recall, and message counts
// stay bit-identical — both halves are asserted by the determinism tests and
// visible in the emitted columns. levels defaults to {1, 2, 4, 8}; delay <= 0
// defaults to 1ms. With cfg.VirtualTime the sweep runs on the deterministic
// event clock: the slept delays advance virtual time instead of wall time,
// so the same sweep completes orders of magnitude faster and the latency
// columns are exact virtual microseconds, reproducible bit-for-bit.
func RunParallel(cfg Config, levels []int, delay time.Duration) (*ParallelResult, error) {
	cfg = cfg.fillDefaults()
	if len(levels) == 0 {
		levels = []int{1, 2, 4, 8}
	}
	if delay <= 0 {
		delay = time.Millisecond
	}
	cfg.LinkDelay = delay
	env, err := Setup(cfg)
	if err != nil {
		return nil, err
	}

	res := &ParallelResult{Delay: delay, Queries: len(env.Test), VirtualTime: cfg.VirtualTime}
	for _, level := range levels {
		// Each arm gets a private registry (the swap pattern the churn
		// experiment uses) so one arm's latency histogram never bleeds into
		// another's.
		reg := telemetry.NewRegistry()
		saved := env.Cfg.Telemetry
		env.Cfg.Telemetry = reg
		coreCfg := cfg.Core
		coreCfg.Parallelism = level
		dep, err := env.NewDeployment(coreCfg)
		env.Cfg.Telemetry = saved
		if err != nil {
			return nil, fmt.Errorf("eval: parallel arm %d: %w", level, err)
		}
		var (
			quality ir.Metrics
			samples []int64
			runErr  error
		)
		dep.Run(func() {
			if runErr = dep.InsertQueries(env.Train); runErr != nil {
				return
			}
			if runErr = dep.ShareAll(); runErr != nil {
				return
			}
			if runErr = dep.Learn(cfg.LearningIterations); runErr != nil {
				return
			}

			// Training ran with latency accounted but not slept (it would
			// dominate the run without informing the measurement; under
			// virtual time it would merely inflate the virtual timeline).
			// Only the measured query phase sleeps.
			dep.Sim.ResetStats()
			dep.Sim.SetSleepLatency(true)
			quality = Measure(timedSearcher(dep.SpriteSearcher(), dep.Clock(), &samples), env.Test, cfg.TopK)
			dep.Sim.SetSleepLatency(false)
		})
		if runErr != nil {
			return nil, runErr
		}

		st := dep.Sim.Stats()
		lat := summarize(samples)
		arm := ParallelArm{
			Parallelism: level,
			MeanUS:      lat.Mean,
			P50US:       lat.P50,
			P95US:       lat.P95,
			P99US:       lat.P99,
			Messages:    st.Calls,
			Bytes:       st.Bytes,
			Quality:     quality,
		}
		if base := res.Arms; len(base) > 0 && arm.MeanUS > 0 {
			arm.Speedup = base[0].MeanUS / arm.MeanUS
		} else if arm.MeanUS > 0 {
			arm.Speedup = 1
		}
		res.Arms = append(res.Arms, arm)
	}
	return res, nil
}

// Table renders the sweep.
func (r *ParallelResult) Table() string {
	var b strings.Builder
	mode := "wall clock"
	if r.VirtualTime {
		mode = "virtual time"
	}
	fmt.Fprintf(&b, "Query latency vs fan-out parallelism (%d queries, %v link delay, %s)\n",
		r.Queries, r.Delay, mode)
	fmt.Fprintf(&b, "%-12s %-12s %-10s %-10s %-10s %-9s %-10s %-18s\n",
		"parallelism", "mean_us", "p50_us", "p95_us", "p99_us", "speedup", "messages", "precision/recall")
	for _, a := range r.Arms {
		fmt.Fprintf(&b, "%-12d %-12.1f %-10d %-10d %-10d %-9.2f %-10d P=%.4f R=%.4f\n",
			a.Parallelism, a.MeanUS, a.P50US, a.P95US, a.P99US, a.Speedup,
			a.Messages, a.Quality.Precision, a.Quality.Recall)
	}
	return b.String()
}

// CSV renders one row per arm.
func (r *ParallelResult) CSV() string {
	rows := make([][]string, 0, len(r.Arms))
	for _, a := range r.Arms {
		rows = append(rows, []string{
			fmt.Sprint(a.Parallelism), fmt.Sprint(r.Delay.Microseconds()), fmt.Sprint(r.Queries),
			fmt.Sprintf("%.1f", a.MeanUS), fmt.Sprint(a.P50US), fmt.Sprint(a.P95US), fmt.Sprint(a.P99US),
			f4(a.Speedup), fmt.Sprint(a.Messages), fmt.Sprint(a.Bytes),
			f4(a.Quality.Precision), f4(a.Quality.Recall),
		})
	}
	return csvRows("parallelism,link_delay_us,queries,mean_us,p50_us,p95_us,p99_us,speedup,messages,bytes,precision,recall", rows)
}
