// Package eval is the experiment harness: it reproduces every figure of the
// SPRITE paper's performance study (§6) plus the supplementary systems-level
// measurements indexed in DESIGN.md. Each experiment is a pure function of
// its Config — all randomness is seeded — so results are reproducible
// bit-for-bit.
package eval

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"github.com/spritedht/sprite/internal/central"
	"github.com/spritedht/sprite/internal/chord"
	"github.com/spritedht/sprite/internal/core"
	"github.com/spritedht/sprite/internal/corpus"
	"github.com/spritedht/sprite/internal/esearch"
	"github.com/spritedht/sprite/internal/ir"
	"github.com/spritedht/sprite/internal/querygen"
	"github.com/spritedht/sprite/internal/simnet"
	"github.com/spritedht/sprite/internal/telemetry"
	"github.com/spritedht/sprite/internal/vtime"
)

// Config assembles the full experimental setup of §6.2.
type Config struct {
	// Corpus parameterizes the synthetic TREC9-like collection. Ignored if
	// Collection is set.
	Corpus corpus.SynthConfig
	// Collection, if non-nil, supplies an externally built judged collection
	// (e.g. loaded with corpus.ReadCollection). When its queries already
	// include a derived set (cmd/corpusgen emits one), set SkipQueryGen.
	Collection *corpus.Collection
	// SkipQueryGen uses Collection's queries verbatim instead of running the
	// §6.1 generator over them.
	SkipQueryGen bool
	// QueryGen parameterizes the §6.1 query generator (O = 70%, k = 9, …).
	QueryGen querygen.Config
	// Peers is the number of DHT peers in the simulated network.
	Peers int
	// Core is SPRITE's configuration (5 initial terms, 5 per iteration, …).
	Core core.Config
	// TopK is the number of answers retrieved per query (paper: 20).
	TopK int
	// LearningIterations is the number of learning rounds after the initial
	// share (paper: 3, for 5 + 3×5 = 20 indexed terms).
	LearningIterations int
	// TrainFraction is the share of queries used for training (paper: half).
	TrainFraction float64
	// Seed drives the train/test split and any other harness randomness.
	Seed int64
	// Telemetry, if non-nil, receives metrics and traces from every layer of
	// each deployment (transport, overlay, SPRITE core). Nil leaves
	// instrumentation off.
	Telemetry *telemetry.Registry
	// ChurnRotateEvery is the number of test queries between fault rotations
	// in the churn experiment's transient arms: every interval, the faulty
	// peers recover and a freshly drawn set starts dropping calls. Zero
	// rotates four times over the test stream.
	ChurnRotateEvery int
	// LinkDelay, when positive, gives every simulated call a constant
	// one-way link delay. Constant (not drawn) so the transport's RNG stream
	// — and therefore every routed message — is identical with the delay on
	// or off; the parallel experiment depends on that invariance.
	LinkDelay time.Duration
	// VirtualTime runs each deployment on a deterministic discrete-event
	// clock (internal/vtime): link-delay sleeps, retry backoff, hedging
	// triggers, and per-attempt timeouts become scheduler events, so a
	// measured phase that "sleeps" hours of simulated latency completes in
	// seconds of wall time with exact, jitter-free latency percentiles.
	// Experiment phases that touch a virtual deployment must run inside
	// Deployment.Run.
	VirtualTime bool
}

// DefaultConfig returns the paper's experimental setup (§6.2) at the
// laptop-size scale documented in DESIGN.md.
func DefaultConfig() Config {
	return Config{
		Corpus:             corpus.SynthConfig{Seed: 17},
		QueryGen:           querygen.Config{Seed: 23},
		Peers:              64,
		Core:               core.Config{},
		TopK:               20,
		LearningIterations: 3,
		TrainFraction:      0.5,
		Seed:               31,
	}
}

func (c Config) fillDefaults() Config {
	if c.Peers == 0 {
		c.Peers = 64
	}
	if c.TopK == 0 {
		c.TopK = 20
	}
	if c.LearningIterations == 0 {
		c.LearningIterations = 3
	}
	if c.TrainFraction == 0 {
		c.TrainFraction = 0.5
	}
	c.Core = c.Core.FillDefaults()
	return c
}

// Env is the shared experimental environment: collection, centralized
// baseline, generated query set, and train/test split.
type Env struct {
	Cfg     Config
	Col     *corpus.Collection
	Central *central.System
	Gen     *querygen.Generated
	Train   []*corpus.Query
	Test    []*corpus.Query
}

// Setup builds the environment: synthesize the collection, index it
// centrally, run the query generator, and split queries randomly into equal
// training and testing sets ("The queries are randomly assigned to the
// groups", §6.2).
func Setup(cfg Config) (*Env, error) {
	cfg = cfg.fillDefaults()
	col := cfg.Collection
	if col == nil {
		var err error
		col, err = corpus.Synthesize(cfg.Corpus)
		if err != nil {
			return nil, fmt.Errorf("eval: corpus: %w", err)
		}
	}
	sys := central.New(col.Corpus)
	var gen *querygen.Generated
	if cfg.SkipQueryGen {
		// The collection's queries are already the full set; each query is
		// its own origin.
		gen = &querygen.Generated{Origin: make(map[string]string, len(col.Queries))}
		gen.Queries = append(gen.Queries, col.Queries...)
		for _, q := range col.Queries {
			gen.Origin[q.ID] = q.ID
		}
	} else {
		var err error
		gen, err = querygen.Generate(col, sys, cfg.QueryGen)
		if err != nil {
			return nil, fmt.Errorf("eval: querygen: %w", err)
		}
	}
	env := &Env{Cfg: cfg, Col: col, Central: sys, Gen: gen}

	rng := rand.New(rand.NewSource(cfg.Seed))
	perm := rng.Perm(len(gen.Queries))
	cut := int(cfg.TrainFraction * float64(len(gen.Queries)))
	for i, pi := range perm {
		q := gen.Queries[pi]
		if i < cut {
			env.Train = append(env.Train, q)
		} else {
			env.Test = append(env.Test, q)
		}
	}
	return env, nil
}

// Deployment is one running SPRITE network over the environment's corpus.
type Deployment struct {
	Env *Env
	// Sim is the simulated transport (kept directly for its accounting and
	// fault-injection capabilities).
	Sim  *simnet.Network
	Ring *chord.Ring
	Net  *core.Network
	// Clk is the deployment's virtual clock (nil unless Config.VirtualTime):
	// the transport, retry/hedging layer, and fan-out engine all schedule on
	// it. Wrap deployment-touching phases in Run so the driving goroutine
	// participates in virtual scheduling.
	Clk   *vtime.Sim
	addrs []simnet.Addr
	// issue counts round-robin query issuers so load spreads across peers.
	issue int
}

// NewDeployment builds a fresh simulated network + Chord ring + SPRITE
// network with the given core configuration. Documents are NOT shared yet;
// call ShareAll after inserting the training queries, per the §6.2 order.
func (e *Env) NewDeployment(coreCfg core.Config) (*Deployment, error) {
	var snetOpts []simnet.Option
	if e.Cfg.Telemetry != nil {
		snetOpts = append(snetOpts, simnet.WithTelemetry(e.Cfg.Telemetry))
	}
	if e.Cfg.LinkDelay > 0 {
		snetOpts = append(snetOpts, simnet.WithLatency(simnet.UniformLatency(e.Cfg.LinkDelay, e.Cfg.LinkDelay)))
	}
	var clk *vtime.Sim
	if e.Cfg.VirtualTime {
		clk = vtime.NewSim()
		snetOpts = append(snetOpts, simnet.WithClock(clk))
		coreCfg.Clock = clk
	}
	snet := simnet.New(e.Cfg.Seed+1, snetOpts...)
	ring := chord.NewRing(snet, chord.Config{Telemetry: e.Cfg.Telemetry})
	if _, err := ring.AddNodes("peer", e.Cfg.Peers); err != nil {
		return nil, fmt.Errorf("eval: ring: %w", err)
	}
	ring.Build()
	coreCfg.Telemetry = e.Cfg.Telemetry
	n, err := core.NewNetwork(ring, coreCfg)
	if err != nil {
		return nil, fmt.Errorf("eval: network: %w", err)
	}
	d := &Deployment{Env: e, Sim: snet, Ring: ring, Net: n, Clk: clk}
	for _, p := range n.Peers() {
		d.addrs = append(d.addrs, p.Addr())
	}
	return d, nil
}

// Run executes fn with the calling goroutine registered on the deployment's
// virtual clock, so every virtual wait inside (slept link latency, backoff,
// timeouts) is scheduled deterministically. Under the wall clock (Clk nil)
// it simply calls fn. All phases that drive a virtual deployment — training,
// sharing, learning, measuring — must go through here.
func (d *Deployment) Run(fn func()) {
	if d.Clk == nil {
		fn()
		return
	}
	d.Clk.Run(fn)
}

// Clock returns the deployment's clock: the virtual clock when one is
// installed, the wall clock otherwise. Never nil.
func (d *Deployment) Clock() vtime.Clock {
	if d.Clk == nil {
		return vtime.Wall
	}
	return d.Clk
}

// nextIssuer returns the next query-issuing peer, round-robin.
func (d *Deployment) nextIssuer() simnet.Addr {
	a := d.addrs[d.issue%len(d.addrs)]
	d.issue++
	return a
}

// InsertQueries caches each query's keywords in the network (the training
// insertion of §6.2), issuing from round-robin peers.
func (d *Deployment) InsertQueries(queries []*corpus.Query) error {
	for _, q := range queries {
		if err := d.Net.InsertQuery(d.nextIssuer(), q.Terms); err != nil {
			return fmt.Errorf("eval: insert query %s: %w", q.ID, err)
		}
	}
	return nil
}

// InsertZipfQueryStream inserts volume queries drawn from the given set with
// Zipf-distributed popularity (the paper's "w-zipf" workload, slope 0.5:
// "the frequency of a query is roughly inversely proportional to the
// popularity of the query", §6.3).
func (d *Deployment) InsertZipfQueryStream(queries []*corpus.Query, volume int, slope float64, seed int64) error {
	for _, r := range zipfRanks(len(queries), volume, slope, seed) {
		q := queries[r]
		if err := d.Net.InsertQuery(d.nextIssuer(), q.Terms); err != nil {
			return fmt.Errorf("eval: zipf insert %s: %w", q.ID, err)
		}
	}
	return nil
}

// zipfRanks samples volume ranks in [0, n) with Zipf-distributed popularity
// by inverse-CDF sampling. The draw sequence (one rng.Float64 per sample) is
// part of the reproducibility contract: InsertZipfQueryStream has always
// consumed randomness this way, and the w-zipf figures depend on it.
func zipfRanks(n, volume int, slope float64, seed int64) []int {
	if n == 0 || volume <= 0 {
		return nil
	}
	rng := rand.New(rand.NewSource(seed))
	cum := make([]float64, n)
	total := 0.0
	for r := 0; r < n; r++ {
		total += 1 / math.Pow(float64(r+1), slope)
		cum[r] = total
	}
	out := make([]int, volume)
	for i := range out {
		x := rng.Float64() * total
		lo, hi := 0, n-1
		for lo < hi {
			mid := (lo + hi) / 2
			if cum[mid] >= x {
				hi = mid
			} else {
				lo = mid + 1
			}
		}
		out[i] = lo
	}
	return out
}

// ShareAll distributes every corpus document round-robin across peers and
// publishes its initial index terms.
func (d *Deployment) ShareAll() error {
	for i, doc := range d.Env.Col.Corpus.Docs() {
		owner := d.addrs[i%len(d.addrs)]
		if err := d.Net.Share(owner, doc); err != nil {
			return fmt.Errorf("eval: share %s: %w", doc.ID, err)
		}
	}
	return nil
}

// Learn runs the given number of learning iterations over all documents.
func (d *Deployment) Learn(iterations int) error {
	for i := 0; i < iterations; i++ {
		if _, err := d.Net.LearnAll(); err != nil {
			return err
		}
	}
	return nil
}

// Searcher is any system that can answer a keyword query with a top-k ranked
// list; the three systems under comparison all satisfy it.
type Searcher func(terms []string, k int) ir.RankedList

// SpriteSearcher returns a non-perturbing searcher over the deployment
// (queries are processed but not cached, so measurement does not train the
// system being measured).
func (d *Deployment) SpriteSearcher() Searcher {
	return func(terms []string, k int) ir.RankedList {
		rl, err := d.Net.Probe(d.nextIssuer(), terms, k)
		if err != nil {
			return nil
		}
		return rl
	}
}

// CentralSearcher adapts the centralized baseline.
func (e *Env) CentralSearcher() Searcher {
	return e.Central.Search
}

// ESearchSearcher builds the static top-k baseline at the given per-document
// term budget and adapts it.
func (e *Env) ESearchSearcher(terms int) (Searcher, error) {
	s, err := esearch.New(e.Col.Corpus, terms, e.Cfg.Core.SurrogateN)
	if err != nil {
		return nil, err
	}
	return s.Search, nil
}

// MeasureAt evaluates a searcher over the query set at several answer-list
// depths in a single pass: each query is searched once at the deepest K and
// the metrics are computed on each prefix.
func MeasureAt(s Searcher, queries []*corpus.Query, ks []int) map[int]ir.Metrics {
	maxK := 0
	for _, k := range ks {
		if k > maxK {
			maxK = k
		}
	}
	perK := make(map[int][]ir.Metrics, len(ks))
	for _, q := range queries {
		rl := s(q.Terms, maxK)
		for _, k := range ks {
			perK[k] = append(perK[k], ir.Evaluate(rl.Top(k).Docs(), q.Relevant))
		}
	}
	out := make(map[int]ir.Metrics, len(ks))
	for _, k := range ks {
		out[k] = ir.MeanMetrics(perK[k])
	}
	return out
}

// Measure evaluates a searcher at a single depth.
func Measure(s Searcher, queries []*corpus.Query, k int) ir.Metrics {
	return MeasureAt(s, queries, []int{k})[k]
}
