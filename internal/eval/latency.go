package eval

import (
	"math"
	"sort"

	"github.com/spritedht/sprite/internal/ir"
	"github.com/spritedht/sprite/internal/vtime"
)

// timedSearcher wraps s so every call's latency, measured on clk, is
// appended to *samples (microseconds). Experiments use it to report exact
// percentiles: the telemetry histogram's Quantile interpolates inside
// exponential buckets, which is fine for dashboards but not for a committed
// baseline. Under a virtual clock the samples are exact simulated latencies,
// identical across runs with the same seed.
func timedSearcher(s Searcher, clk vtime.Clock, samples *[]int64) Searcher {
	clk = vtime.Default(clk)
	return func(terms []string, k int) ir.RankedList {
		start := clk.Now()
		rl := s(terms, k)
		*samples = append(*samples, clk.Now().Sub(start).Microseconds())
		return rl
	}
}

// latencySummary holds exact order statistics over a sample set.
type latencySummary struct {
	Mean          float64
	P50, P95, P99 int64
}

// summarize computes exact (nearest-rank) percentiles and the mean. It sorts
// a copy; the caller's sample order is preserved.
func summarize(samples []int64) latencySummary {
	if len(samples) == 0 {
		return latencySummary{}
	}
	sorted := make([]int64, len(samples))
	copy(sorted, samples)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	var sum float64
	for _, v := range sorted {
		sum += float64(v)
	}
	return latencySummary{
		Mean: sum / float64(len(sorted)),
		P50:  exactQuantile(sorted, 0.50),
		P95:  exactQuantile(sorted, 0.95),
		P99:  exactQuantile(sorted, 0.99),
	}
}

// exactQuantile returns the nearest-rank q-quantile of an ascending-sorted
// sample set: the smallest value with at least ⌈q·n⌉ samples at or below it.
func exactQuantile(sorted []int64, q float64) int64 {
	if len(sorted) == 0 {
		return 0
	}
	rank := int(math.Ceil(q * float64(len(sorted))))
	if rank < 1 {
		rank = 1
	}
	if rank > len(sorted) {
		rank = len(sorted)
	}
	return sorted[rank-1]
}
