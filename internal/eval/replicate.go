package eval

import (
	"fmt"
	"math"
	"strings"
)

// This file adds statistical replication: the headline experiment re-run
// across independent seeds (fresh corpus, query set, split, and network per
// seed) with mean and standard deviation reported per point. Single-seed
// results from a synthetic corpus carry sampling noise; replication is what
// licenses statements like "SPRITE ≈ 0.88 of centralized".

// Fig4aAggregate is Figure 4(a) replicated across seeds.
type Fig4aAggregate struct {
	Seeds int
	Ks    []int
	// Per K: mean and standard deviation of the precision ratios.
	SpriteMean, SpriteStd   []float64
	ESearchMean, ESearchStd []float64
	// Recall aggregates.
	SpriteRecMean, SpriteRecStd   []float64
	ESearchRecMean, ESearchRecStd []float64
}

// RunFig4aReplicated runs Fig. 4(a) across `seeds` independent replications.
// Every stochastic component — corpus, query generation, train/test split,
// network — is re-seeded per run.
func RunFig4aReplicated(cfg Config, seeds int) (*Fig4aAggregate, error) {
	if seeds < 1 {
		return nil, fmt.Errorf("eval: seeds = %d, need >= 1", seeds)
	}
	var runs []*Fig4aResult
	for s := 0; s < seeds; s++ {
		c := cfg
		c.Corpus.Seed = cfg.Corpus.Seed + int64(1000*s) + 1
		c.QueryGen.Seed = cfg.QueryGen.Seed + int64(1000*s) + 2
		c.Seed = cfg.Seed + int64(1000*s) + 3
		res, err := RunFig4a(c)
		if err != nil {
			return nil, fmt.Errorf("eval: replication %d: %w", s, err)
		}
		runs = append(runs, res)
	}

	agg := &Fig4aAggregate{Seeds: seeds, Ks: runs[0].Ks}
	for i := range agg.Ks {
		var sp, ep, sr, er []float64
		for _, r := range runs {
			sp = append(sp, r.Sprite[i].Precision)
			ep = append(ep, r.ESearch[i].Precision)
			sr = append(sr, r.Sprite[i].Recall)
			er = append(er, r.ESearch[i].Recall)
		}
		m, sd := meanStd(sp)
		agg.SpriteMean, agg.SpriteStd = append(agg.SpriteMean, m), append(agg.SpriteStd, sd)
		m, sd = meanStd(ep)
		agg.ESearchMean, agg.ESearchStd = append(agg.ESearchMean, m), append(agg.ESearchStd, sd)
		m, sd = meanStd(sr)
		agg.SpriteRecMean, agg.SpriteRecStd = append(agg.SpriteRecMean, m), append(agg.SpriteRecStd, sd)
		m, sd = meanStd(er)
		agg.ESearchRecMean, agg.ESearchRecStd = append(agg.ESearchRecMean, m), append(agg.ESearchRecStd, sd)
	}
	return agg, nil
}

// meanStd returns the sample mean and (population-normalized) standard
// deviation. A single sample has zero deviation.
func meanStd(xs []float64) (float64, float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	m := mean(xs)
	if len(xs) == 1 {
		return m, 0
	}
	v := 0.0
	for _, x := range xs {
		v += (x - m) * (x - m)
	}
	return m, math.Sqrt(v / float64(len(xs)))
}

// Table renders the aggregate in the paper's row form, one ± column pair per
// system.
func (r *Fig4aAggregate) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 4(a) over %d seeds: precision/recall ratio vs number of answers (mean ± std)\n", r.Seeds)
	fmt.Fprintf(&b, "%-6s %-18s %-18s %-18s %-18s\n", "K", "SPRITE-prec", "eSearch-prec", "SPRITE-rec", "eSearch-rec")
	for i, k := range r.Ks {
		fmt.Fprintf(&b, "%-6d %6.3f ± %-9.3f %6.3f ± %-9.3f %6.3f ± %-9.3f %6.3f ± %-9.3f\n",
			k,
			r.SpriteMean[i], r.SpriteStd[i],
			r.ESearchMean[i], r.ESearchStd[i],
			r.SpriteRecMean[i], r.SpriteRecStd[i],
			r.ESearchRecMean[i], r.ESearchRecStd[i])
	}
	return b.String()
}

// CSV renders the aggregate.
func (r *Fig4aAggregate) CSV() string {
	rows := make([][]string, 0, len(r.Ks))
	for i, k := range r.Ks {
		rows = append(rows, []string{
			fmt.Sprint(k),
			f4(r.SpriteMean[i]), f4(r.SpriteStd[i]),
			f4(r.ESearchMean[i]), f4(r.ESearchStd[i]),
			f4(r.SpriteRecMean[i]), f4(r.SpriteRecStd[i]),
			f4(r.ESearchRecMean[i]), f4(r.ESearchRecStd[i]),
		})
	}
	return csvRows("k,sprite_p_mean,sprite_p_std,esearch_p_mean,esearch_p_std,sprite_r_mean,sprite_r_std,esearch_r_mean,esearch_r_std", rows)
}
