package eval

import (
	"strings"
	"testing"
)

// TestRunSimilaritySmoke exercises the similarity benchmark end to end at
// unit-test size and pins its structural contract: both arms answer every
// query, the flooding arm bills one scan per remote peer, the routed arm
// stays under it, and recall against the exact oracle is sane for both.
func TestRunSimilaritySmoke(t *testing.T) {
	cfg := tiny()
	res, err := RunSimilarity(cfg, []int{300}, 32, 10)
	if err != nil {
		t.Fatalf("RunSimilarity: %v", err)
	}
	if len(res.Tiers) != 1 {
		t.Fatalf("tier count = %d, want 1", len(res.Tiers))
	}
	tier := res.Tiers[0]
	if tier.Docs != 300 || tier.Peers != 32 || tier.Queries != 10 {
		t.Fatalf("tier shape wrong: %+v", tier)
	}
	// One sketch scan per remote peer: the issuer's self-scan is free.
	if tier.FloodMsgs != 31 {
		t.Errorf("flood msgs/query = %v, want 31", tier.FloodMsgs)
	}
	// The routed arm's bill is bounded by its parts: route-term lookups plus
	// at most Refine term-vector fetches per query. (At this toy scale the
	// flood arm is cheaper — the advantage is a property of large networks,
	// pinned by BENCH_similarity.json, not of 32 peers.)
	if tier.RoutedMsgs <= 0 {
		t.Errorf("routed msgs/query = %v, want > 0", tier.RoutedMsgs)
	}
	if ratio := tier.FloodMsgs / tier.RoutedMsgs; tier.MsgAdvantage != ratio {
		t.Errorf("advantage = %v, want FloodMsgs/RoutedMsgs = %v", tier.MsgAdvantage, ratio)
	}
	// The refined routed arm must not trail the pure-sketch flood arm, and
	// both must retrieve something real.
	if tier.RoutedRecall <= 0 || tier.FloodRecall <= 0 {
		t.Errorf("degenerate recall: routed %v flood %v", tier.RoutedRecall, tier.FloodRecall)
	}
	if tier.RoutedRecall < tier.FloodRecall {
		t.Errorf("refined routed recall %v below pure-sketch flood recall %v",
			tier.RoutedRecall, tier.FloodRecall)
	}
	if !strings.HasPrefix(res.CSV(), "docs,peers,queries,dims,route_terms,refine,topk,") {
		t.Errorf("CSV header missing: %q", res.CSV())
	}
	if res.Table() == "" {
		t.Error("empty table")
	}
}
