package eval

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"github.com/spritedht/sprite/internal/core"
	"github.com/spritedht/sprite/internal/corpus"
	"github.com/spritedht/sprite/internal/ir"
	"github.com/spritedht/sprite/internal/querygen"
)

// tiny returns a configuration small enough for unit tests but large enough
// for the learning dynamics to be visible.
func tiny() Config {
	cfg := DefaultConfig()
	cfg.Corpus = corpus.SynthConfig{NumDocs: 300, NumTopics: 4, NumQueries: 12, Seed: 17}
	cfg.QueryGen = querygen.Config{PerOriginal: 4, Seed: 23}
	cfg.Peers = 16
	return cfg
}

func TestSetupSplitsQueries(t *testing.T) {
	env, err := Setup(tiny())
	if err != nil {
		t.Fatalf("Setup: %v", err)
	}
	total := len(env.Train) + len(env.Test)
	if total != len(env.Gen.Queries) {
		t.Fatalf("split lost queries: %d + %d != %d", len(env.Train), len(env.Test), len(env.Gen.Queries))
	}
	if len(env.Train) == 0 || len(env.Test) == 0 {
		t.Fatal("degenerate split")
	}
	diff := len(env.Train) - len(env.Test)
	if diff < -1 || diff > 1 {
		t.Fatalf("split not even: %d vs %d", len(env.Train), len(env.Test))
	}
	// No query in both sets.
	seen := map[string]bool{}
	for _, q := range env.Train {
		seen[q.ID] = true
	}
	for _, q := range env.Test {
		if seen[q.ID] {
			t.Fatalf("query %s in both train and test", q.ID)
		}
	}
}

func TestSetupDeterministic(t *testing.T) {
	a, err := Setup(tiny())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Setup(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Train) != len(b.Train) {
		t.Fatal("train sizes differ across identical configs")
	}
	for i := range a.Train {
		if a.Train[i].ID != b.Train[i].ID {
			t.Fatal("train order differs across identical configs")
		}
	}
}

func TestDeploymentShareAndMeasure(t *testing.T) {
	env, err := Setup(tiny())
	if err != nil {
		t.Fatal(err)
	}
	dep, err := env.NewDeployment(env.Cfg.Core)
	if err != nil {
		t.Fatal(err)
	}
	if err := dep.InsertQueries(env.Train); err != nil {
		t.Fatal(err)
	}
	if err := dep.ShareAll(); err != nil {
		t.Fatal(err)
	}
	if got := len(dep.Net.Documents()); got != 300 {
		t.Fatalf("shared %d docs, want 300", got)
	}
	m := Measure(dep.SpriteSearcher(), env.Test, 20)
	if m.Precision <= 0 || m.Precision > 1 {
		t.Fatalf("precision out of range: %v", m.Precision)
	}
	central := Measure(env.CentralSearcher(), env.Test, 20)
	if central.Precision < m.Precision {
		t.Fatalf("centralized (%v) worse than SPRITE (%v) before learning", central.Precision, m.Precision)
	}
}

func TestProbeDoesNotPerturb(t *testing.T) {
	env, err := Setup(tiny())
	if err != nil {
		t.Fatal(err)
	}
	dep, err := env.NewDeployment(env.Cfg.Core)
	if err != nil {
		t.Fatal(err)
	}
	if err := dep.ShareAll(); err != nil {
		t.Fatal(err)
	}
	before := 0
	for _, p := range dep.Net.Peers() {
		before += p.HistoryLen()
	}
	Measure(dep.SpriteSearcher(), env.Test, 20)
	after := 0
	for _, p := range dep.Net.Peers() {
		after += p.HistoryLen()
	}
	if after != before {
		t.Fatalf("probing leaked %d queries into histories", after-before)
	}
}

func TestLearningImprovesRetrieval(t *testing.T) {
	// The central claim of the paper, as an executable assertion: learning
	// iterations improve precision and recall relative to the unlearned
	// (5-term) index.
	env, err := Setup(tiny())
	if err != nil {
		t.Fatal(err)
	}
	dep, err := env.NewDeployment(env.Cfg.Core)
	if err != nil {
		t.Fatal(err)
	}
	if err := dep.InsertQueries(env.Train); err != nil {
		t.Fatal(err)
	}
	if err := dep.ShareAll(); err != nil {
		t.Fatal(err)
	}
	before := Measure(dep.SpriteSearcher(), env.Test, 20)
	if err := dep.Learn(3); err != nil {
		t.Fatal(err)
	}
	after := Measure(dep.SpriteSearcher(), env.Test, 20)
	if after.Precision <= before.Precision {
		t.Fatalf("precision did not improve: %.3f -> %.3f", before.Precision, after.Precision)
	}
	if after.Recall <= before.Recall {
		t.Fatalf("recall did not improve: %.3f -> %.3f", before.Recall, after.Recall)
	}
}

func TestRunFig4aShape(t *testing.T) {
	res, err := RunFig4a(tiny())
	if err != nil {
		t.Fatalf("RunFig4a: %v", err)
	}
	if len(res.Ks) != 6 || len(res.Sprite) != 6 || len(res.ESearch) != 6 {
		t.Fatalf("unexpected result shape: %+v", res)
	}
	for i := range res.Ks {
		if res.Sprite[i].Precision <= 0 || res.Sprite[i].Precision > 1.2 {
			t.Fatalf("sprite ratio out of plausible range at K=%d: %v", res.Ks[i], res.Sprite[i])
		}
	}
	// The paper's headline: SPRITE outperforms the static scheme at larger
	// answer counts (K >= 15).
	for i, k := range res.Ks {
		if k >= 15 && res.Sprite[i].Precision < res.ESearch[i].Precision {
			t.Errorf("K=%d: SPRITE (%.3f) below eSearch (%.3f)", k,
				res.Sprite[i].Precision, res.ESearch[i].Precision)
		}
	}
	if res.Table() == "" {
		t.Fatal("empty table")
	}
}

func TestRunFig4bShape(t *testing.T) {
	res, err := RunFig4b(tiny(), WithoutRepeats)
	if err != nil {
		t.Fatalf("RunFig4b: %v", err)
	}
	if len(res.Terms) != 6 {
		t.Fatalf("checkpoints = %v", res.Terms)
	}
	// At 5 terms no learning has happened: the systems must coincide.
	if d := res.Sprite[0].Precision - res.ESearch[0].Precision; d < -1e-9 || d > 1e-9 {
		t.Fatalf("at 5 terms SPRITE (%.4f) != eSearch (%.4f)", res.Sprite[0].Precision, res.ESearch[0].Precision)
	}
	// SPRITE must not lose to eSearch at any larger budget.
	for i := 1; i < len(res.Terms); i++ {
		if res.Sprite[i].Precision < res.ESearch[i].Precision {
			t.Errorf("terms=%d: SPRITE (%.3f) below eSearch (%.3f)",
				res.Terms[i], res.Sprite[i].Precision, res.ESearch[i].Precision)
		}
	}
	// More terms must not hurt SPRITE substantially (monotone-ish growth).
	if res.Sprite[5].Precision+0.05 < res.Sprite[0].Precision {
		t.Errorf("precision decreased with more terms: %v", res.Sprite)
	}
}

func TestRunFig4bZipfVariant(t *testing.T) {
	res, err := RunFig4b(tiny(), WithZipf)
	if err != nil {
		t.Fatalf("RunFig4b zipf: %v", err)
	}
	if res.Variant != WithZipf {
		t.Fatalf("variant = %q", res.Variant)
	}
	if _, err := RunFig4b(tiny(), Fig4bVariant("bogus")); err == nil {
		t.Fatal("bogus variant accepted")
	}
}

func TestRunFig4cShape(t *testing.T) {
	res, err := RunFig4c(tiny())
	if err != nil {
		t.Fatalf("RunFig4c: %v", err)
	}
	if len(res.Iterations) != 10 || res.SwitchAt != 6 {
		t.Fatalf("unexpected shape: %+v", res.Iterations)
	}
	// Learning improves within the first phase.
	if res.Sprite[4].Precision <= res.Sprite[0].Precision {
		t.Errorf("no improvement across first phase: %.3f -> %.3f",
			res.Sprite[0].Precision, res.Sprite[4].Precision)
	}
	// Recovery: by the end of phase 2, SPRITE exceeds its value at the
	// switch point.
	if res.Sprite[9].Precision <= res.Sprite[5].Precision {
		t.Errorf("no recovery after pattern change: %.3f -> %.3f",
			res.Sprite[5].Precision, res.Sprite[9].Precision)
	}
}

func TestRunChordHops(t *testing.T) {
	res, err := RunChordHops([]int{8, 32}, 50, 1)
	if err != nil {
		t.Fatalf("RunChordHops: %v", err)
	}
	for i := range res.Sizes {
		if res.AvgHops[i] > res.Log2N[i]+2 {
			t.Errorf("N=%d: avg hops %.2f above log2N+2", res.Sizes[i], res.AvgHops[i])
		}
	}
	if res.AvgHops[1] <= res.AvgHops[0] {
		t.Error("hops did not grow with network size")
	}
}

func TestRunInsertCost(t *testing.T) {
	cfg := tiny()
	cfg.Corpus.NumDocs = 100
	res, err := RunInsertCost(cfg)
	if err != nil {
		t.Fatalf("RunInsertCost: %v", err)
	}
	if res.MsgRatio <= 2 {
		t.Fatalf("full indexing only %.1fx costlier — selective indexing should be much cheaper", res.MsgRatio)
	}
	if res.FullPostings <= res.SelectivePostings {
		t.Fatal("full indexing stored fewer postings than selective")
	}
}

func TestRunScoreAblation(t *testing.T) {
	cfg := tiny()
	res, err := RunScoreAblation(cfg)
	if err != nil {
		t.Fatalf("RunScoreAblation: %v", err)
	}
	if len(res.Variants) != 4 {
		t.Fatalf("variants = %v", res.Variants)
	}
	for i, m := range res.Metrics {
		if m.Precision <= 0 {
			t.Errorf("variant %v produced zero precision", res.Variants[i])
		}
	}
}

func TestRunChurn(t *testing.T) {
	cfg := tiny()
	res, err := RunChurn(cfg, 0.25, 2)
	if err != nil {
		t.Fatalf("RunChurn: %v", err)
	}
	if res.PostingsLost <= 0 {
		t.Fatal("no postings reported lost at 25% failures")
	}
	// Replication must not be worse than no replication.
	if res.Replicated.Precision+1e-9 < res.NoReplication.Precision {
		t.Errorf("replication hurt precision: %.3f vs %.3f",
			res.Replicated.Precision, res.NoReplication.Precision)
	}
	// Under transient churn the resilient read path must not be worse than
	// the bare one, and its counters must show it actually worked: retries
	// against the dropped holders, then failovers to the replica holders.
	if res.FailoverOn.Recall+1e-9 < res.FailoverOff.Recall {
		t.Errorf("failover hurt recall: %.3f vs %.3f",
			res.FailoverOn.Recall, res.FailoverOff.Recall)
	}
	if res.On.Retries == 0 || res.On.Failovers == 0 {
		t.Errorf("failover-on arm counters flat: %+v", res.On)
	}
	if res.Off != (ResilienceCounters{Partials: res.Off.Partials}) {
		t.Errorf("failover-off arm retried or failed over: %+v", res.Off)
	}
	// Mass-join/mass-leave arms: recall must recover to the healthy baseline
	// with no owner refresh sweep — placement recovery is peer-driven.
	if res.JoinedPeers < 1 {
		t.Fatalf("no peers joined in the mass-join arm")
	}
	if res.AfterMassJoin.Recall+1e-9 < res.Baseline.Recall {
		t.Errorf("recall after mass join %.3f below healthy %.3f despite repair",
			res.AfterMassJoin.Recall, res.Baseline.Recall)
	}
	if res.AfterMassLeave.Recall+1e-9 < res.Baseline.Recall {
		t.Errorf("recall after mass leave %.3f below healthy %.3f despite repair",
			res.AfterMassLeave.Recall, res.Baseline.Recall)
	}
	// Repair cost is O(entries in the changed arcs), not O(index): each wave
	// must move a strict minority of the index, where a refresh sweep would
	// republish all of it.
	if res.IndexPostings == 0 {
		t.Fatal("no index postings counted in the placement arms")
	}
	if res.JoinMoved == 0 {
		t.Error("mass join moved no entries: the join handoff did not run")
	}
	if res.JoinMoved*2 >= res.IndexPostings {
		t.Errorf("mass join moved %d of %d postings, want a strict minority",
			res.JoinMoved, res.IndexPostings)
	}
	if res.LeaveMoved == 0 {
		t.Error("mass leave moved no entries: the leave handoff did not run")
	}
	if res.LeaveMoved*2 >= res.IndexPostings {
		t.Errorf("mass leave moved %d of %d postings, want a strict minority",
			res.LeaveMoved, res.IndexPostings)
	}
	if _, err := RunChurn(cfg, 1.5, 2); err == nil {
		t.Fatal("failFraction > 1 accepted")
	}
}

func TestMeasureAtConsistency(t *testing.T) {
	// MeasureAt's prefix evaluation must agree with Measure at each depth.
	env, err := Setup(tiny())
	if err != nil {
		t.Fatal(err)
	}
	s := env.CentralSearcher()
	multi := MeasureAt(s, env.Test, []int{5, 20})
	single5 := Measure(s, env.Test, 5)
	if multi[5] != single5 {
		t.Fatalf("MeasureAt[5] = %+v, Measure(5) = %+v", multi[5], single5)
	}
}

func TestInsertZipfStreamEdgeCases(t *testing.T) {
	env, err := Setup(tiny())
	if err != nil {
		t.Fatal(err)
	}
	dep, err := env.NewDeployment(core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := dep.InsertZipfQueryStream(nil, 100, 0.5, 1); err != nil {
		t.Fatalf("empty query set: %v", err)
	}
	if err := dep.InsertZipfQueryStream(env.Train, 0, 0.5, 1); err != nil {
		t.Fatalf("zero volume: %v", err)
	}
	if err := dep.InsertZipfQueryStream(env.Train[:3], 50, 0.5, 1); err != nil {
		t.Fatalf("zipf stream: %v", err)
	}
	total := 0
	for _, p := range dep.Net.Peers() {
		total += p.HistoryLen()
	}
	if total == 0 {
		t.Fatal("zipf stream cached nothing")
	}
}

func TestRunExpansion(t *testing.T) {
	res, err := RunExpansion(tiny())
	if err != nil {
		t.Fatalf("RunExpansion: %v", err)
	}
	if len(res.Depths) != 4 || res.Depths[0] != 0 {
		t.Fatalf("depths = %v", res.Depths)
	}
	if res.ExtraMessages[0] != 0 {
		t.Fatalf("baseline extra messages = %v, want 0", res.ExtraMessages[0])
	}
	for i := 1; i < len(res.Depths); i++ {
		if res.ExtraMessages[i] <= 0 {
			t.Errorf("expansion depth %d reported no extra messages", res.Depths[i])
		}
		if res.Metrics[i].Precision <= 0 {
			t.Errorf("expansion depth %d produced zero precision", res.Depths[i])
		}
	}
	if res.Table() == "" {
		t.Fatal("empty table")
	}
}

func TestRunMaintenance(t *testing.T) {
	res, err := RunMaintenance(tiny(), 0.25, 2)
	if err != nil {
		t.Fatalf("RunMaintenance: %v", err)
	}
	// Losing index entries must not improve recall (precision can rise on
	// small corpora — shorter result lists are purer — so recall is the
	// monotone signal for data loss).
	if res.Degraded.Recall > res.Healthy.Recall+1e-9 {
		t.Errorf("degraded recall %v above healthy %v", res.Degraded.Recall, res.Healthy.Recall)
	}
	// Refresh must restore recall to (at least) the healthy level: every
	// entry is re-published to a live peer.
	if res.AfterRefresh.Recall+1e-9 < res.Healthy.Recall {
		t.Errorf("refresh did not restore recall: healthy %v, after refresh %v",
			res.Healthy.Recall, res.AfterRefresh.Recall)
	}
	if res.RefreshMoved == 0 {
		t.Error("refresh moved no postings despite 25% failures")
	}
	if res.RefreshMsgs == 0 {
		t.Error("refresh reported zero message cost")
	}
	if _, err := RunMaintenance(tiny(), -0.1, 2); err == nil {
		t.Error("negative failFraction accepted")
	}
}

func TestGini(t *testing.T) {
	if g := gini([]float64{5, 5, 5, 5}); g > 1e-9 {
		t.Fatalf("uniform gini = %v, want 0", g)
	}
	// All mass on one peer of n → gini = (n-1)/n.
	if g := gini([]float64{0, 0, 0, 12}); math.Abs(g-0.75) > 1e-9 {
		t.Fatalf("concentrated gini = %v, want 0.75", g)
	}
	if g := gini(nil); g != 0 {
		t.Fatalf("empty gini = %v", g)
	}
	if g := gini([]float64{0, 0}); g != 0 {
		t.Fatalf("zero-mass gini = %v", g)
	}
	// More skew → larger gini.
	if gini([]float64{1, 1, 1, 9}) <= gini([]float64{2, 2, 3, 5}) {
		t.Fatal("gini not monotone in skew")
	}
}

func TestRunLoadBalance(t *testing.T) {
	res, err := RunLoadBalance(tiny())
	if err != nil {
		t.Fatalf("RunLoadBalance: %v", err)
	}
	if res.PostingsMax <= 0 || res.PostingsMean <= 0 {
		t.Fatalf("degenerate storage stats: %+v", res)
	}
	if res.PostingsGini < 0 || res.PostingsGini > 1 {
		t.Fatalf("gini out of range: %v", res.PostingsGini)
	}
	if res.TrafficMax <= 0 {
		t.Fatal("no query traffic recorded")
	}
	// The advisory must not make the worst-loaded peer worse.
	if res.WithAdvisory.PostingsMax > res.PostingsMax {
		t.Errorf("advisory increased max load: %d -> %d",
			res.PostingsMax, res.WithAdvisory.PostingsMax)
	}
	if res.Table() == "" {
		t.Fatal("empty table")
	}
}

func TestSetupWithExternalCollection(t *testing.T) {
	// Build a collection, serialize it, reload it, and run Setup against it
	// with SkipQueryGen — the cmd/corpusgen → spritebench -collection path.
	col, err := corpus.Synthesize(corpus.SynthConfig{
		NumDocs: 150, NumTopics: 3, NumQueries: 9, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := corpus.WriteCollection(&buf, col, corpus.SynthConfig{}, false); err != nil {
		t.Fatal(err)
	}
	loaded, err := corpus.ReadCollection(&buf)
	if err != nil {
		t.Fatal(err)
	}

	cfg := tiny()
	cfg.Collection = loaded
	cfg.SkipQueryGen = true
	env, err := Setup(cfg)
	if err != nil {
		t.Fatalf("Setup with external collection: %v", err)
	}
	if env.Col != loaded {
		t.Fatal("Setup synthesized instead of using the provided collection")
	}
	if len(env.Gen.Queries) != len(loaded.Queries) {
		t.Fatalf("SkipQueryGen ignored: %d queries vs %d", len(env.Gen.Queries), len(loaded.Queries))
	}
	for _, q := range env.Gen.Queries {
		if env.Gen.Origin[q.ID] != q.ID {
			t.Fatalf("external query %s has synthetic origin %s", q.ID, env.Gen.Origin[q.ID])
		}
	}
	// And the whole experiment must run on it.
	dep, err := env.NewDeployment(cfg.Core)
	if err != nil {
		t.Fatal(err)
	}
	if err := dep.InsertQueries(env.Train); err != nil {
		t.Fatal(err)
	}
	if err := dep.ShareAll(); err != nil {
		t.Fatal(err)
	}
	m := Measure(dep.SpriteSearcher(), env.Test, 10)
	if m.Precision <= 0 {
		t.Fatalf("no retrieval quality on external collection: %+v", m)
	}
}

func TestCSVRendering(t *testing.T) {
	// Light-weight structural checks: every CSV has its header and one line
	// per data row, with the right column count.
	checkCSV := func(name, csv string, wantRows, wantCols int) {
		t.Helper()
		lines := strings.Split(strings.TrimSpace(csv), "\n")
		if len(lines) != wantRows+1 {
			t.Fatalf("%s: %d lines, want %d", name, len(lines), wantRows+1)
		}
		for i, line := range lines {
			if got := len(strings.Split(line, ",")); got != wantCols {
				t.Fatalf("%s line %d: %d columns, want %d: %q", name, i, got, wantCols, line)
			}
		}
	}

	a := &Fig4aResult{Ks: []int{5, 10}, Sprite: make([]ir.Metrics, 2), ESearch: make([]ir.Metrics, 2)}
	checkCSV("fig4a", a.CSV(), 2, 5)

	b := &Fig4bResult{Variant: WithZipf, Terms: []int{5, 10, 15},
		Sprite: make([]ir.Metrics, 3), ESearch: make([]ir.Metrics, 3)}
	checkCSV("fig4b", b.CSV(), 3, 6)

	c := &Fig4cResult{Iterations: []int{1, 2}, SwitchAt: 2,
		Sprite: make([]ir.Metrics, 2), ESearch: make([]ir.Metrics, 2)}
	checkCSV("fig4c", c.CSV(), 2, 6)
	if !strings.Contains(c.CSV(), "2,1,") {
		t.Fatal("fig4c switch iteration not marked")
	}

	h := &ChordHopsResult{Sizes: []int{16}, AvgHops: []float64{1.5}, MaxHops: []int{3}, Log2N: []float64{4}}
	checkCSV("chord", h.CSV(), 1, 4)

	cost := &InsertCostResult{}
	checkCSV("cost", cost.CSV(), 2, 3)

	abl := &AblationResult{Variants: []core.ScoreVariant{core.ScoreQScoreLogQF}, Metrics: make([]ir.Metrics, 1)}
	checkCSV("ablation", abl.CSV(), 1, 3)

	ch := &ChurnResult{Replicas: 2}
	checkCSV("churn", ch.CSV(), 8, 9)
	if !strings.Contains(ch.CSV(), "retries,failovers,hedges,partials,moved,repair_msgs") {
		t.Fatal("churn CSV missing resilience counter or repair cost columns")
	}

	m := &MaintenanceResult{Replicas: 2}
	checkCSV("maintenance", m.CSV(), 4, 3)

	e := &ExpansionResult{Depths: []int{0, 2}, Metrics: make([]ir.Metrics, 2), ExtraMessages: []float64{0, 30}}
	checkCSV("expansion", e.CSV(), 2, 4)

	l := &LoadResult{}
	checkCSV("load", l.CSV(), 3, 4)
}

func TestMeanStd(t *testing.T) {
	m, sd := meanStd([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if math.Abs(m-5) > 1e-12 || math.Abs(sd-2) > 1e-12 {
		t.Fatalf("meanStd = %v, %v; want 5, 2", m, sd)
	}
	m, sd = meanStd([]float64{3})
	if m != 3 || sd != 0 {
		t.Fatalf("single sample: %v, %v", m, sd)
	}
	if m, sd := meanStd(nil); m != 0 || sd != 0 {
		t.Fatalf("empty: %v, %v", m, sd)
	}
}

func TestRunFig4aReplicated(t *testing.T) {
	cfg := tiny()
	agg, err := RunFig4aReplicated(cfg, 3)
	if err != nil {
		t.Fatalf("RunFig4aReplicated: %v", err)
	}
	if agg.Seeds != 3 || len(agg.Ks) != 6 {
		t.Fatalf("shape: %+v", agg)
	}
	// Means must be plausible ratios; stds must be non-negative and small
	// relative to the means (the replications share the generator family).
	for i := range agg.Ks {
		if agg.SpriteMean[i] <= 0 || agg.SpriteMean[i] > 1.2 {
			t.Fatalf("sprite mean out of range at K=%d: %v", agg.Ks[i], agg.SpriteMean[i])
		}
		if agg.SpriteStd[i] < 0 || agg.SpriteStd[i] > 0.5 {
			t.Fatalf("sprite std implausible at K=%d: %v", agg.Ks[i], agg.SpriteStd[i])
		}
	}
	// Seeds must actually differ: at least one K should show nonzero spread.
	spread := 0.0
	for _, sd := range agg.SpriteStd {
		spread += sd
	}
	if spread == 0 {
		t.Fatal("replications produced identical results — seeds not varied")
	}
	if agg.Table() == "" || agg.CSV() == "" {
		t.Fatal("empty rendering")
	}
	if _, err := RunFig4aReplicated(cfg, 0); err == nil {
		t.Fatal("zero seeds accepted")
	}
}

func TestRunLearnCost(t *testing.T) {
	res, err := RunLearnCost(tiny())
	if err != nil {
		t.Fatalf("RunLearnCost: %v", err)
	}
	if len(res.Iterations) != 5 {
		t.Fatalf("iterations = %v", res.Iterations)
	}
	for i := range res.Iterations {
		if res.MsgsPerDoc[i] <= 0 {
			t.Fatalf("iteration %d reported no traffic", res.Iterations[i])
		}
	}
	// Index grows monotonically toward the cap.
	for i := 1; i < len(res.TermsPerDoc); i++ {
		if res.TermsPerDoc[i]+1e-9 < res.TermsPerDoc[i-1] {
			t.Fatalf("terms/doc shrank: %v", res.TermsPerDoc)
		}
	}
	// Full-term maintenance must dwarf SPRITE's worst iteration.
	worst := 0.0
	for _, m := range res.MsgsPerDoc {
		if m > worst {
			worst = m
		}
	}
	if res.FullMsgsPerDoc < 2*worst {
		t.Fatalf("full maintenance (%.1f) not clearly above SPRITE (%.1f)",
			res.FullMsgsPerDoc, worst)
	}
	if res.Table() == "" || res.CSV() == "" {
		t.Fatal("empty rendering")
	}
}

func TestRunCacheRepeat(t *testing.T) {
	res, err := RunCacheRepeat(tiny(), 120, 0.5)
	if err != nil {
		t.Fatalf("RunCacheRepeat: %v", err)
	}
	if res.OffMessages == 0 || res.OffBytes == 0 {
		t.Fatalf("cache-off replay produced no traffic: %+v", res)
	}
	if res.OnMessages >= res.OffMessages {
		t.Fatalf("caching did not reduce messages: on %d >= off %d", res.OnMessages, res.OffMessages)
	}
	if res.OnBytes >= res.OffBytes {
		t.Fatalf("caching did not reduce bytes: on %d >= off %d", res.OnBytes, res.OffBytes)
	}
	if res.OnPostingsFetches >= res.OffPostingsFetches {
		t.Fatalf("postings fetches not reduced: on %d >= off %d", res.OnPostingsFetches, res.OffPostingsFetches)
	}
	if res.PostingsHitRate <= 0 {
		t.Fatalf("postings hit rate = %v, want > 0", res.PostingsHitRate)
	}
	// The no-stale guarantee: caching must not change retrieval quality.
	if res.OffQuality != res.OnQuality {
		t.Fatalf("quality moved with caching: off %+v, on %+v", res.OffQuality, res.OnQuality)
	}
	if !strings.Contains(res.Table(), "cache on") {
		t.Fatal("Table missing expected column")
	}
	if !strings.Contains(res.CSV(), "msg_reduction") {
		t.Fatal("CSV missing header")
	}
}

func TestZipfRanksMatchesInsertStream(t *testing.T) {
	// The extracted sampler must preserve the historical draw sequence:
	// same seed, same ranks, every time.
	a := zipfRanks(50, 200, 0.5, 42)
	b := zipfRanks(50, 200, 0.5, 42)
	if len(a) != 200 {
		t.Fatalf("want 200 samples, got %d", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("sampler not deterministic at %d: %d vs %d", i, a[i], b[i])
		}
	}
	// Lower ranks must dominate under a positive slope.
	low, high := 0, 0
	for _, r := range a {
		if r < 25 {
			low++
		} else {
			high++
		}
	}
	if low <= high {
		t.Fatalf("Zipf skew missing: %d low vs %d high", low, high)
	}
}
