package eval

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// LoadResult quantifies the §7(b) load-imbalance concern: how unevenly
// storage (postings per indexing peer) and traffic (RPCs per peer) spread
// across the network, and how much the hot-term advisory flattens it.
type LoadResult struct {
	Peers int

	// Storage distribution: postings held per indexing peer.
	PostingsMax  int
	PostingsMean float64
	PostingsGini float64

	// Traffic distribution: messages received per peer during the query
	// phase (training inserts + learning polls excluded; this is steady
	// state).
	TrafficMax  int64
	TrafficMean float64
	TrafficGini float64

	// WithAdvisory repeats the storage measurement with the hot-term
	// advisory enabled (threshold = 2× mean indexed df).
	WithAdvisory struct {
		PostingsMax  int
		PostingsGini float64
		HotThreshold int
	}
}

// RunLoadBalance trains and learns a deployment, runs the testing queries,
// and reports how storage and query traffic distribute across peers —
// then repeats with the hot-term advisory active to measure its flattening
// effect on the storage skew.
func RunLoadBalance(cfg Config) (*LoadResult, error) {
	cfg = cfg.fillDefaults()
	env, err := Setup(cfg)
	if err != nil {
		return nil, err
	}

	build := func(hotDF int) (*Deployment, error) {
		coreCfg := cfg.Core
		coreCfg.HotTermDF = hotDF
		dep, err := env.NewDeployment(coreCfg)
		if err != nil {
			return nil, err
		}
		if err := dep.InsertQueries(env.Train); err != nil {
			return nil, err
		}
		if err := dep.ShareAll(); err != nil {
			return nil, err
		}
		if err := dep.Learn(cfg.LearningIterations); err != nil {
			return nil, err
		}
		return dep, nil
	}

	dep, err := build(0)
	if err != nil {
		return nil, err
	}
	res := &LoadResult{Peers: cfg.Peers}

	// Storage distribution.
	var postings []float64
	meanDF := 0
	for _, p := range dep.Net.Peers() {
		n := p.Index().NumPostings()
		postings = append(postings, float64(n))
		if n > res.PostingsMax {
			res.PostingsMax = n
		}
		meanDF += n
	}
	res.PostingsMean = mean(postings)
	res.PostingsGini = gini(postings)

	// Traffic distribution during the query phase only.
	dep.Sim.ResetStats()
	Measure(dep.SpriteSearcher(), env.Test, cfg.TopK)
	byDest := dep.Sim.Stats().CallsByDest
	var traffic []float64
	for _, p := range dep.Net.Peers() {
		c := byDest[p.Addr()]
		traffic = append(traffic, float64(c))
		if c > res.TrafficMax {
			res.TrafficMax = c
		}
	}
	res.TrafficMean = mean(traffic)
	res.TrafficGini = gini(traffic)

	// Repeat storage with the advisory: threshold 2× the mean per-term df.
	totalPostings, totalTerms := 0, 0
	for _, p := range dep.Net.Peers() {
		totalPostings += p.Index().NumPostings()
		totalTerms += p.Index().NumTerms()
	}
	threshold := 2
	if totalTerms > 0 {
		threshold = int(math.Ceil(2 * float64(totalPostings) / float64(totalTerms)))
		if threshold < 2 {
			threshold = 2
		}
	}
	res.WithAdvisory.HotThreshold = threshold

	adv, err := build(threshold)
	if err != nil {
		return nil, err
	}
	var advPostings []float64
	for _, p := range adv.Net.Peers() {
		n := p.Index().NumPostings()
		advPostings = append(advPostings, float64(n))
		if n > res.WithAdvisory.PostingsMax {
			res.WithAdvisory.PostingsMax = n
		}
	}
	res.WithAdvisory.PostingsGini = gini(advPostings)
	return res, nil
}

func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// gini computes the Gini coefficient of a non-negative distribution
// (0 = perfectly even, →1 = concentrated on one peer).
func gini(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	var cum, total float64
	for _, x := range sorted {
		total += x
	}
	if total == 0 {
		return 0
	}
	var lorenz float64
	for _, x := range sorted {
		cum += x
		lorenz += cum
	}
	n := float64(len(sorted))
	// Gini = 1 - 2·(area under Lorenz curve); discrete form below.
	return (n + 1 - 2*lorenz/total) / n
}

// Table renders the result.
func (r *LoadResult) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Load distribution across %d peers (§7 imbalance concern)\n", r.Peers)
	fmt.Fprintf(&b, "%-28s %-10s %-10s %-8s\n", "", "max", "mean", "gini")
	fmt.Fprintf(&b, "%-28s %-10d %-10.1f %-8.3f\n", "postings per peer", r.PostingsMax, r.PostingsMean, r.PostingsGini)
	fmt.Fprintf(&b, "%-28s %-10d %-10.1f %-8.3f\n", "query RPCs per peer", r.TrafficMax, r.TrafficMean, r.TrafficGini)
	fmt.Fprintf(&b, "%-28s %-10d %-10s %-8.3f  (hot-term df >= %d)\n",
		"postings w/ advisory", r.WithAdvisory.PostingsMax, "-", r.WithAdvisory.PostingsGini, r.WithAdvisory.HotThreshold)
	return b.String()
}
