package eval

import (
	"strings"
	"testing"
	"time"
)

// TestRunParallelInvariants checks the sweep's determinism contract at the
// harness level: retrieval quality and transport accounting must be
// bit-identical across fan-out limits. Latency ordering is deliberately NOT
// asserted — wall-clock comparisons are scheduler-dependent and belong in the
// committed benchmark, not a unit test.
func TestRunParallelInvariants(t *testing.T) {
	res, err := RunParallel(tiny(), []int{1, 4}, 200*time.Microsecond)
	if err != nil {
		t.Fatalf("RunParallel: %v", err)
	}
	if len(res.Arms) != 2 {
		t.Fatalf("arm count = %d, want 2", len(res.Arms))
	}
	seq, par := res.Arms[0], res.Arms[1]
	if seq.Parallelism != 1 || par.Parallelism != 4 {
		t.Fatalf("arm order wrong: %d, %d", seq.Parallelism, par.Parallelism)
	}
	if seq.Quality != par.Quality {
		t.Errorf("quality moved with parallelism: seq %+v par %+v", seq.Quality, par.Quality)
	}
	if seq.Messages != par.Messages || seq.Bytes != par.Bytes {
		t.Errorf("traffic moved with parallelism: seq %d/%d par %d/%d",
			seq.Messages, seq.Bytes, par.Messages, par.Bytes)
	}
	for _, a := range res.Arms {
		if a.MeanUS <= 0 || a.P50US <= 0 || a.P95US < a.P50US || a.P99US < a.P95US {
			t.Errorf("arm %d: degenerate latency stats %+v", a.Parallelism, a)
		}
	}
	if par.Speedup <= 0 {
		t.Errorf("speedup not computed: %+v", par)
	}
	csv := res.CSV()
	if !strings.HasPrefix(csv, "parallelism,link_delay_us,queries,") {
		t.Errorf("CSV header missing: %q", csv)
	}
	if got := strings.Count(csv, "\n"); got != 3 {
		t.Errorf("CSV rows = %d lines, want 3", got)
	}
	if res.Table() == "" {
		t.Error("empty table")
	}
}
