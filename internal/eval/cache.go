package eval

import (
	"fmt"
	"strings"
	"time"

	"github.com/spritedht/sprite/internal/core"
	"github.com/spritedht/sprite/internal/ir"
)

// CacheRepeatResult measures the query-path caches under the paper's own
// workload premise — a skewed, repetitive query stream (§6.3's w-zipf).
// Two identically trained deployments replay the same Zipfian stream of
// test queries, one with the caches off and one with them on, and the
// simulated transport accounts every message and byte. Quality is measured
// on both deployments afterwards: caching must not move precision or recall
// at all (the no-stale guarantee).
type CacheRepeatResult struct {
	// Volume is the number of replayed queries; Distinct the size of the
	// underlying query set; Slope the Zipf slope.
	Volume   int
	Distinct int
	Slope    float64

	// Replay-phase traffic, cache off vs on.
	OffMessages int64
	OnMessages  int64
	OffBytes    int64
	OnBytes     int64
	// Remote postings fetches during the replay (the dominant cost the
	// postings cache removes).
	OffPostingsFetches int64
	OnPostingsFetches  int64

	// Cache effectiveness over the replay.
	PostingsHitRate float64
	ResultHitRate   float64
	Coalesced       int64

	// MsgReduction and ByteReduction are 1 − on/off.
	MsgReduction  float64
	ByteReduction float64

	// Retrieval quality on the test set at TopK — must be identical.
	OffQuality ir.Metrics
	OnQuality  ir.Metrics
}

// RunCacheRepeat builds two deployments through the full §6.2 pipeline
// (insert training queries, share, learn), replays a Zipfian stream of
// volume test queries through each, and reports the traffic saved by the
// caches. volume <= 0 defaults to 4× the test set; slope <= 0 defaults to
// the paper's 0.5.
func RunCacheRepeat(cfg Config, volume int, slope float64) (*CacheRepeatResult, error) {
	cfg = cfg.fillDefaults()
	if slope <= 0 {
		slope = 0.5
	}
	env, err := Setup(cfg)
	if err != nil {
		return nil, err
	}
	if volume <= 0 {
		volume = 4 * len(env.Test)
	}

	build := func(cacheCfg core.CacheConfig) (*Deployment, error) {
		coreCfg := cfg.Core
		coreCfg.Cache = cacheCfg
		dep, err := env.NewDeployment(coreCfg)
		if err != nil {
			return nil, err
		}
		if err := dep.InsertQueries(env.Train); err != nil {
			return nil, err
		}
		if err := dep.ShareAll(); err != nil {
			return nil, err
		}
		if err := dep.Learn(cfg.LearningIterations); err != nil {
			return nil, err
		}
		return dep, nil
	}
	off, err := build(core.CacheConfig{})
	if err != nil {
		return nil, fmt.Errorf("eval: cache-off deployment: %w", err)
	}
	// ResultTTL is pinned far past the run so the measurement is a pure
	// function of the workload, not of wall-clock scheduling.
	on, err := build(core.CacheConfig{Enabled: true, ResultTTL: time.Hour})
	if err != nil {
		return nil, fmt.Errorf("eval: cache-on deployment: %w", err)
	}

	ranks := zipfRanks(len(env.Test), volume, slope, cfg.Seed+13)
	replay := func(d *Deployment) (msgs, bytes, fetches int64, err error) {
		d.Sim.ResetStats()
		for _, r := range ranks {
			q := env.Test[r]
			if _, perr := d.Net.Probe(d.nextIssuer(), q.Terms, cfg.TopK); perr != nil {
				return 0, 0, 0, fmt.Errorf("eval: replay %s: %w", q.ID, perr)
			}
		}
		st := d.Sim.Stats()
		return st.Calls, st.Bytes, st.CallsByType["sprite.get_postings"], nil
	}

	res := &CacheRepeatResult{Volume: volume, Distinct: len(env.Test), Slope: slope}
	if res.OffMessages, res.OffBytes, res.OffPostingsFetches, err = replay(off); err != nil {
		return nil, err
	}
	if res.OnMessages, res.OnBytes, res.OnPostingsFetches, err = replay(on); err != nil {
		return nil, err
	}
	pst, rst := on.Net.PostingsCacheStats(), on.Net.ResultCacheStats()
	res.PostingsHitRate = pst.HitRate()
	res.ResultHitRate = rst.HitRate()
	res.Coalesced = pst.Coalesced
	if res.OffMessages > 0 {
		res.MsgReduction = 1 - float64(res.OnMessages)/float64(res.OffMessages)
	}
	if res.OffBytes > 0 {
		res.ByteReduction = 1 - float64(res.OnBytes)/float64(res.OffBytes)
	}

	res.OffQuality = Measure(off.SpriteSearcher(), env.Test, cfg.TopK)
	res.OnQuality = Measure(on.SpriteSearcher(), env.Test, cfg.TopK)
	return res, nil
}

// Table renders the result.
func (r *CacheRepeatResult) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Repeated-query caching (Zipf slope %.2f, %d queries over %d distinct)\n",
		r.Slope, r.Volume, r.Distinct)
	fmt.Fprintf(&b, "%-22s %-14s %-14s %-12s\n", "", "cache off", "cache on", "reduction")
	fmt.Fprintf(&b, "%-22s %-14d %-14d %.1f%%\n", "messages", r.OffMessages, r.OnMessages, 100*r.MsgReduction)
	fmt.Fprintf(&b, "%-22s %-14d %-14d %.1f%%\n", "bytes", r.OffBytes, r.OnBytes, 100*r.ByteReduction)
	fmt.Fprintf(&b, "%-22s %-14d %-14d\n", "postings fetches", r.OffPostingsFetches, r.OnPostingsFetches)
	fmt.Fprintf(&b, "postings hit rate %.3f, result hit rate %.3f, coalesced %d\n",
		r.PostingsHitRate, r.ResultHitRate, r.Coalesced)
	fmt.Fprintf(&b, "quality at top-k: off P=%.4f R=%.4f | on P=%.4f R=%.4f\n",
		r.OffQuality.Precision, r.OffQuality.Recall, r.OnQuality.Precision, r.OnQuality.Recall)
	return b.String()
}

// CSV renders the result as a single data row.
func (r *CacheRepeatResult) CSV() string {
	row := []string{
		fmt.Sprint(r.Volume), fmt.Sprint(r.Distinct), fmt.Sprintf("%.2f", r.Slope),
		fmt.Sprint(r.OffMessages), fmt.Sprint(r.OnMessages), f4(r.MsgReduction),
		fmt.Sprint(r.OffBytes), fmt.Sprint(r.OnBytes), f4(r.ByteReduction),
		fmt.Sprint(r.OffPostingsFetches), fmt.Sprint(r.OnPostingsFetches),
		f4(r.PostingsHitRate), f4(r.ResultHitRate), fmt.Sprint(r.Coalesced),
		f4(r.OffQuality.Precision), f4(r.OnQuality.Precision),
		f4(r.OffQuality.Recall), f4(r.OnQuality.Recall),
	}
	return csvRows(
		"volume,distinct,slope,off_msgs,on_msgs,msg_reduction,off_bytes,on_bytes,byte_reduction,"+
			"off_postings_fetches,on_postings_fetches,postings_hit_rate,result_hit_rate,coalesced,"+
			"off_precision,on_precision,off_recall,on_recall",
		[][]string{row})
}
