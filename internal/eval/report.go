package eval

import (
	"fmt"
	"strconv"
	"strings"

	"github.com/spritedht/sprite/internal/ir"
)

// This file renders every experiment result as CSV, for plotting pipelines.
// Each CSV carries a header row; ratios are emitted with 4 decimals.

func csvRows(header string, rows [][]string) string {
	var b strings.Builder
	b.WriteString(header)
	b.WriteByte('\n')
	for _, row := range rows {
		b.WriteString(strings.Join(row, ","))
		b.WriteByte('\n')
	}
	return b.String()
}

func f4(v float64) string { return fmt.Sprintf("%.4f", v) }

// CSV renders Figure 4(a) as rows of K and the four ratios.
func (r *Fig4aResult) CSV() string {
	rows := make([][]string, 0, len(r.Ks))
	for i, k := range r.Ks {
		rows = append(rows, []string{
			fmt.Sprint(k),
			f4(r.Sprite[i].Precision), f4(r.ESearch[i].Precision),
			f4(r.Sprite[i].Recall), f4(r.ESearch[i].Recall),
		})
	}
	return csvRows("k,sprite_precision,esearch_precision,sprite_recall,esearch_recall", rows)
}

// CSV renders Figure 4(b) rows with the workload variant as a column.
func (r *Fig4bResult) CSV() string {
	rows := make([][]string, 0, len(r.Terms))
	for i, terms := range r.Terms {
		rows = append(rows, []string{
			string(r.Variant), fmt.Sprint(terms),
			f4(r.Sprite[i].Precision), f4(r.ESearch[i].Precision),
			f4(r.Sprite[i].Recall), f4(r.ESearch[i].Recall),
		})
	}
	return csvRows("variant,terms,sprite_precision,esearch_precision,sprite_recall,esearch_recall", rows)
}

// CSV renders Figure 4(c) rows; the switch iteration is marked.
func (r *Fig4cResult) CSV() string {
	rows := make([][]string, 0, len(r.Iterations))
	for i, iter := range r.Iterations {
		change := "0"
		if iter == r.SwitchAt {
			change = "1"
		}
		rows = append(rows, []string{
			fmt.Sprint(iter), change,
			f4(r.Sprite[i].Precision), f4(r.ESearch[i].Precision),
			f4(r.Sprite[i].Recall), f4(r.ESearch[i].Recall),
		})
	}
	return csvRows("iteration,pattern_change,sprite_precision,esearch_precision,sprite_recall,esearch_recall", rows)
}

// CSV renders the hop-count experiment.
func (r *ChordHopsResult) CSV() string {
	rows := make([][]string, 0, len(r.Sizes))
	for i := range r.Sizes {
		rows = append(rows, []string{
			fmt.Sprint(r.Sizes[i]), f4(r.AvgHops[i]),
			fmt.Sprint(r.MaxHops[i]), f4(r.Log2N[i]),
		})
	}
	return csvRows("n,avg_hops,max_hops,log2_n", rows)
}

// CSV renders the insert-cost experiment.
func (r *InsertCostResult) CSV() string {
	return csvRows("scheme,messages,postings", [][]string{
		{"selective", fmt.Sprint(r.SelectiveMsgs), fmt.Sprint(r.SelectivePostings)},
		{"full", fmt.Sprint(r.FullMsgs), fmt.Sprint(r.FullPostings)},
	})
}

// CSV renders the score ablation.
func (r *AblationResult) CSV() string {
	rows := make([][]string, 0, len(r.Variants))
	for i, v := range r.Variants {
		rows = append(rows, []string{v.String(), f4(r.Metrics[i].Precision), f4(r.Metrics[i].Recall)})
	}
	return csvRows("variant,precision,recall", rows)
}

// CSV renders the churn experiment, including the per-arm resilience
// counters (sprite.resilience.*) and the repair-cost columns of the
// mass-join/mass-leave arms, so they surface in spritebench -json. The moved
// column counts primary entries that changed holder during the wave against
// total_postings, the whole index an owner refresh sweep would republish.
func (r *ChurnResult) CSV() string {
	row := func(state string, m ir.Metrics, c ResilienceCounters, moved, msgs int64) []string {
		return []string{state, f4(m.Precision), f4(m.Recall),
			strconv.FormatInt(c.Retries, 10), strconv.FormatInt(c.Failovers, 10),
			strconv.FormatInt(c.Hedges, 10), strconv.FormatInt(c.Partials, 10),
			strconv.FormatInt(moved, 10), strconv.FormatInt(msgs, 10)}
	}
	return csvRows("state,precision,recall,retries,failovers,hedges,partials,moved,repair_msgs", [][]string{
		row("healthy", r.Baseline, ResilienceCounters{}, 0, 0),
		row("dead_no_replication", r.NoReplication, ResilienceCounters{}, 0, 0),
		row(fmt.Sprintf("dead_%d_replicas", r.Replicas), r.Replicated, ResilienceCounters{}, 0, 0),
		row("transient_failover_off", r.FailoverOff, r.Off, 0, 0),
		row("transient_failover_on", r.FailoverOn, r.On, 0, 0),
		row(fmt.Sprintf("mass_join_%d_repair", r.JoinedPeers), r.AfterMassJoin,
			ResilienceCounters{}, int64(r.JoinMoved), r.JoinRepairMsgs),
		row(fmt.Sprintf("mass_leave_%d_repair", r.JoinedPeers), r.AfterMassLeave,
			ResilienceCounters{}, int64(r.LeaveMoved), r.LeaveRepairMsgs),
		row("index_total", ir.Metrics{}, ResilienceCounters{}, int64(r.IndexPostings), 0),
	})
}

// CSV renders the maintenance experiment.
func (r *MaintenanceResult) CSV() string {
	return csvRows("state,precision,recall", [][]string{
		{"healthy", f4(r.Healthy.Precision), f4(r.Healthy.Recall)},
		{"degraded", f4(r.Degraded.Precision), f4(r.Degraded.Recall)},
		{"after_refresh", f4(r.AfterRefresh.Precision), f4(r.AfterRefresh.Recall)},
		{fmt.Sprintf("replicated_%d", r.Replicas), f4(r.Replicated.Precision), f4(r.Replicated.Recall)},
	})
}

// CSV renders the expansion experiment.
func (r *ExpansionResult) CSV() string {
	rows := make([][]string, 0, len(r.Depths))
	for i, d := range r.Depths {
		rows = append(rows, []string{
			fmt.Sprint(d), f4(r.Metrics[i].Precision), f4(r.Metrics[i].Recall),
			fmt.Sprintf("%.1f", r.ExtraMessages[i]),
		})
	}
	return csvRows("expansion_terms,precision,recall,extra_msgs_per_query", rows)
}

// CSV renders the load-distribution experiment.
func (r *LoadResult) CSV() string {
	return csvRows("metric,max,mean,gini", [][]string{
		{"postings", fmt.Sprint(r.PostingsMax), fmt.Sprintf("%.1f", r.PostingsMean), f4(r.PostingsGini)},
		{"query_rpcs", fmt.Sprint(r.TrafficMax), fmt.Sprintf("%.1f", r.TrafficMean), f4(r.TrafficGini)},
		{"postings_with_advisory", fmt.Sprint(r.WithAdvisory.PostingsMax), "", f4(r.WithAdvisory.PostingsGini)},
	})
}
