package eval

import (
	"fmt"
	"hash/fnv"
	"math"
	"runtime"
	"runtime/debug"
	"strings"
	"time"

	"github.com/spritedht/sprite/internal/corpus"
	"github.com/spritedht/sprite/internal/index"
	"github.com/spritedht/sprite/internal/ir"
)

// The postings storage benchmark: the block-compressed index (index.Inverted)
// against the uncompressed reference (index.Plain) on identical synthetic
// workloads, across corpus sizes up to a million documents. Three questions,
// one per column group:
//
//   - Space: bytes per stored posting, in memory and on the wire. The plain
//     representation pays Go's struct-and-string overhead (~65 B/posting);
//     blocks pay front-coded doc IDs, an owner dictionary, and packed
//     tf/doclen varints.
//   - Share throughput: documents indexed per second through each store's Add
//     path (both stores take the identical pre-built posting sequence, so the
//     loop measures storage cost alone).
//   - Query latency: exact p50/p95/p99 over a topical Zipf query stream
//     scored the way SPRITE's peers score. The ranked lists of the two arms
//     are hashed and compared — compression must be invisible to retrieval,
//     bit for bit.
//
// Corpora are drawn from corpus.DocStream, so the 1M-doc tier never holds
// the collection in memory; the plain index itself is only built up to
// PlainMaxDocs (its footprint at larger tiers is computed analytically from
// the same postings, which is exact — MemSize is a per-posting function).

// PostingsArm is one store's measurements at one corpus size.
type PostingsArm struct {
	// Built reports whether this arm was actually constructed and measured;
	// when false (plain above PlainMaxDocs) only the footprint columns are
	// populated, computed from the identical posting sequence.
	Built bool
	// BuildMS is the wall time of the timed Add loop; DocsPerSec the share
	// throughput derived from it.
	BuildMS    int64
	DocsPerSec float64
	// MemBytes is the store's resident posting footprint: encoded block bytes
	// for the compressed arm, Σ MemSize for plain. BytesPerPosting divides by
	// the posting count.
	MemBytes        int64
	BytesPerPosting float64
	// WireBytes is what shipping every list once would cost: encoded blocks
	// as-is for compressed, per-posting varint frames for plain.
	WireBytes int64
	// Query latency order statistics (nanoseconds, wall clock).
	MeanNS        float64
	P50NS         int64
	P95NS         int64
	P99NS         int64
	// RankHash fingerprints every query's ranked list (doc IDs and exact
	// score bits, in rank order).
	RankHash string
}

// PostingsTier is one corpus size of the sweep.
type PostingsTier struct {
	Docs     int
	Topics   int
	Terms    int
	Postings int
	Blocks   int
	Comp     PostingsArm
	Plain    PostingsArm
	// Ratio is plain bytes/posting over compressed bytes/posting — the
	// compression headline.
	Ratio float64
	// RankingsMatch reports that both arms produced identical rank hashes
	// over the full query stream (only meaningful when Plain.Built).
	RankingsMatch bool
	WallMS        int64
}

// PostingsResult is the storage sweep across corpus sizes.
type PostingsResult struct {
	Tiers        []PostingsTier
	TermsPerDoc  int
	Queries      int
	QueryLen     int
	TopK         int
	PlainMaxDocs int
	Seed         int64
}

// postingsOp is one pre-built Add call, identical for both arms.
type postingsOp struct {
	term string
	p    index.Posting
}

// RunPostings runs the sweep. Defaults: tiers {10k, 100k, 1M}, 2000 queries
// of 4 terms per tier, top-8 index terms per document, plain arm built up to
// 100k docs. Topic count scales with the corpus (≈12 per 10k docs) so
// vocabulary growth tracks corpus growth the way real collections behave.
func RunPostings(tiers []int, queries int, plainMax int, seed int64) (*PostingsResult, error) {
	if len(tiers) == 0 {
		tiers = []int{10000, 100000, 1000000}
	}
	if queries <= 0 {
		queries = 2000
	}
	if plainMax <= 0 {
		plainMax = 100000
	}
	res := &PostingsResult{
		TermsPerDoc:  8,
		Queries:      queries,
		QueryLen:     4,
		TopK:         10,
		PlainMaxDocs: plainMax,
		Seed:         seed,
	}
	// The sweep's heap is the index under test; keep the collector from
	// cycling over it mid-measurement (same trade RunScale makes).
	oldGC := debug.SetGCPercent(300)
	defer debug.SetGCPercent(oldGC)
	for _, docs := range tiers {
		tier, err := runPostingsTier(docs, res)
		if err != nil {
			return nil, fmt.Errorf("eval: postings tier %d docs: %w", docs, err)
		}
		res.Tiers = append(res.Tiers, tier)
		runtime.GC()
	}
	return res, nil
}

func runPostingsTier(docs int, res *PostingsResult) (PostingsTier, error) {
	wallStart := time.Now()
	topics := 12 * (docs / 10000)
	if topics < 12 {
		topics = 12
	}
	cfg := corpus.SynthConfig{NumDocs: docs, NumTopics: topics, Seed: res.Seed}
	ds, err := corpus.NewDocStream(cfg)
	if err != nil {
		return PostingsTier{}, err
	}

	// Synthetic owner peers: the posting payload a real share would carry.
	owners := make([]string, 64)
	for i := range owners {
		owners[i] = fmt.Sprintf("peer%02d", i)
	}

	comp := index.NewInverted()
	plain := index.NewPlain()
	buildPlain := docs <= res.PlainMaxDocs
	tier := PostingsTier{Docs: docs, Topics: topics}

	// Build in batches: generate a batch untimed, then run each arm's timed
	// Add loop over the identical ops, so docs/s measures the store and not
	// the generator. The analytic plain footprint accumulates here too.
	const batch = 10000
	ops := make([]postingsOp, 0, batch*res.TermsPerDoc)
	var compNS, plainNS int64
	var plainMem, plainWire int64
	docCount := 0
	for {
		ops = ops[:0]
		for len(ops) < batch*res.TermsPerDoc {
			doc, _, ok := ds.Next()
			if !ok {
				break
			}
			owner := owners[docCount%len(owners)]
			for _, term := range doc.TopTerms(res.TermsPerDoc) {
				p := index.Posting{Doc: doc.ID, Owner: owner, Freq: doc.TF[term], DocLen: doc.Length}
				ops = append(ops, postingsOp{term: term, p: p})
				plainMem += int64(p.MemSize())
				plainWire += int64(p.WireSize())
			}
			docCount++
		}
		if len(ops) == 0 {
			break
		}
		start := time.Now()
		for _, op := range ops {
			comp.Add(op.term, op.p)
		}
		compNS += time.Since(start).Nanoseconds()
		if buildPlain {
			start = time.Now()
			for _, op := range ops {
				plain.Add(op.term, op.p)
			}
			plainNS += time.Since(start).Nanoseconds()
		}
	}

	st := comp.Stats()
	tier.Terms = st.Terms
	tier.Postings = st.Postings
	tier.Blocks = st.Blocks
	tier.Comp = PostingsArm{
		Built:           true,
		BuildMS:         compNS / 1e6,
		DocsPerSec:      float64(docCount) / (float64(compNS) / 1e9),
		MemBytes:        int64(st.EncodedBytes),
		BytesPerPosting: st.BytesPerPosting(),
		WireBytes:       int64(st.EncodedBytes),
	}
	tier.Plain = PostingsArm{
		Built:           buildPlain,
		MemBytes:        plainMem,
		BytesPerPosting: float64(plainMem) / float64(max(1, tier.Postings)),
		WireBytes:       plainWire,
	}
	if buildPlain {
		tier.Plain.BuildMS = plainNS / 1e6
		tier.Plain.DocsPerSec = float64(docCount) / (float64(plainNS) / 1e9)
	}
	if tier.Comp.BytesPerPosting > 0 {
		tier.Ratio = tier.Plain.BytesPerPosting / tier.Comp.BytesPerPosting
	}

	// The query stream: identical topical Zipf queries for both arms.
	qs := make([][]string, res.Queries)
	for i := range qs {
		qs[i] = ds.SampleQuery(res.QueryLen)
	}
	runtime.GC() // measure queries on a settled heap
	meas := func(st index.Store, compressed bool) (latencySummary, string) {
		h := fnv.New64a()
		samples := make([]int64, 0, len(qs))
		var buf [8]byte
		for _, q := range qs {
			start := time.Now()
			rl := postingsQuery(st, compressed, q, docs, res.TopK)
			samples = append(samples, time.Since(start).Nanoseconds())
			for _, hit := range rl {
				h.Write([]byte(hit.Doc))
				bits := math.Float64bits(hit.Score)
				for i := 0; i < 8; i++ {
					buf[i] = byte(bits >> (8 * i))
				}
				h.Write(buf[:])
			}
		}
		return summarize(samples), fmt.Sprintf("%016x", h.Sum64())
	}
	lat, hash := meas(comp, true)
	tier.Comp.MeanNS, tier.Comp.P50NS, tier.Comp.P95NS, tier.Comp.P99NS = lat.Mean, lat.P50, lat.P95, lat.P99
	tier.Comp.RankHash = hash
	if buildPlain {
		lat, hash = meas(plain, false)
		tier.Plain.MeanNS, tier.Plain.P50NS, tier.Plain.P95NS, tier.Plain.P99NS = lat.Mean, lat.P50, lat.P95, lat.P99
		tier.Plain.RankHash = hash
		tier.RankingsMatch = tier.Plain.RankHash == tier.Comp.RankHash
	}
	tier.WallMS = time.Since(wallStart).Milliseconds()
	return tier, nil
}

// postingsQuery scores one query against a store exactly the way SPRITE's
// querying peers do (§4): TF·IDF weights with the store's document frequency
// as n'_k, terms folded in first-occurrence order, Lee et al. similarity.
// The compressed arm streams straight off the block cursor; the plain arm
// walks its slice — each store's natural read path.
func postingsQuery(st index.Store, compressed bool, terms []string, n, k int) ir.RankedList {
	qtf := make(map[string]int, len(terms))
	for _, t := range terms {
		qtf[t]++
	}
	if compressed {
		// The compressed arm queries through the streaming path: a k-way
		// merge over the term cursors, no accumulator map, no decoded
		// postings. Bit-identical to the accumulator fold below (see
		// ir.MergeTopK).
		mts := make([]ir.MergeTerm, 0, len(terms))
		seen := make(map[string]bool, len(terms))
		for _, t := range terms {
			if seen[t] {
				continue
			}
			seen[t] = true
			df := st.DocFreq(t)
			if df == 0 {
				continue
			}
			mts = append(mts, ir.MergeTerm{
				Cursor: st.(*index.Inverted).Cursor(t),
				WQ:     ir.QueryWeight(qtf[t], len(terms), n, df),
				N:      n,
				DF:     df,
			})
		}
		return ir.MergeTopK(mts, k)
	}
	acc := ir.NewAccumulator()
	seen := make(map[string]bool, len(terms))
	for _, t := range terms {
		if seen[t] {
			continue
		}
		seen[t] = true
		df := st.DocFreq(t)
		if df == 0 {
			continue
		}
		wq := ir.QueryWeight(qtf[t], len(terms), n, df)
		for _, p := range st.PostingsSlice(t) {
			acc.Accumulate(p.Doc, wq*ir.Weight(p.NormFreq(), n, df), p.DocLen)
		}
	}
	return acc.RankedTop(k)
}

// Table renders the sweep.
func (r *PostingsResult) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Postings storage: compressed blocks vs plain slices (%d terms/doc, %d queries x %d terms, top-%d)\n",
		r.TermsPerDoc, r.Queries, r.QueryLen, r.TopK)
	fmt.Fprintf(&b, "%-9s %-7s %-9s %-8s %-6s %-10s %-8s %-9s %-9s %-9s %-7s %-9s %-8s\n",
		"docs", "store", "postings", "blocks", "B/post", "ratio", "mem_MB", "docs/s", "p50_us", "p95_us", "p99_us", "rankings", "wall_ms")
	for _, t := range r.Tiers {
		for _, arm := range []struct {
			name string
			a    PostingsArm
		}{{"comp", t.Comp}, {"plain", t.Plain}} {
			match := "-"
			if t.Plain.Built {
				if t.RankingsMatch {
					match = "equal"
				} else {
					match = "DIFFER"
				}
			}
			if !arm.a.Built {
				fmt.Fprintf(&b, "%-9d %-7s %-9d %-8s %-6.1f %-10s (not built above %d docs; footprint analytic)\n",
					t.Docs, arm.name, t.Postings, "-", arm.a.BytesPerPosting, "-", r.PlainMaxDocs)
				continue
			}
			blocks := "-"
			ratio := "-"
			if arm.name == "comp" {
				blocks = fmt.Sprint(t.Blocks)
				ratio = fmt.Sprintf("%.1fx", t.Ratio)
			}
			fmt.Fprintf(&b, "%-9d %-7s %-9d %-8s %-6.1f %-10s %-8.1f %-9.0f %-9.1f %-9.1f %-7.1f %-9s %-8d\n",
				t.Docs, arm.name, t.Postings, blocks, arm.a.BytesPerPosting, ratio,
				float64(arm.a.MemBytes)/(1<<20), arm.a.DocsPerSec,
				float64(arm.a.P50NS)/1e3, float64(arm.a.P95NS)/1e3, float64(arm.a.P99NS)/1e3,
				match, t.WallMS)
		}
	}
	return b.String()
}

// CSV renders two rows (one per store) per tier.
func (r *PostingsResult) CSV() string {
	rows := make([][]string, 0, 2*len(r.Tiers))
	for _, t := range r.Tiers {
		for _, arm := range []struct {
			name string
			a    PostingsArm
		}{{"compressed", t.Comp}, {"plain", t.Plain}} {
			match := ""
			if t.Plain.Built {
				match = fmt.Sprint(t.RankingsMatch)
			}
			rows = append(rows, []string{
				fmt.Sprint(t.Docs), arm.name, fmt.Sprint(arm.a.Built),
				fmt.Sprint(t.Topics), fmt.Sprint(t.Terms), fmt.Sprint(t.Postings), fmt.Sprint(t.Blocks),
				fmt.Sprintf("%.2f", arm.a.BytesPerPosting), fmt.Sprintf("%.2f", t.Ratio),
				fmt.Sprint(arm.a.MemBytes), fmt.Sprint(arm.a.WireBytes),
				fmt.Sprint(arm.a.BuildMS), fmt.Sprintf("%.0f", arm.a.DocsPerSec),
				fmt.Sprintf("%.0f", arm.a.MeanNS), fmt.Sprint(arm.a.P50NS), fmt.Sprint(arm.a.P95NS), fmt.Sprint(arm.a.P99NS),
				arm.a.RankHash, match, fmt.Sprint(t.WallMS),
			})
		}
	}
	return csvRows("docs,store,built,topics,terms,postings,blocks,bytes_per_posting,ratio,mem_bytes,wire_bytes,build_ms,docs_per_sec,mean_ns,p50_ns,p95_ns,p99_ns,rank_hash,rankings_match,wall_ms", rows)
}
