package eval

import (
	"fmt"
	"math"
	"math/rand"
	"strings"
	"time"

	"github.com/spritedht/sprite/internal/chord"
	"github.com/spritedht/sprite/internal/chordid"
	"github.com/spritedht/sprite/internal/core"
	"github.com/spritedht/sprite/internal/ir"
	"github.com/spritedht/sprite/internal/simnet"
	"github.com/spritedht/sprite/internal/telemetry"
)

// This file implements the supplementary systems-level experiments indexed
// in DESIGN.md: they validate the substrate (chord-hops) and quantify the
// cost and robustness arguments the paper makes qualitatively (§1, §7), plus
// an ablation of the §5.3 score formula.

// ChordHopsResult reports average and maximum lookup hops per network size.
type ChordHopsResult struct {
	Sizes   []int
	AvgHops []float64
	MaxHops []int
	Log2N   []float64
}

// RunChordHops measures iterative-lookup hop counts across ring sizes,
// validating the O(log N) routing bound the overlay inherits from Chord.
func RunChordHops(sizes []int, trials int, seed int64) (*ChordHopsResult, error) {
	res := &ChordHopsResult{}
	for _, size := range sizes {
		net := simnet.New(seed)
		ring := chord.NewRing(net, chord.Config{})
		if _, err := ring.AddNodes("n", size); err != nil {
			return nil, err
		}
		ring.Build()
		nodes := ring.Nodes()
		rng := rand.New(rand.NewSource(seed + int64(size)))
		total, maxHops := 0, 0
		for i := 0; i < trials; i++ {
			key := chordid.HashKey(fmt.Sprintf("k-%d-%d", size, i))
			from := nodes[rng.Intn(len(nodes))]
			_, hops, err := from.Lookup(key)
			if err != nil {
				return nil, err
			}
			total += hops
			if hops > maxHops {
				maxHops = hops
			}
		}
		res.Sizes = append(res.Sizes, size)
		res.AvgHops = append(res.AvgHops, float64(total)/float64(trials))
		res.MaxHops = append(res.MaxHops, maxHops)
		res.Log2N = append(res.Log2N, math.Log2(float64(size)))
	}
	return res, nil
}

// Table renders the result.
func (r *ChordHopsResult) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Chord lookup hops vs network size (expect avg <= log2 N)\n")
	fmt.Fprintf(&b, "%-8s %-10s %-10s %-10s\n", "N", "avg", "max", "log2N")
	for i := range r.Sizes {
		fmt.Fprintf(&b, "%-8d %-10.2f %-10d %-10.2f\n", r.Sizes[i], r.AvgHops[i], r.MaxHops[i], r.Log2N[i])
	}
	return b.String()
}

// InsertCostResult compares the DHT traffic of publishing documents under
// selective indexing (SPRITE's ≤30-term budget) against indexing every term
// — the §1 argument for why full distributed indexing is impractical.
type InsertCostResult struct {
	Docs              int
	SelectiveMsgs     int64 // chord + publish messages, selective (initial share)
	SelectivePostings int
	FullMsgs          int64 // same, publishing every distinct term
	FullPostings      int
	MsgRatio          float64
}

// RunInsertCost shares the corpus twice on identical fresh networks: once
// with the configured initial-term budget and once publishing every distinct
// term of every document.
func RunInsertCost(cfg Config) (*InsertCostResult, error) {
	cfg = cfg.fillDefaults()
	env, err := Setup(cfg)
	if err != nil {
		return nil, err
	}

	run := func(coreCfg core.Config) (int64, int, error) {
		dep, err := env.NewDeployment(coreCfg)
		if err != nil {
			return 0, 0, err
		}
		dep.Sim.ResetStats()
		if err := dep.ShareAll(); err != nil {
			return 0, 0, err
		}
		return dep.Sim.Stats().Calls, dep.Net.TotalPostings(), nil
	}

	selMsgs, selPost, err := run(cfg.Core)
	if err != nil {
		return nil, err
	}

	// Full indexing: the per-document budget covers every distinct term.
	maxTerms := 0
	for _, d := range env.Col.Corpus.Docs() {
		if len(d.TF) > maxTerms {
			maxTerms = len(d.TF)
		}
	}
	fullCfg := cfg.Core
	fullCfg.InitialTerms = maxTerms
	fullCfg.MaxIndexTerms = maxTerms
	fullMsgs, fullPost, err := run(fullCfg)
	if err != nil {
		return nil, err
	}

	res := &InsertCostResult{
		Docs:              env.Col.Corpus.N(),
		SelectiveMsgs:     selMsgs,
		SelectivePostings: selPost,
		FullMsgs:          fullMsgs,
		FullPostings:      fullPost,
	}
	if selMsgs > 0 {
		res.MsgRatio = float64(fullMsgs) / float64(selMsgs)
	}
	return res, nil
}

// Table renders the result.
func (r *InsertCostResult) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Index construction cost: selective (SPRITE) vs full-term indexing\n")
	fmt.Fprintf(&b, "%-12s %-16s %-16s\n", "", "messages", "postings")
	fmt.Fprintf(&b, "%-12s %-16d %-16d\n", "selective", r.SelectiveMsgs, r.SelectivePostings)
	fmt.Fprintf(&b, "%-12s %-16d %-16d\n", "full", r.FullMsgs, r.FullPostings)
	fmt.Fprintf(&b, "full/selective message ratio: %.1fx over %d documents\n", r.MsgRatio, r.Docs)
	return b.String()
}

// AblationResult reports retrieval quality (ratio to centralized) for each
// learning score variant.
type AblationResult struct {
	Variants []core.ScoreVariant
	Metrics  []ir.Metrics // ratio to centralized at cfg.TopK
}

// RunScoreAblation runs the default experiment once per score variant,
// probing precision/recall at cfg.TopK. It quantifies the paper's §5.3
// argument that qScore and QF must be combined, with the logarithm damping
// QF. The budget is deliberately scarce (one iteration, 3 additions, cap 8)
// — with a loose budget every learnable candidate fits eventually and the
// ranking function cannot matter; only under scarcity do the variants
// separate.
func RunScoreAblation(cfg Config) (*AblationResult, error) {
	cfg = cfg.fillDefaults()
	env, err := Setup(cfg)
	if err != nil {
		return nil, err
	}
	centralAbs := Measure(env.CentralSearcher(), env.Test, cfg.TopK)

	res := &AblationResult{}
	for _, v := range []core.ScoreVariant{
		core.ScoreQScoreLogQF, core.ScoreQScoreOnly, core.ScoreQFOnly, core.ScoreQScoreTimesQF,
	} {
		coreCfg := cfg.Core
		coreCfg.Score = v
		coreCfg.InitialTerms = 5
		coreCfg.TermsPerIteration = 3
		coreCfg.MaxIndexTerms = 8
		dep, err := env.NewDeployment(coreCfg)
		if err != nil {
			return nil, err
		}
		if err := dep.InsertQueries(env.Train); err != nil {
			return nil, err
		}
		if err := dep.ShareAll(); err != nil {
			return nil, err
		}
		// A single iteration with a 3-term budget: only the variant's top-3
		// candidates are admitted, so the ranking function is decisive.
		if err := dep.Learn(1); err != nil {
			return nil, err
		}
		abs := Measure(dep.SpriteSearcher(), env.Test, cfg.TopK)
		res.Variants = append(res.Variants, v)
		res.Metrics = append(res.Metrics, ir.Ratio(abs, centralAbs))
	}
	return res, nil
}

// Table renders the result.
func (r *AblationResult) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Score-function ablation (ratio to centralized)\n")
	fmt.Fprintf(&b, "%-16s %-12s %-12s\n", "variant", "precision", "recall")
	for i, v := range r.Variants {
		fmt.Fprintf(&b, "%-16s %-12.3f %-12.3f\n", v, r.Metrics[i].Precision, r.Metrics[i].Recall)
	}
	return b.String()
}

// ResilienceCounters snapshots the query path's fault-tolerance counters for
// one experiment arm.
type ResilienceCounters struct {
	Retries   int64 // sprite.resilience.retries
	Failovers int64 // sprite.resilience.failovers
	Hedges    int64 // sprite.resilience.hedges
	Partials  int64 // sprite.resilience.partials
}

func snapshotResilience(reg *telemetry.Registry) ResilienceCounters {
	return ResilienceCounters{
		Retries:   reg.Counter("sprite.resilience.retries").Value(),
		Failovers: reg.Counter("sprite.resilience.failovers").Value(),
		Hedges:    reg.Counter("sprite.resilience.hedges").Value(),
		Partials:  reg.Counter("sprite.resilience.partials").Value(),
	}
}

// ChurnResult reports retrieval quality under two failure regimes.
//
// Dead-peer churn: a fraction of peers leaves the ring entirely; lookups
// route around the corpses, so what replication (§7) saves is the index
// state itself (Baseline / NoReplication / Replicated).
//
// Transient churn: the same fraction of peers stays in the ring but drops
// every call — alive to the overlay, unreachable to the read path. Replicas
// exist in both arms; only the resilient read path (retry + failover to the
// replica holder) can reach them, so FailoverOff vs FailoverOn isolates what
// the fault-tolerant query path buys on top of replication.
type ChurnResult struct {
	FailedFraction float64
	Baseline       ir.Metrics // ratio to centralized, healthy network
	NoReplication  ir.Metrics // after failures, ReplicationFactor = 0
	Replicated     ir.Metrics // after failures, ReplicationFactor > 0
	Replicas       int
	// PostingsLost is the fraction of primary index postings stored on the
	// failed peers — the state replication must cover.
	PostingsLost float64

	// Transient-churn arms: both run with ReplicationFactor = Replicas and the
	// failed fraction dropping every call addressed to them.
	FailoverOff ir.Metrics // zero resilience: single attempt, no failover
	FailoverOn  ir.Metrics // retries + failover to replica holders
	Off         ResilienceCounters
	On          ResilienceCounters

	// Peer-driven placement arms: the ring grows by JoinedPeers fresh peers,
	// then those same peers retire gracefully. No owner refresh sweep runs in
	// either arm — placement recovery is entirely the repair subsystem's
	// doing (join-time handoff via arc-change hooks, graceful-leave handoff,
	// Merkle anti-entropy), so AfterMassJoin / AfterMassLeave holding the
	// healthy baseline is the tentpole's recall-recovery claim.
	AfterMassJoin  ir.Metrics
	AfterMassLeave ir.Metrics
	JoinedPeers    int
	// JoinMoved / LeaveMoved count primary entries relocated per wave, and
	// IndexPostings the total primary postings before the waves: moved over
	// total is the repair-cost ratio, O(arc moved) rather than O(index) as an
	// owner refresh sweep would be.
	JoinMoved     int
	LeaveMoved    int
	IndexPostings int
	// JoinRepairMsgs / LeaveRepairMsgs count repair-protocol calls (handoff,
	// relocate, digest, push, retire) issued during each wave.
	JoinRepairMsgs  int64
	LeaveRepairMsgs int64
}

// RunChurn builds identical deployments, trains and learns, injects faults
// into the given fraction of peers, and probes retrieval quality.
//
// Dead-peer arms (replication off/on) fail the peers outright: lookups route
// around them and the question is whether the index state survives. Documents
// owned by failed peers remain judged (their owners are gone, but their index
// entries — and with replication, the replicas — survive at other peers).
//
// Transient arms (failover off/on, both with replication) keep the faulty
// peers alive but drop every call addressed to them, the failure signature
// retries and replica failover exist for; each arm runs under its own
// telemetry registry so its resilience counters are separable.
func RunChurn(cfg Config, failFraction float64, replicas int) (*ChurnResult, error) {
	cfg = cfg.fillDefaults()
	if failFraction < 0 || failFraction >= 1 {
		return nil, fmt.Errorf("eval: failFraction %v out of [0,1)", failFraction)
	}
	env, err := Setup(cfg)
	if err != nil {
		return nil, err
	}
	centralAbs := Measure(env.CentralSearcher(), env.Test, cfg.TopK)

	build := func(coreCfg core.Config) (*Deployment, error) {
		dep, err := env.NewDeployment(coreCfg)
		if err != nil {
			return nil, err
		}
		if err := dep.InsertQueries(env.Train); err != nil {
			return nil, err
		}
		if err := dep.ShareAll(); err != nil {
			return nil, err
		}
		if err := dep.Learn(cfg.LearningIterations); err != nil {
			return nil, err
		}
		return dep, nil
	}

	// The same seeded permutation picks the faulty peers in every arm.
	faulty := func(dep *Deployment) []*chord.Node {
		nodes := dep.Ring.Nodes()
		rng := rand.New(rand.NewSource(cfg.Seed + 99))
		toFail := int(failFraction * float64(len(nodes)))
		picked := make([]*chord.Node, 0, toFail)
		for _, i := range rng.Perm(len(nodes))[:toFail] {
			picked = append(picked, nodes[i])
		}
		return picked
	}

	res := &ChurnResult{FailedFraction: failFraction, Replicas: replicas}

	withReplication := cfg.Core
	withReplication.ReplicationFactor = replicas
	noReplication := cfg.Core
	noReplication.ReplicationFactor = 0

	noRep, err := build(noReplication)
	if err != nil {
		return nil, err
	}
	res.Baseline = ir.Ratio(Measure(noRep.SpriteSearcher(), env.Test, cfg.TopK), centralAbs)
	for _, n := range faulty(noRep) {
		noRep.Ring.Fail(n)
	}
	res.NoReplication = ir.Ratio(Measure(noRep.SpriteSearcher(), env.Test, cfg.TopK), centralAbs)
	total, lost := 0, 0
	for _, p := range noRep.Net.Peers() {
		n := p.Index().NumPostings()
		total += n
		if !noRep.Sim.Alive(p.Addr()) {
			lost += n
		}
	}
	if total > 0 {
		res.PostingsLost = float64(lost) / float64(total)
	}

	rep, err := build(withReplication)
	if err != nil {
		return nil, err
	}
	for _, n := range faulty(rep) {
		rep.Ring.Fail(n)
	}
	res.Replicated = ir.Ratio(Measure(rep.SpriteSearcher(), env.Test, cfg.TopK), centralAbs)

	// Transient arms: the faulty peers stay alive (so lookups still resolve
	// them as holders — chord only routes around the dead) but drop every call
	// addressed to them, and the faulty set rotates mid-stream — every
	// interval queries the current set recovers and a freshly drawn one starts
	// dropping. Both arms replay the same seeded fault schedule, so the only
	// difference is the read path. Each arm gets its own registry, otherwise
	// the two arms' counters would blend.
	rotateEvery := cfg.ChurnRotateEvery
	if rotateEvery <= 0 {
		rotateEvery = (len(env.Test) + 3) / 4
	}
	transient := func(rc core.ResilienceConfig) (ir.Metrics, ResilienceCounters, error) {
		reg := telemetry.NewRegistry()
		saved := env.Cfg.Telemetry
		env.Cfg.Telemetry = reg
		coreCfg := withReplication
		coreCfg.Resilience = rc
		dep, err := build(coreCfg)
		env.Cfg.Telemetry = saved
		if err != nil {
			return ir.Metrics{}, ResilienceCounters{}, err
		}
		nodes := dep.Ring.Nodes()
		toFail := int(failFraction * float64(len(nodes)))
		rng := rand.New(rand.NewSource(cfg.Seed + 99))
		var down []simnet.Addr
		rotate := func() {
			for _, a := range down {
				dep.Sim.DropCalls(a, 0) // recover
			}
			down = down[:0]
			for _, i := range rng.Perm(len(nodes))[:toFail] {
				a := nodes[i].Addr()
				down = append(down, a)
				dep.Sim.DropCalls(a, 1<<30)
			}
		}
		rotate()
		base := dep.SpriteSearcher()
		issued := 0
		churny := func(terms []string, k int) ir.RankedList {
			if issued > 0 && issued%rotateEvery == 0 {
				rotate()
			}
			issued++
			return base(terms, k)
		}
		m := ir.Ratio(Measure(churny, env.Test, cfg.TopK), centralAbs)
		return m, snapshotResilience(reg), nil
	}

	res.FailoverOff, res.Off, err = transient(core.ResilienceConfig{})
	if err != nil {
		return nil, err
	}
	res.FailoverOn, res.On, err = transient(core.ResilienceConfig{
		MaxRetries:         2,
		BaseBackoff:        100 * time.Microsecond,
		FailoverToReplicas: true,
		JitterSeed:         cfg.Seed + 7,
	})
	if err != nil {
		return nil, err
	}

	// Peer-driven placement arms: a fresh, healthy deployment grows by a wave
	// of joining peers and later shrinks back as the same peers retire
	// gracefully. Recovery is the repair subsystem's alone — arc-change
	// handoffs fire during stabilization, Repair() finishes leftovers and
	// reconciles replica sets — with no owner refresh sweep in either arm.
	place, err := build(withReplication)
	if err != nil {
		return nil, err
	}
	for _, p := range place.Net.Peers() {
		res.IndexPostings += p.Index().NumPostings()
	}
	repairMsgs := func() int64 {
		var n int64
		for typ, c := range place.Sim.Stats().CallsByType {
			if strings.HasPrefix(typ, "sprite.repair.") || typ == "sprite.relocate" {
				n += c
			}
		}
		return n
	}
	holders := func() map[string]simnet.Addr {
		m := make(map[string]simnet.Addr, res.IndexPostings)
		for _, e := range place.Net.PrimarySnapshot() {
			m[e.Term+"\x00"+string(e.Posting.Doc)] = e.Peer
		}
		return m
	}
	movedBetween := func(before, after map[string]simnet.Addr) int {
		n := 0
		for k, was := range before {
			if now, ok := after[k]; ok && now != was {
				n++
			}
		}
		return n
	}
	res.JoinedPeers = int(failFraction * float64(cfg.Peers))
	if res.JoinedPeers < 1 {
		res.JoinedPeers = 1
	}
	boot := place.Ring.Nodes()[0]
	preJoin, preMsgs := holders(), repairMsgs()
	for i := 0; i < res.JoinedPeers; i++ {
		node, err := place.Ring.AddNode(fmt.Sprintf("x%d", i))
		if err != nil {
			return nil, err
		}
		place.Net.Adopt(node)
		if err := node.Join(boot); err != nil {
			return nil, err
		}
		place.Ring.StabilizeLists(64)
		place.Ring.RepairFingers()
		place.Net.InvalidateCaches()
	}
	place.Net.Repair()
	place.Net.FlushStaleAll()
	res.JoinMoved = movedBetween(preJoin, holders())
	res.JoinRepairMsgs = repairMsgs() - preMsgs
	res.AfterMassJoin = ir.Ratio(Measure(place.SpriteSearcher(), env.Test, cfg.TopK), centralAbs)

	preLeave, preMsgs2 := holders(), repairMsgs()
	for i := 0; i < res.JoinedPeers; i++ {
		if _, err := place.Net.Leave(simnet.Addr(fmt.Sprintf("x%d", i))); err != nil {
			return nil, err
		}
		place.Ring.StabilizeLists(64)
		place.Ring.RepairFingers()
		place.Net.InvalidateCaches()
	}
	place.Net.Repair()
	place.Net.FlushStaleAll()
	res.LeaveMoved = movedBetween(preLeave, holders())
	res.LeaveRepairMsgs = repairMsgs() - preMsgs2
	res.AfterMassLeave = ir.Ratio(Measure(place.SpriteSearcher(), env.Test, cfg.TopK), centralAbs)
	return res, nil
}

// Table renders the result.
func (r *ChurnResult) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Churn: %.0f%% of peers faulty, %.0f%% of postings lost (ratios to centralized)\n",
		r.FailedFraction*100, r.PostingsLost*100)
	fmt.Fprintf(&b, "%-28s %-12s %-12s %s\n", "configuration", "precision", "recall", "retries/failovers/hedges/partials")
	row := func(name string, m ir.Metrics, c *ResilienceCounters) {
		counters := ""
		if c != nil {
			counters = fmt.Sprintf("%d/%d/%d/%d", c.Retries, c.Failovers, c.Hedges, c.Partials)
		}
		fmt.Fprintf(&b, "%-28s %-12.3f %-12.3f %s\n", name, m.Precision, m.Recall, counters)
	}
	row("healthy network", r.Baseline, nil)
	row("dead, no replication", r.NoReplication, nil)
	row(fmt.Sprintf("dead, %d replicas", r.Replicas), r.Replicated, nil)
	row("transient, failover off", r.FailoverOff, &r.Off)
	row("transient, failover on", r.FailoverOn, &r.On)
	row(fmt.Sprintf("mass join +%d, repair only", r.JoinedPeers), r.AfterMassJoin, nil)
	row(fmt.Sprintf("mass leave -%d, repair only", r.JoinedPeers), r.AfterMassLeave, nil)
	if r.IndexPostings > 0 {
		fmt.Fprintf(&b, "repair moved %d/%d entries on join (%.1f%%), %d/%d on leave (%.1f%%); %d + %d repair msgs\n",
			r.JoinMoved, r.IndexPostings, 100*float64(r.JoinMoved)/float64(r.IndexPostings),
			r.LeaveMoved, r.IndexPostings, 100*float64(r.LeaveMoved)/float64(r.IndexPostings),
			r.JoinRepairMsgs, r.LeaveRepairMsgs)
	}
	return b.String()
}
