package eval

import (
	"fmt"
	"math"
	"math/rand"
	"strings"

	"github.com/spritedht/sprite/internal/chord"
	"github.com/spritedht/sprite/internal/chordid"
	"github.com/spritedht/sprite/internal/core"
	"github.com/spritedht/sprite/internal/ir"
	"github.com/spritedht/sprite/internal/simnet"
)

// This file implements the supplementary systems-level experiments indexed
// in DESIGN.md: they validate the substrate (chord-hops) and quantify the
// cost and robustness arguments the paper makes qualitatively (§1, §7), plus
// an ablation of the §5.3 score formula.

// ChordHopsResult reports average and maximum lookup hops per network size.
type ChordHopsResult struct {
	Sizes   []int
	AvgHops []float64
	MaxHops []int
	Log2N   []float64
}

// RunChordHops measures iterative-lookup hop counts across ring sizes,
// validating the O(log N) routing bound the overlay inherits from Chord.
func RunChordHops(sizes []int, trials int, seed int64) (*ChordHopsResult, error) {
	res := &ChordHopsResult{}
	for _, size := range sizes {
		net := simnet.New(seed)
		ring := chord.NewRing(net, chord.Config{})
		if _, err := ring.AddNodes("n", size); err != nil {
			return nil, err
		}
		ring.Build()
		nodes := ring.Nodes()
		rng := rand.New(rand.NewSource(seed + int64(size)))
		total, maxHops := 0, 0
		for i := 0; i < trials; i++ {
			key := chordid.HashKey(fmt.Sprintf("k-%d-%d", size, i))
			from := nodes[rng.Intn(len(nodes))]
			_, hops, err := from.Lookup(key)
			if err != nil {
				return nil, err
			}
			total += hops
			if hops > maxHops {
				maxHops = hops
			}
		}
		res.Sizes = append(res.Sizes, size)
		res.AvgHops = append(res.AvgHops, float64(total)/float64(trials))
		res.MaxHops = append(res.MaxHops, maxHops)
		res.Log2N = append(res.Log2N, math.Log2(float64(size)))
	}
	return res, nil
}

// Table renders the result.
func (r *ChordHopsResult) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Chord lookup hops vs network size (expect avg <= log2 N)\n")
	fmt.Fprintf(&b, "%-8s %-10s %-10s %-10s\n", "N", "avg", "max", "log2N")
	for i := range r.Sizes {
		fmt.Fprintf(&b, "%-8d %-10.2f %-10d %-10.2f\n", r.Sizes[i], r.AvgHops[i], r.MaxHops[i], r.Log2N[i])
	}
	return b.String()
}

// InsertCostResult compares the DHT traffic of publishing documents under
// selective indexing (SPRITE's ≤30-term budget) against indexing every term
// — the §1 argument for why full distributed indexing is impractical.
type InsertCostResult struct {
	Docs              int
	SelectiveMsgs     int64 // chord + publish messages, selective (initial share)
	SelectivePostings int
	FullMsgs          int64 // same, publishing every distinct term
	FullPostings      int
	MsgRatio          float64
}

// RunInsertCost shares the corpus twice on identical fresh networks: once
// with the configured initial-term budget and once publishing every distinct
// term of every document.
func RunInsertCost(cfg Config) (*InsertCostResult, error) {
	cfg = cfg.fillDefaults()
	env, err := Setup(cfg)
	if err != nil {
		return nil, err
	}

	run := func(coreCfg core.Config) (int64, int, error) {
		dep, err := env.NewDeployment(coreCfg)
		if err != nil {
			return 0, 0, err
		}
		dep.Sim.ResetStats()
		if err := dep.ShareAll(); err != nil {
			return 0, 0, err
		}
		return dep.Sim.Stats().Calls, dep.Net.TotalPostings(), nil
	}

	selMsgs, selPost, err := run(cfg.Core)
	if err != nil {
		return nil, err
	}

	// Full indexing: the per-document budget covers every distinct term.
	maxTerms := 0
	for _, d := range env.Col.Corpus.Docs() {
		if len(d.TF) > maxTerms {
			maxTerms = len(d.TF)
		}
	}
	fullCfg := cfg.Core
	fullCfg.InitialTerms = maxTerms
	fullCfg.MaxIndexTerms = maxTerms
	fullMsgs, fullPost, err := run(fullCfg)
	if err != nil {
		return nil, err
	}

	res := &InsertCostResult{
		Docs:              env.Col.Corpus.N(),
		SelectiveMsgs:     selMsgs,
		SelectivePostings: selPost,
		FullMsgs:          fullMsgs,
		FullPostings:      fullPost,
	}
	if selMsgs > 0 {
		res.MsgRatio = float64(fullMsgs) / float64(selMsgs)
	}
	return res, nil
}

// Table renders the result.
func (r *InsertCostResult) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Index construction cost: selective (SPRITE) vs full-term indexing\n")
	fmt.Fprintf(&b, "%-12s %-16s %-16s\n", "", "messages", "postings")
	fmt.Fprintf(&b, "%-12s %-16d %-16d\n", "selective", r.SelectiveMsgs, r.SelectivePostings)
	fmt.Fprintf(&b, "%-12s %-16d %-16d\n", "full", r.FullMsgs, r.FullPostings)
	fmt.Fprintf(&b, "full/selective message ratio: %.1fx over %d documents\n", r.MsgRatio, r.Docs)
	return b.String()
}

// AblationResult reports retrieval quality (ratio to centralized) for each
// learning score variant.
type AblationResult struct {
	Variants []core.ScoreVariant
	Metrics  []ir.Metrics // ratio to centralized at cfg.TopK
}

// RunScoreAblation runs the default experiment once per score variant,
// probing precision/recall at cfg.TopK. It quantifies the paper's §5.3
// argument that qScore and QF must be combined, with the logarithm damping
// QF. The budget is deliberately scarce (one iteration, 3 additions, cap 8)
// — with a loose budget every learnable candidate fits eventually and the
// ranking function cannot matter; only under scarcity do the variants
// separate.
func RunScoreAblation(cfg Config) (*AblationResult, error) {
	cfg = cfg.fillDefaults()
	env, err := Setup(cfg)
	if err != nil {
		return nil, err
	}
	centralAbs := Measure(env.CentralSearcher(), env.Test, cfg.TopK)

	res := &AblationResult{}
	for _, v := range []core.ScoreVariant{
		core.ScoreQScoreLogQF, core.ScoreQScoreOnly, core.ScoreQFOnly, core.ScoreQScoreTimesQF,
	} {
		coreCfg := cfg.Core
		coreCfg.Score = v
		coreCfg.InitialTerms = 5
		coreCfg.TermsPerIteration = 3
		coreCfg.MaxIndexTerms = 8
		dep, err := env.NewDeployment(coreCfg)
		if err != nil {
			return nil, err
		}
		if err := dep.InsertQueries(env.Train); err != nil {
			return nil, err
		}
		if err := dep.ShareAll(); err != nil {
			return nil, err
		}
		// A single iteration with a 3-term budget: only the variant's top-3
		// candidates are admitted, so the ranking function is decisive.
		if err := dep.Learn(1); err != nil {
			return nil, err
		}
		abs := Measure(dep.SpriteSearcher(), env.Test, cfg.TopK)
		res.Variants = append(res.Variants, v)
		res.Metrics = append(res.Metrics, ir.Ratio(abs, centralAbs))
	}
	return res, nil
}

// Table renders the result.
func (r *AblationResult) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Score-function ablation (ratio to centralized)\n")
	fmt.Fprintf(&b, "%-16s %-12s %-12s\n", "variant", "precision", "recall")
	for i, v := range r.Variants {
		fmt.Fprintf(&b, "%-16s %-12.3f %-12.3f\n", v, r.Metrics[i].Precision, r.Metrics[i].Recall)
	}
	return b.String()
}

// ChurnResult reports retrieval quality before and after failing a fraction
// of peers, with and without successor replication (§7).
type ChurnResult struct {
	FailedFraction float64
	Baseline       ir.Metrics // ratio to centralized, healthy network
	NoReplication  ir.Metrics // after failures, ReplicationFactor = 0
	Replicated     ir.Metrics // after failures, ReplicationFactor > 0
	Replicas       int
	// PostingsLost is the fraction of primary index postings stored on the
	// failed peers — the state replication must cover.
	PostingsLost float64
}

// RunChurn builds two identical deployments (replication off/on), trains and
// learns, fails the given fraction of peers, and probes retrieval quality.
// Documents owned by failed peers remain judged (their owners are gone, but
// their index entries — and with replication, the replicas — survive at
// other peers).
func RunChurn(cfg Config, failFraction float64, replicas int) (*ChurnResult, error) {
	cfg = cfg.fillDefaults()
	if failFraction < 0 || failFraction >= 1 {
		return nil, fmt.Errorf("eval: failFraction %v out of [0,1)", failFraction)
	}
	env, err := Setup(cfg)
	if err != nil {
		return nil, err
	}
	centralAbs := Measure(env.CentralSearcher(), env.Test, cfg.TopK)

	build := func(reps int) (*Deployment, error) {
		coreCfg := cfg.Core
		coreCfg.ReplicationFactor = reps
		dep, err := env.NewDeployment(coreCfg)
		if err != nil {
			return nil, err
		}
		if err := dep.InsertQueries(env.Train); err != nil {
			return nil, err
		}
		if err := dep.ShareAll(); err != nil {
			return nil, err
		}
		if err := dep.Learn(cfg.LearningIterations); err != nil {
			return nil, err
		}
		return dep, nil
	}

	failPeers := func(dep *Deployment) {
		nodes := dep.Ring.Nodes()
		rng := rand.New(rand.NewSource(cfg.Seed + 99))
		toFail := int(failFraction * float64(len(nodes)))
		for _, i := range rng.Perm(len(nodes))[:toFail] {
			dep.Ring.Fail(nodes[i])
		}
	}

	res := &ChurnResult{FailedFraction: failFraction, Replicas: replicas}

	noRep, err := build(0)
	if err != nil {
		return nil, err
	}
	res.Baseline = ir.Ratio(Measure(noRep.SpriteSearcher(), env.Test, cfg.TopK), centralAbs)
	failPeers(noRep)
	res.NoReplication = ir.Ratio(Measure(noRep.SpriteSearcher(), env.Test, cfg.TopK), centralAbs)
	total, lost := 0, 0
	for _, p := range noRep.Net.Peers() {
		n := p.Index().NumPostings()
		total += n
		if !noRep.Sim.Alive(p.Addr()) {
			lost += n
		}
	}
	if total > 0 {
		res.PostingsLost = float64(lost) / float64(total)
	}

	rep, err := build(replicas)
	if err != nil {
		return nil, err
	}
	failPeers(rep)
	res.Replicated = ir.Ratio(Measure(rep.SpriteSearcher(), env.Test, cfg.TopK), centralAbs)
	return res, nil
}

// Table renders the result.
func (r *ChurnResult) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Churn: %.0f%% of peers failed, %.0f%% of postings lost (ratios to centralized)\n",
		r.FailedFraction*100, r.PostingsLost*100)
	fmt.Fprintf(&b, "%-24s %-12s %-12s\n", "configuration", "precision", "recall")
	fmt.Fprintf(&b, "%-24s %-12.3f %-12.3f\n", "healthy network", r.Baseline.Precision, r.Baseline.Recall)
	fmt.Fprintf(&b, "%-24s %-12.3f %-12.3f\n", "failed, no replication", r.NoReplication.Precision, r.NoReplication.Recall)
	fmt.Fprintf(&b, "%-24s %-12.3f %-12.3f\n",
		fmt.Sprintf("failed, %d replicas", r.Replicas), r.Replicated.Precision, r.Replicated.Recall)
	return b.String()
}
