package eval

import (
	"fmt"
	"strings"
	"time"

	"github.com/spritedht/sprite/internal/chaos"
)

// This file wires the internal/chaos whole-system harness into the
// experiment runner as a smoke experiment: a fixed seed set at a modest step
// count, runnable from `spritebench chaos` and CI's chaos-smoke job. It is
// not a figure from the paper — it is the correctness gate DESIGN.md's
// § Correctness tooling describes, surfaced alongside the benchmarks so a
// regression shows up in the same harness operators already run.

// ChaosResult reports one chaos run per seed.
type ChaosResult struct {
	Seeds []int64
	Steps []int
	// VirtualTime reports whether the runs scheduled their slept link
	// delays on the deterministic event clock.
	VirtualTime bool
	Status      []string // "ok" or the violated invariant
	Detail      []string // empty, or the violation message
	ReproLen    []int    // shrunk repro length (0 when no violation)
	ElapsedMS   []int64
}

// RunChaos executes the chaos harness once per seed with the standard smoke
// configuration: replication, caching, a cache-off twin, and fault operations
// enabled. Any violation is reported in the result rather than as an error —
// the caller decides whether a red row fails the run. virtualTime runs each
// deployment on its own event clock with slept link delays (the vtime arm of
// the smoke matrix); every invariant must hold in both modes.
func RunChaos(seeds []int64, steps, parallelism int, virtualTime bool) (*ChaosResult, error) {
	if len(seeds) == 0 {
		seeds = []int64{1, 2, 3, 4, 5}
	}
	if steps <= 0 {
		steps = 150
	}
	if parallelism <= 0 {
		parallelism = 4
	}
	res := &ChaosResult{VirtualTime: virtualTime}
	for _, seed := range seeds {
		start := time.Now()
		r := chaos.Run(chaos.Config{
			Seed:              seed,
			Steps:             steps,
			Parallelism:       parallelism,
			Cache:             true,
			Twin:              true,
			FaultOps:          true,
			ReplicationFactor: 2,
			HotTermDF:         6,
			VirtualTime:       virtualTime,
		})
		res.Seeds = append(res.Seeds, seed)
		res.Steps = append(res.Steps, steps)
		res.ElapsedMS = append(res.ElapsedMS, time.Since(start).Milliseconds())
		if r.Violation == nil {
			res.Status = append(res.Status, "ok")
			res.Detail = append(res.Detail, "")
			res.ReproLen = append(res.ReproLen, 0)
			continue
		}
		res.Status = append(res.Status, r.Violation.Invariant)
		res.Detail = append(res.Detail, r.Violation.Msg)
		res.ReproLen = append(res.ReproLen, len(r.Repro))
	}
	return res, nil
}

// Failures counts seeds that ended in a violation.
func (r *ChaosResult) Failures() int {
	n := 0
	for _, s := range r.Status {
		if s != "ok" {
			n++
		}
	}
	return n
}

// Table renders the per-seed outcomes.
func (r *ChaosResult) Table() string {
	var b strings.Builder
	mode := "wall clock"
	if r.VirtualTime {
		mode = "virtual time"
	}
	fmt.Fprintf(&b, "Chaos smoke: seeded whole-system runs, %s (invariants: index, oracle, cache, telemetry, leaks)\n", mode)
	fmt.Fprintf(&b, "%-8s %-8s %-18s %-8s %-10s %s\n", "seed", "steps", "status", "repro", "ms", "detail")
	for i := range r.Seeds {
		fmt.Fprintf(&b, "%-8d %-8d %-18s %-8d %-10d %s\n",
			r.Seeds[i], r.Steps[i], r.Status[i], r.ReproLen[i], r.ElapsedMS[i], r.Detail[i])
	}
	return b.String()
}

// CSV renders the same rows for machines.
func (r *ChaosResult) CSV() string {
	rows := make([][]string, 0, len(r.Seeds))
	for i := range r.Seeds {
		rows = append(rows, []string{
			fmt.Sprint(r.Seeds[i]), fmt.Sprint(r.Steps[i]), r.Status[i],
			fmt.Sprint(r.ReproLen[i]), fmt.Sprint(r.ElapsedMS[i]),
			strings.ReplaceAll(r.Detail[i], ",", ";"),
		})
	}
	return csvRows("seed,steps,status,repro_len,elapsed_ms,detail", rows)
}
