package eval

import (
	"encoding/json"
	"fmt"
	"math"
	"strings"
	"testing"
	"time"

	"github.com/spritedht/sprite/internal/telemetry"
)

// renderRankings runs the deployment's searcher over every test query and
// renders doc IDs plus exact score bits, so two runs can be compared byte
// for byte — a formatting difference of even one ULP fails the comparison.
func renderRankings(d *Deployment, k int) string {
	var b strings.Builder
	for _, q := range d.Env.Test {
		rl := d.SpriteSearcher()(q.Terms, k)
		b.WriteString(q.ID)
		b.WriteByte(':')
		for _, h := range rl {
			fmt.Fprintf(&b, " %s=%016x", h.Doc, math.Float64bits(h.Score))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// trainAndRender builds a deployment from cfg, runs the §6.2 training
// sequence, then measures with slept link latency. It returns the rendered
// rankings, the virtual nanoseconds the run spanned (0 under the wall
// clock), and the transport call/byte counters of the measured phase.
func trainAndRender(t *testing.T, cfg Config) (rankings string, virtualNS int64, calls, bytes int64) {
	t.Helper()
	env, err := Setup(cfg)
	if err != nil {
		t.Fatalf("Setup: %v", err)
	}
	dep, err := env.NewDeployment(cfg.Core)
	if err != nil {
		t.Fatalf("NewDeployment: %v", err)
	}
	dep.Run(func() {
		if err := dep.InsertQueries(env.Train); err != nil {
			t.Errorf("InsertQueries: %v", err)
			return
		}
		if err := dep.ShareAll(); err != nil {
			t.Errorf("ShareAll: %v", err)
			return
		}
		if err := dep.Learn(cfg.LearningIterations); err != nil {
			t.Errorf("Learn: %v", err)
			return
		}
		dep.Sim.ResetStats()
		dep.Sim.SetSleepLatency(true)
		start := dep.Clock().Now()
		rankings = renderRankings(dep, cfg.TopK)
		if dep.Clk != nil {
			virtualNS = dep.Clock().Now().Sub(start).Nanoseconds()
		}
		dep.Sim.SetSleepLatency(false)
	})
	st := dep.Sim.Stats()
	return rankings, virtualNS, st.Calls, st.Bytes
}

// TestVirtualWallRankingTwins is the twin test of the virtual-time contract:
// on the same small ring with the same constant link delay, rankings under
// the virtual clock must be byte-identical to rankings under real slept
// latency. A constant (lo == hi) delay draws no transport randomness, so the
// only degree of freedom between the modes is the clock itself.
func TestVirtualWallRankingTwins(t *testing.T) {
	cfg := tiny()
	cfg.LinkDelay = 200 * time.Microsecond
	cfg.Core.Parallelism = 4

	cfg.VirtualTime = false
	wall, _, wallCalls, wallBytes := trainAndRender(t, cfg)

	cfg.VirtualTime = true
	virt, virtNS, virtCalls, virtBytes := trainAndRender(t, cfg)

	if wall == "" || wall != virt {
		t.Errorf("virtual-time rankings differ from sleeping-latency rankings:\nwall:\n%s\nvirtual:\n%s", wall, virt)
	}
	if wallCalls != virtCalls || wallBytes != virtBytes {
		t.Errorf("traffic moved with the clock: wall %d/%d virtual %d/%d",
			wallCalls, wallBytes, virtCalls, virtBytes)
	}
	if virtNS <= 0 {
		t.Errorf("virtual run slept no virtual time (%d ns)", virtNS)
	}
}

// TestVirtualDeterminismAcrossRuns is the determinism regression: two
// virtual-time runs with the same seed at Parallelism 8 must agree bit for
// bit on rankings, on the virtual timeline (total elapsed virtual time), and
// on the full telemetry snapshot — counters, gauges, peaks, histograms.
func TestVirtualDeterminismAcrossRuns(t *testing.T) {
	run := func() (string, int64, string) {
		cfg := tiny()
		cfg.LinkDelay = 150 * time.Microsecond
		cfg.Core.Parallelism = 8
		cfg.VirtualTime = true
		cfg.Telemetry = telemetry.NewRegistry()
		rankings, virtNS, _, _ := trainAndRender(t, cfg)
		snap := cfg.Telemetry.Snapshot()
		snap.Traces = nil // traces carry wall-clock start times by design
		js, err := json.Marshal(snap)
		if err != nil {
			t.Fatalf("marshal snapshot: %v", err)
		}
		return rankings, virtNS, string(js)
	}
	r1, t1, s1 := run()
	r2, t2, s2 := run()
	if r1 != r2 {
		t.Errorf("rankings diverged across identical runs:\nrun1:\n%s\nrun2:\n%s", r1, r2)
	}
	if t1 != t2 {
		t.Errorf("virtual timeline diverged: run1 %d ns, run2 %d ns", t1, t2)
	}
	if s1 != s2 {
		t.Errorf("telemetry snapshots diverged:\nrun1: %s\nrun2: %s", s1, s2)
	}
	if t1 <= 0 {
		t.Errorf("no virtual time elapsed (%d ns)", t1)
	}
}

// TestRunScaleSmoke exercises the scale sweep end to end at unit-test size:
// one small ring, a short Zipf stream. It pins the structural contract —
// exact percentile ordering, positive routing cost, the virtual clock having
// actually advanced — without asserting machine-dependent wall numbers.
func TestRunScaleSmoke(t *testing.T) {
	cfg := tiny()
	res, err := RunScale(cfg, []int{64}, 2000, 0.5, 500*time.Microsecond)
	if err != nil {
		t.Fatalf("RunScale: %v", err)
	}
	if len(res.Arms) != 1 {
		t.Fatalf("arm count = %d, want 1", len(res.Arms))
	}
	a := res.Arms[0]
	if a.Peers != 64 || a.Queries != 2000 {
		t.Fatalf("arm shape wrong: %+v", a)
	}
	if a.P50US <= 0 || a.P95US < a.P50US || a.P99US < a.P95US {
		t.Errorf("degenerate percentiles: %+v", a)
	}
	if a.MsgsPerQuery <= 0 || a.BytesPerQuery <= 0 {
		t.Errorf("no routing cost recorded: %+v", a)
	}
	if a.VirtualSecs <= 0 {
		t.Errorf("virtual clock did not advance: %+v", a)
	}
	if a.Quality.Precision <= 0 || a.Quality.Recall <= 0 {
		t.Errorf("degenerate quality: %+v", a)
	}
	if !strings.HasPrefix(res.CSV(), "peers,finger_bits,queries,") {
		t.Errorf("CSV header missing: %q", res.CSV())
	}
	if res.Table() == "" {
		t.Error("empty table")
	}
}

// TestRunScaleQualityRingInvariant pins the property the sweep's quality
// column documents: precision and recall must not move with ring size,
// because a term's search state lands with the term's owner wherever the
// ring boundaries fall.
func TestRunScaleQualityRingInvariant(t *testing.T) {
	cfg := tiny()
	res, err := RunScale(cfg, []int{32, 128}, 500, 0.5, 500*time.Microsecond)
	if err != nil {
		t.Fatalf("RunScale: %v", err)
	}
	if len(res.Arms) != 2 {
		t.Fatalf("arm count = %d, want 2", len(res.Arms))
	}
	if res.Arms[0].Quality != res.Arms[1].Quality {
		t.Errorf("quality moved with ring size: %+v vs %+v",
			res.Arms[0].Quality, res.Arms[1].Quality)
	}
}
