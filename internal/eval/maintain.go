package eval

import (
	"fmt"
	"math/rand"
	"strings"

	"github.com/spritedht/sprite/internal/ir"
)

// MaintenanceResult compares the two recovery mechanisms the paper offers
// for peer failure (§1's owner probing made effectful, and §7's successor
// replication) on the same churn event.
type MaintenanceResult struct {
	FailedFraction float64
	Healthy        ir.Metrics // ratio to centralized before failures
	Degraded       ir.Metrics // after failures, no recovery
	AfterRefresh   ir.Metrics // after failures + owner RefreshAll
	Replicated     ir.Metrics // after failures, with successor replication
	RefreshMoved   int        // postings migrated by RefreshAll
	RefreshMsgs    int64      // messages RefreshAll cost
	Replicas       int
}

// RunMaintenance trains and learns a deployment, fails a fraction of peers,
// and measures retrieval quality (a) degraded, (b) after the owners run a
// refresh sweep (entries migrate to the failover peers), and (c) on an
// identical deployment that had successor replication on from the start.
func RunMaintenance(cfg Config, failFraction float64, replicas int) (*MaintenanceResult, error) {
	cfg = cfg.fillDefaults()
	if failFraction < 0 || failFraction >= 1 {
		return nil, fmt.Errorf("eval: failFraction %v out of [0,1)", failFraction)
	}
	env, err := Setup(cfg)
	if err != nil {
		return nil, err
	}
	centralAbs := Measure(env.CentralSearcher(), env.Test, cfg.TopK)

	build := func(reps int) (*Deployment, error) {
		coreCfg := cfg.Core
		coreCfg.ReplicationFactor = reps
		dep, err := env.NewDeployment(coreCfg)
		if err != nil {
			return nil, err
		}
		if err := dep.InsertQueries(env.Train); err != nil {
			return nil, err
		}
		if err := dep.ShareAll(); err != nil {
			return nil, err
		}
		if err := dep.Learn(cfg.LearningIterations); err != nil {
			return nil, err
		}
		return dep, nil
	}
	fail := func(dep *Deployment) {
		nodes := dep.Ring.Nodes()
		rng := rand.New(rand.NewSource(cfg.Seed + 77))
		for _, i := range rng.Perm(len(nodes))[:int(failFraction*float64(len(nodes)))] {
			dep.Ring.Fail(nodes[i])
		}
	}

	res := &MaintenanceResult{FailedFraction: failFraction, Replicas: replicas}

	plain, err := build(0)
	if err != nil {
		return nil, err
	}
	res.Healthy = ir.Ratio(Measure(plain.SpriteSearcher(), env.Test, cfg.TopK), centralAbs)
	fail(plain)
	res.Degraded = ir.Ratio(Measure(plain.SpriteSearcher(), env.Test, cfg.TopK), centralAbs)

	before := plain.Sim.Stats().Calls
	moved, err := plain.Net.RefreshAll()
	if err != nil {
		return nil, err
	}
	res.RefreshMoved = moved
	res.RefreshMsgs = plain.Sim.Stats().Calls - before
	res.AfterRefresh = ir.Ratio(Measure(plain.SpriteSearcher(), env.Test, cfg.TopK), centralAbs)

	rep, err := build(replicas)
	if err != nil {
		return nil, err
	}
	fail(rep)
	res.Replicated = ir.Ratio(Measure(rep.SpriteSearcher(), env.Test, cfg.TopK), centralAbs)
	return res, nil
}

// Table renders the result.
func (r *MaintenanceResult) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Recovery after failing %.0f%% of peers (ratios to centralized)\n", r.FailedFraction*100)
	fmt.Fprintf(&b, "%-26s %-12s %-12s\n", "state", "precision", "recall")
	fmt.Fprintf(&b, "%-26s %-12.3f %-12.3f\n", "healthy", r.Healthy.Precision, r.Healthy.Recall)
	fmt.Fprintf(&b, "%-26s %-12.3f %-12.3f\n", "degraded (no recovery)", r.Degraded.Precision, r.Degraded.Recall)
	fmt.Fprintf(&b, "%-26s %-12.3f %-12.3f   (%d postings moved, %d msgs)\n",
		"after owner refresh", r.AfterRefresh.Precision, r.AfterRefresh.Recall, r.RefreshMoved, r.RefreshMsgs)
	fmt.Fprintf(&b, "%-26s %-12.3f %-12.3f\n",
		fmt.Sprintf("%d replicas (no refresh)", r.Replicas), r.Replicated.Precision, r.Replicated.Recall)
	return b.String()
}
