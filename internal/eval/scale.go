package eval

import (
	"fmt"
	"math"
	"runtime"
	"runtime/debug"
	"strings"
	"time"

	"github.com/spritedht/sprite/internal/chord"
	"github.com/spritedht/sprite/internal/core"
	"github.com/spritedht/sprite/internal/simnet"
	"github.com/spritedht/sprite/internal/vtime"
)

// ScaleArm is one ring size of the scale sweep: a full deployment trained
// per §6.2, then measured over a Zipf query stream on the virtual clock.
type ScaleArm struct {
	// Peers is the ring size; FingerBits the per-node finger-table size the
	// sweep tuned to ~log2(Peers)+8 (the full 128-entry default would cost
	// hundreds of MB at 100k peers for no routing benefit).
	Peers      int
	FingerBits int
	// Queries is the measured Zipf stream volume.
	Queries int
	// Exact per-query virtual latency (microseconds): order statistics over
	// all Queries samples, not histogram-interpolated.
	MeanUS float64
	P50US  int64
	P95US  int64
	P99US  int64
	// MsgsPerQuery and BytesPerQuery are the transport cost of the measured
	// stream divided by its volume.
	MsgsPerQuery  float64
	BytesPerQuery float64
	// VirtualSecs is the simulated time the measured stream spanned; WallMS
	// is the real time the whole arm took (build + train + measure).
	VirtualSecs float64
	WallMS      int64
	// Quality is precision/recall on the test set at TopK. Per-term search
	// state lands with whichever peer owns the term, so quality must not
	// move with ring size; the column is the evidence.
	Quality quality
}

// quality is the slim P/R pair the scale table reports.
type quality struct {
	Precision float64
	Recall    float64
}

// ScaleResult is the ring-size sweep. It always runs on virtual time — that
// is the point: the slept link delays advance a deterministic event clock,
// so a sweep that spans hours of simulated time finishes in seconds.
type ScaleResult struct {
	// Delay is the constant one-way link delay each simulated call sleeps.
	Delay time.Duration
	// Slope is the Zipf slope of the measured query stream.
	Slope float64
	Arms  []ScaleArm
}

// scaleFingerBits tunes the finger-table size to the ring: enough bits to
// halve the remaining distance down to single steps (log2 n) plus headroom
// so routing stays ~(1/2)·log2 n hops, without the full-table memory bill.
func scaleFingerBits(peers int) int {
	b := int(math.Ceil(math.Log2(float64(peers)))) + 8
	if b < 16 {
		b = 16
	}
	return b
}

// RunScale measures query latency and message cost as a function of ring
// size: for each ring in rings it builds a deployment (tuned finger tables,
// sequential fan-out, no telemetry — the configuration that maximizes
// simulated throughput), trains it per §6.2, then replays volume queries
// drawn Zipf(slope) from the test set with every link delay slept on the
// deployment's virtual clock. Latency columns are exact virtual
// microseconds; rings defaults to {10000, 25000, 50000, 100000}, volume to
// 250000 per ring, slope to 0.5 (the paper's w-zipf), delay <= 0 to 1ms.
func RunScale(cfg Config, rings []int, volume int, slope float64, delay time.Duration) (*ScaleResult, error) {
	cfg = cfg.fillDefaults()
	if len(rings) == 0 {
		rings = []int{10000, 25000, 50000, 100000}
	}
	if volume <= 0 {
		volume = 250000
	}
	if slope <= 0 {
		slope = 0.5
	}
	if delay <= 0 {
		delay = time.Millisecond
	}
	// Telemetry would put a histogram observation and gauge swing on every
	// simulated call — at tens of millions of calls the sweep cannot afford
	// it, and the exact percentiles come from collected samples anyway.
	cfg.Telemetry = nil
	cfg.VirtualTime = true
	cfg.LinkDelay = delay
	env, err := Setup(cfg)
	if err != nil {
		return nil, err
	}

	// The sweep's heap is dominated by live ring state — at 100k peers the
	// finger tables alone are most of it — over which the collector would
	// otherwise cycle repeatedly while the measured stream allocates little.
	// Trading heap headroom for fewer cycles saves seconds per arm and is
	// invisible to the experiment: GC timing never touches the virtual clock
	// or the rankings.
	oldGC := debug.SetGCPercent(300)
	defer debug.SetGCPercent(oldGC)

	res := &ScaleResult{Delay: delay, Slope: slope}
	for i, peers := range rings {
		if i > 0 {
			// Reclaim the previous arm's ring and index state eagerly so the
			// next arm's query stream is not taxed by a heap full of garbage
			// from a deployment that no longer exists.
			runtime.GC()
		}
		arm, err := runScaleArm(env, peers, volume, slope, delay)
		if err != nil {
			return nil, fmt.Errorf("eval: scale arm %d peers: %w", peers, err)
		}
		res.Arms = append(res.Arms, arm)
	}
	return res, nil
}

// runScaleArm builds, trains, and measures one ring size. The deployment is
// assembled here rather than through NewDeployment because the sweep tunes
// chord's finger-table size per ring.
func runScaleArm(env *Env, peers, volume int, slope float64, delay time.Duration) (ScaleArm, error) {
	wallStart := time.Now()
	fingerBits := scaleFingerBits(peers)
	clk := vtime.NewSim()
	snet := simnet.New(env.Cfg.Seed+1,
		simnet.WithClock(clk),
		simnet.WithLatency(simnet.UniformLatency(delay, delay)),
		simnet.WithLeanStats())
	ring := chord.NewRing(snet, chord.Config{FingerBits: fingerBits})

	coreCfg := env.Cfg.Core
	coreCfg.Parallelism = 1
	coreCfg.Telemetry = nil
	coreCfg.Clock = clk
	d := &Deployment{Env: env, Sim: snet, Ring: ring, Clk: clk}

	arm := ScaleArm{Peers: peers, FingerBits: fingerBits, Queries: volume}
	var (
		samples []int64
		runErr  error
	)
	d.Run(func() {
		if _, runErr = ring.AddNodes("peer", peers); runErr != nil {
			return
		}
		ring.Build()
		d.Net, runErr = core.NewNetwork(ring, coreCfg)
		if runErr != nil {
			return
		}
		for _, p := range d.Net.Peers() {
			d.addrs = append(d.addrs, p.Addr())
		}
		if runErr = d.InsertQueries(env.Train); runErr != nil {
			return
		}
		if runErr = d.ShareAll(); runErr != nil {
			return
		}
		if runErr = d.Learn(env.Cfg.LearningIterations); runErr != nil {
			return
		}

		// The measured stream: volume Zipf draws over the test set, link
		// delays slept on the virtual clock, per-query latency sampled
		// exactly. Training above ran with latency accounted but not slept.
		searcher := timedSearcher(d.SpriteSearcher(), clk, &samples)
		d.Sim.ResetStats()
		d.Sim.SetSleepLatency(true)
		vStart := clk.Elapsed()
		for _, r := range zipfRanks(len(env.Test), volume, slope, env.Cfg.Seed+7) {
			q := env.Test[r]
			searcher(q.Terms, env.Cfg.TopK)
		}
		arm.VirtualSecs = (clk.Elapsed() - vStart).Seconds()
		d.Sim.SetSleepLatency(false)
		st := d.Sim.Stats()
		arm.MsgsPerQuery = float64(st.Calls) / float64(volume)
		arm.BytesPerQuery = float64(st.Bytes) / float64(volume)

		// Quality over the unique test queries (non-perturbing probes, no
		// sleeping) — ring size must not move precision or recall.
		m := Measure(d.SpriteSearcher(), env.Test, env.Cfg.TopK)
		arm.Quality = quality{Precision: m.Precision, Recall: m.Recall}
	})
	if runErr != nil {
		return ScaleArm{}, runErr
	}
	lat := summarize(samples)
	arm.MeanUS, arm.P50US, arm.P95US, arm.P99US = lat.Mean, lat.P50, lat.P95, lat.P99
	arm.WallMS = time.Since(wallStart).Milliseconds()
	return arm, nil
}

// Table renders the sweep.
func (r *ScaleResult) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Scale sweep: virtual-time query latency vs ring size (%v link delay, zipf %.2f)\n",
		r.Delay, r.Slope)
	fmt.Fprintf(&b, "%-9s %-8s %-9s %-10s %-9s %-9s %-9s %-10s %-10s %-9s %-9s %-18s\n",
		"peers", "fingers", "queries", "mean_us", "p50_us", "p95_us", "p99_us",
		"msgs/q", "bytes/q", "vsecs", "wall_ms", "precision/recall")
	for _, a := range r.Arms {
		fmt.Fprintf(&b, "%-9d %-8d %-9d %-10.1f %-9d %-9d %-9d %-10.2f %-10.1f %-9.1f %-9d P=%.4f R=%.4f\n",
			a.Peers, a.FingerBits, a.Queries, a.MeanUS, a.P50US, a.P95US, a.P99US,
			a.MsgsPerQuery, a.BytesPerQuery, a.VirtualSecs, a.WallMS,
			a.Quality.Precision, a.Quality.Recall)
	}
	return b.String()
}

// CSV renders one row per ring size.
func (r *ScaleResult) CSV() string {
	rows := make([][]string, 0, len(r.Arms))
	for _, a := range r.Arms {
		rows = append(rows, []string{
			fmt.Sprint(a.Peers), fmt.Sprint(a.FingerBits), fmt.Sprint(a.Queries),
			fmt.Sprint(r.Delay.Microseconds()), fmt.Sprintf("%.2f", r.Slope),
			fmt.Sprintf("%.1f", a.MeanUS), fmt.Sprint(a.P50US), fmt.Sprint(a.P95US), fmt.Sprint(a.P99US),
			fmt.Sprintf("%.2f", a.MsgsPerQuery), fmt.Sprintf("%.1f", a.BytesPerQuery),
			fmt.Sprintf("%.1f", a.VirtualSecs), fmt.Sprint(a.WallMS),
			f4(a.Quality.Precision), f4(a.Quality.Recall),
		})
	}
	return csvRows("peers,finger_bits,queries,link_delay_us,zipf_slope,mean_us,p50_us,p95_us,p99_us,msgs_per_query,bytes_per_query,virtual_secs,wall_ms,precision,recall", rows)
}
