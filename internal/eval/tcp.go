package eval

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"time"

	"github.com/spritedht/sprite/internal/chord"
	"github.com/spritedht/sprite/internal/core"
	"github.com/spritedht/sprite/internal/corpus"
	"github.com/spritedht/sprite/internal/index"
	"github.com/spritedht/sprite/internal/nettransport"
	"github.com/spritedht/sprite/internal/simnet"
	"github.com/spritedht/sprite/internal/telemetry"
	"github.com/spritedht/sprite/internal/transport"
)

// TCPArm is one measured cell of the transport benchmark: a ring size, a
// client concurrency level, and one of the two real-socket transports.
type TCPArm struct {
	Peers       int
	Concurrency int
	// Transport is "dial" (naive dial-per-RPC, gob frames) or "pooled"
	// (persistent multiplexed connections, binary codec, micro-batching).
	Transport string
	// Queries actually measured (Concurrency workers x per-worker share).
	Queries int
	// ThroughputQPS is measured searches per wall-clock second.
	ThroughputQPS float64
	// Per-search wall latency in microseconds.
	MeanUS float64
	P50US  int64
	P95US  int64
	P99US  int64
	// Dials is how many TCP connections were opened over the whole arm
	// (setup + hash phase + measured phase); PeakConns is the high-water
	// mark of simultaneously open client connections.
	Dials     int64
	PeakConns int64
	// AllocsPerOp is the whole-process heap allocation count per measured
	// search (client and server side share the process, so both are billed).
	AllocsPerOp uint64
	// Hash fingerprints the ranked lists of the deterministic query replay.
	// Identical across transports or the transport corrupted a result.
	Hash string
}

// TCPResult is the transport benchmark: the same workload driven over the
// naive dial-per-RPC transport and the pooled multiplexed one, across ring
// sizes and client concurrency levels, on real loopback sockets.
type TCPResult struct {
	Sizes       []int
	Concurrency []int
	Arms        []TCPArm
}

// RunTCP benchmarks the two real TCP transports against each other on
// loopback. For every (ring size, concurrency) cell it builds a fresh Chord
// ring and SPRITE network over each transport, shares the same deterministic
// corpus, replays a fixed query set sequentially to fingerprint the rankings
// (and warm every code path), then measures a concurrent search phase:
// latency quantiles, throughput, connection counts, and allocations per
// search. The ranking fingerprint must be identical across transports —
// the benchmark fails otherwise, so a speedup can never hide a wrong answer.
// sizes defaults to {4, 8}; conc to {1, 8}; queries (per arm) to 240.
func RunTCP(sizes, conc []int, queries int) (*TCPResult, error) {
	if len(sizes) == 0 {
		sizes = []int{4, 8}
	}
	if len(conc) == 0 {
		conc = []int{1, 8}
	}
	if queries <= 0 {
		queries = 240
	}
	res := &TCPResult{Sizes: sizes, Concurrency: conc}
	for _, peers := range sizes {
		for _, c := range conc {
			var hash string
			for _, mode := range []string{"dial", "pooled"} {
				arm, err := runTCPArm(mode, peers, c, queries)
				if err != nil {
					return nil, fmt.Errorf("eval: tcp %s n=%d c=%d: %w", mode, peers, c, err)
				}
				if hash == "" {
					hash = arm.Hash
				} else if arm.Hash != hash {
					return nil, fmt.Errorf("eval: tcp n=%d c=%d: transports disagree on rankings (%s: %s, dial: %s)",
						peers, c, mode, arm.Hash, hash)
				}
				res.Arms = append(res.Arms, arm)
			}
		}
	}
	return res, nil
}

// tcpVocab is the benchmark's fixed vocabulary; documents and queries are
// derived from it by index arithmetic so every arm shares one workload.
var tcpVocab = []string{
	"socket", "frame", "codec", "pool", "mux", "batch",
	"dial", "chord", "index", "query", "peer", "learn",
}

func tcpQueries() [][]string {
	qs := make([][]string, len(tcpVocab))
	for i := range tcpVocab {
		qs[i] = []string{tcpVocab[i], tcpVocab[(i+5)%len(tcpVocab)]}
	}
	return qs
}

func runTCPArm(mode string, peers, conc, queries int) (TCPArm, error) {
	arm := TCPArm{Peers: peers, Concurrency: conc, Transport: mode}
	reg := telemetry.NewRegistry()

	var (
		tr         simnet.Transport
		closeTr    func()
		lastErr    func() error
		dialsName  string
		connsGauge string
	)
	switch mode {
	case "pooled":
		t := transport.New(transport.WithTelemetry(reg))
		tr, closeTr, lastErr = t, t.Close, t.LastError
		dialsName, connsGauge = "tcp.dials", "tcp.conns.open"
	case "dial":
		t := nettransport.New(nettransport.WithTelemetry(reg))
		tr, closeTr, lastErr = t, t.Close, t.LastError
		dialsName, connsGauge = "net.dials", "net.conns.open"
	default:
		return arm, fmt.Errorf("unknown transport %q", mode)
	}
	defer closeTr()

	addrs, err := nettransport.FreeAddrs(peers)
	if err != nil {
		return arm, err
	}
	ring := chord.NewRing(tr, chord.Config{FingerBits: 24})
	for _, a := range addrs {
		if _, err := ring.AddNode(string(a)); err != nil {
			return arm, err
		}
	}
	if err := lastErr(); err != nil {
		return arm, err
	}
	ring.Build()
	net, err := core.NewNetwork(ring, core.Config{InitialTerms: 3, TermsPerIteration: 2, MaxIndexTerms: 8})
	if err != nil {
		return arm, err
	}

	for i := 0; i < 2*len(tcpVocab); i++ {
		tf := map[string]int{
			tcpVocab[i%len(tcpVocab)]:     3 + i%4,
			tcpVocab[(i+3)%len(tcpVocab)]: 2,
			tcpVocab[(i+7)%len(tcpVocab)]: 1,
		}
		doc := corpus.NewDocument(index.DocID(fmt.Sprintf("doc-%02d", i)), tf)
		if err := net.Share(addrs[i%peers], doc); err != nil {
			return arm, err
		}
	}

	// Fingerprint phase: the full query set, sequentially, hashing every
	// ranked list. Sequential order makes the hash deterministic, and the
	// replay doubles as warmup for the measured phase.
	qs := tcpQueries()
	h := sha256.New()
	for qi, q := range qs {
		rl, err := net.Search(addrs[qi%peers], q, 10)
		if err != nil {
			return arm, err
		}
		for _, hit := range rl {
			fmt.Fprintf(h, "%s=%s;", hit.Doc, strconv.FormatFloat(hit.Score, 'g', -1, 64))
		}
		io.WriteString(h, "|")
	}
	arm.Hash = hex.EncodeToString(h.Sum(nil))[:16]

	// Measured phase: conc workers, each replaying its slice of the query
	// stream against rotating origin peers.
	per := queries / conc
	if per == 0 {
		per = 1
	}
	total := per * conc
	lat := reg.Histogram("bench.search_us")
	errCh := make(chan error, conc)
	var m0, m1 runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&m0)
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < conc; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				q := qs[(w*per+i)%len(qs)]
				from := addrs[(w+i)%peers]
				t0 := time.Now()
				if _, err := net.Search(from, q, 10); err != nil {
					errCh <- err
					return
				}
				lat.Observe(time.Since(t0).Microseconds())
			}
		}(w)
	}
	wg.Wait()
	wall := time.Since(start)
	runtime.ReadMemStats(&m1)
	select {
	case err := <-errCh:
		return arm, err
	default:
	}

	arm.Queries = total
	arm.ThroughputQPS = float64(total) / wall.Seconds()
	arm.MeanUS = lat.Mean()
	arm.P50US = lat.Quantile(0.50)
	arm.P95US = lat.Quantile(0.95)
	arm.P99US = lat.Quantile(0.99)
	arm.Dials = reg.Counter(dialsName).Value()
	arm.PeakConns = reg.Gauge(connsGauge).Peak()
	arm.AllocsPerOp = (m1.Mallocs - m0.Mallocs) / uint64(total)
	return arm, nil
}

// Table renders the transport comparison.
func (r *TCPResult) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Real-socket transport benchmark: dial-per-RPC gob vs pooled multiplexed binary\n")
	fmt.Fprintf(&b, "%-6s %-5s %-9s %-9s %-10s %-9s %-9s %-9s %-7s %-6s %-10s %-16s\n",
		"peers", "conc", "transport", "qps", "mean_us", "p50_us", "p95_us", "p99_us", "dials", "peak", "allocs/op", "result_hash")
	for _, a := range r.Arms {
		fmt.Fprintf(&b, "%-6d %-5d %-9s %-9.0f %-10.1f %-9d %-9d %-9d %-7d %-6d %-10d %-16s\n",
			a.Peers, a.Concurrency, a.Transport, a.ThroughputQPS, a.MeanUS,
			a.P50US, a.P95US, a.P99US, a.Dials, a.PeakConns, a.AllocsPerOp, a.Hash)
	}
	return b.String()
}

// CSV renders one row per arm.
func (r *TCPResult) CSV() string {
	rows := make([][]string, 0, len(r.Arms))
	for _, a := range r.Arms {
		rows = append(rows, []string{
			fmt.Sprint(a.Peers), fmt.Sprint(a.Concurrency), a.Transport,
			fmt.Sprint(a.Queries), fmt.Sprintf("%.1f", a.ThroughputQPS),
			fmt.Sprintf("%.1f", a.MeanUS), fmt.Sprint(a.P50US), fmt.Sprint(a.P95US), fmt.Sprint(a.P99US),
			fmt.Sprint(a.Dials), fmt.Sprint(a.PeakConns), fmt.Sprint(a.AllocsPerOp), a.Hash,
		})
	}
	return csvRows("peers,concurrency,transport,queries,throughput_qps,mean_us,p50_us,p95_us,p99_us,dials,peak_conns,allocs_per_op,result_hash", rows)
}
