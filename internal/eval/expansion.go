package eval

import (
	"fmt"
	"strings"

	"github.com/spritedht/sprite/internal/core"
	"github.com/spritedht/sprite/internal/ir"
)

// ExpansionResult compares plain distributed retrieval against retrieval
// with local-context-analysis query expansion (§7), at several expansion
// depths.
type ExpansionResult struct {
	// Depths[i] is the number of expansion terms; 0 is the plain baseline.
	Depths  []int
	Metrics []ir.Metrics // ratio to centralized at cfg.TopK
	// ExtraMessages[i] is the mean number of additional RPCs per query
	// relative to the plain baseline — expansion's price.
	ExtraMessages []float64
}

// RunExpansion trains and learns the default deployment, then probes the
// testing queries with 0 (plain), 2, 4, and 6 expansion terms, reporting
// quality ratios and per-query message overhead.
func RunExpansion(cfg Config) (*ExpansionResult, error) {
	cfg = cfg.fillDefaults()
	env, err := Setup(cfg)
	if err != nil {
		return nil, err
	}
	dep, err := env.NewDeployment(cfg.Core)
	if err != nil {
		return nil, err
	}
	if err := dep.InsertQueries(env.Train); err != nil {
		return nil, err
	}
	if err := dep.ShareAll(); err != nil {
		return nil, err
	}
	if err := dep.Learn(cfg.LearningIterations); err != nil {
		return nil, err
	}
	centralAbs := Measure(env.CentralSearcher(), env.Test, cfg.TopK)

	res := &ExpansionResult{}
	var baselineMsgs float64
	for _, depth := range []int{0, 2, 4, 6} {
		searcher, msgs := dep.expansionSearcher(depth)
		abs := Measure(searcher, env.Test, cfg.TopK)
		perQuery := float64(*msgs) / float64(len(env.Test))
		if depth == 0 {
			baselineMsgs = perQuery
		}
		res.Depths = append(res.Depths, depth)
		res.Metrics = append(res.Metrics, ir.Ratio(abs, centralAbs))
		res.ExtraMessages = append(res.ExtraMessages, perQuery-baselineMsgs)
	}
	return res, nil
}

// expansionSearcher returns a searcher using the given expansion depth
// (0 = plain Probe) plus a counter of the RPCs it generated.
func (d *Deployment) expansionSearcher(depth int) (Searcher, *int64) {
	msgs := new(int64)
	return func(terms []string, k int) ir.RankedList {
		before := d.Sim.Stats().Calls
		var rl ir.RankedList
		var err error
		from := d.nextIssuer()
		if depth == 0 {
			rl, err = d.Net.Probe(from, terms, k)
		} else {
			rl, _, err = d.Net.SearchExpanded(from, terms, k, core.ExpandOptions{
				FeedbackDocs:   5,
				ExpansionTerms: depth,
			})
		}
		*msgs += d.Sim.Stats().Calls - before
		if err != nil {
			return nil
		}
		return rl
	}, msgs
}

// Table renders the result.
func (r *ExpansionResult) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Query expansion (local context analysis, §7): quality vs cost\n")
	fmt.Fprintf(&b, "%-14s %-12s %-12s %-16s\n", "expansion", "precision", "recall", "extra msgs/query")
	for i, depth := range r.Depths {
		label := "plain"
		if depth > 0 {
			label = fmt.Sprintf("+%d terms", depth)
		}
		fmt.Fprintf(&b, "%-14s %-12.3f %-12.3f %-16.1f\n",
			label, r.Metrics[i].Precision, r.Metrics[i].Recall, r.ExtraMessages[i])
	}
	return b.String()
}
