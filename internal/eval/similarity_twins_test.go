package eval

import (
	"fmt"
	"math"
	"reflect"
	"strings"
	"testing"

	"github.com/spritedht/sprite/internal/core"
	"github.com/spritedht/sprite/internal/simnet"
	"github.com/spritedht/sprite/internal/sketch"
)

// TestSimilarityTwins is the determinism regression for the similarity path:
// the same trained deployment queried for the same documents must produce
// bit-identical ranked lists (doc IDs and exact score bits), identical
// per-peer history multisets, and — within one cache setting, where the
// message pattern is defined — identical transport call/byte counters, across
// Parallelism {1, 8} × postings cache {off, on} × {wall, virtual} clock.
// Rankings and history must additionally agree ACROSS cache settings: the
// cache is a transparency layer, never a semantic one.
func TestSimilarityTwins(t *testing.T) {
	type twin struct {
		rankings string
		history  map[simnet.Addr]map[string]int
		calls    int64
		bytes    int64
	}
	run := func(par int, cache, virtual bool) twin {
		cfg := tiny()
		cfg.VirtualTime = virtual
		cfg.Core.Parallelism = par
		cfg.Core.Sketch = sketch.Config{Enabled: true, Dims: 128, RouteTerms: 4, Seed: 7, Refine: 8}
		if cache {
			cfg.Core.Cache = core.CacheConfig{PostingsEntries: 256, PostingsTTL: 1e15}
		}
		env, err := Setup(cfg)
		if err != nil {
			t.Fatalf("Setup: %v", err)
		}
		dep, err := env.NewDeployment(cfg.Core)
		if err != nil {
			t.Fatalf("NewDeployment: %v", err)
		}
		var tw twin
		dep.Run(func() {
			if err := dep.InsertQueries(env.Train); err != nil {
				t.Errorf("InsertQueries: %v", err)
				return
			}
			if err := dep.ShareAll(); err != nil {
				t.Errorf("ShareAll: %v", err)
				return
			}
			if err := dep.Learn(1); err != nil {
				t.Errorf("Learn: %v", err)
				return
			}
			dep.Sim.ResetStats()
			docs := dep.Env.Col.Corpus.Docs()
			var b strings.Builder
			for i := 0; i < 12; i++ {
				q := docs[(i*7)%len(docs)].ID
				rl, err := dep.Net.SearchSimilar(dep.nextIssuer(), q, 5)
				if err != nil {
					t.Errorf("SearchSimilar(%s): %v", q, err)
					return
				}
				b.WriteString(string(q))
				b.WriteByte(':')
				for _, h := range rl {
					fmt.Fprintf(&b, " %s=%016x", h.Doc, math.Float64bits(h.Score))
				}
				b.WriteByte('\n')
			}
			tw.rankings = b.String()
		})
		st := dep.Sim.Stats()
		tw.calls, tw.bytes = st.Calls, st.Bytes
		tw.history = dep.Net.HistoryMultiset()
		return tw
	}

	ref := map[bool]twin{}
	for _, cache := range []bool{false, true} {
		for _, par := range []int{1, 8} {
			for _, virtual := range []bool{false, true} {
				got := run(par, cache, virtual)
				if got.rankings == "" {
					t.Fatalf("empty rankings (par=%d cache=%v virtual=%v)", par, cache, virtual)
				}
				r, ok := ref[cache]
				if !ok {
					ref[cache] = got
					continue
				}
				if got.rankings != r.rankings {
					t.Errorf("rankings diverged (par=%d cache=%v virtual=%v):\n got:\n%s\nwant:\n%s",
						par, cache, virtual, got.rankings, r.rankings)
				}
				if !reflect.DeepEqual(got.history, r.history) {
					t.Errorf("history multisets diverged (par=%d cache=%v virtual=%v)", par, cache, virtual)
				}
				if got.calls != r.calls || got.bytes != r.bytes {
					t.Errorf("traffic diverged (par=%d cache=%v virtual=%v): %d/%d vs %d/%d",
						par, cache, virtual, got.calls, got.bytes, r.calls, r.bytes)
				}
			}
		}
	}
	if ref[false].rankings != ref[true].rankings {
		t.Errorf("cache changed rankings:\noff:\n%s\non:\n%s", ref[false].rankings, ref[true].rankings)
	}
	if !reflect.DeepEqual(ref[false].history, ref[true].history) {
		t.Errorf("cache changed history multisets:\noff: %v\non: %v", ref[false].history, ref[true].history)
	}
}
