package sketch

import (
	"bytes"
	"encoding/gob"
	"testing"

	"github.com/spritedht/sprite/internal/wire"
)

// FuzzSketch feeds arbitrary bytes to the sketch decoder and the serialized
// scorers: unmarshal must either fail cleanly or produce a vector whose
// re-encoding round-trips; CosineBytes/HammingBytes must never panic and
// must stay inside their value ranges whatever the input.
func FuzzSketch(f *testing.F) {
	s, _ := New(Config{Enabled: true, Dims: 16})
	good := s.SketchBytes(map[string]int{"alpha": 3, "beta": 1})
	f.Add(good, good)
	f.Add([]byte{}, []byte{formatV1, 0})
	f.Add([]byte{formatV1, 4, 1, 2, 3, 4}, []byte{formatV1, 200, 0})
	f.Add([]byte{0xff, 0xff, 0xff}, good)
	f.Fuzz(func(t *testing.T, a, b []byte) {
		var v Vector
		if err := v.UnmarshalBinary(a); err == nil {
			raw, merr := v.MarshalBinary()
			if merr != nil {
				t.Fatalf("re-marshal of accepted payload failed: %v", merr)
			}
			if !bytes.Equal(raw, a) {
				t.Fatalf("accepted payload is not canonical: % x -> % x", a, raw)
			}
			if Valid(a) != true {
				t.Fatalf("unmarshal accepted bytes Valid rejects")
			}
		}
		if c := CosineBytes(a, b); c < -1.0000001 || c > 1.0000001 || c != c {
			t.Fatalf("cosine %v out of range", c)
		}
		if h := HammingBytes(a, b); h < 0 || h > MaxDims+1 {
			t.Fatalf("hamming %v out of range", h)
		}
	})
}

// FuzzSketchCodec drives the wire-level codecs with generated vectors: the
// binary path (AppendBinary/DecodeBinary) and the gob fallback must both
// round-trip the vector exactly and agree with each other on the decoded
// value.
func FuzzSketchCodec(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 127, 255, 1})
	f.Add(bytes.Repeat([]byte{0x80}, 300))
	f.Fuzz(func(t *testing.T, comp []byte) {
		if len(comp) > MaxDims {
			comp = comp[:MaxDims]
		}
		var v Vector
		for _, b := range comp {
			v = append(v, int8(b))
		}

		enc, ok := wire.AppendBinary(nil, v)
		if !ok {
			t.Fatalf("Vector has no binary codec registered")
		}
		got, err := wire.DecodeBinary(enc)
		if err != nil {
			t.Fatalf("binary decode: %v", err)
		}
		bv, ok := got.(Vector)
		if !ok {
			t.Fatalf("binary decode returned %T", got)
		}

		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(&v); err != nil {
			t.Fatalf("gob encode: %v", err)
		}
		var gv Vector
		if err := gob.NewDecoder(&buf).Decode(&gv); err != nil {
			t.Fatalf("gob decode: %v", err)
		}

		want := toBytes(v)
		if !bytes.Equal(toBytes(bv), want) {
			t.Fatalf("binary codec changed the vector")
		}
		if !bytes.Equal(toBytes(gv), want) {
			t.Fatalf("gob codec changed the vector")
		}
	})
}
