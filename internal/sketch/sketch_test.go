package sketch

import (
	"bytes"
	"fmt"
	"math"
	"math/rand"
	"testing"
)

func mustSketcher(t *testing.T, cfg Config) *Sketcher {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return s
}

// randomDoc synthesizes a term-frequency map: a topical core shared across
// the corpus plus document-specific noise, the shape the corpus package
// generates.
func randomDoc(rng *rand.Rand, topic int) map[string]int {
	tf := make(map[string]int)
	for i := 0; i < 20+rng.Intn(30); i++ {
		tf[fmt.Sprintf("topic%02d-term%02d", topic, rng.Intn(25))]++
	}
	for i := 0; i < 10+rng.Intn(20); i++ {
		tf[fmt.Sprintf("noise-%03d", rng.Intn(400))]++
	}
	return tf
}

// TestSketchDeterministic pins the cross-run determinism contract: two
// independently constructed sketchers over the same configuration produce
// byte-identical serialized sketches for the same document.
func TestSketchDeterministic(t *testing.T) {
	cfgs := []Config{
		{Enabled: true},
		{Enabled: true, Dims: 32, Seed: 7},
		{Enabled: true, Dims: 333, Seed: 0xdeadbeef},
	}
	for _, cfg := range cfgs {
		a := mustSketcher(t, cfg)
		b := mustSketcher(t, cfg)
		rng := rand.New(rand.NewSource(42))
		for i := 0; i < 50; i++ {
			tf := randomDoc(rng, i%5)
			sa, sb := a.SketchBytes(tf), b.SketchBytes(tf)
			if !bytes.Equal(sa, sb) {
				t.Fatalf("cfg %+v doc %d: sketches differ", cfg, i)
			}
			// A fresh map with the same contents — insertion order must not
			// leak into the projection.
			tf2 := make(map[string]int, len(tf))
			for k, v := range tf {
				tf2[k] = v
			}
			if !bytes.Equal(sa, a.SketchBytes(tf2)) {
				t.Fatalf("cfg %+v doc %d: map iteration order leaked into sketch", cfg, i)
			}
		}
	}
}

// TestSketchSeedSeparation checks different seeds give different projections
// (the directions actually depend on the seed).
func TestSketchSeedSeparation(t *testing.T) {
	a := mustSketcher(t, Config{Enabled: true, Seed: 1})
	b := mustSketcher(t, Config{Enabled: true, Seed: 2})
	tf := map[string]int{"alpha": 3, "beta": 1, "gamma": 7}
	if bytes.Equal(a.SketchBytes(tf), b.SketchBytes(tf)) {
		t.Fatalf("different seeds produced identical sketches")
	}
}

// quantCosineEps bounds |cosine(quantized) − cosine(float projection)|.
// Quantizing to 127 levels perturbs each component by at most maxAbs/254;
// propagated through the cosine that is a ~1/127-scale perturbation per
// vector, so 0.035 holds with a wide margin at 64+ dims. The property test
// asserts the band on every seeded pair rather than trusting the argument.
const quantCosineEps = 0.035

// TestQuantizedCosineBand is the quantization round-trip property: for
// seeded random document pairs the int8 cosine stays within the epsilon
// band of the float64 cosine of the unquantized projections.
func TestQuantizedCosineBand(t *testing.T) {
	for _, dims := range []int{64, 128, 256} {
		s := mustSketcher(t, Config{Enabled: true, Dims: dims, Seed: 11})
		rng := rand.New(rand.NewSource(int64(dims)))
		worst := 0.0
		for i := 0; i < 200; i++ {
			ta, tb := randomDoc(rng, i%4), randomDoc(rng, (i+rng.Intn(4))%4)
			pa, pb := s.Project(ta), s.Project(tb)
			want := FloatCosine(pa, pb)
			got := Quantize(pa).Cosine(Quantize(pb))
			if d := math.Abs(got - want); d > worst {
				worst = d
			}
		}
		if worst > quantCosineEps {
			t.Fatalf("dims %d: quantized cosine deviates %.4f > eps %.4f", dims, worst, quantCosineEps)
		}
		t.Logf("dims %d: worst quantization deviation %.5f (eps %.3f)", dims, worst, quantCosineEps)
	}
}

// TestQuantizedRankOrder is the rank-preservation property: for pairs whose
// float cosines are separated by more than twice the epsilon band, the
// quantized cosines order identically.
func TestQuantizedRankOrder(t *testing.T) {
	s := mustSketcher(t, Config{Enabled: true, Dims: 128, Seed: 23})
	rng := rand.New(rand.NewSource(99))
	q := randomDoc(rng, 0)
	pq := s.Project(q)
	vq := Quantize(pq)

	type cand struct {
		f float64 // float cosine vs the query
		g float64 // quantized cosine vs the query
	}
	var cands []cand
	for i := 0; i < 150; i++ {
		d := randomDoc(rng, i%6)
		pd := s.Project(d)
		cands = append(cands, cand{f: FloatCosine(pq, pd), g: vq.Cosine(Quantize(pd))})
	}
	checked := 0
	for i := range cands {
		for j := range cands {
			if cands[i].f > cands[j].f+2*quantCosineEps {
				checked++
				if cands[i].g <= cands[j].g {
					t.Fatalf("pair separated by %.4f in float cosine inverted after quantization (%.4f vs %.4f)",
						cands[i].f-cands[j].f, cands[i].g, cands[j].g)
				}
			}
		}
	}
	if checked == 0 {
		t.Fatalf("no sufficiently separated pairs generated; test is vacuous")
	}
	t.Logf("checked %d separated pairs", checked)
}

// TestCodecRoundTrip: encode/decode is the identity on valid vectors, and
// the serialized scorers agree with the decoded ones.
func TestCodecRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 100; i++ {
		v := make(Vector, 1+rng.Intn(300))
		for j := range v {
			v[j] = int8(rng.Intn(256) - 128)
		}
		raw, err := v.MarshalBinary()
		if err != nil {
			t.Fatalf("marshal: %v", err)
		}
		var back Vector
		if err := back.UnmarshalBinary(raw); err != nil {
			t.Fatalf("unmarshal: %v", err)
		}
		if !bytes.Equal(toBytes(v), toBytes(back)) {
			t.Fatalf("round trip changed the vector")
		}
		w := make(Vector, len(v))
		for j := range w {
			w[j] = int8(rng.Intn(256) - 128)
		}
		rawW, _ := w.MarshalBinary()
		if got, want := CosineBytes(raw, rawW), v.Cosine(w); got != want {
			t.Fatalf("CosineBytes %.6f != Cosine %.6f", got, want)
		}
		if got, want := HammingBytes(raw, rawW), v.Hamming(w); got != want {
			t.Fatalf("HammingBytes %d != Hamming %d", got, want)
		}
	}
}

func toBytes(v Vector) []byte {
	out := make([]byte, len(v))
	for i, q := range v {
		out[i] = byte(q)
	}
	return out
}

// TestMalformedScoresZero: garbage sketches score 0 / max distance rather
// than failing the query.
func TestMalformedScoresZero(t *testing.T) {
	s := mustSketcher(t, Config{Enabled: true, Dims: 16})
	good := s.SketchBytes(map[string]int{"a": 1, "b": 2})
	bad := [][]byte{nil, {}, {0xff}, {formatV1}, {formatV1, 200}, append(append([]byte{}, good...), 0x01)}
	for i, b := range bad {
		if got := CosineBytes(good, b); got != 0 {
			t.Fatalf("bad[%d]: cosine %v, want 0", i, got)
		}
		if got := CosineBytes(b, good); got != 0 {
			t.Fatalf("bad[%d]: cosine %v, want 0", i, got)
		}
		if got := HammingBytes(good, b); got != MaxDims+1 {
			t.Fatalf("bad[%d]: hamming %v, want %d", i, got, MaxDims+1)
		}
		if Valid(b) {
			t.Fatalf("bad[%d]: Valid reported true", i)
		}
	}
	if !Valid(good) {
		t.Fatalf("well-formed sketch reported invalid")
	}
	// Mismatched widths are not comparable either.
	s8 := mustSketcher(t, Config{Enabled: true, Dims: 8})
	other := s8.SketchBytes(map[string]int{"a": 1})
	if got := CosineBytes(good, other); got != 0 {
		t.Fatalf("width mismatch: cosine %v, want 0", got)
	}
}

// TestSelfCosine: a non-degenerate sketch scores 1 against itself.
func TestSelfCosine(t *testing.T) {
	s := mustSketcher(t, Config{Enabled: true})
	raw := s.SketchBytes(map[string]int{"x": 2, "y": 5, "z": 1})
	if got := CosineBytes(raw, raw); got != 1 {
		t.Fatalf("self cosine %v, want exactly 1", got)
	}
	if got := HammingBytes(raw, raw); got != 0 {
		t.Fatalf("self hamming %v, want 0", got)
	}
}

// TestConfigValidate covers the configuration edges.
func TestConfigValidate(t *testing.T) {
	if err := (Config{}).Validate(); err != nil {
		t.Fatalf("disabled config must validate: %v", err)
	}
	if err := (Config{Enabled: true}.FillDefaults()).Validate(); err != nil {
		t.Fatalf("default config must validate: %v", err)
	}
	for _, cfg := range []Config{
		{Enabled: true, Dims: -1, RouteTerms: 1},
		{Enabled: true, Dims: MaxDims + 1, RouteTerms: 1},
		{Enabled: true, Dims: 8, RouteTerms: -2},
	} {
		if err := cfg.Validate(); err == nil {
			t.Fatalf("config %+v must not validate", cfg)
		}
	}
	if _, err := New(Config{}); err == nil {
		t.Fatalf("New on a disabled config must fail")
	}
	if c := (Config{Enabled: true}).FillDefaults(); c.Dims != DefaultDims || c.RouteTerms != DefaultRouteTerms {
		t.Fatalf("FillDefaults left %+v", c)
	}
}

// TestHammingPacked cross-checks the packed 64-wide popcount path against a
// scalar recomputation on widths around the unrolling boundary.
func TestHammingPacked(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, dims := range []int{1, 63, 64, 65, 128, 130} {
		a, b := make(Vector, dims), make(Vector, dims)
		for i := range a {
			a[i], b[i] = int8(rng.Intn(256)-128), int8(rng.Intn(256)-128)
		}
		want := 0
		for i := range a {
			if (a[i] < 0) != (b[i] < 0) {
				want++
			}
		}
		if got := a.Hamming(b); got != want {
			t.Fatalf("dims %d: hamming %d, want %d", dims, got, want)
		}
	}
}
