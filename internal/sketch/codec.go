// Serialization and wire codecs for sketches.
//
// The serialized sketch (formatV1: a format byte, a uvarint width, then the
// int8 components) is the form that actually travels and is scored: postings
// carry it verbatim inside index.Encoded blocks, the postings cache accounts
// its bytes, and CosineBytes/HammingBytes rank candidates straight off the
// encoded payload. Decoding follows the wire package's safety discipline —
// every declared length is validated against the bytes remaining before any
// allocation is sized from it, and malformed input yields an error (or a
// zero score), never a panic.
package sketch

import (
	"encoding/binary"
	"fmt"
	"math"

	"github.com/spritedht/sprite/internal/wire"
)

// MarshalBinary encodes the vector in formatV1. It also serves gob via
// encoding.BinaryMarshaler, so the fallback codec ships identical bytes.
func (v Vector) MarshalBinary() ([]byte, error) {
	if len(v) > MaxDims {
		return nil, fmt.Errorf("sketch: %d dims exceeds max %d", len(v), MaxDims)
	}
	out := make([]byte, 0, 1+binary.MaxVarintLen16+len(v))
	out = append(out, formatV1)
	out = binary.AppendUvarint(out, uint64(len(v)))
	for _, q := range v {
		out = append(out, byte(q))
	}
	return out, nil
}

// UnmarshalBinary decodes a formatV1 payload, rejecting malformed input
// with an error and leaving v empty. It never panics on arbitrary bytes
// (FuzzSketch pins this).
func (v *Vector) UnmarshalBinary(data []byte) error {
	*v = nil
	if len(data) == 0 {
		return fmt.Errorf("sketch: empty payload")
	}
	if data[0] != formatV1 {
		return fmt.Errorf("sketch: unknown format byte 0x%02x", data[0])
	}
	dims, k := binary.Uvarint(data[1:])
	if k <= 0 {
		return fmt.Errorf("sketch: truncated dims")
	}
	if len(binary.AppendUvarint(nil, dims)) != k {
		return fmt.Errorf("sketch: non-canonical dims encoding")
	}
	off := 1 + k
	if dims > MaxDims {
		return fmt.Errorf("sketch: %d dims exceeds max %d", dims, MaxDims)
	}
	if uint64(len(data)-off) != dims {
		return fmt.Errorf("sketch: %d dims but %d component bytes", dims, len(data)-off)
	}
	if dims == 0 {
		return nil // the zero-width vector decodes to nil, mirroring encode
	}
	q := make(Vector, dims)
	for i := range q {
		q[i] = int8(data[off+i])
	}
	*v = q
	return nil
}

// components returns the int8 payload of a serialized sketch without
// allocating, or ok=false when the bytes are not a well-formed formatV1
// vector.
func components(b []byte) (comp []byte, ok bool) {
	if len(b) == 0 || b[0] != formatV1 {
		return nil, false
	}
	dims, k := binary.Uvarint(b[1:])
	if k <= 0 || dims > MaxDims {
		return nil, false
	}
	off := 1 + k
	if uint64(len(b)-off) != dims {
		return nil, false
	}
	return b[off:], true
}

// Valid reports whether b is a well-formed serialized sketch.
func Valid(b []byte) bool {
	_, ok := components(b)
	return ok
}

// CosineBytes scores two serialized sketches without decoding them into
// vectors: integer dot and norms over the raw component bytes, one float
// division at the end. Malformed input or mismatched widths score 0 — a
// candidate with a garbage sketch ranks last, it cannot fail the query.
func CosineBytes(a, b []byte) float64 {
	ca, ok := components(a)
	if !ok {
		return 0
	}
	cb, ok := components(b)
	if !ok || len(ca) != len(cb) || len(ca) == 0 {
		return 0
	}
	var dot, na, nb int64
	for i := range ca {
		x, y := int64(int8(ca[i])), int64(int8(cb[i]))
		dot += x * y
		na += x * x
		nb += y * y
	}
	if na == 0 || nb == 0 {
		return 0
	}
	return float64(dot) / math.Sqrt(float64(na)*float64(nb))
}

// HammingBytes is the sign-distance of two serialized sketches. Malformed
// input or mismatched widths return the maximal distance MaxDims + 1.
func HammingBytes(a, b []byte) int {
	ca, ok := components(a)
	if !ok {
		return MaxDims + 1
	}
	cb, ok := components(b)
	if !ok || len(ca) != len(cb) {
		return MaxDims + 1
	}
	d := 0
	for i := range ca {
		if (int8(ca[i]) < 0) != (int8(cb[i]) < 0) {
			d++
		}
	}
	return d
}

// The standalone wire codec: a Vector payload travels under its own kind on
// the binary path, and as its MarshalBinary bytes under gob — the two codecs
// agree byte-for-byte on the embedded serialized form (FuzzSketchCodec).
func init() {
	wire.RegisterBinary(wire.KindSketchBase+0, Vector(nil),
		func(e *wire.Encoder, v any) {
			raw, _ := v.(Vector).MarshalBinary()
			e.Uint(uint64(len(raw)))
			e.Raw(raw)
		},
		func(d *wire.Decoder) any {
			var v Vector
			n := d.Uint()
			if n > uint64(d.Remaining()) {
				d.Fail(fmt.Errorf("sketch: payload length %d exceeds %d remaining bytes", n, d.Remaining()))
				return v
			}
			raw := d.Raw(int(n))
			if d.Err() != nil {
				return v
			}
			if err := v.UnmarshalBinary(raw); err != nil {
				d.Fail(err)
			}
			return v
		})
}
