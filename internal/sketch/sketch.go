// Package sketch builds fixed-width, quantized feature vectors for
// documents — the compact per-document metadata that lets SPRITE's overlay
// answer vector-similarity queries without a second routing structure
// (ROADMAP: "Beyond keyword search"; Müller et al. compare exactly this
// workload across P2P systems, and the BitTorrent-DHT indexing paper is the
// reference for keeping such metadata DHT-cheap).
//
// A sketch is a random projection of the document's weighted term vector
// onto Dims pseudo-random ±1 directions, quantized to int8. Projection
// directions are derived purely from (Seed, term, dimension) through
// splitmix64, so any two peers — or any two runs — sketch the same document
// to byte-identical vectors with no shared state beyond the configuration.
// Accumulation folds terms in sorted order, pinning float addition order the
// same way the query path pins scoring order (see DESIGN.md § Determinism).
//
// The serialized form is scored directly: Cosine and Hamming operate on the
// encoded bytes with integer arithmetic (one float division at the end), so
// re-ranking a candidate stream never materializes a decoded vector. Both
// tolerate malformed bytes — a garbage sketch scores zero, it never panics
// (FuzzSketch pins this).
package sketch

import (
	"fmt"
	"math"
	"math/bits"
	"sort"
)

const (
	// formatV1 tags the serialized sketch layout:
	//
	//	byte   formatV1
	//	uvarint dims        1 <= dims <= MaxDims
	//	dims bytes          int8 components, two's complement
	formatV1 = 0x01
	// MaxDims bounds the vector width: wide enough for high-fidelity
	// sketches, small enough that a hostile length can never size a large
	// allocation.
	MaxDims = 1024
	// DefaultDims balances fidelity against per-posting weight: at 128
	// int8 components a sketch rides a posting for ~131 bytes and keeps
	// quantized cosine within a few hundredths of the float projection.
	DefaultDims = 128
	// DefaultRouteTerms is how many of a query document's most frequent
	// terms route candidate retrieval in core.SearchSimilar.
	DefaultRouteTerms = 6
)

// Config tunes sketching. The zero value is disabled; Enabled with zero
// fields gets the defaults.
type Config struct {
	// Enabled turns sketching on: shared documents carry a sketch in every
	// posting, and the similarity query path becomes available.
	Enabled bool
	// Dims is the number of int8 components per sketch (default 128,
	// max MaxDims).
	Dims int
	// RouteTerms is how many of the query document's most frequent terms
	// are used to fetch candidate postings in a similarity search
	// (default 6).
	RouteTerms int
	// Seed parameterizes the projection directions. Every peer of a
	// deployment must use the same value; the zero value is a fixed
	// published constant, not a random draw.
	Seed uint64
	// Refine, when positive, adds an exact re-ranking stage to similarity
	// queries: the top Refine candidates by sketch cosine have their full
	// term vectors fetched from their owner peers (one message each) and are
	// re-scored by exact weighted cosine before the final top-k cut. Zero
	// ranks by sketch cosine alone. The sketch stays the cheap first-stage
	// filter either way; Refine trades messages for the last few points of
	// recall the int8 quantization costs.
	Refine int
}

// FillDefaults resolves zero fields of an enabled configuration.
func (c Config) FillDefaults() Config {
	if !c.Enabled {
		return c
	}
	if c.Dims == 0 {
		c.Dims = DefaultDims
	}
	if c.RouteTerms == 0 {
		c.RouteTerms = DefaultRouteTerms
	}
	return c
}

// Validate rejects unusable configurations.
func (c Config) Validate() error {
	if !c.Enabled {
		return nil
	}
	switch {
	case c.Dims < 1 || c.Dims > MaxDims:
		return fmt.Errorf("sketch: Dims = %d, need 1..%d", c.Dims, MaxDims)
	case c.RouteTerms < 1:
		return fmt.Errorf("sketch: RouteTerms = %d, need >= 1", c.RouteTerms)
	case c.Refine < 0:
		return fmt.Errorf("sketch: Refine = %d, need >= 0", c.Refine)
	}
	return nil
}

// Vector is a quantized sketch: Dims int8 components. The zero-length
// vector is "no sketch".
type Vector []int8

// Sketcher projects term vectors into quantized sketches under one
// configuration. It is stateless and safe for concurrent use.
type Sketcher struct {
	dims int
	seed uint64
}

// New builds a Sketcher from cfg (which must be enabled and valid).
func New(cfg Config) (*Sketcher, error) {
	cfg = cfg.FillDefaults()
	if !cfg.Enabled {
		return nil, fmt.Errorf("sketch: config not enabled")
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Sketcher{dims: cfg.Dims, seed: cfg.Seed}, nil
}

// Dims returns the configured vector width.
func (s *Sketcher) Dims() int { return s.dims }

// splitmix64 is the standard 64-bit mixing step — a full-period,
// well-distributed permutation used here as the deterministic source of
// projection directions.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// termSeed hashes (seed, term) into the starting state of the term's
// direction stream (FNV-1a folded with the configured seed).
func (s *Sketcher) termSeed(term string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64) ^ s.seed
	for i := 0; i < len(term); i++ {
		h ^= uint64(term[i])
		h *= prime64
	}
	return h
}

// Project accumulates the weighted term vector's projection onto the
// pseudo-random ±1 directions, before quantization. Terms fold in sorted
// order so the float accumulation order — and hence the exact bits — is a
// pure function of the term-frequency map's contents.
func (s *Sketcher) Project(tf map[string]int) []float64 {
	acc := make([]float64, s.dims)
	terms := make([]string, 0, len(tf))
	for t, f := range tf {
		if f > 0 {
			terms = append(terms, t)
		}
	}
	sort.Strings(terms)
	for _, t := range terms {
		w := 1 + math.Log10(float64(tf[t]))
		state := s.termSeed(t)
		var word uint64
		for d := 0; d < s.dims; d++ {
			if d%64 == 0 {
				state = splitmix64(state)
				word = state
			}
			if word&1 == 1 {
				acc[d] += w
			} else {
				acc[d] -= w
			}
			word >>= 1
		}
	}
	return acc
}

// Quantize scales a projection to int8: the largest-magnitude component
// maps to ±127 and the rest scale linearly, rounding half away from zero.
// An all-zero projection quantizes to the zero vector.
func Quantize(acc []float64) Vector {
	maxAbs := 0.0
	for _, v := range acc {
		if a := math.Abs(v); a > maxAbs {
			maxAbs = a
		}
	}
	q := make(Vector, len(acc))
	if maxAbs == 0 {
		return q
	}
	for i, v := range acc {
		q[i] = int8(math.Round(127 * v / maxAbs))
	}
	return q
}

// Sketch projects and quantizes a document's term-frequency vector.
// Identical inputs produce byte-identical sketches on every run and peer.
func (s *Sketcher) Sketch(tf map[string]int) Vector {
	return Quantize(s.Project(tf))
}

// SketchBytes is Sketch in serialized form — what rides inside a posting.
func (s *Sketcher) SketchBytes(tf map[string]int) []byte {
	b, _ := s.Sketch(tf).MarshalBinary()
	return b
}

// FloatCosine is the float64 cosine of two projections — the reference the
// quantized scorer is property-tested against.
func FloatCosine(a, b []float64) float64 {
	if len(a) != len(b) || len(a) == 0 {
		return 0
	}
	var dot, na, nb float64
	for i := range a {
		dot += a[i] * b[i]
		na += a[i] * a[i]
		nb += b[i] * b[i]
	}
	if na == 0 || nb == 0 {
		return 0
	}
	return dot / math.Sqrt(na*nb)
}

// Cosine is the exact cosine similarity of two quantized vectors: the dot
// product and norms are integer sums (int8·int8 cannot overflow int64 at
// MaxDims), with a single float division at the end — bit-identical
// wherever it is computed.
func (v Vector) Cosine(o Vector) float64 {
	if len(v) != len(o) || len(v) == 0 {
		return 0
	}
	var dot, nv, no int64
	for i := range v {
		a, b := int64(v[i]), int64(o[i])
		dot += a * b
		nv += a * a
		no += b * b
	}
	if nv == 0 || no == 0 {
		return 0
	}
	return float64(dot) / math.Sqrt(float64(nv)*float64(no))
}

// Hamming is the sign-distance of two quantized vectors: the number of
// dimensions whose sign bits differ (a zero component counts as
// non-negative). Mismatched widths return Dims-agnostic max: len(v)+len(o).
func (v Vector) Hamming(o Vector) int {
	if len(v) != len(o) {
		return len(v) + len(o)
	}
	d := 0
	i := 0
	// Pack sign bits 64 at a time and popcount the XOR.
	for ; i+64 <= len(v); i += 64 {
		var a, b uint64
		for j := 0; j < 64; j++ {
			if v[i+j] < 0 {
				a |= 1 << uint(j)
			}
			if o[i+j] < 0 {
				b |= 1 << uint(j)
			}
		}
		d += bits.OnesCount64(a ^ b)
	}
	for ; i < len(v); i++ {
		if (v[i] < 0) != (o[i] < 0) {
			d++
		}
	}
	return d
}
