// Package telemetry is a dependency-free metrics and tracing substrate for
// the SPRITE stack. The paper's central quantities — index-construction cost,
// lookup hop counts, learning/maintenance overhead (§1, §6) — are exactly
// what a deployment must observe continuously, so every layer (transport,
// overlay, SPRITE core) records into a shared Registry of counters, gauges,
// and histograms, and query entry points open traces whose span trees show
// each Chord hop and peer handler with timings.
//
// Design constraints, in order:
//
//  1. Nil safety. Every method on every type is a no-op on a nil receiver,
//     and a nil *Registry hands out nil instruments. Instrumented code holds
//     plain instrument pointers and calls them unconditionally; when no
//     registry is installed the entire subsystem reduces to nil-check
//     branches (see the package benchmarks for the cost, which is within
//     noise of uninstrumented code).
//  2. Concurrency safety. Counters, gauges, and histograms are built on
//     atomics and may be hammered from any number of goroutines; the
//     registry itself uses an RWMutex only on the instrument-resolution
//     path, which callers are expected to do once and cache.
//  3. No dependencies. Only the standard library, and nothing heavier than
//     net/http (used solely by the optional snapshot endpoint).
package telemetry

import (
	"math"
	"math/bits"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric.
type Counter struct {
	v atomic.Int64
}

// Add increases the counter by n. No-op on a nil receiver.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increases the counter by one. No-op on a nil receiver.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (zero on a nil receiver).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a metric that can go up and down (e.g. peers alive, connections
// open). Alongside the current value it tracks the high-water mark, so a
// snapshot taken after a burst still shows how high the gauge went — the
// connection-pool experiments read peak open connections this way.
type Gauge struct {
	v    atomic.Int64
	peak atomic.Int64
}

// Set stores the gauge value. No-op on a nil receiver.
func (g *Gauge) Set(n int64) {
	if g == nil {
		return
	}
	g.v.Store(n)
	g.raisePeak(n)
}

// Add shifts the gauge by n. No-op on a nil receiver.
func (g *Gauge) Add(n int64) {
	if g == nil {
		return
	}
	g.raisePeak(g.v.Add(n))
}

// raisePeak lifts the high-water mark to at least v.
func (g *Gauge) raisePeak(v int64) {
	for {
		cur := g.peak.Load()
		if v <= cur || g.peak.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Peak returns the highest value the gauge has held (zero on a nil receiver
// or if the gauge never went positive).
func (g *Gauge) Peak() int64 {
	if g == nil {
		return 0
	}
	return g.peak.Load()
}

// Value returns the current value (zero on a nil receiver).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// histBuckets is the number of exponential histogram buckets: bucket 0 holds
// values <= 0, bucket i holds values in [2^(i-1), 2^i). 64-bit values need at
// most bits.Len64 = 64 significant-bit classes, plus the zero bucket.
const histBuckets = 65

// Histogram records an observed distribution of non-negative int64 values
// (hop counts, byte sizes, microsecond latencies) in exponential buckets,
// from which quantiles are estimated by intra-bucket interpolation. All
// operations are lock-free.
type Histogram struct {
	count   atomic.Int64
	sum     atomic.Int64
	min     atomic.Int64 // valid only when count > 0
	max     atomic.Int64
	buckets [histBuckets]atomic.Int64
}

// bucketIndex maps a value to its bucket: 0 for v <= 0, else bits.Len64(v).
func bucketIndex(v int64) int {
	if v <= 0 {
		return 0
	}
	return bits.Len64(uint64(v))
}

// newHistogram returns a histogram with min/max sentinels installed.
func newHistogram() *Histogram {
	h := &Histogram{}
	h.min.Store(math.MaxInt64)
	h.max.Store(math.MinInt64)
	return h
}

// Observe records one value. No-op on a nil receiver.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	h.buckets[bucketIndex(v)].Add(1)
	h.sum.Add(v)
	for {
		cur := h.min.Load()
		if v >= cur || h.min.CompareAndSwap(cur, v) {
			break
		}
	}
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			break
		}
	}
	h.count.Add(1)
}

// Min returns the smallest observed value (zero when empty or nil).
func (h *Histogram) Min() int64 {
	if h == nil || h.count.Load() == 0 {
		return 0
	}
	return h.min.Load()
}

// Max returns the largest observed value (zero when empty or nil).
func (h *Histogram) Max() int64 {
	if h == nil || h.count.Load() == 0 {
		return 0
	}
	return h.max.Load()
}

// Count returns the number of observations (zero on a nil receiver).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observed values (zero on a nil receiver).
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// Mean returns the arithmetic mean of observations (zero when empty or nil).
func (h *Histogram) Mean() float64 {
	if h == nil {
		return 0
	}
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return float64(h.sum.Load()) / float64(n)
}

// Quantile estimates the q-th quantile (0 <= q <= 1) from the bucket counts,
// interpolating linearly within the winning bucket and clamping to the
// observed min/max. Returns zero when empty or nil.
func (h *Histogram) Quantile(q float64) int64 {
	if h == nil {
		return 0
	}
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	if q <= 0 {
		return h.min.Load()
	}
	if q >= 1 {
		return h.max.Load()
	}
	target := q * float64(total)
	acc := 0.0
	est := h.max.Load()
	for i := 0; i < histBuckets; i++ {
		c := h.buckets[i].Load()
		if c == 0 {
			continue
		}
		acc += float64(c)
		if acc >= target {
			lo, hi := bucketBounds(i)
			// Position of the target within this bucket, in (0, 1].
			frac := 1 - (acc-target)/float64(c)
			est = lo + int64(frac*float64(hi-lo))
			break
		}
	}
	if mn := h.min.Load(); est < mn {
		est = mn
	}
	if mx := h.max.Load(); est > mx {
		est = mx
	}
	return est
}

// bucketBounds returns the value range [lo, hi] covered by bucket i.
func bucketBounds(i int) (lo, hi int64) {
	if i == 0 {
		return 0, 0
	}
	lo = int64(1) << (i - 1)
	if i >= 63 {
		return lo, math.MaxInt64
	}
	return lo, int64(1)<<i - 1
}

// Registry holds named instruments and completed traces. The zero value is
// not usable; create one with NewRegistry. A nil *Registry is a valid "off
// switch": it resolves every instrument to nil and starts nil traces.
type Registry struct {
	mu       sync.RWMutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram

	tmu      sync.Mutex
	traces   []*Trace // completed traces, oldest first, bounded by traceCap
	traceCap int
}

// DefaultTraceCap bounds the completed traces a registry retains.
const DefaultTraceCap = 32

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
		traceCap: DefaultTraceCap,
	}
}

// Counter returns the named counter, creating it on first use. Returns nil
// (a valid no-op instrument) on a nil registry.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	c, ok := r.counters[name]
	r.mu.RUnlock()
	if ok {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok = r.counters[name]; ok {
		return c
	}
	c = &Counter{}
	r.counters[name] = c
	return c
}

// Gauge returns the named gauge, creating it on first use. Returns nil on a
// nil registry.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	g, ok := r.gauges[name]
	r.mu.RUnlock()
	if ok {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok = r.gauges[name]; ok {
		return g
	}
	g = &Gauge{}
	r.gauges[name] = g
	return g
}

// Histogram returns the named histogram, creating it on first use. Returns
// nil on a nil registry.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	h, ok := r.hists[name]
	r.mu.RUnlock()
	if ok {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok = r.hists[name]; ok {
		return h
	}
	h = newHistogram()
	r.hists[name] = h
	return h
}
