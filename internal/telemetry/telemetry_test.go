package telemetry

import (
	"bytes"
	"encoding/json"
	"math"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c")
	c.Inc()
	c.Add(41)
	if got := c.Value(); got != 42 {
		t.Fatalf("counter = %d, want 42", got)
	}
	if r.Counter("c") != c {
		t.Fatal("second resolution returned a different counter")
	}

	g := r.Gauge("g")
	g.Set(10)
	g.Add(-3)
	if got := g.Value(); got != 7 {
		t.Fatalf("gauge = %d, want 7", got)
	}
	if r.Gauge("g") != g {
		t.Fatal("second resolution returned a different gauge")
	}
}

func TestNilSafety(t *testing.T) {
	var r *Registry
	c := r.Counter("x")
	c.Inc()
	c.Add(5)
	if c.Value() != 0 {
		t.Fatal("nil counter has a value")
	}
	g := r.Gauge("x")
	g.Set(3)
	g.Add(1)
	if g.Value() != 0 {
		t.Fatal("nil gauge has a value")
	}
	h := r.Histogram("x")
	h.Observe(9)
	if h.Count() != 0 || h.Sum() != 0 || h.Mean() != 0 || h.Min() != 0 || h.Max() != 0 || h.Quantile(0.5) != 0 {
		t.Fatal("nil histogram recorded something")
	}

	tr := r.StartTrace("q")
	sp := tr.Root()
	child := sp.StartChild("hop")
	child.Annotate("k", "v")
	child.Finish()
	if sp.SpanCount() != 0 || sp.Name() != "" || sp.Duration() != 0 {
		t.Fatal("nil span not inert")
	}
	tr.Finish()
	if got := tr.Snapshot(); got.Root.Name != "" {
		t.Fatal("nil trace snapshot not empty")
	}
	if r.Traces() != nil {
		t.Fatal("nil registry retains traces")
	}

	snap := r.Snapshot()
	if len(snap.Counters) != 0 || len(snap.Traces) != 0 {
		t.Fatal("nil registry snapshot not empty")
	}
	var buf bytes.Buffer
	if err := snap.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
}

func TestHistogramStats(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h")
	for v := int64(1); v <= 100; v++ {
		h.Observe(v)
	}
	if h.Count() != 100 {
		t.Fatalf("count = %d", h.Count())
	}
	if h.Sum() != 5050 {
		t.Fatalf("sum = %d", h.Sum())
	}
	if h.Mean() != 50.5 {
		t.Fatalf("mean = %v", h.Mean())
	}
	if h.Min() != 1 || h.Max() != 100 {
		t.Fatalf("min/max = %d/%d", h.Min(), h.Max())
	}
	// Exponential buckets give coarse quantiles; require the right ballpark.
	if p50 := h.Quantile(0.5); p50 < 32 || p50 > 80 {
		t.Fatalf("p50 = %d, want within [32, 80]", p50)
	}
	if p99 := h.Quantile(0.99); p99 < 64 || p99 > 100 {
		t.Fatalf("p99 = %d, want within [64, 100]", p99)
	}
	if q0 := h.Quantile(-1); q0 != 1 {
		t.Fatalf("clamped q<0 = %d, want min", q0)
	}
	if q1 := h.Quantile(2); q1 != 100 {
		t.Fatalf("clamped q>1 = %d, want max", q1)
	}
}

func TestHistogramEdgeValues(t *testing.T) {
	h := newHistogram()
	h.Observe(0)
	h.Observe(-5)
	h.Observe(math.MaxInt64)
	if h.Count() != 3 {
		t.Fatalf("count = %d", h.Count())
	}
	if h.Min() != -5 || h.Max() != math.MaxInt64 {
		t.Fatalf("min/max = %d/%d", h.Min(), h.Max())
	}
	if got := h.Quantile(0); got != -5 {
		t.Fatalf("q0 = %d", got)
	}
	if got := h.Quantile(1); got != math.MaxInt64 {
		t.Fatalf("q1 = %d", got)
	}
	// Bucket bounds sanity.
	if lo, hi := bucketBounds(0); lo != 0 || hi != 0 {
		t.Fatalf("bucket 0 bounds = [%d, %d]", lo, hi)
	}
	if _, hi := bucketBounds(64); hi != math.MaxInt64 {
		t.Fatalf("top bucket hi = %d, want MaxInt64", hi)
	}
	if lo, hi := bucketBounds(3); lo != 4 || hi != 7 {
		t.Fatalf("bucket 3 bounds = [%d, %d]", lo, hi)
	}
}

// TestConcurrentWriters hammers one registry from many goroutines; run with
// -race this is the concurrency regression test for the whole package.
func TestConcurrentWriters(t *testing.T) {
	r := NewRegistry()
	const goroutines = 16
	const perG = 500
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				r.Counter("shared.counter").Inc()
				r.Gauge("shared.gauge").Set(int64(i))
				r.Histogram("shared.hist").Observe(int64(i % 128))
				tr := r.StartTrace("trace")
				sp := tr.Root().StartChild("child")
				sp.Annotate("g", "x")
				sp.Finish()
				tr.Finish()
				if i%100 == 0 {
					r.Snapshot()
				}
			}
		}(g)
	}
	wg.Wait()
	if got := r.Counter("shared.counter").Value(); got != goroutines*perG {
		t.Fatalf("counter = %d, want %d", got, goroutines*perG)
	}
	h := r.Histogram("shared.hist")
	if h.Count() != goroutines*perG {
		t.Fatalf("hist count = %d", h.Count())
	}
	if h.Min() != 0 || h.Max() != 127 {
		t.Fatalf("hist min/max = %d/%d", h.Min(), h.Max())
	}
	if got := len(r.Traces()); got != DefaultTraceCap {
		t.Fatalf("retained traces = %d, want cap %d", got, DefaultTraceCap)
	}
}

func TestTraceTree(t *testing.T) {
	r := NewRegistry()
	tr := r.StartTrace("sprite.search")
	root := tr.Root()
	root.Annotate("query", "chord lookup")
	hop1 := root.StartChild("chord.hop")
	hop1.Annotate("to", "peer3")
	time.Sleep(time.Millisecond)
	hop1.Finish()
	fetch := root.StartChild("sprite.get_postings")
	fetch.Finish()
	fetch.Finish() // double-finish keeps first end time
	tr.Finish()

	if root.Name() != "sprite.search" {
		t.Fatalf("root name = %q", root.Name())
	}
	if got := root.SpanCount(); got != 3 {
		t.Fatalf("span count = %d, want 3", got)
	}
	if root.Duration() <= 0 || hop1.Duration() < time.Millisecond {
		t.Fatalf("durations not recorded: root=%v hop=%v", root.Duration(), hop1.Duration())
	}
	traces := r.Traces()
	if len(traces) != 1 {
		t.Fatalf("retained %d traces", len(traces))
	}
	snap := traces[0].Snapshot()
	if len(snap.Root.Children) != 2 || snap.Root.Children[0].Name != "chord.hop" {
		t.Fatalf("snapshot tree wrong: %+v", snap.Root)
	}
	if len(snap.Root.Attrs) != 1 || snap.Root.Attrs[0].Key != "query" {
		t.Fatalf("attrs not exported: %+v", snap.Root.Attrs)
	}
}

func TestTraceCapEviction(t *testing.T) {
	r := NewRegistry()
	for i := 0; i < DefaultTraceCap+5; i++ {
		r.StartTrace("t").Finish()
	}
	if got := len(r.Traces()); got != DefaultTraceCap {
		t.Fatalf("retained %d traces, want %d", got, DefaultTraceCap)
	}
}

func TestSnapshotExport(t *testing.T) {
	r := NewRegistry()
	r.Counter("simnet.calls.chord.next_hop").Add(12)
	r.Counter("simnet.bytes.chord.next_hop").Add(340)
	r.Gauge("peers.alive").Set(16)
	h := r.Histogram("chord.lookup.hops")
	for _, v := range []int64{1, 2, 2, 3, 4} {
		h.Observe(v)
	}
	tr := r.StartTrace("sprite.search")
	tr.Root().StartChild("chord.hop").Finish()
	tr.Finish()

	snap := r.Snapshot()
	if snap.Counters["simnet.calls.chord.next_hop"] != 12 {
		t.Fatalf("counter missing from snapshot: %+v", snap.Counters)
	}
	if snap.Gauges["peers.alive"] != 16 {
		t.Fatalf("gauge missing: %+v", snap.Gauges)
	}
	hs := snap.Histograms["chord.lookup.hops"]
	if hs.Count != 5 || hs.Min != 1 || hs.Max != 4 {
		t.Fatalf("hist snapshot wrong: %+v", hs)
	}
	if len(snap.Traces) != 1 {
		t.Fatalf("traces = %d", len(snap.Traces))
	}

	var text bytes.Buffer
	if err := snap.WriteText(&text); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"chord.lookup.hops",
		"simnet.bytes.chord.next_hop",
		"peers.alive",
		"trace 1 (2 spans):",
		"sprite.search",
	} {
		if !strings.Contains(text.String(), want) {
			t.Errorf("text report missing %q:\n%s", want, text.String())
		}
	}

	var js bytes.Buffer
	if err := snap.WriteJSON(&js); err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(js.Bytes(), &back); err != nil {
		t.Fatalf("round-trip: %v", err)
	}
	if back.Counters["simnet.calls.chord.next_hop"] != 12 || back.Histograms["chord.lookup.hops"].Count != 5 {
		t.Fatalf("JSON round-trip lost data: %+v", back)
	}
}

func TestHTTPHandler(t *testing.T) {
	r := NewRegistry()
	r.Counter("net.calls.sprite.publish").Add(7)

	req := httptest.NewRequest("GET", "/telemetry", nil)
	rec := httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, req)
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
		t.Fatalf("content type = %q", ct)
	}
	var snap Snapshot
	if err := json.Unmarshal(rec.Body.Bytes(), &snap); err != nil {
		t.Fatalf("bad JSON body: %v", err)
	}
	if snap.Counters["net.calls.sprite.publish"] != 7 {
		t.Fatalf("handler snapshot wrong: %+v", snap.Counters)
	}

	rec = httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/telemetry?format=text", nil))
	if !strings.Contains(rec.Body.String(), "net.calls.sprite.publish") {
		t.Fatalf("text endpoint missing counter:\n%s", rec.Body.String())
	}

	// A nil registry serves empty snapshots rather than crashing.
	var nilReg *Registry
	rec = httptest.NewRecorder()
	nilReg.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/telemetry", nil))
	if rec.Code != 200 {
		t.Fatalf("nil registry endpoint status = %d", rec.Code)
	}
}

// BenchmarkCounterDisabled measures the nil fast path instrumented code pays
// when no registry is installed.
func BenchmarkCounterDisabled(b *testing.B) {
	var r *Registry
	c := r.Counter("x")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Add(1)
	}
}

// BenchmarkCounterEnabled measures the atomic-add hot path.
func BenchmarkCounterEnabled(b *testing.B) {
	c := NewRegistry().Counter("x")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Add(1)
	}
}

// BenchmarkHistogramObserve measures one observation.
func BenchmarkHistogramObserve(b *testing.B) {
	h := NewRegistry().Histogram("x")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(int64(i & 1023))
	}
}

// BenchmarkRegistryResolve measures resolving an instrument by name (call
// sites are expected to cache, but per-message-type lookups take this path).
func BenchmarkRegistryResolve(b *testing.B) {
	r := NewRegistry()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Counter("simnet.calls.chord.next_hop")
	}
}
