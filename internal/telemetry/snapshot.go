package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"time"
)

// Snapshot is a point-in-time, immutable export of a registry: every
// instrument's current value plus the retained trace trees. It marshals
// directly to JSON and renders as a text report with WriteText.
type Snapshot struct {
	Counters   map[string]int64        `json:"counters,omitempty"`
	Gauges     map[string]int64        `json:"gauges,omitempty"`
	GaugePeaks map[string]int64        `json:"gauge_peaks,omitempty"`
	Histograms map[string]HistSnapshot `json:"histograms,omitempty"`
	Traces     []TraceSnapshot         `json:"traces,omitempty"`
}

// HistSnapshot summarizes one histogram.
type HistSnapshot struct {
	Count int64   `json:"count"`
	Sum   int64   `json:"sum"`
	Min   int64   `json:"min"`
	Max   int64   `json:"max"`
	Mean  float64 `json:"mean"`
	P50   int64   `json:"p50"`
	P90   int64   `json:"p90"`
	P99   int64   `json:"p99"`
}

// TraceSnapshot is one exported trace tree.
type TraceSnapshot struct {
	Root SpanSnapshot `json:"root"`
}

// SpanSnapshot is one exported span.
type SpanSnapshot struct {
	Name     string         `json:"name"`
	Start    time.Time      `json:"start"`
	Duration time.Duration  `json:"duration_ns"`
	Attrs    []Attr         `json:"attrs,omitempty"`
	Children []SpanSnapshot `json:"children,omitempty"`
}

// Snapshot exports the registry's current state. On a nil registry it
// returns an empty snapshot, so exporters need no guards either.
func (r *Registry) Snapshot() Snapshot {
	out := Snapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]int64{},
		GaugePeaks: map[string]int64{},
		Histograms: map[string]HistSnapshot{},
	}
	if r == nil {
		return out
	}
	r.mu.RLock()
	for name, c := range r.counters {
		out.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		out.Gauges[name] = g.Value()
		if p := g.Peak(); p != g.Value() {
			out.GaugePeaks[name] = p
		}
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for name, h := range r.hists {
		hists[name] = h
	}
	r.mu.RUnlock()
	for name, h := range hists {
		out.Histograms[name] = HistSnapshot{
			Count: h.Count(),
			Sum:   h.Sum(),
			Min:   h.Min(),
			Max:   h.Max(),
			Mean:  h.Mean(),
			P50:   h.Quantile(0.50),
			P90:   h.Quantile(0.90),
			P99:   h.Quantile(0.99),
		}
	}
	for _, t := range r.Traces() {
		out.Traces = append(out.Traces, t.Snapshot())
	}
	return out
}

// WriteJSON writes the snapshot as indented JSON.
func (s Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// WriteText renders the snapshot as a human-readable report: counters and
// gauges sorted by name, histogram quantile summaries, then each retained
// trace as an indented span tree.
func (s Snapshot) WriteText(w io.Writer) error {
	var b strings.Builder
	b.WriteString("== telemetry report ==\n")
	if len(s.Counters) > 0 {
		b.WriteString("counters:\n")
		for _, name := range sortedNames(s.Counters) {
			fmt.Fprintf(&b, "  %-44s %12d\n", name, s.Counters[name])
		}
	}
	if len(s.Gauges) > 0 {
		b.WriteString("gauges:\n")
		for _, name := range sortedNames(s.Gauges) {
			fmt.Fprintf(&b, "  %-44s %12d\n", name, s.Gauges[name])
		}
	}
	if len(s.Histograms) > 0 {
		b.WriteString("histograms:          count      mean       min       p50       p90       p99       max\n")
		names := make([]string, 0, len(s.Histograms))
		for n := range s.Histograms {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, name := range names {
			h := s.Histograms[name]
			fmt.Fprintf(&b, "  %s\n    %10d %9.2f %9d %9d %9d %9d %9d\n",
				name, h.Count, h.Mean, h.Min, h.P50, h.P90, h.P99, h.Max)
		}
	}
	for i, t := range s.Traces {
		fmt.Fprintf(&b, "trace %d (%d spans):\n", i+1, t.Root.spanCount())
		writeSpan(&b, t.Root, 1)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func (s SpanSnapshot) spanCount() int {
	n := 1
	for _, c := range s.Children {
		n += c.spanCount()
	}
	return n
}

func writeSpan(b *strings.Builder, s SpanSnapshot, depth int) {
	b.WriteString(strings.Repeat("  ", depth))
	fmt.Fprintf(b, "%s (%v)", s.Name, s.Duration.Round(time.Microsecond))
	for _, a := range s.Attrs {
		fmt.Fprintf(b, " %s=%s", a.Key, a.Value)
	}
	b.WriteByte('\n')
	for _, c := range s.Children {
		writeSpan(b, c, depth+1)
	}
}

func sortedNames(m map[string]int64) []string {
	names := make([]string, 0, len(m))
	for n := range m {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Handler returns an expvar-style HTTP endpoint serving the registry's
// current snapshot. "?format=text" returns the text report; the default is
// JSON. Works (serving empty snapshots) on a nil registry.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		snap := r.Snapshot()
		if req.URL.Query().Get("format") == "text" {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			snap.WriteText(w)
			return
		}
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		snap.WriteJSON(w)
	})
}
