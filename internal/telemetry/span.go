package telemetry

import (
	"sync"
	"time"
)

// Attr is one key/value annotation on a span.
type Attr struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// Span is one timed operation in a trace tree: a query, one Chord hop, one
// peer handler invocation. Spans are created with StartChild (or by
// Registry.StartTrace for roots), annotated while open, and closed with
// Finish. All methods are safe for concurrent use and no-ops on a nil
// receiver, so instrumented code can thread a possibly-nil span without
// guards.
type Span struct {
	mu       sync.Mutex
	name     string
	start    time.Time
	end      time.Time
	attrs    []Attr
	children []*Span
}

func newSpan(name string) *Span {
	return &Span{name: name, start: time.Now()}
}

// StartChild opens a sub-span under s. Returns nil on a nil receiver.
func (s *Span) StartChild(name string) *Span {
	if s == nil {
		return nil
	}
	c := newSpan(name)
	s.mu.Lock()
	s.children = append(s.children, c)
	s.mu.Unlock()
	return c
}

// Annotate attaches a key/value pair to the span. No-op on a nil receiver.
func (s *Span) Annotate(key, value string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.attrs = append(s.attrs, Attr{Key: key, Value: value})
	s.mu.Unlock()
}

// Finish closes the span, fixing its duration. Finishing twice keeps the
// first end time. No-op on a nil receiver.
func (s *Span) Finish() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.end.IsZero() {
		s.end = time.Now()
	}
	s.mu.Unlock()
}

// Name returns the span's name (empty on a nil receiver).
func (s *Span) Name() string {
	if s == nil {
		return ""
	}
	return s.name
}

// Duration returns the span's elapsed time: end-start once finished, the
// running duration while open, zero on a nil receiver.
func (s *Span) Duration() time.Duration {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.end.IsZero() {
		return time.Since(s.start)
	}
	return s.end.Sub(s.start)
}

// snapshotLocked converts the span subtree to its immutable export form.
func (s *Span) snapshot() SpanSnapshot {
	s.mu.Lock()
	out := SpanSnapshot{
		Name:     s.name,
		Start:    s.start,
		Duration: s.end.Sub(s.start),
		Attrs:    append([]Attr(nil), s.attrs...),
	}
	if s.end.IsZero() {
		out.Duration = time.Since(s.start)
	}
	children := append([]*Span(nil), s.children...)
	s.mu.Unlock()
	for _, c := range children {
		out.Children = append(out.Children, c.snapshot())
	}
	return out
}

// SpanCount returns the number of spans in the subtree rooted at s,
// including s itself (zero on a nil receiver).
func (s *Span) SpanCount() int {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	children := append([]*Span(nil), s.children...)
	s.mu.Unlock()
	n := 1
	for _, c := range children {
		n += c.SpanCount()
	}
	return n
}

// Trace is one query's span tree plus the registry it reports to. A nil
// *Trace is valid and inert.
type Trace struct {
	reg  *Registry
	root *Span
}

// StartTrace opens a new trace rooted at a span with the given name. On a
// nil registry it returns nil, which every Trace and Span method accepts.
func (r *Registry) StartTrace(name string) *Trace {
	if r == nil {
		return nil
	}
	return &Trace{reg: r, root: newSpan(name)}
}

// Root returns the trace's root span (nil on a nil trace).
func (t *Trace) Root() *Span {
	if t == nil {
		return nil
	}
	return t.root
}

// Finish closes the root span and files the completed trace in the
// registry's bounded recent-trace buffer. No-op on a nil trace.
func (t *Trace) Finish() {
	if t == nil {
		return
	}
	t.root.Finish()
	t.reg.tmu.Lock()
	t.reg.traces = append(t.reg.traces, t)
	if over := len(t.reg.traces) - t.reg.traceCap; over > 0 {
		t.reg.traces = append([]*Trace(nil), t.reg.traces[over:]...)
	}
	t.reg.tmu.Unlock()
}

// Snapshot exports the trace's span tree (zero value on a nil trace).
func (t *Trace) Snapshot() TraceSnapshot {
	if t == nil {
		return TraceSnapshot{}
	}
	return TraceSnapshot{Root: t.root.snapshot()}
}

// Traces returns the completed traces currently retained, oldest first.
// Empty on a nil registry.
func (r *Registry) Traces() []*Trace {
	if r == nil {
		return nil
	}
	r.tmu.Lock()
	defer r.tmu.Unlock()
	return append([]*Trace(nil), r.traces...)
}
