package core

import (
	"fmt"
	"reflect"
	"sync"
	"testing"
	"time"

	"github.com/spritedht/sprite/internal/chord"
	"github.com/spritedht/sprite/internal/chordid"
	"github.com/spritedht/sprite/internal/index"
	"github.com/spritedht/sprite/internal/simnet"
)

// cacheTestNetwork is testNetwork keeping the simnet handle, so tests can
// assert on per-message-type call counts.
func cacheTestNetwork(t testing.TB, peers int, cfg Config) (*Network, *simnet.Network) {
	t.Helper()
	net := simnet.New(1)
	ring := chord.NewRing(net, chord.Config{})
	if _, err := ring.AddNodes("p", peers); err != nil {
		t.Fatalf("AddNodes: %v", err)
	}
	ring.Build()
	n, err := NewNetwork(ring, cfg)
	if err != nil {
		t.Fatalf("NewNetwork: %v", err)
	}
	return n, net
}

// shareCacheCorpus shares a small fixed corpus round-robin across peers.
func shareCacheCorpus(t testing.TB, n *Network) {
	t.Helper()
	docs := []*corpusDoc{
		{"d1", map[string]int{"alpha": 9, "beta": 7, "gamma": 2}},
		{"d2", map[string]int{"alpha": 3, "delta": 8, "epsilon": 5}},
		{"d3", map[string]int{"beta": 6, "delta": 2, "zeta": 4}},
		{"d4", map[string]int{"gamma": 5, "epsilon": 1, "alpha": 2}},
	}
	peers := n.Peers()
	for i, d := range docs {
		if err := n.Share(peers[i%len(peers)].Addr(), doc(d.id, d.tf)); err != nil {
			t.Fatalf("Share %s: %v", d.id, err)
		}
	}
}

type corpusDoc struct {
	id string
	tf map[string]int
}

func TestWarmPostingsCacheZeroRemoteFetches(t *testing.T) {
	n, sim := cacheTestNetwork(t, 8, Config{
		Cache: CacheConfig{Enabled: true, DisableResults: true},
	})
	shareCacheCorpus(t, n)

	query := []string{"alpha", "delta"}
	first, err := n.Search("p0", query, 10)
	if err != nil {
		t.Fatalf("cold search: %v", err)
	}
	cold := sim.Stats().CallsByType[msgGetPostings]
	if cold == 0 {
		t.Fatal("cold search issued no postings fetches; test is vacuous")
	}

	second, err := n.Search("p0", query, 10)
	if err != nil {
		t.Fatalf("warm search: %v", err)
	}
	if got := sim.Stats().CallsByType[msgGetPostings]; got != cold {
		t.Fatalf("warm search issued %d remote postings fetches; want 0", got-cold)
	}
	if !reflect.DeepEqual(first, second) {
		t.Fatalf("warm result diverged:\ncold: %v\nwarm: %v", first, second)
	}
	st := n.PostingsCacheStats()
	if st.Hits != int64(len(query)) {
		t.Fatalf("postings cache hits = %d; want %d", st.Hits, len(query))
	}
}

func TestResultCacheServesRepeats(t *testing.T) {
	n, sim := cacheTestNetwork(t, 8, Config{
		Cache: CacheConfig{Enabled: true, ResultTTL: time.Hour},
	})
	shareCacheCorpus(t, n)

	query := []string{"beta", "gamma"}
	first, err := n.Search("p1", query, 5)
	if err != nil {
		t.Fatal(err)
	}
	before := sim.Stats()
	second, err := n.Search("p1", query, 5)
	if err != nil {
		t.Fatal(err)
	}
	after := sim.Stats()
	if !reflect.DeepEqual(first, second) {
		t.Fatalf("cached result diverged: %v vs %v", first, second)
	}
	if d := after.CallsByType[msgGetPostings] - before.CallsByType[msgGetPostings]; d != 0 {
		t.Fatalf("result-cache hit issued %d postings fetches; want 0", d)
	}
	if d := after.CallsByType["chord.next_hop"] - before.CallsByType["chord.next_hop"]; d != 0 {
		t.Fatalf("result-cache hit issued %d chord hops; want 0", d)
	}
	// A recorded hit still feeds the indexing peers' histories.
	if d := after.CallsByType[msgCacheQuery] - before.CallsByType[msgCacheQuery]; d != int64(len(query)) {
		t.Fatalf("result-cache hit recorded the query %d times; want %d", d, len(query))
	}
	if st := n.ResultCacheStats(); st.Hits != 1 {
		t.Fatalf("result cache hits = %d; want 1", st.Hits)
	}
	// Mutating the result list a caller got back must not corrupt the cache.
	if len(second) > 0 {
		second[0].Doc = "corrupted"
		third, _ := n.Search("p1", query, 5)
		if !reflect.DeepEqual(first, third) {
			t.Fatal("caller mutation leaked into the result cache")
		}
	}
}

// TestNoStalePostingsAfterMutations is the acceptance test that the cache
// never serves stale postings: a cache-on network must answer exactly like a
// cache-off twin after every kind of index mutation — publish (share),
// unshare, and learning-driven re-publication.
func TestNoStalePostingsAfterMutations(t *testing.T) {
	cacheOff, _ := cacheTestNetwork(t, 8, Config{InitialTerms: 2})
	cacheOn, _ := cacheTestNetwork(t, 8, Config{
		InitialTerms: 2,
		Cache:        CacheConfig{Enabled: true, ResultTTL: time.Hour},
	})
	nets := []*Network{cacheOff, cacheOn}

	step := func(label string, op func(n *Network) error) {
		t.Helper()
		for _, n := range nets {
			if err := op(n); err != nil {
				t.Fatalf("%s: %v", label, err)
			}
		}
		// Compare the full query surface after every mutation, twice per
		// network so the second round on cacheOn is served from warm caches.
		queries := [][]string{{"alpha"}, {"beta"}, {"delta"}, {"alpha", "delta"}, {"beta", "gamma", "zeta"}}
		for _, q := range queries {
			var lists []interface{}
			for _, n := range nets {
				for round := 0; round < 2; round++ {
					rl, err := n.Probe("p0", q, 10)
					if err != nil {
						t.Fatalf("%s: probe %v: %v", label, q, err)
					}
					lists = append(lists, rl)
				}
			}
			for i := 1; i < len(lists); i++ {
				if !reflect.DeepEqual(lists[0], lists[i]) {
					t.Fatalf("%s: query %v diverged between cache-on and cache-off:\n%v\nvs\n%v",
						label, q, lists[0], lists[i])
				}
			}
		}
	}

	step("share", func(n *Network) error {
		shareCacheCorpus(t, n)
		return nil
	})
	step("training", func(n *Network) error {
		for _, q := range [][]string{{"zeta", "delta"}, {"gamma"}, {"zeta"}, {"alpha", "gamma"}} {
			for i := 0; i < 3; i++ {
				if _, err := n.Search("p2", q, 10); err != nil {
					return err
				}
			}
		}
		return nil
	})
	step("learning", func(n *Network) error {
		_, err := n.LearnAll()
		return err
	})
	step("unshare", func(n *Network) error {
		return n.Unshare("d2")
	})
	step("reshare", func(n *Network) error {
		return n.Share("p3", doc("d2", map[string]int{"alpha": 3, "delta": 8, "epsilon": 5}))
	})
}

// TestHistoryParityWithCache proves caching is transparent to learning: the
// query histories every indexing peer accumulates — and hence the index
// terms learning selects — are identical with and without the caches.
func TestHistoryParityWithCache(t *testing.T) {
	cacheOff, _ := cacheTestNetwork(t, 8, Config{InitialTerms: 2})
	cacheOn, _ := cacheTestNetwork(t, 8, Config{
		InitialTerms: 2,
		Cache:        CacheConfig{Enabled: true, ResultTTL: time.Hour},
	})
	for _, n := range []*Network{cacheOff, cacheOn} {
		shareCacheCorpus(t, n)
		for _, q := range [][]string{{"alpha", "delta"}, {"alpha", "delta"}, {"beta"}, {"alpha", "delta"}, {"zeta", "beta"}} {
			if _, err := n.Search("p1", q, 10); err != nil {
				t.Fatal(err)
			}
		}
	}
	offPeers, onPeers := cacheOff.Peers(), cacheOn.Peers()
	for i := range offPeers {
		if off, on := offPeers[i].HistoryLen(), onPeers[i].HistoryLen(); off != on {
			t.Fatalf("peer %s history length: cache-off %d, cache-on %d", offPeers[i].Addr(), off, on)
		}
	}
	for _, n := range []*Network{cacheOff, cacheOn} {
		if _, err := n.LearnAll(); err != nil {
			t.Fatal(err)
		}
	}
	for _, id := range cacheOff.Documents() {
		off, _ := cacheOff.IndexedTerms(id)
		on, _ := cacheOn.IndexedTerms(id)
		if !reflect.DeepEqual(off, on) {
			t.Fatalf("learned terms for %s diverged: cache-off %v, cache-on %v", id, off, on)
		}
	}
}

// TestSingleflightOneFetchPerTerm is the acceptance test for coalescing:
// N concurrent identical cold queries issue exactly one remote postings
// fetch per term, and the coalesce counter reads N-1.
func TestSingleflightOneFetchPerTerm(t *testing.T) {
	n, sim := cacheTestNetwork(t, 8, Config{
		Cache: CacheConfig{Enabled: true, DisableResults: true},
	})
	shareCacheCorpus(t, n)
	// Probe from a peer other than the term's indexing peer: simnet does not
	// meter self-calls, so a local fetch would make the assertion vacuous.
	ref, _, err := n.Peers()[0].Node().Lookup(chordid.HashKey("epsilon"))
	if err != nil {
		t.Fatal(err)
	}
	from := simnet.Addr("p0")
	if ref.Addr == from {
		from = "p1"
	}
	// Pre-resolve nothing: the caches are cold, the ring is warm.
	base := sim.Stats().CallsByType[msgGetPostings]

	const callers = 12
	var wg sync.WaitGroup
	errs := make([]error, callers)
	for i := 0; i < callers; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, errs[i] = n.Probe(from, []string{"epsilon"}, 10)
		}()
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("caller %d: %v", i, err)
		}
	}

	if got := sim.Stats().CallsByType[msgGetPostings] - base; got != 1 {
		t.Fatalf("%d concurrent cold queries issued %d remote fetches; want exactly 1", callers, got)
	}
	st := n.PostingsCacheStats()
	if st.Hits+st.Coalesced != callers-1 || st.Misses != 1 {
		t.Fatalf("stats = %+v; want misses=1 and hits+coalesced=%d", st, callers-1)
	}
}

// TestConcurrentSearchPublishUnshare is the concurrency regression test: many
// goroutines exercise the full mutation and query surface at once; its value
// is running under -race (nothing like this existed before the cache layer).
func TestConcurrentSearchPublishUnshare(t *testing.T) {
	n, _ := cacheTestNetwork(t, 8, Config{
		InitialTerms: 2,
		Cache:        CacheConfig{Enabled: true, ResultTTL: time.Hour},
	})
	peers := n.Peers()
	terms := []string{"alpha", "beta", "gamma", "delta", "epsilon", "zeta"}

	var wg sync.WaitGroup
	for g := 0; g < 6; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				id := fmt.Sprintf("g%d-doc%d", g, i)
				tf := map[string]int{terms[(g+i)%len(terms)]: 5, terms[(g+i+1)%len(terms)]: 3}
				owner := peers[(g+i)%len(peers)].Addr()
				if err := n.Share(owner, doc(id, tf)); err != nil {
					t.Errorf("Share %s: %v", id, err)
					return
				}
				q := []string{terms[i%len(terms)], terms[(i+2)%len(terms)]}
				if _, err := n.Search(owner, q, 5); err != nil {
					t.Errorf("Search: %v", err)
					return
				}
				if i%3 == 0 {
					if err := n.Unshare(index.DocID(id)); err != nil {
						t.Errorf("Unshare %s: %v", id, err)
						return
					}
				}
				if i%7 == 0 {
					if _, err := n.LearnAll(); err != nil {
						t.Errorf("LearnAll: %v", err)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
}
