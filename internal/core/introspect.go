package core

import (
	"sort"

	"github.com/spritedht/sprite/internal/index"
	"github.com/spritedht/sprite/internal/simnet"
)

// This file exposes read-only introspection over a running network's
// distributed state — the ground truth invariant checkers (internal/chaos)
// compare against. Everything here reads under the same locks the message
// handlers take, so snapshots are internally consistent as long as the
// caller quiesces mutations (the chaos harness checks between operations).

// IndexEntry is one (indexing peer, term, posting) triple of the global
// index, from either the primary lists or the successor replicas.
type IndexEntry struct {
	Peer    simnet.Addr
	Term    string
	Posting index.Posting
}

// PrimarySnapshot returns every entry of every peer's primary inverted
// index, sorted by (peer, term, doc). Failed peers' in-memory state is
// included — the simulator retains it, exactly like a crashed-but-
// recoverable process — so checkers can reason about what will resurface on
// recovery.
func (n *Network) PrimarySnapshot() []IndexEntry {
	return n.snapshotIndexes(false)
}

// ReplicaSnapshot is PrimarySnapshot over the successor-replica indexes.
func (n *Network) ReplicaSnapshot() []IndexEntry {
	return n.snapshotIndexes(true)
}

func (n *Network) snapshotIndexes(replicas bool) []IndexEntry {
	var out []IndexEntry
	for _, p := range n.Peers() {
		p.indexing.mu.Lock()
		ix := p.indexing.ix
		if replicas {
			ix = p.indexing.replicas
		}
		for _, term := range ix.Terms() {
			for posting := range ix.All(term) {
				out = append(out, IndexEntry{Peer: p.Addr(), Term: term, Posting: posting})
			}
		}
		p.indexing.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Peer != b.Peer {
			return a.Peer < b.Peer
		}
		if a.Term != b.Term {
			return a.Term < b.Term
		}
		return a.Posting.Doc < b.Posting.Doc
	})
	return out
}

// ServedPostings returns what the indexing peer at addr would serve for term
// right now: the primary list, or the replica fallback (§7) when the primary
// is empty. The boolean mirrors getPostingsResp.FromReplica. It reproduces
// indexingState.postings without a network call, so an oracle can predict a
// search's inputs from ground truth.
func (n *Network) ServedPostings(addr simnet.Addr, term string) ([]index.Posting, bool, bool) {
	p, ok := n.peer(addr)
	if !ok {
		return nil, false, false
	}
	resp := p.indexing.postings(term)
	return resp.Postings.Slice(), resp.FromReplica, true
}

// HistoryMultiset returns, per peer, the multiset of cached queries keyed by
// their canonical form (sorted, space-joined terms). Two networks that
// processed the same workload must agree on these multisets regardless of
// arrival interleaving — the cache-transparency and parallel-determinism
// invariants check exactly that.
func (n *Network) HistoryMultiset() map[simnet.Addr]map[string]int {
	out := make(map[simnet.Addr]map[string]int)
	for _, p := range n.Peers() {
		p.indexing.mu.Lock()
		if len(p.indexing.history) > 0 {
			m := make(map[string]int, len(p.indexing.history))
			for _, sq := range p.indexing.history {
				m[sq.key]++
			}
			out[p.Addr()] = m
		}
		p.indexing.mu.Unlock()
	}
	return out
}

// DocIndex is the owner-side view of one shared document's global index
// state.
type DocIndex struct {
	// Owner is the owner peer's address.
	Owner simnet.Addr
	// Terms are the current global index terms, sorted.
	Terms []string
	// PublishedAt maps each indexed term to the peer the owner last
	// successfully published it to — where the primary entry lives.
	PublishedAt map[string]simnet.Addr
	// Banned are the terms retired by the hot-term advisory, sorted.
	Banned []string
	// Stale maps terms to peers that may still hold a withdrawn copy
	// (failed migration withdrawals pending retry).
	Stale map[string][]simnet.Addr
}

// DocIndexInfo returns the owner's view of doc's index state, or false if
// the document is not shared.
func (n *Network) DocIndexInfo(doc index.DocID) (DocIndex, bool) {
	n.mu.RLock()
	p, ok := n.ownerOf[doc]
	n.mu.RUnlock()
	if !ok {
		return DocIndex{}, false
	}
	p.mu.Lock()
	st := p.owned[doc]
	p.mu.Unlock()
	if st == nil {
		return DocIndex{}, false
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	di := DocIndex{
		Owner:       p.Addr(),
		PublishedAt: make(map[string]simnet.Addr, len(st.publishedAt)),
	}
	for t := range st.indexed {
		di.Terms = append(di.Terms, t)
	}
	sort.Strings(di.Terms)
	for t, a := range st.publishedAt {
		di.PublishedAt[t] = a
	}
	for t := range st.banned {
		di.Banned = append(di.Banned, t)
	}
	sort.Strings(di.Banned)
	if len(st.stale) > 0 {
		di.Stale = make(map[string][]simnet.Addr, len(st.stale))
		for t, addrs := range st.stale {
			di.Stale[t] = append([]simnet.Addr(nil), addrs...)
		}
	}
	return di, true
}

// BannedTerms returns the hot-term-advisory bans for doc, sorted, or nil if
// the document is not shared (or has none).
func (n *Network) BannedTerms(doc index.DocID) []string {
	di, ok := n.DocIndexInfo(doc)
	if !ok {
		return nil
	}
	return di.Banned
}

// ReplicaLocsAt returns the replica locations the indexing peer at addr has
// recorded for (term, doc) — the push set the holder's replicateDrop will fan
// out to when the entry is withdrawn. For a stale-listed holder, these are
// replicas whose withdrawal is transitively pending: the owner only knows the
// holder owes a withdrawal, and the holder's record is what reaches them.
func (n *Network) ReplicaLocsAt(addr simnet.Addr, term string, doc index.DocID) []simnet.Addr {
	p, ok := n.peer(addr)
	if !ok {
		return nil
	}
	p.indexing.mu.Lock()
	defer p.indexing.mu.Unlock()
	return append([]simnet.Addr(nil), p.indexing.replicaLocs[term][doc]...)
}

// RelocatePrimaryEntry forcibly moves one primary entry from one indexing
// peer to another and rewrites the document owner's holder-of-record to
// match — a placement corruption that is invisible to the ledger checker
// (the owner's record and the entry still agree) but strands the entry on a
// peer the overlay never routes the term to. It is a fault-injection hook
// for correctness testing: the chaos harness's mutation tests use it to
// verify the stranded-entry invariant actually bites. Returns whether the
// entry existed and was moved.
func (n *Network) RelocatePrimaryEntry(from, to simnet.Addr, term string, doc index.DocID) bool {
	src, ok := n.peer(from)
	if !ok {
		return false
	}
	dst, ok := n.peer(to)
	if !ok {
		return false
	}
	var moved *index.Posting
	src.indexing.mu.Lock()
	for posting := range src.indexing.ix.All(term) {
		if posting.Doc == doc {
			p := posting
			moved = &p
			src.indexing.ix.Remove(term, doc)
			break
		}
	}
	src.indexing.mu.Unlock()
	if moved == nil {
		return false
	}
	dst.indexing.mu.Lock()
	dst.indexing.ix.Add(term, *moved)
	dst.indexing.mu.Unlock()
	// Keep the owner's ledger consistent with the corrupted placement so
	// only the placement invariant can catch it.
	if owner, ok := n.peer(simnet.Addr(moved.Owner)); ok {
		owner.mu.Lock()
		st := owner.owned[doc]
		owner.mu.Unlock()
		if st != nil {
			st.mu.Lock()
			if st.publishedAt[term] == from {
				st.publishedAt[term] = to
			}
			st.mu.Unlock()
		}
	}
	return true
}

// DropReplicaEntry silently removes one replica entry at addr, simulating
// replica loss the holder never reports (bit rot, a crash that outlives the
// process's state). It is a fault-injection hook for correctness testing —
// the chaos harness's mutation tests use it to verify that the invariant
// checkers actually catch replica divergence. It returns whether the entry
// existed.
func (n *Network) DropReplicaEntry(addr simnet.Addr, term string, doc index.DocID) bool {
	p, ok := n.peer(addr)
	if !ok {
		return false
	}
	p.indexing.mu.Lock()
	defer p.indexing.mu.Unlock()
	for posting := range p.indexing.replicas.All(term) {
		if posting.Doc == doc {
			p.indexing.replicas.Remove(term, doc)
			return true
		}
	}
	return false
}
