package core

import (
	"fmt"
	"testing"

	"github.com/spritedht/sprite/internal/chord"
	"github.com/spritedht/sprite/internal/simnet"
	"github.com/spritedht/sprite/internal/telemetry"
)

// telemetryNetwork builds a SPRITE network with a registry at every layer.
func telemetryNetwork(t *testing.T, peers int, cfg Config) (*Network, *telemetry.Registry) {
	t.Helper()
	reg := telemetry.NewRegistry()
	net := simnet.New(1, simnet.WithTelemetry(reg))
	ring := chord.NewRing(net, chord.Config{Telemetry: reg})
	if _, err := ring.AddNodes("p", peers); err != nil {
		t.Fatalf("AddNodes: %v", err)
	}
	ring.Build()
	cfg.Telemetry = reg
	n, err := NewNetwork(ring, cfg)
	if err != nil {
		t.Fatalf("NewNetwork: %v", err)
	}
	return n, reg
}

func TestSearchTracedProducesSpanTree(t *testing.T) {
	n, _ := telemetryNetwork(t, 16, Config{})
	if err := n.Share("p0", doc("d1", map[string]int{"alpha": 5, "beta": 3})); err != nil {
		t.Fatalf("Share: %v", err)
	}
	rl, tr, err := n.SearchTraced("p3", []string{"alpha", "beta"}, 5)
	if err != nil {
		t.Fatalf("SearchTraced: %v", err)
	}
	if len(rl) == 0 {
		t.Fatal("no results")
	}
	if tr == nil {
		t.Fatal("nil trace with telemetry installed")
	}
	snap := tr.Snapshot()
	if snap.Root.Name != "sprite.search" {
		t.Fatalf("root span = %q, want sprite.search", snap.Root.Name)
	}
	if len(snap.Root.Children) != 2 {
		t.Fatalf("root has %d term spans, want 2", len(snap.Root.Children))
	}
	// Each term span holds the postings fetch (and chord.hop spans when the
	// lookup left the issuing peer).
	for _, term := range snap.Root.Children {
		var fetch bool
		for _, c := range term.Children {
			if c.Name == msgGetPostings {
				fetch = true
			}
		}
		if !fetch {
			t.Fatalf("term span %q has no postings-fetch child", term.Name)
		}
	}
	if tr.Root().SpanCount() < 2 {
		t.Fatalf("span count = %d, want >= 2", tr.Root().SpanCount())
	}
}

func TestCountersAcrossLifecycle(t *testing.T) {
	n, reg := telemetryNetwork(t, 16, Config{InitialTerms: 2})
	for i := 0; i < 4; i++ {
		d := doc(fmt.Sprintf("d%d", i), map[string]int{"alpha": 5, "beta": 3, "gamma": 2})
		if err := n.Share("p0", d); err != nil {
			t.Fatalf("Share: %v", err)
		}
	}
	if got := reg.Counter("sprite.index.terms_published").Value(); got != 8 {
		t.Fatalf("terms_published = %d, want 8 (4 docs x 2 initial terms)", got)
	}
	if _, err := n.Search("p5", []string{"alpha", "gamma"}, 5); err != nil {
		t.Fatalf("Search: %v", err)
	}
	if got := reg.Counter("sprite.searches").Value(); got != 1 {
		t.Fatalf("sprite.searches = %d, want 1", got)
	}
	if reg.Counter("sprite.postings.served").Value() == 0 {
		t.Fatal("sprite.postings.served did not tick")
	}
	if reg.Counter("sprite.queries.cached").Value() == 0 {
		t.Fatal("sprite.queries.cached did not tick")
	}
	if _, err := n.LearnAll(); err != nil {
		t.Fatalf("LearnAll: %v", err)
	}
	if reg.Counter("sprite.learn.rounds").Value() == 0 {
		t.Fatal("sprite.learn.rounds did not tick")
	}
	if reg.Counter("sprite.polls.served").Value() == 0 {
		t.Fatal("sprite.polls.served did not tick")
	}
	if _, _, err := n.SearchExpanded("p2", []string{"alpha"}, 5, ExpandOptions{}); err != nil {
		t.Fatalf("SearchExpanded: %v", err)
	}
	if got := reg.Counter("sprite.search.expansions").Value(); got != 1 {
		t.Fatalf("sprite.search.expansions = %d, want 1", got)
	}
}

func TestSearchMissCountsSkippedOrMiss(t *testing.T) {
	n, reg := telemetryNetwork(t, 8, Config{})
	if err := n.Share("p0", doc("d1", map[string]int{"alpha": 2})); err != nil {
		t.Fatalf("Share: %v", err)
	}
	if _, err := n.Search("p1", []string{"nosuchterm"}, 5); err != nil {
		t.Fatalf("Search: %v", err)
	}
	if reg.Counter("sprite.postings.misses").Value() == 0 {
		t.Fatal("sprite.postings.misses did not tick for an unknown term")
	}
}
