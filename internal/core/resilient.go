package core

import (
	"context"
	"fmt"
	"time"

	"github.com/spritedht/sprite/internal/chord"
	"github.com/spritedht/sprite/internal/chordid"
	"github.com/spritedht/sprite/internal/resilience"
	"github.com/spritedht/sprite/internal/simnet"
	"github.com/spritedht/sprite/internal/telemetry"
	"github.com/spritedht/sprite/internal/vtime"
)

// This file is the fault-tolerant read path: every postings fetch goes
// through fetchTermPostings, which layers (inside-out) the per-attempt
// timeout, optional hedging, retry with backoff, and — when the owner stays
// unreachable — failover to the §7 successor replica holders via exclusion
// lookups. The zero ResilienceConfig collapses every layer to a single plain
// attempt, preserving the paper's exact message accounting.

// ResilienceConfig tunes the query path's fault tolerance. The zero value
// disables everything: one attempt per fetch, no timeout, no failover —
// exactly the pre-resilience behavior.
type ResilienceConfig struct {
	// MaxRetries is the number of re-attempts against the same holder after
	// a transient failure (0 = single attempt).
	MaxRetries int
	// BaseBackoff is the cap of the first retry's full-jitter sleep; each
	// subsequent retry doubles the cap, bounded by MaxBackoff.
	BaseBackoff time.Duration
	// MaxBackoff bounds backoff growth (default 50× BaseBackoff when zero).
	MaxBackoff time.Duration
	// PerCallTimeout bounds each individual fetch attempt. Zero applies none.
	PerCallTimeout time.Duration
	// HedgeAfter, when positive, launches one duplicate fetch if the first
	// has not settled after this long; first usable answer wins.
	HedgeAfter time.Duration
	// HedgeBudget caps concurrently outstanding hedges network-wide
	// (default 32 when hedging is on; <= 0 with HedgeAfter > 0 = unlimited).
	HedgeBudget int
	// FailoverToReplicas re-resolves a term whose holder stayed unreachable
	// after retries with the holder excluded, so the lookup lands on the
	// successor holding the term's replica (§7). Up to ReplicationFactor
	// failovers are attempted per term. Requires ReplicationFactor > 0 to
	// find anything.
	FailoverToReplicas bool
	// JitterSeed seeds the deterministic backoff jitter (0 = seed 1), so
	// same-seed runs retry on identical schedules.
	JitterSeed int64
}

// validate rejects unusable resilience configurations.
func (c ResilienceConfig) validate() error {
	switch {
	case c.MaxRetries < 0:
		return fmt.Errorf("core: Resilience.MaxRetries = %d, need >= 0", c.MaxRetries)
	case c.BaseBackoff < 0 || c.MaxBackoff < 0 || c.PerCallTimeout < 0 || c.HedgeAfter < 0:
		return fmt.Errorf("core: Resilience durations must be >= 0")
	case c.MaxBackoff > 0 && c.MaxBackoff < c.BaseBackoff:
		return fmt.Errorf("core: Resilience.MaxBackoff = %v smaller than BaseBackoff = %v", c.MaxBackoff, c.BaseBackoff)
	}
	return nil
}

// resil is the network's compiled resilience machinery: the retry policy plus
// the shared hedge budget.
type resil struct {
	policy     resilience.Policy
	hedgeAfter time.Duration
	budget     *resilience.Budget
	failover   bool
	clock      vtime.Clock
}

func newResil(cfg ResilienceConfig, clk vtime.Clock) resil {
	seed := cfg.JitterSeed
	if seed == 0 {
		seed = 1
	}
	r := resil{
		policy: resilience.Policy{
			MaxRetries:     cfg.MaxRetries,
			BaseBackoff:    cfg.BaseBackoff,
			MaxBackoff:     cfg.MaxBackoff,
			PerCallTimeout: cfg.PerCallTimeout,
			Rand:           resilience.NewJitter(seed),
			Clock:          clk,
		},
		hedgeAfter: cfg.HedgeAfter,
		failover:   cfg.FailoverToReplicas,
		clock:      clk,
	}
	if cfg.HedgeAfter > 0 {
		n := cfg.HedgeBudget
		if n == 0 {
			n = 32
		}
		r.budget = resilience.NewBudget(n)
	}
	return r
}

// fetchTermPostings resolves a term's indexing peer and fetches its postings
// under the network's resilience policy: retry with backoff against the
// resolved holder, optionally hedged; if the holder stays unreachable, look
// the key up again with that holder excluded so responsibility falls to the
// successor carrying the replica (§7), and try there — up to
// ReplicationFactor failovers. query/record control history recording at the
// serving peer, exactly as the direct fetch would (nil query sends the bare
// Record-off request the postings cache uses).
//
// The caller's ctx dominates: once it is done, no retry or failover is
// attempted and the returned error wraps ctx.Err().
func (p *Peer) fetchTermPostings(ctx context.Context, term string, query []string, record bool, tsp *telemetry.Span) (getPostingsResp, simnet.Addr, error) {
	key := chordid.HashKey(term)
	r := p.net.resil
	maxFailovers := 0
	if r.failover {
		maxFailovers = p.net.cfg.ReplicationFactor
	}
	req := getPostingsReq{Term: term}
	size := len(term) + 1
	if query != nil {
		req = getPostingsReq{Term: term, Query: query, Record: record}
		size = len(term) + sizeTerms(query)
	}

	var exclude []chordid.ID
	var lastErr error
	attempts := 0
	defer func() {
		if attempts > 0 {
			p.net.met.fetchAttempts.Observe(int64(attempts))
		}
	}()
	for holder := 0; holder <= maxFailovers; holder++ {
		var ref chord.Ref
		var err error
		if holder == 0 {
			ref, _, err = p.node.LookupCtx(ctx, key, tsp)
		} else {
			ref, _, err = p.node.LookupExcluding(ctx, key, exclude, tsp)
		}
		if err != nil {
			// The lookup itself routes around dead nodes; when even it fails
			// there is no holder left to fail over to.
			if lastErr == nil {
				lastErr = err
			}
			break
		}

		call := func(cctx context.Context) (getPostingsResp, error) {
			fsp := tsp.StartChild(msgGetPostings)
			defer fsp.Finish()
			reply, cerr := p.net.ring.Net().CallCtx(cctx, p.Addr(), ref.Addr, simnet.Message{
				Type:    msgGetPostings,
				Payload: req,
				Size:    size,
			})
			if cerr != nil {
				fsp.Annotate("error", cerr.Error())
				return getPostingsResp{}, cerr
			}
			return reply.Payload.(getPostingsResp), nil
		}
		op := call
		if r.hedgeAfter > 0 {
			op = func(cctx context.Context) (getPostingsResp, error) {
				v, hedged, herr := resilience.DoHedged(cctx, r.clock, r.hedgeAfter, r.budget, call)
				if hedged {
					p.net.met.hedges.Inc()
				}
				return v, herr
			}
		}

		resp, retries, err := resilience.Do(ctx, r.policy, op)
		attempts += retries + 1
		if retries > 0 {
			p.net.met.retries.Add(int64(retries))
		}
		if err == nil {
			if holder > 0 {
				tsp.Annotate("failover", string(ref.Addr))
			}
			return resp, ref.Addr, nil
		}
		lastErr = err
		if resilience.Classify(err) != resilience.Transient || ctx.Err() != nil {
			break
		}
		exclude = append(exclude, ref.ID)
		if holder < maxFailovers {
			p.net.met.failovers.Inc()
		}
	}
	return getPostingsResp{}, "", lastErr
}
