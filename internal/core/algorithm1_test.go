package core

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"testing"

	"github.com/spritedht/sprite/internal/corpus"
	"github.com/spritedht/sprite/internal/simnet"
)

// The paper asserts that Algorithm 1 — which keeps only (max qScore,
// cumulative QF) per term and folds in each iteration's incremental query
// set — produces exactly the rank list of the naive scheme that stores and
// reprocesses the entire query history every iteration ("the results of
// Algorithm 1 is equivalent to the naive scheme"). These tests make that
// claim executable: a reference implementation of the naive scheme is run
// against the same query stream and must agree with the incremental
// statistics and the resulting selection.

// naiveScore recomputes Score(t, D) from the full query history.
func naiveScore(history [][]string, d *corpus.Document, term string) float64 {
	qf := 0
	maxQS := 0.0
	for _, q := range history {
		if !containsTerm(q, term) {
			continue
		}
		qf++
		if qs := qScore(q, d); qs > maxQS {
			maxQS = qs
		}
	}
	if qf == 0 {
		return 0
	}
	return maxQS * math.Log10(float64(qf))
}

// foldIncremental replays the stream in batches through the same folding
// logic learnDoc uses (via a docState).
func foldIncremental(batches [][][]string, d *corpus.Document) map[string]*termStat {
	stats := make(map[string]*termStat)
	for _, batch := range batches {
		for _, q := range batch {
			qs := qScore(q, d)
			for _, t := range distinctTerms(q) {
				if !d.Contains(t) {
					continue
				}
				ts := stats[t]
				if ts == nil {
					ts = &termStat{}
					stats[t] = ts
				}
				ts.qf++
				if qs > ts.maxQS {
					ts.maxQS = qs
				}
			}
		}
	}
	return stats
}

func TestAlgorithm1EquivalentToNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	vocab := []string{"t0", "t1", "t2", "t3", "t4", "t5", "t6", "t7"}
	d := doc("D", map[string]int{
		"t0": 9, "t1": 7, "t2": 5, "t3": 3, "t4": 2, "t5": 1,
	})

	// A random query stream split into random batch boundaries (iterations).
	var history [][]string
	var batches [][][]string
	var current [][]string
	for i := 0; i < 400; i++ {
		qlen := 1 + rng.Intn(4)
		q := make([]string, 0, qlen)
		seen := map[string]bool{}
		for len(q) < qlen {
			term := vocab[rng.Intn(len(vocab))]
			if !seen[term] {
				seen[term] = true
				q = append(q, term)
			}
		}
		history = append(history, q)
		current = append(current, q)
		if rng.Intn(10) == 0 {
			batches = append(batches, current)
			current = nil
		}
	}
	if len(current) > 0 {
		batches = append(batches, current)
	}

	stats := foldIncremental(batches, d)
	for _, term := range vocab {
		want := naiveScore(history, d, term)
		got := 0.0
		if ts, ok := stats[term]; ok {
			got = ts.score(ScoreQScoreLogQF)
		}
		if !d.Contains(term) {
			// Terms outside the document must never acquire statistics.
			if _, ok := stats[term]; ok {
				t.Errorf("term %s not in doc but has stats", term)
			}
			continue
		}
		if math.Abs(got-want) > 1e-12 {
			t.Errorf("term %s: incremental score %v != naive score %v", term, got, want)
		}
	}
}

// TestAlgorithm1SelectionEquivalence runs the check end-to-end through the
// real network: the terms selected by the incremental learner over several
// iterations equal the top-T terms a naive full-history scorer would pick.
func TestAlgorithm1SelectionEquivalence(t *testing.T) {
	n := testNetwork(t, 8, Config{InitialTerms: 2, TermsPerIteration: 10, MaxIndexTerms: 12})
	d := doc("D", map[string]int{
		"alpha": 10, "beta": 8, "gamma": 6, "delta": 4, "eps": 2, "zeta": 1,
	})
	if err := n.Share("p0", d); err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(7))
	inDoc := []string{"alpha", "beta", "gamma", "delta", "eps", "zeta"}
	var history [][]string
	for iter := 0; iter < 4; iter++ {
		for i := 0; i < 25; i++ {
			qlen := 1 + rng.Intn(3)
			q := []string{}
			seen := map[string]bool{}
			for len(q) < qlen {
				term := inDoc[rng.Intn(len(inDoc))]
				if !seen[term] {
					seen[term] = true
					q = append(q, term)
				}
			}
			// Every query must contain at least one currently indexed term
			// to be visible; guarantee it by adding alpha (always indexed —
			// it is the top frequency pick and heavily queried).
			if !containsTerm(q, "alpha") {
				q = append(q, "alpha")
			}
			history = append(history, q)
			if err := n.InsertQuery("p3", q); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := n.LearnAll(); err != nil {
			t.Fatal(err)
		}
	}

	// Naive reference: rank all doc terms by full-history score.
	type scored struct {
		term  string
		score float64
	}
	var naive []scored
	for _, term := range inDoc {
		// Deduplicate history as the peer history does (distinct keyword
		// sets).
		seen := map[string]bool{}
		var dedup [][]string
		for _, q := range history {
			key := canonicalQuery(q)
			if !seen[key] {
				seen[key] = true
				dedup = append(dedup, q)
			}
		}
		naive = append(naive, scored{term, naiveScore(dedup, d, term)})
	}
	sort.Slice(naive, func(i, j int) bool {
		if naive[i].score != naive[j].score {
			return naive[i].score > naive[j].score
		}
		return naive[i].term < naive[j].term
	})

	indexed, _ := n.IndexedTerms("D")
	idx := map[string]bool{}
	for _, term := range indexed {
		idx[term] = true
	}
	// Every naive top scorer with a positive score must be indexed (budget
	// is ample: cap 12 > 6 doc terms).
	for _, s := range naive {
		if s.score > 0 && !idx[s.term] {
			t.Errorf("naive top term %s (score %.3f) not selected by incremental learner (indexed: %v)",
				s.term, s.score, indexed)
		}
	}
}

// TestPollDedupAtScale verifies that across a full learning sweep, each
// distinct query reaches the owner exactly once even when it contains many
// of the document's index terms.
func TestPollDedupAtScale(t *testing.T) {
	n := testNetwork(t, 12, Config{InitialTerms: 5, TermsPerIteration: 5, MaxIndexTerms: 30})
	tf := map[string]int{}
	var vocab []string
	for i := 0; i < 10; i++ {
		term := fmt.Sprintf("w%02d", i)
		tf[term] = 10 - i
		vocab = append(vocab, term)
	}
	if err := n.Share("p0", doc("D", tf)); err != nil {
		t.Fatal(err)
	}
	// Queries with heavy overlap with the indexed set; some keyword sets
	// repeat, and each issuance must be delivered exactly once.
	issued := map[string]int{}
	for i := 0; i < 20; i++ {
		q := []string{vocab[i%5], vocab[(i+1)%5], vocab[5+i%5]}
		issued[canonicalQuery(q)]++
		if err := n.InsertQuery("p2", q); err != nil {
			t.Fatal(err)
		}
	}
	p, _ := n.Owner("D")
	st := p.owned["D"]

	// Count deliveries per keyword set across a manual poll sweep of all
	// indexed terms with fresh watermarks.
	docTerms := sortedIndexedTerms(st)
	delivered := map[string]int{}
	for _, term := range docTerms {
		ref, _, err := p.node.Lookup(hashOfTerm(term))
		if err != nil {
			t.Fatal(err)
		}
		reply, err := n.Ring().Net().Call(p.Addr(), ref.Addr, simnet.Message{
			Type:    msgPoll,
			Payload: pollReq{Term: term, Doc: "D", DocTerms: docTerms, Since: 0},
		})
		if err != nil {
			t.Fatal(err)
		}
		for _, q := range reply.Payload.(pollResp).Queries {
			delivered[canonicalQuery(q)]++
		}
	}
	if len(delivered) == 0 {
		t.Fatal("no queries delivered")
	}
	// Every issuance of every keyword set is delivered exactly once — no
	// loss, and crucially no duplicate delivery by multiple indexing peers.
	for key, want := range issued {
		if got := delivered[key]; got != want {
			t.Fatalf("query %q delivered %d times, issued %d times", key, got, want)
		}
	}
}
