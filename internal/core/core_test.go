package core

import (
	"fmt"
	"math"
	"sync"
	"testing"

	"github.com/spritedht/sprite/internal/chord"
	"github.com/spritedht/sprite/internal/chordid"
	"github.com/spritedht/sprite/internal/corpus"
	"github.com/spritedht/sprite/internal/index"
	"github.com/spritedht/sprite/internal/ir"
	"github.com/spritedht/sprite/internal/simnet"
)

// testNetwork builds a SPRITE network over a freshly built ring.
func testNetwork(t testing.TB, peers int, cfg Config) *Network {
	t.Helper()
	net := simnet.New(1)
	ring := chord.NewRing(net, chord.Config{})
	if _, err := ring.AddNodes("p", peers); err != nil {
		t.Fatalf("AddNodes: %v", err)
	}
	ring.Build()
	n, err := NewNetwork(ring, cfg)
	if err != nil {
		t.Fatalf("NewNetwork: %v", err)
	}
	return n
}

func doc(id string, tf map[string]int) *corpus.Document {
	return corpus.NewDocument(index.DocID(id), tf)
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{InitialTerms: -1},
		{InitialTerms: 10, MaxIndexTerms: 5},
		{TermsPerIteration: -1},
		{HistoryCap: -1},
		{ReplicationFactor: -2},
		{SurrogateN: 1},
	}
	net := simnet.New(1)
	ring := chord.NewRing(net, chord.Config{})
	ring.AddNodes("v", 2)
	ring.Build()
	for i, cfg := range bad {
		if _, err := NewNetwork(ring, cfg); err == nil {
			t.Errorf("bad config %d accepted: %+v", i, cfg)
		}
	}
}

func TestShareIndexesTopFrequentTerms(t *testing.T) {
	n := testNetwork(t, 8, Config{InitialTerms: 2})
	d := doc("d1", map[string]int{"alpha": 9, "beta": 7, "gamma": 2, "delta": 1})
	if err := n.Share("p0", d); err != nil {
		t.Fatalf("Share: %v", err)
	}
	terms, err := n.IndexedTerms("d1")
	if err != nil {
		t.Fatal(err)
	}
	if len(terms) != 2 || terms[0] != "alpha" || terms[1] != "beta" {
		t.Fatalf("indexed terms = %v, want [alpha beta]", terms)
	}
	// The postings must live at the peers the DHT assigns.
	if n.TotalPostings() != 2 {
		t.Fatalf("total postings = %d, want 2", n.TotalPostings())
	}
}

func TestShareRejectsDuplicatesAndUnknownPeer(t *testing.T) {
	n := testNetwork(t, 4, Config{})
	d := doc("d1", map[string]int{"a": 1})
	if err := n.Share("ghost", d); err == nil {
		t.Fatal("unknown peer accepted")
	}
	if err := n.Share("p0", d); err != nil {
		t.Fatal(err)
	}
	if err := n.Share("p1", d); err == nil {
		t.Fatal("duplicate share accepted")
	}
}

func TestSearchFindsSharedDocument(t *testing.T) {
	n := testNetwork(t, 8, Config{InitialTerms: 3})
	if err := n.Share("p0", doc("d1", map[string]int{"chord": 5, "dht": 3, "ring": 2})); err != nil {
		t.Fatal(err)
	}
	rl, err := n.Search("p3", []string{"chord"}, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(rl) != 1 || rl[0].Doc != "d1" {
		t.Fatalf("search = %v", rl)
	}
}

func TestSearchUnindexedTermMisses(t *testing.T) {
	n := testNetwork(t, 8, Config{InitialTerms: 1})
	if err := n.Share("p0", doc("d1", map[string]int{"chord": 5, "rare": 1})); err != nil {
		t.Fatal(err)
	}
	rl, err := n.Search("p1", []string{"rare"}, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(rl) != 0 {
		t.Fatalf("unindexed term matched: %v", rl)
	}
}

func TestQueriesCachedAtIndexingPeers(t *testing.T) {
	n := testNetwork(t, 6, Config{})
	if err := n.InsertQuery("p0", []string{"storage", "engine"}); err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, p := range n.Peers() {
		total += p.HistoryLen()
	}
	// Two terms; they may hash to the same peer (then the identical query
	// deduplicates) or two peers.
	if total < 1 || total > 2 {
		t.Fatalf("history entries = %d, want 1 or 2", total)
	}
}

func TestSearchAlsoCachesQuery(t *testing.T) {
	n := testNetwork(t, 6, Config{InitialTerms: 1})
	if err := n.Share("p0", doc("d1", map[string]int{"engine": 3})); err != nil {
		t.Fatal(err)
	}
	if _, err := n.Search("p2", []string{"engine", "turbo"}, 5); err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, p := range n.Peers() {
		total += p.HistoryLen()
	}
	if total < 1 {
		t.Fatal("search did not cache the query at any indexing peer")
	}
}

func TestLearnAddsQueriedTerms(t *testing.T) {
	// The Figure 1 scenario: a document indexed on frequent terms receives
	// queries mentioning less frequent terms it contains; learning must
	// index those terms — and must NOT index frequent-but-never-queried
	// terms.
	n := testNetwork(t, 10, Config{InitialTerms: 2, TermsPerIteration: 2, MaxIndexTerms: 10})
	d := doc("doc1", map[string]int{
		"a": 10, "b": 9, // initial picks
		"c": 8,         // frequent but never queried (the paper's term c)
		"d": 3, "e": 2, // queried terms
	})
	if err := n.Share("p0", d); err != nil {
		t.Fatal(err)
	}
	// Queries arrive containing the indexed term a plus the unindexed d / e.
	for _, q := range [][]string{{"a", "d"}, {"a", "d", "e"}, {"b", "e"}, {"a", "d"}} {
		if err := n.InsertQuery("p5", q); err != nil {
			t.Fatal(err)
		}
	}
	changes, err := n.LearnAll()
	if err != nil {
		t.Fatal(err)
	}
	if changes == 0 {
		t.Fatal("learning made no changes")
	}
	terms, _ := n.IndexedTerms("doc1")
	has := func(x string) bool {
		for _, t := range terms {
			if t == x {
				return true
			}
		}
		return false
	}
	if !has("d") || !has("e") {
		t.Fatalf("queried terms not learned: %v", terms)
	}
	if has("c") {
		t.Fatalf("never-queried term c was indexed: %v", terms)
	}
}

func TestLearnRespectsCapAndReplaces(t *testing.T) {
	n := testNetwork(t, 10, Config{InitialTerms: 2, TermsPerIteration: 5, MaxIndexTerms: 3})
	d := doc("doc1", map[string]int{
		"a": 10, "b": 9, "x": 5, "y": 4, "z": 3,
	})
	if err := n.Share("p0", d); err != nil {
		t.Fatal(err)
	}
	// Queries strongly favor x, y, z — none of the initial terms appear
	// except a (needed so the owner hears about the queries at all).
	for _, q := range [][]string{
		{"a", "x", "y"}, {"a", "x", "z"}, {"a", "x", "y"}, {"a", "y", "z"},
	} {
		if err := n.InsertQuery("p5", q); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := n.LearnAll(); err != nil {
		t.Fatal(err)
	}
	terms, _ := n.IndexedTerms("doc1")
	if len(terms) > 3 {
		t.Fatalf("cap violated: %v", terms)
	}
	// b was never queried; with the cap at 3 and three well-queried
	// candidates (x, y, z beat it), b must have been replaced.
	for _, term := range terms {
		if term == "b" {
			t.Fatalf("never-queried initial term b survived replacement: %v", terms)
		}
	}
	// Unpublished terms must be gone from the DHT.
	found := false
	for _, p := range n.Peers() {
		if p.Index().Has("b") {
			found = true
		}
	}
	if found {
		t.Fatal("replaced term b still has postings in the DHT")
	}
}

func TestLearnIncrementalWatermark(t *testing.T) {
	// Algorithm 1's point: a second learning iteration with no new queries
	// must pull nothing and change nothing.
	n := testNetwork(t, 8, Config{InitialTerms: 2, TermsPerIteration: 3, MaxIndexTerms: 10})
	d := doc("doc1", map[string]int{"a": 5, "b": 4, "c": 2, "d": 1})
	if err := n.Share("p0", d); err != nil {
		t.Fatal(err)
	}
	n.InsertQuery("p3", []string{"a", "c"})
	n.InsertQuery("p3", []string{"a", "d"})
	if _, err := n.LearnAll(); err != nil {
		t.Fatal(err)
	}
	termsAfter1, _ := n.IndexedTerms("doc1")

	net := n.Ring().Net().(*simnet.Network)
	net.ResetStats()
	changes, err := n.LearnAll()
	if err != nil {
		t.Fatal(err)
	}
	if changes != 0 {
		t.Fatalf("second iteration with no new queries made %d changes", changes)
	}
	termsAfter2, _ := n.IndexedTerms("doc1")
	if len(termsAfter1) != len(termsAfter2) {
		t.Fatalf("index changed without new queries: %v -> %v", termsAfter1, termsAfter2)
	}
	// Poll replies must carry no queries (incremental set is empty).
	if calls := net.Stats().CallsByType[msgPublish]; calls != 0 {
		t.Fatalf("stale publishes: %d", calls)
	}
}

func TestLearnedTermImprovesSearch(t *testing.T) {
	// End-to-end: a query that initially misses the document finds it after
	// learning.
	n := testNetwork(t, 10, Config{InitialTerms: 1, TermsPerIteration: 2, MaxIndexTerms: 5})
	d := doc("doc1", map[string]int{"common": 10, "niche": 2})
	if err := n.Share("p0", d); err != nil {
		t.Fatal(err)
	}
	before, _ := n.Search("p4", []string{"niche"}, 5)
	if len(before) != 0 {
		t.Fatalf("niche should miss before learning: %v", before)
	}
	// A user finds the doc via "common" but their query also had "niche".
	n.InsertQuery("p4", []string{"common", "niche"})
	n.InsertQuery("p4", []string{"common", "niche"})
	if _, err := n.LearnAll(); err != nil {
		t.Fatal(err)
	}
	after, _ := n.Search("p4", []string{"niche"}, 5)
	if len(after) != 1 || after[0].Doc != "doc1" {
		t.Fatalf("niche should hit after learning: %v", after)
	}
}

func TestQScore(t *testing.T) {
	d := doc("d", map[string]int{"a": 1, "b": 1})
	if got := qScore([]string{"a", "b"}, d); got != 1.0 {
		t.Fatalf("qScore fully-matching = %v", got)
	}
	if got := qScore([]string{"a", "z"}, d); got != 0.5 {
		t.Fatalf("qScore half-matching = %v", got)
	}
	if got := qScore(nil, d); got != 0 {
		t.Fatalf("qScore empty = %v", got)
	}
}

func TestTermStatScoreMatchesPaperExample(t *testing.T) {
	// Fig. 2(b): qScore 0.75 with QF 20 → 0.75·log₁₀20 = 0.975.
	ts := &termStat{qf: 20, maxQS: 0.75}
	if got := ts.score(ScoreQScoreLogQF); math.Abs(got-0.975) > 0.001 {
		t.Fatalf("score = %v, want ≈0.975", got)
	}
	// 0.33·log₁₀32 ≈ 0.497 (the paper rounds its inputs and prints 0.501).
	ts = &termStat{qf: 32, maxQS: 0.33}
	if got := ts.score(ScoreQScoreLogQF); math.Abs(got-0.4967) > 0.001 {
		t.Fatalf("score = %v, want ≈0.4967", got)
	}
	// QF = 1 → log 1 = 0.
	ts = &termStat{qf: 1, maxQS: 0.9}
	if got := ts.score(ScoreQScoreLogQF); got != 0 {
		t.Fatalf("score with QF=1 = %v, want 0", got)
	}
}

func TestClosestTermDeterministic(t *testing.T) {
	q := queryHash([]string{"alpha", "beta"})
	terms := []string{"alpha", "beta", "gamma"}
	first := closestTerm(q, terms)
	for i := 0; i < 5; i++ {
		if got := closestTerm(q, terms); got != first {
			t.Fatal("closestTerm not deterministic")
		}
	}
	// Order of candidates must not matter.
	if got := closestTerm(q, []string{"gamma", "beta", "alpha"}); got != first {
		t.Fatal("closestTerm depends on candidate order")
	}
}

func TestCanonicalQueryOrderIndependent(t *testing.T) {
	a := queryHash([]string{"x", "y", "z"})
	b := queryHash([]string{"z", "x", "y"})
	if a != b {
		t.Fatal("query hash depends on term order")
	}
}

func TestPollDeduplication(t *testing.T) {
	// A query containing two of a document's index terms must be returned by
	// exactly one indexing peer across a full poll sweep.
	n := testNetwork(t, 10, Config{InitialTerms: 2, TermsPerIteration: 5, MaxIndexTerms: 10})
	d := doc("doc1", map[string]int{"aaa": 5, "bbb": 4, "ccc": 1})
	if err := n.Share("p0", d); err != nil {
		t.Fatal(err)
	}
	// Query contains both indexed terms plus ccc.
	n.InsertQuery("p3", []string{"aaa", "bbb", "ccc"})
	p, _ := n.Owner("doc1")
	st := p.owned["doc1"]

	// Manually poll both terms and count how many times the query comes back.
	count := 0
	for _, term := range []string{"aaa", "bbb"} {
		ref, _, err := p.node.Lookup(hashOfTerm(term))
		if err != nil {
			t.Fatal(err)
		}
		reply, err := n.ring.Net().Call(p.Addr(), ref.Addr, simnet.Message{
			Type: msgPoll,
			Payload: pollReq{
				Term: term, Doc: "doc1",
				DocTerms: []string{"aaa", "bbb"},
				Since:    0,
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		count += len(reply.Payload.(pollResp).Queries)
	}
	if count != 1 {
		t.Fatalf("query returned %d times across polls, want exactly 1", count)
	}
	_ = st
}

func TestHistoryCapEvictsOldest(t *testing.T) {
	n := testNetwork(t, 1, Config{HistoryCap: 3})
	p := n.Peers()[0]
	for _, q := range [][]string{{"q1"}, {"q2"}, {"q3"}, {"q4"}} {
		if err := n.InsertQuery(p.Addr(), q); err != nil {
			t.Fatal(err)
		}
	}
	if got := p.HistoryLen(); got != 3 {
		t.Fatalf("history len = %d, want 3", got)
	}
	p.indexing.mu.Lock()
	defer p.indexing.mu.Unlock()
	for _, sq := range p.indexing.history {
		if sq.key == "q1" {
			t.Fatal("oldest query not evicted")
		}
	}
}

func TestRepeatedQueriesCountAsIssuances(t *testing.T) {
	// The paper's QF counts every issuance of a query, so the history keeps
	// repeats as separate entries (bounded by HistoryCap).
	n := testNetwork(t, 1, Config{HistoryCap: 10})
	p := n.Peers()[0]
	for i := 0; i < 5; i++ {
		n.InsertQuery(p.Addr(), []string{"popular", "query"})
	}
	// One query with two terms on a single peer: the cache message is sent
	// once per distinct term, so each insertion stores two issuances... on a
	// one-peer ring both terms resolve to the same peer, and InsertQuery
	// sends one cache message per distinct term.
	if got := p.HistoryLen(); got != 10 {
		t.Fatalf("history len = %d, want 10 (5 issuances x 2 term messages)", got)
	}
}

func TestHistoryRepeatsDriveQF(t *testing.T) {
	// Under a repeat-heavy stream, QF — and thus Score — must reflect the
	// repetition: a term queried 8 times beats a term queried once even when
	// both queries match the document equally well.
	n := testNetwork(t, 8, Config{InitialTerms: 1, TermsPerIteration: 1, MaxIndexTerms: 2})
	d := doc("D", map[string]int{"anchor": 9, "hotterm": 2, "coldterm": 2})
	if err := n.Share("p0", d); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		n.InsertQuery("p3", []string{"anchor", "hotterm"})
	}
	n.InsertQuery("p3", []string{"anchor", "coldterm"})
	if _, err := n.LearnAll(); err != nil {
		t.Fatal(err)
	}
	terms, _ := n.IndexedTerms("D")
	found := false
	for _, term := range terms {
		if term == "hotterm" {
			found = true
		}
		if term == "coldterm" {
			t.Fatalf("cold term beat hot term: %v", terms)
		}
	}
	if !found {
		t.Fatalf("hot term not selected: %v", terms)
	}
}

func hashOfTerm(t string) chordid.ID {
	return chordid.HashKey(t)
}

func TestConcurrentSearchDuringLearning(t *testing.T) {
	// Searches, query insertions, and learning run concurrently from
	// different goroutines; under -race this verifies the locking of both
	// peer roles.
	n := testNetwork(t, 16, Config{InitialTerms: 2, TermsPerIteration: 2, MaxIndexTerms: 8})
	for i := 0; i < 20; i++ {
		id := fmt.Sprintf("cd%02d", i)
		tf := map[string]int{
			fmt.Sprintf("term%02d", i):   3,
			fmt.Sprintf("term%02d", i+1): 2,
			"shared":                     1,
		}
		if err := n.Share(n.Peers()[i%16].Addr(), doc(id, tf)); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	wg.Add(3)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			q := []string{fmt.Sprintf("term%02d", i%21), "shared"}
			if _, err := n.Search(n.Peers()[i%16].Addr(), q, 10); err != nil {
				errs <- err
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			q := []string{fmt.Sprintf("term%02d", (i+7)%21)}
			if err := n.InsertQuery(n.Peers()[(i+3)%16].Addr(), q); err != nil {
				errs <- err
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 5; i++ {
			if _, err := n.LearnAll(); err != nil {
				errs <- err
				return
			}
		}
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestConcurrentLearnAndInspect(t *testing.T) {
	// LearnDoc and IndexedTerms race on the same document's state; the
	// per-document mutex must make this safe under -race.
	n := testNetwork(t, 8, Config{InitialTerms: 2, TermsPerIteration: 2, MaxIndexTerms: 8})
	if err := n.Share("p0", doc("hotdoc", map[string]int{"aa": 5, "bb": 3, "cc": 2, "dd": 1})); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < 30; i++ {
			n.InsertQuery("p3", []string{"aa", "cc"})
			n.LearnDoc("hotdoc")
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 100; i++ {
			n.IndexedTerms("hotdoc")
		}
	}()
	wg.Wait()
}

func TestSearchReturnsValidOwners(t *testing.T) {
	n := testNetwork(t, 8, Config{InitialTerms: 2})
	if err := n.Share("p2", doc("owned", map[string]int{"specific": 3, "marker": 1})); err != nil {
		t.Fatal(err)
	}
	rl, err := n.Search("p5", []string{"specific"}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(rl) != 1 {
		t.Fatalf("results = %v", rl)
	}
	// The posting's Owner field must round-trip through the DHT so the
	// retrieval phase (downloading from the owner) can proceed.
	owner, ok := n.Owner("owned")
	if !ok || owner.Addr() != "p2" {
		t.Fatalf("owner registry wrong: %v %v", owner, ok)
	}
}

func TestSurrogateNConsistency(t *testing.T) {
	// Per §4, the absolute N does not matter as long as it is shared: two
	// networks differing only in SurrogateN must produce identical rankings.
	build := func(surrogate int) ir.RankedList {
		n := testNetwork(t, 8, Config{InitialTerms: 3, SurrogateN: surrogate})
		n.Share("p0", doc("a", map[string]int{"x": 5, "y": 2, "z": 1}))
		n.Share("p1", doc("b", map[string]int{"x": 1, "y": 4, "w": 2}))
		n.Share("p2", doc("c", map[string]int{"x": 2, "w": 5, "z": 2}))
		rl, err := n.Search("p4", []string{"x", "y"}, 10)
		if err != nil {
			t.Fatal(err)
		}
		return rl
	}
	small := build(1 << 10)
	large := build(1 << 30)
	if len(small) != len(large) {
		t.Fatalf("result counts differ: %d vs %d", len(small), len(large))
	}
	for i := range small {
		if small[i].Doc != large[i].Doc {
			t.Fatalf("rank %d differs across surrogate N: %v vs %v", i, small[i].Doc, large[i].Doc)
		}
	}
}

func TestAdoptIdempotent(t *testing.T) {
	n := testNetwork(t, 4, Config{})
	node := n.Ring().Nodes()[0]
	p1 := n.Adopt(node)
	p2 := n.Adopt(node)
	if p1 != p2 {
		t.Fatal("Adopt created a duplicate peer for a known node")
	}
	if len(n.Peers()) != 4 {
		t.Fatalf("Adopt changed the peer count: %d", len(n.Peers()))
	}
}
