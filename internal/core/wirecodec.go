package core

import (
	"fmt"

	"github.com/spritedht/sprite/internal/chordid"
	"github.com/spritedht/sprite/internal/index"
	"github.com/spritedht/sprite/internal/simnet"
	"github.com/spritedht/sprite/internal/wire"
)

// Binary codecs for SPRITE's application payloads — the postings fetches,
// publishes/unpublishes, polls, and replica pushes that carry nearly all of
// the system's bytes (§1's index-construction and maintenance cost). The
// decoders mirror gob's empty-slice/map normalization (nil), so results are
// identical whichever codec carried the frame; the transport tags each
// payload with its codec and unregistered types still travel as gob.
func init() {
	wire.RegisterBinary(wire.KindCoreBase+0, publishReq{},
		func(e *wire.Encoder, v any) {
			r := v.(publishReq)
			e.String(r.Term)
			encodePosting(e, r.Posting)
		},
		func(d *wire.Decoder) any {
			var r publishReq
			r.Term = d.String()
			r.Posting = decodePosting(d)
			return r
		})

	wire.RegisterBinary(wire.KindCoreBase+1, unpublishReq{},
		func(e *wire.Encoder, v any) {
			r := v.(unpublishReq)
			e.String(r.Term)
			e.String(string(r.Doc))
		},
		func(d *wire.Decoder) any {
			var r unpublishReq
			r.Term = d.String()
			r.Doc = index.DocID(d.String())
			return r
		})

	wire.RegisterBinary(wire.KindCoreBase+2, unpublishResp{},
		func(e *wire.Encoder, v any) {
			r := v.(unpublishResp)
			e.Uint(uint64(len(r.StaleReplicas)))
			for _, a := range r.StaleReplicas {
				e.String(string(a))
			}
		},
		func(d *wire.Decoder) any {
			var r unpublishResp
			if n := d.Count(1); n > 0 {
				r.StaleReplicas = make([]simnet.Addr, n)
				for i := range r.StaleReplicas {
					r.StaleReplicas[i] = simnet.Addr(d.String())
				}
			}
			return r
		})

	wire.RegisterBinary(wire.KindCoreBase+3, getPostingsReq{},
		func(e *wire.Encoder, v any) {
			r := v.(getPostingsReq)
			e.String(r.Term)
			e.StringSlice(r.Query)
			e.Bool(r.Record)
		},
		func(d *wire.Decoder) any {
			var r getPostingsReq
			r.Term = d.String()
			r.Query = d.StringSlice()
			r.Record = d.Bool()
			return r
		})

	wire.RegisterBinary(wire.KindCoreBase+4, getPostingsResp{},
		func(e *wire.Encoder, v any) {
			r := v.(getPostingsResp)
			// The compressed blocks ship exactly as the indexing peer stores
			// them; MarshalBinary only adds the block framing.
			raw, _ := r.Postings.MarshalBinary()
			e.Uint(uint64(len(raw)))
			e.Raw(raw)
			e.Int(int64(r.IndexedDF))
			e.Bool(r.FromReplica)
		},
		func(d *wire.Decoder) any {
			var r getPostingsResp
			n := d.Uint()
			if n > uint64(d.Remaining()) {
				d.Fail(fmt.Errorf("core: postings payload length %d exceeds %d remaining bytes", n, d.Remaining()))
				return r
			}
			if raw := d.Raw(int(n)); d.Err() == nil {
				// UnmarshalBinary revalidates every block, so a corrupted
				// frame poisons the decode instead of smuggling malformed
				// blocks into the query path.
				if err := r.Postings.UnmarshalBinary(raw); err != nil {
					d.Fail(err)
					return r
				}
			}
			r.IndexedDF = int(d.Int())
			r.FromReplica = d.Bool()
			return r
		})

	wire.RegisterBinary(wire.KindCoreBase+5, cacheQueryReq{},
		func(e *wire.Encoder, v any) { e.StringSlice(v.(cacheQueryReq).Query) },
		func(d *wire.Decoder) any { return cacheQueryReq{Query: d.StringSlice()} })

	wire.RegisterBinary(wire.KindCoreBase+6, pollReq{},
		func(e *wire.Encoder, v any) {
			r := v.(pollReq)
			e.String(r.Term)
			e.String(string(r.Doc))
			e.StringSlice(r.DocTerms)
			e.Uint(r.Since)
		},
		func(d *wire.Decoder) any {
			var r pollReq
			r.Term = d.String()
			r.Doc = index.DocID(d.String())
			r.DocTerms = d.StringSlice()
			r.Since = d.Uint()
			return r
		})

	wire.RegisterBinary(wire.KindCoreBase+7, pollResp{},
		func(e *wire.Encoder, v any) {
			r := v.(pollResp)
			e.Uint(uint64(len(r.Queries)))
			for _, q := range r.Queries {
				e.StringSlice(q)
			}
			e.Uint(r.NewSince)
			e.Int(int64(r.IndexedDF))
		},
		func(d *wire.Decoder) any {
			var r pollResp
			if n := d.Count(1); n > 0 {
				r.Queries = make([][]string, n)
				for i := range r.Queries {
					r.Queries[i] = d.StringSlice()
				}
			}
			r.NewSince = d.Uint()
			r.IndexedDF = int(d.Int())
			return r
		})

	wire.RegisterBinary(wire.KindCoreBase+8, replicaReq{},
		func(e *wire.Encoder, v any) {
			r := v.(replicaReq)
			e.String(r.Term)
			encodePosting(e, r.Posting)
		},
		func(d *wire.Decoder) any {
			var r replicaReq
			r.Term = d.String()
			r.Posting = decodePosting(d)
			return r
		})

	wire.RegisterBinary(wire.KindCoreBase+9, replicaDropReq{},
		func(e *wire.Encoder, v any) {
			r := v.(replicaDropReq)
			e.String(r.Term)
			e.String(string(r.Doc))
		},
		func(d *wire.Decoder) any {
			var r replicaDropReq
			r.Term = d.String()
			r.Doc = index.DocID(d.String())
			return r
		})

	wire.RegisterBinary(wire.KindCoreBase+10, docTermsReq{},
		func(e *wire.Encoder, v any) { e.String(string(v.(docTermsReq).Doc)) },
		func(d *wire.Decoder) any { return docTermsReq{Doc: index.DocID(d.String())} })

	wire.RegisterBinary(wire.KindCoreBase+12, handoffReq{},
		func(e *wire.Encoder, v any) {
			r := v.(handoffReq)
			e.Uint(uint64(len(r.Entries)))
			for _, ent := range r.Entries {
				e.String(ent.Term)
				encodePosting(e, ent.Posting)
				e.Uint(uint64(len(ent.ReplicaLocs)))
				for _, a := range ent.ReplicaLocs {
					e.String(string(a))
				}
			}
		},
		func(d *wire.Decoder) any {
			var r handoffReq
			if n := d.Count(3); n > 0 {
				r.Entries = make([]handoffEntry, n)
				for i := range r.Entries {
					r.Entries[i].Term = d.String()
					r.Entries[i].Posting = decodePosting(d)
					if m := d.Count(1); m > 0 {
						r.Entries[i].ReplicaLocs = make([]simnet.Addr, m)
						for j := range r.Entries[i].ReplicaLocs {
							r.Entries[i].ReplicaLocs[j] = simnet.Addr(d.String())
						}
					}
					if d.Err() != nil {
						break
					}
				}
			}
			return r
		})

	wire.RegisterBinary(wire.KindCoreBase+20, handoffResp{},
		func(e *wire.Encoder, v any) {
			r := v.(handoffResp)
			e.Uint(uint64(len(r.Existing)))
			for _, b := range r.Existing {
				e.Bool(b)
			}
		},
		func(d *wire.Decoder) any {
			var r handoffResp
			if n := d.Count(1); n > 0 {
				r.Existing = make([]bool, n)
				for i := range r.Existing {
					r.Existing[i] = d.Bool()
				}
			}
			return r
		})

	wire.RegisterBinary(wire.KindCoreBase+13, handoffDropReq{},
		func(e *wire.Encoder, v any) {
			r := v.(handoffDropReq)
			e.String(r.Term)
			e.String(string(r.Doc))
		},
		func(d *wire.Decoder) any {
			var r handoffDropReq
			r.Term = d.String()
			r.Doc = index.DocID(d.String())
			return r
		})

	wire.RegisterBinary(wire.KindCoreBase+14, relocateReq{},
		func(e *wire.Encoder, v any) {
			r := v.(relocateReq)
			e.String(r.Term)
			e.String(string(r.Doc))
			e.String(string(r.From))
			e.String(string(r.To))
		},
		func(d *wire.Decoder) any {
			var r relocateReq
			r.Term = d.String()
			r.Doc = index.DocID(d.String())
			r.From = simnet.Addr(d.String())
			r.To = simnet.Addr(d.String())
			return r
		})

	wire.RegisterBinary(wire.KindCoreBase+15, relocateResp{},
		func(e *wire.Encoder, v any) { e.Bool(v.(relocateResp).OK) },
		func(d *wire.Decoder) any { return relocateResp{OK: d.Bool()} })

	wire.RegisterBinary(wire.KindCoreBase+16, repairDigestReq{},
		func(e *wire.Encoder, v any) {
			r := v.(repairDigestReq)
			e.Raw(r.Arc.From[:])
			e.Raw(r.Arc.To[:])
			e.Uint(r.Summary.Root)
			for _, b := range r.Summary.Buckets {
				e.Uint(b)
			}
		},
		func(d *wire.Decoder) any {
			var r repairDigestReq
			copy(r.Arc.From[:], d.Raw(chordid.Bytes))
			copy(r.Arc.To[:], d.Raw(chordid.Bytes))
			r.Summary.Root = d.Uint()
			for i := range r.Summary.Buckets {
				r.Summary.Buckets[i] = d.Uint()
			}
			return r
		})

	wire.RegisterBinary(wire.KindCoreBase+17, repairDigestResp{},
		func(e *wire.Encoder, v any) {
			r := v.(repairDigestResp)
			e.Bool(r.InSync)
			e.Uint(uint64(len(r.Buckets)))
			for _, b := range r.Buckets {
				e.Int(int64(b))
			}
			e.Uint(uint64(len(r.Local)))
			for t, dg := range r.Local {
				e.String(t)
				e.Uint(dg)
			}
		},
		func(d *wire.Decoder) any {
			var r repairDigestResp
			r.InSync = d.Bool()
			if n := d.Count(1); n > 0 {
				r.Buckets = make([]int, n)
				for i := range r.Buckets {
					r.Buckets[i] = int(d.Int())
				}
			}
			if n := d.Count(2); n > 0 {
				r.Local = make(map[string]uint64, n)
				for i := 0; i < n; i++ {
					t := d.String()
					dg := d.Uint()
					if d.Err() != nil {
						break
					}
					r.Local[t] = dg
				}
			}
			return r
		})

	wire.RegisterBinary(wire.KindCoreBase+18, repairPushReq{},
		func(e *wire.Encoder, v any) {
			r := v.(repairPushReq)
			e.Raw(r.Arc.From[:])
			e.Raw(r.Arc.To[:])
			e.Uint(uint64(len(r.Set)))
			for _, tp := range r.Set {
				e.String(tp.Term)
				e.Uint(uint64(len(tp.Postings)))
				for _, p := range tp.Postings {
					encodePosting(e, p)
				}
			}
		},
		func(d *wire.Decoder) any {
			var r repairPushReq
			copy(r.Arc.From[:], d.Raw(chordid.Bytes))
			copy(r.Arc.To[:], d.Raw(chordid.Bytes))
			if n := d.Count(2); n > 0 {
				r.Set = make([]termPostings, n)
				for i := range r.Set {
					r.Set[i].Term = d.String()
					if m := d.Count(4); m > 0 {
						r.Set[i].Postings = make([]index.Posting, m)
						for j := range r.Set[i].Postings {
							r.Set[i].Postings[j] = decodePosting(d)
						}
					}
					if d.Err() != nil {
						break
					}
				}
			}
			return r
		})

	wire.RegisterBinary(wire.KindCoreBase+19, replicaRetireReq{},
		func(e *wire.Encoder, v any) {
			r := v.(replicaRetireReq)
			e.String(string(r.Holder))
			e.String(r.Term)
			e.Uint(uint64(len(r.Docs)))
			for _, doc := range r.Docs {
				e.String(string(doc))
			}
		},
		func(d *wire.Decoder) any {
			var r replicaRetireReq
			r.Holder = simnet.Addr(d.String())
			r.Term = d.String()
			if n := d.Count(1); n > 0 {
				r.Docs = make([]index.DocID, n)
				for i := range r.Docs {
					r.Docs[i] = index.DocID(d.String())
				}
			}
			return r
		})

	wire.RegisterBinary(wire.KindCoreBase+11, docTermsResp{},
		func(e *wire.Encoder, v any) {
			r := v.(docTermsResp)
			e.Bool(r.Found)
			e.Uint(uint64(len(r.TF)))
			for t, f := range r.TF {
				e.String(t)
				e.Int(int64(f))
			}
			e.Int(int64(r.Length))
		},
		func(d *wire.Decoder) any {
			var r docTermsResp
			r.Found = d.Bool()
			// Each map entry is at least one length byte + one varint.
			if n := d.Count(2); n > 0 {
				r.TF = make(map[string]int, n)
				for i := 0; i < n; i++ {
					t := d.String()
					f := int(d.Int())
					if d.Err() != nil {
						break
					}
					r.TF[t] = f
				}
			}
			r.Length = int(d.Int())
			return r
		})
}

func encodePosting(e *wire.Encoder, p index.Posting) {
	e.String(string(p.Doc))
	e.String(p.Owner)
	e.Int(int64(p.Freq))
	e.Int(int64(p.DocLen))
	e.String(p.Sketch)
}

func decodePosting(d *wire.Decoder) index.Posting {
	var p index.Posting
	p.Doc = index.DocID(d.String())
	p.Owner = d.String()
	p.Freq = int(d.Int())
	p.DocLen = int(d.Int())
	p.Sketch = d.String()
	return p
}
