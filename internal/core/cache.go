package core

import (
	"context"
	"fmt"
	"strconv"
	"time"

	"github.com/spritedht/sprite/internal/cache"
	"github.com/spritedht/sprite/internal/ir"
	"github.com/spritedht/sprite/internal/simnet"
	"github.com/spritedht/sprite/internal/telemetry"
	"github.com/spritedht/sprite/internal/vtime"
)

// This file wires the internal/cache substrate into the query path at two
// levels:
//
//   - A postings cache keyed by term. Fetching a term's inverted list costs a
//     Chord lookup (O(log N) hops) plus the postings transfer — the dominant
//     per-query expense. Under SPRITE's own premise of a skewed, repetitive
//     query stream (§5), most fetches repeat recent ones; the cache serves
//     them locally, with singleflight coalescing so N concurrent cold
//     searches for a term issue one remote fetch.
//   - A result cache keyed by (canonical query terms, k) with a short TTL,
//     for verbatim repeats of whole queries.
//
// Consistency: every index mutation — publish, unpublish, replica add/drop,
// unshare, learning re-publication, snapshot restore — bumps the caches'
// generation, so a cached entry can never outlive the index state it was
// read from (entries die lazily; see cache.Invalidate). Learning stays
// unaffected by caching: a search served from cache still records its query
// at the indexing peers via msgCacheQuery, so query histories — and hence
// QF/qScore statistics — match an uncached run exactly.
//
// Staleness window: a peer failure is invisible to the core (it happens at
// the transport), so cached postings owned by a just-failed peer are served
// until the next index mutation, InvalidateCaches call, or TTL expiry —
// strictly better availability than the uncached path, which would skip the
// term (§7 degraded mode), at the price of a bounded staleness window.

// CacheConfig tunes the query-path caches. The zero value disables caching
// entirely, preserving the paper's exact message accounting.
type CacheConfig struct {
	// Enabled turns the caching layer on.
	Enabled bool
	// PostingsEntries caps the postings cache (default 4096 terms).
	PostingsEntries int
	// PostingsBytes optionally caps the postings cache by approximate wire
	// bytes (0 = entry bound only).
	PostingsBytes int64
	// PostingsTTL bounds postings age. The default 0 keeps entries until the
	// next index mutation (generation invalidation), which in the simulator
	// is exact; deployments with out-of-band failures should set a TTL.
	PostingsTTL time.Duration
	// DisablePostings switches the postings cache off individually.
	DisablePostings bool
	// ResultEntries caps the result cache (default 1024 queries).
	ResultEntries int
	// ResultTTL bounds result age (default 2s). Results are also dropped on
	// every index mutation, like postings.
	ResultTTL time.Duration
	// DisableResults switches the result cache off individually.
	DisableResults bool
}

// fillDefaults resolves the zero fields of an enabled configuration.
func (c CacheConfig) fillDefaults() CacheConfig {
	if !c.Enabled {
		return c
	}
	if c.PostingsEntries == 0 {
		c.PostingsEntries = 4096
	}
	if c.ResultEntries == 0 {
		c.ResultEntries = 1024
	}
	if c.ResultTTL == 0 {
		c.ResultTTL = 2 * time.Second
	}
	return c
}

// validate rejects unusable cache configurations.
func (c CacheConfig) validate() error {
	switch {
	case c.PostingsEntries < 0:
		return fmt.Errorf("core: Cache.PostingsEntries = %d, need >= 0", c.PostingsEntries)
	case c.ResultEntries < 0:
		return fmt.Errorf("core: Cache.ResultEntries = %d, need >= 0", c.ResultEntries)
	case c.PostingsTTL < 0 || c.ResultTTL < 0:
		return fmt.Errorf("core: cache TTLs must be >= 0")
	}
	return nil
}

// postingsEntry is one cached postings fetch: the indexing peer's response
// plus its address, retained so cache hits can still route msgCacheQuery
// history recordings to it.
type postingsEntry struct {
	resp getPostingsResp
	peer simnet.Addr
}

// resultEntry is one cached ranked list plus the indexing peers contacted to
// compute it, so recorded repeats keep feeding those peers' query histories.
type resultEntry struct {
	rl    ir.RankedList
	peers map[string]simnet.Addr // term → indexing peer
}

// netCaches bundles the two query-path caches; both pointers are nil when
// caching is disabled (a nil cache is inert).
type netCaches struct {
	postings *cache.Cache[postingsEntry]
	results  *cache.Cache[resultEntry]
}

func newNetCaches(cfg CacheConfig, reg *telemetry.Registry, clk vtime.Clock) netCaches {
	if !cfg.Enabled {
		return netCaches{}
	}
	var nc netCaches
	if !cfg.DisablePostings && cfg.PostingsEntries > 0 {
		nc.postings = cache.New[postingsEntry](cache.Config{
			MaxEntries: cfg.PostingsEntries,
			MaxBytes:   cfg.PostingsBytes,
			TTL:        cfg.PostingsTTL,
			Telemetry:  reg,
			Name:       "cache.postings",
			Clock:      clk,
		})
	}
	if !cfg.DisableResults && cfg.ResultEntries > 0 {
		nc.results = cache.New[resultEntry](cache.Config{
			MaxEntries: cfg.ResultEntries,
			TTL:        cfg.ResultTTL,
			Telemetry:  reg,
			Name:       "cache.results",
			Clock:      clk,
		})
	}
	return nc
}

// invalidate drops every cached posting and result (generation bump, O(1)).
func (nc netCaches) invalidate() {
	nc.postings.Invalidate()
	nc.results.Invalidate()
}

// InvalidateCaches drops all cached postings and query results. The core
// calls it on every index mutation; hosts should call it when they know the
// network changed under the core's feet (peer failure or recovery injected
// at the transport level, overlay membership changes, …).
func (n *Network) InvalidateCaches() {
	n.caches.invalidate()
}

// PostingsCacheStats returns the postings cache counters (zero when the
// cache is disabled).
func (n *Network) PostingsCacheStats() cache.Stats { return n.caches.postings.Stats() }

// ResultCacheStats returns the result cache counters (zero when disabled).
func (n *Network) ResultCacheStats() cache.Stats { return n.caches.results.Stats() }

// resultKey is the result-cache key: the canonical (sorted, duplicates
// retained) query term list plus the answer depth. Term order never affects
// scoring; term multiplicity does, so it is preserved.
func resultKey(terms []string, k int) string {
	return canonicalQuery(terms) + "\x00" + strconv.Itoa(k)
}

// resultBytes approximates a cached result's footprint for the byte gauge.
func resultBytes(e resultEntry) int {
	n := 0
	for _, h := range e.rl {
		n += len(h.Doc) + 16
	}
	for t, a := range e.peers {
		n += len(t) + len(a)
	}
	return n
}

// postingsBytes approximates a cached postings entry's footprint. The
// postings travel and are retained in their encoded block form, so the
// encoded size is the honest byte cost of the entry.
func postingsBytes(e postingsEntry) int {
	return e.resp.Postings.Size() + len(e.peer) + 16
}

// fetchPostingsCached resolves a term's postings through the postings cache.
// Misses run the resilient DHT path — Chord lookup, then msgGetPostings with
// Record off, under the network's retry/hedge/failover policy — with
// singleflight, so concurrent misses on the same term issue exactly one
// remote fetch. The fetch itself never records the query (cached hits would
// then under-count history); recording is the caller's job via
// recordQueryAt.
func (p *Peer) fetchPostingsCached(ctx context.Context, term string, tsp *telemetry.Span) (postingsEntry, cache.Outcome, error) {
	return p.net.caches.postings.GetOrFill(term, func() (postingsEntry, int, error) {
		resp, peer, err := p.fetchTermPostings(ctx, term, nil, false, tsp)
		if err != nil {
			return postingsEntry{}, 0, err
		}
		tsp.Annotate("indexing_peer", string(peer))
		ent := postingsEntry{resp: resp, peer: peer}
		return ent, postingsBytes(ent), nil
	})
}

// recordQueryAt inserts the query into the indexing peer's history —
// the side effect an uncached recorded search gets for free from its
// msgGetPostings — so caching never starves learning. Best-effort: an
// unreachable peer is skipped, exactly as the uncached path would skip it.
func (p *Peer) recordQueryAt(peer simnet.Addr, query []string) {
	p.recordQueryAtErr(context.Background(), peer, query)
}

// recordQueryAtErr is recordQueryAt surfacing the recording failure, so the
// result-cache-hit replay can count dropped history entries (a silent drop
// skews learning) instead of swallowing them. An unknown peer ("" — the term
// matched nothing when the entry was cached) records nothing and is not an
// error.
func (p *Peer) recordQueryAtErr(ctx context.Context, peer simnet.Addr, query []string) error {
	if peer == "" {
		return nil
	}
	_, err := p.net.ring.Net().CallCtx(ctx, p.Addr(), peer, simnet.Message{
		Type:    msgCacheQuery,
		Payload: cacheQueryReq{Query: query},
		Size:    sizeTerms(query),
	})
	return err
}
