// Package core implements SPRITE — Selective PRogressive Index Tuning by
// Examples (Li, Jagadish, Tan; ICDE 2007) — on top of the Chord overlay.
//
// Every peer plays two roles (§3). As an *owner peer* it shares documents:
// it selects a small set of global index terms per document (initially the
// most frequent terms, §5.2), publishes them into the DHT, and periodically
// *learns* better terms from the history of queries cached at indexing peers
// (§5.3, Algorithm 1). As an *indexing peer* it maintains inverted lists for
// the terms the overlay assigns to it, plus a bounded history of recent
// queries mentioning those terms.
//
// Query processing (§4) hashes each keyword to its indexing peer, pulls the
// postings (term frequency, document length, indexed document frequency),
// and lets the querying peer consolidate TF·IDF partial scores with the Lee
// et al. similarity. The corpus size N is unknowable in a P2P setting, so a
// fixed large surrogate is used; indexed document frequency n'_k plays the
// role of document frequency.
package core

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"

	"github.com/spritedht/sprite/internal/chord"
	"github.com/spritedht/sprite/internal/corpus"
	"github.com/spritedht/sprite/internal/fanout"
	"github.com/spritedht/sprite/internal/index"
	"github.com/spritedht/sprite/internal/ir"
	"github.com/spritedht/sprite/internal/repair"
	"github.com/spritedht/sprite/internal/simnet"
	"github.com/spritedht/sprite/internal/sketch"
	"github.com/spritedht/sprite/internal/telemetry"
	"github.com/spritedht/sprite/internal/vtime"
)

// Config holds SPRITE's tunables, with the paper's §6.2 defaults.
type Config struct {
	// InitialTerms is F, the number of most-frequent terms published when a
	// document is first shared. Paper default: 5.
	InitialTerms int
	// TermsPerIteration is the number of new terms each learning iteration
	// may add (or, at the cap, replace). Paper default: 5.
	TermsPerIteration int
	// MaxIndexTerms caps the number of global index terms per document
	// ("we limit the maximum number of terms to be indexed to a small value
	// (say, 30)", §5). Once reached, learning only replaces terms.
	MaxIndexTerms int
	// HistoryCap bounds each indexing peer's cached query history ("each
	// indexing peer maintains only the most recently issued queries", §3).
	HistoryCap int
	// ReplicationFactor is the number of successor peers each index entry is
	// replicated to (§7). 0 disables replication.
	ReplicationFactor int
	// SurrogateN is the fixed large N used in IDF computations (§4).
	SurrogateN int
	// HotTermDF enables the §7 load-balancing advisory: when a poll reveals
	// that one of a document's index terms has an indexed document frequency
	// of at least HotTermDF, the owner drops the term — its IDF is so low it
	// contributes almost nothing to similarity — and the freed slot goes to
	// the next best term. 0 disables the advisory.
	HotTermDF int
	// Score selects the learning score function. The zero value is the
	// paper's Score(t,D) = qScore·log₁₀(QF); the alternatives exist for the
	// ablation study of this design choice (see DESIGN.md).
	Score ScoreVariant
	// Telemetry, when non-nil, receives SPRITE-level metrics (queries
	// served, postings cache hits/misses, learning rounds and index changes,
	// publishes/retires) and per-query traces. Nil disables instrumentation.
	Telemetry *telemetry.Registry
	// Cache configures the query-path caches (postings by term, results by
	// query) with singleflight coalescing and write invalidation. The zero
	// value disables caching, preserving the paper's exact message counts.
	Cache CacheConfig
	// Resilience configures the query path's fault tolerance (retry/backoff,
	// per-attempt timeouts, hedging, replica failover). The zero value
	// disables it all, preserving the paper's exact message counts.
	Resilience ResilienceConfig
	// Parallelism bounds the query execution engine's per-term fan-out: the
	// number of concurrent DHT lookups/postings fetches per query, and the
	// concurrent document sweeps in LearnAll/RefreshAll. 0 derives the bound
	// from GOMAXPROCS; 1 is the legacy sequential path. Results are
	// bit-identical across settings (see internal/fanout).
	Parallelism int
	// Sketch configures per-document feature sketches and the similarity
	// query path (SearchSimilar). When enabled, every published posting
	// carries the owning document's serialized sketch, costing
	// ~Dims+2 bytes per posting on the wire and in indexing-peer storage.
	// The zero value disables sketching; SearchSimilar then fails with
	// ErrSketchDisabled.
	Sketch sketch.Config
	// Clock drives every time-dependent mechanism in the core: fan-out
	// worker registration, resilience backoff/timeouts/hedging, cache TTLs,
	// and query-latency observation. Nil is the wall clock (production
	// behavior); virtual-time experiments inject the deployment's
	// *vtime.Sim so all of it runs on the deterministic scheduler.
	Clock vtime.Clock
}

// netMetrics caches the SPRITE-level instrument handles; all nil (inert)
// when no registry is configured.
type netMetrics struct {
	searches         *telemetry.Counter
	termsSkipped     *telemetry.Counter
	postingsServed   *telemetry.Counter
	primaryHits      *telemetry.Counter
	replicaHits      *telemetry.Counter
	misses           *telemetry.Counter
	queriesCached    *telemetry.Counter
	pollsServed      *telemetry.Counter
	pollQueries      *telemetry.Counter
	learnRounds      *telemetry.Counter
	learnChanges     *telemetry.Counter
	termsPublished   *telemetry.Counter
	termsRetired     *telemetry.Counter
	expansionRounds  *telemetry.Counter
	simSearches      *telemetry.Counter
	simFloods        *telemetry.Counter
	simCandidates    *telemetry.Counter
	retries          *telemetry.Counter
	failovers        *telemetry.Counter
	hedges           *telemetry.Counter
	partials         *telemetry.Counter
	recordErrors     *telemetry.Counter
	repairHandoffs   *telemetry.Counter
	repairReconciles *telemetry.Counter
	repairDivergent  *telemetry.Counter
	fetchAttempts    *telemetry.Histogram
	queryLatency     *telemetry.Histogram
}

func newNetMetrics(reg *telemetry.Registry) netMetrics {
	return netMetrics{
		searches:         reg.Counter("sprite.searches"),
		termsSkipped:     reg.Counter("sprite.search.terms_skipped"),
		postingsServed:   reg.Counter("sprite.postings.served"),
		primaryHits:      reg.Counter("sprite.postings.primary_hits"),
		replicaHits:      reg.Counter("sprite.postings.replica_hits"),
		misses:           reg.Counter("sprite.postings.misses"),
		queriesCached:    reg.Counter("sprite.queries.cached"),
		pollsServed:      reg.Counter("sprite.polls.served"),
		pollQueries:      reg.Counter("sprite.polls.queries_returned"),
		learnRounds:      reg.Counter("sprite.learn.rounds"),
		learnChanges:     reg.Counter("sprite.learn.index_changes"),
		termsPublished:   reg.Counter("sprite.index.terms_published"),
		termsRetired:     reg.Counter("sprite.index.terms_retired"),
		expansionRounds:  reg.Counter("sprite.search.expansions"),
		simSearches:      reg.Counter("sprite.similar.searches"),
		simFloods:        reg.Counter("sprite.similar.floods"),
		simCandidates:    reg.Counter("sprite.similar.candidates"),
		retries:          reg.Counter("sprite.resilience.retries"),
		failovers:        reg.Counter("sprite.resilience.failovers"),
		hedges:           reg.Counter("sprite.resilience.hedges"),
		partials:         reg.Counter("sprite.resilience.partials"),
		recordErrors:     reg.Counter("sprite.fanout.record_errors"),
		repairHandoffs:   reg.Counter(repair.MetricHandoffs),
		repairReconciles: reg.Counter(repair.MetricReconciles),
		repairDivergent:  reg.Counter(repair.MetricDivergentTerms),
		fetchAttempts:    reg.Histogram("sprite.resilience.fetch_attempts"),
		queryLatency:     reg.Histogram("sprite.query.latency_us"),
	}
}

// ScoreVariant enumerates learning score functions for the ablation study of
// §5.3's combined formula.
type ScoreVariant int

const (
	// ScoreQScoreLogQF is the paper's formula: qScore · log₁₀(QF). The
	// logarithm damps QF so that high-quality (high-qScore) queries dominate
	// noisy popular terms.
	ScoreQScoreLogQF ScoreVariant = iota
	// ScoreQScoreOnly ranks by max qScore alone (ignores how often a term is
	// queried).
	ScoreQScoreOnly
	// ScoreQFOnly ranks by query frequency alone (ignores query quality).
	ScoreQFOnly
	// ScoreQScoreTimesQF multiplies without the logarithm (popularity
	// dominates).
	ScoreQScoreTimesQF
)

// String implements fmt.Stringer for experiment reports.
func (v ScoreVariant) String() string {
	switch v {
	case ScoreQScoreLogQF:
		return "qscore*logQF"
	case ScoreQScoreOnly:
		return "qscore-only"
	case ScoreQFOnly:
		return "qf-only"
	case ScoreQScoreTimesQF:
		return "qscore*QF"
	}
	return fmt.Sprintf("ScoreVariant(%d)", int(v))
}

// FillDefaults returns the config with zero fields replaced by the paper's
// defaults.
func (c Config) FillDefaults() Config {
	if c.InitialTerms == 0 {
		c.InitialTerms = 5
	}
	if c.TermsPerIteration == 0 {
		c.TermsPerIteration = 5
	}
	if c.MaxIndexTerms == 0 {
		c.MaxIndexTerms = 30
	}
	if c.HistoryCap == 0 {
		c.HistoryCap = 4096
	}
	if c.SurrogateN == 0 {
		c.SurrogateN = ir.LargeN
	}
	c.Cache = c.Cache.fillDefaults()
	c.Sketch = c.Sketch.FillDefaults()
	return c
}

// Validate rejects unusable configurations.
func (c Config) Validate() error {
	switch {
	case c.InitialTerms < 1:
		return fmt.Errorf("core: InitialTerms = %d, need >= 1", c.InitialTerms)
	case c.TermsPerIteration < 0:
		return fmt.Errorf("core: TermsPerIteration = %d, need >= 0", c.TermsPerIteration)
	case c.MaxIndexTerms < c.InitialTerms:
		return fmt.Errorf("core: MaxIndexTerms = %d smaller than InitialTerms = %d", c.MaxIndexTerms, c.InitialTerms)
	case c.HistoryCap < 1:
		return fmt.Errorf("core: HistoryCap = %d, need >= 1", c.HistoryCap)
	case c.ReplicationFactor < 0:
		return fmt.Errorf("core: ReplicationFactor = %d, need >= 0", c.ReplicationFactor)
	case c.SurrogateN < 2:
		return fmt.Errorf("core: SurrogateN = %d, need >= 2", c.SurrogateN)
	case c.HotTermDF < 0:
		return fmt.Errorf("core: HotTermDF = %d, need >= 0", c.HotTermDF)
	case c.Parallelism < 0:
		return fmt.Errorf("core: Parallelism = %d, need >= 0", c.Parallelism)
	}
	if err := c.Cache.validate(); err != nil {
		return err
	}
	if err := c.Sketch.Validate(); err != nil {
		return err
	}
	return c.Resilience.validate()
}

// Network is a running SPRITE deployment over a Chord ring. It is the
// package's entry point: share documents, insert queries, run learning
// iterations, and search. All methods are safe for concurrent use.
type Network struct {
	cfg    Config
	ring   *chord.Ring
	clock  vtime.Clock
	met    netMetrics
	caches netCaches
	resil  resil
	// sketcher projects shared documents into feature sketches; nil when
	// Config.Sketch is disabled.
	sketcher *sketch.Sketcher
	// exec is the query execution engine's fan-out executor. Per-term
	// pipelines (searchCtx, insertQuery, expansion) and owner sweeps
	// (LearnAll, RefreshAll, replication) all share its concurrency bound.
	exec *fanout.Executor
	// accPool recycles score accumulators across searches. The per-query
	// bucket arrays are the query path's largest allocation; reuse keeps
	// them out of the GC's way. Rankings are unaffected — contribution
	// order, not map layout, determines the result.
	accPool sync.Pool

	// mu guards the membership and ownership maps below. It is never held
	// across a network call, only around map reads/writes, so it cannot
	// participate in a lock cycle with peer or document locks.
	mu    sync.RWMutex
	peers map[simnet.Addr]*Peer
	// order lists peers sorted by address for deterministic iteration.
	order []*Peer
	// ownerOf maps each shared document to its owner peer.
	ownerOf map[index.DocID]*Peer
	// docOrder preserves share order so learning sweeps are deterministic.
	docOrder []index.DocID
}

// NewNetwork attaches SPRITE peers to every node currently in the ring. The
// ring should already be built (or joined and stabilized).
func NewNetwork(ring *chord.Ring, cfg Config) (*Network, error) {
	cfg = cfg.FillDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	clk := vtime.Default(cfg.Clock)
	var sk *sketch.Sketcher
	if cfg.Sketch.Enabled {
		var err error
		if sk, err = sketch.New(cfg.Sketch); err != nil {
			return nil, err
		}
	}
	n := &Network{
		cfg:      cfg,
		ring:     ring,
		clock:    clk,
		sketcher: sk,
		met:      newNetMetrics(cfg.Telemetry),
		caches:   newNetCaches(cfg.Cache, cfg.Telemetry, clk),
		resil:    newResil(cfg.Resilience, clk),
		exec:     fanout.NewClocked(cfg.Parallelism, cfg.Telemetry, clk),
		peers:    make(map[simnet.Addr]*Peer),
		ownerOf:  make(map[index.DocID]*Peer),
	}
	for _, node := range ring.Nodes() {
		p := newPeer(n, node)
		n.peers[node.Addr()] = p
		n.order = append(n.order, p)
		node.SetAppHandler(p)
		n.attachRepair(p)
	}
	sort.Slice(n.order, func(i, j int) bool { return n.order[i].Addr() < n.order[j].Addr() })
	return n, nil
}

// Config returns the active configuration.
func (n *Network) Config() Config { return n.cfg }

// Ring returns the underlying Chord ring.
func (n *Network) Ring() *chord.Ring { return n.ring }

// Peers returns all SPRITE peers sorted by address.
func (n *Network) Peers() []*Peer {
	n.mu.RLock()
	defer n.mu.RUnlock()
	out := make([]*Peer, len(n.order))
	copy(out, n.order)
	return out
}

// Peer returns the peer at addr.
func (n *Network) Peer(addr simnet.Addr) (*Peer, bool) {
	n.mu.RLock()
	defer n.mu.RUnlock()
	p, ok := n.peers[addr]
	return p, ok
}

// peer is Peer for internal callers.
func (n *Network) peer(addr simnet.Addr) (*Peer, bool) {
	n.mu.RLock()
	defer n.mu.RUnlock()
	p, ok := n.peers[addr]
	return p, ok
}

// Adopt attaches SPRITE peer state to a node that joined the ring after the
// network was created, so the newcomer can serve application messages
// (publishes, query caching, polls). Adopting an already-known node returns
// its existing peer.
func (n *Network) Adopt(node *chord.Node) *Peer {
	n.mu.Lock()
	defer n.mu.Unlock()
	if p, ok := n.peers[node.Addr()]; ok {
		return p
	}
	p := newPeer(n, node)
	n.peers[node.Addr()] = p
	n.order = append(n.order, p)
	sort.Slice(n.order, func(i, j int) bool { return n.order[i].Addr() < n.order[j].Addr() })
	node.SetAppHandler(p)
	n.attachRepair(p)
	return p
}

// Share registers doc at the owner peer and publishes its initial global
// index terms (the top-F most frequent, §5.2). Ownership is reserved under
// the lock before the (network-calling) publish, so two concurrent shares of
// the same document cannot both proceed; on publish failure the reservation
// is rolled back.
func (n *Network) Share(owner simnet.Addr, doc *corpus.Document) error {
	return n.ShareCtx(context.Background(), owner, doc)
}

// ShareCtx is Share honoring ctx: the per-term DHT publications carry the
// caller's deadline and stop at the first cancellation.
func (n *Network) ShareCtx(ctx context.Context, owner simnet.Addr, doc *corpus.Document) error {
	n.mu.Lock()
	p, ok := n.peers[owner]
	if !ok {
		n.mu.Unlock()
		return fmt.Errorf("%w: %q", ErrNoSuchPeer, owner)
	}
	if prev, shared := n.ownerOf[doc.ID]; shared {
		n.mu.Unlock()
		return fmt.Errorf("core: document %q already shared by %q", doc.ID, prev.Addr())
	}
	n.ownerOf[doc.ID] = p
	n.docOrder = append(n.docOrder, doc.ID)
	n.mu.Unlock()

	if err := p.share(ctx, doc); err != nil {
		n.mu.Lock()
		delete(n.ownerOf, doc.ID)
		for i, id := range n.docOrder {
			if id == doc.ID {
				n.docOrder = append(n.docOrder[:i], n.docOrder[i+1:]...)
				break
			}
		}
		n.mu.Unlock()
		return err
	}
	return nil
}

// Owner returns the owner peer of a shared document.
func (n *Network) Owner(doc index.DocID) (*Peer, bool) {
	n.mu.RLock()
	defer n.mu.RUnlock()
	p, ok := n.ownerOf[doc]
	return p, ok
}

// Documents returns the IDs of all shared documents in share order.
func (n *Network) Documents() []index.DocID {
	n.mu.RLock()
	defer n.mu.RUnlock()
	out := make([]index.DocID, len(n.docOrder))
	copy(out, n.docOrder)
	return out
}

// InsertQuery caches the query's keywords at the indexing peers responsible
// for them without retrieving results — the §6.2 training step ("For each
// query in the training set, the keywords are inserted into SPRITE").
func (n *Network) InsertQuery(from simnet.Addr, terms []string) error {
	return n.InsertQueryCtx(context.Background(), from, terms)
}

// InsertQueryCtx is InsertQuery honoring ctx.
func (n *Network) InsertQueryCtx(ctx context.Context, from simnet.Addr, terms []string) error {
	p, ok := n.peer(from)
	if !ok {
		return fmt.Errorf("%w: %q", ErrNoSuchPeer, from)
	}
	return p.insertQuery(ctx, terms)
}

// Search executes a keyword query from the given peer and returns the top-k
// ranked documents (§4). Terms whose indexing peer is unreachable are
// discarded from the computation rather than failing the query (§7), with a
// nil error — this entry point predates the partial-results contract; use
// SearchCtx to observe ErrPartialResults. The query is cached in the
// contacted indexing peers' histories, feeding future learning. When a
// telemetry registry is configured the query is traced; the completed span
// tree lands in the registry's recent-trace buffer.
func (n *Network) Search(from simnet.Addr, terms []string, k int) (ir.RankedList, error) {
	rl, _, err := n.SearchTraced(from, terms, k)
	return rl, err
}

// SearchCtx is Search under a context, with the full error contract:
// deadlines and cancellation reach every lookup hop and postings fetch; a
// canceled context aborts the search with an error wrapping ctx.Err(); a
// search that lost some terms to unreachable holders returns the ranked list
// over the remaining terms plus a *PartialError (errors.Is(err,
// ErrPartialResults)). An unknown from wraps ErrNoSuchPeer.
func (n *Network) SearchCtx(ctx context.Context, from simnet.Addr, terms []string, k int) (ir.RankedList, error) {
	rl, _, err := n.SearchTracedCtx(ctx, from, terms, k)
	return rl, err
}

// SearchTraced is Search returning the query's trace (nil when no telemetry
// registry is configured). The trace's span tree has one child span per
// query term, under which each Chord hop and the postings fetch from the
// indexing peer are timed individually.
func (n *Network) SearchTraced(from simnet.Addr, terms []string, k int) (ir.RankedList, *telemetry.Trace, error) {
	rl, tr, err := n.SearchTracedCtx(context.Background(), from, terms, k)
	return rl, tr, stripPartial(err)
}

// SearchTracedCtx is SearchCtx returning the query's trace.
func (n *Network) SearchTracedCtx(ctx context.Context, from simnet.Addr, terms []string, k int) (ir.RankedList, *telemetry.Trace, error) {
	p, ok := n.peer(from)
	if !ok {
		return nil, nil, fmt.Errorf("%w: %q", ErrNoSuchPeer, from)
	}
	tr := n.cfg.Telemetry.StartTrace("sprite.search")
	root := tr.Root()
	root.Annotate("from", string(from))
	rl, err := p.searchCtx(ctx, terms, k, true, root)
	tr.Finish()
	return rl, tr, err
}

// Probe is Search without the history side effect: the query is processed
// but not cached at indexing peers. The experiment harness uses it so that
// measurement runs do not leak the testing queries into the learning state.
func (n *Network) Probe(from simnet.Addr, terms []string, k int) (ir.RankedList, error) {
	rl, err := n.ProbeCtx(context.Background(), from, terms, k)
	return rl, stripPartial(err)
}

// ProbeCtx is Probe under a context, with the SearchCtx error contract.
func (n *Network) ProbeCtx(ctx context.Context, from simnet.Addr, terms []string, k int) (ir.RankedList, error) {
	p, ok := n.peer(from)
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoSuchPeer, from)
	}
	return p.searchCtx(ctx, terms, k, false, nil)
}

// LearnAll runs one learning iteration (§5.3, Algorithm 1) for every shared
// document, in share order. It returns the total number of index-term
// changes (additions plus replacements) applied across the network. The
// sweep runs over a snapshot of the document set; documents unshared
// concurrently are skipped rather than failing the sweep.
func (n *Network) LearnAll() (changes int, err error) {
	return n.LearnAllCtx(context.Background())
}

// LearnAllCtx is LearnAll honoring ctx: polls and re-publications carry the
// caller's deadline, and the sweep stops at the first cancellation.
//
// With Parallelism > 1 the per-document iterations run concurrently (each
// document's polls and publishes are independent of the others'), except when
// the HotTermDF advisory is enabled: the advisory reads each poll's IndexedDF,
// which concurrent publishes from other documents would perturb in a
// schedule-dependent way, so that configuration keeps the sequential sweep to
// preserve determinism.
func (n *Network) LearnAllCtx(ctx context.Context) (changes int, err error) {
	n.mu.RLock()
	docs := make([]index.DocID, len(n.docOrder))
	copy(docs, n.docOrder)
	owners := make([]*Peer, len(docs))
	for i, id := range docs {
		owners[i] = n.ownerOf[id]
	}
	n.mu.RUnlock()
	if !n.exec.Parallel() || n.cfg.HotTermDF > 0 {
		for i, id := range docs {
			p := owners[i]
			if p == nil {
				continue
			}
			ch, lerr := p.learnDoc(ctx, id)
			if lerr != nil {
				if errors.Is(lerr, errNotOwned) {
					continue
				}
				return changes, fmt.Errorf("core: learning %s: %w", id, lerr)
			}
			changes += ch
		}
		return changes, nil
	}
	chs, errs := fanout.Map(ctx, n.exec, "learn_doc", len(docs), func(ctx context.Context, i int) (int, error) {
		if owners[i] == nil {
			return 0, nil
		}
		return owners[i].learnDoc(ctx, docs[i])
	})
	for i, lerr := range errs {
		if lerr != nil {
			if errors.Is(lerr, errNotOwned) {
				continue
			}
			return changes, fmt.Errorf("core: learning %s: %w", docs[i], lerr)
		}
		changes += chs[i]
	}
	return changes, nil
}

// LearnDoc runs one learning iteration for a single document.
func (n *Network) LearnDoc(doc index.DocID) (int, error) {
	return n.LearnDocCtx(context.Background(), doc)
}

// LearnDocCtx is LearnDoc honoring ctx. An unshared doc wraps ErrNoSuchDoc.
func (n *Network) LearnDocCtx(ctx context.Context, doc index.DocID) (int, error) {
	n.mu.RLock()
	p, ok := n.ownerOf[doc]
	n.mu.RUnlock()
	if !ok {
		return 0, fmt.Errorf("%w: %q", ErrNoSuchDoc, doc)
	}
	return p.learnDoc(ctx, doc)
}

// IndexedTerms returns the current global index terms of a shared document,
// sorted.
func (n *Network) IndexedTerms(doc index.DocID) ([]string, error) {
	n.mu.RLock()
	p, ok := n.ownerOf[doc]
	n.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoSuchDoc, doc)
	}
	return p.indexedTerms(doc), nil
}

// TotalPostings sums the postings stored across all indexing peers' primary
// indexes — the global index footprint SPRITE's selective indexing bounds.
func (n *Network) TotalPostings() int {
	total := 0
	for _, p := range n.Peers() {
		total += p.indexing.ix.NumPostings()
	}
	return total
}

// IndexStats aggregates the block-compressed storage counters across all
// indexing peers' primary indexes: term and posting counts, the number of
// encoded blocks, and the encoded byte footprint. It is the storage-side
// companion of the cache statistics — BytesPerPosting is the compression
// headline the postings benchmark tracks.
func (n *Network) IndexStats() index.Stats {
	var total index.Stats
	for _, p := range n.Peers() {
		p.indexing.mu.Lock()
		s := p.indexing.ix.Stats()
		p.indexing.mu.Unlock()
		total.Terms += s.Terms
		total.Docs += s.Docs
		total.Postings += s.Postings
		total.Blocks += s.Blocks
		total.EncodedBytes += s.EncodedBytes
	}
	return total
}
