package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"

	"github.com/spritedht/sprite/internal/chordid"
	"github.com/spritedht/sprite/internal/corpus"
	"github.com/spritedht/sprite/internal/fanout"
	"github.com/spritedht/sprite/internal/index"
	"github.com/spritedht/sprite/internal/ir"
	"github.com/spritedht/sprite/internal/simnet"
	"github.com/spritedht/sprite/internal/telemetry"
)

// This file implements the owner-peer role: initial term selection (§5.2),
// the periodic learning iteration (§5.3, Algorithm 1), and query processing
// from the querying peer's side (§4).

// docState is the owner's per-document learning state. Per Algorithm 1, the
// owner does not retain past queries — only, per term of the document, the
// cumulative query frequency and the maximum query score seen so far, which
// together make Score computable from each iteration's incremental query set
// alone.
type docState struct {
	// mu serializes learning, refresh, unshare, and term inspection for
	// this document. It is never held across another peer's handler that
	// takes it back (handlers only touch indexingState), so lock ordering
	// is trivially acyclic.
	mu  sync.Mutex
	doc *corpus.Document
	// sketch is the document's serialized feature sketch, computed once at
	// share time ("" when sketching is disabled) and immutable afterwards —
	// readers outside mu (publish fan-outs, the flooding scan) rely on that.
	sketch string
	// indexed is the current set of global index terms.
	indexed map[string]bool
	// stats holds QF and max-qScore per document term that appeared in any
	// seen query ("At every owner peer, for each term in a document, two
	// values are stored: qScore and QF", §5.1).
	stats map[string]*termStat
	// since is the per-term poll watermark into each indexing peer's
	// history: only newer queries are pulled (the incremental query set Q′).
	since map[string]uint64
	// publishedAt remembers which peer last accepted each term's posting, so
	// refresh can detect ownership migration after churn.
	publishedAt map[string]simnet.Addr
	// banned holds terms retired by the §7 hot-term advisory; they are never
	// re-selected for this document ("The document owner peers can then
	// discard the term and pick an analogously important term to index").
	banned map[string]bool
	// stale records peers that may still hold a withdrawn copy of a term's
	// posting: a refresh migration whose withdrawal at the old indexing peer
	// failed leaves the address here, and later refreshes/unshares retry
	// until the copy is confirmed gone (or the holder leaves for good).
	stale map[string][]simnet.Addr
}

type termStat struct {
	qf    int     // cumulative query frequency QF(t)
	maxQS float64 // largest qScore over all queries containing t
}

// score computes the learning rank score under the configured variant. The
// paper's combined formula is Score(t, D) = qScore · log₁₀(QF) (§5.3; the
// worked example in Fig. 2(b) uses base-10 logarithms: 0.75·log 20 = 0.975).
func (ts *termStat) score(v ScoreVariant) float64 {
	if ts.qf <= 0 {
		return 0
	}
	switch v {
	case ScoreQScoreOnly:
		return ts.maxQS
	case ScoreQFOnly:
		return float64(ts.qf)
	case ScoreQScoreTimesQF:
		return ts.maxQS * float64(ts.qf)
	default:
		return ts.maxQS * math.Log10(float64(ts.qf))
	}
}

// qScore is the query-document similarity used for learning:
// qScore(Q, D) = |Q ∩ D| / |Q| (§5.3). The conventional IR formula is
// deliberately not used here — when selecting descriptive queries for a
// document, a term occurring in many queries is more (not less) important.
func qScore(queryTerms []string, doc *corpus.Document) float64 {
	if len(queryTerms) == 0 {
		return 0
	}
	hit := 0
	for _, t := range queryTerms {
		if doc.Contains(t) {
			hit++
		}
	}
	return float64(hit) / float64(len(queryTerms))
}

// share performs initial term selection and publication (§5.2): the top-F
// most frequent terms of the (already preprocessed) document become its
// first global index terms.
func (p *Peer) share(ctx context.Context, doc *corpus.Document) error {
	st := &docState{
		doc:     doc,
		sketch:  p.net.docSketchFor(doc),
		indexed: make(map[string]bool),
		stats:   make(map[string]*termStat),
		since:   make(map[string]uint64),
	}
	for _, term := range doc.TopTerms(p.net.cfg.InitialTerms) {
		if err := p.publishTerm(ctx, st, term); err != nil {
			// Roll back the terms already published: a failed share must not
			// leave entries behind for a document the network will never list
			// as shared. Best-effort, on a fresh context — the caller's may
			// already be done, and an unreachable indexing peer keeps its
			// copy only until it dies or is recycled.
			for _, t := range sortedIndexedTerms(st) {
				p.unpublishTerm(context.Background(), st, t) //nolint:errcheck
			}
			return err
		}
	}
	p.mu.Lock()
	p.owned[doc.ID] = st
	p.mu.Unlock()
	return nil
}

// publishTerm routes a (term → posting) publication through the DHT to the
// term's indexing peer and records it in the document's indexed set.
func (p *Peer) publishTerm(ctx context.Context, st *docState, term string) error {
	ref, _, err := p.node.LookupCtx(ctx, chordid.HashKey(term), nil)
	if err != nil {
		return fmt.Errorf("core: publish %q: %w", term, err)
	}
	return p.publishTermTo(ctx, st, term, ref.Addr)
}

// publishTermTo publishes to a known indexing peer and, on success, records
// the term as indexed there. Callers that resolved the target themselves
// (refresh) use it to keep the lookup and the bookkeeping apart.
func (p *Peer) publishTermTo(ctx context.Context, st *docState, term string, target simnet.Addr) error {
	if err := p.sendPublish(ctx, st, term, target); err != nil {
		return err
	}
	p.net.met.termsPublished.Inc()
	st.indexed[term] = true
	if st.publishedAt == nil {
		st.publishedAt = make(map[string]simnet.Addr)
	}
	st.publishedAt[term] = target
	return nil
}

// sendPublish performs the raw publish call with no docState bookkeeping; it
// is safe to fan out while st.mu is held by the caller (workers only read).
func (p *Peer) sendPublish(ctx context.Context, st *docState, term string, target simnet.Addr) error {
	posting := index.Posting{
		Doc:    st.doc.ID,
		Owner:  string(p.Addr()),
		Freq:   st.doc.TF[term],
		DocLen: st.doc.Length,
		Sketch: st.sketch,
	}
	_, err := p.net.ring.Net().CallCtx(ctx, p.Addr(), target, simnet.Message{
		Type:    msgPublish,
		Payload: publishReq{Term: term, Posting: posting},
		Size:    len(term) + posting.WireSize(),
	})
	if err != nil {
		return fmt.Errorf("core: publish %q to %s: %w", term, target, err)
	}
	return nil
}

// unpublishTerm removes a retired term's posting from its indexing peer. The
// entry lives at the peer that last accepted it (publishedAt), so the
// removal is addressed there directly — after churn a fresh lookup can name
// a different peer than the one actually holding the entry, and unpublishing
// at the wrong peer would orphan the real copy. Local bookkeeping is dropped
// only once the remote removal succeeds; on failure the term stays indexed,
// so callers can retry, force-forget (unshare), or leave it for the next
// refresh.
func (p *Peer) unpublishTerm(ctx context.Context, st *docState, term string) error {
	target, known := st.publishedAt[term]
	if !known {
		ref, _, err := p.node.LookupCtx(ctx, chordid.HashKey(term), nil)
		if err != nil {
			return fmt.Errorf("core: unpublish %q: %w", term, err)
		}
		target = ref.Addr
	}
	stale, err := p.sendUnpublish(ctx, target, term, st.doc.ID)
	if err != nil {
		return err
	}
	for _, a := range stale {
		markStale(st, term, a)
	}
	delete(st.indexed, term)
	delete(st.since, term)
	delete(st.publishedAt, term)
	p.net.met.termsRetired.Inc()
	return nil
}

// sendUnpublish performs the raw unpublish call against a known holder. It
// returns the replica holders the indexing peer could not reach while
// dropping the entry's copies; callers must queue those on the document's
// stale list or the copies leak.
func (p *Peer) sendUnpublish(ctx context.Context, target simnet.Addr, term string, doc index.DocID) ([]simnet.Addr, error) {
	reply, err := p.net.ring.Net().CallCtx(ctx, p.Addr(), target, simnet.Message{
		Type:    msgUnpublish,
		Payload: unpublishReq{Term: term, Doc: doc},
		Size:    len(term) + len(doc),
	})
	if err != nil {
		return nil, fmt.Errorf("core: unpublish %q from %s: %w", term, target, err)
	}
	if resp, ok := reply.Payload.(unpublishResp); ok {
		return resp.StaleReplicas, nil
	}
	return nil, nil
}

// indexedTerms returns the document's current global index terms, sorted.
func (p *Peer) indexedTerms(doc index.DocID) []string {
	p.mu.Lock()
	st := p.owned[doc]
	p.mu.Unlock()
	if st == nil {
		return nil
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	out := make([]string, 0, len(st.indexed))
	for t := range st.indexed {
		out = append(out, t)
	}
	sort.Strings(out)
	return out
}

// insertQuery caches the keywords at every responsible indexing peer without
// retrieving postings. Per-term insertions are independent, so they fan out;
// every reachable peer is reached even when some fail, and the first failure
// in term order is reported (the sequential loop's contract).
func (p *Peer) insertQuery(ctx context.Context, terms []string) error {
	dts := distinctTerms(terms)
	errs := fanout.ForEach(ctx, p.net.exec, "insert", len(dts), func(ctx context.Context, i int) error {
		ref, _, err := p.node.LookupCtx(ctx, chordid.HashKey(dts[i]), nil)
		if err != nil {
			return err
		}
		_, err = p.net.ring.Net().CallCtx(ctx, p.Addr(), ref.Addr, simnet.Message{
			Type:    msgCacheQuery,
			Payload: cacheQueryReq{Query: terms},
			Size:    sizeTerms(terms),
		})
		return err
	})
	return fanout.FirstError(errs)
}

// errNotOwned reports a learning request for a document this peer no longer
// owns (it raced with an unshare); sweeps skip it rather than failing.
var errNotOwned = errors.New("document not owned by peer")

// search implements §4's query processing from the querying peer: hash each
// keyword, fetch postings from the responsible indexing peers, consolidate
// per-document partial scores, and rank with the Lee et al. similarity.
// Unreachable terms are skipped (§7's degraded mode).
func (p *Peer) search(terms []string, k int, record bool) ir.RankedList {
	rl, _ := p.searchCtx(context.Background(), terms, k, record, nil)
	return rl
}

// searchCtx is search under a context with an optional (possibly nil) trace
// span: each query term gets a child span covering its DHT lookup (one
// grandchild span per Chord hop) and the postings fetch from the indexing
// peer. Fetches run under the network's resilience policy (retry, hedging,
// replica failover — see fetchTermPostings).
//
// Error contract: a done context aborts the search, returning nil and an
// error wrapping ctx.Err(). Terms that failed for any other reason are
// skipped; if any were, the ranked list over the remaining terms is returned
// together with a *PartialError naming them (§7's degraded mode, made
// visible).
//
// When caching is enabled the result cache short-circuits verbatim repeats
// of (query, k) and the postings cache short-circuits per-term fetches; both
// keep the learning pipeline identical to the uncached run by re-recording
// the query at each term's indexing peer (see recordQueryAt). Results are
// stored only if the caches' generation did not move while the search ran, so
// a concurrent invalidation (peer failure, index mutation) can never be
// undone by a search that read the pre-invalidation state.
func (p *Peer) searchCtx(ctx context.Context, terms []string, k int, record bool, span *telemetry.Span) (ir.RankedList, error) {
	p.net.met.searches.Inc()
	if p.net.cfg.Telemetry != nil {
		start := p.net.clock.Now()
		defer func() {
			p.net.met.queryLatency.Observe(p.net.clock.Now().Sub(start).Microseconds())
		}()
	}

	rc := p.net.caches.results
	var rkey string
	if rc != nil {
		rkey = resultKey(terms, k)
		if ent, ok := rc.Get(rkey); ok {
			span.Annotate("result_cache", "hit")
			if record {
				// The uncached path records the query once per distinct term
				// at that term's indexing peer; replay the same fan-out so
				// query histories (and hence learning) don't diverge. A failed
				// recording is a dropped history entry — counted, so skewed
				// learning under partial outages is visible in telemetry.
				dts := distinctTerms(terms)
				errs := fanout.ForEach(ctx, p.net.exec, "record", len(dts), func(ctx context.Context, i int) error {
					return p.recordQueryAtErr(ctx, ent.peers[dts[i]], terms)
				})
				for _, rerr := range errs {
					if rerr != nil {
						p.net.met.recordErrors.Inc()
					}
				}
			}
			return append(ir.RankedList(nil), ent.rl...), nil
		}
	}
	// The generation observed before any remote read; the result is stored
	// only if it is still current at store time (see cache.PutAt).
	rcGen := rc.Generation()

	pc := p.net.caches.postings
	qtf := make(map[string]int, len(terms))
	for _, t := range terms {
		qtf[t]++
	}
	n := p.net.cfg.SurrogateN
	var termPeers map[string]simnet.Addr
	if rc != nil {
		termPeers = make(map[string]simnet.Addr, len(terms))
	}

	// Per-term pipeline, fanned out: each worker performs the Chord lookup,
	// postings fetch (cached or resilient), query-history recording, and
	// scores its term into a private partial accumulator. The single-threaded
	// collection below folds the partials in term order, so ranked lists,
	// failure lists, and counters are bit-identical to the sequential loop
	// regardless of completion order.
	type termOut struct {
		resp getPostingsResp
		peer simnet.Addr
		part []ir.Contribution
	}
	dts := distinctTerms(terms)
	outs, errs := fanout.Map(ctx, p.net.exec, "fetch", len(dts), func(ctx context.Context, i int) (termOut, error) {
		term := dts[i]
		tsp := span.StartChild("term " + term)
		var resp getPostingsResp
		var peer simnet.Addr
		if pc != nil {
			ent, outcome, err := p.fetchPostingsCached(ctx, term, tsp)
			if err != nil {
				tsp.Annotate("error", err.Error())
				tsp.Finish()
				return termOut{}, err
			}
			tsp.Annotate("postings_cache", outcome.String())
			if record {
				p.recordQueryAt(ent.peer, terms)
			}
			resp, peer = ent.resp, ent.peer
		} else {
			var err error
			resp, peer, err = p.fetchTermPostings(ctx, term, terms, record, tsp)
			if err != nil {
				tsp.Annotate("error", err.Error())
				tsp.Finish()
				return termOut{}, err
			}
			tsp.Annotate("indexing_peer", string(peer))
		}
		tsp.Finish()
		var part []ir.Contribution
		if resp.IndexedDF > 0 {
			// Score straight off the compressed blocks: the cursor decodes one
			// posting at a time, so the full list is never materialized.
			wq := ir.QueryWeight(qtf[term], len(terms), n, resp.IndexedDF)
			part = ir.CollectStream(resp.Postings.Cursor(), wq, n, resp.IndexedDF,
				make([]ir.Contribution, 0, resp.Postings.Len()))
		}
		return termOut{resp: resp, peer: peer, part: part}, nil
	})

	accSize := 0
	for i := range outs {
		if errs[i] == nil {
			accSize += len(outs[i].part)
		}
	}
	acc, _ := p.net.accPool.Get().(*ir.Accumulator)
	if acc == nil {
		acc = ir.NewAccumulatorSized(accSize)
	}
	var failed []TermFailure
	for i, term := range dts {
		if errs[i] != nil {
			// A done caller context aborts the whole search; any other fetch
			// failure records the term as skipped and degrades (§7).
			if ctx.Err() != nil {
				return nil, fmt.Errorf("core: search term %q: %w", term, errs[i])
			}
			p.net.met.termsSkipped.Inc()
			failed = append(failed, TermFailure{Term: term, Err: errs[i]})
			continue
		}
		if termPeers != nil {
			termPeers[term] = outs[i].peer
		}
		acc.AccumulateAll(outs[i].part)
	}
	rl := acc.RankedTop(k)
	acc.Reset()
	p.net.accPool.Put(acc)
	if rc != nil && len(failed) == 0 {
		ent := resultEntry{rl: append(ir.RankedList(nil), rl...), peers: termPeers}
		rc.PutAt(rcGen, rkey, ent, resultBytes(ent))
	}
	if len(failed) > 0 {
		p.net.met.partials.Inc()
		return rl, &PartialError{Failures: failed}
	}
	return rl, nil
}

// learnDoc runs one learning iteration for a document (§5.3, Algorithm 1):
//
//  1. Poll the indexing peer of every current index term for the incremental
//     query set Q′ (each query returned by exactly one peer).
//  2. Fold Q′ into the per-term running statistics (max qScore, cumulative
//     QF) and recompute Score(t) = qScore·log₁₀(QF) for the rank list RL.
//  3. Publish up to TermsPerIteration new high-Score terms; once the
//     MaxIndexTerms cap is reached, replace the lowest-scoring indexed terms
//     instead (Fig. 2(a)'s insertion + replacement behaviour).
//
// It returns the number of index changes (publishes + replacements).
func (p *Peer) learnDoc(ctx context.Context, docID index.DocID) (int, error) {
	p.mu.Lock()
	st := p.owned[docID]
	p.mu.Unlock()
	if st == nil {
		return 0, fmt.Errorf("core: peer %s: %q: %w", p.Addr(), docID, errNotOwned)
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	p.net.met.learnRounds.Inc()

	// Step 1: pull the incremental query set.
	docTerms := make([]string, 0, len(st.indexed))
	for t := range st.indexed {
		docTerms = append(docTerms, t)
	}
	sort.Strings(docTerms)

	// The polls are pure reads of the indexing peers' histories, so they fan
	// out; the watermark updates and incremental-set assembly fold in term
	// order below (st.mu is held across the fan-out — workers never touch st).
	type pollOut struct {
		resp pollResp
		ok   bool
	}
	outs, perrs := fanout.Map(ctx, p.net.exec, "poll", len(docTerms), func(ctx context.Context, i int) (pollOut, error) {
		term := docTerms[i]
		ref, _, err := p.node.LookupCtx(ctx, chordid.HashKey(term), nil)
		if err != nil {
			return pollOut{}, nil // indexing peer unreachable; learn from the rest
		}
		reply, err := p.net.ring.Net().CallCtx(ctx, p.Addr(), ref.Addr, simnet.Message{
			Type: msgPoll,
			Payload: pollReq{
				Term:     term,
				Doc:      docID,
				DocTerms: docTerms,
				Since:    st.since[term],
			},
			Size: len(term) + sizeTerms(docTerms) + 8,
		})
		if err != nil {
			return pollOut{}, nil
		}
		return pollOut{resp: reply.Payload.(pollResp), ok: true}, nil
	})
	// Workers never return errors themselves; a non-nil slot means the item
	// was skipped because the context was done — abort, as the sequential
	// loop's per-term ctx check did.
	if cerr := fanout.FirstError(perrs); cerr != nil {
		return 0, cerr
	}
	var incremental [][]string
	var hot []string
	for i, term := range docTerms {
		if !outs[i].ok {
			continue
		}
		resp := outs[i].resp
		st.since[term] = resp.NewSince
		if p.net.cfg.HotTermDF > 0 && resp.IndexedDF >= p.net.cfg.HotTermDF {
			hot = append(hot, term)
		}
		incremental = append(incremental, resp.Queries...)
	}

	// §7 hot-term advisory: drop terms whose indexed document frequency is
	// so high that their IDF — and hence their contribution to similarity —
	// is negligible, while their maintenance load on the indexing peer is
	// maximal. The freed slots are refilled by this iteration's selection.
	for _, term := range hot {
		if len(st.indexed) <= 1 {
			break // never strip a document's last index term
		}
		if st.banned == nil {
			st.banned = make(map[string]bool)
		}
		st.banned[term] = true
		// The advisory commits only if the entry's removal went through. On
		// failure (the indexing peer died between the poll and the removal)
		// the ban is rolled back and the term stays indexed, so the next
		// iteration retries. Keeping the ban while the entry survives would
		// wedge the document: the term would never be re-selected or
		// refreshed, and the stale entry would resurface ownerless when the
		// indexing peer recovers.
		if err := p.unpublishTerm(ctx, st, term); err != nil {
			delete(st.banned, term)
			continue
		}
	}

	// Step 2: fold Q′ into the running statistics (Algorithm 1 lines 4–16).
	for _, q := range incremental {
		qs := qScore(q, st.doc)
		for _, t := range distinctTerms(q) {
			if !st.doc.Contains(t) {
				continue
			}
			ts := st.stats[t]
			if ts == nil {
				ts = &termStat{}
				st.stats[t] = ts
			}
			ts.qf++
			if qs > ts.maxQS {
				ts.maxQS = qs
			}
		}
	}

	// Step 3: rebuild the rank list and apply additions/replacements.
	changes, err := p.applyRankList(ctx, st)
	p.net.met.learnChanges.Add(int64(changes))
	return changes, err
}

// rankedTerm pairs a term with its learning rank key.
type rankedTerm struct {
	term  string
	score float64
	qs    float64
	tf    int
}

func (p *Peer) rankList(st *docState) []rankedTerm {
	variant := p.net.cfg.Score
	rl := make([]rankedTerm, 0, len(st.stats))
	for t, ts := range st.stats {
		rl = append(rl, rankedTerm{term: t, score: ts.score(variant), qs: ts.maxQS, tf: st.doc.TF[t]})
	}
	// Sort by Score; ties (notably QF=1 ⇒ Score=0) break by qScore, then
	// document term frequency, then term, keeping selection deterministic.
	sort.Slice(rl, func(i, j int) bool {
		a, b := rl[i], rl[j]
		if a.score != b.score {
			return a.score > b.score
		}
		if a.qs != b.qs {
			return a.qs > b.qs
		}
		if a.tf != b.tf {
			return a.tf > b.tf
		}
		return a.term < b.term
	})
	return rl
}

func (p *Peer) applyRankList(ctx context.Context, st *docState) (int, error) {
	rl := p.rankList(st)
	budget := p.net.cfg.TermsPerIteration
	cap := p.net.cfg.MaxIndexTerms
	changes := 0

	// indexedScore returns the replacement-priority score of a currently
	// indexed term: learned terms use Score; never-queried terms (initial
	// frequency picks the learner knows nothing about) rank below everything
	// and are the first to be replaced — cf. Fig. 1, where frequent-but-
	// unqueried term c is not worth indexing.
	indexedScore := func(t string) (float64, float64) {
		if ts, ok := st.stats[t]; ok {
			return ts.score(p.net.cfg.Score), ts.maxQS
		}
		return -1, -1
	}

	for _, cand := range rl {
		if budget == 0 {
			break
		}
		if st.indexed[cand.term] || st.banned[cand.term] {
			continue
		}
		if len(st.indexed) < cap {
			if err := p.publishTerm(ctx, st, cand.term); err != nil {
				return changes, err
			}
			changes++
			budget--
			continue
		}
		// At the cap: find the weakest indexed term and replace it if the
		// candidate ranks strictly higher.
		worst, worstScore, worstQS := "", math.Inf(1), math.Inf(1)
		for t := range st.indexed {
			s, q := indexedScore(t)
			if s < worstScore || (s == worstScore && q < worstQS) ||
				(s == worstScore && q == worstQS && t > worst) {
				worst, worstScore, worstQS = t, s, q
			}
		}
		if cand.score > worstScore || (cand.score == worstScore && cand.qs > worstQS) {
			if err := p.unpublishTerm(ctx, st, worst); err != nil {
				return changes, err
			}
			if err := p.publishTerm(ctx, st, cand.term); err != nil {
				return changes, err
			}
			changes++
			budget--
		} else {
			// Candidates are sorted descending; nothing further can win.
			break
		}
	}

	// If learning produced fewer candidates than the iteration budget, fill
	// the remainder with the next most frequent unindexed terms — the
	// paper's initial-guess selector (§5.2) reapplied. This keeps the number
	// of indexed terms at the configured level (§6.2 fixes it at
	// F + iterations·TermsPerIteration), so a document with a thin query
	// history degrades gracefully to the static frequency scheme instead of
	// being under-indexed.
	if budget > 0 && len(st.indexed) < cap {
		for _, term := range st.doc.TopTerms(len(st.doc.TF)) {
			if budget == 0 || len(st.indexed) >= cap {
				break
			}
			if st.indexed[term] || st.banned[term] {
				continue
			}
			if err := p.publishTerm(ctx, st, term); err != nil {
				return changes, err
			}
			changes++
			budget--
		}
	}
	return changes, nil
}

func distinctTerms(terms []string) []string {
	seen := make(map[string]bool, len(terms))
	out := make([]string, 0, len(terms))
	for _, t := range terms {
		if !seen[t] {
			seen[t] = true
			out = append(out, t)
		}
	}
	return out
}
