package core

import (
	"context"
	"fmt"
	"sort"

	"github.com/spritedht/sprite/internal/chord"
	"github.com/spritedht/sprite/internal/chordid"
	"github.com/spritedht/sprite/internal/index"
	"github.com/spritedht/sprite/internal/repair"
	"github.com/spritedht/sprite/internal/simnet"
)

// This file implements peer-driven data placement: the peers holding index
// entries keep them placed, instead of waiting for the owners' periodic
// refresh sweep to re-publish everything.
//
// Three mechanisms cooperate:
//
//   - Join handoff: when stabilization makes a node adopt a new predecessor,
//     its owner arc shrinks, and the entries that fell outside it are handed
//     to the adopted peer immediately (the arc-change hook below).
//   - Graceful leave: Network.Leave hands the departing peer's primary
//     entries to its ring successor and retires its replica-holder records
//     at the primaries before unregistering it.
//   - Anti-entropy: primary holders periodically exchange compact Merkle
//     summaries of their arc with their §7 replica holders and push only the
//     divergent term lists (Network.Repair).
//
// The handoff protocol must preserve the owner-ledger invariant — if an
// owner records term t as published at X, then X holds the entry — at every
// quiescent point, so moves are staged:
//
//  1. install the entries at the new holder (both peers now serve them;
//     the owner's record still points at the sender, which still holds them);
//  2. per entry, ask the owner to relocate its record (compare-and-swap on
//     the current holder);
//  3. on a confirmed flip, delete the sender's copy; on a refused or
//     unreachable owner, revert the installed copy instead.
//
// Entries whose owner cannot confirm thus stay exactly where the owner
// believes they are.

// attachRepair subscribes a peer to its node's arc changes. The hook fires
// the moment notify (or a graceful-leave splice) installs a new predecessor,
// which is exactly when the peer's owner arc changes shape.
func (n *Network) attachRepair(p *Peer) {
	p.node.SetPredChangeHook(func(_, _ chord.Ref) {
		p.shedToPred()
	})
}

// shedToPred hands every primary entry outside this peer's current owner arc
// to its predecessor. The predecessor's arc need not cover all of them — a
// mass join inserts several peers at once — but each receiver's own arc
// changes (or the next Repair sweep) forward misplaced entries again, so the
// population converges with each entry traveling counter-clockwise at most
// once per hop. Returns the number of entries moved.
func (p *Peer) shedToPred() int {
	pred := p.node.Predecessor()
	if pred.Addr == "" || pred.Addr == p.Addr() {
		return 0 // no predecessor known (or singleton ring): whole space is ours
	}
	arc := chordid.OwnerArc(pred.ID, p.node.ID())
	entries := p.collectOutsideArc(arc)
	if len(entries) == 0 {
		return 0
	}
	moved, _ := p.handoffEntries(pred.Addr, entries, false)
	return moved
}

// collectOutsideArc snapshots the primary entries whose term keys fall
// outside arc, with their recorded replica locations.
func (p *Peer) collectOutsideArc(arc chordid.Arc) []handoffEntry {
	p.indexing.mu.Lock()
	defer p.indexing.mu.Unlock()
	var out []handoffEntry
	for _, term := range p.indexing.ix.Terms() {
		if arc.ContainsKey(term) {
			continue
		}
		for posting := range p.indexing.ix.All(term) {
			locs := append([]simnet.Addr(nil), p.indexing.replicaLocs[term][posting.Doc]...)
			out = append(out, handoffEntry{Term: term, Posting: posting, ReplicaLocs: locs})
		}
	}
	return out
}

// allPrimaryEntries snapshots every primary entry (graceful leave hands the
// whole index over, not just a misplaced subset).
func (p *Peer) allPrimaryEntries() []handoffEntry {
	p.indexing.mu.Lock()
	defer p.indexing.mu.Unlock()
	var out []handoffEntry
	for _, term := range p.indexing.ix.Terms() {
		for posting := range p.indexing.ix.All(term) {
			locs := append([]simnet.Addr(nil), p.indexing.replicaLocs[term][posting.Doc]...)
			out = append(out, handoffEntry{Term: term, Posting: posting, ReplicaLocs: locs})
		}
	}
	return out
}

// handoffEntries runs the staged handoff protocol against target. With force
// set (graceful leave — the sender is departing no matter what), entries
// whose owner could not confirm the move are left installed at the target
// anyway and returned as failed, their owner records now stale; without it
// they are reverted at the target and stay with the sender. Returns the
// count of cleanly relocated entries.
func (p *Peer) handoffEntries(target simnet.Addr, entries []handoffEntry, force bool) (moved int, failed []handoffEntry) {
	size := 0
	for _, e := range entries {
		size += len(e.Term) + e.Posting.WireSize() + 8*len(e.ReplicaLocs)
	}
	reply, err := p.net.ring.Net().Call(p.Addr(), target, simnet.Message{
		Type:    msgHandoff,
		Payload: handoffReq{Entries: entries},
		Size:    size,
	})
	if err != nil {
		// Target unreachable: nothing was installed, nothing moves. Under
		// force the caller is departing and these entries die with it.
		if force {
			return 0, entries
		}
		return 0, nil
	}
	var existing []bool
	if resp, ok := reply.Payload.(handoffResp); ok {
		existing = resp.Existing
	}
	for i, e := range entries {
		ok := p.relocateEntry(e, target)
		switch {
		case ok:
			p.indexing.unpublish(e.Term, e.Posting.Doc)
			p.indexing.takeReplicaLocs(e.Term, e.Posting.Doc) // transferred with the entry
			moved++
		case force:
			// The owner is unreachable (or disagrees); its record now points
			// at a peer that is leaving. The copy at the target is the one
			// that keeps the term findable — queries route there — and the
			// owner's next stale-withdrawal or refresh reconciles the record.
			p.indexing.unpublish(e.Term, e.Posting.Doc)
			p.indexing.takeReplicaLocs(e.Term, e.Posting.Doc)
			failed = append(failed, e)
		case i < len(existing) && existing[i]:
			// The target already held this (term, doc) before the install —
			// the batch merged with an entry the target owns in its own
			// right (e.g. re-anchored there by orphan reclaim while this
			// peer still held a stale duplicate). Reverting would destroy
			// the target's legitimate entry, so the install stands and the
			// sender keeps its copy for the owner's record to reconcile.
		default:
			// Revert round 1 so the entry exists only where the owner says.
			// A failed revert means the target died mid-protocol — its state
			// is gone (or will be rebuilt by its own repair), so the extra
			// copy cannot linger.
			p.net.ring.Net().Call(p.Addr(), target, simnet.Message{ //nolint:errcheck
				Type:    msgHandoffDrop,
				Payload: handoffDropReq{Term: e.Term, Doc: e.Posting.Doc},
				Size:    len(e.Term) + len(e.Posting.Doc),
			})
		}
	}
	if moved > 0 || len(failed) > 0 {
		p.net.caches.invalidate()
	}
	p.net.met.repairHandoffs.Add(int64(moved))
	return moved, failed
}

// relocateEntry asks the entry's document owner to flip its holder-of-record
// from this peer to target.
func (p *Peer) relocateEntry(e handoffEntry, target simnet.Addr) bool {
	owner := simnet.Addr(e.Posting.Owner)
	reply, err := p.net.ring.Net().Call(p.Addr(), owner, simnet.Message{
		Type:    msgRelocate,
		Payload: relocateReq{Term: e.Term, Doc: e.Posting.Doc, From: p.Addr(), To: target},
		Size:    len(e.Term) + len(e.Posting.Doc) + 16,
	})
	if err != nil {
		return false
	}
	resp, ok := reply.Payload.(relocateResp)
	return ok && resp.OK
}

// handleRelocate is the owner side of the holder-of-record flip. The
// compare-and-swap on From makes concurrent movers safe: whichever relocate
// reaches the owner first wins, and the loser reverts its installed copy.
func (p *Peer) handleRelocate(req relocateReq) relocateResp {
	p.mu.Lock()
	st := p.owned[req.Doc]
	p.mu.Unlock()
	if st == nil {
		return relocateResp{}
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	if !st.indexed[req.Term] || st.publishedAt[req.Term] != req.From {
		return relocateResp{}
	}
	st.publishedAt[req.Term] = req.To
	return relocateResp{OK: true}
}

// antiEntropy reconciles this peer's primary entries (restricted to its
// owner arc) with each of its §7 replica holders: one summary round trip
// when in sync, plus one push of exactly the divergent term lists when not.
// Terms the replica holder has but the primary does not are left alone — a
// primary that just absorbed a dead predecessor's arc has not absorbed its
// entries, and those replicas may be the only live copies failover can
// serve. Deletions propagate through the withdrawal path instead, which
// knows every recorded copy.
func (p *Peer) antiEntropy() (reconciles, divergent int) {
	pred := p.node.Predecessor()
	if pred.Addr == "" {
		return 0, 0
	}
	arc := chordid.OwnerArc(pred.ID, p.node.ID())
	p.indexing.mu.Lock()
	digests := p.indexing.ix.ArcDigests(arc)
	p.indexing.mu.Unlock()
	sum := repair.Fold(digests)
	for _, target := range p.replicaTargets() {
		reply, err := p.net.ring.Net().Call(p.Addr(), target, simnet.Message{
			Type:    msgRepairDigest,
			Payload: repairDigestReq{Arc: arc, Summary: sum},
			Size:    2*chordid.Bytes + 8*(1+repair.Buckets),
		})
		if err != nil {
			continue
		}
		reconciles++
		p.net.met.repairReconciles.Inc()
		resp, ok := reply.Payload.(repairDigestResp)
		if !ok || resp.InSync {
			continue
		}
		need, _ := repair.DiffTerms(repair.InBuckets(digests, resp.Buckets), resp.Local)
		if len(need) == 0 {
			continue
		}
		divergent += len(need)
		p.net.met.repairDivergent.Add(int64(len(need)))
		set := make([]termPostings, 0, len(need))
		size := 0
		p.indexing.mu.Lock()
		for _, t := range need {
			posts := p.indexing.ix.PostingsSlice(t)
			set = append(set, termPostings{Term: t, Postings: posts})
			size += len(t)
			for _, post := range posts {
				size += post.WireSize()
			}
		}
		p.indexing.mu.Unlock()
		if _, err := p.net.ring.Net().Call(p.Addr(), target, simnet.Message{
			Type:    msgRepairPush,
			Payload: repairPushReq{Arc: arc, Set: set},
			Size:    size,
		}); err != nil {
			continue
		}
		// The push created copies at target; record them so withdrawals
		// reach this holder like any replicateOut target.
		for _, tp := range set {
			for _, post := range tp.Postings {
				p.indexing.recordReplicaLocs(tp.Term, post.Doc, []simnet.Addr{target})
			}
		}
	}
	return reconciles, divergent
}

// handleRepairDigest is the replica holder's side of the summary exchange.
func (p *Peer) handleRepairDigest(req repairDigestReq) repairDigestResp {
	p.indexing.mu.Lock()
	local := p.indexing.replicas.ArcDigests(req.Arc)
	p.indexing.mu.Unlock()
	div := repair.Divergent(req.Summary, repair.Fold(local))
	if div == nil {
		return repairDigestResp{InSync: true}
	}
	return repairDigestResp{Buckets: div, Local: repair.InBuckets(local, div)}
}

// handleRepairPush replaces the pushed terms' replica lists wholesale.
func (p *Peer) handleRepairPush(req repairPushReq) {
	p.indexing.mu.Lock()
	for _, tp := range req.Set {
		for _, post := range p.indexing.replicas.PostingsSlice(tp.Term) {
			p.indexing.replicas.Remove(tp.Term, post.Doc)
		}
		for _, post := range tp.Postings {
			p.indexing.replicas.Add(tp.Term, post)
		}
	}
	p.indexing.mu.Unlock()
	p.net.caches.invalidate()
}

// handleReplicaRetire erases a departing holder from the replica-location
// records of the listed entries.
func (p *Peer) handleReplicaRetire(req replicaRetireReq) int {
	p.indexing.mu.Lock()
	defer p.indexing.mu.Unlock()
	cleared := 0
	byDoc := p.indexing.replicaLocs[req.Term]
	for _, doc := range req.Docs {
		locs := byDoc[doc]
		kept := locs[:0]
		for _, a := range locs {
			if a == req.Holder {
				cleared++
			} else {
				kept = append(kept, a)
			}
		}
		switch {
		case len(kept) == 0 && len(locs) > 0:
			delete(byDoc, doc)
		case len(kept) < len(locs):
			byDoc[doc] = kept
		}
	}
	if len(byDoc) == 0 {
		delete(p.indexing.replicaLocs, req.Term)
	}
	return cleared
}

// RepairStats summarizes one Network.Repair sweep.
type RepairStats struct {
	// Moved is the number of primary entries relocated to their arc owner.
	Moved int
	// Rounds is the number of shed rounds until no entry moved.
	Rounds int
	// Reconciles is the number of anti-entropy digest exchanges performed.
	Reconciles int
	// Divergent is the number of term lists those exchanges had to push.
	Divergent int
}

// Repair runs one peer-driven maintenance sweep: every alive peer sheds
// misplaced primary entries to its predecessor (repeated until a fixpoint,
// so chains of misplacement drain), then every primary reconciles its arc
// with its replica holders. Unlike RefreshAll it involves no owners and no
// per-term lookups — its message cost is proportional to what actually
// diverged, not to the index size.
func (n *Network) Repair() RepairStats {
	var st RepairStats
	// A misplaced entry moves at least one hop counter-clockwise per round,
	// and each hop is final or strictly closer to its owner, so the fixpoint
	// arrives in at most one round per peer; the cap only guards pathology.
	for round := 0; round < len(n.Peers())+1; round++ {
		moved := 0
		for _, p := range n.Peers() {
			if !n.ring.Net().Alive(p.Addr()) {
				continue
			}
			moved += p.shedToPred()
		}
		st.Rounds++
		st.Moved += moved
		if moved == 0 {
			break
		}
	}
	if n.cfg.ReplicationFactor > 0 {
		for _, p := range n.Peers() {
			if !n.ring.Net().Alive(p.Addr()) {
				continue
			}
			r, d := p.antiEntropy()
			st.Reconciles += r
			st.Divergent += d
		}
	}
	return st
}

// FlushStaleAll retries every owner's pending stale withdrawals and repairs
// records orphaned by graceful departures — the cheap owner-side half of the
// old refresh sweep (it sends only the overdue unpublishes and the orphaned
// re-publishes, not a re-publication of every term). Heal sequences run it
// after Repair so recovered holders shed withdrawn copies and owners whose
// recorded holder left the network re-anchor those terms.
func (n *Network) FlushStaleAll() {
	n.mu.RLock()
	docs := make([]index.DocID, len(n.docOrder))
	copy(docs, n.docOrder)
	owners := make([]*Peer, len(docs))
	for i, id := range docs {
		owners[i] = n.ownerOf[id]
	}
	n.mu.RUnlock()
	for i, id := range docs {
		p := owners[i]
		if p == nil || !n.ring.Net().Alive(p.Addr()) {
			continue
		}
		p.mu.Lock()
		st := p.owned[id]
		p.mu.Unlock()
		if st == nil {
			continue
		}
		st.mu.Lock()
		n.dropDepartedStale(st)
		p.flushStale(st)
		p.reclaimOrphans(st)
		st.mu.Unlock()
	}
}

// dropDepartedStale removes stale-withdrawal targets that no longer exist: a
// gracefully departed peer never comes back, so the retry can never land —
// its copies died with it (or were handed off and are ledgered elsewhere).
// Caller holds st.mu.
func (n *Network) dropDepartedStale(st *docState) {
	for term, addrs := range st.stale {
		kept := addrs[:0]
		for _, a := range addrs {
			if _, ok := n.Peer(a); ok {
				kept = append(kept, a)
			}
		}
		if len(kept) == 0 {
			delete(st.stale, term)
		} else {
			st.stale[term] = kept
		}
	}
}

// reclaimOrphans re-publishes indexed terms whose recorded holder no longer
// exists. A graceful leave with an unreachable owner leaves the record
// pointing at the departed peer (the entry itself went to the leave-time
// successor); once the owner is reachable again this re-anchors the record —
// and the entry — at the term's current indexing peer. Cost is proportional
// to the orphaned records, not the index. Caller holds st.mu.
func (p *Peer) reclaimOrphans(st *docState) int {
	reclaimed := 0
	for _, term := range sortedIndexedTerms(st) {
		at, ok := st.publishedAt[term]
		if !ok {
			continue
		}
		if _, exists := p.net.Peer(at); exists {
			continue
		}
		ref, _, err := p.node.Lookup(chordid.HashKey(term))
		if err != nil {
			continue
		}
		if err := p.publishTermTo(context.Background(), st, term, ref.Addr); err != nil {
			continue
		}
		reclaimed++
	}
	return reclaimed
}

// LeaveReport summarizes a graceful departure.
type LeaveReport struct {
	// Docs is the number of documents the peer owned and withdrew on the way
	// out (a document's owner role leaves with it).
	Docs int
	// Handoffs is the number of primary entries cleanly handed to the
	// successor (owner records relocated).
	Handoffs int
	// Unrelocated lists entries installed at the successor whose owners
	// could not be told about the move — their records point at the departed
	// peer until their own stale-handling catches up.
	Unrelocated []IndexEntry
	// Retired is the number of replica-location records cleared at primary
	// holders.
	Retired int
}

// Leave removes a peer gracefully. Before the node is spliced out of the
// ring and unregistered, the peer (1) unshares every document it owns,
// (2) hands its primary index entries to its ring successor through the
// staged handoff protocol, and (3) retires itself from the replica-location
// records of the primaries it held copies for. The departed peer is
// forgotten by the network; the address cannot be revived.
func (n *Network) Leave(addr simnet.Addr) (LeaveReport, error) {
	n.mu.RLock()
	p, ok := n.peers[addr]
	n.mu.RUnlock()
	var rep LeaveReport
	if !ok {
		return rep, fmt.Errorf("%w: %q", ErrNoSuchPeer, addr)
	}
	if !n.ring.Net().Alive(addr) {
		return rep, fmt.Errorf("core: peer %q cannot leave gracefully while failed", addr)
	}

	// Owner role: the documents leave with their owner.
	n.mu.RLock()
	var docs []index.DocID
	for _, id := range n.docOrder {
		if n.ownerOf[id] == p {
			docs = append(docs, id)
		}
	}
	n.mu.RUnlock()
	for _, id := range docs {
		n.Unshare(id) //nolint:errcheck // best-effort: unreachable holders keep copies until they die
		rep.Docs++
	}

	// Indexing role: hand every primary entry to the first alive successor.
	var succ simnet.Addr
	for _, ref := range p.node.SuccessorList() {
		if ref.Addr != addr && n.ring.Net().Alive(ref.Addr) {
			succ = ref.Addr
			break
		}
	}
	if succ != "" {
		moved, failed := p.handoffEntries(succ, p.allPrimaryEntries(), true)
		rep.Handoffs = moved
		for _, e := range failed {
			rep.Unrelocated = append(rep.Unrelocated, IndexEntry{Peer: succ, Term: e.Term, Posting: e.Posting})
		}
		sortEntries(rep.Unrelocated)
	}

	// Replica role: tell each term's primary this holder is going away, so
	// recorded withdrawal targets do not chase a permanently absent peer.
	p.indexing.mu.Lock()
	heldTerms := p.indexing.replicas.Terms()
	held := make(map[string][]index.DocID, len(heldTerms))
	for _, term := range heldTerms {
		for posting := range p.indexing.replicas.All(term) {
			held[term] = append(held[term], posting.Doc)
		}
	}
	p.indexing.mu.Unlock()
	for _, term := range heldTerms {
		ref, _, err := p.node.Lookup(chordid.HashKey(term))
		if err != nil || ref.Addr == addr {
			continue
		}
		if _, err := n.ring.Net().Call(addr, ref.Addr, simnet.Message{
			Type:    msgReplicaRetire,
			Payload: replicaRetireReq{Holder: addr, Term: term, Docs: held[term]},
			Size:    len(term) + 8*len(held[term]),
		}); err == nil {
			rep.Retired += len(held[term])
		}
	}

	// Depart: forget the peer, then splice the node out of the ring (which
	// fires the successor's arc-change hook — its arc grows, so nothing
	// sheds) and unregister it.
	n.mu.Lock()
	delete(n.peers, addr)
	for i, q := range n.order {
		if q == p {
			n.order = append(n.order[:i], n.order[i+1:]...)
			break
		}
	}
	n.mu.Unlock()
	n.ring.Leave(p.node)
	n.caches.invalidate()
	return rep, nil
}

// sortEntries orders index entries for deterministic reporting.
func sortEntries(entries []IndexEntry) {
	sort.Slice(entries, func(i, j int) bool {
		a, b := entries[i], entries[j]
		if a.Term != b.Term {
			return a.Term < b.Term
		}
		return a.Posting.Doc < b.Posting.Doc
	})
}
