package core

import (
	"context"
	"fmt"
	"sort"
	"sync"

	"github.com/spritedht/sprite/internal/chord"
	"github.com/spritedht/sprite/internal/chordid"
	"github.com/spritedht/sprite/internal/fanout"
	"github.com/spritedht/sprite/internal/index"
	"github.com/spritedht/sprite/internal/simnet"
)

// Peer is one SPRITE participant: a Chord node plus indexing-peer state (the
// inverted lists and query history for terms the overlay assigns to it) and
// owner-peer state (the documents it shares and their learning statistics).
type Peer struct {
	net  *Network
	node *chord.Node

	indexing indexingState

	mu    sync.Mutex
	owned map[index.DocID]*docState
}

func newPeer(n *Network, node *chord.Node) *Peer {
	return &Peer{
		net:  n,
		node: node,
		indexing: indexingState{
			ix:         index.NewInverted(),
			replicas:   index.NewInverted(),
			historyCap: n.cfg.HistoryCap,
		},
		owned: make(map[index.DocID]*docState),
	}
}

// Addr returns the peer's network address.
func (p *Peer) Addr() simnet.Addr { return p.node.Addr() }

// Node returns the peer's Chord node.
func (p *Peer) Node() *chord.Node { return p.node }

// Index returns the peer's primary inverted index (indexing-peer role).
// Exposed read-only for experiments and tests.
func (p *Peer) Index() *index.Inverted { return p.indexing.ix }

// HistoryLen returns the number of queries currently cached at this peer.
func (p *Peer) HistoryLen() int {
	p.indexing.mu.Lock()
	defer p.indexing.mu.Unlock()
	return len(p.indexing.history)
}

// HandleMessage implements simnet.Handler for SPRITE's application messages.
func (p *Peer) HandleMessage(from simnet.Addr, msg simnet.Message) (simnet.Message, error) {
	switch msg.Type {
	case msgPublish:
		req := msg.Payload.(publishReq)
		p.indexing.publish(req.Term, req.Posting)
		p.replicateOut(req.Term, req.Posting)
		p.net.caches.invalidate()
		return simnet.Message{Type: msg.Type, Size: 1}, nil

	case msgUnpublish:
		req := msg.Payload.(unpublishReq)
		p.indexing.unpublish(req.Term, req.Doc)
		// Also shed any replica copy held locally: stale-withdrawal retries
		// address the holder directly, and a former replica target must be
		// able to clear its copy through the same message.
		p.indexing.dropReplica(req.Term, req.Doc)
		stale := p.replicateDrop(req.Term, req.Doc)
		p.net.caches.invalidate()
		return simnet.Message{
			Type:    msg.Type,
			Payload: unpublishResp{StaleReplicas: stale},
			Size:    1 + 8*len(stale),
		}, nil

	case msgGetPostings:
		req := msg.Payload.(getPostingsReq)
		if req.Record {
			p.indexing.cacheQuery(req.Query)
			p.net.met.queriesCached.Inc()
		}
		resp := p.indexing.postings(req.Term)
		p.net.met.postingsServed.Inc()
		switch {
		case resp.FromReplica:
			p.net.met.replicaHits.Inc()
		case resp.IndexedDF > 0:
			p.net.met.primaryHits.Inc()
		default:
			p.net.met.misses.Inc()
		}
		return simnet.Message{Type: msg.Type, Payload: resp, Size: resp.Postings.Size() + 8}, nil

	case msgCacheQuery:
		req := msg.Payload.(cacheQueryReq)
		p.indexing.cacheQuery(req.Query)
		p.net.met.queriesCached.Inc()
		return simnet.Message{Type: msg.Type, Size: 1}, nil

	case msgPoll:
		req := msg.Payload.(pollReq)
		resp := p.indexing.poll(req)
		p.net.met.pollsServed.Inc()
		p.net.met.pollQueries.Add(int64(len(resp.Queries)))
		size := 8
		for _, q := range resp.Queries {
			size += sizeTerms(q)
		}
		return simnet.Message{Type: msg.Type, Payload: resp, Size: size}, nil

	case msgReplica:
		req := msg.Payload.(replicaReq)
		p.indexing.addReplica(req.Term, req.Posting)
		p.net.caches.invalidate()
		return simnet.Message{Type: msg.Type, Size: 1}, nil

	case msgReplicaDrop:
		req := msg.Payload.(replicaDropReq)
		p.indexing.dropReplica(req.Term, req.Doc)
		p.net.caches.invalidate()
		return simnet.Message{Type: msg.Type, Size: 1}, nil

	case msgDocTerms:
		req := msg.Payload.(docTermsReq)
		resp := p.handleDocTerms(req)
		return simnet.Message{Type: msg.Type, Payload: resp, Size: 8 * len(resp.TF)}, nil

	case msgHandoff:
		req := msg.Payload.(handoffReq)
		resp := handoffResp{Existing: make([]bool, len(req.Entries))}
		for i, e := range req.Entries {
			resp.Existing[i] = p.indexing.publishReporting(e.Term, e.Posting)
			p.indexing.recordReplicaLocs(e.Term, e.Posting.Doc, e.ReplicaLocs)
		}
		p.net.caches.invalidate()
		return simnet.Message{Type: msg.Type, Payload: resp, Size: 1 + len(resp.Existing)}, nil

	case msgHandoffDrop:
		req := msg.Payload.(handoffDropReq)
		p.indexing.unpublish(req.Term, req.Doc)
		p.indexing.takeReplicaLocs(req.Term, req.Doc)
		p.net.caches.invalidate()
		return simnet.Message{Type: msg.Type, Size: 1}, nil

	case msgRelocate:
		req := msg.Payload.(relocateReq)
		return simnet.Message{Type: msg.Type, Payload: p.handleRelocate(req), Size: 1}, nil

	case msgRepairDigest:
		req := msg.Payload.(repairDigestReq)
		resp := p.handleRepairDigest(req)
		return simnet.Message{Type: msg.Type, Payload: resp, Size: 1 + 8*len(resp.Buckets) + 16*len(resp.Local)}, nil

	case msgRepairPush:
		req := msg.Payload.(repairPushReq)
		p.handleRepairPush(req)
		return simnet.Message{Type: msg.Type, Size: 1}, nil

	case msgReplicaRetire:
		req := msg.Payload.(replicaRetireReq)
		p.handleReplicaRetire(req)
		return simnet.Message{Type: msg.Type, Size: 1}, nil

	case msgSketchScan:
		resp := p.handleSketchScan()
		return simnet.Message{Type: msg.Type, Payload: resp, Size: sketchScanSize(resp)}, nil
	}
	return simnet.Message{}, fmt.Errorf("core: peer %s: unknown message type %q", p.Addr(), msg.Type)
}

// replicaTargets returns the first ReplicationFactor successors excluding the
// peer itself — the §7 replica set for entries this peer indexes.
func (p *Peer) replicaTargets() []simnet.Addr {
	r := p.net.cfg.ReplicationFactor
	if r <= 0 {
		return nil
	}
	var out []simnet.Addr
	for i, succ := range p.node.SuccessorList() {
		if i >= r {
			break
		}
		if succ.Addr == p.Addr() {
			continue
		}
		out = append(out, succ.Addr)
	}
	return out
}

// replicateOut pushes a freshly published entry to this peer's first
// ReplicationFactor successors (§7: "we can replicate the indexes of a peer
// in its successor peers"). The push targets are recorded so a later
// withdrawal reaches every peer that actually holds a copy, even after the
// successor set has rotated. The per-successor pushes are independent
// best-effort calls, so they fan out.
func (p *Peer) replicateOut(term string, posting index.Posting) {
	targets := p.replicaTargets()
	p.indexing.recordReplicaLocs(term, posting.Doc, targets)
	fanout.ForEach(context.Background(), p.net.exec, "replicate", len(targets), func(_ context.Context, i int) error {
		p.net.ring.Net().Call(p.Addr(), targets[i], simnet.Message{
			Type:    msgReplica,
			Payload: replicaReq{Term: term, Posting: posting},
			Size:    len(term) + posting.WireSize(),
		})
		return nil
	})
}

// replicateDrop withdraws an entry's replicas: from every successor the
// entry was ever pushed to (the recorded locations) plus the current replica
// set, deduplicated. Without the recorded locations, copies pushed before a
// successor-list rotation would leak forever. It returns the targets whose
// withdrawal failed (dead or unreachable holders): the recorded locations are
// consumed here, so an unreported failure would orphan that copy — no later
// operation addresses the entry at that peer.
func (p *Peer) replicateDrop(term string, doc index.DocID) []simnet.Addr {
	targets := mergeAddrs(p.indexing.takeReplicaLocs(term, doc), p.replicaTargets())
	_, errs := fanout.Map(context.Background(), p.net.exec, "replicate", len(targets), func(_ context.Context, i int) (struct{}, error) {
		_, err := p.net.ring.Net().Call(p.Addr(), targets[i], simnet.Message{
			Type:    msgReplicaDrop,
			Payload: replicaDropReq{Term: term, Doc: doc},
			Size:    len(term) + len(doc),
		})
		return struct{}{}, err
	})
	var failed []simnet.Addr
	for i, err := range errs {
		if err != nil {
			failed = append(failed, targets[i])
		}
	}
	return failed
}

// mergeAddrs unions two address lists, sorted for deterministic fan-out.
func mergeAddrs(a, b []simnet.Addr) []simnet.Addr {
	seen := make(map[simnet.Addr]bool, len(a)+len(b))
	out := make([]simnet.Addr, 0, len(a)+len(b))
	for _, list := range [][]simnet.Addr{a, b} {
		for _, addr := range list {
			if !seen[addr] {
				seen[addr] = true
				out = append(out, addr)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// indexingState is the indexing-peer role's state: primary inverted lists,
// successor replicas held on behalf of other peers, and the query history.
type indexingState struct {
	mu       sync.Mutex
	ix       *index.Inverted
	replicas *index.Inverted
	// replicaLocs records, per (term, doc) in the primary index, which
	// successor addresses hold replicas pushed by this peer. replicateDrop
	// consumes it so withdrawals reach stale locations too.
	replicaLocs map[string]map[index.DocID][]simnet.Addr
	history     []storedQuery
	historyCap  int
	seq         uint64
}

// recordReplicaLocs unions targets into the replica-location record for
// (term, doc).
func (s *indexingState) recordReplicaLocs(term string, doc index.DocID, targets []simnet.Addr) {
	if len(targets) == 0 {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.replicaLocs == nil {
		s.replicaLocs = make(map[string]map[index.DocID][]simnet.Addr)
	}
	byDoc := s.replicaLocs[term]
	if byDoc == nil {
		byDoc = make(map[index.DocID][]simnet.Addr)
		s.replicaLocs[term] = byDoc
	}
	byDoc[doc] = mergeAddrs(byDoc[doc], targets)
}

// takeReplicaLocs removes and returns the recorded replica locations for
// (term, doc).
func (s *indexingState) takeReplicaLocs(term string, doc index.DocID) []simnet.Addr {
	s.mu.Lock()
	defer s.mu.Unlock()
	byDoc := s.replicaLocs[term]
	locs := byDoc[doc]
	if byDoc != nil {
		delete(byDoc, doc)
		if len(byDoc) == 0 {
			delete(s.replicaLocs, term)
		}
	}
	return locs
}

// storedQuery is one cached query: its keyword set, canonical key (for
// dedup), precomputed hash (§3: "every cached query is hashed also, which
// can be precomputed offline"), and arrival sequence number.
type storedQuery struct {
	terms []string
	key   string
	hash  chordid.ID
	seq   uint64
}

func (s *indexingState) publish(term string, p index.Posting) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.ix.Add(term, p)
}

// publishReporting installs a primary entry and reports whether the index
// already held a posting for (term, doc). Handoff installs need the
// distinction: merging with an entry the peer owned in its own right must
// not be reverted when the relocation later aborts.
func (s *indexingState) publishReporting(term string, p index.Posting) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	existed := false
	for got := range s.ix.All(term) {
		if got.Doc == p.Doc {
			existed = true
			break
		}
	}
	s.ix.Add(term, p)
	return existed
}

func (s *indexingState) unpublish(term string, doc index.DocID) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.ix.Remove(term, doc)
}

func (s *indexingState) addReplica(term string, p index.Posting) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.replicas.Add(term, p)
}

func (s *indexingState) dropReplica(term string, doc index.DocID) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.replicas.Remove(term, doc)
}

// postings serves a term's inverted list, falling back to successor replicas
// when the primary list is empty — the failover path that makes peer crashes
// survivable (§7). The response carries the index's immutable encoded blocks
// zero-copy: mutations swap in fresh blocks, so the snapshot stays valid
// after the lock is released.
func (s *indexingState) postings(term string) getPostingsResp {
	s.mu.Lock()
	defer s.mu.Unlock()
	if e := s.ix.Encoded(term); e.Len() > 0 {
		return getPostingsResp{Postings: e, IndexedDF: e.Len()}
	}
	if re := s.replicas.Encoded(term); re.Len() > 0 {
		return getPostingsResp{Postings: re, IndexedDF: re.Len(), FromReplica: true}
	}
	return getPostingsResp{}
}

// cacheQuery records a query issuance in the bounded history. Repeats are
// stored as separate entries — the paper's history is "the most recently
// issued queries" (§3), and QF deliberately counts every issuance, which is
// exactly what makes popular queries weigh more under skewed workloads
// (the Fig. 4(b) "w-zipf" effect). The capacity bound evicts the oldest
// issuance.
func (s *indexingState) cacheQuery(terms []string) {
	if len(terms) == 0 {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.seq++
	sq := storedQuery{
		terms: append([]string(nil), terms...),
		key:   canonicalQuery(terms),
		hash:  queryHash(terms),
		seq:   s.seq,
	}
	if len(s.history) >= s.historyCap {
		// Evict the oldest issuance.
		oldest := 0
		for i := range s.history {
			if s.history[i].seq < s.history[oldest].seq {
				oldest = i
			}
		}
		s.history[oldest] = sq
		return
	}
	s.history = append(s.history, sq)
}

// poll answers an owner's index-update poll: among cached queries newer than
// the watermark that mention req.Term, return those for which req.Term is
// the closest of the document's global index terms to the query hash —
// guaranteeing each query is shipped to the owner by exactly one indexing
// peer (§3).
func (s *indexingState) poll(req pollReq) pollResp {
	s.mu.Lock()
	defer s.mu.Unlock()
	resp := pollResp{NewSince: s.seq, IndexedDF: s.ix.DocFreq(req.Term)}
	for _, sq := range s.history {
		if sq.seq <= req.Since {
			continue
		}
		if !containsTerm(sq.terms, req.Term) {
			continue
		}
		// Only document index terms that occur in the query can have the
		// query cached at their indexing peers, so the closest-term election
		// runs over that intersection; electing an absent term would leave
		// the query unreturned by everyone.
		var candidates []string
		for _, dt := range req.DocTerms {
			if containsTerm(sq.terms, dt) {
				candidates = append(candidates, dt)
			}
		}
		if closestTerm(sq.hash, candidates) != req.Term {
			continue
		}
		resp.Queries = append(resp.Queries, append([]string(nil), sq.terms...))
	}
	// Deterministic order for the owner's incremental processing.
	sort.Slice(resp.Queries, func(i, j int) bool {
		return canonicalQuery(resp.Queries[i]) < canonicalQuery(resp.Queries[j])
	})
	return resp
}

func containsTerm(terms []string, t string) bool {
	for _, x := range terms {
		if x == t {
			return true
		}
	}
	return false
}
