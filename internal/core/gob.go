package core

import "encoding/gob"

// SPRITE's message payloads are registered with gob so the protocol runs
// unchanged over internal/nettransport's TCP frames.
func init() {
	gob.Register(publishReq{})
	gob.Register(unpublishReq{})
	gob.Register(getPostingsReq{})
	gob.Register(getPostingsResp{})
	gob.Register(cacheQueryReq{})
	gob.Register(pollReq{})
	gob.Register(pollResp{})
	gob.Register(replicaReq{})
	gob.Register(replicaDropReq{})
	gob.Register(docTermsReq{})
	gob.Register(docTermsResp{})
}
