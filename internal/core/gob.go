package core

import "github.com/spritedht/sprite/internal/wire"

// SPRITE's message payloads are registered for gob so the protocol runs
// unchanged over internal/nettransport's TCP frames. Registration goes
// through internal/wire so it is idempotent across packages.
func init() {
	wire.Register(
		publishReq{},
		unpublishReq{},
		unpublishResp{},
		getPostingsReq{},
		getPostingsResp{},
		cacheQueryReq{},
		pollReq{},
		pollResp{},
		replicaReq{},
		replicaDropReq{},
		docTermsReq{},
		docTermsResp{},
		handoffReq{},
		handoffResp{},
		handoffDropReq{},
		relocateReq{},
		relocateResp{},
		repairDigestReq{},
		repairDigestResp{},
		repairPushReq{},
		replicaRetireReq{},
	)
}
