package core

import (
	"context"
	"fmt"
	"reflect"
	"sort"
	"sync"
	"testing"

	"github.com/spritedht/sprite/internal/chord"
	"github.com/spritedht/sprite/internal/corpus"
	"github.com/spritedht/sprite/internal/index"
	"github.com/spritedht/sprite/internal/ir"
	"github.com/spritedht/sprite/internal/simnet"
	"github.com/spritedht/sprite/internal/telemetry"
)

// This file tests the concurrent query execution engine's central contract:
// for a fixed corpus and query stream, every observable output — ranked
// lists (scores included), per-peer query histories, and message/byte
// accounting — is bit-identical at Parallelism=1 (the legacy sequential
// path) and Parallelism=8 (full fan-out).

// parallelWorkload drives one deployment through a fixed mixed workload —
// shares, training inserts, learning sweeps, recorded searches, expansion,
// refresh — and returns every ranked list produced, in order.
func parallelWorkload(t *testing.T, n *Network) []ir.RankedList {
	t.Helper()
	vocab := []string{"chord", "dht", "ring", "hash", "peer", "index", "query", "learn", "route", "store"}
	for d := 0; d < 12; d++ {
		tf := map[string]int{}
		for v := 0; v < len(vocab); v++ {
			if f := (d*7+v*3)%11 - 3; f > 0 {
				tf[vocab[v]] = f
			}
		}
		tf[fmt.Sprintf("uniq%d", d)] = 2
		owner := simnet.Addr(fmt.Sprintf("p%d", d%8))
		if err := n.Share(owner, doc(fmt.Sprintf("d%d", d), tf)); err != nil {
			t.Fatalf("Share d%d: %v", d, err)
		}
	}
	training := [][]string{
		{"chord", "ring"}, {"dht", "hash", "peer"}, {"query", "learn"},
		{"chord", "dht"}, {"index", "store"}, {"peer", "route", "ring"},
	}
	for i, q := range training {
		from := simnet.Addr(fmt.Sprintf("p%d", i%8))
		if err := n.InsertQuery(from, q); err != nil {
			t.Fatalf("InsertQuery %v: %v", q, err)
		}
	}
	if _, err := n.LearnAll(); err != nil {
		t.Fatalf("LearnAll: %v", err)
	}
	queries := [][]string{
		{"chord"}, {"chord", "dht", "ring"}, {"hash", "peer"},
		{"query", "learn", "index", "store"}, {"route", "ring", "peer", "dht", "chord"},
		{"uniq3", "chord"}, {"chord", "dht", "ring"}, // verbatim repeat (result cache path)
	}
	var out []ir.RankedList
	for i, q := range queries {
		from := simnet.Addr(fmt.Sprintf("p%d", (i+2)%8))
		rl, err := n.Search(from, q, 10)
		if err != nil {
			t.Fatalf("Search %v: %v", q, err)
		}
		out = append(out, rl)
	}
	if _, err := n.LearnAll(); err != nil {
		t.Fatalf("second LearnAll: %v", err)
	}
	erl, _, err := n.SearchExpanded("p1", []string{"chord", "dht"}, 10, ExpandOptions{})
	if err != nil {
		t.Fatalf("SearchExpanded: %v", err)
	}
	out = append(out, erl)
	if _, err := n.RefreshAll(); err != nil {
		t.Fatalf("RefreshAll: %v", err)
	}
	for _, q := range queries[:3] {
		rl, err := n.Search("p5", q, 10)
		if err != nil {
			t.Fatalf("post-refresh Search %v: %v", q, err)
		}
		out = append(out, rl)
	}
	return out
}

// peerHistories returns, per peer address, the sorted multiset of cached
// query keys. Sequence numbers are excluded deliberately: concurrent
// recordings of the same query at the same peer arrive in arbitrary order,
// but the entries themselves are content-identical, so the multiset is the
// determinism-relevant view (it is also all that poll results depend on,
// beyond ordering poll already sorts away).
func peerHistories(n *Network) map[simnet.Addr][]string {
	out := make(map[simnet.Addr][]string)
	for _, p := range n.Peers() {
		p.indexing.mu.Lock()
		keys := make([]string, 0, len(p.indexing.history))
		for _, sq := range p.indexing.history {
			keys = append(keys, sq.key)
		}
		p.indexing.mu.Unlock()
		sort.Strings(keys)
		out[p.Addr()] = keys
	}
	return out
}

func runParallelArm(t *testing.T, parallelism int, cacheOn bool) ([]ir.RankedList, map[simnet.Addr][]string, simnet.Stats) {
	t.Helper()
	sim := simnet.New(1)
	ring := chord.NewRing(sim, chord.Config{})
	if _, err := ring.AddNodes("p", 8); err != nil {
		t.Fatalf("AddNodes: %v", err)
	}
	ring.Build()
	n, err := NewNetwork(ring, Config{
		InitialTerms:      3,
		ReplicationFactor: 1,
		Parallelism:       parallelism,
		Cache:             CacheConfig{Enabled: cacheOn},
	})
	if err != nil {
		t.Fatalf("NewNetwork: %v", err)
	}
	rls := parallelWorkload(t, n)
	return rls, peerHistories(n), sim.Stats()
}

func TestParallelDeterminismMatchesSequential(t *testing.T) {
	for _, cacheOn := range []bool{false, true} {
		name := "cache-off"
		if cacheOn {
			name = "cache-on"
		}
		t.Run(name, func(t *testing.T) {
			seqRLs, seqHist, seqStats := runParallelArm(t, 1, cacheOn)
			parRLs, parHist, parStats := runParallelArm(t, 8, cacheOn)

			if len(seqRLs) != len(parRLs) {
				t.Fatalf("result count %d vs %d", len(seqRLs), len(parRLs))
			}
			for i := range seqRLs {
				if !reflect.DeepEqual(seqRLs[i], parRLs[i]) {
					t.Errorf("query %d: sequential %v != parallel %v", i, seqRLs[i], parRLs[i])
				}
			}
			if !reflect.DeepEqual(seqHist, parHist) {
				t.Errorf("per-peer query histories diverged:\nseq: %v\npar: %v", seqHist, parHist)
			}
			if seqStats.Calls != parStats.Calls || seqStats.Bytes != parStats.Bytes {
				t.Errorf("message accounting diverged: seq %d calls/%d bytes, par %d calls/%d bytes",
					seqStats.Calls, seqStats.Bytes, parStats.Calls, parStats.Bytes)
			}
			if !reflect.DeepEqual(seqStats.CallsByType, parStats.CallsByType) {
				t.Errorf("per-type call counts diverged:\nseq: %v\npar: %v", seqStats.CallsByType, parStats.CallsByType)
			}
			if !reflect.DeepEqual(seqStats.BytesByType, parStats.BytesByType) {
				t.Errorf("per-type byte counts diverged:\nseq: %v\npar: %v", seqStats.BytesByType, parStats.BytesByType)
			}
		})
	}
}

// TestParallelEngineRaceRegression extends the PR3 generation-race test to
// the parallel engine: concurrent recorded searches, shares, learning sweeps,
// and transport-level fail/recover flips, all with Parallelism > 1, must be
// race-free (run under -race) and never serve a stale cached result past a
// failure.
func TestParallelEngineRaceRegression(t *testing.T) {
	n, sim := resilientNetwork(t, 8, Config{
		InitialTerms:      2,
		ReplicationFactor: 1,
		Parallelism:       8,
		Cache:             CacheConfig{Enabled: true},
	})
	if err := n.Share("p0", doc("d1", map[string]int{"chord": 5, "dht": 3})); err != nil {
		t.Fatal(err)
	}
	owner := ownerOfTerm(t, n, "chord")
	searcher := searcherAvoiding(t, n, owner.Addr(), "p0")

	var wg sync.WaitGroup
	wg.Add(4)
	go func() {
		defer wg.Done()
		for i := 0; i < 150; i++ {
			n.SearchCtx(context.Background(), searcher, []string{"chord", "dht"}, 10)
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 30; i++ {
			id := index.DocID(fmt.Sprintf("r%d", i))
			n.Share("p1", corpus.NewDocument(id, map[string]int{"chord": 2, "extra": 1}))
			n.Unshare(id)
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 20; i++ {
			n.LearnAll()
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 40; i++ {
			sim.Fail(owner.Addr())
			n.InvalidateCaches()
			sim.Recover(owner.Addr())
			n.InvalidateCaches()
		}
	}()
	wg.Wait()

	// Quiesced sanity: searches still work and find the shared document.
	rl, err := n.SearchCtx(context.Background(), searcher, []string{"chord"}, 10)
	if err != nil {
		t.Fatalf("post-storm search: %v", err)
	}
	if rl.Rank("d1") < 0 {
		t.Fatalf("d1 lost after the storm: %v", rl)
	}
}

// TestParallelRecordErrorsCounted covers the result-cache-hit replay fix: a
// cache hit during an outage of the indexing peer silently dropped the
// history recording before; now the drop lands in the
// sprite.fanout.record_errors counter.
func TestParallelRecordErrorsCounted(t *testing.T) {
	reg := telemetry.NewRegistry()
	n, sim := resilientNetwork(t, 8, Config{
		InitialTerms: 2,
		Parallelism:  4,
		Telemetry:    reg,
		Cache:        CacheConfig{Enabled: true},
	})
	if err := n.Share("p0", doc("d1", map[string]int{"chord": 5})); err != nil {
		t.Fatal(err)
	}
	owner := ownerOfTerm(t, n, "chord")
	searcher := searcherAvoiding(t, n, owner.Addr())

	if _, err := n.Search(searcher, []string{"chord"}, 10); err != nil {
		t.Fatalf("priming search: %v", err)
	}
	if c := reg.Counter("sprite.fanout.record_errors").Value(); c != 0 {
		t.Fatalf("record_errors = %d before any outage", c)
	}
	before := owner.HistoryLen()

	// The repeat hits the result cache; its history replay runs into the
	// outage and must be counted, not swallowed.
	sim.DropCalls(owner.Addr(), 1)
	rl, err := n.Search(searcher, []string{"chord"}, 10)
	if err != nil {
		t.Fatalf("cached search: %v", err)
	}
	if rl.Rank("d1") < 0 {
		t.Fatalf("cached result lost d1: %v", rl)
	}
	if c := reg.Counter("sprite.fanout.record_errors").Value(); c != 1 {
		t.Fatalf("record_errors = %d, want 1", c)
	}
	if owner.HistoryLen() != before {
		t.Fatalf("history grew despite dropped recording")
	}

	// Outage over: the next cached hit records again, with no new drops.
	if _, err := n.Search(searcher, []string{"chord"}, 10); err != nil {
		t.Fatal(err)
	}
	if c := reg.Counter("sprite.fanout.record_errors").Value(); c != 1 {
		t.Fatalf("record_errors = %d after recovery, want still 1", c)
	}
	if owner.HistoryLen() != before+1 {
		t.Fatalf("history len = %d, want %d", owner.HistoryLen(), before+1)
	}
}
