package core

import (
	"context"
	"errors"
	"reflect"
	"sync"
	"testing"
	"time"

	"github.com/spritedht/sprite/internal/chord"
	"github.com/spritedht/sprite/internal/chordid"
	"github.com/spritedht/sprite/internal/simnet"
	"github.com/spritedht/sprite/internal/telemetry"
)

// resilientNetwork builds a network with fault injection available: the
// simulated transport is returned alongside so tests can drop calls.
func resilientNetwork(t testing.TB, peers int, cfg Config) (*Network, *simnet.Network) {
	t.Helper()
	net := simnet.New(1)
	ring := chord.NewRing(net, chord.Config{})
	if _, err := ring.AddNodes("p", peers); err != nil {
		t.Fatalf("AddNodes: %v", err)
	}
	ring.Build()
	n, err := NewNetwork(ring, cfg)
	if err != nil {
		t.Fatalf("NewNetwork: %v", err)
	}
	return n, net
}

// ownerOfTerm resolves which peer the DHT holds responsible for a term.
func ownerOfTerm(t testing.TB, n *Network, term string) *Peer {
	t.Helper()
	ref, _, err := n.Peers()[0].node.Lookup(chordid.HashKey(term))
	if err != nil {
		t.Fatalf("Lookup(%q): %v", term, err)
	}
	p, ok := n.Peer(ref.Addr)
	if !ok {
		t.Fatalf("no peer at %s", ref.Addr)
	}
	return p
}

// searcherAvoiding picks a query peer that is none of the given addresses, so
// fault injection on those peers cannot interfere with the querying side.
func searcherAvoiding(t testing.TB, n *Network, avoid ...simnet.Addr) simnet.Addr {
	t.Helper()
	for _, p := range n.Peers() {
		skip := false
		for _, a := range avoid {
			if p.Addr() == a {
				skip = true
			}
		}
		if !skip {
			return p.Addr()
		}
	}
	t.Fatal("no peer outside the avoid set")
	return ""
}

func TestResilienceConfigValidation(t *testing.T) {
	bad := []ResilienceConfig{
		{MaxRetries: -1},
		{BaseBackoff: -time.Millisecond},
		{PerCallTimeout: -1},
		{HedgeAfter: -1},
		{BaseBackoff: 10 * time.Millisecond, MaxBackoff: time.Millisecond},
	}
	net := simnet.New(1)
	ring := chord.NewRing(net, chord.Config{})
	ring.AddNodes("v", 2)
	ring.Build()
	for i, rc := range bad {
		if _, err := NewNetwork(ring, Config{Resilience: rc}); err == nil {
			t.Errorf("bad resilience config %d accepted: %+v", i, rc)
		}
	}
}

func TestSearchFailoverMatchesHealthyRun(t *testing.T) {
	// The acceptance scenario: with ReplicationFactor = 2 and the owner of a
	// term's postings refusing connections, a search must fail over to the §7
	// successor replica and return results byte-identical to the healthy run.
	reg := telemetry.NewRegistry()
	n, sim := resilientNetwork(t, 10, Config{
		InitialTerms:      2,
		ReplicationFactor: 2,
		Telemetry:         reg,
		Resilience: ResilienceConfig{
			MaxRetries:         1,
			FailoverToReplicas: true,
		},
	})
	docs := map[string]map[string]int{
		"d1": {"failover": 5, "alpha": 2},
		"d2": {"failover": 3, "beta": 4},
		"d3": {"failover": 1, "gamma": 2},
	}
	for id, tf := range docs {
		if err := n.Share(n.Peers()[0].Addr(), doc(id, tf)); err != nil {
			t.Fatalf("Share %s: %v", id, err)
		}
	}
	owner := ownerOfTerm(t, n, "failover")
	searcher := searcherAvoiding(t, n, owner.Addr())

	healthy, err := n.ProbeCtx(context.Background(), searcher, []string{"failover"}, 10)
	if err != nil {
		t.Fatalf("healthy probe: %v", err)
	}
	if len(healthy) != 3 {
		t.Fatalf("healthy results = %v, want 3 docs", healthy)
	}

	// The owner stays alive (a transient fault: connections drop, liveness
	// does not change), so the DHT still resolves it as the term's holder and
	// only the resilient fetch path can reach the replicas.
	sim.DropCalls(owner.Addr(), 1_000_000)

	got, err := n.ProbeCtx(context.Background(), searcher, []string{"failover"}, 10)
	if err != nil {
		t.Fatalf("failover probe: %v", err)
	}
	if !reflect.DeepEqual(healthy, got) {
		t.Fatalf("failover results differ from healthy run:\nhealthy: %v\nfailover: %v", healthy, got)
	}
	if v := reg.Counter("sprite.resilience.retries").Value(); v == 0 {
		t.Error("no retries counted against the dropping owner")
	}
	if v := reg.Counter("sprite.resilience.failovers").Value(); v == 0 {
		t.Error("no failovers counted")
	}
	// The fetch-attempts histogram must have seen a multi-attempt fetch
	// (retries against the owner, then the failover fetch).
	h := reg.Histogram("sprite.resilience.fetch_attempts")
	if h.Count() == 0 || h.Max() < 2 {
		t.Errorf("fetch_attempts histogram = count %d max %d, want multi-attempt fetches", h.Count(), h.Max())
	}
}

func TestSearchAllHoldersDownReturnsPartial(t *testing.T) {
	// When a term's owner AND every replica holder are unreachable, the search
	// must still rank the remaining terms and surface the loss as a typed
	// partial-results error rather than silently degrading.
	reg := telemetry.NewRegistry()
	n, sim := resilientNetwork(t, 10, Config{
		InitialTerms:      2,
		ReplicationFactor: 1,
		Telemetry:         reg,
		Resilience: ResilienceConfig{
			MaxRetries:         1,
			FailoverToReplicas: true,
		},
	})
	if err := n.Share(n.Peers()[0].Addr(), doc("dead", map[string]int{"deadterm": 5})); err != nil {
		t.Fatal(err)
	}
	if err := n.Share(n.Peers()[1].Addr(), doc("alive", map[string]int{"aliveterm": 5})); err != nil {
		t.Fatal(err)
	}
	owner := ownerOfTerm(t, n, "deadterm")
	// The replica lives on the owner's first successor (§7).
	replica := owner.node.SuccessorList()[0].Addr
	searcher := searcherAvoiding(t, n, owner.Addr(), replica)

	sim.DropCalls(owner.Addr(), 1_000_000)
	sim.DropCalls(replica, 1_000_000)

	rl, err := n.SearchCtx(context.Background(), searcher, []string{"aliveterm", "deadterm"}, 10)
	if err == nil {
		t.Fatal("all-holders-down search returned nil error")
	}
	if !errors.Is(err, ErrPartialResults) {
		t.Fatalf("error does not wrap ErrPartialResults: %v", err)
	}
	var pe *PartialError
	if !errors.As(err, &pe) {
		t.Fatalf("error is not a *PartialError: %v", err)
	}
	if len(pe.Failures) != 1 || pe.Failures[0].Term != "deadterm" {
		t.Fatalf("failures = %+v, want exactly deadterm", pe.Failures)
	}
	if pe.Failures[0].Err == nil {
		t.Fatal("term failure carries no cause")
	}
	if len(rl) != 1 || rl[0].Doc != "alive" {
		t.Fatalf("remaining-term results = %v, want [alive]", rl)
	}
	if v := reg.Counter("sprite.resilience.partials").Value(); v != 1 {
		t.Errorf("partials counter = %d, want 1", v)
	}

	// The pre-context entry points keep their old contract: degraded results
	// with a nil error.
	rl2, err := n.Probe(searcher, []string{"aliveterm", "deadterm"}, 10)
	if err != nil {
		t.Fatalf("Probe surfaced the partial error: %v", err)
	}
	if !reflect.DeepEqual(rl, rl2) {
		t.Fatalf("Probe results differ from SearchCtx: %v vs %v", rl, rl2)
	}
}

func TestSearchCtxExpiredContextReturnsPromptly(t *testing.T) {
	n, _ := resilientNetwork(t, 8, Config{
		InitialTerms: 2,
		Resilience:   ResilienceConfig{MaxRetries: 3, BaseBackoff: time.Second},
	})
	if err := n.Share("p0", doc("d1", map[string]int{"chord": 5})); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	start := time.Now()
	rl, err := n.SearchCtx(ctx, "p1", []string{"chord"}, 10)
	if err == nil {
		t.Fatal("expired context accepted")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("error does not wrap context.DeadlineExceeded: %v", err)
	}
	if rl != nil {
		t.Fatalf("aborted search returned results: %v", rl)
	}
	// Promptly: no backoff sleeps (3 retries × 1s would dwarf this bound).
	if took := time.Since(start); took > 500*time.Millisecond {
		t.Fatalf("expired-context search took %v", took)
	}
}

func TestSearchCtxCancellationAbortsRetries(t *testing.T) {
	n, sim := resilientNetwork(t, 8, Config{
		InitialTerms: 2,
		Resilience:   ResilienceConfig{MaxRetries: 50, BaseBackoff: 20 * time.Millisecond},
	})
	if err := n.Share("p0", doc("d1", map[string]int{"chord": 5})); err != nil {
		t.Fatal(err)
	}
	owner := ownerOfTerm(t, n, "chord")
	searcher := searcherAvoiding(t, n, owner.Addr())
	sim.DropCalls(owner.Addr(), 1_000_000)

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := n.SearchCtx(ctx, searcher, []string{"chord"}, 10)
	if err == nil {
		t.Fatal("canceled search returned nil error")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("error does not wrap context.DeadlineExceeded: %v", err)
	}
	// 50 retries × 20ms backoff caps near a second; cancellation must cut
	// that short.
	if took := time.Since(start); took > 500*time.Millisecond {
		t.Fatalf("canceled search took %v", took)
	}
}

func TestZeroResilienceSingleAttempt(t *testing.T) {
	// The zero config must behave exactly like the pre-resilience code: one
	// fetch attempt, no failover, term skipped on failure (old entry point).
	n, sim := resilientNetwork(t, 8, Config{InitialTerms: 2, ReplicationFactor: 1})
	if err := n.Share("p0", doc("d1", map[string]int{"chord": 5})); err != nil {
		t.Fatal(err)
	}
	owner := ownerOfTerm(t, n, "chord")
	searcher := searcherAvoiding(t, n, owner.Addr())
	sim.ResetStats()
	sim.DropCalls(owner.Addr(), 1_000_000)

	rl, err := n.Search(searcher, []string{"chord"}, 10)
	if err != nil {
		t.Fatalf("degraded search errored: %v", err)
	}
	if len(rl) != 0 {
		t.Fatalf("degraded search found %v despite single-attempt config", rl)
	}
	if dropped := sim.Stats().Dropped; dropped != 1 {
		t.Fatalf("owner saw %d postings attempts, want exactly 1", dropped)
	}
}

func TestFailPeerInvalidatesResultCacheUnderConcurrentSearch(t *testing.T) {
	// Regression: FailPeer-style liveness flips (transport Fail/Recover plus
	// InvalidateCaches) racing concurrent searches must never let a search
	// that read pre-failure postings store its result past the invalidation
	// (cache.PutAt's generation guard). Run under -race.
	n, sim := resilientNetwork(t, 8, Config{
		InitialTerms: 2,
		Cache:        CacheConfig{Enabled: true},
	})
	if err := n.Share("p0", doc("d1", map[string]int{"chord": 5})); err != nil {
		t.Fatal(err)
	}
	owner := ownerOfTerm(t, n, "chord")
	searcher := searcherAvoiding(t, n, owner.Addr())

	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < 200; i++ {
			n.Probe(searcher, []string{"chord"}, 10)
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			sim.Fail(owner.Addr())
			n.InvalidateCaches()
			sim.Recover(owner.Addr())
			n.InvalidateCaches()
		}
	}()
	wg.Wait()

	// Quiesced: fail the owner for good. With no replication its postings are
	// gone; the next search must observe that, not a stale cached result that
	// slipped in behind the last invalidation.
	sim.Fail(owner.Addr())
	n.InvalidateCaches()
	rl, err := n.Probe(searcher, []string{"chord"}, 10)
	if err != nil {
		t.Fatalf("post-failure probe: %v", err)
	}
	if len(rl) != 0 {
		t.Fatalf("stale cached result served after FailPeer: %v", rl)
	}
}

func TestSentinelErrors(t *testing.T) {
	n, _ := resilientNetwork(t, 4, Config{})
	if err := n.Share("ghost", doc("d1", map[string]int{"a": 1})); !errors.Is(err, ErrNoSuchPeer) {
		t.Fatalf("Share unknown peer: %v, want ErrNoSuchPeer", err)
	}
	if _, err := n.SearchCtx(context.Background(), "ghost", []string{"a"}, 5); !errors.Is(err, ErrNoSuchPeer) {
		t.Fatalf("SearchCtx unknown peer: %v, want ErrNoSuchPeer", err)
	}
	if _, err := n.IndexedTerms("nope"); !errors.Is(err, ErrNoSuchDoc) {
		t.Fatalf("IndexedTerms unknown doc: %v, want ErrNoSuchDoc", err)
	}
	if _, err := n.LearnDocCtx(context.Background(), "nope"); !errors.Is(err, ErrNoSuchDoc) {
		t.Fatalf("LearnDocCtx unknown doc: %v, want ErrNoSuchDoc", err)
	}
}
