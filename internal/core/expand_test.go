package core

import (
	"testing"

	"github.com/spritedht/sprite/internal/index"
	"github.com/spritedht/sprite/internal/simnet"
)

// expansionFixture builds a network where two documents co-occur heavily on
// a shared vocabulary, so local context analysis has a clear signal.
func expansionFixture(t *testing.T) *Network {
	t.Helper()
	n := testNetwork(t, 10, Config{InitialTerms: 4})
	// Two related documents about distributed consensus; a third unrelated.
	if err := n.Share("p0", doc("raft", map[string]int{
		"consensu": 6, "leader": 4, "elect": 3, "replic": 3, "quorum": 2,
	})); err != nil {
		t.Fatal(err)
	}
	if err := n.Share("p1", doc("paxos", map[string]int{
		"consensu": 5, "quorum": 4, "ballot": 3, "acceptor": 3, "replic": 1,
	})); err != nil {
		t.Fatal(err)
	}
	if err := n.Share("p2", doc("bakery", map[string]int{
		"bread": 5, "oven": 4, "flour": 3, "yeast": 2,
	})); err != nil {
		t.Fatal(err)
	}
	return n
}

func TestSearchExpandedAddsCoOccurringTerms(t *testing.T) {
	n := expansionFixture(t)
	rl, expansion, err := n.SearchExpanded("p5", []string{"consensu"}, 5, ExpandOptions{
		FeedbackDocs: 2, ExpansionTerms: 2,
	})
	if err != nil {
		t.Fatalf("SearchExpanded: %v", err)
	}
	if len(expansion) == 0 {
		t.Fatal("no expansion terms produced despite strong co-occurrence")
	}
	// Expansion terms must come from the feedback docs' vocabulary, not the
	// unrelated one, and must not repeat the query.
	allowed := map[string]bool{
		"leader": true, "elect": true, "replic": true, "quorum": true,
		"ballot": true, "acceptor": true,
	}
	for _, term := range expansion {
		if term == "consensu" {
			t.Fatal("expansion repeated a query term")
		}
		if !allowed[term] {
			t.Fatalf("expansion term %q not from feedback documents", term)
		}
	}
	if len(rl) == 0 {
		t.Fatal("expanded search returned nothing")
	}
	// Both consensus docs should be in the results.
	found := map[string]bool{}
	for _, h := range rl {
		found[string(h.Doc)] = true
	}
	if !found["raft"] || !found["paxos"] {
		t.Fatalf("expanded results missing consensus docs: %v", rl)
	}
}

func TestSearchExpandedNoResults(t *testing.T) {
	n := expansionFixture(t)
	rl, expansion, err := n.SearchExpanded("p3", []string{"nonexistent"}, 5, ExpandOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rl) != 0 || len(expansion) != 0 {
		t.Fatalf("expected empty results for unknown term, got %v / %v", rl, expansion)
	}
}

func TestSearchExpandedUnknownPeer(t *testing.T) {
	n := expansionFixture(t)
	if _, _, err := n.SearchExpanded("ghost", []string{"consensu"}, 5, ExpandOptions{}); err == nil {
		t.Fatal("unknown peer accepted")
	}
}

func TestSearchExpandedSurvivesOwnerFailure(t *testing.T) {
	// If a feedback document's owner is offline, its term vector cannot be
	// fetched; expansion must proceed on the remaining evidence.
	n := expansionFixture(t)
	// p0 owns "raft"; fail it. Note the indexing peers for the terms are
	// other peers, so first-phase search may still find raft via them.
	n.Ring().Net().(simnet.FaultInjector).Fail("p0")
	_, expansion, err := n.SearchExpanded("p5", []string{"quorum"}, 5, ExpandOptions{
		FeedbackDocs: 2, ExpansionTerms: 2,
	})
	if err != nil {
		t.Fatalf("SearchExpanded with dead owner: %v", err)
	}
	// paxos (owner p1) still contributes, so expansion should still happen.
	if len(expansion) == 0 {
		t.Fatal("expansion produced nothing despite one live feedback owner")
	}
}

func TestSearchExpandedImprovesRecallOfRelatedDoc(t *testing.T) {
	// "ballot" appears only in paxos. A plain search finds only paxos; the
	// expanded query (enriched with paxos's co-occurring terms like consensu
	// and quorum) also surfaces raft.
	n := expansionFixture(t)
	plain, err := n.Search("p4", []string{"ballot"}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(plain) != 1 || plain[0].Doc != "paxos" {
		t.Fatalf("plain search = %v, want only paxos", plain)
	}
	rl, expansion, err := n.SearchExpanded("p4", []string{"ballot"}, 5, ExpandOptions{
		FeedbackDocs: 1, ExpansionTerms: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(expansion) == 0 {
		t.Fatal("no expansion")
	}
	found := map[string]bool{}
	for _, h := range rl {
		found[string(h.Doc)] = true
	}
	if !found["raft"] {
		t.Fatalf("expanded search did not surface the related doc: %v (expansion %v)", rl, expansion)
	}
	if found["bakery"] {
		t.Fatalf("expansion dragged in an unrelated doc: %v", rl)
	}
}

func TestExpandOptionsDefaults(t *testing.T) {
	o := ExpandOptions{}.withDefaults()
	if o.FeedbackDocs != 5 || o.ExpansionTerms != 3 {
		t.Fatalf("defaults = %+v", o)
	}
}

func TestHotTermAdvisoryDropsUbiquitousTerm(t *testing.T) {
	// Many documents index the same term; with the advisory enabled, owners
	// drop it at the next learning iteration.
	n := testNetwork(t, 8, Config{InitialTerms: 2, HotTermDF: 5, TermsPerIteration: 2, MaxIndexTerms: 6})
	for i := 0; i < 8; i++ {
		id := string(rune('a' + i))
		if err := n.Share("p0", doc(id, map[string]int{"ubiquit": 5, "rare" + id: 3, "other" + id: 1})); err != nil {
			t.Fatal(err)
		}
	}
	// All 8 docs index "ubiquit" (df = 8 >= threshold 5). The advisory is
	// self-stabilizing: owners drop the term one by one until its indexed
	// document frequency falls below the threshold, then stop — the term is
	// no longer hot and the survivors keep their (now discriminative) entry.
	if _, err := n.LearnAll(); err != nil {
		t.Fatal(err)
	}
	df := 0
	for _, p := range n.Peers() {
		df += p.Index().DocFreq("ubiquit")
	}
	if df >= 5 {
		t.Fatalf("hot term df = %d, want < threshold 5", df)
	}
	if df == 0 {
		t.Fatal("advisory over-reacted: every posting dropped")
	}
	dropped := 0
	for i := 0; i < 8; i++ {
		id := string(rune('a' + i))
		terms, _ := n.IndexedTerms(index.DocID(id))
		has := false
		for _, term := range terms {
			if term == "ubiquit" {
				has = true
			}
		}
		if !has {
			dropped++
			// The freed slot must have been refilled — the doc stays at its
			// term budget rather than shrinking.
			if len(terms) < 2 {
				t.Fatalf("doc %s under-indexed after advisory: %v", id, terms)
			}
		}
	}
	if dropped < 4 {
		t.Fatalf("only %d docs dropped the hot term", dropped)
	}
	// A second iteration must not oscillate (re-add then re-drop).
	if _, err := n.LearnAll(); err != nil {
		t.Fatal(err)
	}
	df2 := 0
	for _, p := range n.Peers() {
		df2 += p.Index().DocFreq("ubiquit")
	}
	if df2 != df {
		t.Fatalf("advisory oscillated: df %d -> %d", df, df2)
	}
}

func TestHotTermAdvisoryDisabledByDefault(t *testing.T) {
	n := testNetwork(t, 8, Config{InitialTerms: 2})
	for i := 0; i < 8; i++ {
		id := string(rune('a' + i))
		if err := n.Share("p0", doc(id, map[string]int{"common": 5, "x" + id: 3})); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := n.LearnAll(); err != nil {
		t.Fatal(err)
	}
	stillIndexed := false
	for _, p := range n.Peers() {
		if p.Index().Has("common") {
			stillIndexed = true
		}
	}
	if !stillIndexed {
		t.Fatal("term dropped despite advisory being disabled")
	}
}
