package core

import (
	"errors"
	"fmt"
	"reflect"
	"testing"

	"github.com/spritedht/sprite/internal/index"
	"github.com/spritedht/sprite/internal/ir"
	"github.com/spritedht/sprite/internal/simnet"
	"github.com/spritedht/sprite/internal/sketch"
)

func sketchConfig() sketch.Config {
	return sketch.Config{Enabled: true, Dims: 64, RouteTerms: 4, Seed: 7}
}

// similarCorpus shares a small corpus with controlled overlap: d0..d4 share
// the "core" vocabulary with graded weights, d5 is vocabulary-disjoint.
func similarCorpus(t *testing.T, n *Network) []index.DocID {
	t.Helper()
	docs := []struct {
		id string
		tf map[string]int
	}{
		{"d0", map[string]int{"alpha": 8, "beta": 6, "gamma": 3, "delta": 1}},
		{"d1", map[string]int{"alpha": 7, "beta": 6, "gamma": 3, "delta": 1}},
		{"d2", map[string]int{"alpha": 5, "beta": 2, "eps": 4}},
		{"d3", map[string]int{"alpha": 1, "gamma": 7, "zeta": 5}},
		{"d4", map[string]int{"beta": 4, "delta": 6, "eta": 2}},
		{"d5", map[string]int{"kappa": 9, "lambda": 4}},
	}
	ids := make([]index.DocID, 0, len(docs))
	for i, d := range docs {
		if err := n.Share(n.Peers()[i%len(n.Peers())].Addr(), doc(d.id, d.tf)); err != nil {
			t.Fatalf("Share %s: %v", d.id, err)
		}
		ids = append(ids, index.DocID(d.id))
	}
	return ids
}

// exactRanking computes the reference ranking: every shared document except
// the query doc, scored by serialized-sketch cosine, sorted by RankedList's
// (score desc, doc asc) order.
func exactRanking(t *testing.T, n *Network, qdoc index.DocID, ids []index.DocID, k int) ir.RankedList {
	t.Helper()
	qsk, ok := n.DocSketch(qdoc)
	if !ok {
		t.Fatalf("DocSketch(%s) missing", qdoc)
	}
	rl := make(ir.RankedList, 0, len(ids))
	for _, id := range ids {
		if id == qdoc {
			continue
		}
		sk, ok := n.DocSketch(id)
		if !ok {
			t.Fatalf("DocSketch(%s) missing", id)
		}
		rl = append(rl, ir.Hit{Doc: id, Score: sketch.CosineBytes([]byte(qsk), []byte(sk))})
	}
	rl.Sort()
	return rl.Top(k)
}

func TestFloodSimilarMatchesExactRanking(t *testing.T) {
	n := testNetwork(t, 8, Config{InitialTerms: 3, Sketch: sketchConfig()})
	ids := similarCorpus(t, n)
	for _, q := range ids {
		got, err := n.FloodSimilar("p3", q, 10)
		if err != nil {
			t.Fatalf("FloodSimilar(%s): %v", q, err)
		}
		want := exactRanking(t, n, q, ids, 10)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("flood ranking for %s diverges\n got %v\nwant %v", q, got, want)
		}
	}
}

func TestSearchSimilarFindsNeighbors(t *testing.T) {
	n := testNetwork(t, 8, Config{InitialTerms: 3, Sketch: sketchConfig()})
	ids := similarCorpus(t, n)
	rl, err := n.SearchSimilar("p5", "d0", 3)
	if err != nil {
		t.Fatalf("SearchSimilar: %v", err)
	}
	if len(rl) == 0 {
		t.Fatal("no results")
	}
	// d1 is near-identical to d0 and shares its top routing terms, so it must
	// rank first; the query doc itself must never appear.
	if rl[0].Doc != "d1" {
		t.Fatalf("top hit = %v, want d1 (rl=%v)", rl[0], rl)
	}
	for _, h := range rl {
		if h.Doc == "d0" {
			t.Fatalf("query doc in its own results: %v", rl)
		}
	}
	_ = ids
}

func TestSearchSimilarSubsetOfFlood(t *testing.T) {
	// The routed path sees a subset of the flooded candidate set (only docs
	// reachable through the query doc's routing terms), and must rank that
	// subset consistently with the exact scores.
	n := testNetwork(t, 10, Config{InitialTerms: 3, Sketch: sketchConfig()})
	ids := similarCorpus(t, n)
	full := exactRanking(t, n, "d0", ids, len(ids))
	scores := map[index.DocID]float64{}
	for _, h := range full {
		scores[h.Doc] = h.Score
	}
	rl, err := n.SearchSimilar("p2", "d0", 10)
	if err != nil {
		t.Fatalf("SearchSimilar: %v", err)
	}
	for i, h := range rl {
		want, ok := scores[h.Doc]
		if !ok {
			t.Fatalf("routed result %s not a shared doc", h.Doc)
		}
		if h.Score != want {
			t.Fatalf("routed score for %s = %v, want exact %v", h.Doc, h.Score, want)
		}
		if i > 0 && (rl[i-1].Score < h.Score ||
			(rl[i-1].Score == h.Score && rl[i-1].Doc >= h.Doc)) {
			t.Fatalf("routed ranking out of order at %d: %v", i, rl)
		}
	}
}

func TestSearchSimilarDeterministicAcrossCacheAndParallelism(t *testing.T) {
	build := func(cache bool, par int) ir.RankedList {
		cfg := Config{InitialTerms: 3, Sketch: sketchConfig(), Parallelism: par}
		if cache {
			cfg.Cache = CacheConfig{PostingsEntries: 64, PostingsTTL: 1e12}
		}
		n := testNetwork(t, 8, cfg)
		similarCorpus(t, n)
		rl, err := n.SearchSimilar("p4", "d2", 5)
		if err != nil {
			t.Fatalf("SearchSimilar(cache=%v,par=%d): %v", cache, par, err)
		}
		// A second identical query (cache warm) must agree with the first.
		rl2, err := n.SearchSimilar("p4", "d2", 5)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(rl, rl2) {
			t.Fatalf("repeat query diverged (cache=%v): %v vs %v", cache, rl, rl2)
		}
		return rl
	}
	ref := build(false, 1)
	for _, cache := range []bool{false, true} {
		for _, par := range []int{1, 8} {
			if got := build(cache, par); !reflect.DeepEqual(got, ref) {
				t.Fatalf("ranking differs (cache=%v par=%d):\n got %v\nwant %v", cache, par, got, ref)
			}
		}
	}
}

func TestSimilarRouteTermsOrderAndCap(t *testing.T) {
	cfg := sketchConfig()
	cfg.RouteTerms = 2
	n := testNetwork(t, 6, Config{InitialTerms: 4, Sketch: cfg})
	if err := n.Share("p0", doc("rt", map[string]int{"hi": 9, "mid": 5, "lo": 2, "tail": 1})); err != nil {
		t.Fatal(err)
	}
	route, err := n.SimilarRouteTerms("rt")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(route, []string{"hi", "mid"}) {
		t.Fatalf("route terms = %v, want [hi mid]", route)
	}
}

func TestSimilarRouteTermsFollowLearning(t *testing.T) {
	// Routing terms are the document's learned index terms: after learning
	// promotes a queried term into the index, similarity queries route
	// through it too.
	n := testNetwork(t, 8, Config{
		InitialTerms: 1, TermsPerIteration: 2, MaxIndexTerms: 4,
		Sketch: sketchConfig(),
	})
	if err := n.Share("p0", doc("ld", map[string]int{"common": 9, "niche": 3})); err != nil {
		t.Fatal(err)
	}
	before, err := n.SimilarRouteTerms("ld")
	if err != nil {
		t.Fatal(err)
	}
	if len(before) != 1 || before[0] != "common" {
		t.Fatalf("pre-learning route = %v", before)
	}
	n.InsertQuery("p3", []string{"common", "niche"})
	n.InsertQuery("p3", []string{"common", "niche"})
	if _, err := n.LearnAll(); err != nil {
		t.Fatal(err)
	}
	after, err := n.SimilarRouteTerms("ld")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(after, []string{"common", "niche"}) {
		t.Fatalf("post-learning route = %v, want [common niche]", after)
	}
}

func TestSearchSimilarErrors(t *testing.T) {
	// Disabled sketching refuses similarity queries outright.
	off := testNetwork(t, 4, Config{InitialTerms: 2})
	if err := off.Share("p0", doc("x", map[string]int{"a": 1})); err != nil {
		t.Fatal(err)
	}
	if _, err := off.SearchSimilar("p1", "x", 5); !errors.Is(err, ErrSketchDisabled) {
		t.Fatalf("disabled: err = %v, want ErrSketchDisabled", err)
	}
	if _, err := off.FloodSimilar("p1", "x", 5); !errors.Is(err, ErrSketchDisabled) {
		t.Fatalf("disabled flood: err = %v, want ErrSketchDisabled", err)
	}

	on := testNetwork(t, 4, Config{InitialTerms: 2, Sketch: sketchConfig()})
	if _, err := on.SearchSimilar("p1", "ghost", 5); !errors.Is(err, ErrNoSuchDoc) {
		t.Fatalf("unshared doc: err = %v, want ErrNoSuchDoc", err)
	}
	if err := on.Share("p0", doc("y", map[string]int{"b": 2})); err != nil {
		t.Fatal(err)
	}
	if _, err := on.SearchSimilar("nobody", "y", 5); !errors.Is(err, ErrNoSuchPeer) {
		t.Fatalf("unknown peer: err = %v, want ErrNoSuchPeer", err)
	}
}

func TestSearchSimilarRecordsHistoryProbeDoesNot(t *testing.T) {
	run := func(cache bool, probe bool) int {
		cfg := Config{InitialTerms: 2, Sketch: sketchConfig()}
		if cache {
			cfg.Cache = CacheConfig{PostingsEntries: 64, PostingsTTL: 1e12}
		}
		n := testNetwork(t, 6, cfg)
		similarCorpus(t, n)
		var err error
		if probe {
			_, err = n.ProbeSimilar("p3", "d0", 5)
		} else {
			_, err = n.SearchSimilar("p3", "d0", 5)
		}
		if err != nil {
			t.Fatalf("query (cache=%v probe=%v): %v", cache, probe, err)
		}
		total := 0
		for _, p := range n.Peers() {
			total += p.HistoryLen()
		}
		return total
	}
	for _, cache := range []bool{false, true} {
		if got := run(cache, false); got == 0 {
			t.Fatalf("SearchSimilar (cache=%v) left no history", cache)
		}
		if got := run(cache, true); got != 0 {
			t.Fatalf("ProbeSimilar (cache=%v) recorded %d history entries", cache, got)
		}
	}
}

func TestFloodSimilarMessageBill(t *testing.T) {
	// The baseline's cost model: one sketch-scan call per peer. The querying
	// peer scans itself through the same path, but a self-call is free under
	// simnet's default accounting, so the wire bill is N-1.
	n := testNetwork(t, 12, Config{InitialTerms: 2, Sketch: sketchConfig()})
	similarCorpus(t, n)
	net := n.Ring().Net().(*simnet.Network)
	net.ResetStats()
	if _, err := n.FloodSimilar("p0", "d1", 5); err != nil {
		t.Fatal(err)
	}
	if got := net.Stats().CallsByType[msgSketchScan]; got != 11 {
		t.Fatalf("sketch scans = %d, want 11 (one per remote peer)", got)
	}
}

func TestSketchScanHandlerSortedAndComplete(t *testing.T) {
	n := testNetwork(t, 4, Config{InitialTerms: 2, Sketch: sketchConfig()})
	for i := 0; i < 9; i++ {
		// All on one peer, shared in scrambled ID order.
		id := fmt.Sprintf("s%d", (i*4)%9)
		if err := n.Share("p1", doc(id, map[string]int{"w": i + 1})); err != nil {
			t.Fatal(err)
		}
	}
	p, _ := n.Owner("s0")
	resp := p.handleSketchScan()
	if len(resp.Docs) != 9 {
		t.Fatalf("scan returned %d docs, want 9", len(resp.Docs))
	}
	for i := 1; i < len(resp.Docs); i++ {
		if resp.Docs[i-1].Doc >= resp.Docs[i].Doc {
			t.Fatalf("scan not sorted: %v", resp.Docs)
		}
	}
	for _, ds := range resp.Docs {
		want, ok := n.DocSketch(ds.Doc)
		if !ok || ds.Sketch != want {
			t.Fatalf("scan sketch for %s diverges from owner state", ds.Doc)
		}
	}
}

func TestSimilarMetrics(t *testing.T) {
	n, reg := telemetryNetwork(t, 6, Config{InitialTerms: 3, Sketch: sketchConfig()})
	similarCorpus(t, n)
	if _, err := n.SearchSimilar("p0", "d0", 5); err != nil {
		t.Fatal(err)
	}
	if _, err := n.FloodSimilar("p0", "d0", 5); err != nil {
		t.Fatal(err)
	}
	if got := reg.Counter("sprite.similar.searches").Value(); got != 1 {
		t.Fatalf("similar.searches = %d, want 1", got)
	}
	if got := reg.Counter("sprite.similar.floods").Value(); got != 1 {
		t.Fatalf("similar.floods = %d, want 1", got)
	}
	if got := reg.Counter("sprite.similar.candidates").Value(); got < 1 {
		t.Fatalf("similar.candidates = %d, want >= 1", got)
	}
}

func TestSearchSimilarRefineMatchesExact(t *testing.T) {
	// With Refine on, the returned scores are the exact weighted cosine of the
	// full term vectors — not the sketch approximation — and the ranking is
	// the exact-cosine order over the routed candidate set.
	tfs := map[index.DocID]map[string]int{
		"d0": {"alpha": 8, "beta": 6, "gamma": 3, "delta": 1},
		"d1": {"alpha": 7, "beta": 6, "gamma": 3, "delta": 1},
		"d2": {"alpha": 5, "beta": 2, "eps": 4},
		"d3": {"alpha": 1, "gamma": 7, "zeta": 5},
		"d4": {"beta": 4, "delta": 6, "eta": 2},
	}
	cfg := sketchConfig()
	cfg.Refine = 8
	n := testNetwork(t, 8, Config{InitialTerms: 3, Sketch: cfg})
	similarCorpus(t, n)

	net := n.Ring().Net().(*simnet.Network)
	net.ResetStats()
	rl, err := n.SearchSimilar("p5", "d0", 4)
	if err != nil {
		t.Fatalf("SearchSimilar: %v", err)
	}

	// d0 routes through alpha/beta/gamma, which together reach exactly
	// d1..d4 (d5 is vocabulary-disjoint). The refined result is their exact
	// ranking.
	qw, qn := cosineWeights(tfs["d0"])
	want := make(ir.RankedList, 0, 4)
	for _, id := range []index.DocID{"d1", "d2", "d3", "d4"} {
		want = append(want, ir.Hit{Doc: id, Score: exactCosine(qw, qn, tfs[id])})
	}
	want.Sort()
	if !reflect.DeepEqual(rl, want) {
		t.Fatalf("refined ranking diverges\n got %v\nwant %v", rl, want)
	}
	if rl[0].Doc != "d1" {
		t.Fatalf("top refined hit = %v, want d1", rl[0])
	}

	// One owner fetch per distinct candidate, never more than Refine.
	if got := net.Stats().CallsByType[msgDocTerms]; got != 4 {
		t.Fatalf("doc-terms fetches = %d, want 4 (one per candidate)", got)
	}

	// Refined rankings obey the same determinism contract as unrefined ones.
	for _, par := range []int{1, 8} {
		n2 := testNetwork(t, 8, Config{InitialTerms: 3, Sketch: cfg, Parallelism: par})
		similarCorpus(t, n2)
		got, err := n2.SearchSimilar("p5", "d0", 4)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, rl) {
			t.Fatalf("refined ranking differs at par=%d:\n got %v\nwant %v", par, got, rl)
		}
	}
}

func TestSearchSimilarRefineDegradesToSketchScore(t *testing.T) {
	// A candidate whose owner is unreachable keeps its first-stage sketch
	// score instead of vanishing from the result.
	cfg := sketchConfig()
	cfg.Refine = 8
	n := testNetwork(t, 8, Config{InitialTerms: 3, Sketch: cfg})
	ids := similarCorpus(t, n)
	owner, ok := n.Owner("d1")
	if !ok {
		t.Fatal("no owner for d1")
	}
	net := n.Ring().Net().(*simnet.Network)
	net.Fail(owner.Addr())

	rl, err := n.SearchSimilar("p5", "d0", 4)
	if err != nil {
		t.Fatalf("SearchSimilar: %v", err)
	}
	sketchScores := exactRanking(t, n, "d0", ids, len(ids))
	found := false
	for _, h := range rl {
		if h.Doc != "d1" {
			continue
		}
		found = true
		for _, s := range sketchScores {
			if s.Doc == "d1" && h.Score != s.Score {
				t.Fatalf("d1 score = %v, want sketch fallback %v", h.Score, s.Score)
			}
		}
	}
	if !found {
		t.Fatalf("d1 dropped from refined results: %v", rl)
	}
}

func TestPostingSketchSurvivesDHTRoundTrip(t *testing.T) {
	// End-to-end: the sketch attached at publish time is the same bytes a
	// query-side cursor yields after the posting crossed the simulated wire
	// inside an Encoded block.
	n := testNetwork(t, 8, Config{InitialTerms: 2, Sketch: sketchConfig()})
	if err := n.Share("p0", doc("rt1", map[string]int{"foo": 5, "bar": 2})); err != nil {
		t.Fatal(err)
	}
	want, _ := n.DocSketch("rt1")
	if want == "" {
		t.Fatal("owner sketch empty")
	}
	if !sketch.Valid([]byte(want)) {
		t.Fatal("owner sketch not a valid serialized vector")
	}
	found := false
	for _, p := range n.Peers() {
		cur := p.Index().Cursor("foo")
		for {
			docBytes, _, _, ok := cur.NextBytes()
			if !ok {
				break
			}
			if string(docBytes) == "rt1" {
				found = true
				if got := string(cur.SketchBytes()); got != want {
					t.Fatalf("posting sketch diverges from owner sketch")
				}
			}
		}
	}
	if !found {
		t.Fatal("posting for rt1/foo not found in any index")
	}
}
