package core

import (
	"encoding/gob"
	"fmt"
	"io"
	"sort"

	"github.com/spritedht/sprite/internal/corpus"
	"github.com/spritedht/sprite/internal/index"
	"github.com/spritedht/sprite/internal/simnet"
)

// This file implements whole-network state snapshots: every peer's inverted
// lists, replicas, and query history, plus every owner's documents and
// learning statistics, serialized with gob. Long experiments checkpoint
// after the expensive share+train+learn phases and restore instantly;
// simulations can be persisted across process restarts. A snapshot captures
// SPRITE state only — the Chord ring is reconstructed by the host (it is a
// pure function of the peer names).

// snapshotVersion guards against decoding snapshots from incompatible
// layouts.
const snapshotVersion = 1

type snapshotFile struct {
	Version int
	Peers   []peerSnapshot
	// DocOrder preserves the learning sweep order.
	DocOrder []index.DocID
}

type peerSnapshot struct {
	Addr     simnet.Addr
	Postings []postingEntry
	Replicas []postingEntry
	History  []historyEntry
	Seq      uint64
	Owned    []docSnapshot
}

type postingEntry struct {
	Term    string
	Posting index.Posting
}

type historyEntry struct {
	Terms []string
	Seq   uint64
}

type docSnapshot struct {
	ID          index.DocID
	TF          map[string]int
	Length      int
	Indexed     []string
	Stats       []termStatSnapshot
	Since       map[string]uint64
	PublishedAt map[string]simnet.Addr
	Banned      []string
}

type termStatSnapshot struct {
	Term  string
	QF    int
	MaxQS float64
}

// Snapshot serializes the complete SPRITE state of the network.
func (n *Network) Snapshot(w io.Writer) error {
	file := snapshotFile{Version: snapshotVersion, DocOrder: n.Documents()}
	for _, p := range n.Peers() {
		ps := peerSnapshot{Addr: p.Addr()}

		p.indexing.mu.Lock()
		for _, term := range p.indexing.ix.Terms() {
			for posting := range p.indexing.ix.All(term) {
				ps.Postings = append(ps.Postings, postingEntry{Term: term, Posting: posting})
			}
		}
		for _, term := range p.indexing.replicas.Terms() {
			for posting := range p.indexing.replicas.All(term) {
				ps.Replicas = append(ps.Replicas, postingEntry{Term: term, Posting: posting})
			}
		}
		for _, sq := range p.indexing.history {
			ps.History = append(ps.History, historyEntry{
				Terms: append([]string(nil), sq.terms...),
				Seq:   sq.seq,
			})
		}
		ps.Seq = p.indexing.seq
		p.indexing.mu.Unlock()

		p.mu.Lock()
		var docIDs []index.DocID
		for id := range p.owned {
			docIDs = append(docIDs, id)
		}
		sort.Slice(docIDs, func(i, j int) bool { return docIDs[i] < docIDs[j] })
		for _, id := range docIDs {
			st := p.owned[id]
			st.mu.Lock()
			ds := docSnapshot{
				ID:          id,
				TF:          st.doc.TF,
				Length:      st.doc.Length,
				Since:       st.since,
				PublishedAt: st.publishedAt,
			}
			for t := range st.indexed {
				ds.Indexed = append(ds.Indexed, t)
			}
			sort.Strings(ds.Indexed)
			var terms []string
			for t := range st.stats {
				terms = append(terms, t)
			}
			sort.Strings(terms)
			for _, t := range terms {
				ts := st.stats[t]
				ds.Stats = append(ds.Stats, termStatSnapshot{Term: t, QF: ts.qf, MaxQS: ts.maxQS})
			}
			for t := range st.banned {
				ds.Banned = append(ds.Banned, t)
			}
			st.mu.Unlock()
			sort.Strings(ds.Banned)
			ps.Owned = append(ps.Owned, ds)
		}
		p.mu.Unlock()

		file.Peers = append(file.Peers, ps)
	}
	if err := gob.NewEncoder(w).Encode(file); err != nil {
		return fmt.Errorf("core: snapshot: %w", err)
	}
	return nil
}

// Restore loads a snapshot into this network. The network must have been
// freshly constructed over a ring with exactly the same peer names as the
// snapshotted one; any SPRITE state accumulated before Restore is discarded.
func (n *Network) Restore(r io.Reader) error {
	var file snapshotFile
	if err := gob.NewDecoder(r).Decode(&file); err != nil {
		return fmt.Errorf("core: restore: %w", err)
	}
	if file.Version != snapshotVersion {
		return fmt.Errorf("core: restore: snapshot version %d, want %d", file.Version, snapshotVersion)
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	// Whatever the caches held describes pre-restore state.
	defer n.caches.invalidate()
	if len(file.Peers) != len(n.order) {
		return fmt.Errorf("core: restore: snapshot has %d peers, network has %d", len(file.Peers), len(n.order))
	}
	for _, ps := range file.Peers {
		if _, ok := n.peers[ps.Addr]; !ok {
			return fmt.Errorf("core: restore: snapshot peer %q not in network", ps.Addr)
		}
	}

	// Wipe and rebuild.
	n.ownerOf = make(map[index.DocID]*Peer)
	n.docOrder = nil
	for _, ps := range file.Peers {
		p := n.peers[ps.Addr]

		p.indexing.mu.Lock()
		p.indexing.ix = index.NewInverted()
		p.indexing.replicas = index.NewInverted()
		// Replica-location records are rebuilt as post-restore publishes
		// happen; stale pre-snapshot locations must not leak into them.
		p.indexing.replicaLocs = nil
		p.indexing.history = nil
		for _, e := range ps.Postings {
			p.indexing.ix.Add(e.Term, e.Posting)
		}
		for _, e := range ps.Replicas {
			p.indexing.replicas.Add(e.Term, e.Posting)
		}
		for _, h := range ps.History {
			p.indexing.history = append(p.indexing.history, storedQuery{
				terms: h.Terms,
				key:   canonicalQuery(h.Terms),
				hash:  queryHash(h.Terms),
				seq:   h.Seq,
			})
		}
		p.indexing.seq = ps.Seq
		p.indexing.mu.Unlock()

		p.mu.Lock()
		p.owned = make(map[index.DocID]*docState, len(ps.Owned))
		for _, ds := range ps.Owned {
			st := &docState{
				doc:         corpus.NewDocument(ds.ID, ds.TF),
				indexed:     make(map[string]bool, len(ds.Indexed)),
				stats:       make(map[string]*termStat, len(ds.Stats)),
				since:       ds.Since,
				publishedAt: ds.PublishedAt,
			}
			if st.doc.Length != ds.Length {
				// TF is authoritative; Length is redundant but must agree.
				p.mu.Unlock()
				return fmt.Errorf("core: restore: document %q length mismatch", ds.ID)
			}
			if st.since == nil {
				st.since = make(map[string]uint64)
			}
			for _, t := range ds.Indexed {
				st.indexed[t] = true
			}
			for _, ts := range ds.Stats {
				st.stats[ts.Term] = &termStat{qf: ts.QF, maxQS: ts.MaxQS}
			}
			if len(ds.Banned) > 0 {
				st.banned = make(map[string]bool, len(ds.Banned))
				for _, t := range ds.Banned {
					st.banned[t] = true
				}
			}
			p.owned[ds.ID] = st
			n.ownerOf[ds.ID] = p
		}
		p.mu.Unlock()
	}
	n.docOrder = file.DocOrder
	// Validate the doc order references restored documents.
	for _, id := range n.docOrder {
		if _, ok := n.ownerOf[id]; !ok {
			return fmt.Errorf("core: restore: doc order references unknown document %q", id)
		}
	}
	return nil
}
