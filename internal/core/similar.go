package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"

	"github.com/spritedht/sprite/internal/corpus"
	"github.com/spritedht/sprite/internal/fanout"
	"github.com/spritedht/sprite/internal/index"
	"github.com/spritedht/sprite/internal/ir"
	"github.com/spritedht/sprite/internal/simnet"
	"github.com/spritedht/sprite/internal/wire"
)

// This file implements the vector-similarity query path over the SPRITE
// overlay. A similarity query is query-by-document: "find the shared
// documents most similar to document X". Instead of a second routing
// structure for vectors, the path reuses the keyword overlay twice over:
//
//  1. Candidate retrieval routes through X's learned representative terms —
//     its current global index terms (the ones SPRITE's learning selected as
//     most descriptive), the most frequent first, capped at
//     Config.Sketch.RouteTerms. Each routing term costs the same Chord
//     lookup + postings fetch a keyword query pays, so the message count is
//     O(RouteTerms · log N) regardless of corpus size.
//  2. Re-ranking scores every candidate posting by the cosine of its carried
//     sketch against X's sketch, streamed through ir.SketchRanker straight
//     off the compressed blocks.
//
// The flooding baseline (FloodSimilar) asks every peer for the sketches of
// the documents it owns — one message per peer — and ranks them all. It is
// exact over reachable owners and exists as the measurement control: the
// spritebench similarity experiment compares its message bill against the
// term-routed path's at matched recall.

// ErrSketchDisabled reports a similarity query against a network whose
// Config.Sketch is disabled.
var ErrSketchDisabled = errors.New("core: sketching disabled (enable Config.Sketch)")

// msgSketchScan asks a peer for the (doc ID, sketch) pairs of every document
// it owns — the flooding baseline's per-peer read.
const msgSketchScan = "sprite.sketch_scan"

type sketchScanReq struct{}

// docSketch is one owned document's identity and serialized sketch.
type docSketch struct {
	Doc    index.DocID
	Sketch string
}

type sketchScanResp struct {
	// Docs lists the peer's owned documents in ascending doc-ID order.
	Docs []docSketch
}

func init() {
	wire.RegisterBinary(wire.KindCoreBase+21, sketchScanReq{},
		func(e *wire.Encoder, v any) {},
		func(d *wire.Decoder) any { return sketchScanReq{} })

	wire.RegisterBinary(wire.KindCoreBase+22, sketchScanResp{},
		func(e *wire.Encoder, v any) {
			r := v.(sketchScanResp)
			e.Uint(uint64(len(r.Docs)))
			for _, ds := range r.Docs {
				e.String(string(ds.Doc))
				e.String(ds.Sketch)
			}
		},
		func(d *wire.Decoder) any {
			var r sketchScanResp
			if n := d.Count(2); n > 0 {
				r.Docs = make([]docSketch, n)
				for i := range r.Docs {
					r.Docs[i].Doc = index.DocID(d.String())
					r.Docs[i].Sketch = d.String()
				}
			}
			return r
		})
}

// docSketchFor serializes doc's sketch under the network configuration (""
// when sketching is disabled).
func (n *Network) docSketchFor(doc *corpus.Document) string {
	if n.sketcher == nil {
		return ""
	}
	return string(n.sketcher.SketchBytes(doc.TF))
}

// DocSketch returns the serialized sketch of a shared document. It reports
// false for unshared documents; a shared document under a sketch-disabled
// configuration returns "". Experiments and invariant oracles use it to
// recompute expected rankings.
func (n *Network) DocSketch(doc index.DocID) (string, bool) {
	n.mu.RLock()
	owner := n.ownerOf[doc]
	n.mu.RUnlock()
	if owner == nil {
		return "", false
	}
	owner.mu.Lock()
	st := owner.owned[doc]
	owner.mu.Unlock()
	if st == nil {
		return "", false
	}
	return st.sketch, true
}

// routeTermsLocked selects the query document's routing terms: its learned
// global index terms ranked by document frequency (ties by term), capped at
// k. st.mu must be held.
func routeTermsLocked(st *docState, k int) []string {
	terms := make([]string, 0, len(st.indexed))
	for t := range st.indexed {
		terms = append(terms, t)
	}
	sort.Slice(terms, func(i, j int) bool {
		fi, fj := st.doc.TF[terms[i]], st.doc.TF[terms[j]]
		if fi != fj {
			return fi > fj
		}
		return terms[i] < terms[j]
	})
	if k > 0 && len(terms) > k {
		terms = terms[:k]
	}
	return terms
}

// SimilarRouteTerms returns the routing terms a similarity query for doc
// would fetch candidates through right now — the document's learned
// representative terms, most frequent first. Tests and experiments use it to
// reason about coverage; it changes as learning re-tunes the index.
func (n *Network) SimilarRouteTerms(doc index.DocID) ([]string, error) {
	_, route, _, err := n.similarQuery(doc)
	return route, err
}

// similarQuery resolves the query document's sketch, routing terms, and term
// vector from its owner's state. The TF copy feeds the optional exact
// re-ranking stage (Config.Sketch.Refine).
func (n *Network) similarQuery(doc index.DocID) (qsketch string, route []string, qtf map[string]int, err error) {
	if n.sketcher == nil {
		return "", nil, nil, ErrSketchDisabled
	}
	n.mu.RLock()
	owner := n.ownerOf[doc]
	n.mu.RUnlock()
	if owner == nil {
		return "", nil, nil, fmt.Errorf("%w: %q", ErrNoSuchDoc, doc)
	}
	owner.mu.Lock()
	st := owner.owned[doc]
	owner.mu.Unlock()
	if st == nil {
		return "", nil, nil, fmt.Errorf("%w: %q", ErrNoSuchDoc, doc)
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	qtf = make(map[string]int, len(st.doc.TF))
	for t, f := range st.doc.TF {
		qtf[t] = f
	}
	return st.sketch, routeTermsLocked(st, n.cfg.Sketch.RouteTerms), qtf, nil
}

// SearchSimilar finds the k shared documents most similar to doc, ranked by
// sketch cosine (descending; ties ascending by doc ID). The query document
// itself is excluded. Like Search, it degrades silently on unreachable
// routing terms; use SearchSimilarCtx to observe ErrPartialResults. The
// routing terms are recorded as a query in the contacted indexing peers'
// histories, so similarity traffic feeds learning like keyword traffic does.
func (n *Network) SearchSimilar(from simnet.Addr, doc index.DocID, k int) (ir.RankedList, error) {
	rl, err := n.SearchSimilarCtx(context.Background(), from, doc, k)
	return rl, stripPartial(err)
}

// SearchSimilarCtx is SearchSimilar with the full error contract: a done
// context aborts the query; routing terms lost to unreachable holders return
// the ranking over the remaining candidates plus a *PartialError. An
// unshared doc wraps ErrNoSuchDoc; a sketch-disabled network returns
// ErrSketchDisabled.
func (n *Network) SearchSimilarCtx(ctx context.Context, from simnet.Addr, doc index.DocID, k int) (ir.RankedList, error) {
	return n.similarCtx(ctx, from, doc, k, true)
}

// ProbeSimilar is SearchSimilar without the history side effect, for
// measurement runs that must not leak probe traffic into learning state.
func (n *Network) ProbeSimilar(from simnet.Addr, doc index.DocID, k int) (ir.RankedList, error) {
	rl, err := n.ProbeSimilarCtx(context.Background(), from, doc, k)
	return rl, stripPartial(err)
}

// ProbeSimilarCtx is ProbeSimilar with the SearchSimilarCtx error contract.
func (n *Network) ProbeSimilarCtx(ctx context.Context, from simnet.Addr, doc index.DocID, k int) (ir.RankedList, error) {
	return n.similarCtx(ctx, from, doc, k, false)
}

func (n *Network) similarCtx(ctx context.Context, from simnet.Addr, doc index.DocID, k int, record bool) (ir.RankedList, error) {
	qsketch, route, qtf, err := n.similarQuery(doc)
	if err != nil {
		return nil, err
	}
	p, ok := n.peer(from)
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoSuchPeer, from)
	}
	return p.searchSimilarCtx(ctx, doc, qsketch, route, qtf, k, record)
}

// searchSimilarCtx executes the routed similarity query from the querying
// peer: fetch each routing term's postings (through the postings cache when
// enabled, under the resilience policy otherwise — the same paths searchCtx
// uses), then fold the candidate streams in routing-term order into a
// SketchRanker. The fold order plus the ranker's first-wins dedup make the
// ranking a pure function of the fetched postings, so it is bit-identical
// across Parallelism settings, cache on/off, and clock sources.
//
// With Config.Sketch.Refine > 0 the sketch ranking becomes a first-stage
// filter: the top Refine candidates have their full term vectors fetched from
// their owners (one msgDocTerms each) and are re-scored by exact weighted
// cosine before the final top-k cut. An owner fetch that fails leaves that
// candidate on its sketch score — degraded, never lost.
//
// The result cache is deliberately not consulted: a similarity result is
// already one bounded ranked list per query document, and keeping the path
// result-cache-free keeps its message accounting legible in experiments.
func (p *Peer) searchSimilarCtx(ctx context.Context, qdoc index.DocID, qsketch string, route []string, qtf map[string]int, k int, record bool) (ir.RankedList, error) {
	p.net.met.simSearches.Inc()
	if p.net.cfg.Telemetry != nil {
		start := p.net.clock.Now()
		defer func() {
			p.net.met.queryLatency.Observe(p.net.clock.Now().Sub(start).Microseconds())
		}()
	}

	pc := p.net.caches.postings
	outs, errs := fanout.Map(ctx, p.net.exec, "sim_fetch", len(route), func(ctx context.Context, i int) (getPostingsResp, error) {
		term := route[i]
		if pc != nil {
			ent, _, err := p.fetchPostingsCached(ctx, term, nil)
			if err != nil {
				return getPostingsResp{}, err
			}
			if record {
				p.recordQueryAt(ent.peer, route)
			}
			return ent.resp, nil
		}
		return fetchOnly(p.fetchTermPostings(ctx, term, route, record, nil))
	})

	// With refinement the ranker keeps the wider candidate pool; without it
	// the sketch cosine is the final score and k suffices.
	refine := p.net.cfg.Sketch.Refine
	pool := k
	if refine > pool {
		pool = refine
	}
	r := ir.NewSketchRanker([]byte(qsketch), pool)
	var owners map[index.DocID]simnet.Addr
	if refine > 0 {
		owners = make(map[index.DocID]simnet.Addr)
	}
	var failed []TermFailure
	for i, term := range route {
		if errs[i] != nil {
			if ctx.Err() != nil {
				return nil, fmt.Errorf("core: similar term %q: %w", term, errs[i])
			}
			p.net.met.termsSkipped.Inc()
			failed = append(failed, TermFailure{Term: term, Err: errs[i]})
			continue
		}
		cur := outs[i].Postings.Cursor()
		if owners != nil {
			for {
				pst, ok := cur.Next()
				if !ok {
					break
				}
				if pst.Doc == qdoc {
					continue
				}
				if _, seen := owners[pst.Doc]; !seen {
					owners[pst.Doc] = simnet.Addr(pst.Owner)
				}
				r.Offer([]byte(pst.Doc), cur.SketchBytes())
			}
			continue
		}
		for {
			docBytes, _, _, ok := cur.NextBytes()
			if !ok {
				break
			}
			if string(docBytes) == string(qdoc) {
				continue
			}
			r.Offer(docBytes, cur.SketchBytes())
		}
	}
	p.net.met.simCandidates.Add(int64(r.Candidates()))
	rl := r.Ranked()
	if refine > 0 {
		rl = p.refineSimilar(ctx, rl, qtf, owners, k)
	}
	if len(failed) > 0 {
		p.net.met.partials.Inc()
		return rl, &PartialError{Failures: failed}
	}
	return rl, nil
}

// refineSimilar re-scores the sketch-ranked candidates by exact weighted
// cosine: each candidate's term vector is fetched from its owner (the Owner
// address its posting carried) and folded against the query vector with
// 1+log₁₀(tf) weights. Candidates whose owner cannot be reached — or whose
// owner no longer holds the document — keep their sketch score, so the refined
// ranking degrades toward the first-stage one rather than dropping hits. The
// final cut is top-k under the usual (score desc, doc asc) order.
func (p *Peer) refineSimilar(ctx context.Context, cands ir.RankedList, qtf map[string]int, owners map[index.DocID]simnet.Addr, k int) ir.RankedList {
	if len(cands) == 0 {
		return cands
	}
	qw, qn := cosineWeights(qtf)
	outs, errs := fanout.Map(ctx, p.net.exec, "sim_refine", len(cands), func(ctx context.Context, i int) (docTermsResp, error) {
		owner, ok := owners[cands[i].Doc]
		if !ok {
			return docTermsResp{}, nil
		}
		reply, err := p.net.ring.Net().CallCtx(ctx, p.Addr(), owner, simnet.Message{
			Type:    msgDocTerms,
			Payload: docTermsReq{Doc: cands[i].Doc},
			Size:    len(cands[i].Doc),
		})
		if err != nil {
			return docTermsResp{}, err
		}
		return reply.Payload.(docTermsResp), nil
	})
	out := make(ir.RankedList, len(cands))
	copy(out, cands)
	for i := range out {
		if errs[i] != nil || !outs[i].Found {
			continue
		}
		out[i].Score = exactCosine(qw, qn, outs[i].TF)
	}
	out.Sort()
	return out.Top(k)
}

// cosineWeights builds the 1+log₁₀(tf) weight vector and its L2 norm. Terms
// fold in sorted order so the norm's float accumulation — like every other
// fold on the query path — is a pure function of the map's contents.
func cosineWeights(tf map[string]int) (map[string]float64, float64) {
	terms := make([]string, 0, len(tf))
	for t, f := range tf {
		if f > 0 {
			terms = append(terms, t)
		}
	}
	sort.Strings(terms)
	w := make(map[string]float64, len(terms))
	n2 := 0.0
	for _, t := range terms {
		v := 1 + math.Log10(float64(tf[t]))
		w[t] = v
		n2 += v * v
	}
	return w, math.Sqrt(n2)
}

// exactCosine scores a candidate term vector against precomputed query
// weights, folding the candidate's terms in sorted order for bit-identical
// results across runs.
func exactCosine(qw map[string]float64, qn float64, tf map[string]int) float64 {
	terms := make([]string, 0, len(tf))
	for t, f := range tf {
		if f > 0 {
			terms = append(terms, t)
		}
	}
	sort.Strings(terms)
	dot, n2 := 0.0, 0.0
	for _, t := range terms {
		v := 1 + math.Log10(float64(tf[t]))
		n2 += v * v
		if u, ok := qw[t]; ok {
			dot += u * v
		}
	}
	if qn == 0 || n2 == 0 {
		return 0
	}
	return dot / (qn * math.Sqrt(n2))
}

// fetchOnly drops fetchTermPostings's peer address, which the similarity
// path has no use for (history recording rides the fetch itself).
func fetchOnly(resp getPostingsResp, _ simnet.Addr, err error) (getPostingsResp, error) {
	return resp, err
}

// FloodSimilar is the flooding baseline: ask every peer for its owned
// documents' sketches (one message per peer, the querying peer's own
// documents included via a self-call) and rank all of them against doc's
// sketch. Exact over reachable owners, at a message bill linear in network
// size — the control arm of BENCH_similarity.json. Peers that cannot be
// reached contribute nothing, mirroring the routed path's degraded mode.
func (n *Network) FloodSimilar(from simnet.Addr, doc index.DocID, k int) (ir.RankedList, error) {
	return n.FloodSimilarCtx(context.Background(), from, doc, k)
}

// FloodSimilarCtx is FloodSimilar honoring ctx.
func (n *Network) FloodSimilarCtx(ctx context.Context, from simnet.Addr, doc index.DocID, k int) (ir.RankedList, error) {
	qsketch, _, _, err := n.similarQuery(doc)
	if err != nil {
		return nil, err
	}
	p, ok := n.peer(from)
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoSuchPeer, from)
	}
	n.met.simFloods.Inc()
	peers := n.Peers()
	outs, errs := fanout.Map(ctx, n.exec, "sim_flood", len(peers), func(ctx context.Context, i int) (sketchScanResp, error) {
		reply, err := n.ring.Net().CallCtx(ctx, p.Addr(), peers[i].Addr(), simnet.Message{
			Type:    msgSketchScan,
			Payload: sketchScanReq{},
			Size:    1,
		})
		if err != nil {
			return sketchScanResp{}, err
		}
		return reply.Payload.(sketchScanResp), nil
	})
	r := ir.NewSketchRanker([]byte(qsketch), k)
	for i := range peers {
		if errs[i] != nil {
			if ctx.Err() != nil {
				return nil, fmt.Errorf("core: flood scan %s: %w", peers[i].Addr(), errs[i])
			}
			continue
		}
		for _, ds := range outs[i].Docs {
			if ds.Doc == doc {
				continue
			}
			r.Offer([]byte(ds.Doc), []byte(ds.Sketch))
		}
	}
	return r.Ranked(), nil
}

// handleSketchScan answers the flooding baseline's per-peer read: the
// sketches of every document this peer owns, in ascending doc-ID order.
// docState.sketch is immutable after share, so only the membership lock is
// needed.
func (p *Peer) handleSketchScan() sketchScanResp {
	p.mu.Lock()
	docs := make([]docSketch, 0, len(p.owned))
	for id, st := range p.owned {
		docs = append(docs, docSketch{Doc: id, Sketch: st.sketch})
	}
	p.mu.Unlock()
	sort.Slice(docs, func(i, j int) bool { return docs[i].Doc < docs[j].Doc })
	return sketchScanResp{Docs: docs}
}

// sketchScanSize is the response's simulated wire size.
func sketchScanSize(r sketchScanResp) int {
	n := 1
	for _, ds := range r.Docs {
		n += len(ds.Doc) + len(ds.Sketch) + 2
	}
	return n
}
