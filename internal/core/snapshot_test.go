package core

import (
	"bytes"
	"reflect"
	"testing"

	"github.com/spritedht/sprite/internal/chord"
	"github.com/spritedht/sprite/internal/simnet"
)

// snapshotFixture builds a network with trained, learned state worth saving.
func snapshotFixture(t *testing.T) *Network {
	t.Helper()
	n := testNetwork(t, 8, Config{InitialTerms: 2, TermsPerIteration: 2, MaxIndexTerms: 6, ReplicationFactor: 1})
	docs := []struct {
		id string
		tf map[string]int
	}{
		{"d1", map[string]int{"storage": 5, "engine": 3, "compaction": 1}},
		{"d2", map[string]int{"lookup": 4, "routing": 2, "finger": 1}},
		{"d3", map[string]int{"stemming": 3, "suffix": 2, "porter": 1}},
	}
	for i, d := range docs {
		owner := n.Peers()[i%4].Addr()
		if err := n.Share(owner, doc(d.id, d.tf)); err != nil {
			t.Fatal(err)
		}
	}
	for _, q := range [][]string{
		{"storage", "compaction"}, {"lookup", "finger"}, {"stemming", "porter"},
		{"storage", "compaction"}, {"engine", "storage"},
	} {
		if err := n.InsertQuery("p5", q); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := n.LearnAll(); err != nil {
		t.Fatal(err)
	}
	return n
}

// freshTwin builds a new, empty network over an identical ring.
func freshTwin(t *testing.T) *Network {
	t.Helper()
	net := simnet.New(1)
	ring := chord.NewRing(net, chord.Config{})
	if _, err := ring.AddNodes("p", 8); err != nil {
		t.Fatal(err)
	}
	ring.Build()
	n, err := NewNetwork(ring, Config{InitialTerms: 2, TermsPerIteration: 2, MaxIndexTerms: 6, ReplicationFactor: 1})
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func TestSnapshotRestoreRoundTrip(t *testing.T) {
	orig := snapshotFixture(t)
	var buf bytes.Buffer
	if err := orig.Snapshot(&buf); err != nil {
		t.Fatalf("Snapshot: %v", err)
	}

	restored := freshTwin(t)
	if err := restored.Restore(&buf); err != nil {
		t.Fatalf("Restore: %v", err)
	}

	// Documents, index terms, and postings must match exactly.
	if !reflect.DeepEqual(orig.Documents(), restored.Documents()) {
		t.Fatalf("doc order differs: %v vs %v", orig.Documents(), restored.Documents())
	}
	for _, id := range orig.Documents() {
		a, _ := orig.IndexedTerms(id)
		b, _ := restored.IndexedTerms(id)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("indexed terms for %s differ: %v vs %v", id, a, b)
		}
	}
	if orig.TotalPostings() != restored.TotalPostings() {
		t.Fatalf("postings differ: %d vs %d", orig.TotalPostings(), restored.TotalPostings())
	}
	// Histories must match.
	for i, p := range orig.Peers() {
		if got := restored.Peers()[i].HistoryLen(); got != p.HistoryLen() {
			t.Fatalf("history length differs at %s: %d vs %d", p.Addr(), got, p.HistoryLen())
		}
	}

	// Behaviour must match: identical searches...
	for _, q := range [][]string{{"storage"}, {"compaction"}, {"finger", "lookup"}} {
		a, err := orig.Search("p3", q, 10)
		if err != nil {
			t.Fatal(err)
		}
		b, err := restored.Search("p3", q, 10)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("search %v differs after restore: %v vs %v", q, a, b)
		}
	}
	// ...and identical continued learning (watermarks survived).
	ca, err := orig.LearnAll()
	if err != nil {
		t.Fatal(err)
	}
	cb, err := restored.LearnAll()
	if err != nil {
		t.Fatal(err)
	}
	if ca != cb {
		t.Fatalf("post-restore learning diverged: %d vs %d changes", ca, cb)
	}
}

func TestRestoreValidation(t *testing.T) {
	orig := snapshotFixture(t)
	var buf bytes.Buffer
	if err := orig.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}

	// Wrong peer set.
	net := simnet.New(1)
	ring := chord.NewRing(net, chord.Config{})
	ring.AddNodes("other", 8)
	ring.Build()
	wrong, err := NewNetwork(ring, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := wrong.Restore(bytes.NewReader(buf.Bytes())); err == nil {
		t.Fatal("restore onto mismatched peer set succeeded")
	}

	// Wrong peer count.
	net2 := simnet.New(1)
	ring2 := chord.NewRing(net2, chord.Config{})
	ring2.AddNodes("p", 4)
	ring2.Build()
	small, err := NewNetwork(ring2, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := small.Restore(bytes.NewReader(buf.Bytes())); err == nil {
		t.Fatal("restore onto smaller network succeeded")
	}

	// Garbage input.
	fresh := freshTwin(t)
	if err := fresh.Restore(bytes.NewReader([]byte("not a snapshot"))); err == nil {
		t.Fatal("garbage restore succeeded")
	}
}

func TestRestoreDiscardsPriorState(t *testing.T) {
	orig := snapshotFixture(t)
	var buf bytes.Buffer
	if err := orig.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	target := freshTwin(t)
	// Give the target some state that must vanish.
	if err := target.Share("p0", doc("stale", map[string]int{"leftover": 1})); err != nil {
		t.Fatal(err)
	}
	if err := target.Restore(&buf); err != nil {
		t.Fatalf("Restore: %v", err)
	}
	if _, err := target.IndexedTerms("stale"); err == nil {
		t.Fatal("pre-restore document survived")
	}
	if rl, _ := target.Search("p1", []string{"leftover"}, 5); len(rl) != 0 {
		t.Fatalf("pre-restore postings survived: %v", rl)
	}
}
