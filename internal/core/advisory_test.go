package core

import (
	"fmt"
	"testing"

	"github.com/spritedht/sprite/internal/chord"
	"github.com/spritedht/sprite/internal/corpus"
	"github.com/spritedht/sprite/internal/index"
	"github.com/spritedht/sprite/internal/simnet"
)

// advisoryNet builds a 5-peer network with three documents sharing one hot
// term, owned by the given peers. HotTermDF is 3, so the first learning
// sweep retires "hot" from the first document polled.
func advisoryNet(t *testing.T, owners [3]simnet.Addr) (*simnet.Network, *Network, []*corpus.Document) {
	t.Helper()
	sim := simnet.New(42)
	ring := chord.NewRing(sim, chord.Config{})
	if _, err := ring.AddNodes("h", 5); err != nil {
		t.Fatalf("AddNodes: %v", err)
	}
	ring.Build()
	n, err := NewNetwork(ring, Config{InitialTerms: 2, TermsPerIteration: 2, MaxIndexTerms: 4, HotTermDF: 3})
	if err != nil {
		t.Fatalf("NewNetwork: %v", err)
	}
	docs := []*corpus.Document{
		doc("d1", map[string]int{"hot": 9, "aa": 5, "bb": 3, "cc": 2}),
		doc("d2", map[string]int{"hot": 9, "dd": 5, "ee": 3, "ff": 2}),
		doc("d3", map[string]int{"hot": 9, "gg": 5, "hh": 3, "ii": 2}),
	}
	for i, d := range docs {
		if err := n.Share(owners[i], d); err != nil {
			t.Fatalf("Share %s: %v", d.ID, err)
		}
	}
	return sim, n, docs
}

// advisoryOwners picks three owner peers distinct from the hot term's
// indexing peer, so the retirement unpublish is a real network call that
// fault injection can intercept (a local-bypass call cannot be dropped).
func advisoryOwners(t *testing.T) ([3]simnet.Addr, simnet.Addr) {
	t.Helper()
	_, probe, docs := advisoryNet(t, [3]simnet.Addr{"h0", "h1", "h2"})
	di, ok := probe.DocIndexInfo(docs[0].ID)
	if !ok {
		t.Fatal("probe doc not shared")
	}
	hotAt, ok := di.PublishedAt["hot"]
	if !ok {
		t.Fatal("probe: hot term not published")
	}
	var owners [3]simnet.Addr
	k := 0
	for i := 0; k < 3 && i < 5; i++ {
		a := simnet.Addr(fmt.Sprintf("h%d", i))
		if a != hotAt {
			owners[k] = a
			k++
		}
	}
	return owners, hotAt
}

// checkAdvisoryConsistent asserts the owner-side view and the global index
// agree for every document: a banned term has neither an owner record nor a
// surviving primary entry, and every indexed term's entry exists where the
// owner thinks it is. This is the state the stale-advisory bug violated.
func checkAdvisoryConsistent(t *testing.T, n *Network, docs []*corpus.Document, tag string) {
	t.Helper()
	type key struct {
		peer simnet.Addr
		term string
		doc  index.DocID
	}
	entries := make(map[key]bool)
	for _, e := range n.PrimarySnapshot() {
		entries[key{e.Peer, e.Term, e.Posting.Doc}] = true
	}
	for _, d := range docs {
		di, ok := n.DocIndexInfo(d.ID)
		if !ok {
			t.Fatalf("%s: %s not shared", tag, d.ID)
		}
		for _, b := range di.Banned {
			for _, term := range di.Terms {
				if term == b {
					t.Errorf("%s: %s: banned term %q still in indexed set", tag, d.ID, b)
				}
			}
			for k := range entries {
				if k.term == b && k.doc == d.ID {
					t.Errorf("%s: %s: banned term %q still has a primary entry at %s (stale advisory)", tag, d.ID, b, k.peer)
				}
			}
		}
		for _, term := range di.Terms {
			at, ok := di.PublishedAt[term]
			if !ok {
				t.Errorf("%s: %s: indexed term %q has no publishedAt record", tag, d.ID, term)
				continue
			}
			if !entries[key{at, term, d.ID}] {
				t.Errorf("%s: %s: indexed term %q missing its entry at %s", tag, d.ID, term, at)
			}
		}
	}
}

// The hot-term advisory must commit only when the entry's removal actually
// reached the indexing peer. Regression: a fault between the poll and the
// unpublish (a peer failing mid-LearnAll, a packet lost) used to leave the
// term banned and unindexed while its entry survived — resurfacing
// ownerless, and unremovable, when the peer recovered.
//
// The sweep drops exactly one call to the hot term's indexing peer at every
// possible position during the learning sweep and asserts owner/index
// consistency at each; one of those positions is the retirement unpublish.
func TestHotTermAdvisoryConsistentUnderSingleDrop(t *testing.T) {
	owners, hotAt := advisoryOwners(t)

	// Baseline, no faults: the advisory retires "hot" from the first
	// document and the entry is gone.
	sim, n, docs := advisoryNet(t, owners)
	before := sim.Stats().CallsByDest[hotAt]
	if _, err := n.LearnAll(); err != nil {
		t.Fatalf("baseline LearnAll: %v", err)
	}
	total := sim.Stats().CallsByDest[hotAt] - before
	if total == 0 {
		t.Fatal("baseline learning sweep made no calls to the hot term's indexing peer")
	}
	checkAdvisoryConsistent(t, n, docs, "baseline")
	if got := n.BannedTerms(docs[0].ID); len(got) != 1 || got[0] != "hot" {
		t.Fatalf("baseline: banned terms for d1 = %v, want [hot]", got)
	}

	// Fault sweep: one dropped call per run, at every position.
	sawDroppedRetirement := false
	for skip := int64(0); skip < total; skip++ {
		sim, n, docs := advisoryNet(t, owners)
		sim.DropCallsAfter(hotAt, int(skip), 1)
		_, _ = n.LearnAll() // a dropped publish may surface as an error; consistency must hold regardless
		checkAdvisoryConsistent(t, n, docs, fmt.Sprintf("skip=%d", skip))

		di, _ := n.DocIndexInfo(docs[0].ID)
		stillIndexed := false
		for _, term := range di.Terms {
			if term == "hot" {
				stillIndexed = true
			}
		}
		if stillIndexed && len(di.Banned) == 0 {
			// The drop landed on the retirement unpublish: the ban must have
			// been rolled back with the term still (consistently) indexed.
			sawDroppedRetirement = true
		}
	}
	if !sawDroppedRetirement {
		t.Error("no drop position intercepted the retirement unpublish; the regression path was not exercised")
	}
}

// After a faulted retirement, the next healthy learning sweep must retire
// the term for real — the advisory retries instead of wedging.
func TestHotTermAdvisoryRetriesAfterFault(t *testing.T) {
	owners, hotAt := advisoryOwners(t)
	sim, n, docs := advisoryNet(t, owners)

	// Fail the indexing peer mid-sweep semantics: drop every call to it, so
	// the poll that flags the hot term may or may not land — either way no
	// retirement can complete this round.
	sim.DropCalls(hotAt, 1<<20)
	_, _ = n.LearnAll()
	checkAdvisoryConsistent(t, n, docs, "faulted sweep")

	sim.DropCalls(hotAt, 0)
	if _, err := n.LearnAll(); err != nil {
		t.Fatalf("healthy LearnAll: %v", err)
	}
	checkAdvisoryConsistent(t, n, docs, "healthy sweep")
	if got := n.BannedTerms(docs[0].ID); len(got) != 1 || got[0] != "hot" {
		t.Fatalf("after retry: banned terms for d1 = %v, want [hot]", got)
	}
}
