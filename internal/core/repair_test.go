package core

import (
	"testing"

	"github.com/spritedht/sprite/internal/chord"
	"github.com/spritedht/sprite/internal/chordid"
	"github.com/spritedht/sprite/internal/simnet"
	"github.com/spritedht/sprite/internal/telemetry"
)

// joinableNetwork builds a ring via the join protocol (so arc-change hooks
// fire exactly as in a live deployment) and shares one 4-term document.
func joinableNetwork(t *testing.T, cfg Config) (*Network, *chord.Ring) {
	t.Helper()
	net := simnet.New(3)
	ring := chord.NewRing(net, chord.Config{FingerBits: 24})
	if _, err := ring.AddNodes("m", 6); err != nil {
		t.Fatal(err)
	}
	ring.Build()
	n, err := NewNetwork(ring, cfg)
	if err != nil {
		t.Fatal(err)
	}
	d := doc("d", map[string]int{"terma": 4, "termb": 3, "termc": 2, "termd": 1})
	if err := n.Share("m0", d); err != nil {
		t.Fatal(err)
	}
	return n, ring
}

// findJoiner returns a node name whose ID would take over at least one of
// the shared document's term keys, or "" if the hash layout yields none.
func findJoiner(ring *chord.Ring) string {
	for i := 0; i < 200; i++ {
		cand := chordid.HashKey(nameFor(i))
		for _, term := range []string{"terma", "termb", "termc", "termd"} {
			key := chordid.HashKey(term)
			owner, _ := ring.Owner(key)
			if cand.BetweenLeftIncl(key, owner.ID()) {
				return nameFor(i)
			}
		}
	}
	return ""
}

func TestJoinHandoffMigratesWithoutRefresh(t *testing.T) {
	n, ring := joinableNetwork(t, Config{InitialTerms: 4})
	joinName := findJoiner(ring)
	if joinName == "" {
		t.Skip("no joiner candidate found (hash layout)")
	}
	joiner, err := ring.AddNode(joinName)
	if err != nil {
		t.Fatal(err)
	}
	// Adopt BEFORE joining: the peer must be able to accept handoffs the
	// moment its successor's arc-change hook fires during stabilization.
	n.Adopt(joiner)
	if err := joiner.Join(ring.Nodes()[0]); err != nil {
		t.Fatal(err)
	}
	ring.Stabilize(200)
	ring.RepairFingers()

	// No owner refresh ran, yet every term must already be findable: the
	// successor handed the joiner's arc over when it adopted it as pred.
	for _, term := range []string{"terma", "termb", "termc", "termd"} {
		rl, err := n.Search("m1", []string{term}, 5)
		if err != nil {
			t.Fatal(err)
		}
		if len(rl) != 1 {
			t.Fatalf("term %q unfindable after join without refresh", term)
		}
	}
	// The owner's holder-of-record followed the entries, so a refresh sweep
	// has nothing left to migrate.
	moved, err := n.RefreshAll()
	if err != nil {
		t.Fatal(err)
	}
	if moved != 0 {
		t.Fatalf("refresh still moved %d entries after join handoff", moved)
	}
	// And no primary entry sits outside its holder's arc.
	if st := n.Repair(); st.Moved != 0 {
		t.Fatalf("repair sweep moved %d entries on a converged ring", st.Moved)
	}
}

func TestLeaveHandsEntriesToSuccessor(t *testing.T) {
	n, ring := joinableNetwork(t, Config{InitialTerms: 4})
	// Find a peer (not the owner m0) holding at least one primary entry.
	var leaver simnet.Addr
	for _, p := range n.Peers() {
		if p.Addr() == "m0" {
			continue
		}
		p.indexing.mu.Lock()
		held := p.indexing.ix.NumPostings()
		p.indexing.mu.Unlock()
		if held > 0 {
			leaver = p.Addr()
			break
		}
	}
	if leaver == "" {
		t.Skip("no non-owner peer holds entries (hash layout)")
	}
	rep, err := n.Leave(leaver)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Handoffs == 0 {
		t.Fatal("graceful leave handed off no entries")
	}
	if len(rep.Unrelocated) != 0 {
		t.Fatalf("leave on a healthy ring left %d owner records stale", len(rep.Unrelocated))
	}
	if _, ok := n.Peer(leaver); ok {
		t.Fatal("departed peer still registered with the network")
	}
	if ring.Size() != 5 {
		t.Fatalf("ring size after leave = %d, want 5", ring.Size())
	}
	ring.Stabilize(200)
	ring.RepairFingers()
	for _, term := range []string{"terma", "termb", "termc", "termd"} {
		rl, err := n.Search("m0", []string{term}, 5)
		if err != nil {
			t.Fatal(err)
		}
		if len(rl) != 1 {
			t.Fatalf("term %q unfindable after graceful leave", term)
		}
	}
	if moved, _ := n.RefreshAll(); moved != 0 {
		t.Fatalf("refresh migrated %d entries after graceful leave", moved)
	}
}

func TestLeaveUnsharesOwnedDocuments(t *testing.T) {
	n, _ := joinableNetwork(t, Config{InitialTerms: 4})
	rep, err := n.Leave("m0")
	if err != nil {
		t.Fatal(err)
	}
	if rep.Docs != 1 {
		t.Fatalf("leave unshared %d docs, want 1", rep.Docs)
	}
	if got := n.Documents(); len(got) != 0 {
		t.Fatalf("documents after owner left = %v, want none", got)
	}
	if got := n.TotalPostings(); got != 0 {
		t.Fatalf("postings after owner left = %d, want 0", got)
	}
}

func TestLeaveUnknownOrFailedPeer(t *testing.T) {
	n, ring := joinableNetwork(t, Config{InitialTerms: 2})
	if _, err := n.Leave("ghost"); err == nil {
		t.Fatal("leave of unknown peer succeeded")
	}
	ring.Fail(ring.Nodes()[3])
	if _, err := n.Leave(ring.Nodes()[3].Addr()); err == nil {
		t.Fatal("graceful leave of a failed peer succeeded")
	}
}

func TestRepairSweepFixesStrandedEntry(t *testing.T) {
	n, _ := joinableNetwork(t, Config{InitialTerms: 4})
	// Strand one primary entry on the wrong peer with a consistent owner
	// record (the sabotage used by the chaos mutation test).
	entries := n.PrimarySnapshot()
	victim := entries[0]
	var wrong simnet.Addr
	for _, p := range n.Peers() {
		if p.Addr() != victim.Peer {
			wrong = p.Addr()
		}
	}
	if !n.RelocatePrimaryEntry(victim.Peer, wrong, victim.Term, victim.Posting.Doc) {
		t.Fatal("sabotage failed to move the entry")
	}
	st := n.Repair()
	if st.Moved == 0 {
		t.Fatal("repair sweep moved nothing despite a stranded entry")
	}
	// The entry must be back at the ring owner of its term, with the owner
	// ledger in agreement.
	ownerNode, _ := n.ring.Owner(chordid.HashKey(victim.Term))
	for _, e := range n.PrimarySnapshot() {
		if e.Term == victim.Term && e.Posting.Doc == victim.Posting.Doc && e.Peer != ownerNode.Addr() {
			t.Fatalf("entry for %q still at %s, ring owner is %s", e.Term, e.Peer, ownerNode.Addr())
		}
	}
	di, _ := n.DocIndexInfo(victim.Posting.Doc)
	if got := di.PublishedAt[victim.Term]; got != ownerNode.Addr() {
		t.Fatalf("owner record for %q = %s, want %s", victim.Term, got, ownerNode.Addr())
	}
}

func TestAntiEntropyRestoresLostReplica(t *testing.T) {
	n, _ := joinableNetwork(t, Config{InitialTerms: 4, ReplicationFactor: 2})
	reps := n.ReplicaSnapshot()
	if len(reps) == 0 {
		t.Fatal("no replicas to lose")
	}
	victim := reps[0]
	if !n.DropReplicaEntry(victim.Peer, victim.Term, victim.Posting.Doc) {
		t.Fatal("replica drop failed")
	}
	st := n.Repair()
	if st.Reconciles == 0 {
		t.Fatal("no anti-entropy exchanges ran")
	}
	if st.Divergent == 0 {
		t.Fatal("anti-entropy saw no divergence despite a lost replica")
	}
	restored := false
	for _, e := range n.ReplicaSnapshot() {
		if e.Peer == victim.Peer && e.Term == victim.Term && e.Posting.Doc == victim.Posting.Doc {
			restored = true
		}
	}
	if !restored {
		t.Fatal("lost replica not restored by anti-entropy")
	}
	// A second sweep finds everything in sync.
	if st2 := n.Repair(); st2.Divergent != 0 {
		t.Fatalf("second sweep still divergent: %+v", st2)
	}
}

func TestRepairTelemetryCounters(t *testing.T) {
	reg := telemetry.NewRegistry()
	net := simnet.New(3)
	ring := chord.NewRing(net, chord.Config{FingerBits: 24, Telemetry: reg})
	if _, err := ring.AddNodes("m", 6); err != nil {
		t.Fatal(err)
	}
	ring.Build()
	n, err := NewNetwork(ring, Config{InitialTerms: 4, ReplicationFactor: 2, Telemetry: reg})
	if err != nil {
		t.Fatal(err)
	}
	if err := n.Share("m0", doc("d", map[string]int{"terma": 4, "termb": 3, "termc": 2, "termd": 1})); err != nil {
		t.Fatal(err)
	}
	// Provoke a handoff (stranded entry) and replica divergence.
	entries := n.PrimarySnapshot()
	victim := entries[0]
	var wrong simnet.Addr
	for _, p := range n.Peers() {
		if p.Addr() != victim.Peer {
			wrong = p.Addr()
		}
	}
	n.RelocatePrimaryEntry(victim.Peer, wrong, victim.Term, victim.Posting.Doc)
	if reps := n.ReplicaSnapshot(); len(reps) > 0 {
		n.DropReplicaEntry(reps[0].Peer, reps[0].Term, reps[0].Posting.Doc)
	}
	n.Repair()

	snap := reg.Snapshot()
	for _, name := range []string{"sprite.repair.handoffs", "sprite.repair.reconciles", "sprite.repair.divergent_terms"} {
		if snap.Counters[name] == 0 {
			t.Errorf("counter %s = 0 after a repair sweep with divergence", name)
		}
	}
	// The chord layer's successor-list depth gauge is exported alongside;
	// Build() wires state directly, so drive one stabilization round to let
	// the protocol path record it.
	ring.Stabilize(1)
	snap = reg.Snapshot()
	if depth := snap.Gauges["chord.successors.depth"]; depth <= 0 {
		t.Errorf("chord.successors.depth gauge = %d, want > 0", depth)
	}
}
