package core

import (
	"errors"
	"fmt"
	"strings"
)

// This file defines the package's error contract. Callers branch on three
// conditions — "you named a peer that does not exist", "you named a document
// that is not shared", and "the query succeeded only partially" — so each is
// a sentinel or typed error instead of an ad-hoc string.

// ErrNoSuchPeer reports an operation addressed to a peer the network does not
// know. Matched with errors.Is.
var ErrNoSuchPeer = errors.New("core: no such peer")

// ErrNoSuchDoc reports an operation on a document that is not currently
// shared. Matched with errors.Is.
var ErrNoSuchDoc = errors.New("core: no such document")

// ErrPartialResults marks a search that returned a ranked list computed over
// only part of the query's terms, because some terms' postings could not be
// fetched from any holder. Matched with errors.Is; the per-term detail is a
// *PartialError retrieved with errors.As.
var ErrPartialResults = errors.New("core: partial results")

// TermFailure records why one query term contributed nothing to a search:
// every holder of its postings (owner, then replicas when failover is on) was
// unreachable, or the lookup could not resolve a holder at all.
type TermFailure struct {
	Term string
	Err  error
}

// PartialError is the §7 degraded mode made inspectable: the search completed
// and returned a ranked list over the reachable terms, and this error reports
// which terms were dropped and why. It matches errors.Is(err,
// ErrPartialResults) and unwraps per-term causes, so errors.Is(err,
// simnet.ErrUnreachable) also holds when a transport failure was among them.
type PartialError struct {
	Failures []TermFailure
}

// Error lists the dropped terms.
func (e *PartialError) Error() string {
	terms := make([]string, len(e.Failures))
	for i, f := range e.Failures {
		terms[i] = f.Term
	}
	return fmt.Sprintf("core: partial results: %d term(s) dropped (%s)",
		len(e.Failures), strings.Join(terms, ", "))
}

// Is matches the ErrPartialResults sentinel.
func (e *PartialError) Is(target error) bool { return target == ErrPartialResults }

// Unwrap exposes the per-term causes to errors.Is/As chains.
func (e *PartialError) Unwrap() []error {
	out := make([]error, 0, len(e.Failures))
	for _, f := range e.Failures {
		if f.Err != nil {
			out = append(out, f.Err)
		}
	}
	return out
}

// stripPartial converts a partial-results error to success, for entry points
// that predate the error contract and promised "unreachable terms are
// skipped" with a nil error. Any other error passes through.
func stripPartial(err error) error {
	if errors.Is(err, ErrPartialResults) {
		return nil
	}
	return err
}
