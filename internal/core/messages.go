package core

import (
	"github.com/spritedht/sprite/internal/chordid"
	"github.com/spritedht/sprite/internal/index"
	"github.com/spritedht/sprite/internal/repair"
	"github.com/spritedht/sprite/internal/simnet"
)

// SPRITE's application-level message types, dispatched by chord.Node to the
// owning Peer. Sizes are simulated wire sizes for bandwidth accounting.
const (
	// msgPublish carries one (term, posting) pair from an owner peer to the
	// indexing peer responsible for the term.
	msgPublish = "sprite.publish"
	// msgUnpublish removes a (term, doc) posting — learning retired the term.
	msgUnpublish = "sprite.unpublish"
	// msgGetPostings retrieves a term's inverted list during query
	// processing; it carries the full query so the indexing peer can cache
	// it in its history (§3).
	msgGetPostings = "sprite.get_postings"
	// msgCacheQuery inserts a query into an indexing peer's history without
	// retrieving postings (the training-set insertion of §6.2).
	msgCacheQuery = "sprite.cache_query"
	// msgPoll is the owner peer's periodic index-update poll: it announces
	// all global index terms of a document and asks for the new queries for
	// which this peer holds the closest term (§3).
	msgPoll = "sprite.poll"
	// msgReplica pushes a copy of an index entry to a successor peer (§7).
	msgReplica = "sprite.replica"
	// msgReplicaDrop removes a replicated entry.
	msgReplicaDrop = "sprite.replica_drop"

	// msgHandoff batch-installs primary index entries at a peer whose arc now
	// covers them — the first round of the join/leave handoff protocol (see
	// internal/core/repair.go). The receiver serves them immediately but the
	// sender remains their holder of record until relocation commits.
	msgHandoff = "sprite.repair.handoff"
	// msgHandoffDrop reverts one entry of an aborted handoff: the owner could
	// not be told about the move, so the receiver's copy must go before the
	// sender deletes nothing.
	msgHandoffDrop = "sprite.repair.handoff_drop"
	// msgRelocate asks a document's owner to rewrite its holder-of-record
	// (publishedAt) for one term, compare-and-swap style: the flip commits
	// only if the owner still believes the entry lives at the sender.
	msgRelocate = "sprite.relocate"
	// msgRepairDigest opens an anti-entropy exchange: the primary holder of
	// an arc sends its compact Merkle summary; the replica holder answers
	// with the per-term digests of the divergent buckets (or "in sync").
	msgRepairDigest = "sprite.repair.digest"
	// msgRepairPush closes an anti-entropy exchange: the primary replaces the
	// divergent terms' replica lists wholesale.
	msgRepairPush = "sprite.repair.push"
	// msgReplicaRetire tells a primary holder that a gracefully departing
	// peer no longer holds the replicas recorded against it, so future
	// withdrawals stop addressing a peer that left for good.
	msgReplicaRetire = "sprite.repair.retire"
)

type publishReq struct {
	Term    string
	Posting index.Posting
}

type unpublishReq struct {
	Term string
	Doc  index.DocID
}

type unpublishResp struct {
	// StaleReplicas are replica holders the indexing peer failed to reach
	// while withdrawing the entry's copies. Without reporting them, a drop
	// lost to a crashed holder would orphan that replica forever: the holder
	// list is consumed by the withdrawal, and no later operation addresses
	// the entry at that peer. The owner queues these on the document's stale
	// list and retries them like any other stale withdrawal.
	StaleReplicas []simnet.Addr
}

type getPostingsReq struct {
	Term string
	// Query is the complete keyword set of the query being processed; the
	// indexing peer caches it for future learning when Record is set.
	Query []string
	// Record controls whether the indexing peer adds Query to its history.
	// Normal query processing records; measurement probes do not.
	Record bool
}

type getPostingsResp struct {
	// Postings is the term's inverted list in its block-compressed form:
	// the indexing peer's encoded blocks travel as-is and the querier
	// decodes them lazily, one posting at a time, through a cursor.
	Postings index.Encoded
	// IndexedDF is n'_k — the number of documents that chose Term as a
	// global index term (§4).
	IndexedDF int
	// FromReplica reports that the primary had no entries and a successor
	// replica answered instead (§7).
	FromReplica bool
}

type cacheQueryReq struct {
	Query []string
}

type pollReq struct {
	Term string
	Doc  index.DocID
	// DocTerms lists all current global index terms of the document, so the
	// indexing peer can decide for which cached queries it is the
	// closest-term peer (§3's de-duplication).
	DocTerms []string
	// Since is the history watermark from the previous poll; only newer
	// queries are returned (Algorithm 1's incremental query set).
	Since uint64
}

type pollResp struct {
	Queries  [][]string
	NewSince uint64
	// IndexedDF is the polled term's current indexed document frequency at
	// this peer — the signal behind the §7 hot-term advisory: a very high
	// value means the term's IDF is negligible and owners are better off
	// spending the index slot elsewhere.
	IndexedDF int
}

type replicaReq struct {
	Term    string
	Posting index.Posting
}

type replicaDropReq struct {
	Term string
	Doc  index.DocID
}

// handoffEntry is one primary index entry in flight during a join/leave
// handoff: the posting plus the sender's recorded replica locations, which
// transfer with the entry so the new holder's withdrawals keep reaching
// every copy ever pushed.
type handoffEntry struct {
	Term        string
	Posting     index.Posting
	ReplicaLocs []simnet.Addr
}

type handoffReq struct {
	Entries []handoffEntry
}

// handoffResp reports, per entry of the request, whether the receiver's
// primary index already held the (term, doc) before the install. A
// pre-existing entry means the install merged with state the receiver owned
// in its own right — typically a copy re-anchored there by orphan reclaim
// while the sender still held a zombie duplicate. If the relocation CAS is
// then refused, the sender must NOT revert the install: the drop would
// destroy the receiver's legitimate entry, not the sender's transfer.
type handoffResp struct {
	Existing []bool
}

type handoffDropReq struct {
	Term string
	Doc  index.DocID
}

type relocateReq struct {
	Term string
	Doc  index.DocID
	// From is the holder the sender believes the owner has on record; the
	// owner refuses the flip if its record disagrees (the entry migrated
	// some other way in the meantime).
	From simnet.Addr
	// To is the entry's new holder.
	To simnet.Addr
}

type relocateResp struct {
	OK bool
}

type repairDigestReq struct {
	// Arc restricts the exchange to the sender's owner arc: the replica
	// holder keeps copies for many primaries, and only the sender's slice of
	// the key space is the sender's to reconcile.
	Arc chordid.Arc
	// Summary is the two-level Merkle digest of the sender's primary entries
	// in Arc (see internal/repair).
	Summary repair.Summary
}

type repairDigestResp struct {
	// InSync reports digest equality — the common case, costing this one
	// round trip of a few dozen bytes.
	InSync bool
	// Buckets are the summary buckets that disagreed.
	Buckets []int
	// Local holds the replica holder's per-term digests within the divergent
	// buckets (restricted to the request arc), from which the primary
	// computes exactly which term lists to push.
	Local map[string]uint64
}

// termPostings is one term's full authoritative posting list in a repair
// push.
type termPostings struct {
	Term     string
	Postings []index.Posting
}

type repairPushReq struct {
	Arc chordid.Arc
	// Set replaces each term's replica list wholesale. A term belongs to
	// exactly one primary, so every copy of it within the arc is the
	// sender's to overwrite.
	Set []termPostings
}

type replicaRetireReq struct {
	// Holder is the departing replica holder to erase from the receiver's
	// replica-location records.
	Holder simnet.Addr
	Term   string
	Docs   []index.DocID
}

// wire-size helpers (rough but consistent, for bandwidth accounting).

func sizeTerms(terms []string) int {
	n := 0
	for _, t := range terms {
		n += len(t) + 1
	}
	return n
}

// queryHash returns the canonical ring position of a query's keyword set.
// The paper hashes every cached query (precomputable offline) so that the
// single indexing peer holding the closest term — by hash-space distance —
// returns it during polling, avoiding duplicate transmissions (§3).
func queryHash(terms []string) chordid.ID {
	q := canonicalQuery(terms)
	return chordid.HashKey(q)
}

func canonicalQuery(terms []string) string {
	sorted := append([]string(nil), terms...)
	insertionSort(sorted)
	out := ""
	for i, t := range sorted {
		if i > 0 {
			out += " "
		}
		out += t
	}
	return out
}

// insertionSort keeps the hot path allocation-free for the short slices
// queries are (typically 3–6 terms).
func insertionSort(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// closestTerm returns the term among candidates whose hash is closest to the
// query hash by clockwise ring distance, ties broken by term string so every
// peer reaches the same answer independently.
func closestTerm(qh chordid.ID, candidates []string) string {
	best := ""
	var bestDist chordid.ID
	for _, t := range candidates {
		d := qh.Distance(chordid.HashKey(t))
		if best == "" || d.Cmp(bestDist) < 0 || (d.Cmp(bestDist) == 0 && t < best) {
			best, bestDist = t, d
		}
	}
	return best
}
