package core

import (
	"testing"

	"github.com/spritedht/sprite/internal/chord"
	"github.com/spritedht/sprite/internal/chordid"
	"github.com/spritedht/sprite/internal/simnet"
)

func TestUnshareRemovesAllPostings(t *testing.T) {
	n := testNetwork(t, 8, Config{InitialTerms: 3})
	d := doc("d1", map[string]int{"aa": 3, "bb": 2, "cc": 1})
	if err := n.Share("p0", d); err != nil {
		t.Fatal(err)
	}
	if n.TotalPostings() != 3 {
		t.Fatalf("postings = %d", n.TotalPostings())
	}
	if err := n.Unshare("d1"); err != nil {
		t.Fatalf("Unshare: %v", err)
	}
	if got := n.TotalPostings(); got != 0 {
		t.Fatalf("postings after unshare = %d, want 0", got)
	}
	if _, err := n.IndexedTerms("d1"); err == nil {
		t.Fatal("unshared document still known")
	}
	if rl, _ := n.Search("p1", []string{"aa"}, 5); len(rl) != 0 {
		t.Fatalf("unshared document still findable: %v", rl)
	}
	// The document can be shared again (fresh state).
	if err := n.Share("p2", doc("d1", map[string]int{"aa": 1})); err != nil {
		t.Fatalf("re-share after unshare: %v", err)
	}
}

func TestUnshareUnknownDoc(t *testing.T) {
	n := testNetwork(t, 4, Config{})
	if err := n.Unshare("ghost"); err == nil {
		t.Fatal("unsharing unknown doc succeeded")
	}
}

func TestUnshareRemovesFromLearningSweep(t *testing.T) {
	n := testNetwork(t, 6, Config{InitialTerms: 1})
	n.Share("p0", doc("a", map[string]int{"x": 1}))
	n.Share("p1", doc("b", map[string]int{"y": 1}))
	if err := n.Unshare("a"); err != nil {
		t.Fatal(err)
	}
	if got := n.Documents(); len(got) != 1 || got[0] != "b" {
		t.Fatalf("Documents = %v", got)
	}
	if _, err := n.LearnAll(); err != nil {
		t.Fatalf("LearnAll after unshare: %v", err)
	}
}

func TestUnshareWithReplication(t *testing.T) {
	n := testNetwork(t, 10, Config{InitialTerms: 2, ReplicationFactor: 2})
	n.Share("p0", doc("d", map[string]int{"rep": 2, "lic": 1}))
	if err := n.Unshare("d"); err != nil {
		t.Fatal(err)
	}
	// Replicas must be dropped too: no peer may still serve the term.
	for _, p := range n.Peers() {
		resp := p.indexing.postings("rep")
		if resp.IndexedDF != 0 {
			t.Fatalf("peer %s still serves replicated postings after unshare", p.Addr())
		}
	}
}

func TestRefreshNoChurnMovesNothing(t *testing.T) {
	n := testNetwork(t, 8, Config{InitialTerms: 3})
	n.Share("p0", doc("d", map[string]int{"qq": 3, "ww": 2, "ee": 1}))
	moved, err := n.RefreshAll()
	if err != nil {
		t.Fatal(err)
	}
	if moved != 0 {
		t.Fatalf("refresh on a stable ring moved %d entries", moved)
	}
}

func TestRefreshMigratesAfterJoin(t *testing.T) {
	// A new node joins and takes over part of the key space; entries it now
	// owns are unfindable until the owner refreshes.
	net := simnet.New(3)
	ring := chord.NewRing(net, chord.Config{FingerBits: 24})
	if _, err := ring.AddNodes("m", 6); err != nil {
		t.Fatal(err)
	}
	ring.Build()
	n, err := NewNetwork(ring, Config{InitialTerms: 4})
	if err != nil {
		t.Fatal(err)
	}
	d := doc("d", map[string]int{"terma": 4, "termb": 3, "termc": 2, "termd": 1})
	if err := n.Share("m0", d); err != nil {
		t.Fatal(err)
	}

	// Find a joiner name that would own at least one of the doc's terms.
	joinName := ""
	for i := 0; i < 200 && joinName == ""; i++ {
		cand := chordid.HashKey(nameFor(i))
		for _, term := range []string{"terma", "termb", "termc", "termd"} {
			key := chordid.HashKey(term)
			owner, _ := ring.Owner(key)
			// The candidate becomes the key's owner iff it lies on the
			// clockwise arc [key, currentOwner).
			if cand.BetweenLeftIncl(key, owner.ID()) {
				joinName = nameFor(i)
				break
			}
		}
	}
	if joinName == "" {
		t.Skip("no joiner candidate found (hash layout)")
	}

	joiner, err := ring.AddNode(joinName)
	if err != nil {
		t.Fatal(err)
	}
	if err := joiner.Join(ring.Nodes()[0]); err != nil {
		t.Fatal(err)
	}
	ring.Stabilize(200)
	ring.RepairFingers()
	// Attach SPRITE state to the new node so it can serve app messages.
	n.Adopt(joiner)

	moved, err := n.RefreshAll()
	if err != nil {
		t.Fatal(err)
	}
	if moved == 0 {
		t.Fatal("refresh after join moved nothing")
	}
	// Every term must be findable again.
	for _, term := range []string{"terma", "termb", "termc", "termd"} {
		rl, err := n.Search("m1", []string{term}, 5)
		if err != nil {
			t.Fatal(err)
		}
		if len(rl) != 1 {
			t.Fatalf("term %q unfindable after refresh", term)
		}
	}
}

func nameFor(i int) string {
	return "joiner" + string(rune('a'+i%26)) + string(rune('a'+(i/26)%26))
}

func TestRefreshUnknownDoc(t *testing.T) {
	n := testNetwork(t, 4, Config{})
	if _, err := n.RefreshDoc("ghost"); err == nil {
		t.Fatal("refreshing unknown doc succeeded")
	}
}

func TestRefreshAfterRecoveryRestoresEntries(t *testing.T) {
	// An indexing peer fails; its entries are lost (no replication). When a
	// key moves to the failover peer, refresh republished the entries there.
	n := testNetwork(t, 10, Config{InitialTerms: 2})
	n.Share("p0", doc("d", map[string]int{"alpha": 2, "beta": 1}))

	// Fail the peer holding "alpha".
	key := chordid.HashKey("alpha")
	owner, _ := n.Ring().Owner(key)
	n.Ring().Fail(owner)

	if rl, _ := n.Search("p1", []string{"alpha"}, 5); len(rl) != 0 {
		t.Fatalf("entries on failed peer still served: %v", rl)
	}
	moved, err := n.RefreshAll()
	if err != nil {
		t.Fatal(err)
	}
	if moved == 0 {
		t.Fatal("refresh did not migrate entries off the failed peer")
	}
	rl, err := n.Search("p1", []string{"alpha"}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(rl) != 1 {
		t.Fatal("entries not restored on the failover peer")
	}
}
