package core

import (
	"context"
	"fmt"
	"sort"

	"github.com/spritedht/sprite/internal/chordid"
	"github.com/spritedht/sprite/internal/fanout"
	"github.com/spritedht/sprite/internal/index"
	"github.com/spritedht/sprite/internal/ir"
	"github.com/spritedht/sprite/internal/simnet"
)

// This file implements query expansion by local context analysis, the §7
// technique the paper singles out as suitable for P2P settings because it
// needs no global statistics: "In local context analysis, global information
// is not required … the co-occurrence of nouns in a document is analyzed.
// Queries are enriched accordingly."
//
// The distributed realization is two-phase pseudo-relevance feedback. The
// querying peer first runs the normal search, then downloads the term
// vectors of the top few results from their *owner peers* (the same peers a
// user would download the documents from in the retrieval phase, §3), scores
// co-occurring terms, appends the best ones to the query, and searches
// again.

// ExpandOptions tunes SearchExpanded.
type ExpandOptions struct {
	// FeedbackDocs is the number of top first-phase results whose term
	// vectors are analyzed. Default 5.
	FeedbackDocs int
	// ExpansionTerms is the number of co-occurring terms appended to the
	// query. Default 3.
	ExpansionTerms int
}

func (o ExpandOptions) withDefaults() ExpandOptions {
	if o.FeedbackDocs == 0 {
		o.FeedbackDocs = 5
	}
	if o.ExpansionTerms == 0 {
		o.ExpansionTerms = 3
	}
	return o
}

// docTermsReq asks a document's owner peer for its local term vector — the
// metadata an owner keeps for every shared document (§3: the owner is
// "responsible for maintaining each shared document it owns, locally
// indexing it").
type docTermsReq struct {
	Doc index.DocID
}

type docTermsResp struct {
	Found  bool
	TF     map[string]int
	Length int
}

const msgDocTerms = "sprite.doc_terms"

// handleDocTerms serves a document's term vector from the owner's local
// index. Registered in Peer.HandleMessage.
func (p *Peer) handleDocTerms(req docTermsReq) docTermsResp {
	p.mu.Lock()
	st := p.owned[req.Doc]
	p.mu.Unlock()
	if st == nil {
		return docTermsResp{}
	}
	tf := make(map[string]int, len(st.doc.TF))
	for t, f := range st.doc.TF {
		tf[t] = f
	}
	return docTermsResp{Found: true, TF: tf, Length: st.doc.Length}
}

// SearchExpanded runs a two-phase expanded search from the given peer: a
// normal first-phase search, local-context analysis over the top results'
// term vectors, then a second search with the enriched query. It returns
// the final ranked list and the expansion terms used.
func (n *Network) SearchExpanded(from simnet.Addr, terms []string, k int, opts ExpandOptions) (ir.RankedList, []string, error) {
	p, ok := n.peer(from)
	if !ok {
		return nil, nil, fmt.Errorf("core: unknown peer %q", from)
	}
	opts = opts.withDefaults()
	n.met.expansionRounds.Inc()

	first := p.searchWithOwners(terms, opts.FeedbackDocs)
	if len(first.hits) == 0 {
		return nil, nil, nil
	}
	expansion := p.localContextTerms(terms, first, opts.ExpansionTerms)
	if len(expansion) == 0 {
		return p.search(terms, k, false), nil, nil
	}
	expanded := append(append([]string(nil), terms...), expansion...)
	return p.search(expanded, k, false), expansion, nil
}

// ownedHits is a first-phase result list that retains owner addresses.
type ownedHits struct {
	hits   ir.RankedList
	owners map[index.DocID]simnet.Addr
}

// searchWithOwners is the first expansion phase: like search, but it records
// which owner peer holds each result so the term vectors can be fetched.
// It does not record the query in histories (the follow-up full search in
// the caller's hands decides that).
func (p *Peer) searchWithOwners(terms []string, k int) ownedHits {
	qtf := make(map[string]int, len(terms))
	for _, t := range terms {
		qtf[t]++
	}
	nTotal := p.net.cfg.SurrogateN
	// Per-term fetches fan out (network I/O only); scoring and owner
	// collection fold in term order below, reproducing the sequential result.
	dts := distinctTerms(terms)
	type fetchOut struct {
		resp getPostingsResp
		ok   bool
	}
	outs, _ := fanout.Map(context.Background(), p.net.exec, "expand_fetch", len(dts), func(_ context.Context, i int) (fetchOut, error) {
		ref, _, err := p.node.Lookup(chordid.HashKey(dts[i]))
		if err != nil {
			return fetchOut{}, nil
		}
		reply, err := p.net.ring.Net().Call(p.Addr(), ref.Addr, simnet.Message{
			Type:    msgGetPostings,
			Payload: getPostingsReq{Term: dts[i], Query: terms},
			Size:    len(dts[i]) + sizeTerms(terms),
		})
		if err != nil {
			return fetchOut{}, nil
		}
		return fetchOut{resp: reply.Payload.(getPostingsResp), ok: true}, nil
	})
	acc := ir.NewAccumulator()
	owners := make(map[index.DocID]simnet.Addr)
	for i, term := range dts {
		if !outs[i].ok || outs[i].resp.IndexedDF == 0 {
			continue
		}
		resp := outs[i].resp
		wq := ir.QueryWeight(qtf[term], len(terms), nTotal, resp.IndexedDF)
		cur := resp.Postings.Cursor()
		for posting, ok := cur.Next(); ok; posting, ok = cur.Next() {
			wd := ir.Weight(posting.NormFreq(), nTotal, resp.IndexedDF)
			acc.Accumulate(posting.Doc, wq*wd, posting.DocLen)
			owners[posting.Doc] = simnet.Addr(posting.Owner)
		}
	}
	return ownedHits{hits: acc.Ranked().Top(k), owners: owners}
}

// localContextTerms fetches the feedback documents' term vectors from their
// owners and scores candidate expansion terms by similarity-weighted,
// length-normalized co-occurrence:
//
//	lca(t) = Σ_d sim(d) · tf(t, d)/|d|   over the feedback documents
//
// Query terms themselves are excluded; ties break alphabetically.
func (p *Peer) localContextTerms(queryTerms []string, first ownedHits, want int) []string {
	inQuery := make(map[string]bool, len(queryTerms))
	for _, t := range queryTerms {
		inQuery[t] = true
	}
	// Term-vector downloads from the feedback documents' owners fan out;
	// the co-occurrence scores fold in hit-rank order so the float sums match
	// the sequential loop exactly.
	type vecOut struct {
		resp docTermsResp
		ok   bool
	}
	outs, _ := fanout.Map(context.Background(), p.net.exec, "expand_vectors", len(first.hits), func(_ context.Context, i int) (vecOut, error) {
		owner, ok := first.owners[first.hits[i].Doc]
		if !ok {
			return vecOut{}, nil
		}
		reply, err := p.net.ring.Net().Call(p.Addr(), owner, simnet.Message{
			Type:    msgDocTerms,
			Payload: docTermsReq{Doc: first.hits[i].Doc},
			Size:    len(first.hits[i].Doc),
		})
		if err != nil {
			return vecOut{}, nil // owner offline: skip its evidence
		}
		return vecOut{resp: reply.Payload.(docTermsResp), ok: true}, nil
	})
	scores := make(map[string]float64)
	for i, hit := range first.hits {
		resp := outs[i].resp
		if !outs[i].ok || !resp.Found || resp.Length == 0 {
			continue
		}
		for t, f := range resp.TF {
			if inQuery[t] {
				continue
			}
			scores[t] += hit.Score * float64(f) / float64(resp.Length)
		}
	}
	type cand struct {
		term  string
		score float64
	}
	cands := make([]cand, 0, len(scores))
	for t, s := range scores {
		cands = append(cands, cand{t, s})
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].score != cands[j].score {
			return cands[i].score > cands[j].score
		}
		return cands[i].term < cands[j].term
	})
	if want > len(cands) {
		want = len(cands)
	}
	out := make([]string, want)
	for i := 0; i < want; i++ {
		out[i] = cands[i].term
	}
	return out
}
