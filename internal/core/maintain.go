package core

import (
	"context"
	"fmt"

	"github.com/spritedht/sprite/internal/chordid"
	"github.com/spritedht/sprite/internal/fanout"
	"github.com/spritedht/sprite/internal/index"
	"github.com/spritedht/sprite/internal/simnet"
)

// This file implements index maintenance: un-sharing documents and the
// owner's periodic refresh. The paper's §1 observes that owners must
// "periodically probe the indexing peers to ensure that they are still
// alive"; refresh is that probe made effectful — it re-publishes every index
// term through a fresh DHT lookup, so entries migrate to whichever peer
// currently owns the term's key (after churn, joins, or recoveries).

// Unshare withdraws a document from the network: every published index term
// is removed from its indexing peer (and replicas), and the owner forgets
// the document's learning state. Terms whose indexing peer is unreachable
// are skipped — their entries die with the peer.
func (n *Network) Unshare(doc index.DocID) error {
	n.mu.RLock()
	p, ok := n.ownerOf[doc]
	n.mu.RUnlock()
	if !ok {
		return fmt.Errorf("core: document %q not shared", doc)
	}
	if err := p.unshare(doc); err != nil {
		return err
	}
	n.mu.Lock()
	delete(n.ownerOf, doc)
	for i, id := range n.docOrder {
		if id == doc {
			n.docOrder = append(n.docOrder[:i], n.docOrder[i+1:]...)
			break
		}
	}
	n.mu.Unlock()
	// Unreachable indexing peers are skipped above without an unpublish
	// message (their entries die with them), so the message handlers' bumps
	// don't cover every removal — invalidate explicitly.
	n.caches.invalidate()
	return nil
}

func (p *Peer) unshare(docID index.DocID) error {
	p.mu.Lock()
	st := p.owned[docID]
	p.mu.Unlock()
	if st == nil {
		return fmt.Errorf("core: peer %s does not own %q", p.Addr(), docID)
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	p.flushStale(st)
	for _, term := range sortedIndexedTerms(st) {
		// Best-effort: a dead indexing peer takes its entries with it.
		if err := p.unpublishTerm(context.Background(), st, term); err != nil {
			delete(st.indexed, term)
			delete(st.since, term)
			delete(st.publishedAt, term)
		}
	}
	p.mu.Lock()
	delete(p.owned, docID)
	p.mu.Unlock()
	return nil
}

// flushStale retries the withdrawals of possibly-stale copies left by failed
// refresh migrations (see docState.stale). Successfully reached holders are
// forgotten; unreachable ones stay recorded for the next sweep. Callers hold
// st.mu.
func (p *Peer) flushStale(st *docState) {
	for _, term := range sortedStaleTerms(st) {
		var remaining []simnet.Addr
		for _, addr := range st.stale[term] {
			if st.publishedAt[term] == addr {
				// The entry legitimately lives here now — it migrated back,
				// or a failed replica drop at this peer was superseded by a
				// fresh publish. The record is obsolete, not stale: retrying
				// the withdrawal would delete the live entry.
				continue
			}
			stale, err := p.sendUnpublish(context.Background(), addr, term, st.doc.ID)
			if err != nil {
				remaining = append(remaining, addr)
				continue
			}
			// The reached holder may itself have failed to withdraw replica
			// copies it pushed earlier; keep chasing those.
			remaining = append(remaining, stale...)
		}
		if len(remaining) == 0 {
			delete(st.stale, term)
		} else {
			st.stale[term] = remaining
		}
	}
}

// markStale records that addr may still hold a withdrawn copy of term.
func markStale(st *docState, term string, addr simnet.Addr) {
	if st.stale == nil {
		st.stale = make(map[string][]simnet.Addr)
	}
	for _, a := range st.stale[term] {
		if a == addr {
			return
		}
	}
	st.stale[term] = append(st.stale[term], addr)
}

func sortedStaleTerms(st *docState) []string {
	out := make([]string, 0, len(st.stale))
	for t := range st.stale {
		out = append(out, t)
	}
	insertionSort(out)
	return out
}

// RefreshDoc re-publishes every current index term of a document through a
// fresh lookup. After overlay changes (node joins, failures, recoveries)
// the peer responsible for a term's key may have changed; refresh moves the
// posting to the current owner, restoring findability without replication.
// It returns the number of terms whose indexing peer changed.
func (n *Network) RefreshDoc(doc index.DocID) (int, error) {
	n.mu.RLock()
	p, ok := n.ownerOf[doc]
	n.mu.RUnlock()
	if !ok {
		return 0, fmt.Errorf("core: document %q not shared", doc)
	}
	return p.refresh(doc)
}

// RefreshAll refreshes every shared document in share order and returns the
// total number of migrated postings. It runs over a snapshot of the document
// set; documents unshared concurrently are skipped.
func (n *Network) RefreshAll() (int, error) {
	n.mu.RLock()
	docs := make([]index.DocID, len(n.docOrder))
	copy(docs, n.docOrder)
	owners := make([]*Peer, len(docs))
	for i, id := range docs {
		owners[i] = n.ownerOf[id]
	}
	n.mu.RUnlock()
	moved := 0
	if !n.exec.Parallel() {
		for i, id := range docs {
			if owners[i] == nil {
				continue
			}
			m, err := owners[i].refresh(id)
			if err != nil {
				return moved, fmt.Errorf("core: refresh %s: %w", id, err)
			}
			moved += m
		}
		return moved, nil
	}
	// Per-document refreshes are independent (each touches only its own
	// docState and publishes idempotently), so the sweep fans out; move
	// counts and the first error fold in share order.
	ms, errs := fanout.Map(context.Background(), n.exec, "refresh_doc", len(docs), func(_ context.Context, i int) (int, error) {
		if owners[i] == nil {
			return 0, nil
		}
		return owners[i].refresh(docs[i])
	})
	for i := range docs {
		if errs[i] != nil {
			return moved, fmt.Errorf("core: refresh %s: %w", docs[i], errs[i])
		}
		moved += ms[i]
	}
	return moved, nil
}

func (p *Peer) refresh(docID index.DocID) (int, error) {
	p.mu.Lock()
	st := p.owned[docID]
	p.mu.Unlock()
	if st == nil {
		return 0, fmt.Errorf("core: peer %s does not own %q", p.Addr(), docID)
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	// First retry any withdrawals owed from earlier failed migrations, so a
	// recovered holder sheds its stale copy before fresh publishes go out.
	p.flushStale(st)
	// Per-term lookups — and, for terms whose responsible peer is unchanged,
	// the idempotent re-publication — fan out (network I/O only: workers read
	// st but never write it, st.mu being held across the fan-out). Terms
	// whose responsible peer changed migrate sequentially in the fold below.
	terms := sortedIndexedTerms(st)
	outs, _ := fanout.Map(context.Background(), p.net.exec, "refresh_term", len(terms), func(_ context.Context, i int) (simnet.Addr, error) {
		term := terms[i]
		ref, _, err := p.node.Lookup(chordid.HashKey(term))
		if err != nil {
			return "", nil // no live owner for this key right now
		}
		if last, known := st.publishedAt[term]; known && last != ref.Addr {
			return ref.Addr, nil // migration: withdraw-then-publish in the fold
		}
		if err := p.sendPublish(context.Background(), st, term, ref.Addr); err != nil {
			return "", nil
		}
		return ref.Addr, nil
	})
	moved := 0
	for i, term := range terms {
		addr := outs[i]
		if addr == "" {
			continue
		}
		last, known := st.publishedAt[term]
		if known && last != addr {
			// The responsible peer changed: withdraw the old copy first —
			// its replica withdrawals target the old holder's recorded
			// locations, which can overlap the new owner's replica set, so
			// publishing first would let the withdrawal erase fresh replicas
			// — then publish at the new owner. A failed withdrawal queues
			// the old holder on the stale list for later retries.
			stale, err := p.sendUnpublish(context.Background(), last, term, st.doc.ID)
			if err != nil {
				markStale(st, term, last)
			}
			for _, a := range stale {
				markStale(st, term, a)
			}
			if err := p.publishTermTo(context.Background(), st, term, addr); err != nil {
				// Old copy withdrawn (or queued for withdrawal), new publish
				// failed: the term is no longer indexed anywhere the owner
				// knows of. Forget it; the next learning iteration
				// re-selects it if it still matters.
				delete(st.indexed, term)
				delete(st.since, term)
				delete(st.publishedAt, term)
				continue
			}
			moved++
			continue
		}
		// Same responsible peer: the worker already re-published (restoring
		// replicas at the current successors as a side effect).
		if st.publishedAt == nil {
			st.publishedAt = make(map[string]simnet.Addr)
		}
		st.publishedAt[term] = addr
	}
	return moved, nil
}

func sortedIndexedTerms(st *docState) []string {
	out := make([]string, 0, len(st.indexed))
	for t := range st.indexed {
		out = append(out, t)
	}
	insertionSort(out)
	return out
}
