package core

import (
	"context"
	"fmt"

	"github.com/spritedht/sprite/internal/chordid"
	"github.com/spritedht/sprite/internal/fanout"
	"github.com/spritedht/sprite/internal/index"
	"github.com/spritedht/sprite/internal/simnet"
)

// This file implements index maintenance: un-sharing documents and the
// owner's periodic refresh. The paper's §1 observes that owners must
// "periodically probe the indexing peers to ensure that they are still
// alive"; refresh is that probe made effectful — it re-publishes every index
// term through a fresh DHT lookup, so entries migrate to whichever peer
// currently owns the term's key (after churn, joins, or recoveries).

// Unshare withdraws a document from the network: every published index term
// is removed from its indexing peer (and replicas), and the owner forgets
// the document's learning state. Terms whose indexing peer is unreachable
// are skipped — their entries die with the peer.
func (n *Network) Unshare(doc index.DocID) error {
	n.mu.RLock()
	p, ok := n.ownerOf[doc]
	n.mu.RUnlock()
	if !ok {
		return fmt.Errorf("core: document %q not shared", doc)
	}
	if err := p.unshare(doc); err != nil {
		return err
	}
	n.mu.Lock()
	delete(n.ownerOf, doc)
	for i, id := range n.docOrder {
		if id == doc {
			n.docOrder = append(n.docOrder[:i], n.docOrder[i+1:]...)
			break
		}
	}
	n.mu.Unlock()
	// Unreachable indexing peers are skipped above without an unpublish
	// message (their entries die with them), so the message handlers' bumps
	// don't cover every removal — invalidate explicitly.
	n.caches.invalidate()
	return nil
}

func (p *Peer) unshare(docID index.DocID) error {
	p.mu.Lock()
	st := p.owned[docID]
	p.mu.Unlock()
	if st == nil {
		return fmt.Errorf("core: peer %s does not own %q", p.Addr(), docID)
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	for _, term := range sortedIndexedTerms(st) {
		// Best-effort: a dead indexing peer takes its entries with it.
		if err := p.unpublishTerm(context.Background(), st, term); err != nil {
			delete(st.indexed, term)
			delete(st.since, term)
		}
	}
	p.mu.Lock()
	delete(p.owned, docID)
	p.mu.Unlock()
	return nil
}

// RefreshDoc re-publishes every current index term of a document through a
// fresh lookup. After overlay changes (node joins, failures, recoveries)
// the peer responsible for a term's key may have changed; refresh moves the
// posting to the current owner, restoring findability without replication.
// It returns the number of terms whose indexing peer changed.
func (n *Network) RefreshDoc(doc index.DocID) (int, error) {
	n.mu.RLock()
	p, ok := n.ownerOf[doc]
	n.mu.RUnlock()
	if !ok {
		return 0, fmt.Errorf("core: document %q not shared", doc)
	}
	return p.refresh(doc)
}

// RefreshAll refreshes every shared document in share order and returns the
// total number of migrated postings. It runs over a snapshot of the document
// set; documents unshared concurrently are skipped.
func (n *Network) RefreshAll() (int, error) {
	n.mu.RLock()
	docs := make([]index.DocID, len(n.docOrder))
	copy(docs, n.docOrder)
	owners := make([]*Peer, len(docs))
	for i, id := range docs {
		owners[i] = n.ownerOf[id]
	}
	n.mu.RUnlock()
	moved := 0
	if !n.exec.Parallel() {
		for i, id := range docs {
			if owners[i] == nil {
				continue
			}
			m, err := owners[i].refresh(id)
			if err != nil {
				return moved, fmt.Errorf("core: refresh %s: %w", id, err)
			}
			moved += m
		}
		return moved, nil
	}
	// Per-document refreshes are independent (each touches only its own
	// docState and publishes idempotently), so the sweep fans out; move
	// counts and the first error fold in share order.
	ms, errs := fanout.Map(context.Background(), n.exec, "refresh_doc", len(docs), func(_ context.Context, i int) (int, error) {
		if owners[i] == nil {
			return 0, nil
		}
		return owners[i].refresh(docs[i])
	})
	for i := range docs {
		if errs[i] != nil {
			return moved, fmt.Errorf("core: refresh %s: %w", docs[i], errs[i])
		}
		moved += ms[i]
	}
	return moved, nil
}

func (p *Peer) refresh(docID index.DocID) (int, error) {
	p.mu.Lock()
	st := p.owned[docID]
	p.mu.Unlock()
	if st == nil {
		return 0, fmt.Errorf("core: peer %s does not own %q", p.Addr(), docID)
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	// Per-term lookups and re-publications fan out (network I/O only); the
	// migration accounting against publishedAt folds in term order under
	// st.mu, which is held across the fan-out.
	terms := sortedIndexedTerms(st)
	outs, _ := fanout.Map(context.Background(), p.net.exec, "refresh_term", len(terms), func(_ context.Context, i int) (simnet.Addr, error) {
		term := terms[i]
		ref, _, err := p.node.Lookup(chordid.HashKey(term))
		if err != nil {
			return "", nil // no live owner for this key right now
		}
		posting := index.Posting{
			Doc:    docID,
			Owner:  string(p.Addr()),
			Freq:   st.doc.TF[term],
			DocLen: st.doc.Length,
		}
		if _, err := p.net.ring.Net().Call(p.Addr(), ref.Addr, simnet.Message{
			Type:    msgPublish,
			Payload: publishReq{Term: term, Posting: posting},
			Size:    len(term) + posting.WireSize(),
		}); err != nil {
			return "", nil
		}
		return ref.Addr, nil
	})
	moved := 0
	for i, term := range terms {
		addr := outs[i]
		if addr == "" {
			continue
		}
		// The publish is idempotent at the destination; a move is counted
		// when the responsible peer differs from the last known address.
		if last, known := st.publishedAt[term]; known && last != addr {
			moved++
		}
		if st.publishedAt == nil {
			st.publishedAt = make(map[string]simnet.Addr)
		}
		st.publishedAt[term] = addr
	}
	return moved, nil
}

func sortedIndexedTerms(st *docState) []string {
	out := make([]string, 0, len(st.indexed))
	for t := range st.indexed {
		out = append(out, t)
	}
	insertionSort(out)
	return out
}
