package corpus

import (
	"reflect"
	"testing"
)

// The stream must reproduce Synthesize's documents exactly: same IDs, same
// term vectors, same order. Anything less and the 1M-doc benchmarks measure
// a different corpus than the materialized experiments.
func TestDocStreamMatchesSynthesize(t *testing.T) {
	cfg := SynthConfig{NumDocs: 300, Seed: 5}
	col, err := Synthesize(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ds, err := NewDocStream(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range col.Corpus.Docs() {
		got, topic, ok := ds.Next()
		if !ok {
			t.Fatalf("stream ended at %d, want %d docs", i, len(col.Corpus.Docs()))
		}
		if got.ID != want.ID {
			t.Fatalf("doc %d: ID %q, want %q", i, got.ID, want.ID)
		}
		if !reflect.DeepEqual(got.TF, want.TF) || got.Length != want.Length {
			t.Fatalf("doc %q: stream TF diverges from Synthesize", got.ID)
		}
		if wantTopic := col.DocTopic[want.ID]; topic != wantTopic {
			t.Fatalf("doc %q: topic %d, want %d", got.ID, topic, wantTopic)
		}
	}
	if _, _, ok := ds.Next(); ok {
		t.Fatal("stream yielded more docs than Synthesize")
	}
	if ds.Remaining() != 0 {
		t.Fatalf("Remaining() = %d after exhaustion", ds.Remaining())
	}
}

// Sampling queries mid-stream must not perturb the document sequence (the
// query rng is separate), and the query stream itself must be deterministic.
func TestDocStreamQueriesIndependent(t *testing.T) {
	cfg := SynthConfig{NumDocs: 100, Seed: 9}
	plain, err := NewDocStream(cfg)
	if err != nil {
		t.Fatal(err)
	}
	mixed, err := NewDocStream(cfg)
	if err != nil {
		t.Fatal(err)
	}
	queryRef, err := NewDocStream(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; ; i++ {
		a, _, okA := plain.Next()
		q := mixed.SampleQuery(4)
		b, _, okB := mixed.Next()
		if okA != okB {
			t.Fatalf("streams disagree on length at %d", i)
		}
		if !okA {
			break
		}
		if !reflect.DeepEqual(a.TF, b.TF) {
			t.Fatalf("doc %d: query sampling perturbed the doc stream", i)
		}
		if len(q) != 4 {
			t.Fatalf("query %d: %d terms, want 4", i, len(q))
		}
		if want := queryRef.SampleQuery(4); !reflect.DeepEqual(q, want) {
			t.Fatalf("query %d: nondeterministic (%v vs %v)", i, q, want)
		}
	}
}

// IDs widen past doc%05d only when the corpus needs the digits.
func TestDocStreamIDWidth(t *testing.T) {
	ds, err := NewDocStream(SynthConfig{NumDocs: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	d, _, _ := ds.Next()
	if string(d.ID) != "doc00000" {
		t.Fatalf("small stream ID = %q, want doc00000", d.ID)
	}
	wide, err := NewDocStream(SynthConfig{NumDocs: 200000, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	d, _, _ = wide.Next()
	if string(d.ID) != "doc000000" {
		t.Fatalf("wide stream ID = %q, want doc000000", d.ID)
	}
}
