package corpus

import (
	"fmt"
	"math/rand"

	"github.com/spritedht/sprite/internal/index"
)

// This file is the streaming side of the synthetic collection: Synthesize
// materializes the whole corpus (documents, statistics, judged queries) in
// memory, which tops out around a few hundred thousand documents. DocStream
// yields documents one at a time from the same distributions, so million-doc
// corpora can be generated, indexed, and discarded without ever holding more
// than a batch of them — the shape the postings benchmark and corpusgen's
// large-scale mode need.

// synthGen holds the shared synthesis machinery: vocabularies and Zipf
// samplers, all deterministic functions of the configuration. It carries no
// rng — callers pass one in, so Synthesize can keep its historical single-rng
// draw order while DocStream uses its own.
type synthGen struct {
	cfg        SynthConfig
	topicVocab [][]string
	background []string
	docZipf    *zipfSampler
	bgZipf     *zipfSampler
}

func newSynthGen(cfg SynthConfig) *synthGen {
	// Vocabulary. Terms are emitted in post-pipeline (stemmed) form; names
	// are chosen to be stable under Porter stemming.
	topicVocab := make([][]string, cfg.NumTopics)
	for z := range topicVocab {
		topicVocab[z] = make([]string, cfg.VocabPerTopic)
		for i := range topicVocab[z] {
			topicVocab[z][i] = fmt.Sprintf("top%02dw%03d", z, i)
		}
	}
	background := make([]string, cfg.BackgroundVocab)
	for i := range background {
		background[i] = fmt.Sprintf("bgw%04d", i)
	}
	return &synthGen{
		cfg:        cfg,
		topicVocab: topicVocab,
		background: background,
		docZipf:    newZipfSampler(cfg.VocabPerTopic, cfg.ZipfSkew),
		bgZipf:     newZipfSampler(cfg.BackgroundVocab, cfg.ZipfSkew),
	}
}

// doc draws one document. The rng call order here is part of the package
// contract: Synthesize's output for a given seed must never change, so any
// edit that adds, removes, or reorders a draw is a breaking change.
func (g *synthGen) doc(rng *rand.Rand, id index.DocID) (*Document, int, int) {
	cfg := g.cfg
	primary := rng.Intn(cfg.NumTopics)
	secondary := -1
	if cfg.NumTopics > 1 && rng.Float64() < cfg.SecondaryProb {
		for {
			secondary = rng.Intn(cfg.NumTopics)
			if secondary != primary {
				break
			}
		}
	}
	length := cfg.DocLenMin + rng.Intn(cfg.DocLenMax-cfg.DocLenMin+1)
	tf := make(map[string]int)
	for tok := 0; tok < length; tok++ {
		r := rng.Float64()
		switch {
		case r < cfg.TopicTermProb:
			tf[g.topicVocab[primary][g.docZipf.sample(rng)]]++
		case secondary >= 0 && r < cfg.TopicTermProb+cfg.SecondaryTermProb:
			tf[g.topicVocab[secondary][g.docZipf.sample(rng)]]++
		default:
			tf[g.background[g.bgZipf.sample(rng)]]++
		}
	}
	return NewDocument(id, tf), primary, secondary
}

// DocStream yields a synthetic collection's documents one at a time. The
// stream is deterministic in the configuration (including Seed) and draws
// from exactly the distributions Synthesize uses; it skips corpus statistics
// and relevance judgments, which is what makes it constant-memory.
type DocStream struct {
	gen      *synthGen
	rng      *rand.Rand
	qrng     *rand.Rand
	qzipf    *zipfSampler
	idFormat string
	next     int
}

// NewDocStream validates cfg (after defaults) and returns a stream over
// cfg.NumDocs documents. Doc IDs use the historical doc%05d form, widened
// only when NumDocs needs more digits, so small streams name documents
// exactly as Synthesize does.
func NewDocStream(cfg SynthConfig) (*DocStream, error) {
	cfg = cfg.FillDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	digits := len(fmt.Sprint(cfg.NumDocs - 1))
	if digits < 5 {
		digits = 5
	}
	return &DocStream{
		gen:      newSynthGen(cfg),
		rng:      rand.New(rand.NewSource(cfg.Seed)),
		qrng:     rand.New(rand.NewSource(cfg.Seed ^ 0x51ec0de)),
		qzipf:    newZipfSampler(cfg.VocabPerTopic, cfg.QueryZipfSkew),
		idFormat: fmt.Sprintf("doc%%0%dd", digits),
		next:     0,
	}, nil
}

// Remaining returns how many documents the stream has yet to yield.
func (s *DocStream) Remaining() int { return s.gen.cfg.NumDocs - s.next }

// Next yields the next document and its primary topic, or false when
// cfg.NumDocs documents have been produced.
func (s *DocStream) Next() (*Document, int, bool) {
	if s.next >= s.gen.cfg.NumDocs {
		return nil, 0, false
	}
	id := index.DocID(fmt.Sprintf(s.idFormat, s.next))
	s.next++
	doc, primary, _ := s.gen.doc(s.rng, id)
	return doc, primary, true
}

// SampleQuery draws a query of qlen distinct terms from one topic's
// vocabulary under the flatter query-Zipf skew — the topical, repetitive
// query shape the SPRITE evaluation assumes (§5). It uses a query-only rng,
// so interleaving queries with Next never perturbs the document stream.
func (s *DocStream) SampleQuery(qlen int) []string {
	cfg := s.gen.cfg
	z := s.qrng.Intn(cfg.NumTopics)
	if qlen > cfg.VocabPerTopic {
		qlen = cfg.VocabPerTopic
	}
	seen := make(map[string]bool, qlen)
	terms := make([]string, 0, qlen)
	for len(terms) < qlen {
		t := s.gen.topicVocab[z][s.qzipf.sample(s.qrng)]
		if !seen[t] {
			seen[t] = true
			terms = append(terms, t)
		}
	}
	return terms
}
