package corpus

import (
	"bytes"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"github.com/spritedht/sprite/internal/text"
)

func TestNewDocument(t *testing.T) {
	d := NewDocument("d1", map[string]int{"alpha": 3, "beta": 2})
	if d.Length != 5 {
		t.Fatalf("Length = %d, want 5", d.Length)
	}
	if !d.Contains("alpha") || d.Contains("gamma") {
		t.Fatal("Contains misbehaved")
	}
}

func TestNewDocumentFromText(t *testing.T) {
	var a text.Analyzer
	d := NewDocumentFromText(a, "d1", "The databases are indexing. Databases!")
	if d.TF["databa"] != 2 {
		t.Fatalf("TF = %v", d.TF)
	}
	if d.Length != 3 { // databa, index, databa
		t.Fatalf("Length = %d, want 3", d.Length)
	}
}

func TestTopTermsDeterministic(t *testing.T) {
	d := NewDocument("d1", map[string]int{"b": 2, "a": 2, "c": 5, "z": 1})
	got := d.TopTerms(3)
	want := []string{"c", "a", "b"} // frequency desc, alpha tiebreak
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("TopTerms = %v, want %v", got, want)
	}
	if got := d.TopTerms(10); len(got) != 4 {
		t.Fatalf("TopTerms beyond vocab = %v", got)
	}
}

func TestQueryHelpers(t *testing.T) {
	q := &Query{ID: "q", Terms: []string{"b", "a"}}
	if !q.HasTerm("a") || q.HasTerm("z") {
		t.Fatal("HasTerm misbehaved")
	}
	if q.Key() != "a b" {
		t.Fatalf("Key = %q, want %q", q.Key(), "a b")
	}
	// Key must not mutate the original term order.
	if q.Terms[0] != "b" {
		t.Fatal("Key mutated Terms")
	}
}

func TestCorpusStats(t *testing.T) {
	c := MustNew([]*Document{
		NewDocument("d1", map[string]int{"x": 3, "y": 1}),
		NewDocument("d2", map[string]int{"x": 2, "z": 4}),
	})
	if c.N() != 2 {
		t.Fatalf("N = %d", c.N())
	}
	if c.DocFreq("x") != 2 || c.DocFreq("y") != 1 || c.DocFreq("absent") != 0 {
		t.Fatal("DocFreq wrong")
	}
	if c.TotalFreq("x") != 5 {
		t.Fatalf("TotalFreq(x) = %d, want 5", c.TotalFreq("x"))
	}
	if c.Distribution("x") != 10 { // Freq 5 × Num 2
		t.Fatalf("Distribution(x) = %d, want 10", c.Distribution("x"))
	}
	if d, ok := c.Doc("d1"); !ok || d.ID != "d1" {
		t.Fatal("Doc lookup failed")
	}
}

func TestNewRejectsDuplicateIDs(t *testing.T) {
	_, err := New([]*Document{
		NewDocument("dup", map[string]int{"a": 1}),
		NewDocument("dup", map[string]int{"b": 1}),
	})
	if err == nil {
		t.Fatal("duplicate IDs accepted")
	}
}

func TestSimilarTerms(t *testing.T) {
	// Distributions: a=1·1=1, b=2·1=2, c=3·1=3, d=10·1=10, e=11·1=11.
	c := MustNew([]*Document{
		NewDocument("d1", map[string]int{"a": 1, "b": 2, "c": 3, "d": 10, "e": 11}),
	})
	got := c.SimilarTerms("c", 2)
	want := []string{"b", "a"} // |2-3|=1, |1-3|=2 beat |10-3|=7
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("SimilarTerms(c,2) = %v, want %v", got, want)
	}
	// Never returns the probe term itself.
	for _, s := range c.SimilarTerms("d", 4) {
		if s == "d" {
			t.Fatal("SimilarTerms returned the probe term")
		}
	}
	// Request larger than vocabulary.
	if got := c.SimilarTerms("a", 100); len(got) != 4 {
		t.Fatalf("SimilarTerms overcount = %v", got)
	}
	if got := c.SimilarTerms("a", 0); got != nil {
		t.Fatalf("SimilarTerms(s=0) = %v, want nil", got)
	}
}

func TestSimilarTermsUnknownTerm(t *testing.T) {
	c := MustNew([]*Document{NewDocument("d1", map[string]int{"a": 1, "b": 5})})
	// Unknown term has Distribution 0; nearest neighbours are still returned.
	got := c.SimilarTerms("zzz", 1)
	if len(got) != 1 || got[0] != "a" {
		t.Fatalf("SimilarTerms(zzz) = %v, want [a]", got)
	}
}

func smallSynth(t *testing.T, seed int64) *Collection {
	t.Helper()
	col, err := Synthesize(SynthConfig{
		NumDocs: 200, NumTopics: 4, VocabPerTopic: 60, BackgroundVocab: 200,
		DocLenMin: 50, DocLenMax: 120, NumQueries: 12, Seed: seed,
	})
	if err != nil {
		t.Fatalf("Synthesize: %v", err)
	}
	return col
}

func TestSynthesizeShape(t *testing.T) {
	col := smallSynth(t, 1)
	if col.Corpus.N() != 200 {
		t.Fatalf("N = %d", col.Corpus.N())
	}
	if len(col.Queries) != 12 {
		t.Fatalf("queries = %d", len(col.Queries))
	}
	for _, q := range col.Queries {
		if len(q.Terms) < 3 || len(q.Terms) > 6 {
			t.Fatalf("query %s has %d terms", q.ID, len(q.Terms))
		}
		seen := map[string]bool{}
		for _, term := range q.Terms {
			if seen[term] {
				t.Fatalf("query %s repeats term %s", q.ID, term)
			}
			seen[term] = true
		}
	}
	for id := range col.DocTopic {
		if _, ok := col.Corpus.Doc(id); !ok {
			t.Fatalf("DocTopic references unknown doc %s", id)
		}
	}
}

func TestSynthesizeDeterministic(t *testing.T) {
	a, b := smallSynth(t, 7), smallSynth(t, 7)
	if a.Corpus.N() != b.Corpus.N() {
		t.Fatal("corpus size differs across runs")
	}
	for i, d := range a.Corpus.Docs() {
		bd := b.Corpus.Docs()[i]
		if !reflect.DeepEqual(d.TF, bd.TF) {
			t.Fatalf("doc %d differs across identical seeds", i)
		}
	}
	for i := range a.Queries {
		if !reflect.DeepEqual(a.Queries[i].Terms, b.Queries[i].Terms) {
			t.Fatalf("query %d differs across identical seeds", i)
		}
		if !reflect.DeepEqual(a.Queries[i].Relevant, b.Queries[i].Relevant) {
			t.Fatalf("judgments for query %d differ across identical seeds", i)
		}
	}
}

func TestSynthesizeSeedsDiffer(t *testing.T) {
	a, b := smallSynth(t, 1), smallSynth(t, 2)
	same := true
	for i, d := range a.Corpus.Docs() {
		if !reflect.DeepEqual(d.TF, b.Corpus.Docs()[i].TF) {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical corpora")
	}
}

func TestSynthesizeQueriesHaveRelevantDocs(t *testing.T) {
	col := smallSynth(t, 3)
	for _, q := range col.Queries {
		if len(q.Relevant) == 0 {
			t.Errorf("query %s has no relevant documents", q.ID)
		}
		// Relevant docs must share the query's topic.
		z := col.QueryTopic[q.ID]
		for d := range q.Relevant {
			if col.DocTopic[d] != z {
				t.Errorf("query %s (topic %d) judged doc %s (topic %d) relevant",
					q.ID, z, d, col.DocTopic[d])
			}
		}
	}
}

func TestSynthesizeZipfSkew(t *testing.T) {
	col := smallSynth(t, 4)
	c := col.Corpus
	// The most common term should be far more frequent than the median term
	// — the hallmark of a Zipf distribution.
	terms := c.Terms()
	maxFreq, sum := 0, 0
	for _, term := range terms {
		f := c.TotalFreq(term)
		sum += f
		if f > maxFreq {
			maxFreq = f
		}
	}
	mean := sum / len(terms)
	if maxFreq < 5*mean {
		t.Fatalf("term distribution not skewed: max %d vs mean %d", maxFreq, mean)
	}
}

func TestSynthesizeValidation(t *testing.T) {
	bad := []SynthConfig{
		{NumDocs: -1},
		{NumDocs: 10, NumTopics: -2},
		{NumDocs: 10, DocLenMin: 100, DocLenMax: 5},
		{NumDocs: 10, QueryLenMin: 8, QueryLenMax: 4},
		{NumDocs: 10, VocabPerTopic: 3, QueryLenMax: 6},
		{NumDocs: 10, TopicTermProb: 1.5},
	}
	for i, cfg := range bad {
		if _, err := Synthesize(cfg); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
}

func TestZipfSamplerBiasedToLowRanks(t *testing.T) {
	z := newZipfSampler(100, 1.0)
	counts := make([]int, 100)
	rng := newTestRNG()
	for i := 0; i < 20000; i++ {
		counts[z.sample(rng)]++
	}
	if counts[0] <= counts[50] {
		t.Fatalf("rank 0 (%d draws) not favored over rank 50 (%d draws)", counts[0], counts[50])
	}
	if counts[0] <= counts[10] {
		t.Fatalf("rank 0 (%d draws) not favored over rank 10 (%d draws)", counts[0], counts[10])
	}
}

func TestZipfSamplerCoversRange(t *testing.T) {
	z := newZipfSampler(5, 0.5)
	rng := newTestRNG()
	seen := map[int]bool{}
	for i := 0; i < 5000; i++ {
		v := z.sample(rng)
		if v < 0 || v >= 5 {
			t.Fatalf("sample out of range: %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 5 {
		t.Fatalf("sampler never produced some ranks: %v", seen)
	}
}

func newTestRNG() *rand.Rand { return rand.New(rand.NewSource(99)) }

func TestCollectionJSONRoundTrip(t *testing.T) {
	col := smallSynth(t, 9)
	var buf bytes.Buffer
	if err := WriteCollection(&buf, col, SynthConfig{}, false); err != nil {
		t.Fatalf("WriteCollection: %v", err)
	}
	got, err := ReadCollection(&buf)
	if err != nil {
		t.Fatalf("ReadCollection: %v", err)
	}
	if got.Corpus.N() != col.Corpus.N() {
		t.Fatalf("doc count %d != %d", got.Corpus.N(), col.Corpus.N())
	}
	for i, d := range col.Corpus.Docs() {
		gd := got.Corpus.Docs()[i]
		if gd.ID != d.ID || gd.Length != d.Length || !reflect.DeepEqual(gd.TF, d.TF) {
			t.Fatalf("doc %d mismatch after round trip", i)
		}
		if got.DocTopic[d.ID] != col.DocTopic[d.ID] {
			t.Fatalf("doc %s topic mismatch", d.ID)
		}
	}
	if len(got.Queries) != len(col.Queries) {
		t.Fatalf("query count %d != %d", len(got.Queries), len(col.Queries))
	}
	for i, q := range col.Queries {
		gq := got.Queries[i]
		if gq.ID != q.ID || !reflect.DeepEqual(gq.Terms, q.Terms) || !reflect.DeepEqual(gq.Relevant, q.Relevant) {
			t.Fatalf("query %s mismatch after round trip", q.ID)
		}
		if got.QueryTopic[q.ID] != col.QueryTopic[q.ID] {
			t.Fatalf("query %s topic mismatch", q.ID)
		}
	}
	// Global statistics must be identical too.
	for _, term := range col.Corpus.Terms()[:10] {
		if got.Corpus.Distribution(term) != col.Corpus.Distribution(term) {
			t.Fatalf("Distribution(%s) differs after round trip", term)
		}
	}
}

func TestReadCollectionValidation(t *testing.T) {
	bad := []string{
		`{`,                                      // malformed
		`{"documents":[]}`,                       // no docs
		`{"documents":[{"id":"","tf":{"a":1}}]}`, // empty id
		`{"documents":[{"id":"d","tf":{}}]}`,     // no terms
		`{"documents":[{"id":"d","tf":{"a":1}},{"id":"d","tf":{"b":1}}]}`,                                   // dup id
		`{"documents":[{"id":"d","tf":{"a":1}}],"queries":[{"id":"","terms":["a"]}]}`,                       // empty query id
		`{"documents":[{"id":"d","tf":{"a":1}}],"queries":[{"id":"q","terms":[]}]}`,                         // no terms
		`{"documents":[{"id":"d","tf":{"a":1}}],"queries":[{"id":"q","terms":["a"],"relevant":["ghost"]}]}`, // unknown doc
	}
	for i, s := range bad {
		if _, err := ReadCollection(strings.NewReader(s)); err == nil {
			t.Errorf("bad input %d accepted", i)
		}
	}
}

func TestReadCollectionMinimalValid(t *testing.T) {
	in := `{"documents":[{"id":"d1","topic":2,"tf":{"alpha":3,"beta":1}}],
	        "queries":[{"id":"q1","topic":2,"terms":["alpha"],"relevant":["d1"]}]}`
	col, err := ReadCollection(strings.NewReader(in))
	if err != nil {
		t.Fatalf("ReadCollection: %v", err)
	}
	d, ok := col.Corpus.Doc("d1")
	if !ok || d.Length != 4 {
		t.Fatalf("doc not reconstructed: %+v", d)
	}
	if col.DocTopic["d1"] != 2 || col.QueryTopic["q1"] != 2 {
		t.Fatal("topics lost")
	}
	if !col.Queries[0].Relevant["d1"] {
		t.Fatal("judgments lost")
	}
}
