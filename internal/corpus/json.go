package corpus

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"github.com/spritedht/sprite/internal/index"
)

// This file defines the on-disk JSON format for judged collections, so
// experiments can run against externally supplied corpora (real datasets
// preprocessed elsewhere) as well as synthesized ones, and so synthesized
// collections can be inspected and versioned. cmd/corpusgen emits this
// format; ReadCollection consumes it.

// collectionJSON is the serialized layout.
type collectionJSON struct {
	Config    SynthConfig `json:"config,omitempty"`
	Documents []docJSON   `json:"documents"`
	Queries   []queryJSON `json:"queries"`
}

type docJSON struct {
	ID     string         `json:"id"`
	Topic  int            `json:"topic"`
	Length int            `json:"length"`
	TF     map[string]int `json:"tf"`
}

type queryJSON struct {
	ID       string   `json:"id"`
	Topic    int      `json:"topic"`
	Origin   string   `json:"origin,omitempty"`
	Terms    []string `json:"terms"`
	Relevant []string `json:"relevant"`
}

// WriteCollection serializes a collection (and optionally the generator
// config that produced it) as JSON. Pass pretty=true for indented output.
func WriteCollection(w io.Writer, col *Collection, cfg SynthConfig, pretty bool) error {
	out := collectionJSON{Config: cfg}
	for _, d := range col.Corpus.Docs() {
		out.Documents = append(out.Documents, docJSON{
			ID:     string(d.ID),
			Topic:  col.DocTopic[d.ID],
			Length: d.Length,
			TF:     d.TF,
		})
	}
	for _, q := range col.Queries {
		jq := queryJSON{ID: q.ID, Topic: col.QueryTopic[q.ID], Terms: q.Terms}
		for id := range q.Relevant {
			jq.Relevant = append(jq.Relevant, string(id))
		}
		sort.Strings(jq.Relevant)
		out.Queries = append(out.Queries, jq)
	}
	enc := json.NewEncoder(w)
	if pretty {
		enc.SetIndent("", "  ")
	}
	if err := enc.Encode(out); err != nil {
		return fmt.Errorf("corpus: write collection: %w", err)
	}
	return nil
}

// ReadCollection parses a collection previously written by WriteCollection
// (or hand-authored in the same format). Documents must have non-empty IDs
// and term maps; queries must reference existing documents in their
// judgments.
func ReadCollection(r io.Reader) (*Collection, error) {
	var in collectionJSON
	dec := json.NewDecoder(r)
	if err := dec.Decode(&in); err != nil {
		return nil, fmt.Errorf("corpus: read collection: %w", err)
	}
	if len(in.Documents) == 0 {
		return nil, fmt.Errorf("corpus: read collection: no documents")
	}
	docs := make([]*Document, 0, len(in.Documents))
	docTopic := make(map[index.DocID]int, len(in.Documents))
	for i, jd := range in.Documents {
		if jd.ID == "" {
			return nil, fmt.Errorf("corpus: read collection: document %d has empty id", i)
		}
		if len(jd.TF) == 0 {
			return nil, fmt.Errorf("corpus: read collection: document %q has no terms", jd.ID)
		}
		d := NewDocument(index.DocID(jd.ID), jd.TF)
		docs = append(docs, d)
		docTopic[d.ID] = jd.Topic
	}
	c, err := New(docs)
	if err != nil {
		return nil, fmt.Errorf("corpus: read collection: %w", err)
	}

	col := &Collection{
		Corpus:     c,
		DocTopic:   docTopic,
		QueryTopic: make(map[string]int, len(in.Queries)),
	}
	for i, jq := range in.Queries {
		if jq.ID == "" {
			return nil, fmt.Errorf("corpus: read collection: query %d has empty id", i)
		}
		if len(jq.Terms) == 0 {
			return nil, fmt.Errorf("corpus: read collection: query %q has no terms", jq.ID)
		}
		q := &Query{ID: jq.ID, Terms: jq.Terms, Relevant: make(map[index.DocID]bool, len(jq.Relevant))}
		for _, id := range jq.Relevant {
			if _, ok := c.Doc(index.DocID(id)); !ok {
				return nil, fmt.Errorf("corpus: read collection: query %q judges unknown document %q", jq.ID, id)
			}
			q.Relevant[index.DocID(id)] = true
		}
		col.Queries = append(col.Queries, q)
		col.QueryTopic[q.ID] = jq.Topic
	}
	return col, nil
}
