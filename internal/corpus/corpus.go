// Package corpus models document collections and query sets. It supplies the
// two things the SPRITE evaluation needs (§6.1): a corpus with global term
// statistics — including the Distribution(t) = Freq(t)·Num(t) metric the
// query generator uses to find "equally important" replacement terms — and a
// synthetic TREC9-like collection generator standing in for the OHSUMED data
// the paper used (see DESIGN.md, substitution 1).
package corpus

import (
	"fmt"
	"sort"

	"github.com/spritedht/sprite/internal/index"
	"github.com/spritedht/sprite/internal/text"
)

// Document is one shared document, already preprocessed: TF maps each
// (stopped, stemmed) term to its frequency and Length is the total token
// count after preprocessing.
type Document struct {
	ID     index.DocID
	TF     map[string]int
	Length int
}

// NewDocument builds a document directly from a term-frequency map.
func NewDocument(id index.DocID, tf map[string]int) *Document {
	length := 0
	for _, f := range tf {
		length += f
	}
	return &Document{ID: id, TF: tf, Length: length}
}

// NewDocumentFromText runs the analyzer pipeline over raw text.
func NewDocumentFromText(a text.Analyzer, id index.DocID, raw string) *Document {
	tf, length := a.TermFreq(raw)
	return &Document{ID: id, TF: tf, Length: length}
}

// Contains reports whether the document contains term.
func (d *Document) Contains(term string) bool { return d.TF[term] > 0 }

// Terms returns the document's distinct terms in sorted order.
func (d *Document) Terms() []string {
	out := make([]string, 0, len(d.TF))
	for t := range d.TF {
		out = append(out, t)
	}
	sort.Strings(out)
	return out
}

// TopTerms returns the k most frequent terms, ties broken alphabetically so
// selection is deterministic — this is the paper's initial term selection
// (§5.2) and eSearch's static selection.
func (d *Document) TopTerms(k int) []string {
	terms := d.Terms()
	sort.SliceStable(terms, func(i, j int) bool {
		fi, fj := d.TF[terms[i]], d.TF[terms[j]]
		if fi != fj {
			return fi > fj
		}
		return terms[i] < terms[j]
	})
	if k > len(terms) {
		k = len(terms)
	}
	return terms[:k]
}

// Query is a keyword query together with its relevance judgments (when
// known). Relevant plays the role of the expert-identified relevant document
// sets that ship with TREC collections.
type Query struct {
	ID       string
	Terms    []string
	Relevant map[index.DocID]bool
}

// HasTerm reports whether the query contains term.
func (q *Query) HasTerm(term string) bool {
	for _, t := range q.Terms {
		if t == term {
			return true
		}
	}
	return false
}

// Key returns a canonical string form of the query's keyword set, usable for
// hashing and deduplication: sorted terms joined by spaces.
func (q *Query) Key() string {
	terms := append([]string(nil), q.Terms...)
	sort.Strings(terms)
	key := ""
	for i, t := range terms {
		if i > 0 {
			key += " "
		}
		key += t
	}
	return key
}

// Corpus is a document collection with precomputed global statistics.
type Corpus struct {
	docs []*Document
	byID map[index.DocID]*Document

	freq map[string]int // Freq(t): total occurrences of t across the corpus
	num  map[string]int // Num(t): number of documents containing t

	// byDist caches the term list sorted by Distribution for SimilarTerms.
	byDist []string
}

// New builds a corpus and computes its global statistics. Duplicate document
// IDs are rejected — they would silently merge relevance judgments.
func New(docs []*Document) (*Corpus, error) {
	c := &Corpus{
		docs: docs,
		byID: make(map[index.DocID]*Document, len(docs)),
		freq: make(map[string]int),
		num:  make(map[string]int),
	}
	for _, d := range docs {
		if _, dup := c.byID[d.ID]; dup {
			return nil, fmt.Errorf("corpus: duplicate document id %q", d.ID)
		}
		c.byID[d.ID] = d
		for t, f := range d.TF {
			c.freq[t] += f
			c.num[t]++
		}
	}
	c.byDist = make([]string, 0, len(c.freq))
	for t := range c.freq {
		c.byDist = append(c.byDist, t)
	}
	sort.Slice(c.byDist, func(i, j int) bool {
		di, dj := c.distribution(c.byDist[i]), c.distribution(c.byDist[j])
		if di != dj {
			return di < dj
		}
		return c.byDist[i] < c.byDist[j]
	})
	return c, nil
}

// MustNew is New for statically known-good inputs (tests, generators).
func MustNew(docs []*Document) *Corpus {
	c, err := New(docs)
	if err != nil {
		panic(err)
	}
	return c
}

// N returns the number of documents.
func (c *Corpus) N() int { return len(c.docs) }

// Docs returns the documents in insertion order. The slice is shared; do not
// mutate.
func (c *Corpus) Docs() []*Document { return c.docs }

// Doc returns the document with the given ID.
func (c *Corpus) Doc(id index.DocID) (*Document, bool) {
	d, ok := c.byID[id]
	return d, ok
}

// DocFreq returns Num(t), the number of documents containing term — the
// exact document frequency a centralized system has (§6).
func (c *Corpus) DocFreq(term string) int { return c.num[term] }

// TotalFreq returns Freq(t), the total occurrences of term in the corpus.
func (c *Corpus) TotalFreq(term string) int { return c.freq[term] }

// Distribution returns the paper's corpus-importance metric
// Distribution(t) = Freq(t) × Num(t) (§6.1 Phase 1).
func (c *Corpus) Distribution(term string) int64 { return c.distribution(term) }

func (c *Corpus) distribution(term string) int64 {
	return int64(c.freq[term]) * int64(c.num[term])
}

// Terms returns every distinct term in the corpus, ordered by ascending
// Distribution (the order SimilarTerms exploits). The slice is shared; do
// not mutate.
func (c *Corpus) Terms() []string { return c.byDist }

// SimilarTerms returns the s terms whose Distribution is closest to that of
// term, excluding term itself — the paper's replacement-term pool ("we find
// the top S similar terms and choose one of them randomly", §6.1). Ties are
// resolved deterministically. If the corpus has fewer than s other terms,
// all of them are returned.
func (c *Corpus) SimilarTerms(term string, s int) []string {
	if s <= 0 || len(c.byDist) == 0 {
		return nil
	}
	target := c.distribution(term)
	// Locate the insertion point of target in the Distribution-sorted list.
	i := sort.Search(len(c.byDist), func(i int) bool {
		return c.distribution(c.byDist[i]) >= target
	})
	// Expand outward taking whichever neighbor is closer.
	lo, hi := i-1, i
	out := make([]string, 0, s)
	absDiff := func(a, b int64) int64 {
		if a > b {
			return a - b
		}
		return b - a
	}
	for len(out) < s && (lo >= 0 || hi < len(c.byDist)) {
		var pick int
		switch {
		case lo < 0:
			pick = hi
			hi++
		case hi >= len(c.byDist):
			pick = lo
			lo--
		default:
			dLo := absDiff(c.distribution(c.byDist[lo]), target)
			dHi := absDiff(c.distribution(c.byDist[hi]), target)
			if dLo <= dHi {
				pick = lo
				lo--
			} else {
				pick = hi
				hi++
			}
		}
		if c.byDist[pick] == term {
			continue
		}
		out = append(out, c.byDist[pick])
	}
	return out
}
