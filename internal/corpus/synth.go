package corpus

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"github.com/spritedht/sprite/internal/index"
)

// SynthConfig parameterizes the synthetic TREC9-like collection. The
// defaults (see FillDefaults) produce a laptop-scale corpus with the
// statistical properties the SPRITE evaluation relies on: Zipf-skewed term
// frequencies, topical locality between queries and their relevant
// documents, and expert-style relevance judgments that are correlated with —
// but not identical to — TF·IDF rankings.
type SynthConfig struct {
	NumDocs   int // documents in the corpus (paper: 348,565; default 2000)
	NumTopics int // latent topics (default 12)

	VocabPerTopic   int // topic-specific vocabulary size (default 200)
	BackgroundVocab int // shared vocabulary size (default 900)

	DocLenMin, DocLenMax int // tokens per document after preprocessing

	TopicTermProb     float64 // fraction of tokens drawn from the primary topic
	SecondaryProb     float64 // probability a document mixes in a second topic
	SecondaryTermProb float64 // fraction of tokens from the secondary topic, when present

	ZipfSkew      float64 // Zipf exponent for document token draws (default 0.7)
	QueryZipfSkew float64 // flatter exponent for query term draws (default 0.5)

	NumQueries           int  // "original" queries with judgments (paper: 63)
	QueryLenMin          int  // terms per original query (default 3)
	QueryLenMax          int  // (default 6)
	RelevanceMinMatch    int  // query terms a doc must contain to be judged relevant (default 2)
	RelevanceTopicBounce bool // if true, docs with the query's topic as secondary also qualify
	// PoolDepth mirrors TREC pooling: assessors only judge documents that
	// surface in the top results of real retrieval runs, so a document is
	// eligible for a relevance judgment only if a full-knowledge TF·IDF
	// ranking places it within the top PoolDepth for the query. Default 100;
	// set negative to disable pooling entirely.
	PoolDepth int
	Seed      int64 // RNG seed; same seed → identical collection
}

// FillDefaults replaces zero fields with the documented defaults and returns
// the result.
func (c SynthConfig) FillDefaults() SynthConfig {
	def := func(v *int, d int) {
		if *v == 0 {
			*v = d
		}
	}
	deff := func(v *float64, d float64) {
		if *v == 0 {
			*v = d
		}
	}
	def(&c.NumDocs, 2000)
	def(&c.NumTopics, 12)
	def(&c.VocabPerTopic, 200)
	def(&c.BackgroundVocab, 900)
	def(&c.DocLenMin, 80)
	def(&c.DocLenMax, 180)
	deff(&c.TopicTermProb, 0.65)
	deff(&c.SecondaryProb, 0.30)
	deff(&c.SecondaryTermProb, 0.18)
	deff(&c.ZipfSkew, 0.7)
	deff(&c.QueryZipfSkew, 0.5)
	def(&c.NumQueries, 63)
	def(&c.QueryLenMin, 3)
	def(&c.QueryLenMax, 6)
	def(&c.RelevanceMinMatch, 2)
	def(&c.PoolDepth, 100)
	return c
}

// Validate rejects configurations that cannot produce a well-formed
// collection.
func (c SynthConfig) Validate() error {
	switch {
	case c.NumDocs < 1:
		return fmt.Errorf("corpus: NumDocs = %d, need >= 1", c.NumDocs)
	case c.NumTopics < 1:
		return fmt.Errorf("corpus: NumTopics = %d, need >= 1", c.NumTopics)
	case c.VocabPerTopic < c.QueryLenMax:
		return fmt.Errorf("corpus: VocabPerTopic = %d smaller than QueryLenMax = %d", c.VocabPerTopic, c.QueryLenMax)
	case c.DocLenMin < 1 || c.DocLenMax < c.DocLenMin:
		return fmt.Errorf("corpus: bad doc length range [%d,%d]", c.DocLenMin, c.DocLenMax)
	case c.QueryLenMin < 1 || c.QueryLenMax < c.QueryLenMin:
		return fmt.Errorf("corpus: bad query length range [%d,%d]", c.QueryLenMin, c.QueryLenMax)
	case c.TopicTermProb < 0 || c.TopicTermProb > 1:
		return fmt.Errorf("corpus: TopicTermProb = %v out of [0,1]", c.TopicTermProb)
	}
	return nil
}

// Collection is the output of Synthesize: a corpus plus the original query
// set with relevance judgments, mirroring "the TREC9 dataset and its
// queries" (§6.1).
type Collection struct {
	Corpus  *Corpus
	Queries []*Query
	// Topic assignment per document, exported so experiments and tests can
	// inspect the latent structure (e.g. to group queries for the Fig. 4(c)
	// pattern-change scenario).
	DocTopic map[index.DocID]int
	// QueryTopic records each original query's latent topic.
	QueryTopic map[string]int
}

// Synthesize generates a document collection and judged query set. It is
// deterministic in cfg.Seed.
func Synthesize(cfg SynthConfig) (*Collection, error) {
	cfg = cfg.FillDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	gen := newSynthGen(cfg)
	queryZipf := newZipfSampler(cfg.VocabPerTopic, cfg.QueryZipfSkew)

	// Documents.
	docs := make([]*Document, cfg.NumDocs)
	docTopic := make(map[index.DocID]int, cfg.NumDocs)
	docSecondary := make(map[index.DocID]int, cfg.NumDocs)
	for i := range docs {
		id := index.DocID(fmt.Sprintf("doc%05d", i))
		doc, primary, secondary := gen.doc(rng, id)
		docs[i] = doc
		docTopic[id] = primary
		docSecondary[id] = secondary
	}
	topicVocab := gen.topicVocab

	c, err := New(docs)
	if err != nil {
		return nil, err
	}

	// Group documents by primary topic for seed-document selection.
	byTopic := make([][]*Document, cfg.NumTopics)
	for _, d := range docs {
		z := docTopic[d.ID]
		byTopic[z] = append(byTopic[z], d)
	}

	// Original queries. Real judged queries (TREC/OHSUMED) are authored to
	// retrieve particular documents, so their keywords are *salient in the
	// relevant documents* without necessarily being those documents' most
	// frequent terms. We reproduce that: each query picks a seed document of
	// its topic and samples keywords from the seed's topic-term distribution,
	// weighted by within-document frequency.
	queries := make([]*Query, 0, cfg.NumQueries)
	queryTopic := make(map[string]int, cfg.NumQueries)
	for qi := 0; qi < cfg.NumQueries; qi++ {
		z := qi % cfg.NumTopics // spread queries across topics
		qlen := cfg.QueryLenMin + rng.Intn(cfg.QueryLenMax-cfg.QueryLenMin+1)
		var terms []string
		if seeds := byTopic[z]; len(seeds) > 0 {
			seed := seeds[rng.Intn(len(seeds))]
			terms = sampleSeedTerms(seed, topicPrefix(z), qlen, rng)
		}
		// Top up from the topic vocabulary if the seed was too small.
		seen := make(map[string]bool, qlen)
		for _, t := range terms {
			seen[t] = true
		}
		for len(terms) < qlen {
			t := topicVocab[z][queryZipf.sample(rng)]
			if !seen[t] {
				seen[t] = true
				terms = append(terms, t)
			}
		}
		q := &Query{
			ID:       fmt.Sprintf("orig%03d", qi),
			Terms:    terms,
			Relevant: make(map[index.DocID]bool),
		}
		minMatch := cfg.RelevanceMinMatch
		if minMatch > len(terms) {
			minMatch = len(terms)
		}
		pool := judgmentPool(c, terms, cfg.PoolDepth)
		for _, d := range docs {
			if pool != nil && !pool[d.ID] {
				continue
			}
			onTopic := docTopic[d.ID] == z ||
				(cfg.RelevanceTopicBounce && docSecondary[d.ID] == z)
			if !onTopic {
				continue
			}
			match := 0
			for _, t := range terms {
				if d.Contains(t) {
					match++
				}
			}
			if match >= minMatch {
				q.Relevant[d.ID] = true
			}
		}
		queries = append(queries, q)
		queryTopic[q.ID] = z
	}

	return &Collection{
		Corpus:     c,
		Queries:    queries,
		DocTopic:   docTopic,
		QueryTopic: queryTopic,
	}, nil
}

// topicPrefix returns the term-name prefix of topic z's vocabulary.
func topicPrefix(z int) string { return fmt.Sprintf("top%02dw", z) }

// sampleSeedTerms draws up to n distinct topic terms from the seed
// document's term distribution, weighted by within-document frequency. Only
// terms of the given topic (by vocabulary prefix) are eligible, so queries
// stay topically coherent.
func sampleSeedTerms(seed *Document, prefix string, n int, rng *rand.Rand) []string {
	type wt struct {
		term string
		freq int
	}
	var pool []wt
	total := 0
	for t, f := range seed.TF {
		if len(t) >= len(prefix) && t[:len(prefix)] == prefix {
			pool = append(pool, wt{t, f})
			total += f
		}
	}
	sort.Slice(pool, func(i, j int) bool { return pool[i].term < pool[j].term })
	var out []string
	for len(out) < n && len(pool) > 0 && total > 0 {
		x := rng.Intn(total)
		pick := -1
		for i, w := range pool {
			x -= w.freq
			if x < 0 {
				pick = i
				break
			}
		}
		if pick < 0 {
			pick = len(pool) - 1
		}
		out = append(out, pool[pick].term)
		total -= pool[pick].freq
		pool = append(pool[:pick], pool[pick+1:]...)
	}
	return out
}

// judgmentPool returns the set of documents a TREC-style assessor would see
// for the query: the top depth documents of a full-knowledge TF·IDF ranking
// over the corpus. A nil return means pooling is disabled (depth < 0) and
// every document is eligible for judgment.
func judgmentPool(c *Corpus, terms []string, depth int) map[index.DocID]bool {
	if depth < 0 {
		return nil
	}
	n := c.N()
	type scored struct {
		id    index.DocID
		score float64
	}
	acc := make(map[index.DocID]float64)
	for _, t := range terms {
		df := c.DocFreq(t)
		if df == 0 {
			continue
		}
		idf := math.Log(float64(n) / float64(df))
		wq := idf / float64(len(terms))
		for _, d := range c.Docs() {
			if f := d.TF[t]; f > 0 && d.Length > 0 {
				acc[d.ID] += wq * (float64(f) / float64(d.Length)) * idf
			}
		}
	}
	list := make([]scored, 0, len(acc))
	for id, dot := range acc {
		d, _ := c.Doc(id)
		list = append(list, scored{id: id, score: dot / math.Sqrt(float64(d.Length))})
	}
	sort.Slice(list, func(i, j int) bool {
		if list[i].score != list[j].score {
			return list[i].score > list[j].score
		}
		return list[i].id < list[j].id
	})
	if depth > len(list) {
		depth = len(list)
	}
	pool := make(map[index.DocID]bool, depth)
	for _, s := range list[:depth] {
		pool[s.id] = true
	}
	return pool
}

// zipfSampler draws ranks 0..n-1 with probability proportional to
// 1/(rank+1)^skew, via inverse-CDF binary search. It is deterministic given
// the caller's rng.
type zipfSampler struct {
	cum []float64 // cumulative weights, cum[n-1] == total
}

func newZipfSampler(n int, skew float64) *zipfSampler {
	cum := make([]float64, n)
	total := 0.0
	for r := 0; r < n; r++ {
		total += 1 / math.Pow(float64(r+1), skew)
		cum[r] = total
	}
	return &zipfSampler{cum: cum}
}

func (z *zipfSampler) sample(rng *rand.Rand) int {
	x := rng.Float64() * z.cum[len(z.cum)-1]
	return sort.SearchFloat64s(z.cum, x)
}
