package corpus

import (
	"strings"
	"testing"
)

// FuzzReadCollection hardens the external-collection parser: arbitrary bytes
// must either parse into a structurally valid collection or fail with an
// error — never panic, never yield a collection that violates the corpus
// invariants consumers rely on.
func FuzzReadCollection(f *testing.F) {
	f.Add(`{"documents":[{"id":"d1","tf":{"a":2,"b":1}}],"queries":[{"id":"q","terms":["a"],"relevant":["d1"]}]}`)
	f.Add(`{"documents":[{"id":"d","tf":{"x":1}}]}`)
	f.Add(`{}`)
	f.Add(`[`)
	f.Add(`{"documents":[{"id":"d","tf":{"x":-3}}]}`)
	f.Fuzz(func(t *testing.T, data string) {
		col, err := ReadCollection(strings.NewReader(data))
		if err != nil {
			return
		}
		// Structural invariants of a successfully parsed collection.
		if col.Corpus.N() == 0 {
			t.Fatal("parsed collection with zero documents")
		}
		for _, d := range col.Corpus.Docs() {
			if d.ID == "" || len(d.TF) == 0 {
				t.Fatalf("invalid document survived validation: %+v", d)
			}
		}
		for _, q := range col.Queries {
			if q.ID == "" || len(q.Terms) == 0 {
				t.Fatalf("invalid query survived validation: %+v", q)
			}
			for id := range q.Relevant {
				if _, ok := col.Corpus.Doc(id); !ok {
					t.Fatalf("query %s judges unknown doc %s", q.ID, id)
				}
			}
		}
	})
}
