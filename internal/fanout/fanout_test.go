package fanout

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/spritedht/sprite/internal/telemetry"
)

func TestMapIndexOrderedResults(t *testing.T) {
	// Items complete in reverse order (later indices sleep less), yet the
	// collected slices must stay index-ordered.
	e := New(8, nil)
	n := 16
	vals, errs := Map(context.Background(), e, "test", n, func(_ context.Context, i int) (int, error) {
		time.Sleep(time.Duration(n-i) * time.Millisecond / 4)
		if i%5 == 0 {
			return 0, fmt.Errorf("item %d failed", i)
		}
		return i * i, nil
	})
	for i := 0; i < n; i++ {
		if i%5 == 0 {
			if errs[i] == nil || errs[i].Error() != fmt.Sprintf("item %d failed", i) {
				t.Errorf("errs[%d] = %v, want item-specific error", i, errs[i])
			}
			continue
		}
		if errs[i] != nil {
			t.Errorf("errs[%d] = %v, want nil", i, errs[i])
		}
		if vals[i] != i*i {
			t.Errorf("vals[%d] = %d, want %d", i, vals[i], i*i)
		}
	}
}

func TestMapRespectsLimit(t *testing.T) {
	const limit = 3
	e := New(limit, nil)
	var cur, peak atomic.Int64
	_, errs := Map(context.Background(), e, "test", 50, func(_ context.Context, i int) (struct{}, error) {
		c := cur.Add(1)
		for {
			p := peak.Load()
			if c <= p || peak.CompareAndSwap(p, c) {
				break
			}
		}
		time.Sleep(time.Millisecond)
		cur.Add(-1)
		return struct{}{}, nil
	})
	if err := FirstError(errs); err != nil {
		t.Fatalf("unexpected error: %v", err)
	}
	if p := peak.Load(); p > limit {
		t.Errorf("peak concurrency %d exceeds limit %d", p, limit)
	}
}

func TestSequentialModeRunsInline(t *testing.T) {
	// Limit 1 must run items in index order on the calling goroutine.
	e := New(1, nil)
	if e.Parallel() {
		t.Fatal("limit-1 executor claims to be parallel")
	}
	var order []int
	vals, errs := Map(context.Background(), e, "test", 5, func(_ context.Context, i int) (int, error) {
		order = append(order, i) // safe: inline implies no concurrency
		return i, nil
	})
	for i := range order {
		if order[i] != i {
			t.Fatalf("sequential execution order = %v", order)
		}
	}
	for i := range vals {
		if vals[i] != i || errs[i] != nil {
			t.Fatalf("vals=%v errs=%v", vals, errs)
		}
	}
}

func TestSequentialModeStopsAtCancellation(t *testing.T) {
	e := New(1, nil)
	ctx, cancel := context.WithCancel(context.Background())
	started := 0
	_, errs := Map(ctx, e, "test", 10, func(_ context.Context, i int) (struct{}, error) {
		started++
		if i == 3 {
			cancel()
		}
		return struct{}{}, nil
	})
	if started != 4 {
		t.Errorf("started %d items, want 4 (cancellation after item 3)", started)
	}
	for i := 4; i < 10; i++ {
		if !errors.Is(errs[i], context.Canceled) {
			t.Errorf("errs[%d] = %v, want context.Canceled", i, errs[i])
		}
	}
}

func TestParallelCancellationMarksUnstartedItems(t *testing.T) {
	e := New(2, nil)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ran := atomic.Int64{}
	_, errs := Map(ctx, e, "test", 20, func(_ context.Context, i int) (struct{}, error) {
		ran.Add(1)
		return struct{}{}, nil
	})
	if ran.Load() != 0 {
		t.Errorf("%d items ran under a pre-canceled context", ran.Load())
	}
	for i, err := range errs {
		if !errors.Is(err, context.Canceled) {
			t.Errorf("errs[%d] = %v, want context.Canceled", i, err)
		}
	}
}

func TestDefaultLimitFromGOMAXPROCS(t *testing.T) {
	e := New(0, nil)
	if e.Limit() < 1 {
		t.Fatalf("Limit() = %d, want >= 1", e.Limit())
	}
	if New(-3, nil).Limit() != e.Limit() {
		t.Error("negative limit does not derive the GOMAXPROCS default")
	}
}

func TestNilExecutorLimit(t *testing.T) {
	var e *Executor
	if e.Limit() != 1 {
		t.Fatalf("nil executor Limit() = %d, want 1", e.Limit())
	}
}

func TestTelemetryInflightAndStages(t *testing.T) {
	reg := telemetry.NewRegistry()
	e := New(4, reg)
	var wg sync.WaitGroup
	wg.Add(1)
	release := make(chan struct{})
	observedInflight := make(chan int64, 1)
	go func() {
		defer wg.Done()
		Map(context.Background(), e, "probe", 4, func(_ context.Context, i int) (struct{}, error) {
			if i == 0 {
				observedInflight <- reg.Gauge("sprite.fanout.inflight").Value()
			}
			<-release
			return struct{}{}, nil
		})
	}()
	if v := <-observedInflight; v < 1 {
		t.Errorf("inflight gauge = %d during execution, want >= 1", v)
	}
	close(release)
	wg.Wait()
	if v := reg.Gauge("sprite.fanout.inflight").Value(); v != 0 {
		t.Errorf("inflight gauge = %d after completion, want 0", v)
	}
	h := reg.Histogram("sprite.fanout.stage.probe_us")
	if h.Count() != 4 {
		t.Errorf("stage histogram count = %d, want 4", h.Count())
	}
}

func TestForEachAndFirstError(t *testing.T) {
	e := New(4, nil)
	errs := ForEach(context.Background(), e, "test", 6, func(_ context.Context, i int) error {
		if i == 2 || i == 4 {
			return fmt.Errorf("boom %d", i)
		}
		return nil
	})
	err := FirstError(errs)
	if err == nil || err.Error() != "boom 2" {
		t.Fatalf("FirstError = %v, want boom 2 (index order, not completion order)", err)
	}
	if FirstError(nil) != nil {
		t.Fatal("FirstError(nil) != nil")
	}
}

func TestMapEmpty(t *testing.T) {
	e := New(4, nil)
	vals, errs := Map(context.Background(), e, "test", 0, func(_ context.Context, i int) (int, error) {
		t.Fatal("fn called for n=0")
		return 0, nil
	})
	if len(vals) != 0 || len(errs) != 0 {
		t.Fatalf("n=0 returned %d values, %d errors", len(vals), len(errs))
	}
}
