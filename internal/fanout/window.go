package fanout

import "sync"

// Window is a many-producer, single-consumer coalescing queue: producers
// Push items one at a time, and the consumer's Drain returns everything
// queued since the previous Drain as one burst. It is the micro-batching
// substrate of the pooled TCP transport's per-destination writer: the
// per-term postings fetches this package's executor fans out land in the
// destination's window concurrently, and the writer goroutine drains them
// into a single buffered socket write — N frames, one flush, one syscall.
//
// The contract that makes it cheap: exactly one goroutine calls Drain. The
// returned slice is reused as the queue buffer two Drains later, so the
// consumer must finish with (or copy) a burst before its next-next Drain —
// trivially satisfied by the usual "drain, write, flush, repeat" loop.
type Window[T any] struct {
	mu     sync.Mutex
	buf    []T
	spare  []T // previous burst's backing array, recycled
	closed bool
	ready  chan struct{} // capacity 1: "buf may be non-empty, or closed"
}

// NewWindow returns an empty, open window.
func NewWindow[T any]() *Window[T] {
	return &Window[T]{ready: make(chan struct{}, 1)}
}

// Push queues v and reports whether the window accepted it; it returns false
// after Close (the item is dropped, and the producer should fail its caller
// the way it would on a closed connection).
func (w *Window[T]) Push(v T) bool {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return false
	}
	w.buf = append(w.buf, v)
	w.mu.Unlock()
	w.signal()
	return true
}

// Drain blocks until at least one item is queued or the window is closed,
// then returns the whole pending burst. ok is false only when the window is
// closed and empty — the consumer's signal to exit. Closing with items still
// queued delivers them first (shutdown drains, it does not drop).
func (w *Window[T]) Drain() (burst []T, ok bool) {
	for {
		w.mu.Lock()
		if len(w.buf) > 0 {
			burst = w.buf
			w.buf = w.spare[:0]
			w.spare = burst
			w.mu.Unlock()
			return burst, true
		}
		if w.closed {
			w.mu.Unlock()
			return nil, false
		}
		w.mu.Unlock()
		<-w.ready
	}
}

// Close marks the window closed: future Pushes are refused, and Drain
// returns pending items and then reports done. Safe to call more than once.
func (w *Window[T]) Close() {
	w.mu.Lock()
	w.closed = true
	w.mu.Unlock()
	w.signal()
}

// Len reports the items currently queued.
func (w *Window[T]) Len() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return len(w.buf)
}

// signal wakes the consumer without blocking the producer.
func (w *Window[T]) signal() {
	select {
	case w.ready <- struct{}{}:
	default:
	}
}
