package fanout

import (
	"sync"
	"testing"
)

func TestWindowDeliversEverythingOnce(t *testing.T) {
	w := NewWindow[int]()
	const producers, perProducer = 8, 500
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				if !w.Push(p*perProducer + i) {
					t.Error("push refused on open window")
					return
				}
			}
		}(p)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); w.Close(); close(done) }()

	seen := make(map[int]bool)
	batches := 0
	for {
		burst, ok := w.Drain()
		if !ok {
			break
		}
		batches++
		for _, v := range burst {
			if seen[v] {
				t.Fatalf("value %d delivered twice", v)
			}
			seen[v] = true
		}
	}
	<-done
	if len(seen) != producers*perProducer {
		t.Fatalf("delivered %d values, want %d", len(seen), producers*perProducer)
	}
	if batches > producers*perProducer {
		t.Fatalf("batches %d exceed item count", batches)
	}
}

// TestWindowCoalesces pins the batching property: items queued while the
// consumer is away come back in one burst.
func TestWindowCoalesces(t *testing.T) {
	w := NewWindow[int]()
	for i := 0; i < 10; i++ {
		w.Push(i)
	}
	burst, ok := w.Drain()
	if !ok || len(burst) != 10 {
		t.Fatalf("Drain = %v, %v; want 10 items", burst, ok)
	}
	for i, v := range burst {
		if v != i {
			t.Fatalf("burst[%d] = %d, want %d (FIFO within a burst)", i, v, i)
		}
	}
}

func TestWindowCloseDrainsPendingThenReportsDone(t *testing.T) {
	w := NewWindow[string]()
	w.Push("a")
	w.Push("b")
	w.Close()
	if w.Push("c") {
		t.Fatal("push accepted after Close")
	}
	burst, ok := w.Drain()
	if !ok || len(burst) != 2 {
		t.Fatalf("Drain after close = %v, %v; want the 2 pending items", burst, ok)
	}
	if _, ok := w.Drain(); ok {
		t.Fatal("Drain did not report done on closed empty window")
	}
	if _, ok := w.Drain(); ok {
		t.Fatal("done is not sticky")
	}
}

func TestWindowDrainBlocksUntilPush(t *testing.T) {
	w := NewWindow[int]()
	got := make(chan []int)
	go func() {
		burst, _ := w.Drain()
		got <- burst
	}()
	w.Push(99)
	if burst := <-got; len(burst) != 1 || burst[0] != 99 {
		t.Fatalf("burst = %v, want [99]", burst)
	}
	if w.Len() != 0 {
		t.Fatalf("Len = %d after drain", w.Len())
	}
}
