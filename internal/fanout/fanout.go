// Package fanout is the concurrent query execution engine's substrate: a
// context-aware, bounded-parallelism executor for fanning independent
// per-item work (DHT lookups, postings fetches, history recordings, poll
// sweeps) out of sequential loops.
//
// SPRITE's §4 query processing hashes each keyword independently — the
// per-term lookups and postings fetches carry no data dependency on each
// other — yet the cost model of a DHT makes each of them a multi-hop round
// trip. Running them one after another makes query latency the *sum* of the
// per-term round trips; fanning them out makes it the *max* (divided by the
// worker bound). ReCord and the BitTorrent-DHT indexing literature both
// observe that bounded concurrent fan-out is what separates toy from
// production lookup rates.
//
// Design constraints, in order:
//
//  1. Determinism. Results and errors are collected into index-ordered
//     slices: values[i] and errs[i] always belong to item i, regardless of
//     completion order. Callers that fold the collected results in index
//     order reproduce the sequential loop's output bit for bit.
//  2. Legacy equivalence. A limit of 1 runs every item inline on the calling
//     goroutine, in order, with no goroutines spawned — the pre-engine
//     sequential path, preserved exactly (including early stopping once the
//     context is done).
//  3. Context awareness. Workers check the context before starting each
//     item; once it is done, unstarted items fail with the context's error
//     instead of touching the network.
//  4. Observability. The executor maintains an inflight gauge and a per-stage
//     latency histogram (microseconds) so the engine's concurrency and each
//     pipeline stage's cost distribution are visible in telemetry.
package fanout

import (
	"context"
	"runtime"
	"sync"

	"github.com/spritedht/sprite/internal/telemetry"
	"github.com/spritedht/sprite/internal/vtime"
)

// Executor runs independent items with bounded parallelism. The zero value is
// not usable; create one with New. An Executor is safe for concurrent use and
// holds no pooled goroutines: each Map call spawns (and joins) at most
// Limit() workers, so nested fan-outs compose without deadlock.
type Executor struct {
	limit    int
	reg      *telemetry.Registry
	clock    vtime.Clock
	inflight *telemetry.Gauge

	mu     sync.Mutex
	stages map[string]*telemetry.Histogram
}

// New returns an executor bounded to limit concurrent items. limit <= 0
// derives the bound from GOMAXPROCS; limit 1 is the legacy sequential mode.
// reg may be nil (instrumentation off).
func New(limit int, reg *telemetry.Registry) *Executor {
	return NewClocked(limit, reg, nil)
}

// NewClocked is New with an explicit clock: worker goroutines register with
// it and stage latencies are measured on it. A nil clock is the wall clock
// (New's behavior); virtual-time deployments pass their *vtime.Sim so a
// fan-out's workers participate in deterministic scheduling.
func NewClocked(limit int, reg *telemetry.Registry, clk vtime.Clock) *Executor {
	if limit <= 0 {
		limit = runtime.GOMAXPROCS(0)
	}
	return &Executor{
		limit:    limit,
		reg:      reg,
		clock:    vtime.Default(clk),
		inflight: reg.Gauge("sprite.fanout.inflight"),
		stages:   make(map[string]*telemetry.Histogram),
	}
}

// Limit returns the executor's concurrency bound (always >= 1).
func (e *Executor) Limit() int {
	if e == nil {
		return 1
	}
	return e.limit
}

// Parallel reports whether the executor actually fans out (limit > 1).
func (e *Executor) Parallel() bool { return e.Limit() > 1 }

// stageHist resolves (and caches) the latency histogram for a pipeline
// stage. Stage names land in telemetry as "sprite.fanout.stage.<name>_us".
func (e *Executor) stageHist(stage string) *telemetry.Histogram {
	if e == nil || e.reg == nil {
		return nil
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	h, ok := e.stages[stage]
	if !ok {
		h = e.reg.Histogram("sprite.fanout.stage." + stage + "_us")
		e.stages[stage] = h
	}
	return h
}

// run executes one item with instrumentation. Stage latency is measured on
// the executor's clock, so under virtual time the histograms report virtual
// (deterministic) durations.
func (e *Executor) run(hist *telemetry.Histogram, fn func()) {
	e.inflight.Add(1)
	start := e.clock.Now()
	fn()
	hist.Observe(e.clock.Now().Sub(start).Microseconds())
	e.inflight.Add(-1)
}

// Map runs fn(ctx, i) for every i in [0, n) with at most e.Limit() items in
// flight, and returns the results index-ordered: values[i] and errs[i] are
// item i's outcome no matter when it completed. stage names the pipeline
// stage for the per-stage latency histogram.
//
// Context contract: an item observed to start after ctx is done is not run;
// its errs[i] is ctx.Err(). With limit 1 the items run inline in index order
// (the legacy sequential path) and every item after the cancellation point is
// marked with the context error without being started.
func Map[T any](ctx context.Context, e *Executor, stage string, n int, fn func(ctx context.Context, i int) (T, error)) ([]T, []error) {
	values := make([]T, n)
	errs := make([]error, n)
	if n == 0 {
		return values, errs
	}
	hist := e.stageHist(stage)

	workers := e.Limit()
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if cerr := ctx.Err(); cerr != nil {
				errs[i] = cerr
				continue
			}
			i := i
			e.run(hist, func() { values[i], errs[i] = fn(ctx, i) })
		}
		return values, errs
	}

	// Workers pull indices from a shared cursor; each slot in values/errs is
	// written by exactly one worker, so no result-side locking is needed.
	// GoGroup registers the workers with the executor's clock (a plain
	// spawn-and-wait under the wall clock): under virtual time the caller's
	// runnable slot transfers to the group, so a fan-out never stalls the
	// scheduler while its workers sleep through simulated latency.
	var (
		mu   sync.Mutex
		next int
	)
	take := func() (int, bool) {
		mu.Lock()
		defer mu.Unlock()
		if next >= n {
			return 0, false
		}
		i := next
		next++
		return i, true
	}
	e.clock.GoGroup(workers, func(int) {
		for {
			i, ok := take()
			if !ok {
				return
			}
			if cerr := ctx.Err(); cerr != nil {
				errs[i] = cerr
				continue
			}
			e.run(hist, func() { values[i], errs[i] = fn(ctx, i) })
		}
	})
	return values, errs
}

// ForEach is Map for side-effect-only items: it returns the index-ordered
// error slice alone.
func ForEach(ctx context.Context, e *Executor, stage string, n int, fn func(ctx context.Context, i int) error) []error {
	_, errs := Map(ctx, e, stage, n, func(ctx context.Context, i int) (struct{}, error) {
		return struct{}{}, fn(ctx, i)
	})
	return errs
}

// FirstError returns the first non-nil error in index order — the
// deterministic analogue of a sequential loop's "remember the first failure
// and keep going" idiom.
func FirstError(errs []error) error {
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
