package chaos

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"github.com/spritedht/sprite/internal/core"
	"github.com/spritedht/sprite/internal/index"
	"github.com/spritedht/sprite/internal/ir"
	"github.com/spritedht/sprite/internal/simnet"
)

// Kind enumerates the operations the generator can emit.
type Kind int

const (
	KShare Kind = iota
	KUnshare
	KSearch
	KSearchExpanded
	KInsertQuery
	KLearn
	KRefresh
	KFail
	KRecover
	KJoin
	KLoss
	KDrop
	KHeal
)

var kindNames = map[Kind]string{
	KShare: "share", KUnshare: "unshare", KSearch: "search",
	KSearchExpanded: "search_expanded", KInsertQuery: "insert_query",
	KLearn: "learn", KRefresh: "refresh", KFail: "fail", KRecover: "recover",
	KJoin: "join", KLoss: "loss", KDrop: "drop", KHeal: "heal",
}

// read reports whether the op only reads index state (it may append to query
// histories); read runs execute concurrently under Parallelism > 1.
func (k Kind) read() bool {
	return k == KSearch || k == KSearchExpanded || k == KInsertQuery
}

// Op is one concrete, self-contained operation. Every field is fixed at
// generation time, so any subsequence replays deterministically; an op whose
// precondition no longer holds (sharing a shared doc, failing a failed peer)
// executes as a deterministic no-op rather than depending on prior ops.
type Op struct {
	Kind  Kind
	Peer  string   // actor: search origin, share owner, fail/drop target, join name
	Doc   string   // document id for share/unshare
	Terms []string // query terms
	K     int      // top-k for searches
	Skip  int      // drop schedule: calls to let through first
	Count int      // drop schedule: calls to drop
	Loss  float64  // packet loss probability
}

func (o Op) String() string {
	var b strings.Builder
	b.WriteString(kindNames[o.Kind])
	switch o.Kind {
	case KShare, KUnshare:
		fmt.Fprintf(&b, " %s", o.Doc)
		if o.Kind == KShare {
			fmt.Fprintf(&b, " at %s", o.Peer)
		}
	case KSearch, KSearchExpanded, KInsertQuery:
		fmt.Fprintf(&b, " %q from %s k=%d", strings.Join(o.Terms, " "), o.Peer, o.K)
	case KFail, KRecover, KJoin:
		fmt.Fprintf(&b, " %s", o.Peer)
	case KLoss:
		fmt.Fprintf(&b, " p=%.2f", o.Loss)
	case KDrop:
		fmt.Fprintf(&b, " to=%s skip=%d count=%d", o.Peer, o.Skip, o.Count)
	}
	return b.String()
}

const maxJoins = 6

// Generate emits cfg.Steps operations as a pure function of cfg. A small
// generation-time model (what is shared, who is failed) biases choices toward
// effectual ops; the executor re-validates every precondition, so the
// sequence stays replayable after the shrinker removes arbitrary ops.
func Generate(cfg Config) []Op {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))

	type wk struct {
		kind   Kind
		weight int
	}
	table := []wk{
		{KShare, 14}, {KUnshare, 5}, {KSearch, 28}, {KSearchExpanded, 5},
		{KInsertQuery, 8}, {KLearn, 8}, {KRefresh, 5},
	}
	if cfg.FaultOps {
		table = append(table, wk{KFail, 6}, wk{KRecover, 5}, wk{KJoin, 2}, wk{KHeal, 4})
		if !cfg.Twin {
			// Probabilistic loss consumes per-call randomness, so it cannot be
			// mirrored onto a twin with a different call pattern.
			table = append(table, wk{KLoss, 3}, wk{KDrop, 3})
		}
	}
	total := 0
	for _, e := range table {
		total += e.weight
	}

	pickKind := func() Kind {
		r := rng.Intn(total)
		for _, e := range table {
			if r < e.weight {
				return e.kind
			}
			r -= e.weight
		}
		return KSearch
	}
	pickTerm := func() string {
		return fmt.Sprintf("w%02d", int(float64(cfg.Vocab)*rng.Float64()*rng.Float64()))
	}
	pickTerms := func() []string {
		out := make([]string, 1+rng.Intn(3))
		for i := range out {
			out[i] = pickTerm()
		}
		return out
	}
	basePeer := func() string { return fmt.Sprintf("c%d", rng.Intn(cfg.Peers)) }
	pickDoc := func() string { return fmt.Sprintf("doc%02d", rng.Intn(cfg.Docs)) }

	shared := make(map[string]bool)
	failed := make(map[string]bool)
	joins := 0

	ops := make([]Op, 0, cfg.Steps)
	for len(ops) < cfg.Steps {
		op := Op{Kind: pickKind()}
		switch op.Kind {
		case KShare:
			op.Doc, op.Peer = pickDoc(), basePeer()
			shared[op.Doc] = true
		case KUnshare:
			op.Doc = pickDoc()
			if len(shared) > 0 && !shared[op.Doc] {
				// Bias toward an actually shared doc (sorted for determinism).
				ids := make([]string, 0, len(shared))
				for id := range shared {
					ids = append(ids, id)
				}
				sort.Strings(ids)
				op.Doc = ids[rng.Intn(len(ids))]
			}
			delete(shared, op.Doc)
		case KSearch, KSearchExpanded, KInsertQuery:
			op.Peer, op.Terms, op.K = basePeer(), pickTerms(), 3+rng.Intn(8)
		case KFail:
			op.Peer = basePeer()
			failed[op.Peer] = true
		case KRecover:
			op.Peer = basePeer()
			if len(failed) > 0 {
				names := make([]string, 0, len(failed))
				for n := range failed {
					names = append(names, n)
				}
				sort.Strings(names)
				op.Peer = names[rng.Intn(len(names))]
			}
			delete(failed, op.Peer)
		case KJoin:
			if joins >= maxJoins {
				continue
			}
			op.Peer = fmt.Sprintf("j%d", joins)
			joins++
		case KLoss:
			op.Loss = 0.05 + 0.2*rng.Float64()
			if rng.Intn(4) == 0 {
				op.Loss = 0
			}
		case KDrop:
			op.Peer, op.Skip, op.Count = basePeer(), rng.Intn(20), 1+rng.Intn(3)
		case KHeal:
			failed = make(map[string]bool)
		}
		ops = append(ops, op)
	}
	return ops
}

// opOut is the observable outcome of one op on one deployment.
type opOut struct {
	rl  ir.RankedList
	exp []string
	err error
}

// effective validates op against the execution-time model. Invalid ops are
// deterministic no-ops so any subsequence of a generated run replays cleanly.
func (h *harness) effective(op Op) bool {
	switch op.Kind {
	case KShare:
		return !h.shared[op.Doc]
	case KUnshare:
		return h.shared[op.Doc]
	case KFail:
		if h.failed[op.Peer] || !h.nodeExists(op.Peer) {
			return false
		}
		if len(h.failed) >= h.cfg.MaxFailed {
			return false
		}
		return h.aliveCount()-1 >= h.cfg.MinAlive
	case KRecover:
		return h.failed[op.Peer]
	case KJoin:
		return !h.nodeExists(op.Peer)
	case KDrop:
		return h.nodeExists(op.Peer)
	}
	return true
}

func (h *harness) nodeExists(name string) bool {
	_, ok := h.pri.nodes[simnet.Addr(name)]
	return ok
}

func (h *harness) aliveCount() int {
	return len(h.pri.nodes) - len(h.failed)
}

// updateModel folds a (validated) op into the shared fault/share model. ok
// is the primary deployment's outcome: Share rolls back its registration
// when the initial publishes fail, so a faulted share leaves the document
// unshared.
func (h *harness) updateModel(op Op, ok bool) {
	switch op.Kind {
	case KShare:
		if ok {
			h.shared[op.Doc] = true
		}
	case KUnshare:
		delete(h.shared, op.Doc)
	case KFail:
		h.failed[op.Peer] = true
		h.churned = true
	case KRecover:
		delete(h.failed, op.Peer)
		h.churned = true
	case KJoin:
		h.churned = true
	case KLoss:
		h.loss = op.Loss
		if op.Loss > 0 {
			h.taint = true
		}
	case KDrop:
		h.taint = true
	}
}

// stabilizeRounds bounds ring repair after a liveness or membership change.
const stabilizeRounds = 64

// apply executes op against one deployment. Preconditions were already
// validated by effective(); fault-model bookkeeping happens in updateModel.
func (h *harness) apply(d *deployment, op Op) opOut {
	switch op.Kind {
	case KShare:
		doc, ok := h.docs[op.Doc]
		if !ok {
			return opOut{err: fmt.Errorf("chaos: unknown doc %s", op.Doc)}
		}
		return opOut{err: d.net.Share(simnet.Addr(op.Peer), doc)}
	case KUnshare:
		return opOut{err: d.net.Unshare(index.DocID(op.Doc))}
	case KSearch:
		rl, err := d.net.SearchCtx(context.Background(), simnet.Addr(op.Peer), op.Terms, op.K)
		return opOut{rl: rl, err: err}
	case KSearchExpanded:
		rl, exp, err := d.net.SearchExpanded(simnet.Addr(op.Peer), op.Terms, op.K, core.ExpandOptions{})
		return opOut{rl: rl, exp: exp, err: err}
	case KInsertQuery:
		return opOut{err: d.net.InsertQueryCtx(context.Background(), simnet.Addr(op.Peer), op.Terms)}
	case KLearn:
		_, err := d.net.LearnAllCtx(context.Background())
		return opOut{err: err}
	case KRefresh:
		_, err := d.net.RefreshAll()
		return opOut{err: err}
	case KFail:
		d.sim.Fail(simnet.Addr(op.Peer))
		d.ring.StabilizeLists(stabilizeRounds)
		d.ring.RepairFingers()
		d.net.InvalidateCaches()
		return opOut{}
	case KRecover:
		d.sim.Recover(simnet.Addr(op.Peer))
		d.ring.StabilizeLists(stabilizeRounds)
		d.ring.RepairFingers()
		d.net.InvalidateCaches()
		return opOut{}
	case KJoin:
		return opOut{err: h.join(d, op.Peer)}
	case KLoss:
		d.sim.SetPacketLoss(op.Loss)
		return opOut{}
	case KDrop:
		d.sim.DropCallsAfter(simnet.Addr(op.Peer), op.Skip, op.Count)
		return opOut{}
	}
	return opOut{err: fmt.Errorf("chaos: unhandled op %s", op)}
}

// join adds a named node to a deployment's ring through the join protocol and
// adopts it into the SPRITE network.
func (h *harness) join(d *deployment, name string) error {
	node, err := d.ring.AddNode(name)
	if err != nil {
		return err
	}
	d.net.Adopt(node)
	var boot simnet.Addr
	for i := 0; i < h.cfg.Peers; i++ {
		cand := simnet.Addr(fmt.Sprintf("c%d", i))
		if !h.failed[string(cand)] {
			boot = cand
			break
		}
	}
	if boot == "" {
		return fmt.Errorf("chaos: no alive bootstrap for join")
	}
	bootNode, ok := d.nodes[boot]
	if !ok {
		return fmt.Errorf("chaos: bootstrap node %s missing", boot)
	}
	if err := node.Join(bootNode); err != nil {
		return err
	}
	d.nodes[node.Addr()] = node
	d.ring.StabilizeLists(stabilizeRounds)
	d.ring.RepairFingers()
	d.net.InvalidateCaches()
	return nil
}

// heal is the recover-everything super-op: revive all failed peers, clear all
// injected faults, repair the ring, and migrate every index entry back to its
// oracle owner. It is also the first stage of the final sweep, so a heal must
// always converge — failure to do so is itself a violation.
func (h *harness) heal() *Violation {
	names := make([]string, 0, len(h.failed))
	for n := range h.failed {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, d := range h.deployments() {
		var v *Violation
		d.run(func() {
			for _, n := range names {
				d.sim.Recover(simnet.Addr(n))
			}
			d.sim.ClearDrops()
			d.sim.SetPacketLoss(0)
			d.ring.StabilizeLists(stabilizeRounds)
			d.ring.RepairFingers()
			if !d.ring.ConvergedLists() {
				v = &Violation{Invariant: "heal",
					Msg: fmt.Sprintf("%s: ring did not converge after %d stabilization rounds", d.label, stabilizeRounds)}
				return
			}
			d.net.InvalidateCaches()
			if _, err := d.net.RefreshAll(); err != nil {
				v = &Violation{Invariant: "heal",
					Msg: fmt.Sprintf("%s: refresh on healed network: %v", d.label, err)}
			}
		})
		if v != nil {
			return v
		}
	}
	h.failed = make(map[string]bool)
	h.loss = 0
	h.taint = false
	h.churned = false
	return nil
}
