package chaos

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"github.com/spritedht/sprite/internal/core"
	"github.com/spritedht/sprite/internal/index"
	"github.com/spritedht/sprite/internal/ir"
	"github.com/spritedht/sprite/internal/simnet"
)

// Kind enumerates the operations the generator can emit.
type Kind int

const (
	KShare Kind = iota
	KUnshare
	KSearch
	KSearchExpanded
	KInsertQuery
	KLearn
	KRefresh
	KFail
	KRecover
	KJoin
	KLoss
	KDrop
	KHeal
	KLeave
	KMassJoin
	KMassLeave
	KSimilar
)

var kindNames = map[Kind]string{
	KShare: "share", KUnshare: "unshare", KSearch: "search",
	KSearchExpanded: "search_expanded", KInsertQuery: "insert_query",
	KLearn: "learn", KRefresh: "refresh", KFail: "fail", KRecover: "recover",
	KJoin: "join", KLoss: "loss", KDrop: "drop", KHeal: "heal",
	KLeave: "leave", KMassJoin: "mass_join", KMassLeave: "mass_leave",
	KSimilar: "similar",
}

// read reports whether the op only reads index state (it may append to query
// histories); read runs execute concurrently under Parallelism > 1.
func (k Kind) read() bool {
	return k == KSearch || k == KSearchExpanded || k == KInsertQuery || k == KSimilar
}

// Op is one concrete, self-contained operation. Every field is fixed at
// generation time, so any subsequence replays deterministically; an op whose
// precondition no longer holds (sharing a shared doc, failing a failed peer)
// executes as a deterministic no-op rather than depending on prior ops.
type Op struct {
	Kind  Kind
	Peer  string   // actor: search origin, share owner, fail/drop/leave target, join name
	Doc   string   // document id for share/unshare
	Terms []string // query terms; peer names for mass_join/mass_leave
	K     int      // top-k for searches
	Skip  int      // drop schedule: calls to let through first
	Count int      // drop schedule: calls to drop
	Loss  float64  // packet loss probability
}

func (o Op) String() string {
	var b strings.Builder
	b.WriteString(kindNames[o.Kind])
	switch o.Kind {
	case KShare, KUnshare:
		fmt.Fprintf(&b, " %s", o.Doc)
		if o.Kind == KShare {
			fmt.Fprintf(&b, " at %s", o.Peer)
		}
	case KSearch, KSearchExpanded, KInsertQuery:
		fmt.Fprintf(&b, " %q from %s k=%d", strings.Join(o.Terms, " "), o.Peer, o.K)
	case KSimilar:
		fmt.Fprintf(&b, " %s from %s k=%d", o.Doc, o.Peer, o.K)
	case KFail, KRecover, KJoin, KLeave:
		fmt.Fprintf(&b, " %s", o.Peer)
	case KMassJoin, KMassLeave:
		fmt.Fprintf(&b, " %s", strings.Join(o.Terms, ","))
	case KLoss:
		fmt.Fprintf(&b, " p=%.2f", o.Loss)
	case KDrop:
		fmt.Fprintf(&b, " to=%s skip=%d count=%d", o.Peer, o.Skip, o.Count)
	}
	return b.String()
}

// maxJoins bounds the j-named peers a generated sequence may add, across
// single joins and mass-join waves.
const maxJoins = 12

// Generate emits cfg.Steps operations as a pure function of cfg. A small
// generation-time model (what is shared, who is failed) biases choices toward
// effectual ops; the executor re-validates every precondition, so the
// sequence stays replayable after the shrinker removes arbitrary ops.
func Generate(cfg Config) []Op {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))

	type wk struct {
		kind   Kind
		weight int
	}
	table := []wk{
		{KShare, 14}, {KUnshare, 5}, {KSearch, 28}, {KSearchExpanded, 5},
		{KSimilar, 6}, {KInsertQuery, 8}, {KLearn, 8}, {KRefresh, 5},
	}
	if cfg.FaultOps {
		table = append(table, wk{KFail, 6}, wk{KRecover, 5}, wk{KJoin, 2}, wk{KHeal, 4},
			wk{KLeave, 3}, wk{KMassJoin, 1}, wk{KMassLeave, 1})
		if !cfg.Twin {
			// Probabilistic loss consumes per-call randomness, so it cannot be
			// mirrored onto a twin with a different call pattern.
			table = append(table, wk{KLoss, 3}, wk{KDrop, 3})
		}
	}
	total := 0
	for _, e := range table {
		total += e.weight
	}

	pickKind := func() Kind {
		r := rng.Intn(total)
		for _, e := range table {
			if r < e.weight {
				return e.kind
			}
			r -= e.weight
		}
		return KSearch
	}
	pickTerm := func() string {
		return fmt.Sprintf("w%02d", int(float64(cfg.Vocab)*rng.Float64()*rng.Float64()))
	}
	pickTerms := func() []string {
		out := make([]string, 1+rng.Intn(3))
		for i := range out {
			out[i] = pickTerm()
		}
		return out
	}
	basePeer := func() string { return fmt.Sprintf("c%d", rng.Intn(cfg.Peers)) }
	pickDoc := func() string { return fmt.Sprintf("doc%02d", rng.Intn(cfg.Docs)) }

	shared := make(map[string]bool)
	failed := make(map[string]bool)
	// present is the generation-time membership model: graceful leaves remove
	// peers for good, joins (single or mass) add them. The executor
	// re-validates, so the model only biases choices toward effectual ops.
	present := make(map[string]bool, cfg.Peers)
	for i := 0; i < cfg.Peers; i++ {
		present[fmt.Sprintf("c%d", i)] = true
	}
	joins := 0
	// pickLeaver names a peer that could leave gracefully right now — present,
	// not failed, and not needed to keep MinAlive peers up — removing it from
	// the model. Sorted iteration keeps the choice a pure function of the rng.
	pickLeaver := func() (string, bool) {
		if len(present)-len(failed)-1 < cfg.MinAlive {
			return "", false
		}
		cand := make([]string, 0, len(present))
		for n := range present {
			if !failed[n] {
				cand = append(cand, n)
			}
		}
		if len(cand) == 0 {
			return "", false
		}
		sort.Strings(cand)
		name := cand[rng.Intn(len(cand))]
		delete(present, name)
		return name, true
	}

	ops := make([]Op, 0, cfg.Steps)
	for len(ops) < cfg.Steps {
		op := Op{Kind: pickKind()}
		switch op.Kind {
		case KShare:
			op.Doc, op.Peer = pickDoc(), basePeer()
			shared[op.Doc] = true
		case KUnshare:
			op.Doc = pickDoc()
			if len(shared) > 0 && !shared[op.Doc] {
				// Bias toward an actually shared doc (sorted for determinism).
				ids := make([]string, 0, len(shared))
				for id := range shared {
					ids = append(ids, id)
				}
				sort.Strings(ids)
				op.Doc = ids[rng.Intn(len(ids))]
			}
			delete(shared, op.Doc)
		case KSearch, KSearchExpanded, KInsertQuery:
			op.Peer, op.Terms, op.K = basePeer(), pickTerms(), 3+rng.Intn(8)
		case KSimilar:
			op.Peer, op.K = basePeer(), 3+rng.Intn(8)
			op.Doc = pickDoc()
			if len(shared) > 0 && !shared[op.Doc] {
				// Bias toward an actually shared doc (sorted for determinism).
				ids := make([]string, 0, len(shared))
				for id := range shared {
					ids = append(ids, id)
				}
				sort.Strings(ids)
				op.Doc = ids[rng.Intn(len(ids))]
			}
		case KFail:
			op.Peer = basePeer()
			if present[op.Peer] {
				failed[op.Peer] = true
			}
		case KRecover:
			op.Peer = basePeer()
			if len(failed) > 0 {
				names := make([]string, 0, len(failed))
				for n := range failed {
					names = append(names, n)
				}
				sort.Strings(names)
				op.Peer = names[rng.Intn(len(names))]
			}
			delete(failed, op.Peer)
		case KJoin:
			if joins >= maxJoins {
				continue
			}
			op.Peer = fmt.Sprintf("j%d", joins)
			present[op.Peer] = true
			joins++
		case KLeave:
			name, ok := pickLeaver()
			if !ok {
				continue
			}
			op.Peer = name
		case KMassJoin:
			want := 2 + rng.Intn(3)
			if joins+want > maxJoins {
				want = maxJoins - joins
			}
			if want <= 0 {
				continue
			}
			for i := 0; i < want; i++ {
				name := fmt.Sprintf("j%d", joins)
				op.Terms = append(op.Terms, name)
				present[name] = true
				joins++
			}
		case KMassLeave:
			want := 2 + rng.Intn(3)
			for i := 0; i < want; i++ {
				name, ok := pickLeaver()
				if !ok {
					break
				}
				op.Terms = append(op.Terms, name)
			}
			if len(op.Terms) == 0 {
				continue
			}
		case KLoss:
			op.Loss = 0.05 + 0.2*rng.Float64()
			if rng.Intn(4) == 0 {
				op.Loss = 0
			}
		case KDrop:
			op.Peer, op.Skip, op.Count = basePeer(), rng.Intn(20), 1+rng.Intn(3)
		case KHeal:
			failed = make(map[string]bool)
		}
		ops = append(ops, op)
	}
	return ops
}

// opOut is the observable outcome of one op on one deployment.
type opOut struct {
	rl  ir.RankedList
	exp []string
	err error
}

// effective validates op against the execution-time model. Invalid ops are
// deterministic no-ops so any subsequence of a generated run replays cleanly.
func (h *harness) effective(op Op) bool {
	switch op.Kind {
	case KShare:
		return !h.shared[op.Doc] && h.nodeExists(op.Peer)
	case KUnshare:
		return h.shared[op.Doc]
	case KSearch, KSearchExpanded, KInsertQuery:
		// The origin peer may have left gracefully or be crashed. A crashed
		// peer cannot originate queries — and its routing tables go stale the
		// moment membership changes behind it, so a query issued "from" it
		// would be measuring a nonsensical scenario, not a system property.
		return h.nodeExists(op.Peer) && !h.failed[op.Peer]
	case KSimilar:
		// A similarity query needs a shared query document and a live origin.
		return h.shared[op.Doc] && h.nodeExists(op.Peer) && !h.failed[op.Peer]
	case KFail:
		if h.failed[op.Peer] || !h.nodeExists(op.Peer) {
			return false
		}
		if len(h.failed) >= h.cfg.MaxFailed {
			return false
		}
		return h.aliveCount()-1 >= h.cfg.MinAlive
	case KRecover:
		return h.failed[op.Peer]
	case KJoin:
		return !h.nodeExists(op.Peer)
	case KLeave:
		return h.leavable(op.Peer)
	case KMassJoin:
		for _, name := range op.Terms {
			if !h.nodeExists(name) {
				return true
			}
		}
		return false
	case KMassLeave:
		for _, name := range op.Terms {
			if h.leavable(name) {
				return true
			}
		}
		return false
	case KDrop:
		return h.nodeExists(op.Peer)
	}
	return true
}

// leavable reports whether name can depart gracefully right now: it exists,
// is alive (a failed peer cannot run the handoff protocol), and its departure
// keeps MinAlive peers up.
func (h *harness) leavable(name string) bool {
	return h.nodeExists(name) && !h.failed[name] && h.aliveCount()-1 >= h.cfg.MinAlive
}

func (h *harness) nodeExists(name string) bool {
	_, ok := h.pri.nodes[simnet.Addr(name)]
	return ok
}

func (h *harness) aliveCount() int {
	return len(h.pri.nodes) - len(h.failed)
}

// updateModel folds a (validated) op into the shared fault/share model. ok
// is the primary deployment's outcome: Share rolls back its registration
// when the initial publishes fail, so a faulted share leaves the document
// unshared.
func (h *harness) updateModel(op Op, ok bool) {
	switch op.Kind {
	case KShare:
		if ok {
			h.shared[op.Doc] = true
			h.docOwner[op.Doc] = op.Peer
		}
	case KUnshare:
		delete(h.shared, op.Doc)
		delete(h.docOwner, op.Doc)
	case KFail:
		h.failed[op.Peer] = true
		h.churned = true
	case KRecover:
		delete(h.failed, op.Peer)
		h.churned = true
	case KJoin, KMassJoin:
		h.churned = true
	case KLeave, KMassLeave:
		// A graceful leave withdraws every document the departing peer owned;
		// drop them from the share model. apply already removed the peers from
		// d.nodes, so departed owners are exactly those that no longer exist.
		for doc, owner := range h.docOwner {
			if !h.nodeExists(owner) {
				delete(h.shared, doc)
				delete(h.docOwner, doc)
			}
		}
		h.churned = true
	case KLoss:
		h.loss = op.Loss
		if op.Loss > 0 {
			h.taint = true
		}
	case KDrop:
		h.taint = true
	}
}

// stabilizeRounds bounds ring repair after a liveness or membership change.
const stabilizeRounds = 64

// apply executes op against one deployment. Preconditions were already
// validated by effective(); fault-model bookkeeping happens in updateModel.
func (h *harness) apply(d *deployment, op Op) opOut {
	switch op.Kind {
	case KShare:
		doc, ok := h.docs[op.Doc]
		if !ok {
			return opOut{err: fmt.Errorf("chaos: unknown doc %s", op.Doc)}
		}
		return opOut{err: d.net.Share(simnet.Addr(op.Peer), doc)}
	case KUnshare:
		return opOut{err: d.net.Unshare(index.DocID(op.Doc))}
	case KSearch:
		rl, err := d.net.SearchCtx(context.Background(), simnet.Addr(op.Peer), op.Terms, op.K)
		return opOut{rl: rl, err: err}
	case KSimilar:
		rl, err := d.net.SearchSimilarCtx(context.Background(), simnet.Addr(op.Peer), index.DocID(op.Doc), op.K)
		return opOut{rl: rl, err: err}
	case KSearchExpanded:
		rl, exp, err := d.net.SearchExpanded(simnet.Addr(op.Peer), op.Terms, op.K, core.ExpandOptions{})
		return opOut{rl: rl, exp: exp, err: err}
	case KInsertQuery:
		return opOut{err: d.net.InsertQueryCtx(context.Background(), simnet.Addr(op.Peer), op.Terms)}
	case KLearn:
		_, err := d.net.LearnAllCtx(context.Background())
		return opOut{err: err}
	case KRefresh:
		_, err := d.net.RefreshAll()
		return opOut{err: err}
	case KFail:
		d.sim.Fail(simnet.Addr(op.Peer))
		d.ring.StabilizeLists(stabilizeRounds)
		d.ring.RepairFingers()
		d.net.InvalidateCaches()
		return opOut{}
	case KRecover:
		d.sim.Recover(simnet.Addr(op.Peer))
		d.ring.StabilizeLists(stabilizeRounds)
		d.ring.RepairFingers()
		d.net.InvalidateCaches()
		return opOut{}
	case KJoin:
		return opOut{err: h.join(d, op.Peer)}
	case KLeave:
		return opOut{err: h.leave(d, op.Peer)}
	case KMassJoin:
		for _, name := range op.Terms {
			if _, ok := d.nodes[simnet.Addr(name)]; ok {
				continue
			}
			if err := h.join(d, name); err != nil {
				return opOut{err: err}
			}
		}
		return opOut{}
	case KMassLeave:
		for _, name := range op.Terms {
			// Re-check per victim against this deployment: each departure
			// shrinks the ring, and the MinAlive floor must hold throughout.
			if _, ok := d.nodes[simnet.Addr(name)]; !ok || h.failed[name] ||
				len(d.nodes)-len(h.failed)-1 < h.cfg.MinAlive {
				continue
			}
			if err := h.leave(d, name); err != nil {
				return opOut{err: err}
			}
		}
		return opOut{}
	case KLoss:
		d.sim.SetPacketLoss(op.Loss)
		return opOut{}
	case KDrop:
		d.sim.DropCallsAfter(simnet.Addr(op.Peer), op.Skip, op.Count)
		return opOut{}
	}
	return opOut{err: fmt.Errorf("chaos: unhandled op %s", op)}
}

// join adds a named node to a deployment's ring through the join protocol and
// adopts it into the SPRITE network.
func (h *harness) join(d *deployment, name string) error {
	node, err := d.ring.AddNode(name)
	if err != nil {
		return err
	}
	d.net.Adopt(node)
	// Bootstrap off any alive member — base peers may have left gracefully,
	// so fall back to the sorted membership when none remain.
	var boot simnet.Addr
	for i := 0; i < h.cfg.Peers; i++ {
		cand := simnet.Addr(fmt.Sprintf("c%d", i))
		if _, ok := d.nodes[cand]; ok && !h.failed[string(cand)] {
			boot = cand
			break
		}
	}
	if boot == "" {
		names := make([]string, 0, len(d.nodes))
		for a := range d.nodes {
			names = append(names, string(a))
		}
		sort.Strings(names)
		for _, nm := range names {
			if !h.failed[nm] {
				boot = simnet.Addr(nm)
				break
			}
		}
	}
	bootNode, ok := d.nodes[boot]
	if !ok {
		return fmt.Errorf("chaos: no alive bootstrap for join")
	}
	if err := node.Join(bootNode); err != nil {
		return err
	}
	d.nodes[node.Addr()] = node
	d.ring.StabilizeLists(stabilizeRounds)
	d.ring.RepairFingers()
	d.net.InvalidateCaches()
	return nil
}

// leave departs name gracefully from one deployment. Entries whose owners
// could not be told about the handoff enter the deployment's fault ledger:
// they live at the leave-time successor with owner records that will only
// re-anchor once the owner is reachable again (FlushStaleAll's reclaim).
func (h *harness) leave(d *deployment, name string) error {
	rep, err := d.net.Leave(simnet.Addr(name))
	if err != nil {
		return err
	}
	for _, e := range rep.Unrelocated {
		d.tolerated[entryKey{peer: e.Peer, term: e.Term, doc: e.Posting.Doc}] = true
	}
	delete(d.nodes, simnet.Addr(name))
	d.ring.StabilizeLists(stabilizeRounds)
	d.ring.RepairFingers()
	d.net.InvalidateCaches()
	return nil
}

// heal is the recover-everything super-op: revive all failed peers, clear all
// injected faults, repair the ring, and run the peer-driven maintenance sweep
// — misplaced entries shed to their arc owners, replica sets reconcile via
// anti-entropy, and owners flush stale withdrawals and reclaim records
// orphaned by departures. No owner refresh sweep is involved: placement after
// a heal is entirely the repair subsystem's doing. heal is also the first
// stage of the final sweep, so it must always converge — failure to do so is
// itself a violation.
func (h *harness) heal() *Violation {
	names := make([]string, 0, len(h.failed))
	for n := range h.failed {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, d := range h.deployments() {
		var v *Violation
		d.run(func() {
			for _, n := range names {
				d.sim.Recover(simnet.Addr(n))
			}
			d.sim.ClearDrops()
			d.sim.SetPacketLoss(0)
			d.ring.StabilizeLists(stabilizeRounds)
			d.ring.RepairFingers()
			if !d.ring.ConvergedLists() {
				v = &Violation{Invariant: "heal",
					Msg: fmt.Sprintf("%s: ring did not converge after %d stabilization rounds", d.label, stabilizeRounds)}
				return
			}
			d.net.InvalidateCaches()
			d.net.FlushStaleAll()
			d.net.Repair()
			d.net.FlushStaleAll()
		})
		if v != nil {
			return v
		}
	}
	h.failed = make(map[string]bool)
	h.loss = 0
	h.taint = false
	h.churned = false
	return nil
}
