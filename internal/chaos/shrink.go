package chaos

// shrink reduces a failing operation sequence to a (locally) minimal
// reproduction. It is a greedy ddmin-lite: truncate to the failing step, then
// repeatedly try deleting chunks — halving the chunk size down to single ops —
// keeping any deletion after which Execute still reports a violation. Ops are
// self-contained (invalid ones replay as no-ops), so any subsequence is a
// legal program.
//
// Returns the shrunk sequence and the number of replays spent. If the
// violation does not reproduce on the first replay (a schedule-dependent
// failure under Parallelism > 1), it returns nil and the caller reports the
// violation unshrunk.
func shrink(cfg Config, ops []Op, v *Violation) ([]Op, int) {
	cfg = cfg.withDefaults()
	end := v.Step + 1
	if end > len(ops) {
		end = len(ops) // final-sweep violations need the whole sequence
	}
	cur := append([]Op(nil), ops[:end]...)

	replays := 0
	fails := func(sub []Op) bool {
		if replays >= cfg.MaxShrinkReplays {
			return false
		}
		replays++
		return Execute(cfg, sub) != nil
	}

	if !fails(cur) {
		return nil, replays
	}
	for chunk := (len(cur) + 1) / 2; chunk >= 1; chunk /= 2 {
		for start := 0; start+chunk <= len(cur); {
			cand := make([]Op, 0, len(cur)-chunk)
			cand = append(cand, cur[:start]...)
			cand = append(cand, cur[start+chunk:]...)
			if fails(cand) {
				cur = cand // same start: the next chunk slid into place
			} else {
				start += chunk
			}
		}
		if chunk == 1 {
			break
		}
	}
	return cur, replays
}
