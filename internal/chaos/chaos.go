// Package chaos is a seeded, deterministic whole-system test harness for the
// SPRITE stack. It generates a randomized but fully replayable sequence of
// operations — shares, unshares, searches, learning and refresh sweeps, peer
// crashes and recoveries, ring joins, packet loss and scheduled call drops —
// executes it against a live network (optionally alongside a cache-disabled
// twin), and checks a registry of invariants after every step:
//
//  1. Index/replica consistency: every live document's indexed terms have
//     their primary entry exactly where the owner recorded it, nothing the
//     owner disowns survives outside the fault ledger, and (at quiescent
//     points) primaries sit with the ring's oracle owner with replicas on its
//     successors.
//  2. Oracle agreement: each search's ranked list is bit-identical to a
//     shadow ranking recomputed from introspected ground truth.
//  3. Cache transparency: a twin network with caching off produces identical
//     rankings and query-history multisets.
//  4. Telemetry conservation: the transport's counters stay monotone and
//     internally balanced.
//  5. No leaks: after a final heal-and-unshare-all sweep, the global index is
//     empty modulo the fault ledger and no goroutines linger.
//
// A violation carries the seed and failing step, and Run greedily shrinks the
// operation prefix to a minimal reproduction. Re-run a repro with
//
//	go test ./internal/chaos -run TestChaos -chaos.seed=<seed>
package chaos

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"runtime"
	"sort"
	"time"

	"github.com/spritedht/sprite/internal/chord"
	"github.com/spritedht/sprite/internal/core"
	"github.com/spritedht/sprite/internal/corpus"
	"github.com/spritedht/sprite/internal/index"
	"github.com/spritedht/sprite/internal/simnet"
	"github.com/spritedht/sprite/internal/sketch"
	"github.com/spritedht/sprite/internal/vtime"
)

// Config parameterizes one chaos run. The zero value is not usable; Run
// applies the defaults documented per field.
type Config struct {
	// Seed drives every random choice: the document pool, the operation
	// sequence, and the simulated network. Same seed, same run (default 1).
	Seed int64
	// Steps is the number of operations to generate (default 200).
	Steps int
	// Peers is the initial ring size (default 8).
	Peers int
	// Docs is the size of the shareable document pool (default 16).
	Docs int
	// Vocab is the synthetic vocabulary size (default 48). Term choice is
	// biased so a few terms are common across many documents, exercising
	// high-DF paths (shared indexing peers, the hot-term advisory).
	Vocab int
	// ReplicationFactor is passed through to the core (default 0).
	ReplicationFactor int
	// Parallelism bounds both the core's internal fan-out and how many
	// consecutive read operations the harness issues concurrently (default 1).
	Parallelism int
	// Cache enables the query-path caches on the primary network.
	Cache bool
	// Twin runs a cache-disabled twin network through the same operations and
	// checks invariant 3. Twin mode excludes packet-loss and call-drop
	// operations from generation: probabilistic loss consumes per-call
	// randomness, so two networks with different call patterns would diverge
	// for reasons that are not bugs.
	Twin bool
	// FaultOps enables fault operations in generation: peer fail/recover,
	// ring joins, heals, and (unless Twin) packet loss and call drops.
	FaultOps bool
	// HotTermDF passes the §7 advisory threshold through to the core
	// (default 0 = off).
	HotTermDF int
	// MaxFailed bounds concurrently failed peers (default 2).
	MaxFailed int
	// MinAlive is the floor of alive peers a fail operation must preserve
	// (default 3).
	MinAlive int
	// EpochEvery is the step interval for the expensive quiescent checks —
	// oracle index placement and replica presence (default 25).
	EpochEvery int
	// MaxShrinkReplays caps the replays the shrinker may spend (default 150).
	MaxShrinkReplays int
	// Sabotage, if set, runs against the primary network after every
	// operation. Mutation tests use it to inject state corruption and assert
	// the invariant registry catches it.
	Sabotage func(*core.Network)
	// VirtualTime runs each deployment on its own deterministic event clock
	// (internal/vtime) with a constant, actually-slept link delay on every
	// simulated call: the whole fault repertoire — crashes, joins, drops,
	// heals, concurrent read batches — then exercises the virtual scheduler,
	// and every invariant must hold exactly as it does on the wall clock.
	// The slept delay advances virtual time, so runs stay fast.
	VirtualTime bool
}

func (c Config) withDefaults() Config {
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Steps <= 0 {
		c.Steps = 200
	}
	if c.Peers <= 0 {
		c.Peers = 8
	}
	if c.Docs <= 0 {
		c.Docs = 16
	}
	if c.Vocab <= 0 {
		c.Vocab = 48
	}
	if c.Parallelism <= 0 {
		c.Parallelism = 1
	}
	if c.MaxFailed <= 0 {
		c.MaxFailed = 2
	}
	if c.MinAlive <= 0 {
		c.MinAlive = 3
	}
	if c.EpochEvery <= 0 {
		c.EpochEvery = 25
	}
	if c.MaxShrinkReplays <= 0 {
		c.MaxShrinkReplays = 150
	}
	return c
}

// Violation is one invariant failure, pinned to the operation after which it
// was detected.
type Violation struct {
	Seed      int64
	Step      int    // index of the failing op; == number of ops for the final sweep
	Op        string // the failing op, "" for the final sweep
	Invariant string // which registry entry fired
	Msg       string
}

func (v *Violation) Error() string {
	where := v.Op
	if where == "" {
		where = "final sweep"
	}
	return fmt.Sprintf("chaos seed %d step %d (%s): invariant %s: %s",
		v.Seed, v.Step, where, v.Invariant, v.Msg)
}

// Result is the outcome of one chaos run.
type Result struct {
	Seed      int64
	Steps     int // operations generated
	Violation *Violation
	// StateDigest is ExecuteDigest's fold over the final distributed state;
	// two Runs of the same Config must agree on it exactly.
	StateDigest uint64
	// Repro is the greedily shrunk operation prefix that still reproduces the
	// violation, nil when the run passed or the violation did not reproduce
	// on replay (a schedule-dependent failure — reported unshrunk).
	Repro []Op
	// Replays is the number of shrink replays spent.
	Replays int
}

// Run generates cfg.Steps operations from cfg.Seed, executes them with the
// full invariant registry, and on violation shrinks the sequence to a
// minimal reproduction.
func Run(cfg Config) Result {
	cfg = cfg.withDefaults()
	ops := Generate(cfg)
	res := Result{Seed: cfg.Seed, Steps: len(ops)}
	v, digest := ExecuteDigest(cfg, ops)
	res.StateDigest = digest
	if v == nil {
		return res
	}
	res.Violation = v
	res.Repro, res.Replays = shrink(cfg, ops, v)
	return res
}

// deployment is one network under test plus its per-network checker state.
type deployment struct {
	label string
	sim   *simnet.Network
	ring  *chord.Ring
	net   *core.Network
	// clk is the deployment's virtual clock (nil unless Config.VirtualTime).
	// Every network-touching step attaches through run; the invariant checks
	// are introspective and need no attachment.
	clk   *vtime.Sim
	nodes map[simnet.Addr]*chord.Node
	// prev is the stats snapshot of the previous step, for monotonicity.
	prev simnet.Stats
	// tolerated is the fault ledger: index entries (primary and replica) that
	// became unexplainable while faults were active. They are excused forever
	// — exactly the garbage a real system accrues from crashed holders — but
	// an unexplained entry appearing with no fault active is a violation.
	tolerated map[entryKey]bool
}

type entryKey struct {
	replica bool
	peer    simnet.Addr
	term    string
	doc     index.DocID
}

// chaosLinkDelay is the constant one-way link delay slept by virtual-time
// chaos deployments. Constant so the transport's RNG stream — and therefore
// every routed message — matches the wall-clock run exactly.
const chaosLinkDelay = 200 * time.Microsecond

func (c Config) newDeployment(label string, cacheOn bool) (*deployment, error) {
	var (
		clk      *vtime.Sim
		snetOpts []simnet.Option
	)
	if c.VirtualTime {
		clk = vtime.NewSim()
		snetOpts = append(snetOpts,
			simnet.WithClock(clk),
			simnet.WithLatency(simnet.UniformLatency(chaosLinkDelay, chaosLinkDelay)))
	}
	sim := simnet.New(c.Seed, snetOpts...)
	if c.VirtualTime {
		sim.SetSleepLatency(true)
	}
	ring := chord.NewRing(sim, chord.Config{})
	coreCfg := core.Config{
		InitialTerms:      3,
		TermsPerIteration: 2,
		MaxIndexTerms:     8,
		// Cap-eviction order under concurrent arrivals is schedule-dependent;
		// an effectively unbounded history keeps runs deterministic.
		HistoryCap:        1 << 20,
		ReplicationFactor: c.ReplicationFactor,
		HotTermDF:         c.HotTermDF,
		Parallelism:       c.Parallelism,
		// Sketching is always on so the similar op is live on every run.
		// Refine stays 0: the sketch-only ranking is what the oracle check
		// recomputes from introspected postings.
		Sketch: sketch.Config{Enabled: true, Dims: 32, RouteTerms: 3, Seed: uint64(c.Seed)},
	}
	if cacheOn {
		coreCfg.Cache = core.CacheConfig{Enabled: true}
	}
	if clk != nil {
		coreCfg.Clock = clk
	}
	d := &deployment{
		label:     label,
		sim:       sim,
		ring:      ring,
		clk:       clk,
		nodes:     make(map[simnet.Addr]*chord.Node, c.Peers),
		tolerated: make(map[entryKey]bool),
	}
	var (
		added []*chord.Node
		err   error
	)
	d.run(func() {
		added, err = ring.AddNodes("c", c.Peers)
		if err != nil {
			return
		}
		ring.Build()
		d.net, err = core.NewNetwork(ring, coreCfg)
	})
	if err != nil {
		return nil, err
	}
	for _, nd := range added {
		d.nodes[nd.Addr()] = nd
	}
	d.prev = sim.Stats()
	return d, nil
}

// run executes fn with the calling goroutine registered on the deployment's
// virtual clock, so slept link delays inside are scheduled virtually. Under
// the wall clock it calls fn directly. Safe to call from concurrent batch
// goroutines: each attaches independently.
func (d *deployment) run(fn func()) {
	if d.clk == nil {
		fn()
		return
	}
	d.clk.Run(fn)
}

// harness executes one operation sequence against the primary deployment
// (and optional twin) while tracking the shared fault model.
type harness struct {
	cfg  Config
	docs map[string]*corpus.Document
	pri  *deployment
	twin *deployment // nil unless cfg.Twin

	// Shared fault model: identical operations are applied to both
	// deployments, so one model describes both.
	failed map[string]bool
	shared map[string]bool
	// docOwner maps each shared document to the peer that shared it, so a
	// graceful leave can retire the departing owner's documents from the model.
	docOwner map[string]string
	loss     float64
	// taint: packet loss or scheduled drops have been active since the last
	// heal. Oracle and quiescent checks are gated until a heal, because loss
	// can silently corrupt ring maintenance itself.
	taint bool
	// churned: ring membership or liveness changed since the last heal, so
	// index placement may legitimately lag the oracle until a refresh.
	churned       bool
	baseGoroutine int
}

func newHarness(cfg Config) (*harness, error) {
	pri, err := cfg.newDeployment("primary", cfg.Cache)
	if err != nil {
		return nil, err
	}
	h := &harness{
		cfg:           cfg,
		docs:          make(map[string]*corpus.Document),
		pri:           pri,
		failed:        make(map[string]bool),
		shared:        make(map[string]bool),
		docOwner:      make(map[string]string),
		baseGoroutine: runtime.NumGoroutine(),
	}
	for _, d := range docPool(cfg) {
		h.docs[string(d.ID)] = d
	}
	if cfg.Twin {
		twin, err := cfg.newDeployment("twin", false)
		if err != nil {
			return nil, err
		}
		h.twin = twin
	}
	return h, nil
}

func (h *harness) deployments() []*deployment {
	if h.twin != nil {
		return []*deployment{h.pri, h.twin}
	}
	return []*deployment{h.pri}
}

func (h *harness) faultsActive() bool {
	return h.loss > 0 || len(h.failed) > 0 || h.pri.sim.PendingDrops() > 0
}

// quiescent reports whether the expensive oracle-placement checks are valid:
// no fault is active and nothing has perturbed the ring since the last heal.
func (h *harness) quiescent() bool {
	return !h.taint && !h.churned && !h.faultsActive()
}

// Execute runs ops (plus the mandatory final sweep) against a fresh harness
// and returns the first invariant violation, or nil.
func Execute(cfg Config, ops []Op) *Violation {
	v, _ := ExecuteDigest(cfg, ops)
	return v
}

// ExecuteDigest is Execute plus a digest of the final distributed state —
// every deployment's primary and replica snapshots and query-history
// multisets folded through FNV-1a. Two runs of the same configuration and
// sequence must return the same digest bit for bit; the mass-churn soak
// asserts exactly that on the virtual clock.
func ExecuteDigest(cfg Config, ops []Op) (*Violation, uint64) {
	cfg = cfg.withDefaults()
	h, err := newHarness(cfg)
	if err != nil {
		// Deployment construction is deterministic; failing to build is a
		// harness bug, not a system-under-test bug.
		panic(fmt.Sprintf("chaos: building deployment: %v", err))
	}
	i := 0
	for i < len(ops) {
		// Consecutive read ops run as one concurrent batch (bounded by
		// Parallelism); everything else executes one at a time.
		if j := i + readRun(ops[i:]); j > i && cfg.Parallelism > 1 {
			if v := h.runBatch(cfg.Seed, i, ops[i:j]); v != nil {
				return v, h.digest()
			}
			i = j
			continue
		}
		if v := h.runOne(cfg.Seed, i, ops[i]); v != nil {
			return v, h.digest()
		}
		i++
	}
	return h.finalSweep(cfg.Seed, len(ops)), h.digest()
}

// digest folds the observable distributed state of every deployment into one
// order-insensitive-where-it-must-be value: snapshots are already sorted, and
// history multisets are folded in sorted key order so concurrent read batches
// (which may interleave cache fills differently) cannot perturb it.
func (h *harness) digest() uint64 {
	hash := fnv.New64a()
	for _, d := range h.deployments() {
		fmt.Fprintf(hash, "deployment|%s\n", d.label)
		for _, e := range d.net.PrimarySnapshot() {
			fmt.Fprintf(hash, "p|%s|%s|%s|%s|%d|%d\n",
				e.Peer, e.Term, e.Posting.Doc, e.Posting.Owner, e.Posting.Freq, e.Posting.DocLen)
		}
		for _, e := range d.net.ReplicaSnapshot() {
			fmt.Fprintf(hash, "r|%s|%s|%s|%s|%d|%d\n",
				e.Peer, e.Term, e.Posting.Doc, e.Posting.Owner, e.Posting.Freq, e.Posting.DocLen)
		}
		hist := d.net.HistoryMultiset()
		addrs := make([]string, 0, len(hist))
		for a := range hist {
			addrs = append(addrs, string(a))
		}
		sort.Strings(addrs)
		for _, a := range addrs {
			m := hist[simnet.Addr(a)]
			keys := make([]string, 0, len(m))
			for k := range m {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			for _, k := range keys {
				fmt.Fprintf(hash, "h|%s|%s|%d\n", a, k, m[k])
			}
		}
	}
	return hash.Sum64()
}

// readRun returns the length of the leading run of read-only ops.
func readRun(ops []Op) int {
	n := 0
	for _, op := range ops {
		if !op.Kind.read() {
			break
		}
		n++
	}
	return n
}

// runOne applies a single op to every deployment and checks the per-step
// invariants.
func (h *harness) runOne(seed int64, step int, op Op) *Violation {
	before := h.faultsActive()
	if !h.effective(op) {
		// Precondition no longer holds (e.g. the shrinker removed the share
		// this unshare depended on): deterministic no-op, checks still run.
		h.sabotage()
		return h.checkStep(seed, step, &op, before)
	}
	if op.Kind == KHeal {
		if v := h.heal(); v != nil {
			return h.pin(v, seed, step, op)
		}
		h.sabotage()
		return h.checkStep(seed, step, &op, false)
	}
	outs := make([]opOut, 0, 2)
	for _, d := range h.deployments() {
		d.run(func() { outs = append(outs, h.apply(d, op)) })
	}
	h.updateModel(op, outs[0].err == nil)
	h.sabotage()
	faultCtx := before || h.faultsActive()
	if v := h.checkOpOutcome(op, outs, faultCtx); v != nil {
		return h.pin(v, seed, step, op)
	}
	return h.checkStep(seed, step, &op, faultCtx)
}

// runBatch applies a run of read ops concurrently, then checks each op's
// outcome and the per-step invariants once.
func (h *harness) runBatch(seed int64, start int, batch []Op) *Violation {
	faultCtx := h.faultsActive() // read ops cannot change the fault model
	type slot struct{ outs []opOut }
	slots := make([]slot, len(batch))
	sem := make(chan struct{}, h.cfg.Parallelism)
	done := make(chan int, len(batch))
	for i := range batch {
		sem <- struct{}{}
		go func(i int) {
			defer func() { <-sem; done <- i }()
			if !h.effective(batch[i]) {
				// e.g. a read op whose origin peer has since left the network:
				// deterministic no-op, exactly as in the sequential path.
				return
			}
			outs := make([]opOut, 0, 2)
			for _, d := range h.deployments() {
				d.run(func() { outs = append(outs, h.apply(d, batch[i])) })
			}
			slots[i].outs = outs
		}(i)
	}
	for range batch {
		<-done
	}
	h.sabotage()
	for i, op := range batch {
		if v := h.checkOpOutcome(op, slots[i].outs, faultCtx); v != nil {
			return h.pin(v, seed, start+i, op)
		}
	}
	last := batch[len(batch)-1]
	return h.checkStep(seed, start+len(batch)-1, &last, faultCtx)
}

func (h *harness) sabotage() {
	if h.cfg.Sabotage != nil {
		h.cfg.Sabotage(h.pri.net)
	}
}

func (h *harness) pin(v *Violation, seed int64, step int, op Op) *Violation {
	v.Seed = seed
	v.Step = step
	v.Op = op.String()
	return v
}

// checkStep runs the always-on invariants (telemetry conservation, index
// ledger) on every deployment, plus the quiescent oracle checks on epoch
// boundaries.
func (h *harness) checkStep(seed int64, step int, op *Op, faultCtx bool) *Violation {
	for _, d := range h.deployments() {
		if v := checkStats(d, len(h.failed), len(d.nodes)-len(h.failed)); v != nil {
			return h.pinMaybe(v, seed, step, op)
		}
		if v := checkLedger(d, faultCtx); v != nil {
			return h.pinMaybe(v, seed, step, op)
		}
	}
	epoch := (step+1)%h.cfg.EpochEvery == 0
	if epoch && h.quiescent() {
		for _, d := range h.deployments() {
			if v := checkStranded(d); v != nil {
				return h.pinMaybe(v, seed, step, op)
			}
			if v := checkPlacement(d); v != nil {
				return h.pinMaybe(v, seed, step, op)
			}
		}
	}
	if epoch && h.twin != nil {
		if v := checkHistories(h.pri, h.twin); v != nil {
			return h.pinMaybe(v, seed, step, op)
		}
	}
	return nil
}

func (h *harness) pinMaybe(v *Violation, seed int64, step int, op *Op) *Violation {
	v.Seed = seed
	v.Step = step
	if op != nil {
		v.Op = op.String()
	}
	return v
}

// finalSweep heals the network, withdraws every live document, and verifies
// nothing leaked: the global index must be empty modulo the fault ledger, and
// the goroutine count must settle back to the baseline.
func (h *harness) finalSweep(seed int64, step int) *Violation {
	if v := h.heal(); v != nil {
		return h.pinMaybe(v, seed, step, nil)
	}
	for _, d := range h.deployments() {
		if v := checkStranded(d); v != nil {
			return h.pinMaybe(v, seed, step, nil)
		}
		if v := checkPlacement(d); v != nil {
			return h.pinMaybe(v, seed, step, nil)
		}
	}
	var docs []string
	for id := range h.shared {
		docs = append(docs, id)
	}
	sort.Strings(docs)
	for _, id := range docs {
		for _, d := range h.deployments() {
			var err error
			d.run(func() { err = d.net.Unshare(index.DocID(id)) })
			if err != nil {
				return h.pinMaybe(&Violation{
					Invariant: "leaks",
					Msg:       fmt.Sprintf("%s: unshare %s on healed network: %v", d.label, id, err),
				}, seed, step, nil)
			}
		}
		delete(h.shared, id)
	}
	for _, d := range h.deployments() {
		if v := checkEmpty(d); v != nil {
			return h.pinMaybe(v, seed, step, nil)
		}
	}
	if v := h.checkGoroutines(); v != nil {
		return h.pinMaybe(v, seed, step, nil)
	}
	return nil
}

// checkGoroutines waits briefly for transient fan-out workers to exit, then
// compares against the pre-run baseline (invariant 5).
func (h *harness) checkGoroutines() *Violation {
	const slack = 4
	var now int
	for i := 0; i < 100; i++ {
		now = runtime.NumGoroutine()
		if now <= h.baseGoroutine+slack {
			return nil
		}
		runtime.Gosched()
		time.Sleep(2 * time.Millisecond)
	}
	return &Violation{
		Invariant: "leaks",
		Msg: fmt.Sprintf("goroutines did not settle after unshare-all: %d now vs %d at start",
			now, h.baseGoroutine),
	}
}

// docPool builds the deterministic shareable corpus. Term selection squares
// the uniform draw so low-numbered vocabulary words appear in many documents
// — the contended, high-DF regime where index consistency bugs live.
func docPool(cfg Config) []*corpus.Document {
	rng := rand.New(rand.NewSource(cfg.Seed ^ 0x5eed1e55))
	vocab := make([]string, cfg.Vocab)
	for i := range vocab {
		vocab[i] = fmt.Sprintf("w%02d", i)
	}
	docs := make([]*corpus.Document, 0, cfg.Docs)
	for i := 0; i < cfg.Docs; i++ {
		tf := make(map[string]int)
		for j, n := 0, 5+rng.Intn(6); j < n; j++ {
			t := vocab[int(float64(cfg.Vocab)*rng.Float64()*rng.Float64())]
			tf[t] += 1 + rng.Intn(5)
		}
		docs = append(docs, corpus.NewDocument(index.DocID(fmt.Sprintf("doc%02d", i)), tf))
	}
	return docs
}
