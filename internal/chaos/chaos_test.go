package chaos

import (
	"flag"
	"fmt"
	"strings"
	"testing"

	"github.com/spritedht/sprite/internal/core"
)

var (
	flagSeed = flag.Int64("chaos.seed", 0,
		"run only this seed — replay a reported violation")
	flagSteps = flag.Int("chaos.steps", 0,
		"operations per run (0 = per-test default)")
)

func steps(def int) int {
	if *flagSteps > 0 {
		return *flagSteps
	}
	return def
}

// tenSeeds is the fixed acceptance seed set; -chaos.seed narrows to one.
func tenSeeds() []int64 {
	if *flagSeed != 0 {
		return []int64{*flagSeed}
	}
	return []int64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
}

// firstSeeds returns the first n acceptance seeds. Under -chaos.seed the
// list is the single overridden seed, so every test replays it.
func firstSeeds(n int) []int64 {
	s := tenSeeds()
	if len(s) < n {
		return s
	}
	return s[:n]
}

func report(t *testing.T, res Result) {
	t.Helper()
	if res.Violation == nil {
		return
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%v\n", res.Violation)
	if res.Repro == nil {
		fmt.Fprintf(&b, "violation did not reproduce on replay (schedule-dependent); full sequence:\n")
		b.WriteString("  re-run: go test ./internal/chaos -run TestChaos -chaos.seed=")
		fmt.Fprintf(&b, "%d -chaos.steps=%d\n", res.Seed, res.Steps)
	} else {
		fmt.Fprintf(&b, "shrunk to %d ops in %d replays:\n", len(res.Repro), res.Replays)
		for i, op := range res.Repro {
			fmt.Fprintf(&b, "  %3d. %s\n", i, op)
		}
		fmt.Fprintf(&b, "re-run: go test ./internal/chaos -run TestChaos -chaos.seed=%d -chaos.steps=%d\n",
			res.Seed, res.Steps)
	}
	t.Error(b.String())
}

// TestChaos is the main matrix: ten fixed seeds, sequential and concurrent
// read execution, caches on and off, with a cache-disabled twin checking
// transparency and fault operations (fail/recover/join/heal) enabled.
func TestChaos(t *testing.T) {
	for _, seed := range tenSeeds() {
		for _, par := range []int{1, 8} {
			for _, cache := range []bool{false, true} {
				name := fmt.Sprintf("seed=%d/par=%d/cache=%v", seed, par, cache)
				t.Run(name, func(t *testing.T) {
					report(t, Run(Config{
						Seed:              seed,
						Steps:             steps(120),
						Parallelism:       par,
						Cache:             cache,
						Twin:              true,
						FaultOps:          true,
						ReplicationFactor: 2,
						HotTermDF:         6,
					}))
				})
			}
		}
	}
}

// TestChaosFaulty drops the twin and adds the probabilistic fault ops —
// packet loss and scheduled call drops — exercising the taint gating and the
// fault ledger under message-level failures. It runs sequentially: loss draws
// from the network's shared per-call RNG, so concurrent fan-out consumes it in
// schedule-dependent order and a lossy run would not replay (and so could not
// shrink). Concurrency coverage lives in TestChaos, whose twin mode excludes
// the probabilistic ops.
func TestChaosFaulty(t *testing.T) {
	for _, seed := range firstSeeds(5) {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			report(t, Run(Config{
				Seed:              seed,
				Steps:             steps(120),
				Parallelism:       1,
				Cache:             true,
				FaultOps:          true,
				ReplicationFactor: 2,
				HotTermDF:         6,
			}))
		})
	}
}

// TestChaosNoReplication runs the paper's baseline configuration (no
// replication, no advisory) to keep the un-replicated code paths covered.
func TestChaosNoReplication(t *testing.T) {
	for _, seed := range firstSeeds(3) {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			report(t, Run(Config{
				Seed:  seed,
				Steps: steps(120),
				Twin:  true,
				Cache: true,
			}))
		})
	}
}

// TestChaosVirtualTime runs the matrix's first seeds on the deterministic
// event clock: the same invariants must hold when every timeout, backoff,
// and cache TTL reads virtual time, and two runs of the same seed must agree
// on the outcome exactly (chaos on virtual time is what makes timing-
// dependent violations replayable).
func TestChaosVirtualTime(t *testing.T) {
	for _, seed := range firstSeeds(3) {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			cfg := Config{
				Seed:              seed,
				Steps:             steps(120),
				Parallelism:       8,
				Cache:             true,
				Twin:              true,
				FaultOps:          true,
				ReplicationFactor: 2,
				HotTermDF:         6,
				VirtualTime:       true,
			}
			res := Run(cfg)
			report(t, res)
			again := Run(cfg)
			if (res.Violation == nil) != (again.Violation == nil) || res.Steps != again.Steps {
				t.Errorf("virtual-time chaos not reproducible: run1 {steps=%d violation=%v} run2 {steps=%d violation=%v}",
					res.Steps, res.Violation, again.Steps, again.Violation)
			}
		})
	}
}

// TestChaosMassChurnSoak is the ring-turnover soak: a quiet workload (no
// random fault ops) with a mass-join wave and a mass-leave wave spliced in,
// turning over more than 30% of the initial ring in two bursts. Placement
// after each burst is entirely the repair subsystem's doing — the heal path
// runs no owner refresh sweep — and the whole soak runs twice on the virtual
// clock, asserting the final distributed state is bit-identical across runs.
func TestChaosMassChurnSoak(t *testing.T) {
	cfg := Config{
		Seed:              42,
		Steps:             steps(60),
		Peers:             10,
		Parallelism:       1,
		Cache:             true,
		ReplicationFactor: 2,
		HotTermDF:         6,
		VirtualTime:       true,
	}
	base := Generate(cfg) // FaultOps off: shares, searches, learning, refreshes
	joiners := []string{"j0", "j1", "j2"}
	leavers := []string{"c1", "c4", "c7"}
	if turnover := len(joiners) + len(leavers); turnover*100 < 30*cfg.Peers {
		t.Fatalf("soak turns over %d peers of %d, want >= 30%%", turnover, cfg.Peers)
	}
	ops := append([]Op(nil), base[:20]...)
	ops = append(ops, Op{Kind: KMassJoin, Terms: joiners})
	ops = append(ops, base[20:40]...)
	ops = append(ops, Op{Kind: KMassLeave, Terms: leavers})
	ops = append(ops, Op{Kind: KHeal})
	ops = append(ops, base[40:]...)

	v1, d1 := ExecuteDigest(cfg, ops)
	if v1 != nil {
		t.Fatalf("mass-churn soak violated an invariant: %v", v1)
	}
	v2, d2 := ExecuteDigest(cfg, ops)
	if v2 != nil {
		t.Fatalf("mass-churn soak not deterministic: second run violated: %v", v2)
	}
	if d1 != d2 {
		t.Fatalf("mass-churn soak not bit-reproducible: digests %#x vs %#x", d1, d2)
	}
}

// TestChaosSimilarSeedReplay pins the similarity read op end to end: a fixed
// seed whose generated sequence contains similar ops runs violation-free on
// the virtual clock — oracle agreement and cache transparency included — and
// the whole execution replays to a bit-identical state digest, so any future
// similarity regression shows up as either a violation or a digest drift.
func TestChaosSimilarSeedReplay(t *testing.T) {
	cfg := Config{
		Seed:              7,
		Steps:             steps(120),
		Parallelism:       4,
		Cache:             true,
		Twin:              true,
		FaultOps:          true,
		ReplicationFactor: 2,
		HotTermDF:         6,
		VirtualTime:       true,
	}
	ops := Generate(cfg)
	similar := 0
	for _, op := range ops {
		if op.Kind == KSimilar {
			similar++
		}
	}
	if similar == 0 {
		t.Fatalf("seed %d generated no similar ops in %d steps", cfg.Seed, len(ops))
	}
	v1, d1 := ExecuteDigest(cfg, ops)
	if v1 != nil {
		t.Fatalf("similar seed run violated an invariant: %v", v1)
	}
	v2, d2 := ExecuteDigest(cfg, ops)
	if v2 != nil {
		t.Fatalf("replay violated an invariant: %v", v2)
	}
	if d1 != d2 {
		t.Fatalf("similar seed not bit-reproducible: digests %#x vs %#x", d1, d2)
	}
}

// TestChaosMutationCatchesStrandedEntry injects the failure mode the handoff
// protocol exists to prevent: a primary entry teleported to a peer the
// overlay never routes its term to, with the owner's record rewritten to
// match so the ledger checker stays blind. The stranded-entry invariant must
// catch it and shrink the sequence to a small reproduction.
func TestChaosMutationCatchesStrandedEntry(t *testing.T) {
	sabotage := func(n *core.Network) {
		ps := n.PrimarySnapshot()
		if len(ps) == 0 {
			return
		}
		e := ps[0]
		for _, p := range n.Peers() {
			if p.Addr() != e.Peer {
				n.RelocatePrimaryEntry(e.Peer, p.Addr(), e.Term, e.Posting.Doc)
				return
			}
		}
	}
	res := Run(Config{
		Seed:       5,
		Steps:      steps(60),
		EpochEvery: 1, // quiescent run: stranded entries are checked every step
		Sabotage:   sabotage,
	})
	if res.Violation == nil {
		t.Fatal("sabotaged run passed: the invariant registry is blind to stranded entries")
	}
	if res.Violation.Invariant != "stranded" {
		t.Errorf("violation invariant = %q, want stranded (%v)", res.Violation.Invariant, res.Violation)
	}
	if res.Repro == nil {
		t.Fatalf("violation did not reproduce on replay: %v", res.Violation)
	}
	if len(res.Repro) > 20 {
		t.Errorf("repro not minimal: %d ops, want <= 20", len(res.Repro))
	}
	t.Logf("caught %v; shrunk to %d ops in %d replays", res.Violation, len(res.Repro), res.Replays)
}

// TestChaosMutationCatchesReplicaBug is the harness's own acceptance test: a
// deliberately injected bug — a replica entry silently vanishing after every
// operation — must be caught by the invariant registry and shrunk to a small
// reproduction. If this test fails, the chaos harness is blind.
func TestChaosMutationCatchesReplicaBug(t *testing.T) {
	sabotage := func(n *core.Network) {
		if rs := n.ReplicaSnapshot(); len(rs) > 0 {
			e := rs[0]
			n.DropReplicaEntry(e.Peer, e.Term, e.Posting.Doc)
		}
	}
	res := Run(Config{
		Seed:              3,
		Steps:             steps(60),
		ReplicationFactor: 2,
		EpochEvery:        1, // quiescent run: placement is checked every step
		Sabotage:          sabotage,
	})
	if res.Violation == nil {
		t.Fatal("sabotaged run passed: the invariant registry is blind to replica loss")
	}
	if res.Violation.Invariant != "placement" {
		t.Errorf("violation invariant = %q, want placement (%v)", res.Violation.Invariant, res.Violation)
	}
	if res.Repro == nil {
		t.Fatalf("violation did not reproduce on replay: %v", res.Violation)
	}
	if len(res.Repro) > 20 {
		t.Errorf("repro not minimal: %d ops, want <= 20", len(res.Repro))
	}
	t.Logf("caught %v; shrunk to %d ops in %d replays", res.Violation, len(res.Repro), res.Replays)
}

// TestGenerateDeterministic pins generation to the seed alone.
func TestGenerateDeterministic(t *testing.T) {
	cfg := Config{Seed: 7, Steps: 200, FaultOps: true}
	a, b := Generate(cfg), Generate(cfg)
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].String() != b[i].String() {
			t.Fatalf("op %d differs: %s vs %s", i, a[i], b[i])
		}
	}
}
