package chaos

import (
	"errors"
	"fmt"

	"github.com/spritedht/sprite/internal/chord"
	"github.com/spritedht/sprite/internal/chordid"
	"github.com/spritedht/sprite/internal/core"
	"github.com/spritedht/sprite/internal/index"
	"github.com/spritedht/sprite/internal/ir"
	"github.com/spritedht/sprite/internal/simnet"
)

// This file is the invariant registry. Each checker returns a *Violation
// with Invariant and Msg set (the harness pins Seed/Step/Op) or nil.
//
// To add an invariant: write a checker over deployment introspection
// (core.Network's PrimarySnapshot/ReplicaSnapshot/DocIndexInfo/ServedPostings
// and simnet.Network's Stats), return a named *Violation, and call it from
// harness.checkStep (per-step), checkPlacement's call sites (quiescent
// points), or finalSweep. See DESIGN.md § Correctness tooling.

// checkStats verifies telemetry conservation (invariant 4): transport
// counters are monotone and internally balanced, and the transport's view of
// peer liveness matches the harness model.
func checkStats(d *deployment, wantFailed, wantAlive int) *Violation {
	cur := d.sim.Stats()
	bad := func(format string, args ...any) *Violation {
		return &Violation{Invariant: "telemetry", Msg: d.label + ": " + fmt.Sprintf(format, args...)}
	}
	prev := d.prev
	mono := []struct {
		name     string
		was, now int64
	}{
		{"Calls", prev.Calls, cur.Calls},
		{"Failed", prev.Failed, cur.Failed},
		{"Dropped", prev.Dropped, cur.Dropped},
		{"Expired", prev.Expired, cur.Expired},
		{"Bytes", prev.Bytes, cur.Bytes},
		{"LocalBypass", prev.LocalBypass, cur.LocalBypass},
	}
	for _, m := range mono {
		if m.now < m.was {
			return bad("counter %s went backwards: %d -> %d", m.name, m.was, m.now)
		}
	}
	for t, was := range prev.CallsByType {
		if cur.CallsByType[t] < was {
			return bad("CallsByType[%s] went backwards: %d -> %d", t, was, cur.CallsByType[t])
		}
	}
	var byType, byDest, bytesByType int64
	for _, v := range cur.CallsByType {
		byType += v
	}
	for _, v := range cur.CallsByDest {
		byDest += v
	}
	for _, v := range cur.BytesByType {
		bytesByType += v
	}
	if cur.Calls != byType {
		return bad("Calls=%d but sum(CallsByType)=%d", cur.Calls, byType)
	}
	if cur.Calls != byDest {
		return bad("Calls=%d but sum(CallsByDest)=%d", cur.Calls, byDest)
	}
	if cur.Bytes != bytesByType {
		return bad("Bytes=%d but sum(BytesByType)=%d", cur.Bytes, bytesByType)
	}
	if cur.Failed+cur.Dropped > cur.Calls {
		return bad("Failed(%d)+Dropped(%d) exceeds Calls(%d)", cur.Failed, cur.Dropped, cur.Calls)
	}
	if cur.PeersFailed != wantFailed {
		return bad("PeersFailed=%d, model says %d", cur.PeersFailed, wantFailed)
	}
	if cur.PeersAlive != wantAlive {
		return bad("PeersAlive=%d, model says %d", cur.PeersAlive, wantAlive)
	}
	d.prev = cur
	return nil
}

type termDoc struct {
	term string
	doc  index.DocID
}

// checkLedger verifies index/replica consistency (invariant 1a) on every
// step, faults active or not:
//
//   - Every live document's indexed term has its primary entry exactly where
//     the owner's publishedAt record says (owners only record successful
//     publishes, entries only vanish through acknowledged withdrawals — so
//     this direction holds even mid-fault).
//   - Every primary entry is explained: the owner indexes it there, or it is
//     on a stale-withdrawal list, or the fault ledger excuses it. An
//     unexplained entry while no fault is active is a violation; with faults
//     active it enters the ledger (a real system's crash garbage) and stays
//     excused.
//   - A term the advisory banned for a live document must have NO surviving
//     primary entry — never excusable (the stale-advisory bug).
//   - Replica entries must correspond to live (term, doc) pairs or be in the
//     ledger.
func checkLedger(d *deployment, faultCtx bool) *Violation {
	bad := func(format string, args ...any) *Violation {
		return &Violation{Invariant: "index_consistency", Msg: d.label + ": " + fmt.Sprintf(format, args...)}
	}
	expected := make(map[entryKey]bool)  // must exist
	explained := make(map[entryKey]bool) // allowed to exist
	banned := make(map[termDoc]bool)
	live := make(map[termDoc]bool)
	for _, id := range d.net.Documents() {
		di, ok := d.net.DocIndexInfo(id)
		if !ok {
			continue
		}
		for _, t := range di.Terms {
			live[termDoc{t, id}] = true
			if at, ok := di.PublishedAt[t]; ok {
				k := entryKey{peer: at, term: t, doc: id}
				expected[k] = true
				explained[k] = true
			}
		}
		for t, holders := range di.Stale {
			for _, a := range holders {
				// A stale holder may be carrying the withdrawn copy in either
				// role: its primary index (an unreached indexing peer) or its
				// replica index (a replica drop that failed and was reported
				// back for stale-list retry).
				explained[entryKey{peer: a, term: t, doc: id}] = true
				explained[entryKey{replica: true, peer: a, term: t, doc: id}] = true
				// The holder also still owes withdrawals to its own recorded
				// push set: those replicas are transitively pending, removed
				// when the stale retry reaches the holder and its replicateDrop
				// fans out.
				for _, r := range d.net.ReplicaLocsAt(a, t, id) {
					explained[entryKey{replica: true, peer: r, term: t, doc: id}] = true
				}
			}
		}
		for _, b := range di.Banned {
			banned[termDoc{b, id}] = true
		}
	}
	actual := make(map[entryKey]bool)
	for _, e := range d.net.PrimarySnapshot() {
		k := entryKey{peer: e.Peer, term: e.Term, doc: e.Posting.Doc}
		actual[k] = true
		if explained[k] || d.tolerated[k] {
			// Stale-listed copies of a banned term are legitimate: the ban
			// removed the recorded primary, while old copies from failed
			// migration withdrawals await their stale-list retry.
			continue
		}
		if banned[termDoc{e.Term, e.Posting.Doc}] {
			// Never excused, even during faults: the advisory commits a ban
			// only when the recorded entry's removal succeeded, and every
			// other copy is stale-listed — an unexplained survivor means the
			// ban outran the withdrawal (the stale-advisory bug).
			return bad("banned term %q of live doc %s still has a primary entry at %s (stale advisory)",
				e.Term, e.Posting.Doc, e.Peer)
		}
		if faultCtx {
			d.tolerated[k] = true
			continue
		}
		return bad("unexplained primary entry (%s, %q, %s) with no fault active",
			e.Peer, e.Term, e.Posting.Doc)
	}
	for k := range expected {
		if !actual[k] {
			if _, ok := d.net.Peer(k.peer); !ok {
				// The recorded holder left the network gracefully while the
				// owner was unreachable: the entry lives on at the leave-time
				// successor (ledgered there), and the record re-anchors when
				// the owner's reclaim sweep next runs. A record pointing at a
				// peer that still exists, though, must always be backed.
				continue
			}
			return bad("indexed term %q of %s missing its primary entry at %s",
				k.term, k.doc, k.peer)
		}
	}
	zombies := d.toleratedPrimaryTermDocs()
	for _, e := range d.net.ReplicaSnapshot() {
		k := entryKey{replica: true, peer: e.Peer, term: e.Term, doc: e.Posting.Doc}
		if live[termDoc{e.Term, e.Posting.Doc}] || explained[k] || d.tolerated[k] {
			continue
		}
		if zombies[termDoc{e.Term, e.Posting.Doc}] {
			// A descendant of ledgered garbage: anti-entropy keeps a holder's
			// replica set in sync with its primary arc, so a tolerated zombie
			// primary legitimately re-replicates until a withdrawal reaches it.
			d.tolerated[k] = true
			continue
		}
		if faultCtx {
			d.tolerated[k] = true
			continue
		}
		return bad("unexplained replica entry (%s, %q, %s) with no fault active",
			e.Peer, e.Term, e.Posting.Doc)
	}
	return nil
}

// toleratedPrimaryTermDocs returns the (term, doc) pairs that have a primary
// copy in the fault ledger. Replica copies of such pairs are excusable
// wherever they surface: the §7 anti-entropy exchange re-replicates whatever
// a holder's primary arc contains, garbage included.
func (d *deployment) toleratedPrimaryTermDocs() map[termDoc]bool {
	out := make(map[termDoc]bool)
	for k := range d.tolerated {
		if !k.replica {
			out[termDoc{k.term, k.doc}] = true
		}
	}
	return out
}

// checkStranded verifies, at quiescent points, that no primary entry sits on
// a peer other than its term's ring oracle owner. It scans from the entry
// side — unlike checkPlacement's ledger-side walk it also catches entries
// whose owner record was corrupted to agree with a wrong placement (the
// stranded-entry mutation), and leftovers of documents no longer shared.
// Entries in the fault ledger are excused.
func checkStranded(d *deployment) *Violation {
	for _, e := range d.net.PrimarySnapshot() {
		if d.tolerated[entryKey{peer: e.Peer, term: e.Term, doc: e.Posting.Doc}] {
			continue
		}
		node, ok := d.ring.Owner(chordid.HashKey(e.Term))
		if !ok {
			return &Violation{Invariant: "stranded",
				Msg: fmt.Sprintf("%s: no oracle owner for term %q", d.label, e.Term)}
		}
		if node.Addr() != e.Peer {
			return &Violation{Invariant: "stranded",
				Msg: fmt.Sprintf("%s: primary entry (%s, %q, %s) stranded: oracle owner is %s",
					d.label, e.Peer, e.Term, e.Posting.Doc, node.Addr())}
		}
	}
	return nil
}

// checkPlacement verifies oracle index placement (invariant 1b) at quiescent
// points: every live document's terms sit with the ring's oracle owner, the
// owner holds the primary entry, replicas exist on the owner's first
// ReplicationFactor successors, and no stale withdrawals are pending.
func checkPlacement(d *deployment) *Violation {
	bad := func(format string, args ...any) *Violation {
		return &Violation{Invariant: "placement", Msg: d.label + ": " + fmt.Sprintf(format, args...)}
	}
	primary := make(map[entryKey]bool)
	for _, e := range d.net.PrimarySnapshot() {
		primary[entryKey{peer: e.Peer, term: e.Term, doc: e.Posting.Doc}] = true
	}
	replica := make(map[entryKey]bool)
	for _, e := range d.net.ReplicaSnapshot() {
		replica[entryKey{replica: true, peer: e.Peer, term: e.Term, doc: e.Posting.Doc}] = true
	}
	rf := d.net.Config().ReplicationFactor
	for _, id := range d.net.Documents() {
		di, ok := d.net.DocIndexInfo(id)
		if !ok {
			continue
		}
		if len(di.Stale) > 0 {
			return bad("doc %s has stale withdrawals pending on a healed network: %v", id, di.Stale)
		}
		for _, t := range di.Terms {
			node, ok := d.ring.Owner(chordid.HashKey(t))
			if !ok {
				return bad("no oracle owner for term %q", t)
			}
			at := di.PublishedAt[t]
			if at != node.Addr() {
				return bad("term %q of %s published at %s, oracle owner is %s", t, id, at, node.Addr())
			}
			if !primary[entryKey{peer: at, term: t, doc: id}] {
				return bad("term %q of %s missing primary entry at oracle owner %s", t, id, at)
			}
			for _, succ := range successorsOf(d.ring, node, rf) {
				if !replica[entryKey{replica: true, peer: succ, term: t, doc: id}] {
					return bad("term %q of %s missing replica at %s (successor of %s)",
						t, id, succ, node.Addr())
				}
			}
		}
	}
	return nil
}

// successorsOf returns the first rf ring successors of node, excluding the
// node itself — the §7 replica set the indexing peer pushes to.
func successorsOf(ring *chord.Ring, node *chord.Node, rf int) []simnet.Addr {
	if rf <= 0 {
		return nil
	}
	nodes := ring.Nodes() // sorted by ring position
	idx := -1
	for i, n := range nodes {
		if n.Addr() == node.Addr() {
			idx = i
			break
		}
	}
	if idx < 0 {
		return nil
	}
	out := make([]simnet.Addr, 0, rf)
	for i := 1; i < len(nodes) && len(out) < rf; i++ {
		succ := nodes[(idx+i)%len(nodes)]
		if succ.Addr() == node.Addr() {
			continue
		}
		out = append(out, succ.Addr())
	}
	return out
}

// checkHistories verifies cache transparency's history half (invariant 3):
// the primary and twin cached the same query multiset at every peer,
// regardless of cache hits short-circuiting network fetches.
func checkHistories(pri, twin *deployment) *Violation {
	a, b := pri.net.HistoryMultiset(), twin.net.HistoryMultiset()
	for addr, am := range a {
		bm := b[addr]
		for q, n := range am {
			if bm[q] != n {
				return &Violation{Invariant: "cache_transparency",
					Msg: fmt.Sprintf("history of %s: primary cached %q ×%d, twin ×%d", addr, q, n, bm[q])}
			}
		}
	}
	for addr, bm := range b {
		am := a[addr]
		for q, n := range bm {
			if am[q] != n {
				return &Violation{Invariant: "cache_transparency",
					Msg: fmt.Sprintf("history of %s: twin cached %q ×%d, primary ×%d", addr, q, n, am[q])}
			}
		}
	}
	return nil
}

// checkEmpty verifies invariant 5's entry half after the final unshare-all:
// nothing survives in any index except entries the fault ledger excuses.
func checkEmpty(d *deployment) *Violation {
	if docs := d.net.Documents(); len(docs) > 0 {
		return &Violation{Invariant: "leaks",
			Msg: fmt.Sprintf("%s: %d documents still shared after unshare-all: %v", d.label, len(docs), docs)}
	}
	for _, e := range d.net.PrimarySnapshot() {
		k := entryKey{peer: e.Peer, term: e.Term, doc: e.Posting.Doc}
		if !d.tolerated[k] {
			return &Violation{Invariant: "leaks",
				Msg: fmt.Sprintf("%s: leaked primary entry (%s, %q, %s) after unshare-all", d.label, e.Peer, e.Term, e.Posting.Doc)}
		}
	}
	zombies := d.toleratedPrimaryTermDocs()
	for _, e := range d.net.ReplicaSnapshot() {
		k := entryKey{replica: true, peer: e.Peer, term: e.Term, doc: e.Posting.Doc}
		if !d.tolerated[k] && !zombies[termDoc{e.Term, e.Posting.Doc}] {
			return &Violation{Invariant: "leaks",
				Msg: fmt.Sprintf("%s: leaked replica entry (%s, %q, %s) after unshare-all", d.label, e.Peer, e.Term, e.Posting.Doc)}
		}
	}
	return nil
}

// oracleSearch recomputes a search's expected ranking from introspected
// ground truth (invariant 2): resolve each distinct term to the ring's
// oracle owner, take exactly what that peer would serve (primary or replica
// fallback), and fold contributions in the same order with the same
// accumulator the real query path uses — so agreement is bit-exact, not
// approximate. Terms in skip (reported lost by the search) are excluded.
func oracleSearch(d *deployment, terms []string, k int, skip map[string]bool) ir.RankedList {
	qtf := make(map[string]int, len(terms))
	for _, t := range terms {
		qtf[t]++
	}
	n := d.net.Config().SurrogateN
	acc := ir.NewAccumulator()
	seen := make(map[string]bool, len(terms))
	for _, term := range terms {
		if seen[term] {
			continue
		}
		seen[term] = true
		if skip[term] {
			continue
		}
		node, ok := d.ring.Owner(chordid.HashKey(term))
		if !ok {
			continue
		}
		ps, _, ok := d.net.ServedPostings(node.Addr(), term)
		if !ok || len(ps) == 0 {
			continue
		}
		df := len(ps)
		wq := ir.QueryWeight(qtf[term], len(terms), n, df)
		for _, p := range ps {
			acc.Accumulate(p.Doc, wq*ir.Weight(p.NormFreq(), n, df), p.DocLen)
		}
	}
	return acc.Ranked().Top(k)
}

// oracleSimilar recomputes a similarity query's expected ranking from
// introspected ground truth: the query document's sketch and routing terms
// from its owner's state, candidate postings from what each routing term's
// indexing peer would serve right now, folded in routing-term order through
// the same SketchRanker the real path uses — bit-exact agreement, not
// approximate. Terms in skip (reported lost by the search) are excluded.
// Valid for Refine = 0 configurations, which is what chaos deployments run.
func oracleSimilar(d *deployment, doc index.DocID, k int, skip map[string]bool) ir.RankedList {
	qsketch, ok := d.net.DocSketch(doc)
	if !ok {
		return nil
	}
	route, err := d.net.SimilarRouteTerms(doc)
	if err != nil {
		return nil
	}
	r := ir.NewSketchRanker([]byte(qsketch), k)
	for _, term := range route {
		if skip[term] {
			continue
		}
		node, ok := d.ring.Owner(chordid.HashKey(term))
		if !ok {
			continue
		}
		ps, _, ok := d.net.ServedPostings(node.Addr(), term)
		if !ok {
			continue
		}
		for _, p := range ps {
			if p.Doc == doc {
				continue
			}
			r.Offer([]byte(p.Doc), []byte(p.Sketch))
		}
	}
	return r.Ranked()
}

// rankEqual compares two ranked lists for bit-exact equality.
func rankEqual(a, b ir.RankedList) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Doc != b[i].Doc || a[i].Score != b[i].Score {
			return false
		}
	}
	return true
}

func describeRank(rl ir.RankedList) string {
	out := "["
	for i, h := range rl {
		if i > 0 {
			out += " "
		}
		out += fmt.Sprintf("%s:%.17g", h.Doc, h.Score)
	}
	return out + "]"
}

// failedTerms extracts the dropped-term set from a partial-results error.
func failedTerms(err error) map[string]bool {
	var pe *core.PartialError
	if !errors.As(err, &pe) {
		return nil
	}
	out := make(map[string]bool, len(pe.Failures))
	for _, f := range pe.Failures {
		out[f.Term] = true
	}
	return out
}

// checkOpOutcome validates one op's observable results across deployments:
// errors are only acceptable in fault context, search rankings must match the
// oracle (invariant 2, gated while loss/drops taint routing), and the twin
// must agree with the primary exactly (invariant 3).
func (h *harness) checkOpOutcome(op Op, outs []opOut, faultCtx bool) *Violation {
	deps := h.deployments()
	for i, out := range outs {
		d := deps[i]
		if out.err != nil && !faultCtx {
			return &Violation{Invariant: "clean_run",
				Msg: fmt.Sprintf("%s: %s failed with no fault active: %v", d.label, kindNames[op.Kind], out.err)}
		}
		if op.Kind == KSearch && !h.taint {
			skip := failedTerms(out.err)
			if out.err != nil && skip == nil {
				continue // non-partial error in fault context: no ranking to check
			}
			want := oracleSearch(d, op.Terms, op.K, skip)
			if !rankEqual(out.rl, want) {
				return &Violation{Invariant: "oracle",
					Msg: fmt.Sprintf("%s: search %q k=%d returned %s, oracle says %s",
						d.label, op.Terms, op.K, describeRank(out.rl), describeRank(want))}
			}
		}
		if op.Kind == KSimilar && !h.taint {
			skip := failedTerms(out.err)
			if out.err != nil && skip == nil {
				continue // non-partial error in fault context: no ranking to check
			}
			want := oracleSimilar(d, index.DocID(op.Doc), op.K, skip)
			if !rankEqual(out.rl, want) {
				return &Violation{Invariant: "oracle",
					Msg: fmt.Sprintf("%s: similar %s k=%d returned %s, oracle says %s",
						d.label, op.Doc, op.K, describeRank(out.rl), describeRank(want))}
			}
		}
	}
	if h.twin != nil && len(outs) == 2 && op.Kind.read() {
		p, t := outs[0], outs[1]
		if (p.err == nil) != (t.err == nil) {
			return &Violation{Invariant: "cache_transparency",
				Msg: fmt.Sprintf("%s: primary err=%v, twin err=%v", op, p.err, t.err)}
		}
		if !rankEqual(p.rl, t.rl) {
			return &Violation{Invariant: "cache_transparency",
				Msg: fmt.Sprintf("%s: primary ranked %s, twin ranked %s", op, describeRank(p.rl), describeRank(t.rl))}
		}
		if len(p.exp) != len(t.exp) {
			return &Violation{Invariant: "cache_transparency",
				Msg: fmt.Sprintf("%s: expansion terms diverge: %v vs %v", op, p.exp, t.exp)}
		}
		for i := range p.exp {
			if p.exp[i] != t.exp[i] {
				return &Violation{Invariant: "cache_transparency",
					Msg: fmt.Sprintf("%s: expansion terms diverge: %v vs %v", op, p.exp, t.exp)}
			}
		}
	}
	return nil
}
