package esearch

import (
	"testing"

	"github.com/spritedht/sprite/internal/corpus"
)

func testCorpus() *corpus.Corpus {
	return corpus.MustNew([]*corpus.Document{
		corpus.NewDocument("d1", map[string]int{"alpha": 9, "beta": 8, "gamma": 2, "delta": 1}),
		corpus.NewDocument("d2", map[string]int{"alpha": 3, "epsilon": 7, "zeta": 5}),
	})
}

func TestNewValidation(t *testing.T) {
	if _, err := New(testCorpus(), 0, 0); err == nil {
		t.Fatal("k=0 accepted")
	}
	if _, err := New(testCorpus(), 2, 1); err == nil {
		t.Fatal("N=1 accepted")
	}
	s, err := New(testCorpus(), 2, 0)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if s.K() != 2 {
		t.Fatalf("K = %d", s.K())
	}
}

func TestIndexesOnlyTopK(t *testing.T) {
	s, err := New(testCorpus(), 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	// d1's top-2: alpha, beta. gamma/delta must not be indexed.
	if !s.Index().Has("alpha") || !s.Index().Has("beta") {
		t.Fatal("top terms not indexed")
	}
	if s.Index().Has("gamma") || s.Index().Has("delta") {
		t.Fatal("non-top terms leaked into index")
	}
	if got := s.Index().NumPostings(); got != 4 {
		t.Fatalf("postings = %d, want 4 (2 docs × top-2)", got)
	}
}

func TestStaticSchemeMissesLowFrequencyTerms(t *testing.T) {
	// The defining weakness of the static scheme (§6.3): a query on a term
	// the document contains, but which is not among its top-k, misses it.
	s, err := New(testCorpus(), 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if rl := s.Search([]string{"gamma"}, 10); len(rl) != 0 {
		t.Fatalf("gamma (rank 3 in d1) should be unfindable, got %v", rl)
	}
	// alpha is rank 1 in d1 but only rank 3 in d2 — at k=2 the static index
	// finds d1 and misses d2 entirely.
	if rl := s.Search([]string{"alpha"}, 10); len(rl) != 1 || rl[0].Doc != "d1" {
		t.Fatalf("alpha at k=2 should match only d1, got %v", rl)
	}
	s3, err := New(testCorpus(), 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	if rl := s3.Search([]string{"alpha"}, 10); len(rl) != 2 {
		t.Fatalf("alpha at k=3 should match both docs, got %v", rl)
	}
}

func TestSearchRanking(t *testing.T) {
	s, err := New(testCorpus(), 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	rl := s.Search([]string{"alpha"}, 10)
	if len(rl) != 2 || rl[0].Doc != "d1" {
		t.Fatalf("ranking = %v, want d1 first (higher normalized tf)", rl)
	}
}

func TestSearchTopKTruncation(t *testing.T) {
	s, err := New(testCorpus(), 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	if rl := s.Search([]string{"alpha"}, 1); len(rl) != 1 {
		t.Fatalf("Search(k=1) = %v", rl)
	}
}

func TestLargerKIndexesMore(t *testing.T) {
	s2, _ := New(testCorpus(), 2, 0)
	s4, _ := New(testCorpus(), 4, 0)
	if s4.Index().NumPostings() <= s2.Index().NumPostings() {
		t.Fatal("larger k did not grow the index")
	}
	// With k=4 every term of d1 is indexed, so gamma becomes findable.
	if rl := s4.Search([]string{"gamma"}, 10); len(rl) != 1 {
		t.Fatalf("gamma should be findable at k=4, got %v", rl)
	}
}
