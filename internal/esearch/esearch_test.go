package esearch

import (
	"fmt"
	"testing"

	"github.com/spritedht/sprite/internal/corpus"
	"github.com/spritedht/sprite/internal/index"
)

func testCorpus() *corpus.Corpus {
	return corpus.MustNew([]*corpus.Document{
		corpus.NewDocument("d1", map[string]int{"alpha": 9, "beta": 8, "gamma": 2, "delta": 1}),
		corpus.NewDocument("d2", map[string]int{"alpha": 3, "epsilon": 7, "zeta": 5}),
	})
}

func TestNewValidation(t *testing.T) {
	if _, err := New(testCorpus(), 0, 0); err == nil {
		t.Fatal("k=0 accepted")
	}
	if _, err := New(testCorpus(), 2, 1); err == nil {
		t.Fatal("N=1 accepted")
	}
	s, err := New(testCorpus(), 2, 0)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if s.K() != 2 {
		t.Fatalf("K = %d", s.K())
	}
}

func TestIndexesOnlyTopK(t *testing.T) {
	s, err := New(testCorpus(), 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	// d1's top-2: alpha, beta. gamma/delta must not be indexed.
	if !s.Index().Has("alpha") || !s.Index().Has("beta") {
		t.Fatal("top terms not indexed")
	}
	if s.Index().Has("gamma") || s.Index().Has("delta") {
		t.Fatal("non-top terms leaked into index")
	}
	if got := s.Index().NumPostings(); got != 4 {
		t.Fatalf("postings = %d, want 4 (2 docs × top-2)", got)
	}
}

func TestStaticSchemeMissesLowFrequencyTerms(t *testing.T) {
	// The defining weakness of the static scheme (§6.3): a query on a term
	// the document contains, but which is not among its top-k, misses it.
	s, err := New(testCorpus(), 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if rl := s.Search([]string{"gamma"}, 10); len(rl) != 0 {
		t.Fatalf("gamma (rank 3 in d1) should be unfindable, got %v", rl)
	}
	// alpha is rank 1 in d1 but only rank 3 in d2 — at k=2 the static index
	// finds d1 and misses d2 entirely.
	if rl := s.Search([]string{"alpha"}, 10); len(rl) != 1 || rl[0].Doc != "d1" {
		t.Fatalf("alpha at k=2 should match only d1, got %v", rl)
	}
	s3, err := New(testCorpus(), 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	if rl := s3.Search([]string{"alpha"}, 10); len(rl) != 2 {
		t.Fatalf("alpha at k=3 should match both docs, got %v", rl)
	}
}

func TestSearchRanking(t *testing.T) {
	s, err := New(testCorpus(), 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	rl := s.Search([]string{"alpha"}, 10)
	if len(rl) != 2 || rl[0].Doc != "d1" {
		t.Fatalf("ranking = %v, want d1 first (higher normalized tf)", rl)
	}
}

func TestSearchTopKTruncation(t *testing.T) {
	s, err := New(testCorpus(), 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	if rl := s.Search([]string{"alpha"}, 1); len(rl) != 1 {
		t.Fatalf("Search(k=1) = %v", rl)
	}
}

func TestLargerKIndexesMore(t *testing.T) {
	s2, _ := New(testCorpus(), 2, 0)
	s4, _ := New(testCorpus(), 4, 0)
	if s4.Index().NumPostings() <= s2.Index().NumPostings() {
		t.Fatal("larger k did not grow the index")
	}
	// With k=4 every term of d1 is indexed, so gamma becomes findable.
	if rl := s4.Search([]string{"gamma"}, 10); len(rl) != 1 {
		t.Fatalf("gamma should be findable at k=4, got %v", rl)
	}
}

// tieCorpus builds documents that are exact clones term-for-term, so every
// query scores them bit-identically and ranking order is decided purely by
// the tie-break rule.
func tieCorpus(n int) *corpus.Corpus {
	docs := make([]*corpus.Document, 0, n)
	for i := 0; i < n; i++ {
		docs = append(docs, corpus.NewDocument(
			index.DocID(fmt.Sprintf("d%02d", i)),
			map[string]int{"alpha": 5, "beta": 3, "gamma": 2},
		))
	}
	return corpus.MustNew(docs)
}

// TestSearchTieBreakByDocID: exact score ties must order by ascending DocID —
// the RankedList contract — independent of insertion order or map iteration.
func TestSearchTieBreakByDocID(t *testing.T) {
	s, err := New(tieCorpus(8), 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	rl := s.Search([]string{"alpha", "beta"}, 5)
	if len(rl) != 5 {
		t.Fatalf("got %d hits, want 5", len(rl))
	}
	for i, h := range rl {
		if want := index.DocID(fmt.Sprintf("d%02d", i)); h.Doc != want {
			t.Fatalf("rank %d = %s, want %s (ties must break by DocID): %v", i, h.Doc, want, rl)
		}
		if h.Score != rl[0].Score {
			t.Fatalf("scores of identical docs differ: %v", rl)
		}
	}
}

// TestSearchDeterministicAcrossRuns: repeated searches must return
// bit-identical rankings. The fold runs in first-occurrence term order, not
// map order, so float summation order — and therefore every ULP of every
// score — is fixed. A regression here shows up as flaky tie order.
func TestSearchDeterministicAcrossRuns(t *testing.T) {
	s, err := New(tieCorpus(16), 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	query := []string{"gamma", "alpha", "beta", "alpha"}
	first := s.Search(query, 10)
	for run := 1; run < 200; run++ {
		got := s.Search(query, 10)
		if len(got) != len(first) {
			t.Fatalf("run %d: %d hits vs %d", run, len(got), len(first))
		}
		for i := range got {
			if got[i].Doc != first[i].Doc || got[i].Score != first[i].Score {
				t.Fatalf("run %d rank %d: (%s, %v) vs (%s, %v)",
					run, i, got[i].Doc, got[i].Score, first[i].Doc, first[i].Score)
			}
		}
	}
}
