// Package esearch implements the "basic eSearch" baseline of the SPRITE
// evaluation (§2, §6; Tang & Dwarkadas, NSDI'04): each document is indexed
// on a fixed number of its most frequent terms, selected once and never
// revised. It is the strongest *static* distributed scheme the paper
// compares against; the gap between it and SPRITE isolates the value of
// learning from queries.
//
// Retrieval uses exactly the same machinery as SPRITE's querying peers —
// indexed document frequency as the IDF surrogate, a fixed large N, and the
// Lee et al. similarity — so the only variable between the systems is *which*
// terms get indexed. The index itself is kept in-process: the paper's
// quality comparison does not depend on eSearch's message routing, and the
// insert-cost benchmarks account for its DHT traffic analytically (one
// publication per selected term, identical to SPRITE's per-term cost).
package esearch

import (
	"fmt"

	"github.com/spritedht/sprite/internal/corpus"
	"github.com/spritedht/sprite/internal/index"
	"github.com/spritedht/sprite/internal/ir"
)

// System is a static top-k selective index over a corpus.
type System struct {
	ix *index.Inverted
	k  int
	n  int
}

// New indexes the top-k most frequent terms of every document in c.
// SurrogateN is the fixed large N used for IDF; pass 0 for ir.LargeN.
func New(c *corpus.Corpus, k int, surrogateN int) (*System, error) {
	if k < 1 {
		return nil, fmt.Errorf("esearch: k = %d, need >= 1", k)
	}
	if surrogateN == 0 {
		surrogateN = ir.LargeN
	}
	if surrogateN < 2 {
		return nil, fmt.Errorf("esearch: surrogate N = %d, need >= 2", surrogateN)
	}
	ix := index.NewInverted()
	for _, d := range c.Docs() {
		for _, t := range d.TopTerms(k) {
			ix.Add(t, index.Posting{Doc: d.ID, Owner: "esearch", Freq: d.TF[t], DocLen: d.Length})
		}
	}
	return &System{ix: ix, k: k, n: surrogateN}, nil
}

// K returns the per-document term budget.
func (s *System) K() int { return s.k }

// Index exposes the underlying inverted index for inspection.
func (s *System) Index() *index.Inverted { return s.ix }

// Search returns the top-k ranked documents for the query, scored the same
// way SPRITE's querying peers score (§4), with the indexed document
// frequency as n'_k.
func (s *System) Search(terms []string, topK int) ir.RankedList {
	qtf := make(map[string]int, len(terms))
	for _, t := range terms {
		qtf[t]++
	}
	acc := ir.NewAccumulator()
	// Fold terms in first-occurrence order, not map order: float addition is
	// not associative, so a map-ordered fold would let equal-score ties drift
	// by ULPs between runs. SPRITE's querying peers fold the same way.
	seen := make(map[string]bool, len(terms))
	for _, t := range terms {
		if seen[t] {
			continue
		}
		seen[t] = true
		df := s.ix.DocFreq(t)
		if df == 0 {
			continue
		}
		wq := ir.QueryWeight(qtf[t], len(terms), s.n, df)
		for p := range s.ix.All(t) {
			wd := ir.Weight(p.NormFreq(), s.n, df)
			acc.Accumulate(p.Doc, wq*wd, p.DocLen)
		}
	}
	return acc.Ranked().Top(topK)
}
