package vtime

import (
	"container/heap"
	"context"
	"fmt"
	"sort"
	"sync"
	"time"
)

// Epoch is the fixed origin of virtual time. Every Sim starts here, so
// timestamps recorded during a virtual run (telemetry, latency samples) are
// bit-identical across runs with the same seed.
var Epoch = time.Date(2020, 1, 1, 0, 0, 0, 0, time.UTC)

// Sim is a deterministic discrete-event virtual clock.
//
// Goroutines register with the clock (Run/Attach/Go/GoGroup) and are counted
// as runnable until they enter a virtual wait (Sleep) or deregister. The
// scheduler advances time only at quiescence — when every registered
// goroutine is blocked on a virtual wait — by firing the earliest pending
// event, keyed by (virtual time, sequence) so ties break in creation order.
// With the same seed driving the workload, the sequence of quiescent states
// is the same, so the virtual timeline is the same: latency percentiles
// from a Sim run are exact, not sampled from scheduler jitter.
//
// There is no scheduler goroutine. Whichever goroutine makes the system
// quiescent (the last to block or deregister) runs the advance loop inline;
// a sole runnable sleeper with no earlier pending event takes a fast path
// that bumps the virtual offset without parking at all, which is what makes
// million-query single-threaded sweeps cost ~tens of nanoseconds per
// simulated wait.
//
// Cancellation is part of the event order: before firing a timed event the
// scheduler first wakes, in sequence order, any parked sleeper whose context
// is already done, so cancels triggered by virtual deadlines land at a
// deterministic virtual instant. Waits on events the clock cannot see must
// be wrapped in Blocking, and goroutines must not block on each other
// through channels while registered; getting this wrong is loud — the
// scheduler panics when every registered goroutine is blocked and no event
// is pending.
type Sim struct {
	mu      sync.Mutex
	now     time.Duration // virtual offset from Epoch
	seq     uint64
	events  eventHeap
	workers int // registered goroutines
	blocked int // registered goroutines parked in a virtual wait
}

// NewSim returns a virtual clock at Epoch with no registered goroutines.
func NewSim() *Sim { return &Sim{} }

// event is one entry in the virtual timeline. A waiter event (ch non-nil)
// wakes a parked goroutine; a detached event (fn non-nil) runs a callback —
// timer fires and context deadlines — outside the scheduler lock.
type event struct {
	at  time.Duration
	seq uint64

	ch   chan error      // waiter: buffered 1; nil error = slept fully
	done <-chan struct{} // waiter: context Done channel for the cancel sweep

	fn func(now time.Time) // detached callback

	fired   bool
	removed bool
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}

// Now returns the current virtual time.
func (s *Sim) Now() time.Time {
	s.mu.Lock()
	n := s.now
	s.mu.Unlock()
	return Epoch.Add(n)
}

// Elapsed returns the virtual time advanced since Epoch.
func (s *Sim) Elapsed() time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.now
}

// Run registers the calling goroutine for the duration of fn. Top-level
// drivers (experiments, tests) wrap their whole workload in Run so every
// virtual wait inside is scheduled.
func (s *Sim) Run(fn func()) {
	detach := s.Attach()
	defer detach()
	fn()
}

// Attach registers the calling goroutine as runnable and returns its
// detach function (idempotent). Prefer Run; Attach exists for callers whose
// enter/exit points straddle function boundaries (the chaos harness attaches
// around each deployment-touching step).
func (s *Sim) Attach() (detach func()) {
	s.mu.Lock()
	s.workers++
	s.mu.Unlock()
	var once sync.Once
	return func() { once.Do(func() { s.deregister() }) }
}

// deregister removes one runnable slot and settles the scheduler, since the
// departure may have made the system quiescent.
func (s *Sim) deregister() {
	s.mu.Lock()
	s.workers--
	cb := s.advanceLocked()
	s.mu.Unlock()
	s.settle(cb)
}

// settle drains the advance loop: run a detached callback outside the lock,
// then re-check for quiescence, until no callback is pending.
func (s *Sim) settle(cb func(time.Time)) {
	for cb != nil {
		cb(s.Now())
		s.mu.Lock()
		cb = s.advanceLocked()
		s.mu.Unlock()
	}
}

// advanceLocked fires timeline events while the system is quiescent. Waking
// a parked goroutine ends quiescence, so it fires at most one waiter; a
// detached callback must run outside the lock, so it is returned to the
// caller (who re-enters via settle). Returns nil when some goroutine is
// runnable again or nothing had to fire.
func (s *Sim) advanceLocked() func(time.Time) {
	for s.workers > 0 && s.blocked == s.workers {
		// Cancel sweep: wake parked sleepers whose context is already
		// done, in sequence order, before advancing time any further.
		var canceled []*event
		for _, ev := range s.events {
			if ev.ch == nil || ev.removed || ev.done == nil {
				continue
			}
			select {
			case <-ev.done:
				canceled = append(canceled, ev)
			default:
			}
		}
		if len(canceled) > 0 {
			sort.Slice(canceled, func(i, j int) bool { return canceled[i].seq < canceled[j].seq })
			for _, ev := range canceled {
				ev.removed = true
				ev.fired = true
				s.blocked--
				ev.ch <- context.Canceled
			}
			return nil
		}
		for len(s.events) > 0 && s.events[0].removed {
			heap.Pop(&s.events)
		}
		if len(s.events) == 0 {
			panic(fmt.Sprintf("vtime: deadlock: all %d registered goroutines blocked on virtual waits with no pending events (a real-event wait is missing a Blocking wrapper, or a goroutine was not registered via Go/GoGroup)", s.workers))
		}
		ev := heap.Pop(&s.events).(*event)
		if ev.at > s.now {
			s.now = ev.at
		}
		ev.fired = true
		if ev.ch != nil {
			s.blocked--
			ev.ch <- nil
			return nil
		}
		return ev.fn
	}
	return nil
}

// push adds an event to the timeline. Caller holds s.mu.
func (s *Sim) pushLocked(ev *event) {
	s.seq++
	ev.seq = s.seq
	heap.Push(&s.events, ev)
}

// Sleep blocks the calling goroutine for d of virtual time, or until ctx is
// done. The goroutine must be registered (Run/Attach/Go/GoGroup).
func (s *Sim) Sleep(ctx context.Context, d time.Duration) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if d < 0 {
		d = 0
	}
	s.mu.Lock()
	if s.workers <= 0 {
		s.mu.Unlock()
		panic("vtime: Sleep with no registered goroutines (wrap the caller in Sim.Run, or create it with Go/GoGroup)")
	}
	at := s.now + d
	// Fast path: this goroutine is the only registered one and nothing
	// fires at or before the target instant — advance inline, no parking.
	if s.workers == 1 && s.blocked == 0 {
		for len(s.events) > 0 && s.events[0].removed {
			heap.Pop(&s.events)
		}
		if len(s.events) == 0 || s.events[0].at > at {
			s.now = at
			s.mu.Unlock()
			return nil
		}
	}
	ev := &event{at: at, ch: make(chan error, 1), done: ctx.Done()}
	s.pushLocked(ev)
	s.blocked++
	cb := s.advanceLocked()
	s.mu.Unlock()
	s.settle(cb)
	if err := <-ev.ch; err != nil {
		if cerr := ctx.Err(); cerr != nil {
			return cerr
		}
		return err
	}
	return nil
}

// After returns a channel delivering the virtual time after d. The
// underlying event fires when virtual time reaches it, whether or not
// anything is receiving.
func (s *Sim) After(d time.Duration) <-chan time.Time { return s.NewTimer(d).C }

// NewTimer returns a timer that fires after d of virtual time. The fire is a
// detached event: it is delivered into a buffered channel by the scheduler
// and does not require a registered goroutine to be waiting. Select on
// timer.C from a registered goroutine through Blocking.
func (s *Sim) NewTimer(d time.Duration) *Timer {
	if d < 0 {
		d = 0
	}
	ch := make(chan time.Time, 1)
	s.mu.Lock()
	ev := &event{at: s.now + d, fn: func(now time.Time) { ch <- now }}
	s.pushLocked(ev)
	s.mu.Unlock()
	return &Timer{C: ch, stop: func() bool {
		s.mu.Lock()
		defer s.mu.Unlock()
		if ev.fired || ev.removed {
			return false
		}
		ev.removed = true
		return true
	}}
}

// WithTimeout derives a context whose deadline is d of virtual time from
// now. Expiry is a detached scheduler event, so timeouts land at an exact,
// reproducible virtual instant; Deadline() reports the virtual instant and
// is comparable with Sim.Now(). Parent cancellation propagates.
func (s *Sim) WithTimeout(parent context.Context, d time.Duration) (context.Context, context.CancelFunc) {
	if d < 0 {
		d = 0
	}
	c := &simCtx{Context: parent, s: s, done: make(chan struct{})}
	s.mu.Lock()
	c.deadline = Epoch.Add(s.now + d)
	c.ev = &event{at: s.now + d, fn: func(time.Time) { c.cancel(context.DeadlineExceeded) }}
	s.pushLocked(c.ev)
	s.mu.Unlock()
	if parent.Done() != nil {
		c.stopAfter = context.AfterFunc(parent, func() { c.cancel(parent.Err()) })
	}
	return c, func() { c.cancel(context.Canceled) }
}

// simCtx is a context with a virtual deadline. Value lookups delegate to the
// parent; Done/Err/Deadline are owned here.
type simCtx struct {
	context.Context
	s        *Sim
	deadline time.Time

	mu        sync.Mutex
	done      chan struct{}
	err       error
	ev        *event
	stopAfter func() bool
}

func (c *simCtx) Deadline() (time.Time, bool) {
	if pd, ok := c.Context.Deadline(); ok && pd.Before(c.deadline) {
		return pd, true
	}
	return c.deadline, true
}

func (c *simCtx) Done() <-chan struct{} { return c.done }

func (c *simCtx) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.err
}

func (c *simCtx) cancel(err error) {
	if err == nil {
		err = context.Canceled
	}
	c.mu.Lock()
	if c.err != nil {
		c.mu.Unlock()
		return
	}
	c.err = err
	close(c.done)
	stop := c.stopAfter
	c.mu.Unlock()
	c.s.removeEvent(c.ev)
	if stop != nil {
		stop()
	}
}

// removeEvent marks a detached event dead so the scheduler skips it.
func (s *Sim) removeEvent(ev *event) {
	s.mu.Lock()
	if !ev.fired {
		ev.removed = true
	}
	s.mu.Unlock()
}

// Go runs fn on a new registered goroutine. The registration happens before
// Go returns, so the scheduler never advances past a spawn it hasn't seen.
func (s *Sim) Go(fn func()) {
	s.mu.Lock()
	s.workers++
	s.mu.Unlock()
	go func() {
		defer s.deregister()
		fn()
	}()
}

// GoGroup runs fn(0..n-1) on n registered goroutines and blocks until all
// return. The caller's runnable slot transfers to the group: the parent
// deregisters while waiting, and the last child to exit re-registers the
// parent's slot in the same critical section as its own exit, so there is no
// instant at which the scheduler could advance between "children done" and
// "parent runnable". This is the primitive fanout.Map builds on.
func (s *Sim) GoGroup(n int, fn func(i int)) {
	if n <= 0 {
		return
	}
	done := make(chan struct{})
	remaining := n
	s.mu.Lock()
	s.workers += n - 1 // n children in, parent's slot lent to the group
	s.mu.Unlock()
	for i := 0; i < n; i++ {
		go func(i int) {
			defer func() {
				s.mu.Lock()
				s.workers--
				remaining--
				last := remaining == 0
				if last {
					s.workers++ // hand the slot back to the parent
				}
				cb := s.advanceLocked()
				s.mu.Unlock()
				if last {
					close(done)
				}
				s.settle(cb)
			}()
			fn(i)
		}(i)
	}
	<-done
}

// Blocking runs fn with the caller deregistered, for waits on events the
// scheduler cannot see (real channels, I/O, WaitGroups). Virtual time may
// advance while fn runs; the caller is runnable again when fn returns.
func (s *Sim) Blocking(fn func()) {
	s.mu.Lock()
	s.workers--
	cb := s.advanceLocked()
	s.mu.Unlock()
	s.settle(cb)
	fn()
	s.mu.Lock()
	s.workers++
	s.mu.Unlock()
}
