// Package vtime provides the clock abstraction behind every time-dependent
// code path in the SPRITE stack: simulated link latency (internal/simnet),
// retry backoff, hedging timers and per-attempt timeouts
// (internal/resilience), cache TTL expiry (internal/cache), and the fan-out
// executor's stage timings (internal/fanout).
//
// Two implementations exist. Wall delegates to the standard library and is
// the default everywhere, so production paths behave exactly as before this
// package existed. Sim is a deterministic discrete-event scheduler: virtual
// time advances only when every registered goroutine is blocked on a virtual
// wait, pending events fire in (virtual time, sequence) order, and a million
// simulated milliseconds cost whatever the CPU work between them costs —
// this is what lets spritebench sweep 100k-peer rings and millions of
// queries with exact latency percentiles in seconds of wall time (see
// DESIGN.md §9).
//
// The interface is deliberately wider than time.Now/time.Sleep: the
// scheduler can only advance time safely when it knows which goroutines
// count as runnable, so code running under a Clock must create goroutines
// with Go/GoGroup and wrap waits on non-virtual events (channel receives,
// WaitGroups) in Blocking. The Wall implementations of those are the obvious
// zero-cost passthroughs, so callers pay nothing for the discipline in
// production.
package vtime

import (
	"context"
	"sync"
	"time"
)

// Clock abstracts the passage of time. Implementations: Wall (real time) and
// *Sim (deterministic virtual time).
type Clock interface {
	// Now returns the current time. For Sim this is a fixed epoch plus the
	// virtual offset, so timestamps are reproducible across runs.
	Now() time.Time

	// Sleep blocks for d or until ctx is done, returning nil on a full
	// sleep and the context's error otherwise. Under Sim the block is a
	// virtual wait: it costs no wall time and other goroutines' virtual
	// waits interleave deterministically with it.
	Sleep(ctx context.Context, d time.Duration) error

	// After returns a channel that delivers the clock's time after d.
	// The timer cannot be stopped; prefer NewTimer when it can be.
	After(d time.Duration) <-chan time.Time

	// NewTimer returns a stoppable timer that fires once after d.
	NewTimer(d time.Duration) *Timer

	// WithTimeout derives a context that is canceled after d on this
	// clock. Under Sim the deadline is a virtual instant (comparable with
	// Now) and expiry is a deterministic scheduler event.
	WithTimeout(parent context.Context, d time.Duration) (context.Context, context.CancelFunc)

	// Go runs fn on a new goroutine registered with the clock. The
	// goroutine may use virtual waits; it is counted as runnable until fn
	// returns. Under Wall this is the `go` statement.
	Go(fn func())

	// GoGroup runs fn(0..n-1) on n registered goroutines and blocks until
	// all return. The calling goroutine's runnable slot is handed to the
	// group while it waits, so the wait itself never stalls virtual time.
	GoGroup(n int, fn func(i int))

	// Blocking runs fn with the calling goroutine deregistered from the
	// clock, for waits on real events (channel receives, I/O) that the
	// scheduler cannot see. Under Wall it just calls fn.
	Blocking(fn func())
}

// Timer is a one-shot timer bound to a Clock. C delivers the fire time.
type Timer struct {
	C    <-chan time.Time
	stop func() bool
}

// Stop cancels the timer, reporting whether it was still pending. It does
// not drain C.
func (t *Timer) Stop() bool {
	if t == nil || t.stop == nil {
		return false
	}
	return t.stop()
}

// Wall is the real-time clock: every method delegates to the standard
// library, goroutine registration is free, and Blocking is the identity.
var Wall Clock = wallClock{}

// Default returns c, or Wall when c is nil — the idiom every integration
// point uses to make the wall clock the zero-config default.
func Default(c Clock) Clock {
	if c == nil {
		return Wall
	}
	return c
}

type wallClock struct{}

func (wallClock) Now() time.Time { return time.Now() }

func (wallClock) Sleep(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

func (wallClock) After(d time.Duration) <-chan time.Time { return time.After(d) }

func (wallClock) NewTimer(d time.Duration) *Timer {
	t := time.NewTimer(d)
	return &Timer{C: t.C, stop: t.Stop}
}

func (wallClock) WithTimeout(parent context.Context, d time.Duration) (context.Context, context.CancelFunc) {
	return context.WithTimeout(parent, d)
}

func (wallClock) Go(fn func()) { go fn() }

func (wallClock) GoGroup(n int, fn func(i int)) {
	var wg sync.WaitGroup
	wg.Add(n)
	for i := 0; i < n; i++ {
		go func(i int) {
			defer wg.Done()
			fn(i)
		}(i)
	}
	wg.Wait()
}

func (wallClock) Blocking(fn func()) { fn() }
