package vtime

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestWallSleep(t *testing.T) {
	if err := Wall.Sleep(context.Background(), time.Microsecond); err != nil {
		t.Fatalf("Sleep: %v", err)
	}
	if err := Wall.Sleep(context.Background(), -1); err != nil {
		t.Fatalf("Sleep(-1): %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := Wall.Sleep(ctx, time.Hour); err != context.Canceled {
		t.Fatalf("canceled Sleep: got %v, want context.Canceled", err)
	}
}

func TestWallTimerAndGroup(t *testing.T) {
	tm := Wall.NewTimer(time.Microsecond)
	<-tm.C
	if tm.Stop() {
		t.Fatal("Stop after fire should report false")
	}
	var nilTimer *Timer
	if nilTimer.Stop() {
		t.Fatal("nil timer Stop should report false")
	}
	<-Wall.After(time.Microsecond)

	var sum atomic.Int64
	Wall.GoGroup(8, func(i int) { sum.Add(int64(i)) })
	if got := sum.Load(); got != 28 {
		t.Fatalf("GoGroup sum = %d, want 28", got)
	}
	ran := false
	Wall.Blocking(func() { ran = true })
	if !ran {
		t.Fatal("Blocking did not run fn")
	}
	done := make(chan struct{})
	Wall.Go(func() { close(done) })
	<-done

	ctx, cancel := Wall.WithTimeout(context.Background(), time.Hour)
	defer cancel()
	if _, ok := ctx.Deadline(); !ok {
		t.Fatal("WithTimeout context has no deadline")
	}
	if Default(nil) != Wall {
		t.Fatal("Default(nil) != Wall")
	}
	if Default(NewSim()) == Wall {
		t.Fatal("Default(sim) should return the sim")
	}
}

// TestSimFastPath drives the sole-runnable-sleeper path: no parking, exact
// advancement, reproducible Now.
func TestSimFastPath(t *testing.T) {
	s := NewSim()
	s.Run(func() {
		if !s.Now().Equal(Epoch) {
			t.Errorf("start = %v, want %v", s.Now(), Epoch)
		}
		for i := 0; i < 1000; i++ {
			if err := s.Sleep(context.Background(), time.Millisecond); err != nil {
				t.Fatalf("Sleep: %v", err)
			}
		}
		if got := s.Elapsed(); got != time.Second {
			t.Errorf("Elapsed = %v, want 1s", got)
		}
		if got := s.Now(); !got.Equal(Epoch.Add(time.Second)) {
			t.Errorf("Now = %v, want %v", got, Epoch.Add(time.Second))
		}
	})
}

// TestSimOrdering checks that concurrent virtual sleeps wake in timestamp
// order and that equal wall work costs zero virtual time.
func TestSimOrdering(t *testing.T) {
	s := NewSim()
	var mu sync.Mutex
	var order []string
	s.Run(func() {
		s.GoGroup(3, func(i int) {
			// Sleep i+1 units twice: wake order must be strictly by
			// virtual timestamp regardless of goroutine scheduling.
			for round := 0; round < 2; round++ {
				if err := s.Sleep(context.Background(), time.Duration(i+1)*time.Millisecond); err != nil {
					t.Errorf("Sleep: %v", err)
					return
				}
				mu.Lock()
				order = append(order, fmt.Sprintf("g%d@%v", i, s.Elapsed()))
				mu.Unlock()
			}
		})
	})
	// At 2ms two events tie: g1's first wake was enqueued (lower sequence)
	// before g0's second sleep existed, so g1 fires first.
	want := []string{"g0@1ms", "g1@2ms", "g0@2ms", "g2@3ms", "g1@4ms", "g2@6ms"}
	if fmt.Sprint(order) != fmt.Sprint(want) {
		t.Fatalf("wake order = %v, want %v", order, want)
	}
	if got := s.Elapsed(); got != 6*time.Millisecond {
		t.Fatalf("Elapsed = %v, want 6ms", got)
	}
}

// TestSimGoGroupHandoff checks the parent-slot handoff: virtual time keeps
// advancing while the parent waits for the group, and the parent resumes
// with a consistent worker count (a second group still works).
func TestSimGoGroupHandoff(t *testing.T) {
	s := NewSim()
	s.Run(func() {
		s.GoGroup(4, func(i int) {
			_ = s.Sleep(context.Background(), time.Duration(i)*time.Millisecond)
		})
		if got := s.Elapsed(); got != 3*time.Millisecond {
			t.Errorf("after group 1: Elapsed = %v, want 3ms", got)
		}
		s.GoGroup(2, func(i int) {
			_ = s.Sleep(context.Background(), time.Millisecond)
		})
		if got := s.Elapsed(); got != 4*time.Millisecond {
			t.Errorf("after group 2: Elapsed = %v, want 4ms", got)
		}
		// Nested groups: a child lends its slot to its own group.
		s.GoGroup(2, func(i int) {
			s.GoGroup(2, func(j int) {
				_ = s.Sleep(context.Background(), time.Millisecond)
			})
		})
		if got := s.Elapsed(); got != 5*time.Millisecond {
			t.Errorf("after nested group: Elapsed = %v, want 5ms", got)
		}
	})
}

func TestSimGo(t *testing.T) {
	s := NewSim()
	var woke atomic.Int64
	s.Run(func() {
		s.Go(func() {
			_ = s.Sleep(context.Background(), 2*time.Millisecond)
			woke.Add(1)
		})
		_ = s.Sleep(context.Background(), 5*time.Millisecond)
		if got := woke.Load(); got != 1 {
			t.Errorf("background goroutine not woken before later sleep finished (woke=%d)", got)
		}
	})
	if got := s.Elapsed(); got != 5*time.Millisecond {
		t.Fatalf("Elapsed = %v, want 5ms", got)
	}
}

// TestSimTimer checks detached timer events: they fire at their virtual
// instant while registered goroutines sleep past them, and Stop removes
// pending ones.
func TestSimTimer(t *testing.T) {
	s := NewSim()
	s.Run(func() {
		tm := s.NewTimer(2 * time.Millisecond)
		stopped := s.NewTimer(time.Millisecond)
		if !stopped.Stop() {
			t.Error("Stop on pending timer should report true")
		}
		_ = s.Sleep(context.Background(), 5*time.Millisecond)
		select {
		case at := <-tm.C:
			if !at.Equal(Epoch.Add(2 * time.Millisecond)) {
				t.Errorf("timer fired at %v, want %v", at, Epoch.Add(2*time.Millisecond))
			}
		default:
			t.Error("timer did not fire during the sleep")
		}
		if tm.Stop() {
			t.Error("Stop after fire should report false")
		}
		select {
		case <-stopped.C:
			t.Error("stopped timer fired")
		default:
		}
	})
}

// TestSimWithTimeout checks virtual deadlines: Deadline() reports a virtual
// instant, expiry cancels a virtual sleep at the exact virtual time, and
// early cancel removes the event.
func TestSimWithTimeout(t *testing.T) {
	s := NewSim()
	s.Run(func() {
		ctx, cancel := s.WithTimeout(context.Background(), 3*time.Millisecond)
		defer cancel()
		dl, ok := ctx.Deadline()
		if !ok || !dl.Equal(Epoch.Add(3*time.Millisecond)) {
			t.Fatalf("Deadline = %v,%v, want %v", dl, ok, Epoch.Add(3*time.Millisecond))
		}
		err := s.Sleep(ctx, 10*time.Millisecond)
		if err != context.DeadlineExceeded {
			t.Fatalf("Sleep under expired deadline: err = %v", err)
		}
		if got := s.Elapsed(); got != 3*time.Millisecond {
			t.Fatalf("deadline fired at %v, want 3ms", got)
		}
		if ctx.Err() != context.DeadlineExceeded {
			t.Fatalf("ctx.Err = %v", ctx.Err())
		}

		// Early cancel: the deadline event must not fire later.
		ctx2, cancel2 := s.WithTimeout(context.Background(), time.Millisecond)
		cancel2()
		if ctx2.Err() != context.Canceled {
			t.Fatalf("ctx2.Err = %v", ctx2.Err())
		}
		if err := s.Sleep(ctx2, time.Millisecond); err != context.Canceled {
			t.Fatalf("Sleep on canceled ctx: %v", err)
		}
		if got := s.Elapsed(); got != 3*time.Millisecond {
			t.Fatalf("canceled deadline advanced time: Elapsed = %v", got)
		}

		// Parent cancellation propagates.
		parent, pcancel := context.WithCancel(context.Background())
		ctx3, cancel3 := s.WithTimeout(parent, time.Hour)
		defer cancel3()
		pcancel()
		<-ctx3.Done()
		if ctx3.Err() != context.Canceled {
			t.Fatalf("ctx3.Err = %v", ctx3.Err())
		}
	})
}

// TestSimCancelSweep checks that a parked sleeper whose context is canceled
// by another goroutine's virtual action wakes deterministically.
func TestSimCancelSweep(t *testing.T) {
	s := NewSim()
	s.Run(func() {
		ctx, cancel := context.WithCancel(context.Background())
		var sleepErr error
		s.GoGroup(2, func(i int) {
			if i == 0 {
				sleepErr = s.Sleep(ctx, time.Hour)
				return
			}
			_ = s.Sleep(context.Background(), time.Millisecond)
			cancel()
			_ = s.Sleep(context.Background(), time.Millisecond)
		})
		if sleepErr != context.Canceled {
			t.Fatalf("parked sleeper err = %v, want context.Canceled", sleepErr)
		}
		if got := s.Elapsed(); got != 2*time.Millisecond {
			t.Fatalf("Elapsed = %v, want 2ms (the 1h sleep must not advance time)", got)
		}
	})
}

func TestSimBlocking(t *testing.T) {
	s := NewSim()
	s.Run(func() {
		ch := make(chan time.Duration, 1)
		s.Go(func() {
			_ = s.Sleep(context.Background(), 7*time.Millisecond)
			ch <- s.Elapsed()
		})
		var got time.Duration
		// The receive is a real-channel wait: without Blocking the
		// scheduler would count this goroutine runnable forever.
		s.Blocking(func() { got = <-ch })
		if got != 7*time.Millisecond {
			t.Fatalf("background sleep finished at %v, want 7ms", got)
		}
	})
}

// TestSimDeterminism runs a randomized multi-goroutine workload twice with
// the same seed and requires bit-identical timelines.
func TestSimDeterminism(t *testing.T) {
	runOnce := func() (time.Duration, []string) {
		s := NewSim()
		var mu sync.Mutex
		var trace []string
		s.Run(func() {
			s.GoGroup(8, func(i int) {
				rng := rand.New(rand.NewSource(int64(i) * 7919))
				for step := 0; step < 50; step++ {
					d := time.Duration(rng.Intn(5)+1) * time.Millisecond
					_ = s.Sleep(context.Background(), d)
					mu.Lock()
					trace = append(trace, fmt.Sprintf("%d:%v", i, s.Elapsed()))
					mu.Unlock()
				}
			})
		})
		return s.Elapsed(), trace
	}
	e1, t1 := runOnce()
	e2, t2 := runOnce()
	if e1 != e2 {
		t.Fatalf("Elapsed differs: %v vs %v", e1, e2)
	}
	// Wake timestamps must agree run-to-run; order within one virtual
	// instant is the only schedule-dependent freedom, so compare sorted.
	seen := map[string]int{}
	for _, e := range t1 {
		seen[e]++
	}
	for _, e := range t2 {
		seen[e]--
	}
	for e, n := range seen {
		if n != 0 {
			t.Fatalf("timeline entry %q count differs by %d between runs", e, n)
		}
	}
}

func TestSimSleepUnregisteredPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Sleep without registration did not panic")
		}
	}()
	_ = NewSim().Sleep(context.Background(), time.Millisecond)
}

func TestSimDeadlockPanics(t *testing.T) {
	s := NewSim()
	panicked := make(chan any, 1)
	done := make(chan struct{})
	s.Go(func() {
		defer close(done)
		defer func() { panicked <- recover() }()
		// Registered goroutine blocks forever on a bare channel without
		// Blocking: the other goroutine's deregistration must detect the
		// stall. The sleeper below makes this goroutine the only one.
		s.Blocking(func() {})   // no-op, keeps coverage honest
		s.mu.Lock()             // simulate a missing event: block with blocked==workers
		s.blocked++             // (white-box: a real caller gets here by wrapping a
		cb := s.advanceLocked() // channel wait in a virtual wait incorrectly)
		s.mu.Unlock()
		_ = cb
	})
	<-done
	if p := <-panicked; p == nil {
		t.Fatal("expected deadlock panic")
	}
}

// BenchmarkSimSleepFastPath measures the sole-runnable sleeper cost — the
// per-hop price of the scale experiment.
func BenchmarkSimSleepFastPath(b *testing.B) {
	s := NewSim()
	ctx := context.Background()
	s.Run(func() {
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			_ = s.Sleep(ctx, time.Microsecond)
		}
	})
}
