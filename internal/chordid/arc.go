package chordid

import "fmt"

// Arc is the half-open clockwise keyspace interval (From, To]. It is the
// ownership region of the node with identifier To whose predecessor has
// identifier From: exactly the keys k with k.BetweenRightIncl(From, To).
// When From == To the arc covers the whole ring (a singleton overlay owns
// everything), matching the Between conventions above.
type Arc struct {
	From ID // exclusive lower bound (the predecessor's identifier)
	To   ID // inclusive upper bound (the owner's identifier)
}

// OwnerArc is the arc owned by a node given its predecessor: (pred, self].
func OwnerArc(pred, self ID) Arc { return Arc{From: pred, To: self} }

// Contains reports whether key falls inside the arc.
func (a Arc) Contains(key ID) bool { return key.BetweenRightIncl(a.From, a.To) }

// ContainsKey reports whether the hashed text key falls inside the arc.
func (a Arc) ContainsKey(key string) bool { return a.Contains(HashKey(key)) }

// Wraps reports whether the arc crosses the zero point of the ring.
func (a Arc) Wraps() bool { return a.From.Cmp(a.To) >= 0 }

// IsFull reports whether the arc covers the entire ring (From == To).
func (a Arc) IsFull() bool { return a.From.Cmp(a.To) == 0 }

// Span returns the clockwise length of the arc: the number of identifiers in
// (From, To]. A full arc reports the maximum ID (2^128-1 ≈ the whole ring).
func (a Arc) Span() ID {
	if a.IsFull() {
		var max ID
		for i := range max {
			max[i] = 0xff
		}
		return max
	}
	return a.To.Sub(a.From)
}

func (a Arc) String() string {
	return fmt.Sprintf("(%s, %s]", a.From.Short(), a.To.Short())
}
