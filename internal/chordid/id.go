// Package chordid implements the 128-bit circular identifier space used by
// the Chord overlay. Identifiers are produced by hashing keys (terms, query
// strings, node names) with MD5, exactly as in the SPRITE paper ("All terms
// are hashed using MD5", §6), and compared on a ring of size 2^128.
//
// The package provides the modular arithmetic Chord needs: clockwise interval
// tests for successor resolution, power-of-two offsets for finger-table
// construction, and clockwise distance for "closest term" selection during
// SPRITE's de-duplicated query polling (§3).
package chordid

import (
	"crypto/md5"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"math/bits"
)

// Bits is the width of the identifier space in bits.
const Bits = 128

// Bytes is the width of the identifier space in bytes.
const Bytes = Bits / 8

// ID is a point on the Chord ring: a 128-bit unsigned integer in big-endian
// byte order. The zero value is the identifier 0, which is a valid ring
// position. IDs are comparable and usable as map keys.
type ID [Bytes]byte

// HashKey maps an arbitrary string key onto the ring with MD5.
func HashKey(key string) ID {
	return ID(md5.Sum([]byte(key)))
}

// HashBytes maps a byte slice onto the ring with MD5.
func HashBytes(b []byte) ID {
	return ID(md5.Sum(b))
}

// FromUint64 returns the ID whose numeric value is v. It is mainly useful in
// tests, where small, legible ring positions are easier to reason about.
func FromUint64(v uint64) ID {
	var id ID
	for i := Bytes - 1; i >= Bytes-8; i-- {
		id[i] = byte(v)
		v >>= 8
	}
	return id
}

// Uint64 returns the low 64 bits of the identifier.
func (id ID) Uint64() uint64 {
	var v uint64
	for i := Bytes - 8; i < Bytes; i++ {
		v = v<<8 | uint64(id[i])
	}
	return v
}

// String renders the identifier as 32 lowercase hex digits.
func (id ID) String() string {
	return hex.EncodeToString(id[:])
}

// Short renders the first 4 bytes of the identifier, for compact logs.
func (id ID) Short() string {
	return hex.EncodeToString(id[:4])
}

// ParseID parses a 32-digit hex string produced by String.
func ParseID(s string) (ID, error) {
	var id ID
	b, err := hex.DecodeString(s)
	if err != nil {
		return id, fmt.Errorf("chordid: parse %q: %w", s, err)
	}
	if len(b) != Bytes {
		return id, fmt.Errorf("chordid: parse %q: want %d bytes, got %d", s, Bytes, len(b))
	}
	copy(id[:], b)
	return id, nil
}

// Cmp compares two identifiers as unsigned integers, returning -1, 0, or +1.
func (id ID) Cmp(other ID) int {
	ahi, alo := id.words()
	bhi, blo := other.words()
	switch {
	case ahi < bhi:
		return -1
	case ahi > bhi:
		return 1
	case alo < blo:
		return -1
	case alo > blo:
		return 1
	}
	return 0
}

// words splits the big-endian identifier into its high and low 64-bit halves.
// The arithmetic methods work on these words rather than byte by byte: ring
// comparisons sit on the innermost loop of every routing hop.
func (id ID) words() (hi, lo uint64) {
	return binary.BigEndian.Uint64(id[:8]), binary.BigEndian.Uint64(id[8:])
}

// fromWords reassembles an identifier from its 64-bit halves.
func fromWords(hi, lo uint64) ID {
	var out ID
	binary.BigEndian.PutUint64(out[:8], hi)
	binary.BigEndian.PutUint64(out[8:], lo)
	return out
}

// Less reports whether id < other as unsigned integers. Note that on a ring
// plain ordering is rarely what you want; see Between.
func (id ID) Less(other ID) bool { return id.Cmp(other) < 0 }

// Add returns id + other modulo 2^128.
func (id ID) Add(other ID) ID {
	ahi, alo := id.words()
	bhi, blo := other.words()
	lo, carry := bits.Add64(alo, blo, 0)
	hi, _ := bits.Add64(ahi, bhi, carry)
	return fromWords(hi, lo)
}

// Sub returns id - other modulo 2^128. When id and other are ring positions
// this is the clockwise distance from other to id.
func (id ID) Sub(other ID) ID {
	ahi, alo := id.words()
	bhi, blo := other.words()
	lo, borrow := bits.Sub64(alo, blo, 0)
	hi, _ := bits.Sub64(ahi, bhi, borrow)
	return fromWords(hi, lo)
}

// AddPowerOfTwo returns id + 2^k modulo 2^128, for 0 <= k < Bits. It is the
// offset used to place the k-th finger of a Chord node. It panics if k is out
// of range, which indicates a programming error in the overlay.
func (id ID) AddPowerOfTwo(k int) ID {
	if k < 0 || k >= Bits {
		panic(fmt.Sprintf("chordid: AddPowerOfTwo exponent %d out of [0,%d)", k, Bits))
	}
	var p ID
	byteIdx := Bytes - 1 - k/8
	p[byteIdx] = 1 << (k % 8)
	return id.Add(p)
}

// Distance returns the clockwise distance from id to other: the number of
// steps walking the ring in the direction of increasing identifiers needed to
// reach other from id.
func (id ID) Distance(other ID) ID {
	return other.Sub(id)
}

// Between reports whether id lies on the open clockwise arc (a, b). On a
// ring the arc may wrap through zero; when a == b the arc spans the whole
// ring excluding a itself, matching Chord's convention.
func (id ID) Between(a, b ID) bool {
	ca := a.Cmp(b)
	switch {
	case ca < 0: // no wrap: a < id < b
		return id.Cmp(a) > 0 && id.Cmp(b) < 0
	case ca > 0: // wraps through zero: id > a or id < b
		return id.Cmp(a) > 0 || id.Cmp(b) < 0
	default: // a == b: whole ring except a
		return id.Cmp(a) != 0
	}
}

// BetweenRightIncl reports whether id lies on the clockwise arc (a, b]. This
// is the test Chord uses to decide whether a key is owned by the successor b.
func (id ID) BetweenRightIncl(a, b ID) bool {
	if id.Cmp(b) == 0 {
		return true
	}
	return id.Between(a, b)
}

// BetweenLeftIncl reports whether id lies on the clockwise arc [a, b).
func (id ID) BetweenLeftIncl(a, b ID) bool {
	if id.Cmp(a) == 0 {
		return true
	}
	return id.Between(a, b)
}
