package chordid

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestHashKeyDeterministic(t *testing.T) {
	a := HashKey("database")
	b := HashKey("database")
	if a != b {
		t.Fatalf("HashKey not deterministic: %v vs %v", a, b)
	}
	c := HashKey("databases")
	if a == c {
		t.Fatalf("distinct keys collided: %v", a)
	}
}

func TestHashBytesMatchesHashKey(t *testing.T) {
	if HashKey("retrieval") != HashBytes([]byte("retrieval")) {
		t.Fatal("HashKey and HashBytes disagree on identical input")
	}
}

func TestFromUint64RoundTrip(t *testing.T) {
	for _, v := range []uint64{0, 1, 255, 256, 1 << 20, 1<<63 + 12345, ^uint64(0)} {
		if got := FromUint64(v).Uint64(); got != v {
			t.Errorf("FromUint64(%d).Uint64() = %d", v, got)
		}
	}
}

func TestStringParseRoundTrip(t *testing.T) {
	id := HashKey("chord")
	parsed, err := ParseID(id.String())
	if err != nil {
		t.Fatalf("ParseID: %v", err)
	}
	if parsed != id {
		t.Fatalf("round trip mismatch: %v vs %v", parsed, id)
	}
}

func TestParseIDErrors(t *testing.T) {
	if _, err := ParseID("zz"); err == nil {
		t.Error("ParseID accepted invalid hex")
	}
	if _, err := ParseID("abcd"); err == nil {
		t.Error("ParseID accepted short input")
	}
	if _, err := ParseID(HashKey("x").String() + "00"); err == nil {
		t.Error("ParseID accepted long input")
	}
}

func TestCmp(t *testing.T) {
	a, b := FromUint64(5), FromUint64(9)
	if a.Cmp(b) != -1 || b.Cmp(a) != 1 || a.Cmp(a) != 0 {
		t.Fatalf("Cmp misordered small values")
	}
	// High-byte difference must dominate.
	var hi ID
	hi[0] = 1
	if hi.Cmp(FromUint64(^uint64(0))) != 1 {
		t.Fatal("Cmp ignored high bytes")
	}
	if !a.Less(b) || b.Less(a) {
		t.Fatal("Less inconsistent with Cmp")
	}
}

func TestAddSubInverse(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 200; i++ {
		var a, b ID
		rng.Read(a[:])
		rng.Read(b[:])
		if got := a.Add(b).Sub(b); got != a {
			t.Fatalf("(a+b)-b != a for a=%v b=%v", a, b)
		}
	}
}

func TestAddWraps(t *testing.T) {
	var max ID
	for i := range max {
		max[i] = 0xff
	}
	if got := max.Add(FromUint64(1)); got != (ID{}) {
		t.Fatalf("max+1 = %v, want 0", got)
	}
	if got := (ID{}).Sub(FromUint64(1)); got != max {
		t.Fatalf("0-1 = %v, want max", got)
	}
}

func TestAddPowerOfTwo(t *testing.T) {
	base := FromUint64(10)
	if got := base.AddPowerOfTwo(0).Uint64(); got != 11 {
		t.Errorf("10 + 2^0 = %d, want 11", got)
	}
	if got := base.AddPowerOfTwo(10).Uint64(); got != 10+1024 {
		t.Errorf("10 + 2^10 = %d, want %d", got, 10+1024)
	}
	// 2^127 flips the top bit.
	got := (ID{}).AddPowerOfTwo(Bits - 1)
	var want ID
	want[0] = 0x80
	if got != want {
		t.Errorf("0 + 2^127 = %v, want %v", got, want)
	}
}

func TestAddPowerOfTwoPanics(t *testing.T) {
	for _, k := range []int{-1, Bits} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("AddPowerOfTwo(%d) did not panic", k)
				}
			}()
			(ID{}).AddPowerOfTwo(k)
		}()
	}
}

func TestBetweenNoWrap(t *testing.T) {
	a, m, b := FromUint64(10), FromUint64(20), FromUint64(30)
	if !m.Between(a, b) {
		t.Error("20 not in (10,30)")
	}
	if a.Between(a, b) || b.Between(a, b) {
		t.Error("endpoints must be excluded from open interval")
	}
	if FromUint64(5).Between(a, b) || FromUint64(35).Between(a, b) {
		t.Error("points outside (10,30) reported inside")
	}
}

func TestBetweenWrap(t *testing.T) {
	a, b := FromUint64(1000), FromUint64(10) // arc wraps through 0
	for _, v := range []uint64{1001, 5, 0} {
		if !FromUint64(v).Between(a, b) {
			t.Errorf("%d not in wrapped arc (1000,10)", v)
		}
	}
	for _, v := range []uint64{500, 10, 1000} {
		if FromUint64(v).Between(a, b) {
			t.Errorf("%d wrongly in wrapped arc (1000,10)", v)
		}
	}
}

func TestBetweenDegenerate(t *testing.T) {
	a := FromUint64(42)
	if a.Between(a, a) {
		t.Error("a in (a,a): the only excluded point is a itself")
	}
	if !FromUint64(7).Between(a, a) {
		t.Error("(a,a) must cover the whole ring except a")
	}
}

func TestBetweenInclusiveVariants(t *testing.T) {
	a, b := FromUint64(10), FromUint64(30)
	if !b.BetweenRightIncl(a, b) {
		t.Error("b not in (a,b]")
	}
	if a.BetweenRightIncl(a, b) {
		t.Error("a in (a,b]")
	}
	if !a.BetweenLeftIncl(a, b) {
		t.Error("a not in [a,b)")
	}
	if b.BetweenLeftIncl(a, b) {
		t.Error("b in [a,b)")
	}
}

func TestDistance(t *testing.T) {
	a, b := FromUint64(100), FromUint64(40)
	if d := b.Distance(a).Uint64(); d != 60 {
		t.Errorf("distance 40->100 = %d, want 60", d)
	}
	// Wrapping distance: from 100 clockwise to 40 crosses zero.
	d := a.Distance(b)
	want := FromUint64(40).Sub(FromUint64(100))
	if d != want {
		t.Errorf("wrapped distance = %v, want %v", d, want)
	}
}

// Property: Between(a,b) partitions the ring — for any distinct a, b, every
// id is in exactly one of (a,b) and [b,a).
func TestBetweenPartitionProperty(t *testing.T) {
	f := func(av, bv, idv uint64) bool {
		a, b, id := FromUint64(av), FromUint64(bv), FromUint64(idv)
		if a == b {
			return true
		}
		in1 := id.Between(a, b)
		in2 := id.BetweenLeftIncl(b, a)
		return in1 != in2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// Property: Add is commutative and associative mod 2^128.
func TestAddAlgebraProperty(t *testing.T) {
	comm := func(x, y uint64) bool {
		a, b := HashKey(string(rune(x%1000))+"a"), FromUint64(y)
		return a.Add(b) == b.Add(a)
	}
	if err := quick.Check(comm, nil); err != nil {
		t.Error(err)
	}
	assoc := func(x, y, z uint64) bool {
		a, b, c := FromUint64(x), FromUint64(y), FromUint64(z)
		return a.Add(b).Add(c) == a.Add(b.Add(c))
	}
	if err := quick.Check(assoc, nil); err != nil {
		t.Error(err)
	}
}

// Property: clockwise distances around the full circle sum to zero.
func TestDistanceCycleProperty(t *testing.T) {
	f := func(x, y, z uint64) bool {
		a, b, c := FromUint64(x), FromUint64(y), FromUint64(z)
		total := a.Distance(b).Add(b.Distance(c)).Add(c.Distance(a))
		return total == ID{}
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestShort(t *testing.T) {
	id := HashKey("short")
	if len(id.Short()) != 8 {
		t.Fatalf("Short() = %q, want 8 hex digits", id.Short())
	}
	if id.String()[:8] != id.Short() {
		t.Fatal("Short is not a prefix of String")
	}
}
