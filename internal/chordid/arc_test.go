package chordid

import "testing"

func TestArcContains(t *testing.T) {
	a, b, c := FromUint64(100), FromUint64(200), FromUint64(300)
	arc := OwnerArc(a, b) // (100, 200]
	if arc.Contains(a) {
		t.Error("arc contains its exclusive lower bound")
	}
	if !arc.Contains(b) {
		t.Error("arc misses its inclusive upper bound")
	}
	if !arc.Contains(FromUint64(150)) || arc.Contains(c) {
		t.Error("interior/exterior membership wrong")
	}
	if arc.Wraps() {
		t.Error("(100,200] reported as wrapping")
	}

	wrap := OwnerArc(c, a) // (300, 100]: wraps through zero
	if !wrap.Wraps() {
		t.Error("(300,100] not reported as wrapping")
	}
	if !wrap.Contains(FromUint64(50)) || !wrap.Contains(FromUint64(400)) {
		t.Error("wrapping arc misses members on either side of zero")
	}
	if wrap.Contains(FromUint64(150)) {
		t.Error("wrapping arc contains an excluded key")
	}
}

func TestArcFullAndSpan(t *testing.T) {
	x := FromUint64(42)
	full := OwnerArc(x, x)
	if !full.IsFull() {
		t.Error("(x,x] not reported full")
	}
	if !full.Contains(FromUint64(7)) || !full.Contains(x) {
		t.Error("full arc excludes a key")
	}
	half := OwnerArc(FromUint64(10), FromUint64(110))
	if got := half.Span().Uint64(); got != 100 {
		t.Errorf("Span = %d, want 100", got)
	}
	if full.Span().Uint64() == 0 {
		t.Error("full arc span is zero")
	}
}

func TestArcContainsKey(t *testing.T) {
	key := "chord"
	h := HashKey(key)
	arc := OwnerArc(h.Sub(FromUint64(1)), h)
	if !arc.ContainsKey(key) {
		t.Error("tight arc around the key's hash misses it")
	}
	outside := OwnerArc(h, h.Add(FromUint64(1)))
	if outside.ContainsKey(key) {
		t.Error("arc starting at the key's hash (exclusive) contains it")
	}
}
