// Package central implements the centralized text-retrieval baseline of the
// SPRITE evaluation (§6): an ideal system with perfect global knowledge —
// every term of every document indexed, the exact document frequency n_k,
// and the exact corpus size N — ranking with the classic TF·IDF weighting.
// The paper reports every distributed system's precision and recall as a
// ratio over this system; it also anchors the query generator's Phase 2
// (relevant-document derivation over ranked lists).
package central

import (
	"github.com/spritedht/sprite/internal/corpus"
	"github.com/spritedht/sprite/internal/index"
	"github.com/spritedht/sprite/internal/ir"
)

// System is the centralized retrieval system over a fixed corpus.
type System struct {
	c  *corpus.Corpus
	ix *index.Inverted
}

// New indexes every term of every document — exactly what a distributed
// system cannot afford (§1) and the reason SPRITE exists.
func New(c *corpus.Corpus) *System {
	ix := index.NewInverted()
	for _, d := range c.Docs() {
		for t, f := range d.TF {
			ix.Add(t, index.Posting{Doc: d.ID, Owner: "central", Freq: f, DocLen: d.Length})
		}
	}
	return &System{c: c, ix: ix}
}

// Corpus returns the underlying corpus.
func (s *System) Corpus() *corpus.Corpus { return s.c }

// Rank scores every document matching at least one query term and returns
// the full descending ranked list. Weights use the exact corpus statistics:
// w_ik = ntf_ik · log(N/n_k).
func (s *System) Rank(terms []string) ir.RankedList {
	n := s.c.N()
	acc := ir.NewAccumulator()
	// Query term frequencies (queries may repeat a term).
	qtf := make(map[string]int, len(terms))
	for _, t := range terms {
		qtf[t]++
	}
	for t, f := range qtf {
		df := s.c.DocFreq(t)
		if df == 0 {
			continue
		}
		wq := ir.QueryWeight(f, len(terms), n, df)
		if wq == 0 {
			continue
		}
		for p := range s.ix.All(t) {
			wd := ir.Weight(p.NormFreq(), n, df)
			acc.Accumulate(p.Doc, wq*wd, p.DocLen)
		}
	}
	return acc.Ranked()
}

// Search returns the top-k ranked documents for the query terms.
func (s *System) Search(terms []string, k int) ir.RankedList {
	return s.Rank(terms).Top(k)
}

// Index exposes the underlying inverted index (read-mostly; used by cost
// accounting to compare full indexing against selective indexing).
func (s *System) Index() *index.Inverted { return s.ix }
