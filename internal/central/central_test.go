package central

import (
	"testing"

	"github.com/spritedht/sprite/internal/corpus"
	"github.com/spritedht/sprite/internal/ir"
)

func testCorpus() *corpus.Corpus {
	return corpus.MustNew([]*corpus.Document{
		// d1 is about chord/dht; d2 about chord/music; d3 background.
		corpus.NewDocument("d1", map[string]int{"chord": 5, "dht": 4, "peer": 3, "net": 1}),
		corpus.NewDocument("d2", map[string]int{"chord": 4, "music": 6, "guitar": 2}),
		corpus.NewDocument("d3", map[string]int{"net": 5, "peer": 2, "cable": 3}),
	})
}

func TestRankPrefersMatchingDocs(t *testing.T) {
	s := New(testCorpus())
	rl := s.Rank([]string{"chord", "dht"})
	if len(rl) != 2 {
		t.Fatalf("ranked %d docs, want 2 (d1, d2)", len(rl))
	}
	if rl[0].Doc != "d1" {
		t.Fatalf("top doc = %s, want d1 (matches both terms)", rl[0].Doc)
	}
	if rl[0].Score <= rl[1].Score {
		t.Fatal("scores not descending")
	}
}

func TestRankIDFDemotesCommonTerms(t *testing.T) {
	s := New(testCorpus())
	// "peer" appears in d1 and d3; "dht" only in d1. A query for "dht"
	// should score d1 higher than a query for "peer" does, because dht is
	// rarer (higher IDF) even though peer's tf in d1 is similar.
	dht := s.Rank([]string{"dht"})
	peer := s.Rank([]string{"peer"})
	if dht[0].Doc != "d1" {
		t.Fatalf("dht top = %s", dht[0].Doc)
	}
	var peerD1 float64
	for _, h := range peer {
		if h.Doc == "d1" {
			peerD1 = h.Score
		}
	}
	if dht[0].Score <= peerD1 {
		t.Fatalf("IDF not applied: dht score %v <= peer score %v", dht[0].Score, peerD1)
	}
}

func TestRankUnknownTerm(t *testing.T) {
	s := New(testCorpus())
	if rl := s.Rank([]string{"zzz"}); len(rl) != 0 {
		t.Fatalf("unknown term ranked %d docs", len(rl))
	}
	if rl := s.Rank(nil); len(rl) != 0 {
		t.Fatalf("empty query ranked %d docs", len(rl))
	}
}

func TestSearchTruncates(t *testing.T) {
	s := New(testCorpus())
	rl := s.Search([]string{"peer", "net"}, 1)
	if len(rl) != 1 {
		t.Fatalf("Search k=1 returned %d", len(rl))
	}
}

func TestRepeatedQueryTermWeighsMore(t *testing.T) {
	s := New(testCorpus())
	single := s.Rank([]string{"chord", "net"})
	double := s.Rank([]string{"chord", "chord", "net"})
	// Repeating "chord" should shift weight toward chord-heavy d1/d2
	// relative to net-heavy d3.
	rank := func(rl ir.RankedList, doc string) int {
		for i, h := range rl {
			if string(h.Doc) == doc {
				return i
			}
		}
		return len(rl)
	}
	if rank(double, "d3") < rank(single, "d3") {
		t.Fatal("repeating a query term improved an unrelated doc's rank")
	}
}

func TestIndexCoversAllTerms(t *testing.T) {
	c := testCorpus()
	s := New(c)
	// The centralized system indexes every term of every document (§1's
	// "impractical in a distributed setting" baseline).
	want := 0
	for _, d := range c.Docs() {
		want += len(d.TF)
	}
	if got := s.Index().NumPostings(); got != want {
		t.Fatalf("postings = %d, want %d (all terms)", got, want)
	}
	if s.Corpus() != c {
		t.Fatal("Corpus accessor broken")
	}
}

func TestCentralMatchesExactDF(t *testing.T) {
	c := testCorpus()
	s := New(c)
	if got := s.Index().DocFreq("chord"); got != c.DocFreq("chord") {
		t.Fatalf("index df %d != corpus df %d", got, c.DocFreq("chord"))
	}
}
