package nettransport

import (
	"context"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"github.com/spritedht/sprite/internal/chord"
	"github.com/spritedht/sprite/internal/chordid"
	"github.com/spritedht/sprite/internal/core"
	"github.com/spritedht/sprite/internal/corpus"
	"github.com/spritedht/sprite/internal/index"
	"github.com/spritedht/sprite/internal/simnet"
	"github.com/spritedht/sprite/internal/telemetry"
)

func echo() simnet.Handler {
	return simnet.HandlerFunc(func(from simnet.Addr, msg simnet.Message) (simnet.Message, error) {
		return simnet.Message{Type: msg.Type + ".ok", Payload: msg.Payload, Size: msg.Size}, nil
	})
}

func TestFreeAddrsDistinct(t *testing.T) {
	addrs, err := FreeAddrs(5)
	if err != nil {
		t.Fatalf("FreeAddrs: %v", err)
	}
	seen := map[simnet.Addr]bool{}
	for _, a := range addrs {
		if seen[a] {
			t.Fatalf("duplicate address %s", a)
		}
		seen[a] = true
	}
}

func TestCallRoundTripOverTCP(t *testing.T) {
	tr := New()
	defer tr.Close()
	addrs, err := FreeAddrs(1)
	if err != nil {
		t.Fatal(err)
	}
	tr.Register(addrs[0], echo())
	if err := tr.LastError(); err != nil {
		t.Fatalf("Register: %v", err)
	}
	reply, err := tr.Call("client", addrs[0], simnet.Message{Type: "ping", Payload: "hello", Size: 5})
	if err != nil {
		t.Fatalf("Call: %v", err)
	}
	if reply.Type != "ping.ok" || reply.Payload.(string) != "hello" {
		t.Fatalf("reply = %+v", reply)
	}
}

func TestCallUnreachable(t *testing.T) {
	tr := New(WithDialTimeout(200 * time.Millisecond))
	defer tr.Close()
	_, err := tr.Call("client", "127.0.0.1:1", simnet.Message{Type: "ping"})
	if !errors.Is(err, simnet.ErrUnreachable) {
		t.Fatalf("err = %v, want ErrUnreachable", err)
	}
	if tr.Alive("127.0.0.1:1") {
		t.Fatal("dead peer reported alive (negative cache miss)")
	}
}

func TestHandlerErrorPropagates(t *testing.T) {
	tr := New()
	defer tr.Close()
	addrs, _ := FreeAddrs(1)
	tr.Register(addrs[0], simnet.HandlerFunc(func(simnet.Addr, simnet.Message) (simnet.Message, error) {
		return simnet.Message{}, errors.New("kaboom")
	}))
	_, err := tr.Call("client", addrs[0], simnet.Message{Type: "x"})
	if err == nil || !strings.Contains(err.Error(), "kaboom") {
		t.Fatalf("handler error lost: %v", err)
	}
}

func TestUnregisterStopsServing(t *testing.T) {
	tr := New(WithDialTimeout(200 * time.Millisecond))
	defer tr.Close()
	addrs, _ := FreeAddrs(1)
	tr.Register(addrs[0], echo())
	if _, err := tr.Call("c", addrs[0], simnet.Message{Type: "a"}); err != nil {
		t.Fatal(err)
	}
	tr.Unregister(addrs[0])
	if _, err := tr.Call("c", addrs[0], simnet.Message{Type: "a"}); !errors.Is(err, simnet.ErrUnreachable) {
		t.Fatalf("call after unregister: %v", err)
	}
}

func TestAliveLocalAndRemote(t *testing.T) {
	tr := New(WithDialTimeout(200 * time.Millisecond))
	defer tr.Close()
	addrs, _ := FreeAddrs(1)
	tr.Register(addrs[0], echo())
	if !tr.Alive(addrs[0]) {
		t.Fatal("local listener not alive")
	}
	// A second transport (remote view) can probe it too.
	tr2 := New(WithDialTimeout(200 * time.Millisecond))
	defer tr2.Close()
	if !tr2.Alive(addrs[0]) {
		t.Fatal("remote probe failed")
	}
}

func TestConcurrentCalls(t *testing.T) {
	tr := New()
	defer tr.Close()
	addrs, _ := FreeAddrs(1)
	tr.Register(addrs[0], echo())
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 8; i++ {
				if _, err := tr.Call("c", addrs[0], simnet.Message{Type: "t", Payload: fmt.Sprintf("%d-%d", w, i)}); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestChordRingOverTCP runs the real overlay protocol — joins, stabilization,
// iterative lookups — over loopback sockets.
func TestChordRingOverTCP(t *testing.T) {
	tr := New(WithDialTimeout(500 * time.Millisecond))
	defer tr.Close()
	addrs, err := FreeAddrs(8)
	if err != nil {
		t.Fatal(err)
	}
	ring := chord.NewRing(tr, chord.Config{FingerBits: 24})
	for _, a := range addrs {
		if _, err := ring.AddNode(string(a)); err != nil {
			t.Fatal(err)
		}
	}
	if err := tr.LastError(); err != nil {
		t.Fatalf("listener failed: %v", err)
	}
	ring.Build()
	nodes := ring.Nodes()
	for i := 0; i < 20; i++ {
		key := chordid.HashKey(fmt.Sprintf("tcp-key-%d", i))
		got, hops, err := nodes[i%len(nodes)].Lookup(key)
		if err != nil {
			t.Fatalf("Lookup over TCP: %v", err)
		}
		want, _ := ring.Owner(key)
		if got.ID != want.ID() {
			t.Fatalf("lookup mismatch over TCP for %s", key.Short())
		}
		if hops < 0 {
			t.Fatal("negative hops")
		}
	}
}

// TestSpriteOverTCP runs the full SPRITE stack — share, search, learn — over
// loopback sockets, proving the protocol does not depend on the simulator.
func TestSpriteOverTCP(t *testing.T) {
	tr := New(WithDialTimeout(500 * time.Millisecond))
	defer tr.Close()
	addrs, err := FreeAddrs(6)
	if err != nil {
		t.Fatal(err)
	}
	ring := chord.NewRing(tr, chord.Config{FingerBits: 24})
	for _, a := range addrs {
		if _, err := ring.AddNode(string(a)); err != nil {
			t.Fatal(err)
		}
	}
	ring.Build()
	net, err := core.NewNetwork(ring, core.Config{InitialTerms: 2, TermsPerIteration: 2, MaxIndexTerms: 6})
	if err != nil {
		t.Fatal(err)
	}

	owner := addrs[0]
	doc := corpus.NewDocument(index.DocID("tcp-doc"), map[string]int{
		"socket": 5, "frame": 3, "gob": 1,
	})
	if err := net.Share(owner, doc); err != nil {
		t.Fatalf("Share over TCP: %v", err)
	}
	rl, err := net.Search(addrs[3], []string{"socket"}, 5)
	if err != nil {
		t.Fatalf("Search over TCP: %v", err)
	}
	if len(rl) != 1 || rl[0].Doc != "tcp-doc" {
		t.Fatalf("search results = %v", rl)
	}
	// The rare term is unindexed; query it together with an indexed term,
	// learn, and verify it becomes findable — the full learning loop over
	// real sockets.
	if _, err := net.Search(addrs[4], []string{"socket", "gob"}, 5); err != nil {
		t.Fatal(err)
	}
	if _, err := net.LearnAll(); err != nil {
		t.Fatalf("LearnAll over TCP: %v", err)
	}
	rl, err = net.Search(addrs[5], []string{"gob"}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(rl) != 1 {
		t.Fatalf("learned term not findable over TCP: %v", rl)
	}
}

// TestJoinRemoteAcrossTransports joins a node hosted on one Transport into a
// ring hosted on another, knowing only the bootstrap's TCP address — the
// cross-process join path.
func TestJoinRemoteAcrossTransports(t *testing.T) {
	trA := New(WithDialTimeout(500 * time.Millisecond))
	defer trA.Close()
	trB := New(WithDialTimeout(500 * time.Millisecond))
	defer trB.Close()

	addrs, err := FreeAddrs(5)
	if err != nil {
		t.Fatal(err)
	}
	ring := chord.NewRing(trA, chord.Config{FingerBits: 24})
	for _, a := range addrs[:4] {
		if _, err := ring.AddNode(string(a)); err != nil {
			t.Fatal(err)
		}
	}
	ring.Build()

	// The joiner lives on a different Transport instance — it shares nothing
	// with the ring but the wire protocol.
	joiner := chord.NewNode(trB, string(addrs[4]), chord.Config{FingerBits: 24})
	if err := joiner.JoinRemote(addrs[0]); err != nil {
		t.Fatalf("JoinRemote: %v", err)
	}
	succ := joiner.Successor()
	if succ.IsZero() || succ.ID == joiner.ID() {
		t.Fatalf("joiner successor = %v", succ)
	}
	// The successor must be the globally correct one.
	want, _ := ring.Owner(joiner.ID())
	if succ.ID != want.ID() {
		t.Fatalf("joiner successor = %s, want %s", succ.ID.Short(), want.ID().Short())
	}
}

func TestLargePayloadOverTCP(t *testing.T) {
	gob.Register(map[string]int{}) // test-only payload type
	tr := New()
	defer tr.Close()
	addrs, _ := FreeAddrs(1)
	tr.Register(addrs[0], echo())
	// A postings-sized payload (map with many entries) must survive the gob
	// round trip intact.
	big := make(map[string]int, 5000)
	for i := 0; i < 5000; i++ {
		big[fmt.Sprintf("term%04d", i)] = i
	}
	reply, err := tr.Call("c", addrs[0], simnet.Message{Type: "big", Payload: big, Size: len(big) * 12})
	if err != nil {
		t.Fatalf("Call: %v", err)
	}
	got := reply.Payload.(map[string]int)
	if len(got) != len(big) || got["term4999"] != 4999 {
		t.Fatalf("large payload corrupted: %d entries", len(got))
	}
}

func TestCallTimeoutOnStuckHandler(t *testing.T) {
	tr := New(WithCallTimeout(300 * time.Millisecond))
	defer tr.Close()
	addrs, _ := FreeAddrs(1)
	block := make(chan struct{})
	tr.Register(addrs[0], simnet.HandlerFunc(func(simnet.Addr, simnet.Message) (simnet.Message, error) {
		<-block // never replies within the deadline
		return simnet.Message{}, nil
	}))
	defer close(block)
	start := time.Now()
	_, err := tr.Call("c", addrs[0], simnet.Message{Type: "stuck"})
	if err == nil {
		t.Fatal("stuck handler did not time out")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("timeout took %v, want ~300ms", elapsed)
	}
}

func TestReRegisterSwapsHandler(t *testing.T) {
	tr := New()
	defer tr.Close()
	addrs, _ := FreeAddrs(1)
	tr.Register(addrs[0], simnet.HandlerFunc(func(simnet.Addr, simnet.Message) (simnet.Message, error) {
		return simnet.Message{Type: "v1"}, nil
	}))
	tr.Register(addrs[0], simnet.HandlerFunc(func(simnet.Addr, simnet.Message) (simnet.Message, error) {
		return simnet.Message{Type: "v2"}, nil
	}))
	reply, err := tr.Call("c", addrs[0], simnet.Message{Type: "x"})
	if err != nil {
		t.Fatal(err)
	}
	if reply.Type != "v2" {
		t.Fatalf("re-register did not swap handler: got %q", reply.Type)
	}
}

func TestRegisterUnbindableAddress(t *testing.T) {
	tr := New(WithDialTimeout(200 * time.Millisecond))
	defer tr.Close()
	// Port 1 requires privileges; Register must record the failure instead
	// of panicking, and the peer must read as dead.
	tr.Register("127.0.0.1:1", echo())
	if tr.LastError() == nil {
		t.Skip("binding to port 1 unexpectedly allowed in this environment")
	}
	if tr.Alive("127.0.0.1:1") {
		t.Fatal("unbindable peer reported alive")
	}
}

func TestRegisterAfterClose(t *testing.T) {
	tr := New()
	tr.Close()
	addrs, _ := FreeAddrs(1)
	tr.Register(addrs[0], echo())
	if tr.LastError() == nil {
		t.Fatal("register after Close did not record an error")
	}
}

// TestDialFailureWrapsUnreachable pins the error contract for the dial path:
// a connection-refused destination must read as simnet.ErrUnreachable so the
// overlay routes around it, and the dial-error counter must tick.
func TestDialFailureWrapsUnreachable(t *testing.T) {
	reg := telemetry.NewRegistry()
	tr := New(WithDialTimeout(300*time.Millisecond), WithTelemetry(reg))
	defer tr.Close()
	// Reserve-and-release guarantees nothing is listening at the address.
	addrs, err := FreeAddrs(1)
	if err != nil {
		t.Fatal(err)
	}
	_, err = tr.Call("c", addrs[0], simnet.Message{Type: "ping"})
	if !errors.Is(err, simnet.ErrUnreachable) {
		t.Fatalf("dial failure error = %v, want wrapping simnet.ErrUnreachable", err)
	}
	if got := reg.Counter("net.errors.dial").Value(); got != 1 {
		t.Fatalf("net.errors.dial = %d, want 1", got)
	}
	if tr.Alive(addrs[0]) {
		t.Fatal("dead peer still reads as alive")
	}
}

// TestCallTimeoutWrapsUnreachable covers the harder half of the timeout
// contract: the server accepts the connection but never replies. The reply
// deadline must expire within the call timeout, surface as
// simnet.ErrUnreachable, tick net.errors.timeout, and mark the peer dead.
func TestCallTimeoutWrapsUnreachable(t *testing.T) {
	reg := telemetry.NewRegistry()
	tr := New(WithCallTimeout(300*time.Millisecond), WithTelemetry(reg))
	defer tr.Close()
	// A raw listener that accepts and then sits on the connection: the
	// request frame is consumed by TCP buffers, so the caller blocks on the
	// reply read until its deadline fires.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	hold := make(chan struct{})
	defer close(hold)
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func() { <-hold; conn.Close() }()
		}
	}()
	addr := simnet.Addr(ln.Addr().String())
	start := time.Now()
	_, err = tr.Call("c", addr, simnet.Message{Type: "stuck"})
	if !errors.Is(err, simnet.ErrUnreachable) {
		t.Fatalf("reply timeout error = %v, want wrapping simnet.ErrUnreachable", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("timeout took %v, want ~300ms", elapsed)
	}
	if got := reg.Counter("net.errors.timeout").Value(); got != 1 {
		t.Fatalf("net.errors.timeout = %d, want 1", got)
	}
	tr.mu.Lock()
	_, dead := tr.deadUntil[addr]
	tr.mu.Unlock()
	if !dead {
		t.Fatal("timed-out peer was not negative-cached as dead")
	}
}

// TestTelemetryCountsCallsAndServes checks the success-path instrumentation:
// caller-side per-type calls/bytes/latency and server-side served counts.
func TestTelemetryCountsCallsAndServes(t *testing.T) {
	reg := telemetry.NewRegistry()
	tr := New(WithTelemetry(reg))
	defer tr.Close()
	addrs, err := FreeAddrs(1)
	if err != nil {
		t.Fatal(err)
	}
	tr.Register(addrs[0], echo())
	for i := 0; i < 3; i++ {
		if _, err := tr.Call("c", addrs[0], simnet.Message{Type: "ping", Size: 8}); err != nil {
			t.Fatalf("Call: %v", err)
		}
	}
	if got := reg.Counter("net.calls.ping").Value(); got != 3 {
		t.Fatalf("net.calls.ping = %d, want 3", got)
	}
	if got := reg.Counter("net.served.ping").Value(); got != 3 {
		t.Fatalf("net.served.ping = %d, want 3", got)
	}
	if got := reg.Counter("net.bytes.ping").Value(); got != 48 {
		t.Fatalf("net.bytes.ping = %d, want 48 (3 x (8 req + 8 reply))", got)
	}
	if got := reg.Histogram("net.latency_us").Count(); got != 3 {
		t.Fatalf("net.latency_us count = %d, want 3", got)
	}
}

// TestDeadPeerTTLExpiryAndReuse covers the configurable negative cache: a
// failed dial marks the peer dead for the configured TTL (calls fail fast,
// Alive is false without re-probing), and once the TTL passes the address is
// probed — and usable — again.
func TestDeadPeerTTLExpiryAndReuse(t *testing.T) {
	const ttl = 150 * time.Millisecond
	tr := New(WithDialTimeout(200*time.Millisecond), WithDeadPeerTTL(ttl))
	defer tr.Close()
	addrs, err := FreeAddrs(1)
	if err != nil {
		t.Fatal(err)
	}
	addr := addrs[0]

	// Nothing listens yet: the first call fails and negative-caches addr.
	if _, err := tr.Call("client", addr, simnet.Message{Type: "ping"}); !errors.Is(err, simnet.ErrUnreachable) {
		t.Fatalf("call to vacant addr: err = %v, want ErrUnreachable", err)
	}
	if tr.Alive(addr) {
		t.Fatal("addr alive while negative-cached")
	}

	// The peer comes up inside the TTL window; the cache still says dead.
	tr2 := New()
	defer tr2.Close()
	tr2.Register(addr, echo())
	if err := tr2.LastError(); err != nil {
		t.Fatal(err)
	}
	if tr.Alive(addr) {
		t.Fatal("negative cache ignored before TTL expiry")
	}

	// After expiry the address is probed again and reused.
	deadline := time.Now().Add(5 * time.Second)
	for !tr.Alive(addr) {
		if time.Now().After(deadline) {
			t.Fatal("addr still dead long after the TTL expired")
		}
		time.Sleep(ttl / 3)
	}
	reply, err := tr.Call("client", addr, simnet.Message{Type: "ping"})
	if err != nil {
		t.Fatalf("call after TTL expiry: %v", err)
	}
	if reply.Type != "ping.ok" {
		t.Fatalf("reply type = %q, want ping.ok", reply.Type)
	}
}

// TestDeadPeerTTLDefault pins the default (1s) so the zero-config behaviour
// stays what the overlay's failure handling was tuned against.
func TestDeadPeerTTLDefault(t *testing.T) {
	if d := New().deadTTL; d != time.Second {
		t.Fatalf("default dead-peer TTL = %v, want 1s", d)
	}
	if d := New(WithDeadPeerTTL(-time.Second)).deadTTL; d != time.Second {
		t.Fatalf("non-positive TTL accepted: %v", d)
	}
	if d := New(WithDeadPeerTTL(3 * time.Second)).deadTTL; d != 3*time.Second {
		t.Fatalf("configured TTL = %v, want 3s", d)
	}
}

// TestPeerDiesMidCallWrapsUnreachable pins the audit half of the error
// contract: a peer that accepts the connection and then closes it before
// replying (crash, restart) must classify as simnet.ErrUnreachable via
// structural error matching, and be negative-cached — same as a peer that
// never answered the dial.
func TestPeerDiesMidCallWrapsUnreachable(t *testing.T) {
	reg := telemetry.NewRegistry()
	tr := New(WithTelemetry(reg))
	defer tr.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			// Slam the door: the caller's reply read sees EOF or a reset.
			conn.Close()
		}
	}()
	addr := simnet.Addr(ln.Addr().String())
	_, err = tr.Call("c", addr, simnet.Message{Type: "ping"})
	if !errors.Is(err, simnet.ErrUnreachable) {
		t.Fatalf("mid-call peer death error = %v, want wrapping simnet.ErrUnreachable", err)
	}
	tr.mu.Lock()
	_, dead := tr.deadUntil[addr]
	tr.mu.Unlock()
	if !dead {
		t.Fatal("peer that died mid-call was not negative-cached")
	}
}

// TestIsPeerGoneClassification drives the classifier with the error shapes
// the net package actually produces — wrapped in *net.OpError chains, the
// way Call sees them.
func TestIsPeerGoneClassification(t *testing.T) {
	gone := []error{
		io.EOF,
		io.ErrUnexpectedEOF,
		&net.OpError{Op: "read", Err: os.NewSyscallError("read", syscall.ECONNRESET)},
		&net.OpError{Op: "write", Err: os.NewSyscallError("write", syscall.EPIPE)},
		&net.OpError{Op: "dial", Err: os.NewSyscallError("connect", syscall.ECONNREFUSED)},
		fmt.Errorf("wrapped: %w", io.EOF),
	}
	for _, err := range gone {
		if !isPeerGone(err) {
			t.Errorf("isPeerGone(%v) = false, want true", err)
		}
	}
	notGone := []error{
		nil,
		errors.New("gob: type mismatch"),
		context.Canceled,
		&net.OpError{Op: "read", Err: os.NewSyscallError("read", syscall.ENOMEM)},
	}
	for _, err := range notGone {
		if isPeerGone(err) {
			t.Errorf("isPeerGone(%v) = true, want false", err)
		}
	}
}

// TestDialAndConnGaugeInstrumentation checks the pooling comparison's
// denominators: every call on this transport dials once, and the
// open-connection gauge returns to zero but retains its peak.
func TestDialAndConnGaugeInstrumentation(t *testing.T) {
	reg := telemetry.NewRegistry()
	tr := New(WithTelemetry(reg))
	defer tr.Close()
	addrs, err := FreeAddrs(1)
	if err != nil {
		t.Fatal(err)
	}
	tr.Register(addrs[0], echo())
	const calls = 7
	for i := 0; i < calls; i++ {
		if _, err := tr.Call("c", addrs[0], simnet.Message{Type: "ping"}); err != nil {
			t.Fatal(err)
		}
	}
	if got := reg.Counter("net.dials").Value(); got != calls {
		t.Fatalf("net.dials = %d, want %d (dial-per-RPC)", got, calls)
	}
	g := reg.Gauge("net.conns.open")
	if got := g.Value(); got != 0 {
		t.Fatalf("net.conns.open = %d after calls completed, want 0", got)
	}
	if g.Peak() < 1 {
		t.Fatalf("net.conns.open peak = %d, want >= 1", g.Peak())
	}
}
