// Package nettransport implements simnet.Transport over real TCP sockets
// with gob-encoded frames, so the same Chord overlay and SPRITE stack that
// run on the in-process simulator also run over the loopback or a LAN.
// Peer addresses are dialable "host:port" strings; each peer's Register
// binds a listener at its own address.
//
// The simulator remains the right tool for experiments (deterministic,
// metered); this transport exists to demonstrate — and test — that nothing
// in the protocol stack depends on the simulation: message payloads are
// serializable, handlers are re-entrant across real connections, and
// failures surface as transport errors the overlay already knows how to
// route around.
package nettransport

import (
	"bufio"
	"bytes"
	"context"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"syscall"
	"time"

	"github.com/spritedht/sprite/internal/simnet"
	"github.com/spritedht/sprite/internal/telemetry"
)

// encBufs recycles the buffers gob frames are staged in before a single
// conn.Write, and readBufs the buffered readers frames are decoded from.
// Dial-per-RPC transports pay a dial per call by design; they should not
// also pay a fresh 4KiB of encoder scratch per call.
var (
	encBufs  = sync.Pool{New: func() any { return new(bytes.Buffer) }}
	readBufs = sync.Pool{New: func() any { return bufio.NewReaderSize(nil, 4<<10) }}
)

// encodeTo stages one gob frame in a pooled buffer and writes it to conn in
// a single Write call.
func encodeTo(conn net.Conn, v any) error {
	buf := encBufs.Get().(*bytes.Buffer)
	defer func() { buf.Reset(); encBufs.Put(buf) }()
	if err := gob.NewEncoder(buf).Encode(v); err != nil {
		return err
	}
	_, err := conn.Write(buf.Bytes())
	return err
}

// isPeerGone reports whether err is the other end disappearing: connection
// refused or reset, a broken pipe, or the stream ending mid-frame. Matched
// structurally with errors.Is — never by substring — so wrapped *net.OpError
// chains classify correctly.
func isPeerGone(err error) bool {
	if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
		return true
	}
	return errors.Is(err, syscall.ECONNRESET) ||
		errors.Is(err, syscall.ECONNREFUSED) ||
		errors.Is(err, syscall.EPIPE)
}

// wireRequest is one RPC frame on the wire.
type wireRequest struct {
	From    simnet.Addr
	Type    string
	Size    int
	Payload any
}

// wireReply is the response frame.
type wireReply struct {
	Type    string
	Size    int
	Payload any
	Err     string
}

// Option configures a Transport.
type Option func(*Transport)

// WithDialTimeout sets the per-call dial timeout (default 2s).
func WithDialTimeout(d time.Duration) Option {
	return func(t *Transport) { t.dialTimeout = d }
}

// WithCallTimeout sets the per-call read/write deadline (default 5s).
func WithCallTimeout(d time.Duration) Option {
	return func(t *Transport) { t.callTimeout = d }
}

// WithTelemetry records per-message-type call counts, byte sizes, wall-clock
// round-trip latencies, and dial/timeout error counts into the registry. A
// nil registry leaves instrumentation off at the cost of one nil check per
// call.
func WithTelemetry(reg *telemetry.Registry) Option {
	return func(t *Transport) { t.tel = reg }
}

// WithDeadPeerTTL sets how long a peer that failed a dial or timed out is
// negative-cached as dead before Alive probes it again (default 1s). Short
// TTLs re-probe aggressively and suit churny networks where peers come back
// quickly; long TTLs spare repeated dial timeouts against hosts that stay
// gone. Non-positive values are ignored.
func WithDeadPeerTTL(d time.Duration) Option {
	return func(t *Transport) {
		if d > 0 {
			t.deadTTL = d
		}
	}
}

// Transport is a TCP implementation of simnet.Transport. It is safe for
// concurrent use. One Transport instance can host many local peers (each
// with its own listener), which is how in-process multi-peer tests run the
// full stack over the loopback.
type Transport struct {
	dialTimeout time.Duration
	callTimeout time.Duration
	deadTTL     time.Duration
	tel         *telemetry.Registry

	mu        sync.Mutex
	local     map[simnet.Addr]*listener
	deadUntil map[simnet.Addr]time.Time
	lastErr   error
	closed    bool
}

type listener struct {
	ln      net.Listener
	handler simnet.Handler
	done    chan struct{}
}

// New creates an empty transport.
func New(opts ...Option) *Transport {
	t := &Transport{
		dialTimeout: 2 * time.Second,
		callTimeout: 5 * time.Second,
		deadTTL:     time.Second,
		local:       make(map[simnet.Addr]*listener),
		deadUntil:   make(map[simnet.Addr]time.Time),
	}
	for _, o := range opts {
		o(t)
	}
	return t
}

// FreeAddrs reserves n distinct loopback TCP addresses and returns them.
// Each address was bound once (so the kernel considers it assigned) and
// released; callers should Register promptly to reclaim it.
func FreeAddrs(n int) ([]simnet.Addr, error) {
	addrs := make([]simnet.Addr, 0, n)
	lns := make([]net.Listener, 0, n)
	defer func() {
		for _, ln := range lns {
			ln.Close()
		}
	}()
	for i := 0; i < n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, fmt.Errorf("nettransport: reserve address: %w", err)
		}
		lns = append(lns, ln)
		addrs = append(addrs, simnet.Addr(ln.Addr().String()))
	}
	return addrs, nil
}

// Register binds a TCP listener at addr and serves incoming RPCs with h.
// addr must be a dialable host:port. If binding fails the peer is recorded
// as dead; LastError reports the cause.
func (t *Transport) Register(addr simnet.Addr, h simnet.Handler) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		t.lastErr = fmt.Errorf("nettransport: register %s: transport closed", addr)
		return
	}
	if old, ok := t.local[addr]; ok {
		old.handler = h
		return
	}
	ln, err := net.Listen("tcp", string(addr))
	if err != nil {
		// The interface cannot return an error; record unreachability so
		// Alive(addr) is false and calls fail fast.
		t.deadUntil[addr] = time.Now().Add(24 * time.Hour)
		t.lastErr = fmt.Errorf("nettransport: listen %s: %w", addr, err)
		return
	}
	l := &listener{ln: ln, handler: h, done: make(chan struct{})}
	t.local[addr] = l
	delete(t.deadUntil, addr)
	go t.serve(addr, l)
}

// LastError returns the most recent registration failure, if any.
func (t *Transport) LastError() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.lastErr
}

// Unregister closes addr's listener.
func (t *Transport) Unregister(addr simnet.Addr) {
	t.mu.Lock()
	l, ok := t.local[addr]
	if ok {
		delete(t.local, addr)
	}
	t.mu.Unlock()
	if ok {
		close(l.done)
		l.ln.Close()
	}
}

// Close shuts down every local listener.
func (t *Transport) Close() {
	t.mu.Lock()
	ls := make([]*listener, 0, len(t.local))
	for _, l := range t.local {
		ls = append(ls, l)
	}
	t.local = make(map[simnet.Addr]*listener)
	t.closed = true
	t.mu.Unlock()
	for _, l := range ls {
		close(l.done)
		l.ln.Close()
	}
}

func (t *Transport) serve(addr simnet.Addr, l *listener) {
	for {
		conn, err := l.ln.Accept()
		if err != nil {
			select {
			case <-l.done:
				return
			default:
				// Transient accept error; keep serving.
				continue
			}
		}
		go t.handleConn(addr, l, conn)
	}
}

func (t *Transport) handleConn(addr simnet.Addr, l *listener, conn net.Conn) {
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(t.callTimeout))
	br := readBufs.Get().(*bufio.Reader)
	br.Reset(conn)
	defer func() { br.Reset(nil); readBufs.Put(br) }()
	var req wireRequest
	if err := gob.NewDecoder(br).Decode(&req); err != nil {
		return
	}
	t.mu.Lock()
	h := l.handler
	t.mu.Unlock()
	reply, err := h.HandleMessage(req.From, simnet.Message{
		Type:    req.Type,
		Payload: req.Payload,
		Size:    req.Size,
	})
	t.count("net.served." + req.Type)
	out := wireReply{Type: reply.Type, Size: reply.Size, Payload: reply.Payload}
	if err != nil {
		out.Err = err.Error()
	}
	encodeTo(conn, out)
}

// Call dials the destination, sends one gob frame, and reads the reply.
// Transport-level failures that make the destination look gone — dial
// failures, request/reply deadline expiry against a peer that accepted but
// never answered, and connection resets / broken pipes / mid-frame EOF from
// a peer that died mid-call — are reported wrapping simnet.ErrUnreachable,
// so the overlay's routing-around-failures logic treats a hung or crashed
// peer like a dead one.
func (t *Transport) Call(from, to simnet.Addr, msg simnet.Message) (simnet.Message, error) {
	return t.CallCtx(context.Background(), from, to, msg)
}

// CallCtx is Call honoring ctx: the dial is canceled with the context, the
// connection deadline is the earlier of the call timeout and the context's
// deadline, and failures caused by the caller's own cancellation are reported
// wrapping ctx.Err() — never simnet.ErrUnreachable — so retry layers do not
// re-dial on behalf of a caller that gave up.
func (t *Transport) CallCtx(ctx context.Context, from, to simnet.Addr, msg simnet.Message) (simnet.Message, error) {
	if cerr := ctx.Err(); cerr != nil {
		t.count("net.errors.ctx")
		return simnet.Message{}, fmt.Errorf("nettransport: %s to %s aborted: %w", msg.Type, to, cerr)
	}
	start := time.Now()
	// Local fast path: a peer calling itself (or a co-hosted peer) still
	// goes over the socket so the wire path is exercised uniformly — with
	// one exception: a self-call while single-threaded would deadlock only
	// if the handler were not served concurrently, which it is (one
	// goroutine per connection), so no special case is needed.
	d := net.Dialer{Timeout: t.dialTimeout}
	conn, err := d.DialContext(ctx, "tcp", string(to))
	if err != nil {
		if cerr := ctx.Err(); cerr != nil {
			t.count("net.errors.ctx")
			return simnet.Message{}, fmt.Errorf("nettransport: dial %s: %w", to, cerr)
		}
		t.markDead(to)
		t.count("net.errors.dial")
		return simnet.Message{}, fmt.Errorf("%w: %s: %v", simnet.ErrUnreachable, to, err)
	}
	t.count("net.dials")
	if t.tel != nil {
		g := t.tel.Gauge("net.conns.open")
		g.Add(1)
		defer g.Add(-1)
	}
	defer conn.Close()
	deadline := time.Now().Add(t.callTimeout)
	if dl, ok := ctx.Deadline(); ok && dl.Before(deadline) {
		deadline = dl
	}
	conn.SetDeadline(deadline)
	if err := encodeTo(conn, wireRequest{From: from, Type: msg.Type, Size: msg.Size, Payload: msg.Payload}); err != nil {
		if cerr := ctx.Err(); cerr != nil {
			t.count("net.errors.ctx")
			return simnet.Message{}, fmt.Errorf("nettransport: send to %s: %w", to, cerr)
		}
		if isTimeout(err) {
			t.markDead(to)
			t.count("net.errors.timeout")
			return simnet.Message{}, fmt.Errorf("%w: %s: send timeout: %v", simnet.ErrUnreachable, to, err)
		}
		if isPeerGone(err) {
			t.markDead(to)
			t.count("net.errors.send")
			return simnet.Message{}, fmt.Errorf("%w: %s: send: %v", simnet.ErrUnreachable, to, err)
		}
		t.count("net.errors.send")
		return simnet.Message{}, fmt.Errorf("nettransport: send to %s: %w", to, err)
	}
	br := readBufs.Get().(*bufio.Reader)
	br.Reset(conn)
	defer func() { br.Reset(nil); readBufs.Put(br) }()
	var reply wireReply
	if err := gob.NewDecoder(br).Decode(&reply); err != nil {
		if cerr := ctx.Err(); cerr != nil {
			t.count("net.errors.ctx")
			return simnet.Message{}, fmt.Errorf("nettransport: reply from %s: %w", to, cerr)
		}
		if isTimeout(err) {
			t.markDead(to)
			t.count("net.errors.timeout")
			return simnet.Message{}, fmt.Errorf("%w: %s: reply timeout: %v", simnet.ErrUnreachable, to, err)
		}
		if isPeerGone(err) {
			// The peer accepted the connection and then vanished (reset,
			// restart, crash) before answering: to the overlay that is the
			// same as never having been reachable.
			t.markDead(to)
			t.count("net.errors.reply")
			return simnet.Message{}, fmt.Errorf("%w: %s: reply: %v", simnet.ErrUnreachable, to, err)
		}
		t.count("net.errors.reply")
		return simnet.Message{}, fmt.Errorf("nettransport: reply from %s: %w", to, err)
	}
	if reply.Err != "" {
		t.count("net.errors.remote")
		return simnet.Message{}, fmt.Errorf("nettransport: remote %s: %s", to, reply.Err)
	}
	if t.tel != nil {
		t.tel.Counter("net.calls." + msg.Type).Inc()
		t.tel.Counter("net.bytes." + msg.Type).Add(int64(msg.Size) + int64(reply.Size))
		t.tel.Histogram("net.latency_us").Observe(time.Since(start).Microseconds())
	}
	return simnet.Message{Type: reply.Type, Payload: reply.Payload, Size: reply.Size}, nil
}

// count bumps a named error/event counter when telemetry is installed.
func (t *Transport) count(name string) {
	if t.tel != nil {
		t.tel.Counter(name).Inc()
	}
}

// isTimeout reports whether err is (or wraps) a network deadline expiry.
func isTimeout(err error) bool {
	var ne net.Error
	return errors.As(err, &ne) && ne.Timeout()
}

// Alive reports reachability: local listeners are authoritative; remote
// peers are probed with a short dial, with a brief negative cache so hot
// loops over a dead peer do not hammer the network.
func (t *Transport) Alive(addr simnet.Addr) bool {
	t.mu.Lock()
	if _, ok := t.local[addr]; ok {
		t.mu.Unlock()
		return true
	}
	if until, ok := t.deadUntil[addr]; ok && time.Now().Before(until) {
		t.mu.Unlock()
		return false
	}
	t.mu.Unlock()

	conn, err := net.DialTimeout("tcp", string(addr), t.dialTimeout)
	if err != nil {
		t.markDead(addr)
		return false
	}
	conn.Close()
	return true
}

func (t *Transport) markDead(addr simnet.Addr) {
	t.mu.Lock()
	t.deadUntil[addr] = time.Now().Add(t.deadTTL)
	t.mu.Unlock()
}

var _ simnet.Transport = (*Transport)(nil)
