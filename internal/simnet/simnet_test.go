package simnet

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"testing"
	"time"

	"github.com/spritedht/sprite/internal/telemetry"
)

func echoHandler(t *testing.T) Handler {
	return HandlerFunc(func(from Addr, msg Message) (Message, error) {
		return Message{Type: msg.Type + ".reply", Payload: msg.Payload, Size: msg.Size}, nil
	})
}

func TestCallRoundTrip(t *testing.T) {
	n := New(1)
	n.Register("b", echoHandler(t))
	reply, err := n.Call("a", "b", Message{Type: "ping", Payload: 42, Size: 8})
	if err != nil {
		t.Fatalf("Call: %v", err)
	}
	if reply.Type != "ping.reply" || reply.Payload.(int) != 42 {
		t.Fatalf("unexpected reply %+v", reply)
	}
	s := n.Stats()
	if s.Calls != 1 || s.Bytes != 16 {
		t.Fatalf("stats = %+v, want 1 call / 16 bytes", s)
	}
	if s.CallsByType["ping"] != 1 {
		t.Fatalf("per-type accounting missing: %+v", s.CallsByType)
	}
}

func TestCallUnregistered(t *testing.T) {
	n := New(1)
	_, err := n.Call("a", "ghost", Message{Type: "ping"})
	if !errors.Is(err, ErrUnreachable) {
		t.Fatalf("err = %v, want ErrUnreachable", err)
	}
	if s := n.Stats(); s.Failed != 1 {
		t.Fatalf("failed counter = %d, want 1", s.Failed)
	}
}

func TestFailRecover(t *testing.T) {
	n := New(1)
	n.Register("b", echoHandler(t))
	n.Fail("b")
	if n.Alive("b") {
		t.Fatal("failed peer reported alive")
	}
	if _, err := n.Call("a", "b", Message{Type: "ping"}); !errors.Is(err, ErrUnreachable) {
		t.Fatalf("call to failed peer: err = %v", err)
	}
	n.Recover("b")
	if !n.Alive("b") {
		t.Fatal("recovered peer reported dead")
	}
	if _, err := n.Call("a", "b", Message{Type: "ping"}); err != nil {
		t.Fatalf("call after recover: %v", err)
	}
}

func TestFailUnknownPeerIsNoop(t *testing.T) {
	n := New(1)
	n.Fail("nobody")
	if s := n.Stats(); s.PeersFailed != 0 {
		t.Fatalf("failing an unknown peer should not track it: %+v", s)
	}
}

func TestUnregister(t *testing.T) {
	n := New(1)
	n.Register("b", echoHandler(t))
	n.Unregister("b")
	if _, err := n.Call("a", "b", Message{Type: "ping"}); !errors.Is(err, ErrUnreachable) {
		t.Fatalf("call to unregistered peer: err = %v", err)
	}
	if got := n.Peers(); len(got) != 0 {
		t.Fatalf("Peers() = %v after unregister", got)
	}
}

func TestLocalCallsBypassAccounting(t *testing.T) {
	n := New(1)
	n.Register("a", echoHandler(t))
	if _, err := n.Call("a", "a", Message{Type: "self", Size: 100}); err != nil {
		t.Fatalf("self call: %v", err)
	}
	s := n.Stats()
	if s.Calls != 0 || s.Bytes != 0 {
		t.Fatalf("self call was metered: %+v", s)
	}
	if s.LocalBypass != 1 {
		t.Fatalf("LocalBypass = %d, want 1", s.LocalBypass)
	}
}

func TestLocalCallsCountedOption(t *testing.T) {
	n := New(1, WithLocalCallsCounted())
	n.Register("a", echoHandler(t))
	if _, err := n.Call("a", "a", Message{Type: "self", Size: 10}); err != nil {
		t.Fatalf("self call: %v", err)
	}
	if s := n.Stats(); s.Calls != 1 {
		t.Fatalf("self call not metered with WithLocalCallsCounted: %+v", s)
	}
}

func TestSelfCallToFailedSelf(t *testing.T) {
	n := New(1)
	n.Register("a", echoHandler(t))
	n.Fail("a")
	if _, err := n.Call("a", "a", Message{Type: "self"}); !errors.Is(err, ErrUnreachable) {
		t.Fatalf("self call to failed self: err = %v", err)
	}
}

func TestLatencyAccounting(t *testing.T) {
	n := New(7, WithLatency(UniformLatency(time.Millisecond, 2*time.Millisecond)))
	n.Register("b", echoHandler(t))
	for i := 0; i < 10; i++ {
		if _, err := n.Call("a", "b", Message{Type: "ping"}); err != nil {
			t.Fatal(err)
		}
	}
	s := n.Stats()
	if s.SimLatency < 20*time.Millisecond || s.SimLatency > 40*time.Millisecond {
		t.Fatalf("SimLatency = %v, want within [20ms, 40ms] for 10 round trips", s.SimLatency)
	}
}

func TestLatencyDeterministic(t *testing.T) {
	run := func() time.Duration {
		n := New(99, WithLatency(UniformLatency(0, time.Second)))
		n.Register("b", echoHandler(t))
		for i := 0; i < 50; i++ {
			n.Call("a", "b", Message{Type: "p"})
		}
		return n.Stats().SimLatency
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("latency not deterministic: %v vs %v", a, b)
	}
}

func TestUniformLatencySwappedBounds(t *testing.T) {
	n := New(1, WithLatency(UniformLatency(time.Second, 0)))
	n.Register("b", echoHandler(t))
	if _, err := n.Call("a", "b", Message{Type: "p"}); err != nil {
		t.Fatal(err)
	}
	if n.Stats().SimLatency > 2*time.Second {
		t.Fatal("swapped bounds produced out-of-range latency")
	}
}

func TestHandlerErrorPropagates(t *testing.T) {
	wantErr := errors.New("handler exploded")
	n := New(1)
	n.Register("b", HandlerFunc(func(Addr, Message) (Message, error) {
		return Message{}, wantErr
	}))
	_, err := n.Call("a", "b", Message{Type: "boom"})
	if !errors.Is(err, wantErr) {
		t.Fatalf("err = %v, want handler error", err)
	}
	// The request is still metered even when the handler errors.
	if s := n.Stats(); s.Calls != 1 {
		t.Fatalf("errored call not metered: %+v", s)
	}
}

func TestResetStats(t *testing.T) {
	n := New(1)
	n.Register("b", echoHandler(t))
	n.Call("a", "b", Message{Type: "ping", Size: 4})
	n.ResetStats()
	s := n.Stats()
	if s.Calls != 0 || s.Bytes != 0 || len(s.CallsByType) != 0 {
		t.Fatalf("ResetStats left residue: %+v", s)
	}
	if s.PeersAlive != 1 {
		t.Fatalf("ResetStats dropped peers: %+v", s)
	}
}

func TestStatsSnapshotIsolated(t *testing.T) {
	n := New(1)
	n.Register("b", echoHandler(t))
	n.Call("a", "b", Message{Type: "ping"})
	s := n.Stats()
	s.CallsByType["ping"] = 999
	if n.Stats().CallsByType["ping"] != 1 {
		t.Fatal("Stats returned a live map, not a copy")
	}
}

func TestPeersSorted(t *testing.T) {
	n := New(1)
	for _, a := range []Addr{"c", "a", "b"} {
		n.Register(a, echoHandler(t))
	}
	got := n.Peers()
	want := []Addr{"a", "b", "c"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Peers() = %v, want %v", got, want)
		}
	}
}

func TestTypesSorted(t *testing.T) {
	n := New(1)
	n.Register("b", echoHandler(t))
	n.Call("a", "b", Message{Type: "zeta"})
	n.Call("a", "b", Message{Type: "alpha"})
	types := n.Stats().TypesSorted()
	if len(types) != 2 || types[0] != "alpha" || types[1] != "zeta" {
		t.Fatalf("TypesSorted() = %v", types)
	}
}

func TestConcurrentCalls(t *testing.T) {
	n := New(1)
	n.Register("b", echoHandler(t))
	var wg sync.WaitGroup
	const workers, per = 8, 100
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if _, err := n.Call("a", "b", Message{Type: "ping", Size: 1}); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if s := n.Stats(); s.Calls != workers*per {
		t.Fatalf("Calls = %d, want %d", s.Calls, workers*per)
	}
}

// TestDeterminismIndependentOfGlobalRand is the regression test for the
// per-Network rand source: two same-seed networks must draw bit-for-bit
// identical latency sequences even when other code hammers the global
// math/rand source in between — which is exactly what breaks if any call
// path slips back to the package-level functions.
func TestDeterminismIndependentOfGlobalRand(t *testing.T) {
	run := func(pollute bool) []time.Duration {
		n := New(42, WithLatency(UniformLatency(time.Millisecond, 10*time.Millisecond)))
		n.Register("b", echoHandler(t))
		var seq []time.Duration
		prev := time.Duration(0)
		for i := 0; i < 40; i++ {
			if pollute {
				rand.Int63() // global source; must not influence the network
			}
			if _, err := n.Call("a", "b", Message{Type: "p"}); err != nil {
				t.Fatal(err)
			}
			cur := n.Stats().SimLatency
			seq = append(seq, cur-prev)
			prev = cur
		}
		return seq
	}
	clean, dirty := run(false), run(true)
	for i := range clean {
		if clean[i] != dirty[i] {
			t.Fatalf("call %d: latency %v with quiet global rand, %v with polluted global rand", i, clean[i], dirty[i])
		}
	}
}

// TestTelemetryMirrorsAccounting checks the instrumented Call paths: success,
// unreachable destination, local bypass, and handler errors must all land in
// the registry with per-type granularity.
func TestTelemetryMirrorsAccounting(t *testing.T) {
	reg := telemetry.NewRegistry()
	n := New(3, WithLatency(UniformLatency(time.Millisecond, 2*time.Millisecond)), WithTelemetry(reg))
	n.Register("b", echoHandler(t))
	n.Register("c", HandlerFunc(func(Addr, Message) (Message, error) {
		return Message{}, errors.New("boom")
	}))
	for i := 0; i < 4; i++ {
		if _, err := n.Call("a", "b", Message{Type: "ping", Size: 10}); err != nil {
			t.Fatal(err)
		}
	}
	n.Call("a", "gone", Message{Type: "ping", Size: 10}) // unreachable
	n.Call("b", "b", Message{Type: "ping", Size: 10})    // local bypass
	n.Call("a", "c", Message{Type: "ping", Size: 10})    // handler error

	if got := reg.Counter("simnet.calls.ping").Value(); got != 6 {
		t.Fatalf("simnet.calls.ping = %d, want 6", got)
	}
	if got := reg.Counter("simnet.unreachable").Value(); got != 1 {
		t.Fatalf("simnet.unreachable = %d, want 1", got)
	}
	if got := reg.Counter("simnet.local_bypass").Value(); got != 1 {
		t.Fatalf("simnet.local_bypass = %d, want 1", got)
	}
	if got := reg.Counter("simnet.handler_errors").Value(); got != 1 {
		t.Fatalf("simnet.handler_errors = %d, want 1", got)
	}
	if got := reg.Histogram("simnet.latency_us").Count(); got != 5 {
		t.Fatalf("simnet.latency_us count = %d, want 5 (success + handler-error calls)", got)
	}
	if bytes := reg.Counter("simnet.bytes.ping").Value(); bytes < 60 {
		t.Fatalf("simnet.bytes.ping = %d, want >= 60", bytes)
	}
}

func TestSleepingLatencyWallClock(t *testing.T) {
	const d = 10 * time.Millisecond
	n := New(1, WithLatency(UniformLatency(d, d)), WithSleepingLatency())
	n.Register("b", echoHandler(t))
	start := time.Now()
	if _, err := n.Call("a", "b", Message{Type: "ping"}); err != nil {
		t.Fatalf("Call: %v", err)
	}
	if elapsed := time.Since(start); elapsed < 2*d {
		t.Fatalf("sleeping-latency call took %v, want >= %v (round trip)", elapsed, 2*d)
	}
	if s := n.Stats(); s.SimLatency != 2*d {
		t.Fatalf("SimLatency = %v, want %v (accounting must not change)", s.SimLatency, 2*d)
	}
}

func TestSleepingLatencyCancellation(t *testing.T) {
	n := New(1, WithLatency(UniformLatency(time.Second, time.Second)), WithSleepingLatency())
	n.Register("b", echoHandler(t))
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(5 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err := n.CallCtx(ctx, "a", "b", Message{Type: "ping"})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if time.Since(start) > time.Second {
		t.Fatal("cancellation did not interrupt the sleep")
	}
	if s := n.Stats(); s.Expired != 1 {
		t.Fatalf("Expired = %d, want 1", s.Expired)
	}
}

func TestSetSleepLatencyRuntimeToggle(t *testing.T) {
	const d = 20 * time.Millisecond
	n := New(1, WithLatency(UniformLatency(d, d)))
	n.Register("b", echoHandler(t))
	start := time.Now()
	n.Call("a", "b", Message{Type: "ping"})
	if time.Since(start) >= 2*d {
		t.Fatal("latency slept while sleep mode off")
	}
	n.SetSleepLatency(true)
	start = time.Now()
	n.Call("a", "b", Message{Type: "ping"})
	if time.Since(start) < 2*d {
		t.Fatal("latency not slept after SetSleepLatency(true)")
	}
	n.SetSleepLatency(false)
	start = time.Now()
	n.Call("a", "b", Message{Type: "ping"})
	if time.Since(start) >= 2*d {
		t.Fatal("latency slept after SetSleepLatency(false)")
	}
}
