package simnet

import (
	"context"
	"errors"
	"testing"
	"time"
)

func echoNet(opts ...Option) *Network {
	n := New(7, opts...)
	for _, a := range []Addr{"a", "b"} {
		n.Register(a, HandlerFunc(func(from Addr, msg Message) (Message, error) {
			return Message{Type: msg.Type, Size: 1}, nil
		}))
	}
	return n
}

// TestCallCtxExpiredContext: a done context fails immediately, wrapping the
// context error and never ErrUnreachable (so retry layers do not retry it).
func TestCallCtxExpiredContext(t *testing.T) {
	n := echoNet()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := n.CallCtx(ctx, "a", "b", Message{Type: "x", Size: 1})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if errors.Is(err, ErrUnreachable) {
		t.Fatal("context failure must not look like an unreachable peer")
	}
	if s := n.Stats(); s.Expired != 1 || s.Calls != 0 {
		t.Fatalf("Expired = %d, Calls = %d; want 1, 0", s.Expired, s.Calls)
	}
}

// TestCallCtxDeadlineVsSimulatedLatency: with a latency model, a call whose
// simulated round trip overruns the context deadline fails with
// DeadlineExceeded — latency is accounted, not slept, so the transport must
// enforce the deadline itself.
func TestCallCtxDeadlineVsSimulatedLatency(t *testing.T) {
	n := echoNet(WithLatency(UniformLatency(time.Hour, time.Hour)))
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	_, err := n.CallCtx(ctx, "a", "b", Message{Type: "x", Size: 1})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	if s := n.Stats(); s.Expired != 1 {
		t.Fatalf("Expired = %d, want 1", s.Expired)
	}
	// A generous deadline lets the same call through.
	ctx2, cancel2 := context.WithTimeout(context.Background(), 3*time.Hour)
	defer cancel2()
	if _, err := n.CallCtx(ctx2, "a", "b", Message{Type: "x", Size: 1}); err != nil {
		t.Fatalf("call within deadline failed: %v", err)
	}
}

// TestDropCalls: exactly the scheduled number of calls fail with
// ErrUnreachable while the peer stays Alive; the next call succeeds.
func TestDropCalls(t *testing.T) {
	n := echoNet()
	n.DropCalls("b", 2)
	for i := 0; i < 2; i++ {
		if _, err := n.Call("a", "b", Message{Type: "x", Size: 1}); !errors.Is(err, ErrUnreachable) {
			t.Fatalf("drop %d: err = %v, want ErrUnreachable", i, err)
		}
		if !n.Alive("b") {
			t.Fatal("dropped peer must stay Alive")
		}
	}
	if _, err := n.Call("a", "b", Message{Type: "x", Size: 1}); err != nil {
		t.Fatalf("call after drop schedule drained: %v", err)
	}
	if s := n.Stats(); s.Dropped != 2 || s.Failed != 0 {
		t.Fatalf("Dropped = %d, Failed = %d; want 2, 0", s.Dropped, s.Failed)
	}
	// Clearing a schedule stops the drops.
	n.DropCalls("b", 5)
	n.DropCalls("b", 0)
	if _, err := n.Call("a", "b", Message{Type: "x", Size: 1}); err != nil {
		t.Fatalf("call after schedule cleared: %v", err)
	}
}

// TestPacketLossDeterministicAndIndependent: loss draws are reproducible
// across same-seed networks, and enabling loss does not perturb the latency
// sequence (separate rngs).
func TestPacketLossDeterministicAndIndependent(t *testing.T) {
	outcomes := func() []bool {
		n := echoNet(WithPacketLoss(0.5))
		var out []bool
		for i := 0; i < 32; i++ {
			_, err := n.Call("a", "b", Message{Type: "x", Size: 1})
			out = append(out, err == nil)
		}
		return out
	}
	a, b := outcomes(), outcomes()
	drops := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("call %d: loss outcome diverged across same-seed runs", i)
		}
		if !a[i] {
			drops++
		}
	}
	if drops == 0 || drops == len(a) {
		t.Fatalf("p=0.5 over %d calls produced %d drops; rng not wired?", len(a), drops)
	}

	lat := func(p float64) time.Duration {
		n := echoNet(WithLatency(UniformLatency(time.Millisecond, time.Second)), WithPacketLoss(p))
		for i := 0; i < 16; i++ {
			n.Call("a", "b", Message{Type: "x", Size: 1})
		}
		return n.Stats().SimLatency
	}
	if l0, l1 := lat(0), lat(0.5); l0 != l1 {
		t.Fatalf("latency sequence changed when loss enabled: %v vs %v", l0, l1)
	}
}

// TestSetPacketLoss: the runtime knob switches loss on and off.
func TestSetPacketLoss(t *testing.T) {
	n := echoNet()
	n.SetPacketLoss(1.0)
	if _, err := n.Call("a", "b", Message{Type: "x", Size: 1}); !errors.Is(err, ErrUnreachable) {
		t.Fatalf("p=1 call survived: %v", err)
	}
	n.SetPacketLoss(0)
	if _, err := n.Call("a", "b", Message{Type: "x", Size: 1}); err != nil {
		t.Fatalf("p=0 call failed: %v", err)
	}
}
