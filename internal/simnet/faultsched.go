package simnet

import (
	"math/rand"
	"sort"
)

// FaultKind enumerates the actions a FaultScheduler can take on one tick.
type FaultKind string

const (
	// FaultNone is a tick on which the scheduler chose to do nothing.
	FaultNone FaultKind = "none"
	// FaultFail crashes a peer (state retained, see Fail).
	FaultFail FaultKind = "fail"
	// FaultRecover revives a previously failed peer.
	FaultRecover FaultKind = "recover"
)

// FaultEvent is one concrete, replayable scheduler decision. Applying the
// same sequence of events to an identically configured Network reproduces
// the same fault history, which is what makes chaos runs shrinkable: a
// recorded event stream can be replayed (or subsetted) without the rng.
type FaultEvent struct {
	Kind FaultKind
	Peer Addr
}

// FaultSchedulerConfig bounds a FaultScheduler's behaviour.
type FaultSchedulerConfig struct {
	// MaxFailed caps how many peers may be down simultaneously. Zero means
	// at most one.
	MaxFailed int
	// MinAlive refuses fails that would leave fewer than this many
	// candidates reachable. Zero means no lower bound beyond MaxFailed.
	MinAlive int
	// FailBias is the probability in [0, 1] that a tick attempts a fail
	// rather than a recover when both are possible. Zero means 0.5.
	FailBias float64
}

// FaultScheduler draws fail/recover decisions from its own seeded source and
// applies them to a Network. All randomness lives here — the emitted
// FaultEvents are concrete — so a chaos harness can record the events it
// observed and later replay any subsequence deterministically with Apply.
type FaultScheduler struct {
	net    *Network
	rng    *rand.Rand
	cfg    FaultSchedulerConfig
	failed map[Addr]bool
}

// NewFaultScheduler creates a scheduler over net whose decisions derive only
// from seed and the candidate sets passed to Tick.
func NewFaultScheduler(net *Network, seed int64, cfg FaultSchedulerConfig) *FaultScheduler {
	if cfg.MaxFailed <= 0 {
		cfg.MaxFailed = 1
	}
	if cfg.FailBias <= 0 {
		cfg.FailBias = 0.5
	}
	return &FaultScheduler{
		net:    net,
		rng:    rand.New(rand.NewSource(seed)),
		cfg:    cfg,
		failed: make(map[Addr]bool),
	}
}

// Failed returns the peers the scheduler currently holds down, sorted.
func (s *FaultScheduler) Failed() []Addr {
	out := make([]Addr, 0, len(s.failed))
	for a := range s.failed {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// NumFailed returns how many peers the scheduler currently holds down.
func (s *FaultScheduler) NumFailed() int { return len(s.failed) }

// Tick draws the next fault action over the given candidate peers and
// applies it to the network. Candidates are sorted internally, so the
// decision depends only on the candidate *set* and the seed, not on the
// caller's ordering. The returned event records what happened (possibly
// FaultNone when bounds forbid any action).
func (s *FaultScheduler) Tick(candidates []Addr) FaultEvent {
	sorted := append([]Addr(nil), candidates...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })

	var up, down []Addr
	for _, a := range sorted {
		if s.failed[a] {
			down = append(down, a)
		} else {
			up = append(up, a)
		}
	}
	canFail := len(down) < s.cfg.MaxFailed && len(up) > s.cfg.MinAlive && len(up) > 0
	canRecover := len(down) > 0

	var ev FaultEvent
	switch {
	case canFail && canRecover:
		if s.rng.Float64() < s.cfg.FailBias {
			ev = FaultEvent{Kind: FaultFail, Peer: up[s.rng.Intn(len(up))]}
		} else {
			ev = FaultEvent{Kind: FaultRecover, Peer: down[s.rng.Intn(len(down))]}
		}
	case canFail:
		ev = FaultEvent{Kind: FaultFail, Peer: up[s.rng.Intn(len(up))]}
	case canRecover:
		ev = FaultEvent{Kind: FaultRecover, Peer: down[s.rng.Intn(len(down))]}
	default:
		return FaultEvent{Kind: FaultNone}
	}
	s.Apply(ev)
	return ev
}

// Apply performs a concrete event against the network and the scheduler's
// bookkeeping without consuming randomness. Replays use it to reproduce a
// recorded fault history exactly.
func (s *FaultScheduler) Apply(ev FaultEvent) {
	switch ev.Kind {
	case FaultFail:
		s.net.Fail(ev.Peer)
		s.failed[ev.Peer] = true
	case FaultRecover:
		s.net.Recover(ev.Peer)
		delete(s.failed, ev.Peer)
	}
}

// Heal recovers every peer the scheduler failed and clears all pending drop
// schedules, returning the recovered peers (sorted). Packet loss is left to
// the caller, which owns that knob.
func (s *FaultScheduler) Heal() []Addr {
	recovered := s.Failed()
	for _, a := range recovered {
		s.net.Recover(a)
	}
	s.failed = make(map[Addr]bool)
	s.net.ClearDrops()
	return recovered
}
