package simnet

import (
	"reflect"
	"testing"
)

func fsEcho() Handler {
	return HandlerFunc(func(from Addr, msg Message) (Message, error) {
		return Message{Type: msg.Type, Size: 1}, nil
	})
}

func TestDropCallsAfterSkipsThenDrops(t *testing.T) {
	net := New(1)
	net.Register("a", fsEcho())
	net.Register("b", fsEcho())
	net.DropCallsAfter("b", 2, 3)

	var got []bool
	for i := 0; i < 7; i++ {
		_, err := net.Call("a", "b", Message{Type: "ping", Size: 1})
		got = append(got, err == nil)
	}
	want := []bool{true, true, false, false, false, true, true}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("skip-then-drop pattern = %v, want %v", got, want)
	}
	if net.PendingDrops() != 0 {
		t.Fatalf("PendingDrops = %d after schedule exhausted", net.PendingDrops())
	}
	s := net.Stats()
	if s.Dropped != 3 {
		t.Fatalf("Dropped = %d, want 3", s.Dropped)
	}
}

func TestDropCallsAfterClear(t *testing.T) {
	net := New(1)
	net.Register("a", fsEcho())
	net.Register("b", fsEcho())
	net.DropCallsAfter("b", 1, 5)
	if net.PendingDrops() != 5 {
		t.Fatalf("PendingDrops = %d, want 5", net.PendingDrops())
	}
	net.DropCallsAfter("b", 0, 0) // count <= 0 clears
	if net.PendingDrops() != 0 {
		t.Fatalf("PendingDrops = %d after clear", net.PendingDrops())
	}
	if _, err := net.Call("a", "b", Message{Type: "ping", Size: 1}); err != nil {
		t.Fatalf("call after clear failed: %v", err)
	}

	net.DropCalls("b", 2)
	net.ClearDrops()
	if _, err := net.Call("a", "b", Message{Type: "ping", Size: 1}); err != nil {
		t.Fatalf("call after ClearDrops failed: %v", err)
	}
}

// Two schedulers with the same seed over the same candidate set must emit
// identical event streams regardless of candidate ordering — the property
// chaos replay depends on.
func TestFaultSchedulerDeterministic(t *testing.T) {
	peers := []Addr{"p1", "p2", "p3", "p4", "p5", "p6"}
	run := func(order []Addr) []FaultEvent {
		net := New(7)
		for _, a := range peers {
			net.Register(a, fsEcho())
		}
		s := NewFaultScheduler(net, 99, FaultSchedulerConfig{MaxFailed: 2, MinAlive: 3})
		var evs []FaultEvent
		for i := 0; i < 40; i++ {
			evs = append(evs, s.Tick(order))
		}
		return evs
	}
	fwd := append([]Addr(nil), peers...)
	rev := make([]Addr, len(peers))
	for i, a := range peers {
		rev[len(peers)-1-i] = a
	}
	a, b := run(fwd), run(rev)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("event streams diverged across candidate orderings:\n%v\n%v", a, b)
	}
}

func TestFaultSchedulerBoundsAndHeal(t *testing.T) {
	net := New(3)
	peers := []Addr{"a", "b", "c", "d", "e"}
	for _, a := range peers {
		net.Register(a, fsEcho())
	}
	s := NewFaultScheduler(net, 5, FaultSchedulerConfig{MaxFailed: 2, MinAlive: 2})
	for i := 0; i < 100; i++ {
		s.Tick(peers)
		if n := s.NumFailed(); n > 2 {
			t.Fatalf("tick %d: %d peers failed, MaxFailed = 2", i, n)
		}
		alive := 0
		for _, a := range peers {
			if net.Alive(a) {
				alive++
			}
		}
		if alive < 3 {
			t.Fatalf("tick %d: only %d peers alive, MinAlive = 2 requires > 2", i, alive)
		}
	}
	net.DropCalls("a", 4)
	recovered := s.Heal()
	if s.NumFailed() != 0 {
		t.Fatalf("Heal left %d peers failed", s.NumFailed())
	}
	for _, a := range recovered {
		if !net.Alive(a) {
			t.Fatalf("Heal did not revive %s", a)
		}
	}
	if net.PendingDrops() != 0 {
		t.Fatalf("Heal left %d pending drops", net.PendingDrops())
	}
	// Replaying the recorded failures via Apply reproduces the failed set.
	s2 := NewFaultScheduler(net, 0, FaultSchedulerConfig{MaxFailed: 5})
	s2.Apply(FaultEvent{Kind: FaultFail, Peer: "b"})
	s2.Apply(FaultEvent{Kind: FaultFail, Peer: "c"})
	s2.Apply(FaultEvent{Kind: FaultRecover, Peer: "b"})
	if got := s2.Failed(); !reflect.DeepEqual(got, []Addr{"c"}) {
		t.Fatalf("replayed failed set = %v, want [c]", got)
	}
	s2.Heal()
}
