// Package simnet provides the simulated network substrate the overlay runs
// on. The SPRITE paper evaluates its system in simulation (§6: "Our study is
// based on simulation"); this package reproduces that setting while also
// metering what the paper argues about qualitatively — the number of
// messages, logical hops, and bytes exchanged — so index-construction and
// maintenance costs (§1) can be measured rather than asserted.
//
// The model is a synchronous RPC network: every inter-peer interaction is a
// Call from one address to another carrying a typed message. Delivery is
// reliable unless the destination has been failed with Fail, which models
// peer departure/crash (§7). Latency is simulated, not real: each call is
// assigned a deterministic pseudo-random latency and accounted in Stats, so
// experiments remain fast and bit-for-bit reproducible.
package simnet

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"

	"github.com/spritedht/sprite/internal/telemetry"
	"github.com/spritedht/sprite/internal/vtime"
)

// Addr identifies a peer on the simulated network. In a deployment this would
// be an IP:port pair; in the simulator it is an opaque string.
type Addr string

// Message is a typed payload exchanged between peers. Type drives both
// dispatch and per-type accounting; Size is the simulated wire size in bytes
// used for bandwidth accounting (it need not be exact, only consistent).
type Message struct {
	Type    string
	Payload any
	Size    int
}

// Handler processes one incoming message and produces a reply. Handlers are
// invoked synchronously by Call; they must not call back into the network
// endpoint that is mid-call on the same goroutine chain unless the overlay is
// re-entrant (the Chord implementation is).
type Handler interface {
	HandleMessage(from Addr, msg Message) (Message, error)
}

// HandlerFunc adapts a function to the Handler interface.
type HandlerFunc func(from Addr, msg Message) (Message, error)

// HandleMessage calls f(from, msg).
func (f HandlerFunc) HandleMessage(from Addr, msg Message) (Message, error) {
	return f(from, msg)
}

// ErrUnreachable is returned by Call when the destination peer is failed or
// was never registered.
var ErrUnreachable = errors.New("simnet: peer unreachable")

// Transport is the abstract peer-to-peer message substrate the overlay and
// SPRITE run on. Network (the in-process simulator) is the primary
// implementation; internal/nettransport provides a TCP implementation so the
// same stack runs over real sockets. Implementations must be safe for
// concurrent use.
type Transport interface {
	// Register attaches a handler at addr, making the peer reachable.
	Register(addr Addr, h Handler)
	// Unregister removes the peer.
	Unregister(addr Addr)
	// Call performs a synchronous RPC; transport-level failures are
	// reported with errors wrapping ErrUnreachable. It is CallCtx without
	// cancellation, kept for call sites with no deadline to carry.
	Call(from, to Addr, msg Message) (Message, error)
	// CallCtx is Call honoring the caller's context: an already-canceled
	// or expired context fails immediately with an error wrapping ctx.Err()
	// (never ErrUnreachable, so retry layers do not retry a caller that
	// gave up), and deadlines bound the call's duration.
	CallCtx(ctx context.Context, from, to Addr, msg Message) (Message, error)
	// Alive reports whether addr is believed reachable. Implementations may
	// be optimistic — a true result does not guarantee the next Call
	// succeeds — but must return false for peers known to be gone.
	Alive(addr Addr) bool
}

// FaultInjector is the optional capability of simulated transports to crash
// and revive peers without losing their state.
type FaultInjector interface {
	Fail(addr Addr)
	Recover(addr Addr)
}

var (
	_ Transport     = (*Network)(nil)
	_ FaultInjector = (*Network)(nil)
)

// LatencyModel produces a simulated one-way latency for a call. Models must
// be deterministic functions of the supplied rng state.
type LatencyModel func(rng *rand.Rand) time.Duration

// UniformLatency returns a model drawing latencies uniformly from [lo, hi).
func UniformLatency(lo, hi time.Duration) LatencyModel {
	if hi < lo {
		lo, hi = hi, lo
	}
	return func(rng *rand.Rand) time.Duration {
		if hi == lo {
			return lo
		}
		return lo + time.Duration(rng.Int63n(int64(hi-lo)))
	}
}

// Stats is a snapshot of the network's accounting counters.
type Stats struct {
	Calls       int64            // total RPCs attempted
	Failed      int64            // RPCs that hit an unreachable peer
	Dropped     int64            // RPCs lost to injected packet loss or drop schedules
	Expired     int64            // RPCs refused because the caller's context was done
	Bytes       int64            // sum of request+reply Size fields
	SimLatency  time.Duration    // accumulated simulated round-trip latency
	CallsByType map[string]int64 // per message type
	BytesByType map[string]int64 // per message type
	CallsByDest map[Addr]int64   // per destination peer (load distribution)
	LocalBypass int64            // calls short-circuited because from == to
	PeersFailed int              // currently failed peers
	PeersAlive  int              // currently registered and reachable peers
}

// TypesSorted returns the message types seen so far in sorted order, for
// stable report output.
func (s Stats) TypesSorted() []string {
	out := make([]string, 0, len(s.CallsByType))
	for t := range s.CallsByType {
		out = append(out, t)
	}
	sort.Strings(out)
	return out
}

// Network is the simulated transport. It is safe for concurrent use.
//
// All pseudo-randomness (latency draws) comes from the per-Network source
// seeded in New — never from the global math/rand source — so two Networks
// built with the same seed assign bit-for-bit identical latencies regardless
// of what other goroutines or packages draw, including under -race and
// parallel tests.
type Network struct {
	mu       sync.Mutex
	peers    map[Addr]Handler
	failed   map[Addr]bool
	rng      *rand.Rand
	latency  LatencyModel
	stats    Stats
	countOwn bool // whether from==to calls count as network traffic
	sleep    bool // whether simulated latency is also slept (wall-clock mode)
	lean     bool // aggregate counters only, no per-type/per-dest breakdowns
	clock    vtime.Clock
	tel      *telemetry.Registry

	// Fault-injection knobs for resilience testing. lossRng is a separate
	// source (seeded from the main seed) so enabling packet loss never
	// perturbs the latency draw sequence existing experiments depend on.
	lossRng  *rand.Rand
	lossProb float64
	// dropNext schedules deterministic transient faults: the next
	// dropNext[addr] calls to addr are dropped (the peer stays Alive).
	// dropSkip delays a schedule: that many calls pass through first.
	dropNext map[Addr]int
	dropSkip map[Addr]int
}

// Option configures a Network.
type Option func(*Network)

// WithLatency installs a latency model. The default is zero latency.
func WithLatency(m LatencyModel) Option {
	return func(n *Network) { n.latency = m }
}

// WithSleepingLatency makes each call actually sleep its simulated round
// trip (context-aware) in addition to accounting it in Stats. By default
// latency is accounted only, keeping experiments fast; sleeping mode turns
// simulated latency into wall-clock latency so concurrency benefits (e.g.
// parallel per-term fan-out) become measurable with real clocks.
func WithSleepingLatency() Option {
	return func(n *Network) { n.sleep = true }
}

// WithClock installs the clock used for deadline checks and slept latency.
// The default is the wall clock; experiments install a *vtime.Sim so slept
// round trips become deterministic virtual waits and deadline math runs on
// virtual time (see DESIGN.md §9).
func WithClock(c vtime.Clock) Option {
	return func(n *Network) { n.clock = c }
}

// WithLocalCallsCounted makes calls where from == to count toward traffic
// statistics. By default a peer messaging itself is free, matching the usual
// DHT cost model in which local index access costs nothing.
func WithLocalCallsCounted() Option {
	return func(n *Network) { n.countOwn = true }
}

// WithTelemetry mirrors the network's per-message-type accounting into the
// given registry (call counts, byte totals, simulated latency histogram,
// unreachable-destination counts). A nil registry leaves instrumentation
// off; the transport then pays only a nil check per call.
func WithTelemetry(reg *telemetry.Registry) Option {
	return func(n *Network) { n.tel = reg }
}

// WithLeanStats keeps only the aggregate counters (Calls, Bytes, latency
// sum, failure counts) and skips the per-message-type and per-destination
// breakdown maps. Those maps cost a string hash and map write per call —
// noise normally, but the dominant transport overhead in sweeps that push
// tens of millions of calls through a single-threaded simulation.
func WithLeanStats() Option {
	return func(n *Network) { n.lean = true }
}

// WithPacketLoss drops each inter-peer call independently with probability
// p (clamped to [0, 1]). Lost calls fail with ErrUnreachable while the
// destination stays Alive — the transient-fault signature retry layers are
// built for. Loss draws come from a dedicated rng, so turning the knob does
// not change the latency sequences of loss-free runs.
func WithPacketLoss(p float64) Option {
	return func(n *Network) { n.lossProb = clamp01(p) }
}

func clamp01(p float64) float64 {
	switch {
	case p < 0:
		return 0
	case p > 1:
		return 1
	}
	return p
}

// New creates a network whose pseudo-random choices (latency draws, loss
// draws) derive from seed.
func New(seed int64, opts ...Option) *Network {
	n := &Network{
		peers:    make(map[Addr]Handler),
		failed:   make(map[Addr]bool),
		rng:      rand.New(rand.NewSource(seed)),
		lossRng:  rand.New(rand.NewSource(seed ^ 0x5bd1e995)),
		clock:    vtime.Wall,
		dropNext: make(map[Addr]int),
		dropSkip: make(map[Addr]int),
		stats: Stats{
			CallsByType: make(map[string]int64),
			BytesByType: make(map[string]int64),
			CallsByDest: make(map[Addr]int64),
		},
	}
	for _, o := range opts {
		o(n)
	}
	n.clock = vtime.Default(n.clock)
	return n
}

// Clock returns the network's clock (never nil).
func (n *Network) Clock() vtime.Clock { return n.clock }

// SetPacketLoss changes the packet-loss probability at runtime (clamped to
// [0, 1]); see WithPacketLoss. The churn experiment uses it to switch loss on
// only for the query phase.
func (n *Network) SetPacketLoss(p float64) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.lossProb = clamp01(p)
}

// SetSleepLatency toggles sleeping-latency mode at runtime; see
// WithSleepingLatency. The parallel experiment enables it only for the
// measured query phase so deployment construction stays fast.
func (n *Network) SetSleepLatency(on bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.sleep = on
}

// DropCalls schedules the next count calls addressed to to (local-bypass
// calls excluded) to be dropped with ErrUnreachable while the peer stays
// Alive. count <= 0 clears the schedule. This is the deterministic
// counterpart of WithPacketLoss for retry/failover tests: exactly the first
// count attempts fail, every later one succeeds.
func (n *Network) DropCalls(to Addr, count int) {
	n.DropCallsAfter(to, 0, count)
}

// DropCallsAfter is DropCalls with a delay: the next skip calls addressed to
// to go through normally, then the following count calls are dropped. It
// pins a fault to a precise point in a deterministic call sequence — e.g.
// "let the poll through, then drop the unpublish that follows" — which is
// how the regression tests reproduce mid-operation partial failures.
// count <= 0 clears any schedule for to.
func (n *Network) DropCallsAfter(to Addr, skip, count int) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if count <= 0 {
		delete(n.dropNext, to)
		delete(n.dropSkip, to)
		return
	}
	n.dropNext[to] = count
	if skip > 0 {
		n.dropSkip[to] = skip
	} else {
		delete(n.dropSkip, to)
	}
}

// ClearDrops removes every pending drop schedule (but not packet loss).
func (n *Network) ClearDrops() {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.dropNext = make(map[Addr]int)
	n.dropSkip = make(map[Addr]int)
}

// PendingDrops returns the total number of drops still scheduled across all
// destinations. The chaos harness uses it to decide whether deterministic
// invariant checks are currently meaningful.
func (n *Network) PendingDrops() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	total := 0
	for _, c := range n.dropNext {
		total += c
	}
	return total
}

// Register attaches a handler at addr, replacing any previous registration
// and clearing a failed state if present.
func (n *Network) Register(addr Addr, h Handler) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.peers[addr] = h
	delete(n.failed, addr)
}

// Unregister removes a peer entirely, as when a peer leaves the network
// gracefully.
func (n *Network) Unregister(addr Addr) {
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.peers, addr)
	delete(n.failed, addr)
}

// Fail marks a peer as crashed: subsequent calls to it return
// ErrUnreachable, but its state (handler) is retained so Recover can bring
// it back, modelling a transient departure.
func (n *Network) Fail(addr Addr) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, ok := n.peers[addr]; ok {
		n.failed[addr] = true
	}
}

// Recover clears a peer's failed state.
func (n *Network) Recover(addr Addr) {
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.failed, addr)
}

// Alive reports whether addr is registered and not failed.
func (n *Network) Alive(addr Addr) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.aliveLocked(addr)
}

func (n *Network) aliveLocked(addr Addr) bool {
	_, ok := n.peers[addr]
	return ok && !n.failed[addr]
}

// Call performs a synchronous RPC from one peer to another. The reply and
// error come from the destination handler; transport-level failures surface
// as ErrUnreachable. Calls from a peer to itself bypass the network and are
// not metered unless WithLocalCallsCounted was set.
func (n *Network) Call(from, to Addr, msg Message) (Message, error) {
	return n.CallCtx(context.Background(), from, to, msg)
}

// CallCtx is Call honoring ctx: a context that is already done fails
// immediately with an error wrapping ctx.Err() (never ErrUnreachable), and a
// call whose simulated round trip would overrun the context's deadline fails
// with context.DeadlineExceeded — the simulator's stand-in for a wall-clock
// timeout, since simulated latency is accounted rather than slept.
func (n *Network) CallCtx(ctx context.Context, from, to Addr, msg Message) (Message, error) {
	if cerr := ctx.Err(); cerr != nil {
		n.mu.Lock()
		n.stats.Expired++
		n.mu.Unlock()
		if n.tel != nil {
			n.tel.Counter("simnet.ctx_expired").Inc()
		}
		return Message{}, fmt.Errorf("simnet: %s to %s aborted: %w", msg.Type, to, cerr)
	}
	n.mu.Lock()
	h, ok := n.peers[to]
	alive := ok && !n.failed[to]
	local := from == to
	if local && !n.countOwn {
		n.stats.LocalBypass++
		n.mu.Unlock()
		if n.tel != nil {
			n.tel.Counter("simnet.local_bypass").Inc()
		}
		if !alive {
			return Message{}, fmt.Errorf("%w: %s (self)", ErrUnreachable, to)
		}
		return h.HandleMessage(from, msg)
	}
	n.stats.Calls++
	n.stats.Bytes += int64(msg.Size)
	if !n.lean {
		n.stats.CallsByType[msg.Type]++
		n.stats.CallsByDest[to]++
		n.stats.BytesByType[msg.Type] += int64(msg.Size)
	}
	var simRTT time.Duration
	if n.latency != nil {
		simRTT = 2 * n.latency(n.rng) // round trip
		n.stats.SimLatency += simRTT
	}
	sleep := n.sleep
	if !alive {
		n.stats.Failed++
		n.mu.Unlock()
		if n.tel != nil {
			n.tel.Counter("simnet.calls."+msg.Type).Inc()
			n.tel.Counter("simnet.bytes."+msg.Type).Add(int64(msg.Size))
			n.tel.Counter("simnet.unreachable").Inc()
		}
		return Message{}, fmt.Errorf("%w: %s", ErrUnreachable, to)
	}
	// Injected transient faults: a scheduled drop (DropCalls) takes priority,
	// then probabilistic loss. Either way the destination stays Alive — the
	// failure looks exactly like a packet lost on the wire.
	drop := false
	if s := n.dropSkip[to]; s > 0 {
		n.dropSkip[to] = s - 1
	} else if c := n.dropNext[to]; c > 0 {
		n.dropNext[to] = c - 1
		drop = true
	} else if n.lossProb > 0 && n.lossRng.Float64() < n.lossProb {
		drop = true
	}
	if drop {
		n.stats.Dropped++
		n.mu.Unlock()
		if n.tel != nil {
			n.tel.Counter("simnet.calls."+msg.Type).Inc()
			n.tel.Counter("simnet.bytes."+msg.Type).Add(int64(msg.Size))
			n.tel.Counter("simnet.dropped").Inc()
		}
		return Message{}, fmt.Errorf("%w: %s (packet lost)", ErrUnreachable, to)
	}
	// A simulated round trip that overruns the caller's deadline is a timeout:
	// latency is accounted, not slept, so the deadline must be enforced here
	// for it to mean anything in simulation.
	if dl, ok := ctx.Deadline(); ok && simRTT > 0 && n.clock.Now().Add(simRTT).After(dl) {
		n.stats.Expired++
		n.mu.Unlock()
		if n.tel != nil {
			n.tel.Counter("simnet.calls."+msg.Type).Inc()
			n.tel.Counter("simnet.bytes."+msg.Type).Add(int64(msg.Size))
			n.tel.Counter("simnet.ctx_expired").Inc()
		}
		return Message{}, fmt.Errorf("simnet: %s to %s overran deadline (simulated rtt %v): %w",
			msg.Type, to, simRTT, context.DeadlineExceeded)
	}
	n.mu.Unlock()

	// Sleeping-latency mode: actually wait out the simulated round trip
	// (outside the lock, context-aware) so clocks observe it. Under the wall
	// clock this is a real timer; under a virtual clock it is a scheduler
	// event that costs no wall time.
	if sleep && simRTT > 0 {
		if serr := n.clock.Sleep(ctx, simRTT); serr != nil {
			n.mu.Lock()
			n.stats.Expired++
			n.mu.Unlock()
			if n.tel != nil {
				n.tel.Counter("simnet.calls."+msg.Type).Inc()
				n.tel.Counter("simnet.bytes."+msg.Type).Add(int64(msg.Size))
				n.tel.Counter("simnet.ctx_expired").Inc()
			}
			return Message{}, fmt.Errorf("simnet: %s to %s aborted in flight: %w", msg.Type, to, serr)
		}
	}

	reply, err := h.HandleMessage(from, msg)
	if err == nil {
		n.mu.Lock()
		n.stats.Bytes += int64(reply.Size)
		if !n.lean {
			n.stats.BytesByType[msg.Type] += int64(reply.Size)
		}
		n.mu.Unlock()
	}
	if n.tel != nil {
		n.tel.Counter("simnet.calls."+msg.Type).Inc()
		n.tel.Counter("simnet.bytes."+msg.Type).Add(int64(msg.Size) + int64(reply.Size))
		if n.latency != nil {
			n.tel.Histogram("simnet.latency_us").Observe(simRTT.Microseconds())
		}
		if err != nil {
			n.tel.Counter("simnet.handler_errors").Inc()
		}
	}
	return reply, err
}

// Stats returns a copy of the current counters.
func (n *Network) Stats() Stats {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := n.stats
	out.CallsByType = make(map[string]int64, len(n.stats.CallsByType))
	for k, v := range n.stats.CallsByType {
		out.CallsByType[k] = v
	}
	out.BytesByType = make(map[string]int64, len(n.stats.BytesByType))
	for k, v := range n.stats.BytesByType {
		out.BytesByType[k] = v
	}
	out.CallsByDest = make(map[Addr]int64, len(n.stats.CallsByDest))
	for k, v := range n.stats.CallsByDest {
		out.CallsByDest[k] = v
	}
	out.PeersFailed = len(n.failed)
	alive := 0
	for a := range n.peers {
		if !n.failed[a] {
			alive++
		}
	}
	out.PeersAlive = alive
	return out
}

// ResetStats zeroes the counters while leaving the peer set untouched. The
// experiment harness uses it to measure phases (index construction vs. query
// processing) independently.
func (n *Network) ResetStats() {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.stats = Stats{
		CallsByType: make(map[string]int64),
		BytesByType: make(map[string]int64),
		CallsByDest: make(map[Addr]int64),
	}
}

// Peers returns the addresses of all registered peers (alive or failed) in
// sorted order.
func (n *Network) Peers() []Addr {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make([]Addr, 0, len(n.peers))
	for a := range n.peers {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
