package chord

import (
	"fmt"
	"testing"

	"github.com/spritedht/sprite/internal/simnet"
)

// dieOnCall wraps a transport so that one armed call to the victim fails —
// optionally killing the victim at that exact moment — reproducing a peer
// that dies between stabilize's liveness check and its state re-fetch.
type dieOnCall struct {
	simnet.Transport
	fi     simnet.FaultInjector
	victim simnet.Addr
	armed  bool
	kill   bool // fail the victim for real, not just this one call
}

func (d *dieOnCall) Call(from, to simnet.Addr, msg simnet.Message) (simnet.Message, error) {
	if d.armed && to == d.victim {
		d.armed = false
		if d.kill {
			d.fi.Fail(d.victim)
		}
		return simnet.Message{}, fmt.Errorf("chord test: call to %s lost: %w", d.victim, simnet.ErrUnreachable)
	}
	return d.Transport.Call(from, to, msg)
}

// stabilizeCandidateRing builds a 4-node ring a < v < b < c where node a
// only knows successors [b, c] — the state right after v joined and notified
// b but before a has stabilized — so a's next stabilize discovers v as a
// better successor through b's predecessor pointer.
func stabilizeCandidateRing(t *testing.T, net simnet.Transport) (a, v, b *Node) {
	t.Helper()
	r := NewRing(net, Config{SuccessorListLen: 3, FingerBits: 24})
	if _, err := r.AddNodes("sc", 4); err != nil {
		t.Fatal(err)
	}
	r.Build()
	nodes := r.Nodes() // sorted by ID
	a, v, b = nodes[0], nodes[1], nodes[2]
	c := nodes[3]
	a.mu.Lock()
	a.succs = []Ref{b.Ref(), c.Ref()}
	a.mu.Unlock()
	return a, v, b
}

func TestStabilizeSkipsCandidateThatDiedMidExchange(t *testing.T) {
	inner := simnet.New(77)
	wrap := &dieOnCall{Transport: inner, fi: inner, kill: true}
	a, v, b := stabilizeCandidateRing(t, wrap)

	// Arm the trap: the very next call to v — stabilize's state re-fetch —
	// finds it dead, even though the liveness precheck just passed.
	wrap.victim = v.Addr()
	wrap.armed = true
	a.stabilize()
	if got := a.Successor().ID; got == v.ID() {
		t.Fatal("stabilize promoted a successor candidate that died before the re-fetch")
	} else if got != b.ID() {
		t.Fatalf("successor = %s, want the verified-live %s", got.Short(), b.ID().Short())
	}
}

func TestStabilizePromotesCandidateOnMessageLoss(t *testing.T) {
	inner := simnet.New(78)
	wrap := &dieOnCall{Transport: inner, fi: inner, kill: false}
	a, v, _ := stabilizeCandidateRing(t, wrap)

	// The re-fetch is lost but the candidate is alive: losing one packet
	// must not demote a live, closer successor.
	wrap.victim = v.Addr()
	wrap.armed = true
	a.stabilize()
	if got := a.Successor().ID; got != v.ID() {
		t.Fatalf("successor = %s, want the live candidate %s despite message loss", got.Short(), v.ID().Short())
	}
}
