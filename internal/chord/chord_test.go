package chord

import (
	"fmt"
	"math"
	"math/rand"
	"sync"
	"testing"

	"github.com/spritedht/sprite/internal/chordid"
	"github.com/spritedht/sprite/internal/simnet"
)

func buildRing(t testing.TB, n int, cfg Config) *Ring {
	t.Helper()
	net := simnet.New(42)
	r := NewRing(net, cfg)
	if _, err := r.AddNodes("peer", n); err != nil {
		t.Fatalf("AddNodes: %v", err)
	}
	r.Build()
	return r
}

func TestSingleNodeRing(t *testing.T) {
	r := buildRing(t, 1, Config{})
	n := r.Nodes()[0]
	if n.Successor().ID != n.ID() {
		t.Fatal("single node is not its own successor")
	}
	owner, hops, err := n.Lookup(chordid.HashKey("anything"))
	if err != nil {
		t.Fatalf("Lookup: %v", err)
	}
	if owner.ID != n.ID() {
		t.Fatalf("owner = %v, want self", owner)
	}
	if hops != 0 {
		t.Fatalf("hops = %d, want 0 on singleton ring", hops)
	}
}

func TestBuildWiresSuccessorsCorrectly(t *testing.T) {
	r := buildRing(t, 16, Config{})
	nodes := r.Nodes()
	for i, n := range nodes {
		want := nodes[(i+1)%len(nodes)].ID()
		if got := n.Successor().ID; got != want {
			t.Fatalf("node %d successor = %s, want %s", i, got, want)
		}
		wantPred := nodes[(i+len(nodes)-1)%len(nodes)].ID()
		if got := n.Predecessor().ID; got != wantPred {
			t.Fatalf("node %d predecessor = %s, want %s", i, got, wantPred)
		}
	}
	if !r.Converged() {
		t.Fatal("Build did not converge the ring")
	}
}

func TestBuildSuccessorListLength(t *testing.T) {
	r := buildRing(t, 10, Config{SuccessorListLen: 4})
	for _, n := range r.Nodes() {
		sl := n.SuccessorList()
		if len(sl) != 4 {
			t.Fatalf("successor list len = %d, want 4", len(sl))
		}
		for i, s := range sl {
			if s.ID == n.ID() {
				t.Fatalf("self appears in own successor list at %d", i)
			}
		}
	}
	// Successor list cannot exceed n-1 distinct other nodes.
	r2 := buildRing(t, 3, Config{SuccessorListLen: 8})
	for _, n := range r2.Nodes() {
		if got := len(n.SuccessorList()); got != 2 {
			t.Fatalf("successor list len = %d on 3-node ring, want 2", got)
		}
	}
}

func TestLookupMatchesOracle(t *testing.T) {
	r := buildRing(t, 64, Config{})
	nodes := r.Nodes()
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 300; i++ {
		key := chordid.HashKey(fmt.Sprintf("key-%d", i))
		from := nodes[rng.Intn(len(nodes))]
		got, _, err := from.Lookup(key)
		if err != nil {
			t.Fatalf("Lookup(%s): %v", key.Short(), err)
		}
		want, ok := r.Owner(key)
		if !ok {
			t.Fatal("oracle has no owner")
		}
		if got.ID != want.ID() {
			t.Fatalf("Lookup(%s) = %s, oracle says %s", key.Short(), got.ID.Short(), want.ID().Short())
		}
	}
}

func TestLookupHopBound(t *testing.T) {
	for _, size := range []int{8, 32, 128, 512} {
		r := buildRing(t, size, Config{})
		nodes := r.Nodes()
		rng := rand.New(rand.NewSource(11))
		total, trials := 0, 200
		maxHops := 0
		for i := 0; i < trials; i++ {
			key := chordid.HashKey(fmt.Sprintf("hopkey-%d", i))
			from := nodes[rng.Intn(len(nodes))]
			_, hops, err := from.Lookup(key)
			if err != nil {
				t.Fatalf("Lookup: %v", err)
			}
			total += hops
			if hops > maxHops {
				maxHops = hops
			}
		}
		avg := float64(total) / float64(trials)
		logN := math.Log2(float64(size))
		if avg > logN+2 {
			t.Errorf("N=%d: avg hops %.2f exceeds log2(N)+2 = %.2f", size, avg, logN+2)
		}
		if float64(maxHops) > 3*logN+4 {
			t.Errorf("N=%d: max hops %d exceeds 3·log2(N)+4", size, maxHops)
		}
	}
}

func TestLookupCountsRPCs(t *testing.T) {
	r := buildRing(t, 32, Config{})
	nodes := r.Nodes()
	sim := r.Net().(*simnet.Network)
	sim.ResetStats()
	_, hops, err := nodes[0].Lookup(chordid.HashKey("count-me"))
	if err != nil {
		t.Fatal(err)
	}
	if got := sim.Stats().CallsByType["chord.next_hop"]; got != int64(hops) {
		t.Fatalf("reported %d hops but network saw %d next_hop RPCs", hops, got)
	}
}

func TestJoinAllConverges(t *testing.T) {
	net := simnet.New(5)
	r := NewRing(net, Config{FingerBits: 24})
	if _, err := r.AddNodes("j", 20); err != nil {
		t.Fatal(err)
	}
	rounds, err := r.JoinAll(200)
	if err != nil {
		t.Fatalf("JoinAll: %v", err)
	}
	if !r.Converged() {
		t.Fatalf("ring not converged after %d rounds", rounds)
	}
	// After convergence + finger repair, lookups must match the oracle.
	r.RepairFingers()
	nodes := r.Nodes()
	for i := 0; i < 50; i++ {
		key := chordid.HashKey(fmt.Sprintf("jk-%d", i))
		got, _, err := nodes[i%len(nodes)].Lookup(key)
		if err != nil {
			t.Fatalf("Lookup: %v", err)
		}
		want, _ := r.Owner(key)
		if got.ID != want.ID() {
			t.Fatalf("post-join lookup mismatch for %s", key.Short())
		}
	}
}

func TestLateJoinThenStabilize(t *testing.T) {
	net := simnet.New(6)
	r := NewRing(net, Config{FingerBits: 24})
	if _, err := r.AddNodes("base", 8); err != nil {
		t.Fatal(err)
	}
	r.Build()
	newbie, err := r.AddNode("latecomer")
	if err != nil {
		t.Fatal(err)
	}
	if err := newbie.Join(r.Nodes()[0]); err != nil {
		t.Fatalf("Join: %v", err)
	}
	r.Stabilize(100)
	if !r.Converged() {
		t.Fatal("ring did not absorb late joiner")
	}
	r.RepairFingers()
	// The newcomer must now own the keys that hash between its predecessor
	// and itself.
	key := newbie.ID() // a key equal to the node ID is owned by that node
	got, _, err := r.Nodes()[0].Lookup(key)
	if err != nil {
		t.Fatal(err)
	}
	if got.ID != newbie.ID() {
		t.Fatalf("latecomer does not own its own ID: owner = %s", got.ID.Short())
	}
}

func TestLookupRoutesAroundFailedNode(t *testing.T) {
	r := buildRing(t, 32, Config{SuccessorListLen: 6})
	nodes := r.Nodes()
	key := chordid.HashKey("failover-key")
	owner, _ := r.Owner(key)

	r.Fail(owner)
	var from *Node
	for _, n := range nodes {
		if n != owner {
			from = n
			break
		}
	}
	got, _, err := from.Lookup(key)
	if err != nil {
		t.Fatalf("Lookup after failure: %v", err)
	}
	wantAfter, _ := r.Owner(key) // oracle over alive nodes
	if got.ID != wantAfter.ID() {
		t.Fatalf("failover owner = %s, want %s", got.ID.Short(), wantAfter.ID().Short())
	}
	if got.ID == owner.ID() {
		t.Fatal("lookup returned the failed node")
	}
}

func TestLookupSurvivesMultipleFailures(t *testing.T) {
	r := buildRing(t, 48, Config{SuccessorListLen: 8})
	nodes := r.Nodes()
	rng := rand.New(rand.NewSource(3))
	// Fail 25% of nodes (below the successor-list tolerance with high
	// probability).
	failed := map[*Node]bool{}
	for len(failed) < 12 {
		n := nodes[rng.Intn(len(nodes))]
		if !failed[n] {
			failed[n] = true
			r.Fail(n)
		}
	}
	var from *Node
	for _, n := range nodes {
		if !failed[n] {
			from = n
			break
		}
	}
	ok := 0
	for i := 0; i < 100; i++ {
		key := chordid.HashKey(fmt.Sprintf("multi-fail-%d", i))
		got, _, err := from.Lookup(key)
		if err != nil {
			continue
		}
		want, _ := r.Owner(key)
		if got.ID == want.ID() {
			ok++
		}
	}
	if ok < 95 {
		t.Fatalf("only %d/100 lookups reached the correct live owner", ok)
	}
}

func TestStabilizeRepairsAfterFailure(t *testing.T) {
	net := simnet.New(8)
	r := NewRing(net, Config{SuccessorListLen: 4, FingerBits: 24})
	if _, err := r.AddNodes("s", 12); err != nil {
		t.Fatal(err)
	}
	r.Build()
	nodes := r.Nodes()
	r.Fail(nodes[3])
	r.Fail(nodes[7])
	r.Stabilize(100)
	if !r.Converged() {
		t.Fatal("stabilization did not repair ring after 2 failures")
	}
}

func TestRecoverRejoins(t *testing.T) {
	net := simnet.New(9)
	r := NewRing(net, Config{SuccessorListLen: 4, FingerBits: 24})
	if _, err := r.AddNodes("rc", 10); err != nil {
		t.Fatal(err)
	}
	r.Build()
	victim := r.Nodes()[4]
	r.Fail(victim)
	r.Stabilize(100)
	if !r.Converged() {
		t.Fatal("ring did not converge after failure")
	}
	r.Recover(victim)
	// The recovered node's state is stale; let it re-stabilize.
	r.Stabilize(200)
	if !r.Converged() {
		t.Fatal("ring did not reabsorb recovered node")
	}
}

func TestLeave(t *testing.T) {
	net := simnet.New(10)
	r := NewRing(net, Config{SuccessorListLen: 4, FingerBits: 24})
	if _, err := r.AddNodes("lv", 8); err != nil {
		t.Fatal(err)
	}
	r.Build()
	gone := r.Nodes()[2]
	r.Leave(gone)
	if r.Size() != 7 {
		t.Fatalf("Size = %d after leave, want 7", r.Size())
	}
	r.Stabilize(100)
	if !r.Converged() {
		t.Fatal("ring did not heal after graceful leave")
	}
}

func TestAddNodeCollision(t *testing.T) {
	net := simnet.New(1)
	r := NewRing(net, Config{})
	if _, err := r.AddNode("same"); err != nil {
		t.Fatal(err)
	}
	if _, err := r.AddNode("same"); err == nil {
		t.Fatal("duplicate node name accepted")
	}
}

func TestAppHandlerDispatch(t *testing.T) {
	net := simnet.New(1)
	r := NewRing(net, Config{})
	a, _ := r.AddNode("appA")
	b, _ := r.AddNode("appB")
	r.Build()

	b.SetAppHandler(simnet.HandlerFunc(func(from simnet.Addr, msg simnet.Message) (simnet.Message, error) {
		if msg.Type != "sprite.test" {
			t.Errorf("app handler saw %q", msg.Type)
		}
		return simnet.Message{Type: "sprite.test.ok", Size: 1}, nil
	}))
	reply, err := net.Call(a.Addr(), b.Addr(), simnet.Message{Type: "sprite.test", Size: 1})
	if err != nil {
		t.Fatalf("app call: %v", err)
	}
	if reply.Type != "sprite.test.ok" {
		t.Fatalf("reply = %+v", reply)
	}
	// Without a handler the node must reject unknown types.
	if _, err := net.Call(b.Addr(), a.Addr(), simnet.Message{Type: "sprite.test"}); err == nil {
		t.Fatal("node without app handler accepted app message")
	}
}

func TestOwnerOracleSkipsDeadNodes(t *testing.T) {
	r := buildRing(t, 8, Config{})
	key := chordid.HashKey("oracle-key")
	before, _ := r.Owner(key)
	r.Fail(before)
	after, ok := r.Owner(key)
	if !ok {
		t.Fatal("oracle found no owner")
	}
	if after.ID() == before.ID() {
		t.Fatal("oracle returned a dead node")
	}
}

func TestConfigDefaults(t *testing.T) {
	cfg := Config{}.withDefaults()
	if cfg.SuccessorListLen != 4 || cfg.FingerBits != chordid.Bits || cfg.MaxLookupHops != 256 {
		t.Fatalf("unexpected defaults: %+v", cfg)
	}
	cfg = Config{FingerBits: 1000}.withDefaults()
	if cfg.FingerBits != chordid.Bits {
		t.Fatalf("FingerBits not clamped: %d", cfg.FingerBits)
	}
}

func TestRefString(t *testing.T) {
	var zero Ref
	if zero.String() != "<nil>" {
		t.Fatalf("zero Ref String = %q", zero.String())
	}
	r := Ref{ID: chordid.HashKey("x"), Addr: "x"}
	if r.IsZero() {
		t.Fatal("non-zero ref reported zero")
	}
}

func TestJoinRemoteSimulated(t *testing.T) {
	net := simnet.New(13)
	r := NewRing(net, Config{FingerBits: 24})
	if _, err := r.AddNodes("jr", 10); err != nil {
		t.Fatal(err)
	}
	r.Build()
	boot := r.Nodes()[0]

	// A node on the same transport joins knowing only the bootstrap address.
	joiner := NewNode(net, "remote-joiner", Config{FingerBits: 24})
	if err := joiner.JoinRemote(boot.Addr()); err != nil {
		t.Fatalf("JoinRemote: %v", err)
	}
	want, _ := r.Owner(joiner.ID())
	if got := joiner.Successor(); got.ID != want.ID() {
		t.Fatalf("joiner successor = %s, want %s", got.ID.Short(), want.ID().Short())
	}
}

func TestJoinRemoteUnreachableBootstrap(t *testing.T) {
	net := simnet.New(14)
	joiner := NewNode(net, "lonely", Config{})
	if err := joiner.JoinRemote("nobody-home"); err == nil {
		t.Fatal("JoinRemote to unreachable bootstrap succeeded")
	}
}

func TestLookupDeterministic(t *testing.T) {
	r := buildRing(t, 32, Config{})
	n := r.Nodes()[5]
	key := chordid.HashKey("determinism")
	first, firstHops, err := n.Lookup(key)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		got, hops, err := n.Lookup(key)
		if err != nil {
			t.Fatal(err)
		}
		if got != first || hops != firstHops {
			t.Fatalf("lookup %d: (%v,%d) != (%v,%d)", i, got, hops, first, firstHops)
		}
	}
}

func TestConcurrentLookups(t *testing.T) {
	r := buildRing(t, 64, Config{})
	nodes := r.Nodes()
	var wg sync.WaitGroup
	errs := make(chan error, 128)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 16; i++ {
				key := chordid.HashKey(fmt.Sprintf("conc-%d-%d", w, i))
				got, _, err := nodes[(w*7+i)%len(nodes)].Lookup(key)
				if err != nil {
					errs <- err
					return
				}
				want, _ := r.Owner(key)
				if got.ID != want.ID() {
					errs <- fmt.Errorf("lookup mismatch for %s", key.Short())
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestBuildIdempotent(t *testing.T) {
	r := buildRing(t, 12, Config{})
	before := map[string]Ref{}
	for _, n := range r.Nodes() {
		before[string(n.Addr())] = n.Successor()
	}
	r.Build()
	for _, n := range r.Nodes() {
		if n.Successor() != before[string(n.Addr())] {
			t.Fatal("Build is not idempotent")
		}
	}
}

// Property: after Build, every finger entry equals the oracle successor of
// its start position.
func TestFingerTableMatchesOracle(t *testing.T) {
	r := buildRing(t, 24, Config{FingerBits: 32})
	for _, n := range r.Nodes() {
		for i := 0; i < 32; i++ {
			start := n.ID().AddPowerOfTwo(n.fingerStart(i))
			want, _ := r.Owner(start)
			n.mu.Lock()
			got := n.fingers[i]
			n.mu.Unlock()
			if got.ID != want.ID() {
				t.Fatalf("node %s finger %d = %s, oracle %s",
					n.Addr(), i, got.ID.Short(), want.ID().Short())
			}
		}
	}
}

// Property: the successor list of every node is the next r alive nodes in
// ring order.
func TestSuccessorListMatchesOracle(t *testing.T) {
	r := buildRing(t, 20, Config{SuccessorListLen: 5})
	nodes := r.Nodes()
	for i, n := range nodes {
		sl := n.SuccessorList()
		for j, s := range sl {
			want := nodes[(i+j+1)%len(nodes)].ID()
			if s.ID != want {
				t.Fatalf("node %d successor[%d] mismatch", i, j)
			}
		}
	}
}
