package chord

import (
	"fmt"
	"sort"

	"github.com/spritedht/sprite/internal/chordid"
	"github.com/spritedht/sprite/internal/simnet"
)

// Ring manages a set of Chord nodes living on one simulated network. It is
// the simulation driver: experiments create nodes through it, wire the
// overlay either instantly (Build) or via the join/stabilize protocol, and
// inject churn. Ring also serves as the test oracle — it knows the globally
// correct owner of every key.
type Ring struct {
	net   simnet.Transport
	cfg   Config
	nodes map[chordid.ID]*Node
	order []*Node // sorted by ID; maintained lazily by sortNodes
	dirty bool
}

// NewRing creates an empty ring manager over any transport.
func NewRing(net simnet.Transport, cfg Config) *Ring {
	return &Ring{
		net:   net,
		cfg:   cfg.withDefaults(),
		nodes: make(map[chordid.ID]*Node),
	}
}

// Net returns the underlying transport.
func (r *Ring) Net() simnet.Transport { return r.net }

// Config returns the overlay configuration (with defaults applied).
func (r *Ring) Config() Config { return r.cfg }

// AddNode creates a node named name and tracks it. The node is not wired
// into the overlay until Build or Join+Stabilize runs. AddNode fails on a
// (vanishingly unlikely) MD5 identifier collision, which would otherwise
// silently merge two peers.
func (r *Ring) AddNode(name string) (*Node, error) {
	id := chordid.HashKey(name)
	if existing, ok := r.nodes[id]; ok {
		return nil, fmt.Errorf("chord: node %q collides with %q at %s", name, existing.Addr(), id)
	}
	n := NewNode(r.net, name, r.cfg)
	r.nodes[id] = n
	r.dirty = true
	return n, nil
}

// AddNodes creates count nodes named prefix0..prefix<count-1>.
func (r *Ring) AddNodes(prefix string, count int) ([]*Node, error) {
	out := make([]*Node, 0, count)
	for i := 0; i < count; i++ {
		n, err := r.AddNode(fmt.Sprintf("%s%d", prefix, i))
		if err != nil {
			return nil, err
		}
		out = append(out, n)
	}
	return out, nil
}

// Nodes returns all tracked nodes sorted by ring position.
func (r *Ring) Nodes() []*Node {
	r.sortNodes()
	out := make([]*Node, len(r.order))
	copy(out, r.order)
	return out
}

// Size returns the number of tracked nodes.
func (r *Ring) Size() int { return len(r.nodes) }

func (r *Ring) sortNodes() {
	if !r.dirty && len(r.order) == len(r.nodes) {
		return
	}
	r.order = r.order[:0]
	for _, n := range r.nodes {
		r.order = append(r.order, n)
	}
	sort.Slice(r.order, func(i, j int) bool {
		return r.order[i].ID().Less(r.order[j].ID())
	})
	r.dirty = false
}

// Build wires every node's predecessor, successor list, and finger table
// directly from global knowledge. The resulting overlay state is the unique
// fixed point that Chord's join/stabilize protocol converges to for this
// node population, so experiments that are not about churn can skip the
// convergence phase. Build is idempotent.
func (r *Ring) Build() {
	r.sortNodes()
	n := len(r.order)
	if n == 0 {
		return
	}
	ids := make([]chordid.ID, n)
	for i, node := range r.order {
		ids[i] = node.ID()
	}
	succRef := func(i int) Ref { return r.order[i%n].Ref() }

	for i, node := range r.order {
		node.mu.Lock()
		node.pred = succRef(i + n - 1)
		listLen := node.cfg.SuccessorListLen
		if listLen > n-1 && n > 1 {
			listLen = n - 1
		}
		if n == 1 {
			node.succs = []Ref{node.ref}
		} else {
			node.succs = make([]Ref, 0, listLen)
			for j := 1; j <= listLen; j++ {
				node.succs = append(node.succs, succRef(i+j))
			}
		}
		for k := range node.fingers {
			start := node.ref.ID.AddPowerOfTwo(node.fingerStart(k))
			node.fingers[k] = r.order[successorIndex(ids, start)].Ref()
		}
		node.mu.Unlock()
	}
}

// successorIndex returns the index in the sorted id slice of the first node
// whose ID is >= key, wrapping to 0 past the end.
func successorIndex(ids []chordid.ID, key chordid.ID) int {
	i := sort.Search(len(ids), func(i int) bool { return ids[i].Cmp(key) >= 0 })
	if i == len(ids) {
		return 0
	}
	return i
}

// Owner returns the globally correct owner of key among currently *alive*
// nodes — the oracle the tests compare lookups against. It returns false if
// no node is alive.
func (r *Ring) Owner(key chordid.ID) (*Node, bool) {
	r.sortNodes()
	if len(r.order) == 0 {
		return nil, false
	}
	start := successorIndex(r.idsAlivePreserveOrder(), key)
	alive := r.aliveNodes()
	if len(alive) == 0 {
		return nil, false
	}
	return alive[start%len(alive)], true
}

func (r *Ring) aliveNodes() []*Node {
	r.sortNodes()
	out := make([]*Node, 0, len(r.order))
	for _, n := range r.order {
		if r.net.Alive(n.Addr()) {
			out = append(out, n)
		}
	}
	return out
}

func (r *Ring) idsAlivePreserveOrder() []chordid.ID {
	alive := r.aliveNodes()
	ids := make([]chordid.ID, len(alive))
	for i, n := range alive {
		ids[i] = n.ID()
	}
	return ids
}

// JoinAll joins every node into one ring through the first node, then runs
// stabilization until the successor structure matches the oracle (or rounds
// is exhausted). It returns the number of rounds used.
func (r *Ring) JoinAll(rounds int) (int, error) {
	r.sortNodes()
	if len(r.order) <= 1 {
		return 0, nil
	}
	boot := r.order[0]
	for _, n := range r.order {
		if n == boot {
			continue
		}
		if err := n.Join(boot); err != nil {
			return 0, err
		}
	}
	return r.Stabilize(rounds), nil
}

// Stabilize runs up to rounds rounds of the periodic protocol on every node
// (stabilize + one finger refresh per node per round), stopping early once
// every alive node's successor matches the oracle. It returns the number of
// rounds executed.
func (r *Ring) Stabilize(rounds int) int {
	for round := 1; round <= rounds; round++ {
		for _, n := range r.aliveNodes() {
			n.stabilize()
			n.fixFinger()
		}
		if r.Converged() {
			return round
		}
	}
	return rounds
}

// Converged reports whether every alive node's immediate successor is the
// next alive node on the ring.
func (r *Ring) Converged() bool {
	alive := r.aliveNodes()
	if len(alive) <= 1 {
		return true
	}
	for i, n := range alive {
		want := alive[(i+1)%len(alive)].ID()
		if n.Successor().ID != want {
			return false
		}
	}
	return true
}

// ConvergedLists reports whether every alive node's full successor list
// matches the oracle — its next min(SuccessorListLen, alive-1) alive nodes in
// ring order. This is strictly stronger than Converged: routing only needs
// immediate successors, but successor-dependent placement (§7 replica
// targets) reads the whole list, which lags behind by up to one ring hop per
// stabilization round.
func (r *Ring) ConvergedLists() bool {
	alive := r.aliveNodes()
	if len(alive) <= 1 {
		return true
	}
	for i, n := range alive {
		want := n.cfg.SuccessorListLen
		if want > len(alive)-1 {
			want = len(alive) - 1
		}
		succs := n.SuccessorList()
		if len(succs) < want {
			return false
		}
		for j := 0; j < want; j++ {
			if succs[j].ID != alive[(i+1+j)%len(alive)].ID() {
				return false
			}
		}
	}
	return true
}

// StabilizeLists is Stabilize run to the stronger ConvergedLists fixed
// point. Use it when an experiment needs replica placement — not just
// routing — to match the ring oracle before proceeding.
func (r *Ring) StabilizeLists(rounds int) int {
	for round := 1; round <= rounds; round++ {
		for _, n := range r.aliveNodes() {
			n.stabilize()
			n.fixFinger()
		}
		if r.ConvergedLists() {
			return round
		}
	}
	return rounds
}

// RepairFingers fully refreshes every alive node's finger table via lookups.
// Used after churn when an experiment needs log-N routing restored promptly.
func (r *Ring) RepairFingers() {
	for _, n := range r.aliveNodes() {
		for i := 0; i < n.cfg.FingerBits; i++ {
			n.fixFinger()
		}
	}
}

// Fail crashes the named node (it stays registered so Recover can revive
// it). It is a no-op on transports without fault injection.
func (r *Ring) Fail(n *Node) {
	if fi, ok := r.net.(simnet.FaultInjector); ok {
		fi.Fail(n.Addr())
	}
}

// Recover revives a previously failed node. Its overlay state is stale until
// stabilization rounds run. No-op on transports without fault injection.
func (r *Ring) Recover(n *Node) {
	if fi, ok := r.net.(simnet.FaultInjector); ok {
		fi.Recover(n.Addr())
	}
}

// Leave removes a node gracefully: before unregistering it, the departing
// node's live predecessor and successor are spliced together — the successor
// adopts the leaver's predecessor (firing its arc-change hook, which is how
// the application layer learns the arc merged) and the predecessor's
// successor list skips the leaver — so routing never dips through the gap
// while stabilization catches up. The node is then unregistered and
// forgotten by the manager.
func (r *Ring) Leave(n *Node) {
	r.splice(n)
	r.net.Unregister(n.Addr())
	delete(r.nodes, n.ID())
	r.dirty = true
}

// splice rewires the departing node's alive ring neighbors around it.
func (r *Ring) splice(n *Node) {
	alive := r.aliveNodes()
	if len(alive) <= 1 {
		return
	}
	idx := -1
	for i, node := range alive {
		if node == n {
			idx = i
			break
		}
	}
	if idx < 0 {
		return // leaver is itself failed; stabilization handles the rest
	}
	pred := alive[(idx+len(alive)-1)%len(alive)]
	succ := alive[(idx+1)%len(alive)]
	if pred == n || succ == n {
		return
	}
	// The successor drops the leaver from its state and adopts the leaver's
	// predecessor through notify, so the application arc-change hook fires
	// exactly as it would for protocol-driven adoption.
	succ.dropPeer(n.Ref())
	succ.notify(pred.Ref())
	// Every other alive node just forgets the leaver; stabilize rebuilds the
	// lists from live state.
	for _, node := range alive {
		if node != n && node != succ {
			node.dropPeer(n.Ref())
		}
	}
}
