// Package chord implements the Chord distributed hash table (Stoica et al.,
// SIGCOMM'01) on top of the simulated network in internal/simnet. SPRITE uses
// Chord as its overlay ("We implemented Chord as designed in [15]", §6):
// every term, query, and node name is hashed with MD5 onto a 2^128 ring, and
// the peer responsible for a key is the key's successor.
//
// The implementation follows the paper's protocol: each node keeps a finger
// table (finger[k] = successor(n + 2^k)), a predecessor pointer, and a
// successor list for fault tolerance. Lookups are iterative — the querying
// node repeatedly asks the closest preceding node for a better candidate,
// one RPC per hop — which makes hop counting exact and lets the experiment
// harness validate the O(log N) bound.
//
// Because the surrounding system is a simulation, a Ring manager owns all
// nodes and offers two construction modes: protocol joins with explicit
// stabilization rounds (used by churn tests), and Build, which wires
// successor lists and finger tables directly from global knowledge (used to
// bootstrap large experiment rings quickly; the resulting state is exactly
// the fixed point stabilization would reach).
package chord

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"github.com/spritedht/sprite/internal/chordid"
	"github.com/spritedht/sprite/internal/simnet"
	"github.com/spritedht/sprite/internal/telemetry"
)

// Ref identifies a node: its ring position and network address. The zero Ref
// is "no node".
type Ref struct {
	ID   chordid.ID
	Addr simnet.Addr
}

// IsZero reports whether r names no node.
func (r Ref) IsZero() bool { return r == Ref{} }

func (r Ref) String() string {
	if r.IsZero() {
		return "<nil>"
	}
	return fmt.Sprintf("%s@%s", r.ID.Short(), r.Addr)
}

// Config holds overlay parameters.
type Config struct {
	// SuccessorListLen is the length r of each node's successor list. Chord
	// tolerates up to r-1 consecutive node failures. Default 4.
	SuccessorListLen int
	// FingerBits is the number of finger-table entries maintained (the top
	// FingerBits of the 128 possible). Default chordid.Bits (the full table).
	FingerBits int
	// MaxLookupHops bounds an iterative lookup as a safety net against
	// routing loops in a badly damaged ring. Default 256.
	MaxLookupHops int
	// Telemetry, when non-nil, receives overlay metrics: a lookup hop-count
	// histogram, lookup/failure counts, stabilization rounds, and
	// finger-table repairs. Nil (the default) disables instrumentation; the
	// overlay then pays only nil checks.
	Telemetry *telemetry.Registry
}

// nodeMetrics caches the overlay's instrument handles. All fields are nil
// when no registry is configured, which every instrument accepts.
type nodeMetrics struct {
	lookups       *telemetry.Counter
	lookupsFailed *telemetry.Counter
	hops          *telemetry.Histogram
	stabilizes    *telemetry.Counter
	fingerRepairs *telemetry.Counter
	succDepth     *telemetry.Gauge
}

func newNodeMetrics(reg *telemetry.Registry) nodeMetrics {
	return nodeMetrics{
		lookups:       reg.Counter("chord.lookups"),
		lookupsFailed: reg.Counter("chord.lookups_failed"),
		hops:          reg.Histogram("chord.lookup.hops"),
		stabilizes:    reg.Counter("chord.stabilize.rounds"),
		fingerRepairs: reg.Counter("chord.finger.repairs"),
		succDepth:     reg.Gauge("chord.successors.depth"),
	}
}

func (c Config) withDefaults() Config {
	if c.SuccessorListLen <= 0 {
		c.SuccessorListLen = 4
	}
	if c.FingerBits <= 0 || c.FingerBits > chordid.Bits {
		c.FingerBits = chordid.Bits
	}
	if c.MaxLookupHops <= 0 {
		c.MaxLookupHops = 256
	}
	return c
}

// ErrLookupFailed wraps all iterative-lookup failures (routing loops, hop
// budget exhausted, or no live owner reachable).
var ErrLookupFailed = errors.New("chord: lookup failed")

// Message types used by the overlay protocol.
const (
	msgNextHop  = "chord.next_hop"
	msgGetState = "chord.get_state"
	msgNotify   = "chord.notify"
	msgPing     = "chord.ping"
)

type nextHopReq struct {
	Key     chordid.ID
	Exclude []chordid.ID
}

type nextHopResp struct {
	Done bool // Key is owned by Ref (it is the asked node's successor or itself)
	Ref  Ref
}

type stateResp struct {
	Pred  Ref
	Succs []Ref
}

// Node is one Chord peer. All exported methods are safe for concurrent use.
type Node struct {
	ref Ref
	net simnet.Transport
	cfg Config
	met nodeMetrics

	mu      sync.Mutex
	pred    Ref
	succs   []Ref // succs[0] is the immediate successor; may equal self
	fingers []Ref // fingers[i] ~ successor(id + 2^(Bits-FingerBits+i))
	nextFix int   // round-robin finger refresh cursor

	app      simnet.Handler     // application handler for non-chord messages
	predHook func(old, new Ref) // arc-change notification, see SetPredChangeHook
}

// NewNode creates a node named name (its ring ID is MD5(name)) and registers
// it on the network. The node initially forms a one-node ring: it is its own
// successor.
func NewNode(net simnet.Transport, name string, cfg Config) *Node {
	cfg = cfg.withDefaults()
	n := &Node{
		ref:     Ref{ID: chordid.HashKey(name), Addr: simnet.Addr(name)},
		net:     net,
		cfg:     cfg,
		met:     newNodeMetrics(cfg.Telemetry),
		fingers: make([]Ref, cfg.FingerBits),
	}
	n.succs = []Ref{n.ref}
	net.Register(n.ref.Addr, n)
	return n
}

// Ref returns the node's identity.
func (n *Node) Ref() Ref { return n.ref }

// ID returns the node's ring position.
func (n *Node) ID() chordid.ID { return n.ref.ID }

// Addr returns the node's network address.
func (n *Node) Addr() simnet.Addr { return n.ref.Addr }

// SetAppHandler installs the application-level handler that receives every
// message whose type does not begin with "chord.". SPRITE's indexing-peer
// logic hangs off this hook.
func (n *Node) SetAppHandler(h simnet.Handler) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.app = h
}

// SetPredChangeHook installs a callback invoked whenever notify installs a
// different predecessor — the moment this node's ownership arc changes. old
// is the previous predecessor (zero when none was known). The hook runs
// outside the node's lock, so it may call back into the overlay or the
// network; the application layer uses it to hand index entries to a joiner
// the instant stabilization adopts it.
func (n *Node) SetPredChangeHook(fn func(old, new Ref)) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.predHook = fn
}

// Successor returns the node's current immediate successor.
func (n *Node) Successor() Ref {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.succs[0]
}

// SuccessorList returns a copy of the node's successor list.
func (n *Node) SuccessorList() []Ref {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make([]Ref, len(n.succs))
	copy(out, n.succs)
	return out
}

// Predecessor returns the node's current predecessor (zero if unknown).
func (n *Node) Predecessor() Ref {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.pred
}

// fingerStart returns the ring offset exponent for finger index i.
func (n *Node) fingerStart(i int) int {
	return chordid.Bits - n.cfg.FingerBits + i
}

// HandleMessage implements simnet.Handler: overlay messages are served here,
// anything else is forwarded to the application handler.
func (n *Node) HandleMessage(from simnet.Addr, msg simnet.Message) (simnet.Message, error) {
	switch msg.Type {
	case msgNextHop:
		req := msg.Payload.(nextHopReq)
		resp := n.nextHop(req)
		return simnet.Message{Type: msg.Type, Payload: resp, Size: refSize}, nil
	case msgGetState:
		n.mu.Lock()
		st := stateResp{Pred: n.pred, Succs: append([]Ref(nil), n.succs...)}
		n.mu.Unlock()
		return simnet.Message{Type: msg.Type, Payload: st, Size: refSize * (1 + len(st.Succs))}, nil
	case msgNotify:
		cand := msg.Payload.(Ref)
		n.notify(cand)
		return simnet.Message{Type: msg.Type, Size: 1}, nil
	case msgPing:
		return simnet.Message{Type: msg.Type, Size: 1}, nil
	}
	n.mu.Lock()
	app := n.app
	n.mu.Unlock()
	if app == nil {
		return simnet.Message{}, fmt.Errorf("chord: node %s: no handler for message type %q", n.ref, msg.Type)
	}
	return app.HandleMessage(from, msg)
}

// refSize is the simulated wire size of a Ref (16-byte ID + address).
const refSize = 24

// nextHop answers one step of an iterative lookup: if the key falls between
// this node and its first live, non-excluded successor, the lookup is done;
// otherwise return the closest preceding candidate from the finger table and
// successor list.
func (n *Node) nextHop(req nextHopReq) nextHopResp {
	// Most hops carry no exclusions; reads on a nil map are free, so only
	// allocate when the lookup is actually routing around failures.
	var excluded map[chordid.ID]bool
	if len(req.Exclude) > 0 {
		excluded = make(map[chordid.ID]bool, len(req.Exclude))
		for _, id := range req.Exclude {
			excluded[id] = true
		}
	}
	n.mu.Lock()
	defer n.mu.Unlock()

	// Find the first acceptable successor.
	for _, s := range n.succs {
		if s.IsZero() || excluded[s.ID] {
			continue
		}
		if req.Key.BetweenRightIncl(n.ref.ID, s.ID) {
			return nextHopResp{Done: true, Ref: s}
		}
		break // first acceptable successor does not own the key
	}
	if best := n.closestPrecedingLocked(req.Key, excluded); !best.IsZero() {
		return nextHopResp{Ref: best}
	}
	// Nothing better than ourselves: fall back to the first acceptable
	// successor so the lookup can limp around the ring.
	for _, s := range n.succs {
		if !s.IsZero() && !excluded[s.ID] && s.ID != n.ref.ID {
			return nextHopResp{Ref: s}
		}
	}
	return nextHopResp{Done: true, Ref: n.ref}
}

// closestPrecedingLocked scans fingers and the successor list for the node
// closest to key that strictly precedes it, skipping excluded nodes.
func (n *Node) closestPrecedingLocked(key chordid.ID, excluded map[chordid.ID]bool) Ref {
	acceptable := func(r Ref) bool {
		return !r.IsZero() && !excluded[r.ID] && r.ID != n.ref.ID &&
			r.ID.Between(n.ref.ID, key)
	}
	// Track the candidate with the minimal clockwise distance to the key.
	// Fingers are ordered by clockwise distance from this node, so scanning
	// from the top the first acceptable in-interval finger is already the
	// closest finger preceding the key — the rest need not be scored.
	var best Ref
	var bestDist chordid.ID
	first := true
	for i := len(n.fingers) - 1; i >= 0; i-- {
		if r := n.fingers[i]; acceptable(r) {
			best, bestDist, first = r, r.ID.Distance(key), false
			break
		}
	}
	for _, s := range n.succs {
		if !acceptable(s) {
			continue
		}
		if d := s.ID.Distance(key); first || d.Cmp(bestDist) < 0 {
			best, bestDist, first = s, d, false
		}
	}
	return best
}

// notify implements Chord's notify: cand believes it may be our predecessor.
func (n *Node) notify(cand Ref) {
	n.mu.Lock()
	if cand.ID == n.ref.ID {
		n.mu.Unlock()
		return
	}
	var old Ref
	changed := false
	if n.pred.IsZero() || cand.ID.Between(n.pred.ID, n.ref.ID) || !n.net.Alive(n.pred.Addr) {
		if n.pred.ID != cand.ID {
			old, changed = n.pred, true
		}
		n.pred = cand
	}
	hook := n.predHook
	n.mu.Unlock()
	if changed && hook != nil {
		hook(old, cand)
	}
}

// Lookup resolves the node responsible for key (its successor on the ring),
// counting one hop per remote RPC issued. Lookups route around failed nodes
// using the exclusion protocol; they fail only if no live owner is reachable
// within cfg.MaxLookupHops.
func (n *Node) Lookup(key chordid.ID) (Ref, int, error) {
	return n.lookupFrom(context.Background(), n.ref, key, nil, nil)
}

// LookupTraced is Lookup recording one child span per remote hop under
// parent. A nil parent span (the no-telemetry case) is accepted and free.
func (n *Node) LookupTraced(key chordid.ID, parent *telemetry.Span) (Ref, int, error) {
	return n.lookupFrom(context.Background(), n.ref, key, nil, parent)
}

// LookupCtx is LookupTraced honoring ctx: every hop RPC carries the caller's
// deadline, and a canceled context aborts the lookup with an error wrapping
// ctx.Err() rather than excluding the hop and routing on.
func (n *Node) LookupCtx(ctx context.Context, key chordid.ID, parent *telemetry.Span) (Ref, int, error) {
	return n.lookupFrom(ctx, n.ref, key, nil, parent)
}

// LookupExcluding resolves the owner of key as if the excluded nodes had
// left the ring: responsibility falls through to the next live successor —
// exactly where §7 successor replication placed the key's replicas. This is
// the failover primitive of the resilient read path: after the true owner
// proves unreachable, look the key up again excluding it to find the replica
// holder.
func (n *Node) LookupExcluding(ctx context.Context, key chordid.ID, exclude []chordid.ID, parent *telemetry.Span) (Ref, int, error) {
	return n.lookupFrom(ctx, n.ref, key, append([]chordid.ID(nil), exclude...), parent)
}

// lookupFrom runs the iterative lookup protocol starting at an arbitrary
// node (used by Lookup with start = self, and by JoinRemote with start = a
// bootstrap peer known only by address), with the exclusion list seeded from
// exclude. Each remote hop is timed as a child span of parent when tracing is
// on; hop counts and failures feed the overlay metrics.
func (n *Node) lookupFrom(ctx context.Context, start Ref, key chordid.ID, exclude []chordid.ID, parent *telemetry.Span) (ref Ref, hops int, err error) {
	n.met.lookups.Inc()
	defer func() {
		if err != nil {
			n.met.lookupsFailed.Inc()
		} else {
			n.met.hops.Observe(int64(hops))
		}
	}()
	cur := start
	// The hop request only changes when the exclusion list grows, so box the
	// payload once per (re)start instead of once per hop — the per-hop
	// interface allocation is pure GC pressure at sweep scale.
	req := nextHopReq{Key: key, Exclude: exclude}
	var boxed any = req
	size := chordid.Bytes + refSize*len(exclude)/2
	rebox := func() {
		req.Exclude = exclude
		boxed = req
		size = chordid.Bytes + refSize*len(exclude)/2
	}
	for hops <= n.cfg.MaxLookupHops {
		var resp nextHopResp
		if cur.Addr == n.ref.Addr {
			resp = n.nextHop(req)
		} else {
			sp := parent.StartChild("chord.hop")
			sp.Annotate("to", string(cur.Addr))
			reply, err := n.net.CallCtx(ctx, n.ref.Addr, cur.Addr, simnet.Message{
				Type:    msgNextHop,
				Payload: boxed,
				Size:    size,
			})
			hops++
			if err != nil {
				sp.Annotate("error", err.Error())
				sp.Finish()
				if ctx.Err() != nil {
					// The caller gave up: propagate its error, do not route on.
					return Ref{}, hops, fmt.Errorf("chord: lookup aborted at hop %d: %w", hops, err)
				}
				// cur died mid-lookup; restart with cur excluded.
				exclude = appendExcluded(exclude, cur.ID)
				rebox()
				cur = start
				continue
			}
			sp.Finish()
			resp = reply.Payload.(nextHopResp)
		}
		if resp.Done {
			if containsID(exclude, resp.Ref.ID) {
				// The ring could not route past the exclusions (e.g. every
				// candidate for the key is excluded or dead): fail rather
				// than loop forever on the same answer.
				return Ref{}, hops, fmt.Errorf("%w: all candidates for key excluded", ErrLookupFailed)
			}
			if n.net.Alive(resp.Ref.Addr) {
				return resp.Ref, hops, nil
			}
			// The owner is dead: exclude it so the responsibility falls
			// through to the next successor (where replicas live, §7).
			exclude = appendExcluded(exclude, resp.Ref.ID)
			rebox()
			cur = start
			continue
		}
		if resp.Ref.IsZero() || resp.Ref.ID == cur.ID {
			return Ref{}, hops, fmt.Errorf("%w: no progress at %s", ErrLookupFailed, cur)
		}
		cur = resp.Ref
	}
	return Ref{}, hops, fmt.Errorf("%w: exceeded %d hops", ErrLookupFailed, n.cfg.MaxLookupHops)
}

func appendExcluded(list []chordid.ID, id chordid.ID) []chordid.ID {
	if containsID(list, id) {
		return list
	}
	return append(list, id)
}

func containsID(list []chordid.ID, id chordid.ID) bool {
	for _, e := range list {
		if e == id {
			return true
		}
	}
	return false
}

// stabilize runs one round of Chord's periodic stabilization: verify the
// immediate successor, adopt its predecessor if closer, rebuild the successor
// list from the successor's list, and notify the successor.
func (n *Node) stabilize() {
	n.met.stabilizes.Inc()
	n.mu.Lock()
	succs := append([]Ref(nil), n.succs...)
	self := n.ref
	r := n.cfg.SuccessorListLen
	n.mu.Unlock()

	// First live successor.
	var succ Ref
	for _, s := range succs {
		if s.ID == self.ID || n.net.Alive(s.Addr) {
			succ = s
			break
		}
	}
	if succ.IsZero() {
		// All successors dead: collapse to a singleton ring; later notifies
		// from live nodes will re-absorb us.
		n.mu.Lock()
		n.succs = []Ref{self}
		n.mu.Unlock()
		n.met.succDepth.Set(1)
		return
	}

	if succ.ID != self.ID {
		reply, err := n.net.Call(self.Addr, succ.Addr, simnet.Message{Type: msgGetState, Size: 1})
		if err == nil {
			st := reply.Payload.(stateResp)
			if !st.Pred.IsZero() && st.Pred.ID.Between(self.ID, succ.ID) && n.net.Alive(st.Pred.Addr) {
				// Re-fetch state from the better successor — but re-check
				// liveness before installing it: the candidate can die
				// between the two getState calls, and promoting a corpse
				// would wedge succs[0] on a node that notify can never
				// reach. A failed re-fetch from a still-alive candidate is
				// message loss: promote anyway and pick its list up next
				// round.
				cand := st.Pred
				if reply2, err2 := n.net.Call(self.Addr, cand.Addr, simnet.Message{Type: msgGetState, Size: 1}); err2 == nil {
					succ, st = cand, reply2.Payload.(stateResp)
				} else if n.net.Alive(cand.Addr) {
					succ = cand
				}
			}
			newSuccs := make([]Ref, 0, r)
			newSuccs = append(newSuccs, succ)
			for _, s := range st.Succs {
				if len(newSuccs) >= r {
					break
				}
				if s.IsZero() || s.ID == self.ID || s.ID == succ.ID {
					continue
				}
				newSuccs = append(newSuccs, s)
			}
			n.mu.Lock()
			n.succs = newSuccs
			n.mu.Unlock()
			n.met.succDepth.Set(int64(len(newSuccs)))
			n.net.Call(self.Addr, succ.Addr, simnet.Message{Type: msgNotify, Payload: self, Size: refSize})
		} else if !n.net.Alive(succ.Addr) {
			// Successor died between the liveness check and the call; drop it.
			n.mu.Lock()
			if len(n.succs) > 1 {
				n.succs = n.succs[1:]
			} else {
				n.succs = []Ref{self}
			}
			n.mu.Unlock()
		}
		// A failed call to a successor that is still alive was message loss,
		// not death: keep the list and retry next round. Dropping on loss is
		// not just slow to heal — a fresh joiner whose only successor entry
		// loses one packet would collapse to a self-loop that no amount of
		// stabilization can ever re-absorb, since no other node knows it yet.
	} else {
		// We are our own successor. If a predecessor appeared, absorb it.
		n.mu.Lock()
		if !n.pred.IsZero() && n.net.Alive(n.pred.Addr) {
			n.succs = []Ref{n.pred}
		}
		n.mu.Unlock()
	}

	// Drop a dead predecessor so notify can replace it.
	n.mu.Lock()
	if !n.pred.IsZero() && !n.net.Alive(n.pred.Addr) {
		n.pred = Ref{}
	}
	n.mu.Unlock()
}

// fixFinger refreshes one finger-table entry per call (round-robin), as in
// the Chord paper's fix_fingers.
func (n *Node) fixFinger() {
	n.mu.Lock()
	i := n.nextFix
	n.nextFix = (n.nextFix + 1) % n.cfg.FingerBits
	start := n.ref.ID.AddPowerOfTwo(n.fingerStart(i))
	n.mu.Unlock()

	ref, _, err := n.Lookup(start)
	if err != nil {
		return
	}
	n.mu.Lock()
	repaired := n.fingers[i] != ref
	n.fingers[i] = ref
	n.mu.Unlock()
	if repaired {
		n.met.fingerRepairs.Inc()
	}
}

// Join attaches this node to the ring containing bootstrap: it resolves its
// own successor via the bootstrap node and relies on subsequent
// stabilization to repair predecessors, successor lists, and fingers.
func (n *Node) Join(bootstrap *Node) error {
	succ, _, err := bootstrap.Lookup(n.ref.ID)
	if err != nil {
		return fmt.Errorf("chord: join via %s: %w", bootstrap.ref, err)
	}
	n.adoptSuccessor(succ)
	return nil
}

// JoinRemote attaches this node to the ring containing a peer known only by
// its network address — the join path of a cross-process deployment, where
// no *Node handle for the bootstrap exists. The successor of this node's ID
// is resolved by running the iterative lookup protocol starting at the
// bootstrap peer; stabilization then repairs predecessors, successor lists,
// and fingers as usual.
func (n *Node) JoinRemote(bootstrap simnet.Addr) error {
	succ, _, err := n.lookupFrom(context.Background(), Ref{Addr: bootstrap}, n.ref.ID, nil, nil)
	if err != nil {
		return fmt.Errorf("chord: join via %s: %w", bootstrap, err)
	}
	n.adoptSuccessor(succ)
	return nil
}

// dropPeer scrubs a departed peer from this node's overlay state: successor
// list, predecessor, and fingers. Used by Ring.Leave to splice a graceful
// departure out of the ring without waiting for stabilization to time the
// corpse out.
func (n *Node) dropPeer(gone Ref) {
	n.mu.Lock()
	defer n.mu.Unlock()
	kept := n.succs[:0]
	for _, s := range n.succs {
		if s.ID != gone.ID {
			kept = append(kept, s)
		}
	}
	if len(kept) == 0 {
		kept = append(kept, n.ref)
	}
	n.succs = kept
	if n.pred.ID == gone.ID {
		n.pred = Ref{}
	}
	for i, f := range n.fingers {
		if f.ID == gone.ID {
			n.fingers[i] = Ref{}
		}
	}
}

func (n *Node) adoptSuccessor(succ Ref) {
	n.mu.Lock()
	n.pred = Ref{}
	if succ.ID == n.ref.ID {
		// The ring resolved our own position (e.g. we are the first joiner
		// contacting a singleton bootstrap that routed back to us); fall
		// back to a self-loop and let notify/stabilize absorb us.
		succ = n.ref
	}
	n.succs = []Ref{succ}
	n.mu.Unlock()
}
