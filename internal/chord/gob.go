package chord

import "encoding/gob"

// The overlay's message payloads are registered with gob so that the same
// protocol runs unchanged over internal/nettransport's TCP frames. The
// in-process simulator passes payloads by value and never touches these
// registrations.
func init() {
	gob.Register(nextHopReq{})
	gob.Register(nextHopResp{})
	gob.Register(stateResp{})
	gob.Register(Ref{})
}
