package chord

import "github.com/spritedht/sprite/internal/wire"

// The overlay's message payloads are registered for gob so that the same
// protocol runs unchanged over internal/nettransport's TCP frames. The
// in-process simulator passes payloads by value and never touches these
// registrations. Registration goes through internal/wire so it is idempotent
// across packages.
func init() {
	wire.Register(
		nextHopReq{},
		nextHopResp{},
		stateResp{},
		Ref{},
	)
}
