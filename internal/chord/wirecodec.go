package chord

import (
	"github.com/spritedht/sprite/internal/chordid"
	"github.com/spritedht/sprite/internal/simnet"
	"github.com/spritedht/sprite/internal/wire"
)

// Binary codecs for the overlay's hot-path payloads. Every lookup hop is a
// nextHopReq/nextHopResp exchange and every stabilization round a
// stateResp, so these four types dominate the overlay's wire traffic; the
// hand-rolled encoding spares each of them gob's per-stream type dictionary
// and reflection walk. Gob registration (gob.go) is kept as the negotiated
// fallback and for the simulator's by-value path.
func init() {
	wire.RegisterBinary(wire.KindChordBase+0, nextHopReq{},
		func(e *wire.Encoder, v any) {
			r := v.(nextHopReq)
			e.Raw(r.Key[:])
			e.Uint(uint64(len(r.Exclude)))
			for _, id := range r.Exclude {
				e.Raw(id[:])
			}
		},
		func(d *wire.Decoder) any {
			var r nextHopReq
			copy(r.Key[:], d.Raw(chordid.Bytes))
			if n := d.Count(chordid.Bytes); n > 0 {
				r.Exclude = make([]chordid.ID, n)
				for i := range r.Exclude {
					copy(r.Exclude[i][:], d.Raw(chordid.Bytes))
				}
			}
			return r
		})

	wire.RegisterBinary(wire.KindChordBase+1, nextHopResp{},
		func(e *wire.Encoder, v any) {
			r := v.(nextHopResp)
			e.Bool(r.Done)
			encodeRef(e, r.Ref)
		},
		func(d *wire.Decoder) any {
			var r nextHopResp
			r.Done = d.Bool()
			r.Ref = decodeRef(d)
			return r
		})

	wire.RegisterBinary(wire.KindChordBase+2, stateResp{},
		func(e *wire.Encoder, v any) {
			r := v.(stateResp)
			encodeRef(e, r.Pred)
			e.Uint(uint64(len(r.Succs)))
			for _, s := range r.Succs {
				encodeRef(e, s)
			}
		},
		func(d *wire.Decoder) any {
			var r stateResp
			r.Pred = decodeRef(d)
			// A Ref is at least ID + one length byte on the wire.
			if n := d.Count(chordid.Bytes + 1); n > 0 {
				r.Succs = make([]Ref, n)
				for i := range r.Succs {
					r.Succs[i] = decodeRef(d)
				}
			}
			return r
		})

	wire.RegisterBinary(wire.KindChordBase+3, Ref{},
		func(e *wire.Encoder, v any) { encodeRef(e, v.(Ref)) },
		func(d *wire.Decoder) any { return decodeRef(d) })
}

func encodeRef(e *wire.Encoder, r Ref) {
	e.Raw(r.ID[:])
	e.String(string(r.Addr))
}

func decodeRef(d *wire.Decoder) Ref {
	var r Ref
	copy(r.ID[:], d.Raw(chordid.Bytes))
	r.Addr = simnet.Addr(d.String())
	return r
}
