package chord

import (
	"fmt"
	"strings"
	"testing"

	"github.com/spritedht/sprite/internal/chordid"
	"github.com/spritedht/sprite/internal/simnet"
	"github.com/spritedht/sprite/internal/telemetry"
)

// buildTelemetryRing builds a ring with a registry installed at both the
// transport and overlay layers.
func buildTelemetryRing(t *testing.T, n int) (*Ring, *telemetry.Registry) {
	t.Helper()
	reg := telemetry.NewRegistry()
	net := simnet.New(42, simnet.WithTelemetry(reg))
	r := NewRing(net, Config{Telemetry: reg})
	if _, err := r.AddNodes("peer", n); err != nil {
		t.Fatalf("AddNodes: %v", err)
	}
	r.Build()
	return r, reg
}

func TestLookupRecordsHopHistogram(t *testing.T) {
	r, reg := buildTelemetryRing(t, 64)
	nodes := r.Nodes()
	const lookups = 50
	for i := 0; i < lookups; i++ {
		if _, _, err := nodes[i%len(nodes)].Lookup(chordid.HashKey(fmt.Sprintf("k%d", i))); err != nil {
			t.Fatalf("Lookup: %v", err)
		}
	}
	if got := reg.Counter("chord.lookups").Value(); got != lookups {
		t.Fatalf("chord.lookups = %d, want %d", got, lookups)
	}
	h := reg.Histogram("chord.lookup.hops")
	if h.Count() != lookups {
		t.Fatalf("hop histogram count = %d, want %d", h.Count(), lookups)
	}
	// O(log N) routing: on a 64-node ring every lookup resolves well under
	// 64 hops, and some lookup needs at least one hop.
	if h.Max() >= 64 || h.Max() < 1 {
		t.Fatalf("hop histogram max = %d, want in [1, 64)", h.Max())
	}
	if reg.Counter("simnet.calls.chord.next_hop").Value() == 0 {
		t.Fatal("transport-level next_hop accounting did not tick")
	}
}

func TestLookupTracedBuildsHopSpans(t *testing.T) {
	r, reg := buildTelemetryRing(t, 64)
	nodes := r.Nodes()
	tr := reg.StartTrace("lookup-test")
	var hops int
	var err error
	for i := 0; i < 20; i++ {
		// Find a key that needs at least one remote hop so the span tree is
		// non-trivial.
		_, hops, err = nodes[0].LookupTraced(chordid.HashKey(fmt.Sprintf("k%d", i)), tr.Root())
		if err != nil {
			t.Fatalf("LookupTraced: %v", err)
		}
		if hops > 0 {
			break
		}
	}
	if hops == 0 {
		t.Fatal("no multi-hop lookup found in 20 keys")
	}
	tr.Finish()
	snap := tr.Snapshot()
	var hopSpans int
	var walk func(s telemetry.SpanSnapshot)
	walk = func(s telemetry.SpanSnapshot) {
		if s.Name == "chord.hop" {
			hopSpans++
			var hasTo bool
			for _, a := range s.Attrs {
				if a.Key == "to" && strings.HasPrefix(fmt.Sprint(a.Value), "peer") {
					hasTo = true
				}
			}
			if !hasTo {
				t.Fatalf("chord.hop span missing to= attr: %+v", s.Attrs)
			}
		}
		for _, c := range s.Children {
			walk(c)
		}
	}
	walk(snap.Root)
	if hopSpans == 0 {
		t.Fatal("trace has no chord.hop spans")
	}
}

func TestStabilizeAndRepairCountersTick(t *testing.T) {
	r, reg := buildTelemetryRing(t, 16)
	r.Stabilize(3)
	if got := reg.Counter("chord.stabilize.rounds").Value(); got == 0 {
		t.Fatal("chord.stabilize.rounds did not tick")
	}
}
