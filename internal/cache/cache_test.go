package cache

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/spritedht/sprite/internal/telemetry"
)

func TestPutGet(t *testing.T) {
	c := New[string](Config{MaxEntries: 8, Shards: 1})
	if _, ok := c.Get("a"); ok {
		t.Fatal("empty cache reported a hit")
	}
	c.Put("a", "alpha", 5)
	v, ok := c.Get("a")
	if !ok || v != "alpha" {
		t.Fatalf("Get(a) = %q, %v; want alpha, true", v, ok)
	}
	c.Put("a", "alpha2", 6)
	if v, _ := c.Get("a"); v != "alpha2" {
		t.Fatalf("replacement not visible: got %q", v)
	}
	st := c.Stats()
	if st.Hits != 2 || st.Misses != 1 || st.Stores != 2 {
		t.Fatalf("stats = %+v; want 2 hits, 1 miss, 2 stores", st)
	}
	if st.Entries != 1 || st.Bytes != 6 {
		t.Fatalf("occupancy = %d entries / %d bytes; want 1 / 6", st.Entries, st.Bytes)
	}
}

func TestLRUEviction(t *testing.T) {
	c := New[int](Config{MaxEntries: 3, Shards: 1})
	c.Put("a", 1, 1)
	c.Put("b", 2, 1)
	c.Put("c", 3, 1)
	c.Get("a") // refresh a; b becomes least recently used
	c.Put("d", 4, 1)
	if _, ok := c.Get("b"); ok {
		t.Fatal("b should have been evicted as LRU")
	}
	for _, k := range []string{"a", "c", "d"} {
		if _, ok := c.Get(k); !ok {
			t.Fatalf("%s should have survived", k)
		}
	}
	if ev := c.Stats().Evictions; ev != 1 {
		t.Fatalf("evictions = %d; want 1", ev)
	}
}

func TestMaxBytesEviction(t *testing.T) {
	c := New[int](Config{MaxEntries: 100, MaxBytes: 10, Shards: 1})
	c.Put("a", 1, 4)
	c.Put("b", 2, 4)
	c.Put("c", 3, 4) // 12 bytes > 10: a (LRU) must go
	if _, ok := c.Get("a"); ok {
		t.Fatal("a should have been evicted for the byte bound")
	}
	if st := c.Stats(); st.Bytes > 10 {
		t.Fatalf("bytes = %d; want <= 10", st.Bytes)
	}
	// A single oversized entry is kept (never evict the only entry for bytes).
	c2 := New[int](Config{MaxEntries: 4, MaxBytes: 10, Shards: 1})
	c2.Put("huge", 1, 1000)
	if _, ok := c2.Get("huge"); !ok {
		t.Fatal("sole oversized entry should be retained")
	}
}

func TestTTLExpiry(t *testing.T) {
	now := time.Unix(1000, 0)
	clock := func() time.Time { return now }
	c := New[int](Config{MaxEntries: 8, TTL: time.Minute, Now: clock, Shards: 1})
	c.Put("a", 1, 1)
	if _, ok := c.Get("a"); !ok {
		t.Fatal("fresh entry should be live")
	}
	now = now.Add(59 * time.Second)
	if _, ok := c.Get("a"); !ok {
		t.Fatal("59s-old entry should still be live under a 1m TTL")
	}
	now = now.Add(2 * time.Second)
	if _, ok := c.Get("a"); ok {
		t.Fatal("61s-old entry should have expired")
	}
	st := c.Stats()
	if st.Expirations != 1 {
		t.Fatalf("expirations = %d; want 1", st.Expirations)
	}
	if st.Entries != 0 {
		t.Fatalf("expired entry still occupies the cache: %+v", st)
	}
}

func TestGenerationInvalidation(t *testing.T) {
	c := New[int](Config{MaxEntries: 8, Shards: 1})
	c.Put("a", 1, 1)
	c.Put("b", 2, 1)
	c.Invalidate()
	if _, ok := c.Get("a"); ok {
		t.Fatal("pre-invalidation entry served after Invalidate")
	}
	c.Put("a", 3, 1)
	if v, ok := c.Get("a"); !ok || v != 3 {
		t.Fatalf("post-invalidation store not served: %v, %v", v, ok)
	}
	st := c.Stats()
	if st.Invalidated != 1 {
		t.Fatalf("invalidated = %d; want 1 (only the touched entry)", st.Invalidated)
	}
	if st.Generation != 1 {
		t.Fatalf("generation = %d; want 1", st.Generation)
	}
}

func TestGetOrFillBasics(t *testing.T) {
	c := New[string](Config{MaxEntries: 8, Shards: 1})
	fills := 0
	fill := func() (string, int, error) { fills++; return "v", 1, nil }
	v, out, err := c.GetOrFill("k", fill)
	if err != nil || v != "v" || out != Filled {
		t.Fatalf("cold GetOrFill = %q, %v, %v; want v, Filled, nil", v, out, err)
	}
	v, out, err = c.GetOrFill("k", fill)
	if err != nil || v != "v" || out != Hit {
		t.Fatalf("warm GetOrFill = %q, %v, %v; want v, Hit, nil", v, out, err)
	}
	if fills != 1 {
		t.Fatalf("fill ran %d times; want 1", fills)
	}
}

func TestGetOrFillErrorNotCached(t *testing.T) {
	c := New[string](Config{MaxEntries: 8, Shards: 1})
	boom := errors.New("boom")
	_, _, err := c.GetOrFill("k", func() (string, int, error) { return "", 0, boom })
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v; want boom", err)
	}
	if _, ok := c.Get("k"); ok {
		t.Fatal("failed fill was cached")
	}
	v, out, err := c.GetOrFill("k", func() (string, int, error) { return "ok", 2, nil })
	if err != nil || v != "ok" || out != Filled {
		t.Fatalf("retry after failed fill = %q, %v, %v", v, out, err)
	}
}

func TestGetOrFillCoalescing(t *testing.T) {
	c := New[int](Config{MaxEntries: 8, Shards: 1, Telemetry: telemetry.NewRegistry(), Name: "c"})
	const n = 16
	var fills atomic.Int64
	gate := make(chan struct{})
	started := make(chan struct{})
	var once sync.Once

	var wg sync.WaitGroup
	results := make([]int, n)
	outcomes := make([]Outcome, n)
	for i := 0; i < n; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, out, err := c.GetOrFill("k", func() (int, int, error) {
				fills.Add(1)
				once.Do(func() { close(started) })
				<-gate // hold the fill open so the others pile up
				return 42, 1, nil
			})
			if err != nil {
				t.Error(err)
			}
			results[i], outcomes[i] = v, out
		}()
	}
	<-started
	// Wait until the other n-1 callers are blocked on the flight. Coalesced
	// is counted before blocking, so poll the counter.
	for deadline := time.Now().Add(5 * time.Second); c.Stats().Coalesced < n-1; {
		if time.Now().After(deadline) {
			t.Fatalf("only %d callers coalesced", c.Stats().Coalesced)
		}
		time.Sleep(time.Millisecond)
	}
	close(gate)
	wg.Wait()

	if got := fills.Load(); got != 1 {
		t.Fatalf("fill ran %d times; want exactly 1", got)
	}
	filled, coalesced := 0, 0
	for i := range results {
		if results[i] != 42 {
			t.Fatalf("caller %d got %d; want 42", i, results[i])
		}
		switch outcomes[i] {
		case Filled:
			filled++
		case Coalesced:
			coalesced++
		}
	}
	if filled != 1 || coalesced != n-1 {
		t.Fatalf("outcomes: %d filled, %d coalesced; want 1, %d", filled, coalesced, n-1)
	}
	if got := c.Stats().Coalesced; got != n-1 {
		t.Fatalf("coalesce counter = %d; want %d", got, n-1)
	}
}

func TestInvalidateDuringFillNotStored(t *testing.T) {
	c := New[int](Config{MaxEntries: 8, Shards: 1})
	inFill := make(chan struct{})
	gate := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		v, _, err := c.GetOrFill("k", func() (int, int, error) {
			close(inFill)
			<-gate
			return 7, 1, nil
		})
		if err != nil || v != 7 {
			t.Errorf("filler got %d, %v", v, err)
		}
	}()
	<-inFill
	c.Invalidate() // the index changed while the fill was in flight
	close(gate)
	<-done
	if _, ok := c.Get("k"); ok {
		t.Fatal("fill that started before Invalidate was stored")
	}
}

func TestTelemetryInstruments(t *testing.T) {
	reg := telemetry.NewRegistry()
	c := New[int](Config{MaxEntries: 2, Shards: 1, Telemetry: reg, Name: "cache.test"})
	c.Put("a", 1, 3)
	c.Put("b", 2, 3)
	c.Get("a")
	c.Get("zzz")
	c.Put("c", 3, 3) // evicts
	if got := reg.Counter("cache.test.hits").Value(); got != 1 {
		t.Fatalf("hits counter = %d; want 1", got)
	}
	if got := reg.Counter("cache.test.misses").Value(); got != 1 {
		t.Fatalf("misses counter = %d; want 1", got)
	}
	if got := reg.Counter("cache.test.evictions").Value(); got != 1 {
		t.Fatalf("evictions counter = %d; want 1", got)
	}
	if got := reg.Gauge("cache.test.entries").Value(); got != 2 {
		t.Fatalf("entries gauge = %d; want 2", got)
	}
	if got := reg.Gauge("cache.test.bytes").Value(); got != 6 {
		t.Fatalf("bytes gauge = %d; want 6", got)
	}
	if got := reg.Histogram("cache.test.lookup_ns").Count(); got != 2 {
		t.Fatalf("lookup histogram count = %d; want 2", got)
	}
}

func TestNilCacheIsInert(t *testing.T) {
	var c *Cache[int]
	if _, ok := c.Get("k"); ok {
		t.Fatal("nil cache hit")
	}
	c.Put("k", 1, 1)
	c.Delete("k")
	c.Invalidate()
	v, out, err := c.GetOrFill("k", func() (int, int, error) { return 9, 1, nil })
	if err != nil || v != 9 || out != Filled {
		t.Fatalf("nil GetOrFill = %d, %v, %v; want 9, Filled, nil", v, out, err)
	}
	if st := c.Stats(); st != (Stats{}) {
		t.Fatalf("nil stats = %+v; want zero", st)
	}
	if c.Len() != 0 {
		t.Fatal("nil Len != 0")
	}
}

func TestHitRate(t *testing.T) {
	if r := (Stats{}).HitRate(); r != 0 {
		t.Fatalf("empty hit rate = %v; want 0", r)
	}
	if r := (Stats{Hits: 3, Misses: 1}).HitRate(); r != 0.75 {
		t.Fatalf("hit rate = %v; want 0.75", r)
	}
}

// TestConcurrentHammer drives every operation from many goroutines; its
// value is running under -race.
func TestConcurrentHammer(t *testing.T) {
	c := New[int](Config{MaxEntries: 64, MaxBytes: 4096, TTL: 50 * time.Millisecond, Shards: 4})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				key := fmt.Sprintf("k%d", (g*31+i)%97)
				switch i % 5 {
				case 0:
					c.Put(key, i, 8)
				case 1:
					c.Get(key)
				case 2:
					c.GetOrFill(key, func() (int, int, error) { return i, 8, nil })
				case 3:
					c.Delete(key)
				default:
					if i%100 == 0 {
						c.Invalidate()
					}
					c.Stats()
				}
			}
		}()
	}
	wg.Wait()
	if c.Len() > 64+4 {
		t.Fatalf("cache grew past its bound: %d entries", c.Len())
	}
}

func TestPutAtGenerationGuard(t *testing.T) {
	c := New[int](Config{MaxEntries: 8, Shards: 1})

	// Current generation: stores and is served.
	gen := c.Generation()
	if !c.PutAt(gen, "a", 1, 1) {
		t.Fatal("PutAt at the current generation refused")
	}
	if v, ok := c.Get("a"); !ok || v != 1 {
		t.Fatalf("PutAt entry not served: %v, %v", v, ok)
	}

	// The FailPeer race, deterministically: an invalidation lands between
	// observing the generation and storing — the stale result must not stick.
	gen = c.Generation()
	c.Invalidate()
	if c.PutAt(gen, "b", 2, 1) {
		t.Fatal("PutAt accepted a store conditioned on a dead generation")
	}
	if _, ok := c.Get("b"); ok {
		t.Fatal("stale entry served after generation moved")
	}

	// A nil cache (caching disabled) ignores the store.
	var nc *Cache[int]
	if nc.PutAt(0, "x", 1, 1) {
		t.Fatal("nil cache claimed to store")
	}
}
