// Package cache is a dependency-free caching substrate for the SPRITE query
// path. SPRITE's whole premise is that peers observe a skewed, repetitive
// query stream (§5 learns index terms from cached past queries); the same
// skew makes the postings fetched over the DHT — the dominant cost in
// messages and bytes — highly cacheable close to the requester.
//
// The cache is a sharded, concurrency-safe LRU with optional TTL, entry and
// approximate-byte accounting, generation-based bulk invalidation (a writer
// bumps the generation and every older entry dies lazily), and singleflight
// request coalescing: N concurrent misses on the same key issue exactly one
// fill, the other N−1 callers wait and share the result. Every event —
// hit, miss, store, eviction, expiry, stale-generation drop, coalesced
// wait — is counted, occupancy is tracked in gauges, and lookup latency is
// recorded in a histogram when a telemetry registry is installed.
package cache

import (
	"hash/maphash"
	"sync"
	"sync/atomic"
	"time"

	"github.com/spritedht/sprite/internal/telemetry"
	"github.com/spritedht/sprite/internal/vtime"
)

// Config parameterizes a Cache.
type Config struct {
	// MaxEntries bounds the number of live entries (default 4096). The bound
	// is enforced per shard, so the effective capacity is the closest multiple
	// of Shards.
	MaxEntries int
	// MaxBytes, when positive, additionally bounds the sum of the entry sizes
	// reported at store time. Like MaxEntries it is enforced per shard.
	MaxBytes int64
	// TTL bounds entry age; expired entries are dropped lazily on lookup.
	// Zero disables expiry (generation invalidation still applies).
	TTL time.Duration
	// Shards is the number of independently locked segments (default 8).
	Shards int
	// Now supplies expiry timestamps, for TTL tests. Defaults to Clock.Now.
	Now func() time.Time
	// Clock supplies lookup timing and singleflight waits. Nil is the wall
	// clock; virtual-time deployments inject their *vtime.Sim so a waiter
	// coalesced on another caller's fill does not stall the scheduler.
	Clock vtime.Clock
	// Telemetry, when non-nil, receives counters/gauges/histograms named
	// "<Name>.hits", "<Name>.entries", "<Name>.lookup_ns", … Nil disables
	// instrumentation; the cache still keeps its own Stats.
	Telemetry *telemetry.Registry
	// Name prefixes the telemetry instrument names (default "cache").
	Name string
}

func (c Config) withDefaults() Config {
	if c.MaxEntries <= 0 {
		c.MaxEntries = 4096
	}
	if c.Shards <= 0 {
		c.Shards = 8
	}
	if c.Shards > c.MaxEntries {
		c.Shards = c.MaxEntries
	}
	c.Clock = vtime.Default(c.Clock)
	if c.Now == nil {
		c.Now = c.Clock.Now
	}
	if c.Name == "" {
		c.Name = "cache"
	}
	return c
}

// Outcome reports how GetOrFill satisfied a lookup.
type Outcome int

const (
	// Hit means the value was served from the cache.
	Hit Outcome = iota
	// Filled means this caller ran the fill function.
	Filled
	// Coalesced means another caller's concurrent fill was shared.
	Coalesced
)

// String implements fmt.Stringer for trace annotations.
func (o Outcome) String() string {
	switch o {
	case Hit:
		return "hit"
	case Filled:
		return "fill"
	case Coalesced:
		return "coalesced"
	}
	return "unknown"
}

// Stats is a point-in-time snapshot of the cache's counters and occupancy.
type Stats struct {
	Hits        int64 // lookups served from a live entry
	Misses      int64 // lookups that found nothing servable (includes Coalesced)
	Coalesced   int64 // misses that piggybacked on another caller's fill
	Stores      int64 // values inserted (Put or successful fill)
	Evictions   int64 // entries dropped for capacity (LRU order)
	Expirations int64 // entries dropped because their TTL elapsed
	Invalidated int64 // entries dropped for belonging to an old generation
	Entries     int   // live entries right now (stale ones count until touched)
	Bytes       int64 // approximate bytes held by live entries
	Generation  uint64
}

// HitRate returns Hits / (Hits + Misses), or 0 when no lookups happened.
func (s Stats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// entry is one cached value, threaded on its shard's LRU list.
type entry[V any] struct {
	key        string
	val        V
	bytes      int64
	gen        uint64
	expires    int64 // unix nanos; 0 = no expiry
	prev, next *entry[V]
}

// flight is one in-progress fill that concurrent misses wait on.
type flight[V any] struct {
	done chan struct{}
	val  V
	err  error
}

// shard is one independently locked cache segment with its own LRU list.
type shard[V any] struct {
	mu       sync.Mutex
	entries  map[string]*entry[V]
	inflight map[string]*flight[V]
	bytes    int64
	// head is most recently used, tail least.
	head, tail *entry[V]
}

// metrics mirrors the counters into a telemetry registry; all nil (inert)
// without one.
type metrics struct {
	hits, misses, coalesced            *telemetry.Counter
	stores, evictions                  *telemetry.Counter
	expirations, invalidated           *telemetry.Counter
	entriesGauge, bytesGauge, genGauge *telemetry.Gauge
	lookupNS                           *telemetry.Histogram
}

// Cache is a sharded LRU+TTL cache from string keys to values of type V.
// All methods are safe for concurrent use, and safe on a nil *Cache (a nil
// cache behaves as permanently empty: Get misses, Put drops, GetOrFill runs
// the fill every time), which is how a disabled cache is represented.
type Cache[V any] struct {
	cfg    Config
	seed   maphash.Seed
	gen    atomic.Uint64
	shards []*shard[V]

	hits, misses, coalesced  atomic.Int64
	stores, evictions        atomic.Int64
	expirations, invalidated atomic.Int64

	met metrics
}

// New builds a cache with the given configuration.
func New[V any](cfg Config) *Cache[V] {
	cfg = cfg.withDefaults()
	c := &Cache[V]{cfg: cfg, seed: maphash.MakeSeed()}
	for i := 0; i < cfg.Shards; i++ {
		c.shards = append(c.shards, &shard[V]{
			entries:  make(map[string]*entry[V]),
			inflight: make(map[string]*flight[V]),
		})
	}
	if reg := cfg.Telemetry; reg != nil {
		c.met = metrics{
			hits:         reg.Counter(cfg.Name + ".hits"),
			misses:       reg.Counter(cfg.Name + ".misses"),
			coalesced:    reg.Counter(cfg.Name + ".coalesced"),
			stores:       reg.Counter(cfg.Name + ".stores"),
			evictions:    reg.Counter(cfg.Name + ".evictions"),
			expirations:  reg.Counter(cfg.Name + ".expirations"),
			invalidated:  reg.Counter(cfg.Name + ".invalidated"),
			entriesGauge: reg.Gauge(cfg.Name + ".entries"),
			bytesGauge:   reg.Gauge(cfg.Name + ".bytes"),
			genGauge:     reg.Gauge(cfg.Name + ".generation"),
			lookupNS:     reg.Histogram(cfg.Name + ".lookup_ns"),
		}
	}
	return c
}

func (c *Cache[V]) shardFor(key string) *shard[V] {
	if len(c.shards) == 1 {
		return c.shards[0]
	}
	h := maphash.String(c.seed, key)
	return c.shards[h%uint64(len(c.shards))]
}

// Get returns the live value stored under key. Entries that expired or
// predate the current generation are dropped and reported as misses.
func (c *Cache[V]) Get(key string) (V, bool) {
	var zero V
	if c == nil {
		return zero, false
	}
	start := c.cfg.Clock.Now()
	s := c.shardFor(key)
	s.mu.Lock()
	e, live := c.lookupLocked(s, key)
	if live {
		s.moveToFront(e)
	}
	s.mu.Unlock()
	c.met.lookupNS.Observe(c.cfg.Clock.Now().Sub(start).Nanoseconds())
	if !live {
		c.misses.Add(1)
		c.met.misses.Inc()
		return zero, false
	}
	c.hits.Add(1)
	c.met.hits.Inc()
	return e.val, true
}

// lookupLocked finds a servable entry, removing it (and counting why) when
// it is expired or from an old generation. Caller holds s.mu.
func (c *Cache[V]) lookupLocked(s *shard[V], key string) (*entry[V], bool) {
	e, ok := s.entries[key]
	if !ok {
		return nil, false
	}
	if e.gen != c.gen.Load() {
		c.removeLocked(s, e)
		c.invalidated.Add(1)
		c.met.invalidated.Inc()
		return nil, false
	}
	if e.expires != 0 && c.cfg.Now().UnixNano() >= e.expires {
		c.removeLocked(s, e)
		c.expirations.Add(1)
		c.met.expirations.Inc()
		return nil, false
	}
	return e, true
}

// Put stores a value under key, replacing any previous entry. bytes is the
// caller's estimate of the value's memory/wire footprint, used only for the
// MaxBytes bound and the occupancy gauge.
func (c *Cache[V]) Put(key string, val V, bytes int) {
	if c == nil {
		return
	}
	s := c.shardFor(key)
	s.mu.Lock()
	c.storeLocked(s, key, val, int64(bytes), c.gen.Load())
	s.mu.Unlock()
}

// PutAt stores a value only if the cache is still at generation gen — the
// generation the caller observed (via Generation) before computing val. A
// caller that reads remote state, computes, and stores must use this instead
// of Put: an Invalidate racing the computation (e.g. a peer failure injected
// mid-search) would otherwise be erased by a Put of the stale value at the
// new generation. Returns whether the value was stored.
func (c *Cache[V]) PutAt(gen uint64, key string, val V, bytes int) bool {
	if c == nil {
		return false
	}
	s := c.shardFor(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	if gen != c.gen.Load() {
		return false
	}
	// Store tagged with the observed generation: an Invalidate that lands
	// between the check above and a later lookup still kills the entry, since
	// lookups compare the entry's generation against the current one.
	c.storeLocked(s, key, val, int64(bytes), gen)
	return true
}

// GetOrFill returns the cached value for key, or runs fill to produce it.
// Concurrent callers that miss on the same key are coalesced: exactly one
// runs fill, the rest block and share its value (and error). Fill errors are
// not cached. A fill that completes after Invalidate was called is returned
// to its waiters but not stored, so a fill started against pre-invalidation
// state can never outlive the invalidation.
//
// fill returns the value and its approximate byte size.
func (c *Cache[V]) GetOrFill(key string, fill func() (V, int, error)) (V, Outcome, error) {
	if c == nil {
		v, _, err := fill()
		return v, Filled, err
	}
	start := c.cfg.Clock.Now()
	s := c.shardFor(key)
	s.mu.Lock()
	if e, live := c.lookupLocked(s, key); live {
		s.moveToFront(e)
		s.mu.Unlock()
		c.met.lookupNS.Observe(c.cfg.Clock.Now().Sub(start).Nanoseconds())
		c.hits.Add(1)
		c.met.hits.Inc()
		return e.val, Hit, nil
	}
	if f, ok := s.inflight[key]; ok {
		s.mu.Unlock()
		c.met.lookupNS.Observe(c.cfg.Clock.Now().Sub(start).Nanoseconds())
		c.misses.Add(1)
		c.met.misses.Inc()
		c.coalesced.Add(1)
		c.met.coalesced.Inc()
		// The filling goroutine may be sleeping through simulated latency:
		// the wait on its completion is a real-channel wait the clock cannot
		// see, so deregister for its duration.
		c.cfg.Clock.Blocking(func() { <-f.done })
		return f.val, Coalesced, f.err
	}
	f := &flight[V]{done: make(chan struct{})}
	s.inflight[key] = f
	s.mu.Unlock()
	c.met.lookupNS.Observe(c.cfg.Clock.Now().Sub(start).Nanoseconds())
	c.misses.Add(1)
	c.met.misses.Inc()

	gen := c.gen.Load()
	val, bytes, err := fill()
	f.val, f.err = val, err

	s.mu.Lock()
	delete(s.inflight, key)
	if err == nil && gen == c.gen.Load() {
		c.storeLocked(s, key, val, int64(bytes), gen)
	}
	s.mu.Unlock()
	close(f.done)
	return val, Filled, err
}

// Delete removes the entry under key, if present.
func (c *Cache[V]) Delete(key string) {
	if c == nil {
		return
	}
	s := c.shardFor(key)
	s.mu.Lock()
	if e, ok := s.entries[key]; ok {
		c.removeLocked(s, e)
	}
	s.mu.Unlock()
}

// Invalidate bumps the cache generation: every entry stored before this call
// is dead and will be dropped on its next lookup, and in-progress fills that
// started before the bump will not be stored. O(1) regardless of size.
func (c *Cache[V]) Invalidate() {
	if c == nil {
		return
	}
	g := c.gen.Add(1)
	c.met.genGauge.Set(int64(g))
}

// Generation returns the current invalidation generation.
func (c *Cache[V]) Generation() uint64 {
	if c == nil {
		return 0
	}
	return c.gen.Load()
}

// Len returns the number of entries currently held, including entries from
// old generations that have not been touched (and lazily dropped) yet.
func (c *Cache[V]) Len() int {
	if c == nil {
		return 0
	}
	n := 0
	for _, s := range c.shards {
		s.mu.Lock()
		n += len(s.entries)
		s.mu.Unlock()
	}
	return n
}

// Stats snapshots the counters and occupancy. Safe on nil (all zeros).
func (c *Cache[V]) Stats() Stats {
	if c == nil {
		return Stats{}
	}
	st := Stats{
		Hits:        c.hits.Load(),
		Misses:      c.misses.Load(),
		Coalesced:   c.coalesced.Load(),
		Stores:      c.stores.Load(),
		Evictions:   c.evictions.Load(),
		Expirations: c.expirations.Load(),
		Invalidated: c.invalidated.Load(),
		Generation:  c.gen.Load(),
	}
	for _, s := range c.shards {
		s.mu.Lock()
		st.Entries += len(s.entries)
		st.Bytes += s.bytes
		s.mu.Unlock()
	}
	return st
}

// storeLocked inserts or replaces an entry and evicts from the LRU tail
// until the shard is back within its entry and byte budgets. Caller holds
// s.mu.
func (c *Cache[V]) storeLocked(s *shard[V], key string, val V, bytes int64, gen uint64) {
	if e, ok := s.entries[key]; ok {
		s.bytes += bytes - e.bytes
		c.met.bytesGauge.Add(bytes - e.bytes)
		e.val, e.bytes, e.gen = val, bytes, gen
		e.expires = c.expiry()
		s.moveToFront(e)
	} else {
		e = &entry[V]{key: key, val: val, bytes: bytes, gen: gen, expires: c.expiry()}
		s.entries[key] = e
		s.bytes += bytes
		s.pushFront(e)
		c.met.entriesGauge.Add(1)
		c.met.bytesGauge.Add(bytes)
	}
	c.stores.Add(1)
	c.met.stores.Inc()

	maxEntries := c.cfg.MaxEntries / len(c.shards)
	if maxEntries < 1 {
		maxEntries = 1
	}
	maxBytes := c.cfg.MaxBytes / int64(len(c.shards))
	for s.tail != nil &&
		(len(s.entries) > maxEntries || (maxBytes > 0 && s.bytes > maxBytes && len(s.entries) > 1)) {
		c.removeLocked(s, s.tail)
		c.evictions.Add(1)
		c.met.evictions.Inc()
	}
}

func (c *Cache[V]) expiry() int64 {
	if c.cfg.TTL <= 0 {
		return 0
	}
	return c.cfg.Now().Add(c.cfg.TTL).UnixNano()
}

// removeLocked unlinks an entry and updates accounting. Caller holds s.mu.
func (c *Cache[V]) removeLocked(s *shard[V], e *entry[V]) {
	delete(s.entries, e.key)
	s.unlink(e)
	s.bytes -= e.bytes
	c.met.entriesGauge.Add(-1)
	c.met.bytesGauge.Add(-e.bytes)
}

// LRU list plumbing. Caller holds s.mu for all of these.

func (s *shard[V]) pushFront(e *entry[V]) {
	e.prev = nil
	e.next = s.head
	if s.head != nil {
		s.head.prev = e
	}
	s.head = e
	if s.tail == nil {
		s.tail = e
	}
}

func (s *shard[V]) unlink(e *entry[V]) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		s.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		s.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

func (s *shard[V]) moveToFront(e *entry[V]) {
	if s.head == e {
		return
	}
	s.unlink(e)
	s.pushFront(e)
}
