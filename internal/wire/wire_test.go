package wire

import (
	"bytes"
	"encoding/gob"
	"sync"
	"testing"
)

type payloadA struct{ N int }
type payloadB struct{ S string }

func TestRegisterIdempotent(t *testing.T) {
	before := Registered()
	Register(payloadA{}, payloadB{})
	Register(payloadA{}, payloadB{}) // must not panic or double-count
	Register(payloadA{})
	if got := Registered() - before; got != 2 {
		t.Fatalf("registered %d new types, want 2", got)
	}
}

func TestRegisteredTypesRoundTrip(t *testing.T) {
	Register(payloadA{})
	var buf bytes.Buffer
	var in any = payloadA{N: 42}
	if err := gob.NewEncoder(&buf).Encode(&in); err != nil {
		t.Fatalf("encode: %v", err)
	}
	var out any
	if err := gob.NewDecoder(&buf).Decode(&out); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if got, ok := out.(payloadA); !ok || got.N != 42 {
		t.Fatalf("round trip: got %#v", out)
	}
}

func TestRegisterConcurrent(t *testing.T) {
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			Register(payloadA{}, payloadB{})
		}()
	}
	wg.Wait()
}
