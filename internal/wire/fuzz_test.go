package wire

import (
	"bytes"
	"encoding/gob"
	"reflect"
	"testing"
)

// fuzzPayload mirrors the shape of the protocol payloads that cross
// nettransport's frames (strings, integers, nested structs, slices), so the
// round trip exercises the same encoder paths without depending on the
// unexported message types of internal/core and internal/chord.
type fuzzPayload struct {
	Term  string
	Doc   string
	Freq  int64
	Hops  int
	Addrs []string
	Inner fuzzInner
}

type fuzzInner struct {
	Key   string
	Score float64
}

// kindFuzzPayload gives fuzzPayload a binary codec too, so FuzzCodec drives
// both wire formats with the same values and can demand they agree.
const kindFuzzPayload = KindTestBase + 100

func init() {
	RegisterBinary(kindFuzzPayload, fuzzPayload{},
		func(e *Encoder, v any) {
			p := v.(fuzzPayload)
			e.String(p.Term)
			e.String(p.Doc)
			e.Int(p.Freq)
			e.Int(int64(p.Hops))
			e.StringSlice(p.Addrs)
			e.String(p.Inner.Key)
			e.Float(p.Inner.Score)
		},
		func(d *Decoder) any {
			var p fuzzPayload
			p.Term = d.String()
			p.Doc = d.String()
			p.Freq = d.Int()
			p.Hops = int(d.Int())
			p.Addrs = d.StringSlice()
			p.Inner.Key = d.String()
			p.Inner.Score = d.Float()
			return p
		})
}

// FuzzCodec fuzzes the wire codec the way nettransport uses it: the payload
// travels as an interface value (wireRequest.Payload has type any), so
// encoding depends on the Register machinery and decoding must return the
// original concrete value bit-for-bit. The raw tail bytes are also fed to a
// decoder directly — corrupted frames must fail with an error, never a panic.
func FuzzCodec(f *testing.F) {
	f.Add("w03", "doc01", int64(7), 3, "c0,c1", 0.5, []byte{})
	f.Add("", "", int64(0), 0, "", 0.0, []byte{0xff, 0x00})
	f.Add("日本語", "doc\x00", int64(-1), 1<<20, "a", -1.5, []byte("garbage"))
	f.Fuzz(func(t *testing.T, term, doc string, freq int64, hops int, addrCSV string, score float64, raw []byte) {
		Register(fuzzPayload{})
		if score != score {
			score = 0 // NaN round-trips correctly but breaks DeepEqual
		}
		var addrs []string
		for _, a := range bytes.Split([]byte(addrCSV), []byte{','}) {
			if len(a) > 0 {
				addrs = append(addrs, string(a))
			}
		}
		var in any = fuzzPayload{
			Term: term, Doc: doc, Freq: freq, Hops: hops, Addrs: addrs,
			Inner: fuzzInner{Key: term, Score: score},
		}
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(&in); err != nil {
			t.Fatalf("encode %#v: %v", in, err)
		}
		var out any
		if err := gob.NewDecoder(bytes.NewReader(buf.Bytes())).Decode(&out); err != nil {
			t.Fatalf("decode: %v", err)
		}
		if !reflect.DeepEqual(out, in.(fuzzPayload)) {
			t.Fatalf("round trip changed the payload:\n in: %#v\nout: %#v", in, out)
		}
		// A decoder fed arbitrary bytes may error, but must not panic.
		var junk any
		_ = gob.NewDecoder(bytes.NewReader(raw)).Decode(&junk)

		// The binary codec must agree with gob's round trip of the same
		// value — the codecs are interchangeable on the wire or they are
		// wrong.
		bin, ok := AppendBinary(nil, in.(fuzzPayload))
		if !ok {
			t.Fatal("binary codec not registered for fuzzPayload")
		}
		bout, err := DecodeBinary(bin)
		if err != nil {
			t.Fatalf("binary decode of own encoding: %v", err)
		}
		if !reflect.DeepEqual(bout, out) {
			t.Fatalf("binary and gob round trips disagree:\nbinary: %#v\ngob:    %#v", bout, out)
		}
		// Truncations and raw garbage must fail cleanly, never panic or
		// size an allocation from an unvalidated declared length.
		for n := 0; n < len(bin); n++ {
			DecodeBinary(bin[:n])
		}
		DecodeBinary(raw)
	})
}
